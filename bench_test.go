package chimera

// One benchmark per table and figure of the paper's evaluation (§7). Each
// regenerates the corresponding rows/series on the simulated testbed and
// prints them once, so `go test -bench=.` output doubles as the full
// reproduction record (see EXPERIMENTS.md for paper-vs-measured).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/harness"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/weaklock"
)

var (
	suiteOnce sync.Once
	suiteVal  *harness.Suite
	suiteErr  error
)

// suite prepares all nine benchmarks once (analysis + profiling + four
// instrumentation configurations); preparation cost is excluded from every
// benchmark's timing.
func suite(b *testing.B) *harness.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = harness.NewSuite(harness.Default())
	})
	if suiteErr != nil {
		b.Fatalf("suite preparation failed: %v", suiteErr)
	}
	return suiteVal
}

var printOnce sync.Map

func printFirst(key, out string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(out)
	}
}

// BenchmarkTable1 regenerates the benchmark inventory (Table 1).
func BenchmarkTable1(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.Table1()
		if i == 0 {
			printFirst("table1", out)
		}
	}
}

// BenchmarkTable2 regenerates the record/replay measurements (Table 2):
// per-benchmark DRF logs, weak-lock logs by granularity, record and replay
// overheads, and compressed log sizes at 4 worker threads.
func BenchmarkTable2(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, out, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("table2", out)
			for _, m := range ms {
				if !m.ReplayMatches {
					b.Fatalf("%s replay mismatch: %s", m.Bench, m.ReplayErr)
				}
				if m.Timeouts != 0 {
					b.Fatalf("%s had %d weak-lock timeouts", m.Bench, m.Timeouts)
				}
			}
		}
	}
}

// BenchmarkFigure5 regenerates the recording-overhead-per-optimization
// figure (instr / instr+func / instr+loop / all).
func BenchmarkFigure5(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, out, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("figure5", out)
			for _, r := range rows {
				if r.Values["all"] > r.Values["instr"]*1.2 {
					b.Logf("NOTE: %s all-opts (%.2f) not below naive (%.2f)",
						r.Bench, r.Values["all"], r.Values["instr"])
				}
			}
		}
	}
}

// BenchmarkFigure6 regenerates the instrumented-operation-proportion
// figure (weak-lock ops as a fraction of dynamic memory operations).
func BenchmarkFigure6(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("figure6", out)
		}
	}
}

// BenchmarkFigure7 regenerates the overhead-source breakdown (logging vs
// contention per weak-lock granularity).
func BenchmarkFigure7(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("figure7", out)
		}
	}
}

// BenchmarkFigure8 regenerates the scalability figure (2/4/8 workers).
func BenchmarkFigure8(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := s.Figure8(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("figure8", out)
		}
	}
}

// BenchmarkProfileSensitivity regenerates the §7.3 profile-run study: the
// set of observed concurrent function pairs saturates after a few runs.
func BenchmarkProfileSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, out, err := harness.ProfileSensitivity(nil, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("sens", out)
			for _, r := range rows {
				n := len(r.Pairs)
				if n >= 2 && r.Pairs[n-1] != r.Pairs[n-2] {
					b.Logf("NOTE: %s pairs still growing at run %d", r.Bench, n)
				}
			}
		}
	}
}

// BenchmarkAblationLoopBodyThreshold sweeps the §5.3 loop-body-threshold
// on radix: with threshold 0, imprecise loops fall back to basic-block
// locks inside the loop (cheap ops per iteration, parallel); with a large
// threshold every imprecise loop takes a serializing [-INF,+INF] loop-lock.
// The default sits between, trading per-iteration logging against
// serialization — exactly the balance §5.3 describes.
func BenchmarkAblationLoopBodyThreshold(b *testing.B) {
	bm := bench.ByName("radix")
	prog, err := core.Load(bm.Name, bm.FullSource())
	if err != nil {
		b.Fatal(err)
	}
	conc := prog.ProfileNonConcurrency(bm.ProfileWorld, bm.ProfileRuns, 10_000)
	native := prog.RunNative(core.RunConfig{World: bm.EvalWorld(4), Seed: 1234, HeapWords: 1 << 19})
	if native.Err != nil {
		b.Fatal(native.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := "Ablation (loop-body-threshold, §5.3) on radix:\n"
		for _, thr := range []int{-1, 14, 100000} {
			opts := instrument.AllOptions()
			opts.LoopBodyThreshold = thr
			ip, err := prog.Instrument(conc, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, _ := ip.Record(core.RunConfig{
				World: bm.EvalWorld(4), Seed: 1234, Table: ip.Table, HeapWords: 1 << 19})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			out += fmt.Sprintf("  threshold %6d: %.2fx record overhead (loop logs %d, bb logs %d, instr logs %d)\n",
				thr, float64(res.Makespan)/float64(native.Makespan),
				res.WLStats.Logs[weaklock.KindLoop], res.WLStats.Logs[weaklock.KindBB],
				res.WLStats.Logs[weaklock.KindInstr])
		}
		if i == 0 {
			printFirst("ablation", out)
		}
	}
}

// BenchmarkAblationCliqueSharing compares clique-shared function-locks
// (paper Fig. 3(b)) against one lock per racy pair (Fig. 3(a)) on pfscan,
// the function-lock-heavy benchmark.
func BenchmarkAblationCliqueSharing(b *testing.B) {
	bm := bench.ByName("pfscan")
	prog, err := core.Load(bm.Name, bm.FullSource())
	if err != nil {
		b.Fatal(err)
	}
	conc := prog.ProfileNonConcurrency(bm.ProfileWorld, bm.ProfileRuns, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := "Ablation (clique sharing, §4.2) on pfscan:\n"
		for _, perPair := range []bool{false, true} {
			opts := instrument.AllOptions()
			opts.PerPairFuncLocks = perPair
			ip, err := prog.Instrument(conc, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, _ := ip.Record(core.RunConfig{
				World: bm.EvalWorld(4), Seed: 1234, Table: ip.Table, HeapWords: 1 << 19})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			name := "cliques (shared)"
			if perPair {
				name = "per-pair locks "
			}
			out += fmt.Sprintf("  %s: %d function locks, %d func-lock ops\n",
				name, ip.Table.CountByKind()[weaklock.KindFunc],
				res.WLStats.Ops(weaklock.KindFunc))
		}
		if i == 0 {
			printFirst("ablation-clique", out)
		}
	}
}
