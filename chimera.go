// Package chimera is a from-scratch reproduction of "Chimera: Hybrid
// Program Analysis for Determinism" (Lee, Chen, Flinn, Narayanasamy,
// PLDI 2012): deterministic record/replay for racy multithreaded programs
// on commodity multiprocessors.
//
// Chimera's idea: record/replay is cheap for data-race-free programs — log
// the nondeterministic inputs and the happens-before order of
// synchronization, and the execution is reproducible. So transform an
// arbitrary program into a data-race-free one: run a sound static race
// detector (RELAY) over it, and guard every potential race pair with a
// *weak-lock* whose acquire order is recorded. Because the detector is
// sound but imprecise, most reported races are false; two optimizations —
// profile-driven function-locks shared via clique analysis, and loop-locks
// whose protected address range comes from symbolic bounds analysis — cut
// the instrumentation cost by orders of magnitude without giving up the
// replay guarantee.
//
// The pipeline operates on MiniC, a C-like language with threads, mutexes,
// barriers and condition variables, executing on a simulated multicore VM
// with a deterministic cycle cost model (the stand-in for the paper's
// patched Linux + pthreads testbed; see DESIGN.md for every substitution).
//
// # Quick start
//
//	prog, err := chimera.Load("demo", src)           // parse + RELAY
//	conc := prog.ProfileNonConcurrency(worlds, 6, 1) // paper §4
//	inst, err := prog.Instrument(conc, chimera.AllOptions())
//	rec, log := inst.Record(chimera.RunConfig{World: w, Seed: 1, Table: inst.Table})
//	rep, err := inst.Replay(log, chimera.RunConfig{World: w2, Seed: 999, Table: inst.Table})
//	// rec.Hash64() == rep.Hash64(): bit-identical replay under a different schedule.
//
// The nine paper benchmarks live in internal/bench; the harness in
// internal/bench/harness regenerates every table and figure of the
// evaluation (see EXPERIMENTS.md and cmd/chimera-bench).
package chimera

import (
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/oskit"
	"repro/internal/profile"
	"repro/internal/relay"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/weaklock"
)

// Program is a fully analyzed MiniC program: parsed, type-checked,
// compiled for the VM, with points-to, call-graph and RELAY race analyses
// attached.
type Program = core.Program

// Instrumented is a Chimera-transformed program plus its weak-lock table.
type Instrumented = core.Instrumented

// RunConfig parameterizes one VM execution.
type RunConfig = core.RunConfig

// Options selects the instrumenter's optimization set (paper Fig. 5
// configurations).
type Options = instrument.Options

// World is the simulated OS environment a program runs against.
type World = oskit.World

// Concurrency is a profile of observed concurrent function pairs.
type Concurrency = profile.Concurrency

// Log is a recording (input log + sync order log).
type Log = replay.Log

// Result is the outcome of one VM run.
type Result = vm.Result

// Race is a dynamic data race found by the happens-before checker.
type Race = trace.Race

// Report is a RELAY race report. Program.RefineMHP returns a copy with
// statically proven non-concurrent pairs pruned (internal/mhp); pass it
// to Program.InstrumentWith to instrument only the surviving pairs.
type Report = relay.Report

// Table is a weak-lock table.
type Table = weaklock.Table

// Load parses, type-checks, compiles, and statically analyzes src.
func Load(name, src string) (*Program, error) { return core.Load(name, src) }

// NewWorld returns an empty simulated environment.
func NewWorld(seed uint64) *World { return oskit.NewWorld(seed) }

// NaiveOptions instruments every race at instruction granularity (the
// paper's 53x "instr" baseline).
func NaiveOptions() Options { return instrument.NaiveOptions() }

// AllOptions enables the profile and symbolic-bounds optimizations (the
// paper's 1.39x "inst+bb+loop+func" configuration).
func AllOptions() Options { return instrument.AllOptions() }

// Replay re-executes a recorded program; determinism comes from the log,
// not the seed.
func Replay(p *Program, table *Table, log *Log, rc RunConfig) (*Result, error) {
	return core.ReplayProgram(p, table, log, rc)
}

// CheckDynamicRaces runs a program under the vector-clock checker and
// returns the distinct races observed.
func CheckDynamicRaces(p *Program, table *Table, rc RunConfig) ([]Race, *Result) {
	return core.CheckDynamicRaces(p, table, rc)
}
