package chimera

// Facade tests: the README's advertised workflow must work exactly as
// documented through the public package surface.

import (
	"testing"
)

const facadeSrc = `
int total;
int m;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        total = total + 1;
    }
    lock(&m);
    total = total * 1;
    unlock(&m);
}
int main(void) {
    int t1 = spawn(worker, 100);
    int t2 = spawn(worker, 100);
    join(t1);
    join(t2);
    print(total);
    return 0;
}
`

func TestFacadeReadmeWorkflow(t *testing.T) {
	prog, err := Load("facade.mc", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Races.Pairs) == 0 {
		t.Fatal("RELAY should report races")
	}

	conc := prog.ProfileNonConcurrency(func(int) *World { return NewWorld(1) }, 4, 7)
	inst, err := prog.Instrument(conc, AllOptions())
	if err != nil {
		t.Fatal(err)
	}

	rec, log := inst.Record(RunConfig{World: NewWorld(1), Seed: 1, Table: inst.Table})
	if rec.Err != nil {
		t.Fatal(rec.Err)
	}
	rep, err := inst.Replay(log, RunConfig{World: NewWorld(1), Seed: 999, Table: inst.Table})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Hash64() != rep.Hash64() {
		t.Fatalf("replay diverged: %q vs %q", rec.Output, rep.Output)
	}

	races, res := CheckDynamicRaces(inst.Prog, inst.Table,
		RunConfig{World: NewWorld(1), Seed: 5, Table: inst.Table})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(races) != 0 {
		t.Fatalf("instrumented program still racy: %v", races[0])
	}

	// The standalone Replay entry point works too.
	rep2, err := Replay(inst.Prog, inst.Table, log, RunConfig{World: NewWorld(1), Seed: 4242, Table: inst.Table})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Hash64() != rec.Hash64() {
		t.Fatal("package-level Replay diverged")
	}
}

func TestFacadeNaiveOptions(t *testing.T) {
	n, a := NaiveOptions(), AllOptions()
	if n.FuncLocks || n.LoopLocks || n.BBLocks {
		t.Error("naive options must disable optimizations")
	}
	if !a.FuncLocks || !a.LoopLocks || !a.BBLocks || a.LoopBodyThreshold == 0 {
		t.Error("all options must enable everything")
	}
}

func TestFacadeLoadErrors(t *testing.T) {
	if _, err := Load("bad.mc", "int main(void) { return x; }"); err == nil {
		t.Error("semantic error not surfaced")
	}
	if _, err := Load("bad.mc", "int main(void) {"); err == nil {
		t.Error("syntax error not surfaced")
	}
}
