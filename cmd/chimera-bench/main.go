// chimera-bench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	chimera-bench -table 1              # Table 1 (benchmark inventory)
//	chimera-bench -table 2              # Table 2 (record/replay, 4 workers)
//	chimera-bench -figure 5             # Figure 5 (overhead per opt set)
//	chimera-bench -figure 6             # Figure 6 (wl ops / mem ops)
//	chimera-bench -figure 7             # Figure 7 (logging vs contention)
//	chimera-bench -figure 8             # Figure 8 (2/4/8 workers)
//	chimera-bench -figure sens          # §7.3 profile sensitivity
//	chimera-bench -figure mhp           # Figure-5-style ±MHP refinement
//	chimera-bench -all                  # everything
//	chimera-bench -bench radix -table 2 # restrict to one benchmark
//	chimera-bench -parallel 4 -all      # fan independent cells over 4 workers
//	chimera-bench -all -json out.json   # also write machine-readable entries
//	                                    # (MHP opt sets) with wall-clock stats
//	chimera-bench -all -json out.json -baseline
//	                                    # additionally re-run the workload
//	                                    # sequentially with caches off and
//	                                    # record baseline_wall_ns/speedup
//	chimera-bench -incremental          # cold vs warm (store-primed) wall
//	                                    # of re-analyzing a single libc edit;
//	                                    # with -json, recorded as the report's
//	                                    # "incremental" section
//	chimera-bench -scenario 'prodcons:1:small;cache:7:medium' -json out.json
//	                                    # measure generated scenario workloads
//	                                    # (internal/scenario) through the same
//	                                    # harness; their JSON rows reuse the
//	                                    # full metrics block and are what the
//	                                    # CI scenario soundness gate asserts
//	chimera-bench -scenario 'prodcons:1:small' -server http://localhost:8377 -json out.json
//	                                    # run the scenario specs as chimerad
//	                                    # gen-pipeline jobs instead of the
//	                                    # local harness; rows carry Config
//	                                    # "server" plus the server-reported
//	                                    # queue_wait_ns/server_run_ns
//	chimera-bench -precision -all -json out.json
//	                                    # apply the static precision layer
//	                                    # (thread-escape, must-lockset
//	                                    # sharpening, read-only sharing) to
//	                                    # every config's report; +mhp configs
//	                                    # compose it over the MHP-refined set
//
// Benchmark preparation and independent benchmark × config cells run on a
// bounded pool of -parallel workers. All emitted tables, figures and JSON
// rows are byte-identical for every -parallel value: analysis is proven
// deterministic under parallelism (see the determinism test layer), and
// measurements land in canonically ordered slots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench/harness"
	"repro/internal/service"
)

func main() {
	var (
		table     = flag.String("table", "", "regenerate a table: 1 or 2")
		figure    = flag.String("figure", "", "regenerate a figure: 5, 6, 7, 8, sens, or mhp")
		all       = flag.Bool("all", false, "regenerate everything")
		benches   = flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
		workers   = flag.Int("workers", 4, "evaluation worker count for tables/figures 5-7")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "harness worker pool size (1 = sequential)")
		jsonPath  = flag.String("json", "", "write machine-readable measurements (MHP opt sets) to this file")
		baseline  = flag.Bool("baseline", false, "with -json: also time the sequential uncached workload for baseline_wall_ns")
		incr      = flag.Bool("incremental", false, "measure the warm-edit incremental-analysis speedup (recorded in -json when given)")
		reps      = flag.Int("reps", 3, "with -incremental: wall-clock repetitions (minimum is reported)")
		scenList  = flag.String("scenario", "", "generated scenario specs (family:seed:size, ';'-separated) to measure alongside the embedded benchmarks")
		precision = flag.Bool("precision", false, "apply the static precision layer (thread-escape, must-lockset, read-only) to every config's report")
		server    = flag.String("server", "", "chimerad base URL: run -scenario specs as gen-pipeline jobs there instead of the local harness")
		tenant    = flag.String("tenant", "", "tenant namespace for -server submissions")
	)
	flag.Parse()

	if *server != "" && *scenList == "" {
		fatal(fmt.Errorf("-server requires -scenario (only scenario workloads run remotely)"))
	}

	cfg := harness.Default()
	cfg.Workers = *workers
	cfg.Parallel = *parallel
	cfg.Precision = *precision

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	if !*all && *table == "" && *figure == "" && *jsonPath == "" && !*incr && *scenList == "" {
		flag.Usage()
		os.Exit(2)
	}

	var incBench *harness.IncrementalBench
	if *incr {
		fmt.Fprintln(os.Stderr, "measuring warm-edit incremental re-analysis (cold vs store-primed)...")
		ib, err := harness.MeasureIncremental(names, cfg.Workers, *reps)
		if err != nil {
			fatal(err)
		}
		incBench = ib
		fmt.Println(harness.RenderIncremental(ib))
	}

	want := harness.Workload{
		Table1: *all || *table == "1",
		Table2: *all || *table == "2",
		Fig5:   *all || *figure == "5",
		Fig6:   *all || *figure == "6",
		Fig7:   *all || *figure == "7",
		Fig8:   *all || *figure == "8",
		Sens:   *all || *figure == "sens",
		MHP:    *all || *figure == "mhp",
		JSON:   *jsonPath != "",
	}

	start := time.Now()
	var entries []harness.JSONEntry
	// With -scenario alone, -json exports only the scenario rows; any
	// table/figure/-all request still measures the embedded benchmarks.
	if *all || *table != "" || *figure != "" || (*jsonPath != "" && *scenList == "") {
		var err error
		entries, err = harness.RunWorkload(cfg, names, want, os.Stdout, os.Stderr)
		if err != nil {
			fatal(err)
		}
	}
	if *scenList != "" {
		var scen []harness.JSONEntry
		var err error
		if *server != "" {
			scen, err = runServerScenarios(*server, *tenant, *scenList, os.Stdout, os.Stderr)
		} else {
			scen, err = harness.RunScenarios(cfg, *scenList, os.Stdout, os.Stderr)
		}
		if err != nil {
			fatal(err)
		}
		entries = append(entries, scen...)
		harness.SortEntries(entries)
	}
	wall := time.Since(start).Nanoseconds()

	if *jsonPath != "" {
		rep := &harness.JSONReport{
			Parallel:      cfg.Parallel,
			Workers:       cfg.Workers,
			HarnessWallNS: wall,
			Incremental:   incBench,
			Entries:       entries,
		}
		if *baseline {
			fmt.Fprintln(os.Stderr, "re-running workload sequentially with caches disabled for the baseline...")
			seqCfg := cfg
			seqCfg.Parallel = 1
			seqCfg.NoCache = true
			seqStart := time.Now()
			if _, err := harness.RunWorkload(seqCfg, names, want, io.Discard, os.Stderr); err != nil {
				fatal(fmt.Errorf("baseline run: %w", err))
			}
			rep.BaselineWallNS = time.Since(seqStart).Nanoseconds()
			if wall > 0 {
				rep.Speedup = float64(rep.BaselineWallNS) / float64(wall)
			}
			fmt.Fprintf(os.Stderr, "harness wall: %.2fs (parallel=%d, cached) vs %.2fs (sequential, uncached): %.2fx\n",
				float64(wall)/1e9, cfg.Parallel, float64(rep.BaselineWallNS)/1e9, rep.Speedup)
		}
		b, err := harness.RenderJSON(rep)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *jsonPath)
	}
}

// runServerScenarios ships every scenario spec to a chimerad server as a
// gen-pipeline job (all submitted up front, so the server's shards run
// them concurrently) and converts the verdicts into JSON rows. Rows carry
// Config "server" and — unlike local harness rows — the server-observed
// queue_wait_ns/server_run_ns from the job view. The soundness verdicts
// themselves (certified, replay match, checker agreement) are computed by
// the identical pipeline either way.
func runServerScenarios(server, tenant, specText string, w, errOut io.Writer) ([]harness.JSONEntry, error) {
	var specs []string
	for _, sp := range strings.Split(specText, ";") {
		if sp = strings.TrimSpace(sp); sp != "" {
			specs = append(specs, sp)
		}
	}
	c := service.NewClient(server)
	fmt.Fprintf(errOut, "submitting %d gen-pipeline job(s) to %s...\n", len(specs), server)
	ids := make([]string, len(specs))
	for i, sp := range specs {
		accepted, err := c.Submit(&service.JobSpec{Kind: service.JobGenPipeline, Tenant: tenant, Spec: sp})
		if err != nil {
			return nil, fmt.Errorf("submit %s: %w", sp, err)
		}
		ids[i] = accepted.ID
	}

	entries := make([]harness.JSONEntry, 0, len(specs))
	fmt.Fprintln(w, "Generated scenarios (server mode):")
	fmt.Fprintf(w, "%-28s %5s %5s %6s %6s | %12s %12s\n",
		"scenario", "cert", "rep?", "races", "agree", "queue wait", "run")
	for i, sp := range specs {
		v, err := c.Wait(ids[i])
		if err != nil {
			return nil, fmt.Errorf("wait %s: %w", sp, err)
		}
		if v.State != service.StateDone || v.Result == nil {
			return nil, fmt.Errorf("job %s (%s) failed: %s", v.ID, sp, v.Error)
		}
		r := v.Result
		e := harness.JSONEntry{
			Bench:       sp,
			Config:      "server",
			QueueWaitNS: v.QueueWaitNS,
			ServerRunNS: v.RunNS,
		}
		if r.Certified != nil {
			e.Certified = *r.Certified
		}
		if r.ReplayMatches != nil {
			e.ReplayMatches = *r.ReplayMatches
		}
		if r.CheckerRaces != nil {
			e.CheckerRaces = *r.CheckerRaces
		}
		if r.CheckersAgree != nil {
			e.CheckersAgree = *r.CheckersAgree
		}
		entries = append(entries, e)
		fmt.Fprintf(w, "%-28s %5v %5v %6d %6v | %10.3fms %10.3fms\n",
			sp, e.Certified, e.ReplayMatches, e.CheckerRaces, e.CheckersAgree,
			float64(e.QueueWaitNS)/1e6, float64(e.ServerRunNS)/1e6)
	}
	fmt.Fprintln(w)
	return entries, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-bench:", err)
	os.Exit(1)
}
