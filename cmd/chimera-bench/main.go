// chimera-bench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	chimera-bench -table 1              # Table 1 (benchmark inventory)
//	chimera-bench -table 2              # Table 2 (record/replay, 4 workers)
//	chimera-bench -figure 5             # Figure 5 (overhead per opt set)
//	chimera-bench -figure 6             # Figure 6 (wl ops / mem ops)
//	chimera-bench -figure 7             # Figure 7 (logging vs contention)
//	chimera-bench -figure 8             # Figure 8 (2/4/8 workers)
//	chimera-bench -figure sens          # §7.3 profile sensitivity
//	chimera-bench -figure mhp           # Figure-5-style ±MHP refinement
//	chimera-bench -all                  # everything
//	chimera-bench -bench radix -table 2 # restrict to one benchmark
//	chimera-bench -figure mhp -json out.json   # also write machine-readable
//	                                           # entries for the MHP opt sets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench/harness"
)

func main() {
	var (
		table    = flag.String("table", "", "regenerate a table: 1 or 2")
		figure   = flag.String("figure", "", "regenerate a figure: 5, 6, 7, 8, or sens")
		all      = flag.Bool("all", false, "regenerate everything")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
		workers  = flag.Int("workers", 4, "evaluation worker count for tables/figures 5-7")
		jsonPath = flag.String("json", "", "write machine-readable measurements (MHP opt sets) to this file")
	)
	flag.Parse()

	cfg := harness.Default()
	cfg.Workers = *workers

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	if !*all && *table == "" && *figure == "" && *jsonPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	newSuite := func() *harness.Suite {
		fmt.Fprintln(os.Stderr, "preparing benchmarks (analyze + profile + instrument)...")
		s, err := harness.NewSuite(cfg, names...)
		if err != nil {
			fatal(err)
		}
		return s
	}

	var s *harness.Suite
	suite := func() *harness.Suite {
		if s == nil {
			s = newSuite()
		}
		return s
	}

	if *all || *table == "1" {
		fmt.Println(suite().Table1())
	}
	if *all || *table == "2" {
		_, out, err := suite().Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *figure == "5" {
		_, out, err := suite().Figure5()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *figure == "6" {
		_, out, err := suite().Figure6()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *figure == "7" {
		_, out, err := suite().Figure7()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *figure == "8" {
		_, out, err := suite().Figure8(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *figure == "sens" {
		sensNames := names
		if len(sensNames) == 0 {
			sensNames = []string{"pfscan", "water"}
		}
		_, out, err := harness.ProfileSensitivity(sensNames, 10)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *figure == "mhp" {
		_, out, err := suite().FigureMHP()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *jsonPath != "" {
		entries, err := suite().MeasureJSON(harness.MHPConfigNames)
		if err != nil {
			fatal(err)
		}
		b, err := harness.RenderJSON(entries)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-bench:", err)
	os.Exit(1)
}
