// chimera-bench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	chimera-bench -table 1              # Table 1 (benchmark inventory)
//	chimera-bench -table 2              # Table 2 (record/replay, 4 workers)
//	chimera-bench -figure 5             # Figure 5 (overhead per opt set)
//	chimera-bench -figure 6             # Figure 6 (wl ops / mem ops)
//	chimera-bench -figure 7             # Figure 7 (logging vs contention)
//	chimera-bench -figure 8             # Figure 8 (2/4/8 workers)
//	chimera-bench -figure sens          # §7.3 profile sensitivity
//	chimera-bench -figure mhp           # Figure-5-style ±MHP refinement
//	chimera-bench -all                  # everything
//	chimera-bench -bench radix -table 2 # restrict to one benchmark
//	chimera-bench -parallel 4 -all      # fan independent cells over 4 workers
//	chimera-bench -all -json out.json   # also write machine-readable entries
//	                                    # (MHP opt sets) with wall-clock stats
//	chimera-bench -all -json out.json -baseline
//	                                    # additionally re-run the workload
//	                                    # sequentially with caches off and
//	                                    # record baseline_wall_ns/speedup
//	chimera-bench -incremental          # cold vs warm (store-primed) wall
//	                                    # of re-analyzing a single libc edit;
//	                                    # with -json, recorded as the report's
//	                                    # "incremental" section
//	chimera-bench -scenario 'prodcons:1:small;cache:7:medium' -json out.json
//	                                    # measure generated scenario workloads
//	                                    # (internal/scenario) through the same
//	                                    # harness; their JSON rows reuse the
//	                                    # full metrics block and are what the
//	                                    # CI scenario soundness gate asserts
//	chimera-bench -precision -all -json out.json
//	                                    # apply the static precision layer
//	                                    # (thread-escape, must-lockset
//	                                    # sharpening, read-only sharing) to
//	                                    # every config's report; +mhp configs
//	                                    # compose it over the MHP-refined set
//
// Benchmark preparation and independent benchmark × config cells run on a
// bounded pool of -parallel workers. All emitted tables, figures and JSON
// rows are byte-identical for every -parallel value: analysis is proven
// deterministic under parallelism (see the determinism test layer), and
// measurements land in canonically ordered slots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/harness"
	"repro/internal/scenario"
)

func main() {
	var (
		table     = flag.String("table", "", "regenerate a table: 1 or 2")
		figure    = flag.String("figure", "", "regenerate a figure: 5, 6, 7, 8, sens, or mhp")
		all       = flag.Bool("all", false, "regenerate everything")
		benches   = flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
		workers   = flag.Int("workers", 4, "evaluation worker count for tables/figures 5-7")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "harness worker pool size (1 = sequential)")
		jsonPath  = flag.String("json", "", "write machine-readable measurements (MHP opt sets) to this file")
		baseline  = flag.Bool("baseline", false, "with -json: also time the sequential uncached workload for baseline_wall_ns")
		incr      = flag.Bool("incremental", false, "measure the warm-edit incremental-analysis speedup (recorded in -json when given)")
		reps      = flag.Int("reps", 3, "with -incremental: wall-clock repetitions (minimum is reported)")
		scenList  = flag.String("scenario", "", "generated scenario specs (family:seed:size, ';'-separated) to measure alongside the embedded benchmarks")
		precision = flag.Bool("precision", false, "apply the static precision layer (thread-escape, must-lockset, read-only) to every config's report")
	)
	flag.Parse()

	cfg := harness.Default()
	cfg.Workers = *workers
	cfg.Parallel = *parallel
	cfg.Precision = *precision

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	if !*all && *table == "" && *figure == "" && *jsonPath == "" && !*incr && *scenList == "" {
		flag.Usage()
		os.Exit(2)
	}

	var incBench *harness.IncrementalBench
	if *incr {
		fmt.Fprintln(os.Stderr, "measuring warm-edit incremental re-analysis (cold vs store-primed)...")
		ib, err := harness.MeasureIncremental(names, cfg.Workers, *reps)
		if err != nil {
			fatal(err)
		}
		incBench = ib
		fmt.Println(harness.RenderIncremental(ib))
	}

	want := workload{
		table1: *all || *table == "1",
		table2: *all || *table == "2",
		fig5:   *all || *figure == "5",
		fig6:   *all || *figure == "6",
		fig7:   *all || *figure == "7",
		fig8:   *all || *figure == "8",
		sens:   *all || *figure == "sens",
		mhp:    *all || *figure == "mhp",
		json:   *jsonPath != "",
	}

	start := time.Now()
	var entries []harness.JSONEntry
	// With -scenario alone, -json exports only the scenario rows; any
	// table/figure/-all request still measures the embedded benchmarks.
	if *all || *table != "" || *figure != "" || (*jsonPath != "" && *scenList == "") {
		var err error
		entries, err = run(cfg, names, want, os.Stdout)
		if err != nil {
			fatal(err)
		}
	}
	if *scenList != "" {
		scen, err := runScenarios(cfg, *scenList, os.Stdout)
		if err != nil {
			fatal(err)
		}
		entries = append(entries, scen...)
		harness.SortEntries(entries)
	}
	wall := time.Since(start).Nanoseconds()

	if *jsonPath != "" {
		rep := &harness.JSONReport{
			Parallel:      cfg.Parallel,
			Workers:       cfg.Workers,
			HarnessWallNS: wall,
			Incremental:   incBench,
			Entries:       entries,
		}
		if *baseline {
			fmt.Fprintln(os.Stderr, "re-running workload sequentially with caches disabled for the baseline...")
			seqCfg := cfg
			seqCfg.Parallel = 1
			seqCfg.NoCache = true
			seqStart := time.Now()
			if _, err := run(seqCfg, names, want, io.Discard); err != nil {
				fatal(fmt.Errorf("baseline run: %w", err))
			}
			rep.BaselineWallNS = time.Since(seqStart).Nanoseconds()
			if wall > 0 {
				rep.Speedup = float64(rep.BaselineWallNS) / float64(wall)
			}
			fmt.Fprintf(os.Stderr, "harness wall: %.2fs (parallel=%d, cached) vs %.2fs (sequential, uncached): %.2fx\n",
				float64(wall)/1e9, cfg.Parallel, float64(rep.BaselineWallNS)/1e9, rep.Speedup)
		}
		b, err := harness.RenderJSON(rep)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *jsonPath)
	}
}

// workload is the set of outputs one invocation regenerates.
type workload struct {
	table1, table2               bool
	fig5, fig6, fig7, fig8, sens bool
	mhp, json                    bool
}

// run prepares a suite and renders every requested output to w, returning
// the machine-readable entries when the JSON export was requested.
func run(cfg harness.Config, names []string, want workload, w io.Writer) ([]harness.JSONEntry, error) {
	fmt.Fprintln(os.Stderr, "preparing benchmarks (analyze + profile + instrument)...")
	s, err := harness.NewSuite(cfg, names...)
	if err != nil {
		return nil, err
	}

	if want.table1 {
		fmt.Fprintln(w, s.Table1())
	}
	if want.table2 {
		_, out, err := s.Table2()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.fig5 {
		_, out, err := s.Figure5()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.fig6 {
		_, out, err := s.Figure6()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.fig7 {
		_, out, err := s.Figure7()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.fig8 {
		_, out, err := s.Figure8(nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.sens {
		sensNames := names
		if len(sensNames) == 0 {
			sensNames = []string{"pfscan", "water"}
		}
		_, out, err := harness.ProfileSensitivity(sensNames, 10)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.mhp {
		_, out, err := s.FigureMHP()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.json {
		return s.MeasureJSON(harness.MHPConfigNames)
	}
	return nil, nil
}

// runScenarios measures generated scenario workloads through the full
// harness (MHP opt sets), printing a per-row summary and returning the
// JSON entries. The rows carry the same metrics block as the embedded
// benchmarks; the CI soundness gate asserts certified / replay_matches /
// checkers_agree / checker_races on them.
func runScenarios(cfg harness.Config, specText string, w io.Writer) ([]harness.JSONEntry, error) {
	specs, err := scenario.ParseList(specText)
	if err != nil {
		return nil, err
	}
	list := make([]*bench.Benchmark, len(specs))
	for i, sp := range specs {
		if list[i], err = scenario.ToBenchmark(sp); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(os.Stderr, "preparing %d generated scenario(s) (analyze + profile + instrument)...\n", len(list))
	s, err := harness.NewSuiteOf(cfg, list)
	if err != nil {
		return nil, err
	}
	entries, err := s.MeasureJSON(harness.MHPConfigNames)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Generated scenarios (all+mhp column):")
	fmt.Fprintf(w, "%-28s %6s %6s %6s | %7s %5s %5s %6s %6s\n",
		"scenario", "pairs", "kept", "wl", "rec.ovh", "cert", "rep?", "races", "agree")
	for _, e := range entries {
		if e.Config != "all+mhp" {
			continue
		}
		fmt.Fprintf(w, "%-28s %6d %6d %6d | %7.2f %5v %5v %6d %6v\n",
			e.Bench, e.StaticPairs, e.InstrumentedPairs, e.WeakLocks,
			e.RecordOverhead, e.Certified, e.ReplayMatches, e.CheckerRaces, e.CheckersAgree)
	}
	fmt.Fprintln(w)
	return entries, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera-bench:", err)
	os.Exit(1)
}
