// chimera drives the full pipeline on a MiniC source file: analyze, report
// races, instrument, record, and replay.
//
// Usage:
//
//	chimera -src prog.mc -mode races                 # RELAY report
//	chimera -src prog.mc -mode instrument            # print transformed source
//	chimera -src prog.mc -mode record -log run.clog  # record; persist the log
//	chimera -src prog.mc -mode replay -log run.clog  # replay a persisted log
//	chimera -src prog.mc -mode verify                # record + replay + compare
//	chimera -src prog.mc -mode verify -opt naive     # without optimizations
//
// The program runs against a default simulated world (a config file with
// zeros and an empty network); programs needing richer input are better
// driven through the library (see examples/).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/oskit"
	"repro/internal/replay"
	"repro/internal/weaklock"
)

func main() {
	var (
		srcPath = flag.String("src", "", "MiniC source file")
		mode    = flag.String("mode", "verify", "races | instrument | record | replay | verify")
		opt     = flag.String("opt", "all", "naive | func | loop | all")
		seed    = flag.Uint64("seed", 1, "record schedule seed")
		repSeed = flag.Uint64("replay-seed", 424242, "replay schedule seed")
		runs    = flag.Int("profile-runs", 6, "profile runs for non-concurrency")
		logPath = flag.String("log", "", "recording file to write (record) or read (replay)")
	)
	flag.Parse()
	if *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	prog, err := core.Load(*srcPath, string(src))
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "races":
		fmt.Printf("%d potential race pairs (%d racy nodes, %d racy functions)\n",
			len(prog.Races.Pairs), len(prog.Races.RacyNodes), len(prog.Races.RacyFuncs))
		for _, p := range prog.Races.Pairs {
			fmt.Printf("  %s:%s <-> %s:%s  (roots %s/%s)\n",
				p.A.Fn.Name, p.A.Pos, p.B.Fn.Name, p.B.Pos, p.RootA.Name, p.RootB.Name)
		}
		return
	}

	options := optionsFor(*opt)
	world := func() *oskit.World {
		w := oskit.NewWorld(7)
		w.AddFile(1, make([]int64, 8))
		return w
	}
	conc := prog.ProfileNonConcurrency(func(int) *oskit.World { return world() }, *runs, 99)
	ip, err := prog.Instrument(conc, options)
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "instrument":
		fmt.Println(ip.Prog.Source)
		counts := ip.Report.StaticCounts
		fmt.Fprintf(os.Stderr, "// %d weak-locks; sites: func=%d loop=%d bb=%d instr=%d\n",
			ip.Table.Len(), counts[weaklock.KindFunc], counts[weaklock.KindLoop],
			counts[weaklock.KindBB], counts[weaklock.KindInstr])

	case "record":
		res, log := ip.Record(core.RunConfig{World: world(), Seed: *seed, Table: ip.Table})
		if res.Err != nil {
			fatal(res.Err)
		}
		fmt.Printf("exit=%d makespan=%d output=%q\n", res.ExitCode, res.Makespan, res.Output)
		fmt.Printf("logs: %d input records, %d order records (gzip %0.1f + %0.1f KB)\n",
			log.InputCount(), log.OrderCount(), log.InputLogKB(), log.OrderLogKB())
		if *logPath != "" {
			f, err := os.Create(*logPath)
			if err != nil {
				fatal(err)
			}
			if _, err := log.WriteTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("recording written to %s\n", *logPath)
		}

	case "replay":
		if *logPath == "" {
			fatal(fmt.Errorf("-mode replay needs -log"))
		}
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		log, err := replay.ReadLog(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		res, err := ip.Replay(log, core.RunConfig{World: world(), Seed: *repSeed, Table: ip.Table})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed: exit=%d makespan=%d output=%q\n", res.ExitCode, res.Makespan, res.Output)

	case "verify":
		if err := ip.VerifyDeterministicReplay(world, *seed, *repSeed); err != nil {
			fatal(err)
		}
		fmt.Printf("deterministic replay verified (record seed %d, replay seed %d)\n", *seed, *repSeed)

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func optionsFor(name string) instrument.Options {
	switch name {
	case "naive":
		return instrument.NaiveOptions()
	case "func":
		return instrument.Options{FuncLocks: true}
	case "loop":
		return instrument.Options{LoopLocks: true, LoopBodyThreshold: 14}
	case "all":
		return instrument.AllOptions()
	}
	fatal(fmt.Errorf("unknown -opt %q", name))
	return instrument.Options{}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chimera:", err)
	os.Exit(1)
}
