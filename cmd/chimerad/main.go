// Command chimerad serves the Chimera pipeline as a sharded,
// multi-tenant HTTP job service (internal/service): submit analyze,
// record, replay-verify, or gen-pipeline jobs; poll or long-poll
// results; stream CHIMLOG2 logs in and out; scrape Prometheus text
// exposition at /metrics (the JSON snapshot lives at /metrics.json);
// fetch recent per-request span trees at /debug/traces. Every analyze
// verdict is byte-identical to the offline `racecheck` CLI on the same
// request — both front ends execute the single service.RunRequest path.
//
// Job lifecycle and drain events are logged as structured JSON lines
// on stderr (-log-level selects the threshold; "off" silences them).
// -ops-addr starts a second listener serving net/http/pprof for live
// profiling, kept off the request port so profiling exposure is an
// explicit operator decision.
//
// On SIGTERM/SIGINT the server drains gracefully: admission stops
// (submissions get 503), in-flight jobs run to completion bounded by
// -job-timeout, a final metrics snapshot is logged, and the process
// exits once the queues are empty or -drain-timeout expires.
//
// Usage:
//
//	chimerad                                  # listen on localhost:8377
//	chimerad -addr :9000 -shards 8            # wider pool on all interfaces
//	chimerad -spool /var/tmp/chimera          # keep CHIMLOG2 spools here
//	chimerad -ops-addr localhost:8378         # pprof on a separate port
//	racecheck -server http://localhost:8377 -mhp prog.mc
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is main's testable body: flags come from args, output goes to the
// given writers, and shutdown arrives on sig — so tests can boot a real
// server on an ephemeral port and deliver a synthetic SIGTERM.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("chimerad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "localhost:8377", "listen address")
		opsAddr      = fs.String("ops-addr", "", "ops listen address serving net/http/pprof (empty: profiling off)")
		shards       = fs.Int("shards", runtime.NumCPU(), "worker shard count (jobs route by spec hash)")
		depth        = fs.Int("depth", 256, "per-shard queue capacity")
		jobTimeout   = fs.Duration("job-timeout", 2*time.Minute, "per-job execution bound")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM")
		spool        = fs.String("spool", "", "CHIMLOG2 spool directory (default: a fresh temp dir, removed on exit)")
		logLevel     = fs.String("log-level", "info", "structured log threshold: debug|info|warn|error|off")
		traceRing    = fs.Int("trace-ring", 64, "recent job traces retained for /debug/traces")
	)
	if err := fs.Parse(args); err != nil {
		return service.ExitUsage
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return service.ExitUsage
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "chimerad:", err)
		return service.ExitUsage
	}
	lg := obs.NewLogger(stderr, level)

	dir := *spool
	if dir == "" {
		d, err := os.MkdirTemp("", "chimerad-spool-")
		if err != nil {
			fmt.Fprintln(stderr, "chimerad:", err)
			return service.ExitFailure
		}
		defer os.RemoveAll(d)
		dir = d
	}

	eng := service.NewEngine(service.EngineConfig{
		Shards:     *shards,
		Depth:      *depth,
		SpoolDir:   dir,
		JobTimeout: *jobTimeout,
		Logger:     lg,
		TraceRing:  *traceRing,
	})
	srv := &http.Server{Handler: service.NewServer(eng)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "chimerad:", err)
		return service.ExitFailure
	}
	// The listening line is the readiness signal scripts wait for.
	fmt.Fprintf(stdout, "chimerad: listening on http://%s (shards=%d, depth=%d, spool=%s)\n",
		ln.Addr(), *shards, *depth, dir)

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "chimerad:", err)
			return service.ExitFailure
		}
		// A dedicated mux: the ops listener serves profiling and nothing
		// else, and the request listener never exposes pprof.
		opsMux := http.NewServeMux()
		opsMux.HandleFunc("/debug/pprof/", pprof.Index)
		opsMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		opsMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		opsMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		opsMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		opsSrv = &http.Server{Handler: opsMux}
		go opsSrv.Serve(opsLn)
		fmt.Fprintf(stdout, "chimerad: ops listening on http://%s (pprof)\n", opsLn.Addr())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "chimerad: %v: draining (timeout %s)...\n", s, *drainTimeout)
		lg.Info("drain_begin", obs.Str("signal", s.String()), obs.Str("timeout", drainTimeout.String()))
	case err := <-errCh:
		fmt.Fprintln(stderr, "chimerad: serve:", err)
		return service.ExitFailure
	}

	drained := eng.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if opsSrv != nil {
		opsSrv.Shutdown(ctx)
	}

	// The final snapshot line: everything the server knew at exit, as
	// one JSON log record scripts and post-mortems can parse.
	if snap, err := json.Marshal(eng.Metrics()); err == nil {
		lg.Info("final_metrics", obs.RawJSON("metrics", snap))
	}

	if !drained {
		fmt.Fprintln(stderr, "chimerad: drain timed out; abandoning queued jobs")
		lg.Error("drain_timeout")
		return service.ExitFailure
	}
	fmt.Fprintln(stderr, "chimerad: drained cleanly")
	lg.Info("drain_complete")
	return service.ExitOK
}
