// Command chimerad serves the Chimera pipeline as a sharded,
// multi-tenant HTTP job service (internal/service): submit analyze,
// record, replay-verify, or gen-pipeline jobs; poll or long-poll
// results; stream CHIMLOG2 logs in and out; scrape per-tenant cache
// metrics at /metrics. Every analyze verdict is byte-identical to the
// offline `racecheck` CLI on the same request — both front ends execute
// the single service.RunRequest path.
//
// On SIGTERM/SIGINT the server drains gracefully: admission stops
// (submissions get 503), in-flight jobs run to completion bounded by
// -job-timeout, and the process exits once the queues are empty or
// -drain-timeout expires.
//
// Usage:
//
//	chimerad                                  # listen on localhost:8377
//	chimerad -addr :9000 -shards 8            # wider pool on all interfaces
//	chimerad -spool /var/tmp/chimera          # keep CHIMLOG2 spools here
//	racecheck -server http://localhost:8377 -mhp prog.mc
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "localhost:8377", "listen address")
		shards       = flag.Int("shards", runtime.NumCPU(), "worker shard count (jobs route by spec hash)")
		depth        = flag.Int("depth", 256, "per-shard queue capacity")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "per-job execution bound")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM")
		spool        = flag.String("spool", "", "CHIMLOG2 spool directory (default: a fresh temp dir, removed on exit)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		return service.ExitUsage
	}

	dir := *spool
	if dir == "" {
		d, err := os.MkdirTemp("", "chimerad-spool-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chimerad:", err)
			return service.ExitFailure
		}
		defer os.RemoveAll(d)
		dir = d
	}

	eng := service.NewEngine(service.EngineConfig{
		Shards:     *shards,
		Depth:      *depth,
		SpoolDir:   dir,
		JobTimeout: *jobTimeout,
	})
	srv := &http.Server{Handler: service.NewServer(eng)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chimerad:", err)
		return service.ExitFailure
	}
	// The listening line is the readiness signal scripts wait for.
	fmt.Printf("chimerad: listening on http://%s (shards=%d, depth=%d, spool=%s)\n",
		ln.Addr(), *shards, *depth, dir)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "chimerad: %v: draining (timeout %s)...\n", s, *drainTimeout)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "chimerad: serve:", err)
		return service.ExitFailure
	}

	drained := eng.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if !drained {
		fmt.Fprintln(os.Stderr, "chimerad: drain timed out; abandoning queued jobs")
		return service.ExitFailure
	}
	fmt.Fprintln(os.Stderr, "chimerad: drained cleanly")
	return service.ExitOK
}
