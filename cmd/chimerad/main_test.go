package main

import (
	"bytes"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// syncBuf is a bytes.Buffer safe for the concurrent writes run's server
// goroutines produce while the test reads it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`chimerad: listening on http://(\S+) `)

// TestRunDrainExitAndFinalMetrics boots run() on an ephemeral port, does
// one job's worth of real traffic, then delivers a synthetic SIGTERM and
// pins the drain contract: exit code 0, a "drained cleanly" stderr line,
// and a final_metrics structured log line that parses as JSON and carries
// the engine's metrics snapshot.
func TestRunDrainExitAndFinalMetrics(t *testing.T) {
	var stdout, stderr syncBuf
	sig := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-shards", "2",
			"-depth", "16",
			"-spool", t.TempDir(),
			"-drain-timeout", "30s",
		}, &stdout, &stderr, sig)
	}()

	// Wait for the readiness line and pull the bound address out of it.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no readiness line; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	c := service.NewClient(base)
	src := `int x;
void bump(int id) { x = x + id; }
int main(void) {
    int t = spawn(bump, 1);
    join(t);
    return x;
}
`
	accepted, err := c.Submit(&service.JobSpec{Kind: service.JobRecord, Tenant: "acme", Name: "drain", Source: src, Seed: 7})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, err := c.Wait(accepted.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.State != service.StateDone {
		t.Fatalf("job state = %s (error %q), want done", v.State, v.Error)
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != service.ExitOK {
			t.Fatalf("run exit = %d, want %d; stderr=%q", code, service.ExitOK, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not exit after SIGTERM; stderr=%q", stderr.String())
	}

	errText := stderr.String()
	if !strings.Contains(errText, "chimerad: drained cleanly") {
		t.Fatalf("stderr missing clean-drain line:\n%s", errText)
	}

	// The final snapshot must be one valid JSON log line whose metrics
	// payload is a real ServiceMetrics document with traffic in it.
	var finalLine string
	for _, line := range strings.Split(errText, "\n") {
		if strings.Contains(line, `"event":"final_metrics"`) {
			finalLine = line
		}
	}
	if finalLine == "" {
		t.Fatalf("stderr missing final_metrics log line:\n%s", errText)
	}
	var rec struct {
		TS      string          `json:"ts"`
		Level   string          `json:"level"`
		Event   string          `json:"event"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(finalLine), &rec); err != nil {
		t.Fatalf("final_metrics line is not valid JSON: %v\nline: %s", err, finalLine)
	}
	if rec.Event != "final_metrics" || rec.Level != "info" {
		t.Fatalf("final_metrics line fields = (%q, %q), want (final_metrics, info)", rec.Event, rec.Level)
	}
	var m struct {
		Schema int `json:"schema"`
		Jobs   struct {
			Done int `json:"done"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Metrics, &m); err != nil {
		t.Fatalf("final_metrics metrics payload is not valid JSON: %v", err)
	}
	if m.Schema != 2 || m.Jobs.Done < 1 {
		t.Fatalf("final_metrics snapshot = schema %d, done %d; want schema 2 with >=1 done job", m.Schema, m.Jobs.Done)
	}
}

// TestRunBadFlags pins the usage exit code for malformed invocations.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr syncBuf
	if code := run([]string{"-log-level", "loud"}, &stdout, &stderr, nil); code != service.ExitUsage {
		t.Fatalf("bad -log-level exit = %d, want %d", code, service.ExitUsage)
	}
	if code := run([]string{"stray-arg"}, &stdout, &stderr, nil); code != service.ExitUsage {
		t.Fatalf("stray arg exit = %d, want %d", code, service.ExitUsage)
	}
}
