// Command logstat inspects a Chimera record/replay log (the CHIMLOG2
// chunked format written by racecheck -record and the bench harness):
// per-stream chunk, record and byte counts, compression ratios, and the
// order-record breakdown by sync class and event kind. Every chunk is
// CRC-verified and fully decoded, so a clean exit also certifies the log
// is well-formed.
//
// Usage:
//
//	logstat [-json] file.clog
//	logstat -json -        # read the stream from stdin, e.g. piped out of
//	                       # a chimerad job: curl .../v1/jobs/ID/log | logstat -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/replay"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, in io.Reader, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("logstat", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit the breakdown as JSON")
	chunks := fs.Bool("chunks", false, "also list every chunk (text mode)")
	fs.Usage = func() {
		fmt.Fprintf(errOut, "usage: logstat [-json] [-chunks] file.clog  (\"-\" reads stdin)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)
	var src io.Reader
	if path == "-" {
		src = in
		path = "<stdin>"
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(errOut, "logstat: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	info, err := replay.Stat(src)
	if err != nil {
		fmt.Fprintf(errOut, "logstat: %s: %v\n", path, err)
		return 1
	}
	if *jsonOut {
		enc, err := json.MarshalIndent(jsonInfo(info), "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "logstat: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "%s\n", enc)
		return 0
	}
	render(out, info, *chunks)
	return 0
}

// jsonReport is the -json shape: LogInfo plus derived ratios, with stable
// field names (maps marshal with sorted keys, so output is deterministic
// for a given log).
type jsonReport struct {
	TotalBytes   int64            `json:"total_bytes"`
	Input        jsonStream       `json:"input"`
	Order        jsonStream       `json:"order"`
	OrderByClass map[string]int64 `json:"order_by_class"`
	OrderByKind  map[string]int64 `json:"order_by_kind"`
	Chunks       int              `json:"chunks"`
}

type jsonStream struct {
	Chunks          int64   `json:"chunks"`
	Records         int64   `json:"records"`
	RawBytes        int64   `json:"raw_bytes"`
	CompressedBytes int64   `json:"compressed_bytes"`
	WireBytes       int64   `json:"wire_bytes"`
	Ratio           float64 `json:"compression_ratio"`
}

func jsonInfo(info *replay.LogInfo) jsonReport {
	return jsonReport{
		TotalBytes:   info.TotalBytes,
		Input:        jsonStream_(info.Input),
		Order:        jsonStream_(info.Order),
		OrderByClass: info.OrderByClass,
		OrderByKind:  info.OrderByKind,
		Chunks:       len(info.Chunks),
	}
}

func jsonStream_(s replay.StreamInfo) jsonStream {
	return jsonStream{
		Chunks:          s.Chunks,
		Records:         s.Records,
		RawBytes:        s.RawBytes,
		CompressedBytes: s.CompressedBytes,
		WireBytes:       s.WireBytes,
		Ratio:           s.Ratio(),
	}
}

func render(out io.Writer, info *replay.LogInfo, listChunks bool) {
	fmt.Fprintf(out, "total         %d bytes (%d chunks + magic + end marker)\n",
		info.TotalBytes, len(info.Chunks))
	renderStream(out, "input", info.Input)
	renderStream(out, "order", info.Order)
	if len(info.OrderByClass) > 0 {
		fmt.Fprintf(out, "order records by class:\n")
		for _, k := range sortedKeys(info.OrderByClass) {
			fmt.Fprintf(out, "  %-10s %d\n", k, info.OrderByClass[k])
		}
	}
	if len(info.OrderByKind) > 0 {
		fmt.Fprintf(out, "order records by kind:\n")
		for _, k := range sortedKeys(info.OrderByKind) {
			fmt.Fprintf(out, "  %-10s %d\n", k, info.OrderByKind[k])
		}
	}
	if listChunks {
		fmt.Fprintf(out, "chunks:\n")
		for i, c := range info.Chunks {
			fmt.Fprintf(out, "  [%d] %-5s %6d records  %8d raw  %8d compressed  crc %08x\n",
				i, c.Kind, c.Records, c.RawBytes, c.CompressedBytes, c.CRC)
		}
	}
}

func renderStream(out io.Writer, name string, s replay.StreamInfo) {
	fmt.Fprintf(out, "%-6s stream  %d records in %d chunks, %d raw -> %d wire bytes (ratio %.2f)\n",
		name, s.Records, s.Chunks, s.RawBytes, s.WireBytes, s.Ratio())
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
