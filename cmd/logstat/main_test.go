package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/replay"
	"repro/internal/vm"
)

var update = flag.Bool("update", false, "regenerate testdata fixtures")

// writeFixture builds the checked-in sample log. The fixture is committed
// as a binary (log *reading* is deterministic everywhere; gzip *output*
// may differ across Go releases, so we pin the bytes rather than
// regenerate on the fly) and refreshed only via -update.
func writeFixture(t *testing.T, path string) {
	t.Helper()
	var buf bytes.Buffer
	lw := replay.NewLogWriter(&buf)
	for i := 0; i < 10; i++ {
		lw.Input(i%3, replay.InputRec{Op: 3, Val: int64(100 + i)})
	}
	lw.Input(1, replay.InputRec{Op: 5, Val: 4, Data: []int64{7, 8, 9, 10}})
	mu := vm.SyncKey{Class: vm.SyncMutex, ID: 32}
	wl := vm.SyncKey{Class: vm.SyncWeakLock, ID: 0}
	sp := vm.SyncKey{Class: vm.SyncSpawn, ID: 0}
	lw.Order(sp, replay.OrderRec{Tid: 0, Kind: vm.EvSpawn})
	for i := 0; i < 4; i++ {
		lw.Order(mu, replay.OrderRec{Tid: int32(i % 2), Kind: vm.EvAcquire})
		lw.Order(mu, replay.OrderRec{Tid: int32(i % 2), Kind: vm.EvRelease})
	}
	lw.Order(wl, replay.OrderRec{Tid: 1, Kind: vm.EvWLAcquire})
	lw.Order(wl, replay.OrderRec{
		Tid: 0, Kind: vm.EvWLForcedRelease,
		Anchor: vm.ForcedAnchor{Instr: 12345, Sync: 6, Blocked: true},
	})
	lw.Order(wl, replay.OrderRec{Tid: 1, Kind: vm.EvWLRelease})
	if err := lw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write fixture: %v", err)
	}
}

func TestGolden(t *testing.T) {
	clog := filepath.Join("testdata", "sample.clog")
	golden := filepath.Join("testdata", "sample.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		writeFixture(t, clog)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-chunks", clog}, nil, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output drifted from golden (regenerate with -update):\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", filepath.Join("testdata", "sample.clog")}, nil, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{
		`"total_bytes"`, `"order_by_class"`, `"weaklock"`, `"wlforce"`, `"compression_ratio"`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, out.String())
		}
	}
}

// TestStdin pipes the checked-in fixture through "-" and requires output
// byte-identical to reading the same file by path — the regression test
// for inspecting CHIMLOG2 streams piped out of the service
// (curl .../v1/jobs/ID/log | logstat -).
func TestStdin(t *testing.T) {
	clog := filepath.Join("testdata", "sample.clog")
	data, err := os.ReadFile(clog)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{{"-chunks"}, {"-json"}} {
		var fromFile, fromStdin, errOut bytes.Buffer
		if code := run(append(mode, clog), nil, &fromFile, &errOut); code != 0 {
			t.Fatalf("%v %s: run = %d, stderr: %s", mode, clog, code, errOut.String())
		}
		if code := run(append(mode, "-"), bytes.NewReader(data), &fromStdin, &errOut); code != 0 {
			t.Fatalf("%v -: run = %d, stderr: %s", mode, code, errOut.String())
		}
		if !bytes.Equal(fromFile.Bytes(), fromStdin.Bytes()) {
			t.Errorf("%v: stdin output differs from file output:\n--- file ---\n%s\n--- stdin ---\n%s",
				mode, fromFile.Bytes(), fromStdin.Bytes())
		}
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-"}, strings.NewReader("NOTALOG!"), &out, &errOut); code != 1 {
		t.Errorf("corrupt stdin: code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "<stdin>") {
		t.Errorf("corrupt stdin: stderr = %q, want the <stdin> pseudo-path", errOut.String())
	}
}

func TestErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, nil, &out, &errOut); code != 2 {
		t.Errorf("no args: code = %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.clog")}, nil, &out, &errOut); code != 1 {
		t.Errorf("missing file: code = %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.clog")
	if err := os.WriteFile(bad, []byte("NOTALOG!"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{bad}, nil, &out, &errOut); code != 1 {
		t.Errorf("corrupt file: code = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "not a chimera log") {
		t.Errorf("corrupt file: stderr = %q, want mention of bad magic", errOut.String())
	}
}
