// minic runs a MiniC program natively on the simulated multicore VM.
//
// Usage:
//
//	minic prog.mc                # run with an empty world
//	minic -seed 7 prog.mc        # different schedule seed
//	minic -disasm prog.mc        # print bytecode instead of running
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/vm"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 1, "schedule seed")
		disasm = flag.Bool("disasm", false, "print bytecode and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := parser.Parse(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	info, err := types.Check(file)
	if err != nil {
		fatal(err)
	}
	prog, err := vm.Compile(info)
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(prog.Disasm())
		return
	}
	w := oskit.NewWorld(*seed)
	w.AddFile(1, make([]int64, 8))
	r := vm.Run(prog, vm.Config{Inputs: vm.LiveInputs{OS: w}, Seed: *seed})
	os.Stdout.Write(r.Output)
	if r.Err != nil {
		fatal(r.Err)
	}
	fmt.Fprintf(os.Stderr, "exit=%d makespan=%d instrs=%d threads=%d\n",
		r.ExitCode, r.Makespan, r.Counters.Instrs, r.Threads)
	os.Exit(int(r.ExitCode))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minic:", err)
	os.Exit(1)
}
