// racecheck runs the RELAY static data-race detector on a MiniC source
// file and prints the report: race pairs, racy functions, and per-function
// summaries on request. Output is deterministic (pairs are ordered by
// source position), so it can be diffed across runs.
//
// With -certify it also runs the Chimera weak-lock instrumentation and
// the static translation validator (internal/certify) over the result,
// printing the certificate verdict and exiting nonzero unless coverage,
// balance and lock-order checks all pass.
//
// Usage:
//
//	racecheck prog.mc
//	racecheck -v prog.mc    # include racy node details
//	racecheck -mhp prog.mc  # apply the static MHP refinement and report
//	                        # kept vs pruned pairs with provenance
//	racecheck -precision prog.mc
//	                        # apply the static precision layer (thread-escape,
//	                        # must-lockset sharpening, read-only sharing);
//	                        # composes with -mhp, which runs first
//	racecheck -pairs prog.mc
//	                        # print the per-pair provenance table under the
//	                        # full refinement chain: every reported pair with
//	                        # its disposition (pruned-by-mhp, pruned-by-escape,
//	                        # pruned-by-mustlock, pruned-by-readonly, or
//	                        # instrumented), sorted by source position
//	racecheck -parallel 4 prog.mc
//	                        # fan the summary computation over 4 workers;
//	                        # output is byte-identical to -parallel 1
//	racecheck -certify prog.mc
//	                        # instrument (default config "all") and certify
//	racecheck -certify -config instr -mhp prog.mc
//	                        # certify a specific config over the refined report
//	racecheck -certify -instrumented inst.mc prog.mc
//	                        # certify a pre-instrumented file against
//	                        # prog.mc's race report (translation validation
//	                        # of external or hand-edited output)
//	racecheck -certify -bench all -certout certs/
//	                        # certify every embedded benchmark (or one, by
//	                        # name) and write the JSON certificates to a dir
//	racecheck -dynamic prog.mc
//	                        # run the program and report dynamic races from
//	                        # the FastTrack-epoch checker attached as a
//	                        # batched event sink
//	racecheck -dynamic -checker both -seed 7 -bench radix
//	                        # run a benchmark under schedule seed 7 with the
//	                        # epoch checker and the full-vector oracle on
//	                        # one event stream; exit nonzero if they diverge
//	racecheck -incremental prog.mc
//	                        # analyze through the summary-store-backed
//	                        # incremental engine (byte-identical report)
//	racecheck -batch dir -summary-stats
//	                        # analyze every *.mc in dir through one shared
//	                        # summary store, reusing per-function summaries
//	                        # across files, then print store statistics
//	racecheck -gen 'counters:7:small'
//	                        # generate the scenario program for a spec and
//	                        # push it through the full soundness pipeline
//	                        # (analyze fresh==incremental, instrument,
//	                        # certify clean, record, replay bit-identical,
//	                        # epoch==vector verdicts); -v prints the source.
//	                        # This is the one-shot repro for a failing
//	                        # generated spec.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/harness"
	"repro/internal/callgraph"
	"repro/internal/certify"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/instrument"
	"repro/internal/mhp"
	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/pointsto"
	"repro/internal/relay"
	"repro/internal/scenario"
	"repro/internal/summary"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// optionsFor maps a configuration name (without the "+mhp" suffix) to
// instrumenter options; it mirrors the bench harness's configuration
// vocabulary.
func optionsFor(name string) (instrument.Options, bool) {
	switch name {
	case "instr":
		return instrument.NaiveOptions(), true
	case "instr+func":
		return instrument.Options{FuncLocks: true}, true
	case "instr+loop":
		return instrument.Options{LoopLocks: true, LoopBodyThreshold: 14}, true
	case "all":
		return instrument.AllOptions(), true
	}
	return instrument.Options{}, false
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("racecheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	verbose := fs.Bool("v", false, "verbose: list racy nodes and locksets")
	showCFG := fs.Bool("cfg", false, "print each racy function's control-flow graph")
	useMHP := fs.Bool("mhp", false, "apply the static may-happen-in-parallel refinement")
	usePrecision := fs.Bool("precision", false, "apply the static precision layer (thread-escape, must-lockset sharpening, read-only sharing)")
	showPairs := fs.Bool("pairs", false, "print the per-pair provenance table (reported → pruned-by-* → instrumented) under the full refinement chain")
	parallel := fs.Int("parallel", 1, "worker count for the summary computation (1 = sequential)")
	doCertify := fs.Bool("certify", false, "instrument and run the static DRF/deadlock-freedom certifier")
	config := fs.String("config", "all", "instrumentation config for -certify: instr, instr+func, instr+loop, all")
	certOut := fs.String("certout", "", "directory to write certificate JSON files to (with -certify)")
	instrumented := fs.String("instrumented", "", "pre-instrumented source to certify against the original's report (with -certify)")
	benchName := fs.String("bench", "", "an embedded benchmark by name, or \"all\" (with -certify or -dynamic)")
	dynamic := fs.Bool("dynamic", false, "run the program and report dynamic races from the event-sink checker")
	checker := fs.String("checker", "epoch", "dynamic race checker for -dynamic: epoch, vector, or both")
	seed := fs.Uint64("seed", 1, "schedule seed for -dynamic runs")
	tracePath := fs.String("trace", "", "write a Chrome/Perfetto trace of the observed pipeline to this file (with -dynamic)")
	metricsPath := fs.String("metrics", "", "write the observability metrics report (JSON) to this file (with -dynamic)")
	incremental := fs.Bool("incremental", false, "run the static analysis through the summary-store-backed incremental engine")
	batchDir := fs.String("batch", "", "analyze every *.mc file in this directory through one shared summary store")
	summaryStats := fs.Bool("summary-stats", false, "print summary-store and dirty-cone statistics (with -incremental or -batch)")
	genSpec := fs.String("gen", "", "generate the scenario program for a spec (family:seed:size) and run the full soundness pipeline on it")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *genSpec != "" {
		if *dynamic || *doCertify || *batchDir != "" || *benchName != "" || fs.NArg() != 0 {
			fmt.Fprintln(errOut, "racecheck: -gen takes a spec and combines only with -v")
			return 2
		}
		return runGen(*genSpec, *verbose, out, errOut)
	}

	if *batchDir != "" {
		if *dynamic || *doCertify || *benchName != "" || fs.NArg() != 0 {
			fmt.Fprintln(errOut, "racecheck: -batch takes a directory and combines only with -mhp, -parallel, and -summary-stats")
			return 2
		}
		return runBatch(*batchDir, *parallel, *useMHP, *summaryStats, out, errOut)
	}
	if *summaryStats && !*incremental {
		fmt.Fprintln(errOut, "racecheck: -summary-stats requires -incremental or -batch")
		return 2
	}

	if *tracePath != "" || *metricsPath != "" {
		if !*dynamic {
			fmt.Fprintln(errOut, "racecheck: -trace/-metrics require -dynamic")
			return 2
		}
		return runObserved(fs, *benchName, *checker, *seed, *config, *useMHP, *parallel,
			*tracePath, *metricsPath, out, errOut)
	}

	if *dynamic {
		if *benchName != "" {
			if fs.NArg() != 0 {
				fs.Usage()
				return 2
			}
			return runDynamicBench(*benchName, *checker, *seed, out, errOut)
		}
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
		name := strings.TrimSuffix(filepath.Base(fs.Arg(0)), filepath.Ext(fs.Arg(0)))
		prog, err := core.Load(name, string(src))
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
		return runDynamic(name, prog, oskit.NewWorld(*seed), *seed, *checker, out, errOut)
	}

	opts, okConfig := optionsFor(*config)
	if *doCertify && !okConfig {
		fmt.Fprintf(errOut, "racecheck: unknown -config %q\n", *config)
		return 2
	}
	label := *config
	if *useMHP {
		label += "+mhp"
	}
	if *usePrecision {
		label += "+precision"
	}

	if *benchName != "" {
		if !*doCertify || fs.NArg() != 0 || *instrumented != "" {
			fs.Usage()
			return 2
		}
		return runBench(*benchName, label, opts, *useMHP, *usePrecision, *certOut, out, errOut)
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 1
	}
	file, err := parser.Parse(fs.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 1
	}
	info, err := types.Check(file)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 1
	}
	var rep *relay.Report
	var incStats *relay.IncrementalStats
	var store *summary.Store
	if *incremental {
		store = summary.NewStore()
		pta := pointsto.Analyze(info)
		cg := callgraph.Build(info, pta)
		rep, incStats = relay.AnalyzeIncremental(info, pta, cg, *parallel, store)
	} else {
		rep = relay.AnalyzeProgramParallel(info, *parallel)
	}
	if *showPairs {
		printPairProvenance(fs.Arg(0), rep, out)
		return 0
	}
	if *useMHP {
		refined := mhp.Refine(rep)
		fmt.Fprintf(out, "%s: %d potential race pairs, MHP kept %d, pruned %d\n",
			fs.Arg(0), len(rep.Pairs), len(refined.Pairs), len(refined.Pruned))
		pruned := append([]relay.PrunedPair(nil), refined.Pruned...)
		sort.SliceStable(pruned, func(i, j int) bool {
			return pairLess(pruned[i].Pair, pruned[j].Pair)
		})
		for _, pp := range pruned {
			fmt.Fprintf(out, "  pruned: %-13s %s\n", pp.Reason, pairString(pp.Pair))
		}
		rep = refined
	}
	if *usePrecision {
		prior := len(rep.Pruned)
		refined := escape.Refine(rep)
		fmt.Fprintf(out, "%s: precision kept %d, discharged %d\n",
			fs.Arg(0), len(refined.Pairs), len(refined.Pruned)-prior)
		// RefinePrecision carries prior prunes first, so the tail is ours.
		pruned := append([]relay.PrunedPair(nil), refined.Pruned[prior:]...)
		sort.SliceStable(pruned, func(i, j int) bool {
			return pairLess(pruned[i].Pair, pruned[j].Pair)
		})
		for _, pp := range pruned {
			fmt.Fprintf(out, "  discharged: %-9s %s\n", pp.Reason, pairString(pp.Pair))
		}
		rep = refined
	}

	fmt.Fprintf(out, "%s: %d potential race pairs, %d racy nodes, %d racy functions\n",
		fs.Arg(0), len(rep.Pairs), len(rep.RacyNodes), len(rep.RacyFuncs))

	pairsByFn := make(map[string]int)
	for _, p := range rep.Pairs {
		fp := p.FnPair()
		pairsByFn[fp[0]+" <-> "+fp[1]]++
	}
	var keys []string
	for k := range pairsByFn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(out, "racy function pairs:")
	for _, k := range keys {
		fmt.Fprintf(out, "  %-40s %d race pair(s)\n", k, pairsByFn[k])
	}

	if *verbose {
		pairs := append([]*relay.RacePair(nil), rep.Pairs...)
		sort.SliceStable(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
		fmt.Fprintln(out, "race pairs:")
		for _, p := range pairs {
			fmt.Fprintf(out, "  %s\n", pairString(p))
		}
	}

	if *showCFG {
		var names []string
		for fn := range rep.RacyFuncs {
			names = append(names, fn.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			fn := info.Funcs[name]
			g := cfg.Build(fn.Decl)
			fmt.Fprint(out, g.String())
			loops := g.NaturalLoops()
			fmt.Fprintf(out, "  %d natural loop(s)\n", len(loops))
		}
	}

	if *summaryStats && incStats != nil {
		fmt.Fprintf(out, "incremental: %d function(s), %d reused, %d recomputed, %d dirty SCC(s), %d unkeyable\n",
			incStats.TotalFuncs, incStats.ReusedFuncs, incStats.RecomputedFuncs,
			incStats.DirtySCCs, len(incStats.Unkeyable))
		printSummaryStats(nil, store, out)
	}

	if !*doCertify {
		return 0
	}

	// Certification: validate the instrumented output (either freshly
	// produced here, or a pre-instrumented file given explicitly)
	// against the report computed above.
	name := strings.TrimSuffix(filepath.Base(fs.Arg(0)), filepath.Ext(fs.Arg(0)))
	var instSrc string
	if *instrumented != "" {
		b, err := os.ReadFile(*instrumented)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
		instSrc = string(b)
	} else {
		res, err := instrument.Instrument(rep, nil, opts)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck: instrument:", err)
			return 1
		}
		instSrc = res.Source
	}
	cert, err := certify.Certify(rep, instSrc, name, label)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck: certify:", err)
		return 1
	}
	return reportCert(cert, *certOut, out, errOut)
}

// runBatch analyzes every *.mc file under dir (sorted by name) through
// one incremental cache sharing a single summary store, so functions
// repeated across the corpus — identical files, shared library code,
// copies with local edits — are summarized once and reused. Per file it
// prints the race-pair count and how much of the RELAY walk was reused.
func runBatch(dir string, workers int, useMHP, showStats bool, out, errOut io.Writer) int {
	// An unusable corpus directory is its own failure class (exit 4),
	// distinct from per-file analysis failures (exit 1) and usage errors
	// (exit 2), so scripts can tell "the corpus is missing" from "the
	// corpus has a broken file".
	info, err := os.Stat(dir)
	switch {
	case err != nil:
		fmt.Fprintf(errOut, "racecheck: -batch directory %s does not exist: %v\n", dir, err)
		return 4
	case !info.IsDir():
		fmt.Fprintf(errOut, "racecheck: -batch target %s is not a directory\n", dir)
		return 4
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.mc"))
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintf(errOut, "racecheck: -batch directory %s contains no *.mc files\n", dir)
		return 4
	}
	sort.Strings(paths)

	store := summary.NewStore()
	cache := core.NewIncrementalCache(store)
	status := 0
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		prog, err := cache.Load(name, string(src), workers)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", path, err)
			status = 1
			continue
		}
		rep := prog.Races
		if useMHP {
			rep = prog.RefinedRaces()
		}
		line := fmt.Sprintf("%s: %d race pair(s)", path, len(rep.Pairs))
		if st := prog.Incremental; st != nil {
			line += fmt.Sprintf(" [summaries: %d/%d reused]", st.ReusedFuncs, st.TotalFuncs)
		}
		fmt.Fprintln(out, line)
	}
	if showStats {
		printSummaryStats(cache, store, out)
	}
	return status
}

// printSummaryStats prints the whole-program cache outcomes (when a
// cache was involved) and the summary store's counters.
func printSummaryStats(cache *core.Cache, store *summary.Store, out io.Writer) {
	if cache != nil {
		hits, partial, misses := cache.Stats()
		fmt.Fprintf(out, "cache: %d whole-program hit(s), %d partial hit(s), %d miss(es)\n",
			hits, partial, misses)
	}
	st := store.Stats()
	fmt.Fprintf(out, "summary store: %d hit(s), %d miss(es), %d put(s), %d eviction(s), %d entries\n",
		st.Hits, st.Misses, st.Puts, st.Evictions, st.Entries)
	fmt.Fprintf(out, "mhp facts: %d hit(s), %d miss(es)\n", st.MHPHits, st.MHPMisses)
}

// runObserved runs the fully observed pipeline (analyze → … → record →
// replay → dynamic check) for one benchmark or source file and writes the
// Perfetto trace and/or the metrics report. Output files are created
// before any work runs, and an unwritable path is its own failure class
// (exit 3) so scripts can tell "could not write the artifacts" from
// "the pipeline failed".
func runObserved(fs *flag.FlagSet, benchName, checker string, seed uint64, config string, useMHP bool, parallel int, tracePath, metricsPath string, out, errOut io.Writer) int {
	if checker != "epoch" && checker != "vector" {
		fmt.Fprintf(errOut, "racecheck: -trace/-metrics support -checker epoch or vector, not %q\n", checker)
		return 2
	}
	if _, ok := optionsFor(config); !ok {
		fmt.Fprintf(errOut, "racecheck: unknown -config %q\n", config)
		return 2
	}
	label := config
	if useMHP {
		label += "+mhp"
	}

	var target harness.ObserveTarget
	switch {
	case benchName == "all":
		fmt.Fprintln(errOut, "racecheck: -trace/-metrics observe a single benchmark, not -bench all")
		return 2
	case benchName != "":
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		b := bench.ByName(benchName)
		if b == nil {
			fmt.Fprintf(errOut, "racecheck: unknown benchmark %q\n", benchName)
			return 2
		}
		target = harness.TargetFor(b)
	default:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
		name := strings.TrimSuffix(filepath.Base(fs.Arg(0)), filepath.Ext(fs.Arg(0)))
		target = harness.ObserveTarget{
			Name:         name,
			Source:       string(src),
			ProfileWorld: func(run int) *oskit.World { return oskit.NewWorld(seed + uint64(run)) },
			ProfileRuns:  5,
			EvalWorld:    func(int) *oskit.World { return oskit.NewWorld(seed) },
		}
	}

	// Open every requested artifact up front: a path we cannot write is
	// reported before minutes of pipeline work, with a distinct exit code.
	outputs := make(map[string]*os.File)
	for _, path := range []string{tracePath, metricsPath} {
		if path == "" {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: cannot write output artifact: %v\n", err)
			return 3
		}
		defer f.Close()
		outputs[path] = f
	}

	obsn, err := harness.Observe(target, harness.ObserveOptions{
		Config:   label,
		Parallel: parallel,
		Seed:     seed,
		Checker:  checker,
	})
	if err != nil {
		fmt.Fprintf(errOut, "racecheck: %s: %v\n", target.Name, err)
		return 1
	}

	if tracePath != "" {
		data, err := obsn.Tracer.Perfetto()
		if err == nil {
			_, err = outputs[tracePath].Write(data)
		}
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: write %s: %v\n", tracePath, err)
			return 3
		}
	}
	if metricsPath != "" {
		data, err := obsn.Report.Marshal()
		if err == nil {
			_, err = outputs[metricsPath].Write(data)
		}
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: write %s: %v\n", metricsPath, err)
			return 3
		}
	}

	rpt := obsn.Report
	fmt.Fprintf(out, "%s [%s]: %d stage span(s), %d weak-lock site(s), %d dynamic race(s)\n",
		rpt.Program, rpt.Config, len(rpt.Stages), len(rpt.WeakLocks.Sites), rpt.Checker.Races)
	fmt.Fprintf(out, "  weak-lock acquires %d (order-log acquire entries %d), releases %d, forced %d, timeouts %d\n",
		rpt.WeakLocks.Acquires, rpt.WeakLocks.AcquireOrderEntries,
		rpt.WeakLocks.Releases, rpt.WeakLocks.Forced, rpt.WeakLocks.Timeouts)
	fmt.Fprintf(out, "  log %d bytes (%d input / %d order records), events %d in %d batches\n",
		rpt.Log.TotalBytes, rpt.Log.InputRecords, rpt.Log.OrderRecords,
		rpt.Events.Emitted, rpt.Events.Batches)
	if !obsn.ReplayMatches {
		fmt.Fprintf(errOut, "racecheck: %s: replay did not match the recording\n", target.Name)
		return 1
	}
	if rpt.WeakLocks.Acquires != rpt.WeakLocks.AcquireOrderEntries {
		fmt.Fprintf(errOut, "racecheck: %s: per-site acquire total %d disagrees with order log %d\n",
			target.Name, rpt.WeakLocks.Acquires, rpt.WeakLocks.AcquireOrderEntries)
		return 1
	}
	if tracePath != "" {
		fmt.Fprintf(out, "  trace written to %s\n", tracePath)
	}
	if metricsPath != "" {
		fmt.Fprintf(out, "  metrics written to %s\n", metricsPath)
	}
	return 0
}

// runDynamic executes one program with the selected dynamic race
// checker(s) attached as batched event sinks and prints the verdict.
// With -checker both the epoch checker and the full-vector oracle observe
// one event stream of a single execution and must agree.
func runDynamic(name string, prog *core.Program, world *oskit.World, seed uint64, checker string, out, errOut io.Writer) int {
	var chks []trace.RaceChecker
	switch checker {
	case "epoch":
		chks = []trace.RaceChecker{trace.NewChecker(0)}
	case "vector":
		chks = []trace.RaceChecker{trace.NewVectorChecker(0)}
	case "both":
		chks = []trace.RaceChecker{trace.NewChecker(0), trace.NewVectorChecker(0)}
	default:
		fmt.Fprintf(errOut, "racecheck: unknown -checker %q (want epoch, vector, or both)\n", checker)
		return 2
	}
	start := time.Now()
	r := core.CheckDynamicRacesWith(prog, nil, core.RunConfig{World: world, Seed: seed}, chks...)
	wall := time.Since(start)
	if r.Err != nil {
		fmt.Fprintf(errOut, "racecheck: %s: run: %v\n", name, r.Err)
		return 1
	}
	races := chks[0].Races()
	fmt.Fprintf(out, "%s: %d dynamic race(s) (checker=%s, seed=%d, wall=%s)\n",
		name, len(races), checker, seed, wall.Round(time.Microsecond))
	if ec, ok := chks[0].(*trace.EpochChecker); ok {
		fmt.Fprintf(out, "  checker share: %s\n", time.Duration(ec.WallNS()).Round(time.Microsecond))
	}
	for _, rc := range races {
		fmt.Fprintf(out, "  %s\n", rc)
	}
	if checker == "both" {
		if !sameVerdicts(chks[0].Races(), chks[1].Races()) {
			fmt.Fprintf(errOut, "racecheck: %s: epoch and vector checkers diverged:\n  epoch:  %v\n  vector: %v\n",
				name, chks[0].Races(), chks[1].Races())
			return 1
		}
		fmt.Fprintln(out, "  epoch and full-vector verdicts agree")
	}
	return 0
}

// runDynamicBench runs the dynamic checker over embedded benchmarks'
// original (uninstrumented) programs under their evaluation worlds.
func runDynamicBench(name, checker string, seed uint64, out, errOut io.Writer) int {
	var list []*bench.Benchmark
	if name == "all" {
		list = bench.All()
	} else {
		b := bench.ByName(name)
		if b == nil {
			fmt.Fprintf(errOut, "racecheck: unknown benchmark %q\n", name)
			return 2
		}
		list = []*bench.Benchmark{b}
	}
	status := 0
	for _, b := range list {
		prog, err := core.Load(b.Name, b.FullSource())
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", b.Name, err)
			return 1
		}
		if rc := runDynamic(b.Name, prog, b.EvalWorld(4), seed, checker, out, errOut); rc != 0 {
			status = rc
		}
	}
	return status
}

// sameVerdicts compares two race lists as deduplicated canonical
// (node, node) pair sets — the equivalence the differential tests pin.
func sameVerdicts(a, b []trace.Race) bool {
	return trace.SameVerdicts(a, b)
}

// runGen is the one-shot repro path for generated scenarios: parse the
// spec, generate the program, and push it through the complete soundness
// pipeline. On failure it also prints a greedily minimized spec.
func runGen(text string, verbose bool, out, errOut io.Writer) int {
	spec, err := scenario.Parse(text)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 2
	}
	r := scenario.RunPipeline(spec)
	if verbose {
		fmt.Fprint(out, r.Source)
	}
	fmt.Fprintf(out, "%s: %d static race pair(s), MHP kept %d, %d weak lock(s), %d dynamic race(s) on the original\n",
		spec, r.StaticPairs, r.KeptPairs, r.WeakLocks, r.OriginalRaces)
	fmt.Fprintf(out, "  stages passed: %s\n", strings.Join(r.Stages, " → "))
	if r.OK() {
		fmt.Fprintln(out, "  soundness pipeline: ok (certified clean, replay bit-identical, checkers agree)")
		return 0
	}
	fmt.Fprintf(errOut, "racecheck: %v\n", r.Err)
	if min := scenario.Minimize(spec); min != spec {
		fmt.Fprintf(errOut, "racecheck: minimized repro: racecheck -gen '%s'\n", min)
	}
	return 1
}

// runBench certifies embedded benchmarks: the full pipeline (analysis,
// profile, instrumentation) runs per benchmark and the instrumented
// output is certified against the same report it was derived from.
func runBench(name, label string, opts instrument.Options, useMHP, usePrecision bool, certOut string, out, errOut io.Writer) int {
	var list []*bench.Benchmark
	if name == "all" {
		list = bench.All()
	} else {
		b := bench.ByName(name)
		if b == nil {
			fmt.Fprintf(errOut, "racecheck: unknown benchmark %q\n", name)
			return 2
		}
		list = []*bench.Benchmark{b}
	}
	status := 0
	for _, b := range list {
		prog, err := core.Load(b.Name, b.FullSource())
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", b.Name, err)
			return 1
		}
		rep := prog.Races
		switch {
		case useMHP && usePrecision:
			rep = prog.PrecisionRaces()
		case usePrecision:
			rep = prog.PrecisionRacesBase()
		case useMHP:
			rep = prog.RefinedRaces()
		}
		conc := prog.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 10_000)
		ip, err := prog.InstrumentWith(rep, conc, opts)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: %v\n", b.Name, err)
			return 1
		}
		cert, _, err := ip.Certify(label)
		if err != nil {
			fmt.Fprintf(errOut, "racecheck: %s: certify: %v\n", b.Name, err)
			return 1
		}
		if rc := reportCert(cert, certOut, out, errOut); rc != 0 {
			status = rc
		}
	}
	return status
}

// reportCert prints the verdict, optionally writes the JSON certificate,
// and returns the process exit status the certificate warrants.
func reportCert(cert *certify.Certificate, certOut string, out, errOut io.Writer) int {
	fmt.Fprintln(out, cert.Summary())
	data, err := certify.Render(cert)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck: render certificate:", err)
		return 1
	}
	if certOut != "" {
		if err := os.MkdirAll(certOut, 0o755); err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
		fname := fmt.Sprintf("%s_%s.cert.json", cert.Program, strings.ReplaceAll(cert.Config, "+", "_"))
		if err := os.WriteFile(filepath.Join(certOut, fname), data, 0o644); err != nil {
			fmt.Fprintln(errOut, "racecheck:", err)
			return 1
		}
	}
	if !cert.OK {
		fmt.Fprint(errOut, string(data))
		return 1
	}
	return 0
}

// printPairProvenance runs the full refinement chain — MHP, then the
// precision layer — over the raw RELAY report and prints one row per
// reported pair with its final disposition: pruned-by-mhp (with the MHP
// sub-reason), pruned-by-escape, pruned-by-mustlock, pruned-by-readonly,
// or instrumented. Rows are sorted by source position, then function
// pair, so the table is byte-stable and diffable across runs.
func printPairProvenance(path string, rep *relay.Report, out io.Writer) {
	refined := escape.Refine(mhp.Refine(rep))
	disposition := make(map[[2]ast.NodeID]string, len(refined.Pruned))
	counts := make(map[string]int, 5)
	for _, pp := range refined.Pruned {
		var label string
		switch pp.Reason {
		case "pre-fork", "join-ordered", "barrier-phase":
			label = "pruned-by-mhp(" + pp.Reason + ")"
			counts["pruned-by-mhp"]++
		case "escape":
			label = "pruned-by-escape"
			counts[label]++
		case "must-lock":
			label = "pruned-by-mustlock"
			counts[label]++
		case "read-only":
			label = "pruned-by-readonly"
			counts[label]++
		default:
			label = "pruned-by-" + pp.Reason
			counts[label]++
		}
		disposition[pp.Pair.Key()] = label
	}
	fmt.Fprintf(out, "%s: %d reported = %d pruned-by-mhp + %d pruned-by-escape + %d pruned-by-mustlock + %d pruned-by-readonly + %d instrumented\n",
		path, len(rep.Pairs),
		counts["pruned-by-mhp"], counts["pruned-by-escape"],
		counts["pruned-by-mustlock"], counts["pruned-by-readonly"],
		len(refined.Pairs))
	pairs := append([]*relay.RacePair(nil), rep.Pairs...)
	sort.SliceStable(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
	for _, p := range pairs {
		label, ok := disposition[p.Key()]
		if !ok {
			label = "instrumented"
		}
		fmt.Fprintf(out, "  %-26s %s\n", label, pairString(p))
	}
}

func pairString(p *relay.RacePair) string {
	return fmt.Sprintf("%s:%s [w=%v ls=%v] <-> %s:%s [w=%v ls=%v]",
		p.A.Fn.Name, p.A.Pos, p.A.Write, p.A.Lockset,
		p.B.Fn.Name, p.B.Pos, p.B.Write, p.B.Lockset)
}

// pairLess orders race pairs by source position, then function names.
func pairLess(a, b *relay.RacePair) bool {
	ka := [4]int{a.A.Pos.Line, a.A.Pos.Col, a.B.Pos.Line, a.B.Pos.Col}
	kb := [4]int{b.A.Pos.Line, b.A.Pos.Col, b.B.Pos.Line, b.B.Pos.Col}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	fa, fb := a.FnPair(), b.FnPair()
	if fa[0] != fb[0] {
		return fa[0] < fb[0]
	}
	return fa[1] < fb[1]
}
