// racecheck runs the RELAY static data-race detector on a MiniC source
// file and prints the report: race pairs, racy functions, and per-function
// summaries on request. Output is deterministic (pairs are ordered by
// source position), so it can be diffed across runs.
//
// Usage:
//
//	racecheck prog.mc
//	racecheck -v prog.mc    # include racy node details
//	racecheck -mhp prog.mc  # apply the static MHP refinement and report
//	                        # kept vs pruned pairs with provenance
//	racecheck -parallel 4 prog.mc
//	                        # fan the summary computation over 4 workers;
//	                        # output is byte-identical to -parallel 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cfg"
	"repro/internal/mhp"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("racecheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	verbose := fs.Bool("v", false, "verbose: list racy nodes and locksets")
	showCFG := fs.Bool("cfg", false, "print each racy function's control-flow graph")
	useMHP := fs.Bool("mhp", false, "apply the static may-happen-in-parallel refinement")
	parallel := fs.Int("parallel", 1, "worker count for the summary computation (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 1
	}
	file, err := parser.Parse(fs.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 1
	}
	info, err := types.Check(file)
	if err != nil {
		fmt.Fprintln(errOut, "racecheck:", err)
		return 1
	}
	rep := relay.AnalyzeProgramParallel(info, *parallel)
	if *useMHP {
		refined := mhp.Refine(rep)
		fmt.Fprintf(out, "%s: %d potential race pairs, MHP kept %d, pruned %d\n",
			fs.Arg(0), len(rep.Pairs), len(refined.Pairs), len(refined.Pruned))
		pruned := append([]relay.PrunedPair(nil), refined.Pruned...)
		sort.SliceStable(pruned, func(i, j int) bool {
			return pairLess(pruned[i].Pair, pruned[j].Pair)
		})
		for _, pp := range pruned {
			fmt.Fprintf(out, "  pruned: %-13s %s\n", pp.Reason, pairString(pp.Pair))
		}
		rep = refined
	}

	fmt.Fprintf(out, "%s: %d potential race pairs, %d racy nodes, %d racy functions\n",
		fs.Arg(0), len(rep.Pairs), len(rep.RacyNodes), len(rep.RacyFuncs))

	pairsByFn := make(map[string]int)
	for _, p := range rep.Pairs {
		fp := p.FnPair()
		pairsByFn[fp[0]+" <-> "+fp[1]]++
	}
	var keys []string
	for k := range pairsByFn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(out, "racy function pairs:")
	for _, k := range keys {
		fmt.Fprintf(out, "  %-40s %d race pair(s)\n", k, pairsByFn[k])
	}

	if *verbose {
		pairs := append([]*relay.RacePair(nil), rep.Pairs...)
		sort.SliceStable(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
		fmt.Fprintln(out, "race pairs:")
		for _, p := range pairs {
			fmt.Fprintf(out, "  %s\n", pairString(p))
		}
	}

	if *showCFG {
		var names []string
		for fn := range rep.RacyFuncs {
			names = append(names, fn.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			fn := info.Funcs[name]
			g := cfg.Build(fn.Decl)
			fmt.Fprint(out, g.String())
			loops := g.NaturalLoops()
			fmt.Fprintf(out, "  %d natural loop(s)\n", len(loops))
		}
	}
	return 0
}

func pairString(p *relay.RacePair) string {
	return fmt.Sprintf("%s:%s [w=%v ls=%v] <-> %s:%s [w=%v ls=%v]",
		p.A.Fn.Name, p.A.Pos, p.A.Write, p.A.Lockset,
		p.B.Fn.Name, p.B.Pos, p.B.Write, p.B.Lockset)
}

// pairLess orders race pairs by source position, then function names.
func pairLess(a, b *relay.RacePair) bool {
	ka := [4]int{a.A.Pos.Line, a.A.Pos.Col, a.B.Pos.Line, a.B.Pos.Col}
	kb := [4]int{b.A.Pos.Line, b.A.Pos.Col, b.B.Pos.Line, b.B.Pos.Col}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	fa, fb := a.FnPair(), b.FnPair()
	if fa[0] != fb[0] {
		return fa[0] < fb[0]
	}
	return fa[1] < fb[1]
}
