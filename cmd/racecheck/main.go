// racecheck runs the RELAY static data-race detector on a MiniC source
// file and prints the report: race pairs, racy functions, and per-function
// summaries on request. Output is deterministic (pairs are ordered by
// source position), so it can be diffed across runs.
//
// With -certify it also runs the Chimera weak-lock instrumentation and
// the static translation validator (internal/certify) over the result,
// printing the certificate verdict and exiting nonzero unless coverage,
// balance and lock-order checks all pass.
//
// The entire pipeline lives in internal/service; this command parses
// flags into a service.Request and runs it in process — or, with
// -server, ships it to a chimerad instance, whose verdict is
// byte-identical by construction (the server executes the same
// service.RunRequest). Exit codes are the service.Exit* table,
// documented in the README.
//
// Usage:
//
//	racecheck prog.mc
//	racecheck -v prog.mc    # include racy node details
//	racecheck -mhp prog.mc  # apply the static MHP refinement and report
//	                        # kept vs pruned pairs with provenance
//	racecheck -precision prog.mc
//	                        # apply the static precision layer (thread-escape,
//	                        # must-lockset sharpening, read-only sharing);
//	                        # composes with -mhp, which runs first
//	racecheck -pairs prog.mc
//	                        # print the per-pair provenance table under the
//	                        # full refinement chain: every reported pair with
//	                        # its disposition (pruned-by-mhp, pruned-by-escape,
//	                        # pruned-by-mustlock, pruned-by-readonly, or
//	                        # instrumented), sorted by source position
//	racecheck -parallel 4 prog.mc
//	                        # fan the summary computation over 4 workers;
//	                        # output is byte-identical to -parallel 1
//	racecheck -certify prog.mc
//	                        # instrument (default config "all") and certify
//	racecheck -certify -config instr -mhp prog.mc
//	                        # certify a specific config over the refined report
//	racecheck -certify -instrumented inst.mc prog.mc
//	                        # certify a pre-instrumented file against
//	                        # prog.mc's race report (translation validation
//	                        # of external or hand-edited output)
//	racecheck -certify -bench all -certout certs/
//	                        # certify every embedded benchmark (or one, by
//	                        # name) and write the JSON certificates to a dir
//	racecheck -dynamic prog.mc
//	                        # run the program and report dynamic races from
//	                        # the FastTrack-epoch checker attached as a
//	                        # batched event sink
//	racecheck -dynamic -checker both -seed 7 -bench radix
//	                        # run a benchmark under schedule seed 7 with the
//	                        # epoch checker and the full-vector oracle on
//	                        # one event stream; exit nonzero if they diverge
//	racecheck -incremental prog.mc
//	                        # analyze through the summary-store-backed
//	                        # incremental engine (byte-identical report)
//	racecheck -batch dir -summary-stats
//	                        # analyze every *.mc in dir through one shared
//	                        # summary store, reusing per-function summaries
//	                        # across files, then print store statistics
//	racecheck -gen 'counters:7:small'
//	                        # generate the scenario program for a spec and
//	                        # push it through the full soundness pipeline
//	                        # (analyze fresh==incremental, instrument,
//	                        # certify clean, record, replay bit-identical,
//	                        # epoch==vector verdicts); -v prints the source.
//	                        # This is the one-shot repro for a failing
//	                        # generated spec.
//	racecheck -server http://localhost:8377 -tenant alice -mhp prog.mc
//	                        # run the same request on a chimerad server
//	                        # under the "alice" tenant namespace; stdout,
//	                        # stderr and the exit code are byte-identical
//	                        # to the offline invocation
package main

import (
	"flag"
	"io"
	"os"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("racecheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	req := service.NewRequest()
	fs.BoolVar(&req.Verbose, "v", false, "verbose: list racy nodes and locksets")
	fs.BoolVar(&req.ShowCFG, "cfg", false, "print each racy function's control-flow graph")
	fs.BoolVar(&req.MHP, "mhp", false, "apply the static may-happen-in-parallel refinement")
	fs.BoolVar(&req.Precision, "precision", false, "apply the static precision layer (thread-escape, must-lockset sharpening, read-only sharing)")
	fs.BoolVar(&req.Pairs, "pairs", false, "print the per-pair provenance table (reported → pruned-by-* → instrumented) under the full refinement chain")
	fs.IntVar(&req.Parallel, "parallel", 1, "worker count for the summary computation (1 = sequential)")
	fs.BoolVar(&req.Certify, "certify", false, "instrument and run the static DRF/deadlock-freedom certifier")
	fs.StringVar(&req.Config, "config", "all", "instrumentation config for -certify: instr, instr+func, instr+loop, all")
	fs.StringVar(&req.CertOut, "certout", "", "directory to write certificate JSON files to (with -certify)")
	fs.StringVar(&req.Instrumented, "instrumented", "", "pre-instrumented source to certify against the original's report (with -certify)")
	fs.StringVar(&req.Bench, "bench", "", "an embedded benchmark by name, or \"all\" (with -certify or -dynamic)")
	fs.BoolVar(&req.Dynamic, "dynamic", false, "run the program and report dynamic races from the event-sink checker")
	fs.StringVar(&req.Checker, "checker", "epoch", "dynamic race checker for -dynamic: epoch, vector, or both")
	fs.Uint64Var(&req.Seed, "seed", 1, "schedule seed for -dynamic runs")
	fs.StringVar(&req.TracePath, "trace", "", "write a Chrome/Perfetto trace to this file: the observed pipeline with -dynamic, the server-side request span tree with -server")
	fs.StringVar(&req.TraceID, "trace-id", "", "trace ID to stamp on the request with -server (default: server-minted)")
	fs.StringVar(&req.MetricsPath, "metrics", "", "write the observability metrics report (JSON) to this file (with -dynamic)")
	fs.BoolVar(&req.Incremental, "incremental", false, "run the static analysis through the summary-store-backed incremental engine")
	fs.StringVar(&req.BatchDir, "batch", "", "analyze every *.mc file in this directory through one shared summary store")
	fs.BoolVar(&req.SummaryStats, "summary-stats", false, "print summary-store and dirty-cone statistics (with -incremental or -batch)")
	fs.StringVar(&req.Gen, "gen", "", "generate the scenario program for a spec (family:seed:size) and run the full soundness pipeline on it")
	server := fs.String("server", "", "chimerad base URL: execute the request remotely (verdict byte-identical to offline)")
	tenant := fs.String("tenant", "", "tenant namespace for -server submissions (shared caches are per-tenant)")
	if err := fs.Parse(args); err != nil {
		return service.ExitUsage
	}
	req.Args = fs.Args()
	req.Usage = fs.Usage

	if *server != "" {
		return service.RemoteRun(*server, *tenant, req, out, errOut)
	}
	return service.RunRequest(req, nil, out, errOut)
}
