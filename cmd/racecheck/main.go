// racecheck runs the RELAY static data-race detector on a MiniC source
// file and prints the report: race pairs, racy functions, and per-function
// summaries on request.
//
// Usage:
//
//	racecheck prog.mc
//	racecheck -v prog.mc    # include racy node details
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cfg"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

func main() {
	verbose := flag.Bool("v", false, "verbose: list racy nodes and locksets")
	showCFG := flag.Bool("cfg", false, "print each racy function's control-flow graph")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := parser.Parse(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	info, err := types.Check(file)
	if err != nil {
		fatal(err)
	}
	rep := relay.AnalyzeProgram(info)

	fmt.Printf("%s: %d potential race pairs, %d racy nodes, %d racy functions\n",
		flag.Arg(0), len(rep.Pairs), len(rep.RacyNodes), len(rep.RacyFuncs))

	pairsByFn := make(map[string]int)
	for _, p := range rep.Pairs {
		fp := p.FnPair()
		pairsByFn[fp[0]+" <-> "+fp[1]]++
	}
	var keys []string
	for k := range pairsByFn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("racy function pairs:")
	for _, k := range keys {
		fmt.Printf("  %-40s %d race pair(s)\n", k, pairsByFn[k])
	}

	if *verbose {
		fmt.Println("race pairs:")
		for _, p := range rep.Pairs {
			fmt.Printf("  %s:%s [w=%v ls=%v] <-> %s:%s [w=%v ls=%v]\n",
				p.A.Fn.Name, p.A.Pos, p.A.Write, p.A.Lockset,
				p.B.Fn.Name, p.B.Pos, p.B.Write, p.B.Lockset)
		}
	}

	if *showCFG {
		var names []string
		for fn := range rep.RacyFuncs {
			names = append(names, fn.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			fn := info.Funcs[name]
			g := cfg.Build(fn.Decl)
			fmt.Print(g.String())
			loops := g.NaturalLoops()
			fmt.Printf("  %d natural loop(s)\n", len(loops))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racecheck:", err)
	os.Exit(1)
}
