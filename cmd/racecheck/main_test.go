package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files:
// go test ./cmd/racecheck -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func runGolden(t *testing.T, args []string, golden string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
	}
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
}

// The report must be byte-stable across runs (map iteration must never
// leak into the output) and match the checked-in golden files.
func TestGoldenOutput(t *testing.T) {
	src := filepath.Join("testdata", "barrier.mc")
	for i := 0; i < 3; i++ {
		runGolden(t, []string{"-v", src}, "barrier.out")
		runGolden(t, []string{"-v", "-mhp", src}, "barrier.mhp.out")
	}
}
