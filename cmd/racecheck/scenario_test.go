package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestGenSoundSpec: -gen on a passing spec prints the stage trail and
// exits 0; -v additionally prints the generated source.
func TestGenSoundSpec(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-gen", "counters:7:small"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{
		"stages passed: generate → analyze → incremental → instrument → certify → record → replay → differential → clean",
		"soundness pipeline: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-v", "-gen", "counters:7:small"}, &out, &errOut); code != 0 {
		t.Fatalf("-v exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "int main(void)") {
		t.Errorf("-v output lacks generated source:\n%s", out.String())
	}
}

// TestGenBadSpecExitsTwo: an invalid spec is a usage error with the
// deterministic validation diagnostic.
func TestGenBadSpecExitsTwo(t *testing.T) {
	for _, spec := range []string{"bogus:1:small", "cache:1:t0", "cache:nope:small"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-gen", spec}, &out, &errOut); code != 2 {
			t.Errorf("-gen %q: exit %d, want 2 (stderr: %s)", spec, code, errOut.String())
		}
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-gen", "cache:1:small", "-dynamic"}, &out, &errOut); code != 2 {
		t.Errorf("-gen with -dynamic: exit %d, want 2", code)
	}
}

// TestBatchMissingDirExitsFour pins the distinct failure class for an
// unusable -batch corpus: nonexistent directory, file-not-directory, and
// directory without *.mc files all exit 4 with a clear message.
func TestBatchMissingDirExitsFour(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-batch", filepath.Join(t.TempDir(), "nope")}, &out, &errOut); code != 4 {
		t.Errorf("nonexistent dir: exit %d, want 4 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "does not exist") {
		t.Errorf("nonexistent dir: stderr lacks diagnosis: %s", errOut.String())
	}

	errOut.Reset()
	if code := run([]string{"-batch", t.TempDir()}, &out, &errOut); code != 4 {
		t.Errorf("empty dir: exit %d, want 4 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "contains no *.mc files") {
		t.Errorf("empty dir: stderr lacks diagnosis: %s", errOut.String())
	}

	errOut.Reset()
	file := filepath.Join(t.TempDir(), "f.mc")
	if err := os.WriteFile(file, []byte("int main() { return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-batch", file}, &out, &errOut); code != 4 {
		t.Errorf("file target: exit %d, want 4 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "is not a directory") {
		t.Errorf("file target: stderr lacks diagnosis: %s", errOut.String())
	}
}

// TestBatchGeneratedCorpusIncrementalEquivalence emits a generated
// family into a temp dir (including one byte-identical duplicate) and
// runs -batch twice: both invocations must print byte-identical reports,
// and the duplicate file must analyze with every per-function summary
// reused from the store its twin populated.
func TestBatchGeneratedCorpusIncrementalEquivalence(t *testing.T) {
	dir := t.TempDir()
	var specs []scenario.Spec
	for seed := uint64(1); seed <= 3; seed++ {
		sp, err := scenario.Parse(fmt.Sprintf("workpool:%d:small", seed))
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sp)
	}
	for _, sp := range specs {
		src := scenario.MustGenerate(sp)
		if err := os.WriteFile(filepath.Join(dir, sp.Name()+".mc"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A byte-identical copy of the first program under another name: its
	// whole RELAY walk must come out of the shared summary store.
	dup := scenario.MustGenerate(specs[0])
	if err := os.WriteFile(filepath.Join(dir, "zz_duplicate.mc"), []byte(dup), 0o644); err != nil {
		t.Fatal(err)
	}

	runOnce := func() string {
		var out, errOut bytes.Buffer
		if code := run([]string{"-batch", dir, "-summary-stats"}, &out, &errOut); code != 0 {
			t.Fatalf("batch exit %d, stderr: %s", code, errOut.String())
		}
		return out.String()
	}
	first := runOnce()
	second := runOnce()
	if first != second {
		t.Errorf("batch runs diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}

	var dupLine string
	for _, line := range strings.Split(first, "\n") {
		if strings.Contains(line, "zz_duplicate.mc") {
			dupLine = line
		}
	}
	if dupLine == "" {
		t.Fatalf("no zz_duplicate.mc line in output:\n%s", first)
	}
	// Full reuse renders as [summaries: N/N reused].
	open := strings.Index(dupLine, "[summaries: ")
	if open < 0 {
		t.Fatalf("duplicate line lacks summary stats: %q", dupLine)
	}
	var reused, total int
	if _, err := fmt.Sscanf(dupLine[open:], "[summaries: %d/%d reused]", &reused, &total); err != nil {
		t.Fatalf("unparseable summary stats in %q: %v", dupLine, err)
	}
	if total == 0 || reused != total {
		t.Errorf("duplicate of an already-analyzed program reused %d/%d summaries, want full reuse\n%s", reused, total, first)
	}
	if !strings.Contains(first, "summary store:") {
		t.Errorf("-summary-stats output missing store counters:\n%s", first)
	}
}
