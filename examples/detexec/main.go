// Detexec: deterministic execution built on Chimera's transformation — the
// paper's §9 vision ("we envision that future work may be able to leverage
// the data-race-freedom provided by Chimera to provide stronger guarantees
// such as ... deterministic execution").
//
//	go run ./examples/detexec
//
// Once every potential race is inside a weak-lock, the program's
// synchronization operations are the only points where thread order
// matters. Arbitrating them with deterministic logical clocks (in the
// style of Kendo) makes the whole execution a pure function of the program
// and its input: no recording, no log — the same result under every
// schedule seed and even under perturbed machine timings.
package main

import (
	"fmt"
	"log"

	chimera "repro"
	"repro/internal/core"
	"repro/internal/vm"
)

const src = `
int ledger;
int audit[3];
void teller(int id) {
    for (int i = 0; i < 200; i++) {
        int v = ledger;
        ledger = v + id + 1;
    }
    audit[id] = ledger;
}
int main(void) {
    int t1 = spawn(teller, 0);
    int t2 = spawn(teller, 1);
    int t3 = spawn(teller, 2);
    join(t1); join(t2); join(t3);
    print(ledger);
    return 0;
}
`

func main() {
	prog, err := chimera.Load("ledger.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := prog.Instrument(nil, chimera.NaiveOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("native runs (schedule-dependent):")
	for seed := uint64(0); seed < 4; seed++ {
		r := prog.RunNative(chimera.RunConfig{World: chimera.NewWorld(1), Seed: seed})
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  seed %d -> ledger = %s", seed, r.Output)
	}

	fmt.Println("\ndeterministic execution (no recording, any seed, any timing):")
	var first uint64
	for seed := uint64(0); seed < 4; seed++ {
		r := inst.RunDeterministic(core.RunConfig{World: chimera.NewWorld(1), Seed: seed * 1337})
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  seed %d -> ledger = %s", seed*1337, r.Output)
		if seed == 0 {
			first = r.Hash64()
		} else if r.Hash64() != first {
			log.Fatal("deterministic execution diverged!")
		}
	}

	// Perturb the cost model — the analog of running on different
	// hardware — and the result still does not change.
	weird := vm.CostModel{Instr: 1, Call: 11, SyncOp: 99, LogEvent: 2,
		LogWord: 7, WeakLockOp: 31, RangeCheck: 13, Malloc: 300, Syscall: 900, ReplayGate: 5}
	r := inst.RunDeterministic(core.RunConfig{World: chimera.NewWorld(1), Seed: 5, Cost: weird})
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	if r.Hash64() != first {
		log.Fatal("cost-model perturbation changed the result!")
	}
	fmt.Printf("  perturbed timing -> ledger = %s", r.Output)
	fmt.Println("identical result under every schedule and timing ✓")
}
