// Quickstart: the whole Chimera pipeline on a classically racy program.
//
//	go run ./examples/quickstart
//
// A counter is incremented by two threads without a lock. Natively,
// different schedule seeds lose different numbers of updates — the program
// is not reproducible. Chimera transforms it to be data-race-free under
// weak-locks, records one execution, and replays it bit-identically under
// a completely different schedule seed.
package main

import (
	"fmt"
	"log"

	chimera "repro"
)

const src = `
int count;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int tmp = count;
        count = tmp + 1;
    }
}
int main(void) {
    int t1 = spawn(worker, 1000);
    int t2 = spawn(worker, 1000);
    join(t1);
    join(t2);
    print(count);
    return 0;
}
`

func main() {
	prog, err := chimera.Load("counter.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RELAY found %d potential race pairs\n", len(prog.Races.Pairs))

	// 1. The native program is not reproducible: sweep schedule seeds.
	fmt.Println("\nnative runs (racy — results vary with the schedule):")
	for seed := uint64(0); seed < 4; seed++ {
		r := prog.RunNative(chimera.RunConfig{World: chimera.NewWorld(1), Seed: seed})
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  seed %d -> count = %s", seed, r.Output)
	}

	// 2. Transform: every racy pair guarded by a weak-lock.
	inst, err := prog.Instrument(nil, chimera.NaiveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstrumented with %d weak-locks\n", inst.Table.Len())

	// 3. The transformed program is dynamically race-free.
	races, r := chimera.CheckDynamicRaces(inst.Prog, inst.Table,
		chimera.RunConfig{World: chimera.NewWorld(1), Seed: 5, Table: inst.Table})
	if r.Err != nil {
		log.Fatal(r.Err)
	}
	fmt.Printf("dynamic races under the extended sync set: %d\n", len(races))

	// 4. Record once, replay under a very different schedule.
	recRes, recLog := inst.Record(chimera.RunConfig{
		World: chimera.NewWorld(1), Seed: 42, Table: inst.Table})
	if recRes.Err != nil {
		log.Fatal(recRes.Err)
	}
	fmt.Printf("\nrecorded: count = %s", recRes.Output)
	fmt.Printf("order log: %d records, input log: %d records\n",
		recLog.OrderCount(), recLog.InputCount())

	repRes, err := inst.Replay(recLog, chimera.RunConfig{
		World: chimera.NewWorld(1), Seed: 987654321, Table: inst.Table})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed: count = %s", repRes.Output)
	if recRes.Hash64() == repRes.Hash64() {
		fmt.Println("replay is bit-identical to the recording ✓")
	} else {
		log.Fatal("replay diverged!")
	}
}
