// Racedebug: use deterministic replay to pin down an atomicity violation —
// the debugging workflow that motivates the paper (§1: "lack of
// determinism significantly impairs a programmer's ability to reason about
// an execution").
//
//	go run ./examples/racedebug
//
// A bank transfers money between two accounts with a read-modify-write
// that is not atomic. Under most schedules the books balance; under some
// they do not. Natively the bad run is unreproducible — every re-run may
// behave differently. With Chimera, the *first* failing run is recorded,
// and every replay reproduces it exactly, including the corrupted final
// balances, so the bug can be chased with a debugger.
package main

import (
	"fmt"
	"log"

	chimera "repro"
)

const src = `
int balance0;
int balance1;

void transfer_worker(int n) {
    for (int i = 0; i < n; i++) {
        // BUG: the two-account update is not atomic.
        int b0 = balance0;
        int b1 = balance1;
        balance0 = b0 - 1;
        balance1 = b1 + 1;
    }
}

int main(void) {
    balance0 = 5000;
    balance1 = 5000;
    int t1 = spawn(transfer_worker, 1500);
    int t2 = spawn(transfer_worker, 1500);
    join(t1);
    join(t2);
    print(balance0);
    print(balance1);
    print(balance0 + balance1);
    return 0;
}
`

func main() {
	prog, err := chimera.Load("bank.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := prog.Instrument(nil, chimera.NaiveOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Hunt for a failing run by recording executions under different
	// schedule seeds until the invariant (total == 10000) breaks.
	fmt.Println("recording runs until the atomicity violation manifests...")
	for seed := uint64(0); seed < 64; seed++ {
		recRes, recLog := inst.Record(chimera.RunConfig{
			World: chimera.NewWorld(1), Seed: seed, Table: inst.Table})
		if recRes.Err != nil {
			log.Fatal(recRes.Err)
		}
		total := lastNumber(recRes.Output)
		if total == 10000 {
			continue // books balanced; keep hunting
		}
		// A racy interleaving was captured: the log now pins it down.
		fmt.Printf("  seed %d: total = %d (violation!)\n", seed, total)
		fmt.Printf("  recorded %d order records — replaying 3 times:\n", recLog.OrderCount())
		for i := 0; i < 3; i++ {
			repSeed := uint64(1000 + i*7777)
			repRes, err := inst.Replay(recLog, chimera.RunConfig{
				World: chimera.NewWorld(1), Seed: repSeed, Table: inst.Table})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    replay with seed %d: total = %d, identical = %v\n",
				repSeed, lastNumber(repRes.Output), repRes.Hash64() == recRes.Hash64())
			if repRes.Hash64() != recRes.Hash64() {
				log.Fatal("replay diverged — determinism broken")
			}
		}
		fmt.Println("the buggy interleaving reproduces exactly on every replay ✓")
		return
	}
	fmt.Println("no violation manifested in 64 seeds (try more)")
}

// lastNumber parses the final printed integer.
func lastNumber(out []byte) int {
	lines := split(out)
	if len(lines) == 0 {
		return 0
	}
	n := 0
	neg := false
	for _, c := range lines[len(lines)-1] {
		if c == '-' {
			neg = true
			continue
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

func split(out []byte) []string {
	var lines []string
	cur := ""
	for _, b := range out {
		if b == '\n' {
			if cur != "" {
				lines = append(lines, cur)
			}
			cur = ""
			continue
		}
		cur += string(b)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
