// Scientific: the radix-sort workload of the paper's Figure 4, showing the
// symbolic bounds analysis at work.
//
//	go run ./examples/scientific
//
// Each worker clears and fills its own region of a shared rank histogram.
// The clear loop's address range is derivable statically — the loop-lock
// protects exactly &rank[base] .. &rank[base+radix-1], so workers stay
// parallel. The count loop indexes rank with (key >> shift) & mask, which
// the bounds grammar cannot express, so it gets the paper's
// WEAK-LOCK(-INF, +INF). The example prints the instrumented source so
// both forms are visible, then verifies deterministic replay.
package main

import (
	"fmt"
	"log"
	"strings"

	chimera "repro"
	"repro/internal/bench"
	"repro/internal/weaklock"
)

func main() {
	b := bench.Radix()
	prog, err := chimera.Load(b.Name, b.FullSource())
	if err != nil {
		log.Fatal(err)
	}
	conc := prog.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 5)
	inst, err := prog.Instrument(conc, chimera.AllOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Show the sort_worker body: ranged and infinite loop-locks side by
	// side (paper Fig. 4).
	src := inst.Prog.Source
	if i := strings.Index(src, "void sort_worker"); i >= 0 {
		if j := strings.Index(src[i:], "\n}"); j >= 0 {
			fmt.Println(src[i : i+j+2])
		}
	}

	// Report the per-site bound decisions.
	precise, inf := 0, 0
	for _, s := range inst.Report.Sites {
		if s.Kind != weaklock.KindLoop {
			continue
		}
		if s.Precise {
			precise++
		} else {
			inf++
		}
	}
	fmt.Printf("\nloop-lock sites: %d with precise symbolic bounds, %d with [-INF,+INF]\n",
		precise, inf)

	// Record with the sanity check enabled, replay under another seed.
	recRes, recLog := inst.Record(chimera.RunConfig{
		World: b.EvalWorld(4), Seed: 11, Table: inst.Table})
	if recRes.Err != nil {
		log.Fatal(recRes.Err)
	}
	fmt.Printf("sorted %s", recRes.Output)
	repRes, err := inst.Replay(recLog, chimera.RunConfig{
		World: b.EvalWorld(4), Seed: 2222, Table: inst.Table})
	if err != nil {
		log.Fatal(err)
	}
	if recRes.Hash64() != repRes.Hash64() {
		log.Fatal("replay diverged!")
	}
	fmt.Println("deterministic replay verified ✓")
}
