// Webserver: record and replay a multithreaded server under load — the
// paper's apache scenario, including the famous memset false race.
//
//	go run ./examples/webserver
//
// A pool of workers serves requests from a simulated network. Responses
// are built in per-worker buffers cleared by my_memset; RELAY flags the
// memset store as racing with itself (it cannot see that the buffer slices
// are disjoint), and the symbolic-bounds loop-lock keeps the workers
// parallel while still recording enough ordering for deterministic replay.
// Recording overhead hides almost entirely under network waits.
package main

import (
	"fmt"
	"log"

	chimera "repro"
	"repro/internal/bench"
	"repro/internal/weaklock"
)

func main() {
	b := bench.Apache()
	prog, err := chimera.Load(b.Name, b.FullSource())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apache-like server: %d LOC, %d potential race pairs\n",
		b.LOC(), len(prog.Races.Pairs))

	// Profile with small request streams, then instrument with all
	// optimizations.
	conc := prog.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 77)
	fmt.Printf("profiled %d runs: %d concurrent function pairs\n",
		conc.Runs(), conc.PairCount())

	inst, err := prog.Instrument(conc, chimera.AllOptions())
	if err != nil {
		log.Fatal(err)
	}
	counts := inst.Report.StaticCounts
	fmt.Printf("instrumentation sites: func=%d loop=%d bb=%d instr=%d (%d locks)\n",
		counts[weaklock.KindFunc], counts[weaklock.KindLoop],
		counts[weaklock.KindBB], counts[weaklock.KindInstr], inst.Table.Len())

	// Native vs recorded run on the evaluation workload.
	native := prog.RunNative(chimera.RunConfig{World: b.EvalWorld(4), Seed: 3})
	if native.Err != nil {
		log.Fatal(native.Err)
	}
	recRes, recLog := inst.Record(chimera.RunConfig{
		World: b.EvalWorld(4), Seed: 3, Table: inst.Table})
	if recRes.Err != nil {
		log.Fatal(recRes.Err)
	}
	fmt.Printf("\nnative makespan:   %d cycles\n", native.Makespan)
	fmt.Printf("recorded makespan: %d cycles (%.2fx — hidden under I/O waits)\n",
		recRes.Makespan, float64(recRes.Makespan)/float64(native.Makespan))
	fmt.Printf("server output: %s", recRes.Output)

	// Replay: inputs come from the log, so the network is not consulted
	// and replay typically beats native time.
	repRes, err := inst.Replay(recLog, chimera.RunConfig{
		World: b.EvalWorld(4), Seed: 999, Table: inst.Table})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed makespan: %d cycles (%.2fx of native)\n",
		repRes.Makespan, float64(repRes.Makespan)/float64(native.Makespan))
	if recRes.Hash64() != repRes.Hash64() {
		log.Fatal("replay diverged!")
	}
	fmt.Println("replay is bit-identical to the recording ✓")
}
