// Package bench defines the nine benchmark programs of the paper's
// evaluation (Table 1) rewritten in MiniC, with their profile and
// evaluation environments:
//
//	desktop:    aget, pfscan, pbzip2
//	server:     knot, apache
//	scientific: ocean, water, fft, radix   (SPLASH-2)
//
// Each rewrite preserves the sharing and synchronization structure that
// drives the paper's results: aget's segmented downloads and benign
// progress races, pfscan's queue hand-off and init/report phases, pbzip2's
// block pipeline, knot/apache's worker pools with racy hit counters and
// the memset-style hot loop, ocean's barrier-phased stencil, water's
// barrier-separated interf/bndry phases, fft's cross-partition butterflies,
// and radix's per-digit rank histograms (paper Fig. 4).
//
// Programs read their workload parameters from simulated file 1, so one
// source (hence one static analysis and one instrumentation) serves both
// the profile and evaluation environments, exactly as in the paper.
package bench

import (
	"strings"

	"repro/internal/oskit"
)

// Benchmark is one evaluation program and its environments.
type Benchmark struct {
	Name  string
	Class string // "desktop", "server", "scientific"

	// Source is the MiniC program (the mini-libc is appended).
	Source string

	// ProfileWorld builds the world for profile run i (2 workers, small
	// inputs, varied across runs — Table 1 "profile environment").
	ProfileWorld func(run int) *oskit.World

	// EvalWorld builds the world for the measured runs, parameterized by
	// worker count (Table 1 "evaluation environment"; 4 workers in
	// Table 2, {2,4,8} in Figure 8).
	EvalWorld func(workers int) *oskit.World

	// ProfileRuns is the number of profiling runs (paper used 20; the
	// concurrency sets here saturate much earlier, see §7.3).
	ProfileRuns int

	// ProfileEnv and EvalEnv describe the environments for Table 1.
	ProfileEnv, EvalEnv string
}

// FullSource returns the program text with the mini-libc appended (the
// uClibc analog: library source is analyzed together with the program,
// paper §6.2).
func (b *Benchmark) FullSource() string {
	return b.Source + "\n" + LibC
}

// LOC counts non-blank source lines (Table 1's LOC column; the paper
// counts the CIL representation, we count MiniC lines).
func (b *Benchmark) LOC() int {
	n := 0
	for _, line := range strings.Split(b.FullSource(), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// All returns the benchmarks in the paper's Table 1/2 order.
func All() []*Benchmark {
	return []*Benchmark{
		Aget(), Pfscan(), Pbzip2(),
		Knot(), Apache(),
		Ocean(), Water(), FFT(), Radix(),
	}
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// cfgWorld builds a world whose file 1 holds the config words every
// benchmark reads at startup.
func cfgWorld(seed uint64, cfg []int64) *oskit.World {
	w := oskit.NewWorld(seed)
	w.AddFile(1, cfg)
	return w
}

// LibC is the mini standard library analyzed together with programs that
// use it — the role uClibc played in the paper (§6.2). my_memset's hot
// loop is the source of the famous apache false self-race that loop-locks
// with symbolic bounds handle (§7.3).
const LibC = `
void my_memset(int *dst, int value, int len) {
    for (int i = 0; i < len; i++) {
        dst[i] = value;
    }
}

void my_memcpy(int *dst, int *src, int len) {
    for (int i = 0; i < len; i++) {
        dst[i] = src[i];
    }
}

int my_strlen(int *s) {
    int n = 0;
    while (s[n] != 0) {
        n++;
    }
    return n;
}

int my_checksum(int *buf, int len) {
    int h = 2166136261;
    for (int i = 0; i < len; i++) {
        h = h ^ buf[i];
        h = h * 16777619;
        h = h & 1073741823;
    }
    return h;
}
`
