package bench

import (
	"testing"

	"repro/internal/core"
)

// TestAllBenchmarksLoadAndRun checks that every benchmark parses, checks,
// compiles, and runs to completion in both environments, and that RELAY
// finds race pairs in each (they all contain at least false races).
func TestAllBenchmarksLoadAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := core.Load(b.Name, b.FullSource())
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if len(p.Races.Pairs) == 0 {
				t.Errorf("RELAY found no race pairs in %s; every benchmark should have some", b.Name)
			}
			// Profile environment.
			rp := p.RunNative(core.RunConfig{World: b.ProfileWorld(0), Seed: 1})
			if rp.Err != nil {
				t.Fatalf("profile-env run: %v\noutput: %s", rp.Err, rp.Output)
			}
			// Eval environment with 4 workers.
			re := p.RunNative(core.RunConfig{World: b.EvalWorld(4), Seed: 1})
			if re.Err != nil {
				t.Fatalf("eval-env run: %v\noutput: %s", re.Err, re.Output)
			}
			if re.Threads < 5 {
				t.Errorf("eval run used %d threads, want >= 5 (4 workers + main)", re.Threads)
			}
			if re.Makespan <= rp.Makespan {
				t.Errorf("eval makespan %d not larger than profile %d", re.Makespan, rp.Makespan)
			}
			t.Logf("%s: LOC=%d races=%d eval: instrs=%d makespan=%d memops=%d syncops=%d inputs=%d",
				b.Name, b.LOC(), len(p.Races.Pairs), re.Counters.Instrs, re.Makespan,
				re.Counters.MemOps, re.Counters.SyncOps, re.Counters.InputOps)
		})
	}
}

// TestBenchmarkDeterminism: each native benchmark run is deterministic for
// a fixed seed (the VM contract), and the scientific programs additionally
// produce the same output across seeds when race-free in practice.
func TestBenchmarkDeterminism(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := core.Load(b.Name, b.FullSource())
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			r1 := p.RunNative(core.RunConfig{World: b.EvalWorld(2), Seed: 9})
			r2 := p.RunNative(core.RunConfig{World: b.EvalWorld(2), Seed: 9})
			if r1.Err != nil || r2.Err != nil {
				t.Fatalf("runs failed: %v %v", r1.Err, r2.Err)
			}
			if r1.Hash64() != r2.Hash64() {
				t.Errorf("same seed, different results")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("radix") == nil || ByName("apache") == nil {
		t.Fatalf("ByName lookup failed")
	}
	if ByName("nope") != nil {
		t.Fatalf("unknown name should be nil")
	}
}

func TestLOCCounts(t *testing.T) {
	for _, b := range All() {
		if b.LOC() < 50 {
			t.Errorf("%s suspiciously small: %d LOC", b.Name, b.LOC())
		}
	}
}
