package bench

import "repro/internal/oskit"

// ---------------------------------------------------------------------------
// aget — segmented parallel downloader (Table 1: profile 2 workers / 29KB
// from local network, eval N workers / 10MB from ftp.gnu.org; scaled).
// Each worker drains its own connection into a disjoint slice of a shared
// buffer; the shared `progress` counter is updated without a lock — the
// real aget's benign race. Recording cost hides under network waits
// (paper §7.3: "for network applications like aget ... recording cost
// overlaps with I/O wait").

const agetSrc = `
int cfg[8];
int nworkers;
int segwords;
int chunk;

int buf[32768];
int conns[8];
int progress;
int done_flag[8];

void download(int id) {
    int conn = conns[id];
    int seg = segwords;
    int ch = chunk;
    int base = id * seg;
    int got = 0;
    while (got < seg) {
        int want = ch;
        if (seg - got < want) { want = seg - got; }
        int *dst = buf;
        int n = recv(conn, dst + base + got, want);
        if (n <= 0) { break; }
        got = got + n;
        progress = progress + n;
    }
    done_flag[id] = got;
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    segwords = cfg[1];
    chunk = cfg[2];

    for (int w = 0; w < nworkers; w++) {
        conns[w] = accept(0);
        check(conns[w] >= 0);
    }
    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(download, w);
    }
    int total = 0;
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
        total = total + done_flag[w];
    }
    check(total == nworkers * segwords);
    int out = open(2);
    write(out, buf, total);
    close(out);
    int hsum = 2166136261;
    for (int hi = 0; hi < total; hi++) {
        hsum = hsum ^ buf[hi];
        hsum = hsum * 16777619;
        hsum = hsum & 1073741823;
    }
    print(hsum);
    print(progress);
    return 0;
}
`

// Aget returns the aget benchmark.
func Aget() *Benchmark {
	mkWorld := func(seed uint64, workers, segwords, chunk int64) *oskit.World {
		w := cfgWorld(seed, []int64{workers, segwords, chunk, 0, 0, 0, 0, 0})
		w.AddFile(2, nil) // output sink
		for i := int64(0); i < workers; i++ {
			seg := make([]int64, segwords)
			x := seed + uint64(i)*977
			for j := range seg {
				x = x*6364136223846793005 + 1442695040888963407
				seg[j] = int64(x>>40) & 0xffff
			}
			// Connections arrive staggered, like parallel HTTP ranges.
			w.AddConn(500+i*700, seg)
		}
		return w
	}
	return &Benchmark{
		Name:   "aget",
		Class:  "desktop",
		Source: agetSrc,
		ProfileWorld: func(run int) *oskit.World {
			return mkWorld(uint64(run)+1, 2, 128, 64)
		},
		EvalWorld: func(workers int) *oskit.World {
			return mkWorld(11, int64(workers), 4096, 256)
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 128-word segments from local network",
		EvalEnv:     "N workers, 4096-word segments, chunked transfers",
	}
}

// ---------------------------------------------------------------------------
// pfscan — parallel file scanner (Table 1: profile 2 workers / 22 small
// files, eval N workers / 8 log files; scaled). A mutex+condvar work queue
// feeds workers; the queue is filled by unlocked initialization code before
// any worker exists and the totals are read by unlocked reporting code
// after every worker has been joined — the fork/join false races that make
// pfscan the paper's function-lock showcase (§7.3: "most data-races are in
// function-pairs ordered by some non-mutex synchronization operation").

const pfscanSrc = `
int cfg[8];
int nworkers;
int nfiles;
int pattern;

int queue[64];
int qhead;
int qtail;
int qlock;
int qcond;

int slock;
int total_matches;
int max_matches;
int max_file;
int files_done;

int bufs[4096];

void init_queue(void) {
    int nf = nfiles;
    for (int i = 0; i < nf; i++) {
        queue[qtail] = 10 + i;
        qtail = qtail + 1;
    }
    int nw = nworkers;
    for (int w = 0; w < nw; w++) {
        queue[qtail] = -1;
        qtail = qtail + 1;
    }
}

int grab_work(void) {
    lock(&qlock);
    while (qhead == qtail) {
        cond_wait(&qcond, &qlock);
    }
    int fid = queue[qhead];
    qhead = qhead + 1;
    unlock(&qlock);
    return fid;
}

int scan_buffer(int base, int n, int pat) {
    int c = 0;
    for (int j = 0; j < n; j++) {
        if (bufs[base + j] == pat) {
            c = c + 1;
        }
    }
    return c;
}

void update_stats(int c, int fid) {
    lock(&slock);
    total_matches = total_matches + c;
    if (c > max_matches) {
        max_matches = c;
        max_file = fid;
    }
    unlock(&slock);
}

void bump_done(void) {
    files_done = files_done + 1;
}

void scan_worker(int id) {
    int base = id * 512;
    int pat = pattern;
    while (1) {
        int fid = grab_work();
        if (fid < 0) { break; }
        int fd = open(fid);
        if (fd < 0) { continue; }
        int c = 0;
        int n = read(fd, &bufs[base], 512);
        while (n > 0) {
            c = c + scan_buffer(base, n, pat);
            n = read(fd, &bufs[base], 512);
        }
        close(fd);
        update_stats(c, fid);
        bump_done();
    }
}

void report(void) {
    print(total_matches);
    print(max_matches);
    print(max_file);
    print(files_done);
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    nfiles = cfg[1];
    pattern = cfg[2];

    init_queue();
    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(scan_worker, w);
    }
    lock(&qlock);
    cond_broadcast(&qcond);
    unlock(&qlock);
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }
    report();
    return 0;
}
`

// Pfscan returns the pfscan benchmark.
func Pfscan() *Benchmark {
	mkWorld := func(seed uint64, workers, nfiles, fwords, pattern int64) *oskit.World {
		w := cfgWorld(seed, []int64{workers, nfiles, pattern, 0, 0, 0, 0, 0})
		for i := int64(0); i < nfiles; i++ {
			data := make([]int64, fwords)
			x := seed*31 + uint64(i)*1299721
			for j := range data {
				x = x*6364136223846793005 + 1442695040888963407
				data[j] = int64(x>>45) & 127
			}
			w.AddFile(10+i, data)
		}
		return w
	}
	return &Benchmark{
		Name:   "pfscan",
		Class:  "desktop",
		Source: pfscanSrc,
		ProfileWorld: func(run int) *oskit.World {
			return mkWorld(uint64(run)+1, 2, 4, 96, 42)
		},
		EvalWorld: func(workers int) *oskit.World {
			return mkWorld(17, int64(workers), 16, 2048, 42)
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 4 small files",
		EvalEnv:     "N workers, 16 log files of 2048 words",
	}
}

// ---------------------------------------------------------------------------
// pbzip2 — block-parallel compressor (Table 1: profile 2 workers / 219KB,
// eval N workers / 16MB file; scaled). Blocks are enqueued by the
// producer, delta-"compressed" by workers into disjoint output slots
// (precise loop-lock bounds keep the blocks parallel), and checksummed;
// the blocks_done counter carries the benign progress race.

const pbzip2Src = `
int cfg[8];
int nworkers;
int nblocks;
int bwords;

int inblocks[16384];
int outblocks[16384];
int outsize[64];

int queue[80];
int qhead;
int qtail;
int qlock;
int qcond;

int blocks_done;

int grab_block(void) {
    lock(&qlock);
    while (qhead == qtail) {
        cond_wait(&qcond, &qlock);
    }
    int b = queue[qhead];
    qhead = qhead + 1;
    unlock(&qlock);
    return b;
}

void compress_block(int b) {
    int bw = bwords;
    int ibase = b * bw;
    int obase = b * bw;
    // Delta filter: the affine indexing gives the loop-lock precise
    // symbolic bounds, so blocks compress in parallel.
    for (int k = 0; k < bw; k++) {
        int prev = 0;
        if (k > 0) { prev = inblocks[ibase + k - 1]; }
        outblocks[obase + k] = inblocks[ibase + k] - prev;
    }
    outsize[b] = bw;
}

void compress_worker(int id) {
    while (1) {
        int b = grab_block();
        if (b < 0) { break; }
        compress_block(b);
        blocks_done = blocks_done + 1;
    }
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    nblocks = cfg[1];
    bwords = cfg[2];

    int dfd = open(10);
    int got = 0;
    int n = read(dfd, inblocks, 1024);
    while (n > 0) {
        got = got + n;
        int *dst = inblocks;
        n = read(dfd, dst + got, 1024);
    }
    close(dfd);
    check(got == nblocks * bwords);

    for (int b = 0; b < nblocks; b++) {
        queue[qtail] = b;
        qtail = qtail + 1;
    }
    for (int w = 0; w < nworkers; w++) {
        queue[qtail] = -1;
        qtail = qtail + 1;
    }

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(compress_worker, w);
    }
    lock(&qlock);
    cond_broadcast(&qcond);
    unlock(&qlock);
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }

    int total = 0;
    int nb = nblocks;
    for (int b = 0; b < nb; b++) {
        total = total + outsize[b];
    }
    check(total == nblocks * bwords);
    int out = open(2);
    write(out, outblocks, total);
    close(out);
    print(total);
    print(blocks_done);
    return 0;
}
`

// Pbzip2 returns the pbzip2 benchmark.
func Pbzip2() *Benchmark {
	mkWorld := func(seed uint64, workers, nblocks, bwords int64) *oskit.World {
		w := cfgWorld(seed, []int64{workers, nblocks, bwords, 0, 0, 0, 0, 0})
		w.AddFile(2, nil)
		data := make([]int64, nblocks*bwords)
		x := seed*71 + 5
		for j := range data {
			x = x*6364136223846793005 + 1442695040888963407
			data[j] = int64(x>>44) & 255
		}
		w.AddFile(10, data)
		return w
	}
	return &Benchmark{
		Name:   "pbzip2",
		Class:  "desktop",
		Source: pbzip2Src,
		ProfileWorld: func(run int) *oskit.World {
			return mkWorld(uint64(run)+1, 2, 4, 64)
		},
		EvalWorld: func(workers int) *oskit.World {
			return mkWorld(23, int64(workers), 32, 512)
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 4 blocks of 64 words",
		EvalEnv:     "N workers, 32 blocks of 512 words",
	}
}
