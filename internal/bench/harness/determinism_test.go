package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/instrument"
)

// allConfigNames is the union of the Figure 5 and MHP configuration sets,
// deduplicated, in canonical order.
func allConfigNames() []string {
	var out []string
	seen := make(map[string]bool)
	for _, cn := range append(append([]string{}, ConfigNames...), MHPConfigNames...) {
		if !seen[cn] {
			seen[cn] = true
			out = append(out, cn)
		}
	}
	return out
}

// The analysis pipeline must be a pure function of the source, independent
// of how many workers computed it. For every benchmark, the RELAY report,
// the MHP refinement (kept and pruned pairs with provenance), and the
// instrumented source (the weak-lock assignment) must be byte-identical
// between a sequential (-parallel 1) and a parallel (-parallel 8) run.
func TestAnalysisDeterministicUnderParallelism(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			seq, err := core.LoadParallel(b.Name, b.FullSource(), 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.LoadParallel(b.Name, b.FullSource(), 8)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := par.Races.Render(), seq.Races.Render(); got != want {
				t.Errorf("RELAY report differs between workers=8 and workers=1:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
			}
			if got, want := par.RefineMHP().Render(), seq.RefineMHP().Render(); got != want {
				t.Errorf("MHP-refined report differs between workers=8 and workers=1:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
			}

			// One shared profile isolates the comparison to the analysis:
			// both instrumentations see identical concurrency evidence.
			conc := seq.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 10_000)
			for _, cn := range allConfigNames() {
				var srcs [2]string
				var locks [2]int
				for i, p := range []*core.Program{seq, par} {
					rep := p.Races
					if strings.HasSuffix(cn, "+mhp") {
						rep = p.RefineMHP()
					}
					res, err := instrument.Instrument(rep, conc, OptionsFor(cn))
					if err != nil {
						t.Fatalf("%s: %v", cn, err)
					}
					srcs[i] = res.Source
					locks[i] = res.Table.Len()
				}
				if locks[0] != locks[1] {
					t.Errorf("%s: weak-lock count differs: sequential %d, parallel %d", cn, locks[0], locks[1])
				}
				if srcs[0] != srcs[1] {
					t.Errorf("%s: instrumented source differs between workers=8 and workers=1:\n--- parallel ---\n%s\n--- sequential ---\n%s", cn, srcs[1], srcs[0])
				}
			}
		})
	}
}

// A parallel suite must emit the same machine-readable rows as a
// sequential one: same values, same canonical (bench, config) order. Two
// benchmarks keep the runtime in check; the per-benchmark analysis
// equality above covers all nine.
func TestSuiteDeterministicUnderParallelism(t *testing.T) {
	names := []string{bench.All()[0].Name, bench.All()[1].Name}

	seqCfg := Default()
	seqCfg.NoCache = true
	seq, err := NewSuite(seqCfg, names...)
	if err != nil {
		t.Fatal(err)
	}
	seqEntries, err := seq.MeasureJSON(MHPConfigNames)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := Default()
	parCfg.Parallel = 4
	par, err := NewSuite(parCfg, names...)
	if err != nil {
		t.Fatal(err)
	}
	parEntries, err := par.MeasureJSON(MHPConfigNames)
	if err != nil {
		t.Fatal(err)
	}

	if len(seqEntries) != len(parEntries) {
		t.Fatalf("row count differs: sequential %d, parallel %d", len(seqEntries), len(parEntries))
	}
	for i := range seqEntries {
		a, b := entryJSON(t, seqEntries[i]), entryJSON(t, parEntries[i])
		if a != b {
			t.Errorf("row %d differs:\nsequential: %s\nparallel:   %s", i, a, b)
		}
	}
}

// entryJSON renders one row with its wall-clock fields (timings, not
// analysis results) zeroed, for byte comparison. The Metrics block is a
// pointer, so rows are compared by rendered value, not identity.
func entryJSON(t *testing.T, e JSONEntry) string {
	t.Helper()
	e.AnalysisWallNS = 0
	e.CertifyWallNS = 0
	e.RecordWallNS = 0
	e.ReplayWallNS = 0
	e.CheckerWallNS = 0
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
