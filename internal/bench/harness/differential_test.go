package harness

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/minic/ast"
	"repro/internal/trace"
)

// verdictSet canonicalizes a checker's races to the deduplicated
// (node, node) pair set both implementations must agree on.
func verdictSet(races []trace.Race) map[[2]ast.NodeID]bool {
	return trace.VerdictSet(races)
}

// diffCheck runs one program with the epoch checker and the full-vector
// oracle attached to the same execution's event stream and fails on any
// verdict difference. It returns the agreed race count.
func diffCheck(t *testing.T, label string, run func(ep, vc trace.RaceChecker)) int {
	t.Helper()
	ep := trace.NewChecker(0)
	vc := trace.NewVectorChecker(0)
	run(ep, vc)
	es, vs := verdictSet(ep.Races()), verdictSet(vc.Races())
	if len(es) != len(vs) {
		t.Fatalf("%s: verdict count diverged: epoch=%d vector=%d\nepoch: %v\nvector: %v",
			label, len(es), len(vs), ep.Races(), vc.Races())
	}
	for k := range vs {
		if !es[k] {
			t.Fatalf("%s: oracle race %v missing from epoch checker", label, k)
		}
	}
	return len(vs)
}

// TestCheckerDifferentialAllBenchmarks runs every benchmark — original and
// all four instrumented configurations — with the epoch checker and the
// full-vector oracle attached to the same execution, and requires
// identical race verdicts. Whether an original manifests its races is a
// property of the schedule, not the checker, so racy verdicts are only
// required in aggregate (the seed sweep below covers racy schedules);
// instrumented programs must be race-free under the extended
// synchronization set.
func TestCheckerDifferentialAllBenchmarks(t *testing.T) {
	cfg := Default()
	racyOriginals := 0
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := Prepare(b)
			if err != nil {
				t.Fatal(err)
			}
			rc := core.RunConfig{World: b.EvalWorld(cfg.Workers), Seed: cfg.Seed, HeapWords: cfg.HeapWords}

			n := diffCheck(t, b.Name+"/original", func(ep, vc trace.RaceChecker) {
				rc := rc
				rc.World = b.EvalWorld(cfg.Workers)
				if r := core.CheckDynamicRacesWith(p.Prog, nil, rc, ep, vc); r.Err != nil {
					t.Fatalf("original run: %v", r.Err)
				}
			})
			if n > 0 {
				racyOriginals++
			}

			for _, cn := range ConfigNames {
				ip, err := p.Instrumented(cn)
				if err != nil {
					t.Fatal(err)
				}
				n := diffCheck(t, b.Name+"/"+cn, func(ep, vc trace.RaceChecker) {
					rc := rc
					rc.World = b.EvalWorld(cfg.Workers)
					if r := core.CheckDynamicRacesWith(ip.Prog, ip.Table, rc, ep, vc); r.Err != nil {
						t.Fatalf("%s run: %v", cn, r.Err)
					}
				})
				if n != 0 {
					t.Errorf("%s/%s: instrumented program must be race-free, both checkers found %d races", b.Name, cn, n)
				}
			}
		})
	}
	if racyOriginals == 0 {
		t.Errorf("no original benchmark manifested a race under the default seed; the racy verdict path went unexercised")
	}
}

// TestCheckerDifferentialSeedSweep sweeps randomized schedules: every
// benchmark's original (racy) program runs under 16 schedule seeds with
// both checkers on the same stream. Racy programs under varying schedules
// exercise the epoch checker's report paths and promotions far harder than
// the race-free instrumented runs.
func TestCheckerDifferentialSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is the long differential pass")
	}
	cfg := Default()
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := core.Load(b.Name, b.FullSource())
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 16; seed++ {
				label := fmt.Sprintf("%s/seed%d", b.Name, seed)
				diffCheck(t, label, func(ep, vc trace.RaceChecker) {
					rc := core.RunConfig{
						World: b.EvalWorld(cfg.Workers), Seed: seed*2654435761 + 17,
						HeapWords: cfg.HeapWords,
					}
					if r := core.CheckDynamicRacesWith(prog, nil, rc, ep, vc); r.Err != nil {
						t.Fatalf("seed %d run: %v", seed, r.Err)
					}
				})
			}
		})
	}
}
