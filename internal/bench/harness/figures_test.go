package harness

import (
	"strings"
	"testing"

	"repro/internal/weaklock"
)

// oneBenchSuite prepares a single cheap benchmark for figure smoke tests.
func oneBenchSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(Default(), "pbzip2")
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	return s
}

func TestFigure5And6Render(t *testing.T) {
	s := oneBenchSuite(t)
	rows5, out5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) != 1 || !strings.Contains(out5, "pbzip2") {
		t.Errorf("figure 5 rows/render wrong:\n%s", out5)
	}
	for _, cn := range ConfigNames {
		if rows5[0].Values[cn] < 0.5 {
			t.Errorf("%s overhead %.2f implausible", cn, rows5[0].Values[cn])
		}
	}
	rows6, out6, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if rows6[0].Values["instr"] <= rows6[0].Values["all"] {
		t.Errorf("figure 6: naive fraction should exceed all-opts:\n%s", out6)
	}
}

func TestFigure7Render(t *testing.T) {
	s := oneBenchSuite(t)
	rows, out, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(out, "loop") {
		t.Errorf("figure 7 render:\n%s", out)
	}
	// Totals must be finite and non-negative.
	for k := weaklock.Kind(0); k < weaklock.NumKinds; k++ {
		if rows[0].Logging[k] < 0 || rows[0].Contention[k] < 0 {
			t.Errorf("negative breakdown for %s", k)
		}
	}
}

func TestFigure8Render(t *testing.T) {
	s := oneBenchSuite(t)
	rows, out, err := s.Figure8([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Overheads[2] == 0 || rows[0].Overheads[4] == 0 {
		t.Errorf("figure 8 rows wrong: %+v\n%s", rows, out)
	}
}

func TestOptionsForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown config")
		}
	}()
	OptionsFor("bogus")
}

func TestNewSuiteUnknownBenchmark(t *testing.T) {
	if _, err := NewSuite(Default(), "nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

// TestApacheMemsetAnecdote pins the paper's flagship §7.3 example: RELAY
// reports a false self-race in my_memset's hot loop, and the all-opts
// instrumentation gives that loop a RANGED loop-lock (symbolic bounds
// [dst, dst+len-1]) so concurrent responses stay parallel.
func TestApacheMemsetAnecdote(t *testing.T) {
	s, err := NewSuite(Default(), "apache")
	if err != nil {
		t.Fatal(err)
	}
	ip := s.Items[0].Inst["all"]
	src := ip.Prog.Source
	i := strings.Index(src, "void my_memset")
	if i < 0 {
		t.Fatal("my_memset missing")
	}
	j := strings.Index(src[i:], "\n}")
	body := src[i : i+j]
	if !strings.Contains(body, "wl_acquire(1") {
		t.Errorf("my_memset should carry a loop-granularity lock:\n%s", body)
	}
	if !strings.Contains(body, "__wlb") {
		t.Errorf("my_memset's loop-lock should be ranged (symbolic bounds):\n%s", body)
	}
	// And it must actually run in parallel: measure contention on loop
	// locks relative to naive apache.
	m, err := s.Measure(p0(s), "all", 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Timeouts != 0 {
		t.Errorf("timeouts in apache: %d", m.Timeouts)
	}
}

func p0(s *Suite) *Prepared { return s.Items[0] }
