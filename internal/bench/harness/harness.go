// Package harness drives the full evaluation: it prepares every benchmark
// (analyze → profile → instrument under each optimization configuration),
// measures native/record/replay executions on the simulated multicore, and
// regenerates each table and figure of the paper's evaluation section:
//
//	Table 1   benchmarks, LOC, profile/eval environments
//	Table 2   DRF logs, weak-lock logs by granularity, record/replay
//	          overheads, compressed log sizes
//	Figure 5  recording overhead per optimization set
//	Figure 6  weak-lock operations as a fraction of memory operations
//	Figure 7  logging vs contention breakdown per weak-lock granularity
//	Figure 8  scalability over 2/4/8 workers
//	§7.3      profile-run sensitivity (concurrent-pair saturation)
//
// Absolute numbers come from the simulator's cost model; the claims under
// test are the *relative* ones — which configuration wins, by roughly what
// factor, and where each benchmark class lands.
package harness

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/obs"
	"repro/internal/oskit"
	"repro/internal/profile"
	"repro/internal/relay"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/weaklock"
)

// ConfigNames lists the optimization configurations of Figure 5, in
// presentation order.
var ConfigNames = []string{"instr", "instr+func", "instr+loop", "all"}

// MHPConfigNames lists the configurations of the Figure-5-style MHP
// comparison: each instrumentation level with and without the static
// may-happen-in-parallel refinement pruning the race pairs first.
var MHPConfigNames = []string{"instr", "instr+mhp", "all", "all+mhp"}

// OptionsFor maps a configuration name to instrumenter options. A "+mhp"
// suffix selects the same options over the MHP-refined race report and is
// stripped here.
func OptionsFor(name string) instrument.Options {
	name = strings.TrimSuffix(name, "+mhp")
	switch name {
	case "instr":
		return instrument.NaiveOptions()
	case "instr+func":
		return instrument.Options{FuncLocks: true}
	case "instr+loop":
		return instrument.Options{LoopLocks: true, LoopBodyThreshold: 14}
	case "all":
		return instrument.AllOptions()
	}
	panic("unknown config " + name)
}

// Config parameterizes the harness.
type Config struct {
	Workers    int    // evaluation worker count (default 4)
	Seed       uint64 // record seed
	ReplaySeed uint64
	HeapWords  int64 // VM heap (smaller than default to keep memory modest)

	// Parallel bounds the harness worker pool: benchmark preparation and
	// independent benchmark × config measurement cells run on up to this
	// many goroutines ( <=1 preserves the fully sequential path). Output
	// ordering is independent of the value: results land in pre-indexed
	// slots and every rendered table/figure/JSON row keeps its canonical
	// order.
	Parallel int

	// NoCache disables the measurement and native-run caches, re-running
	// every cell from scratch like the pre-cache harness. It exists for
	// baseline wall-clock comparisons; results are identical either way.
	NoCache bool

	// Precision applies the static precision layer (internal/escape:
	// thread-escape, must-lockset sharpening, read-only sharing) to every
	// configuration's race report before instrumentation. "+mhp" configs
	// get precision over the MHP-refined report, the rest over the raw
	// RELAY report.
	Precision bool
}

// Default returns the Table 2 configuration: 4 worker threads, sequential
// harness.
func Default() Config {
	return Config{Workers: 4, Seed: 1234, ReplaySeed: 987654, HeapWords: 1 << 19, Parallel: 1}
}

// Prepared caches everything derivable from one benchmark independent of
// the measured run: the analysis, the profile, and one instrumentation per
// configuration. The analysis artifact (Prog and its race reports) is
// computed once and shared read-only across every config; Instrumented
// additions are mutex-guarded so concurrent measurement cells of one
// benchmark stay safe.
type Prepared struct {
	B    *bench.Benchmark
	Prog *core.Program
	Conc *profile.Concurrency
	Inst map[string]*core.Instrumented

	// Precision mirrors Config.Precision: instrument precision-refined
	// reports instead of the plain ones.
	Precision bool

	mu sync.Mutex // guards lazy additions to Inst
}

// RefinedReport returns (computing once) the MHP-refined race report.
func (p *Prepared) RefinedReport() *relay.Report {
	return p.Prog.RefinedRaces()
}

// ReportFor returns the race report a configuration instruments: the
// MHP-refined one for "+mhp" configurations, the full RELAY report
// otherwise; with Precision set, each of those additionally passes
// through the static precision layer.
func (p *Prepared) ReportFor(configName string) *relay.Report {
	mhp := strings.HasSuffix(configName, "+mhp")
	switch {
	case p.Precision && mhp:
		return p.Prog.PrecisionRaces()
	case p.Precision:
		return p.Prog.PrecisionRacesBase()
	case mhp:
		return p.RefinedReport()
	}
	return p.Prog.Races
}

// Instrumented returns the instrumentation for a configuration, building
// and caching it on first use. Prepare eagerly builds only the Figure 5
// set; the MHP configurations are built here on demand.
func (p *Prepared) Instrumented(configName string) (*core.Instrumented, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ip, ok := p.Inst[configName]; ok {
		return ip, nil
	}
	ip, err := p.Prog.InstrumentWith(p.ReportFor(configName), p.Conc, OptionsFor(configName))
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", p.B.Name, configName, err)
	}
	p.Inst[configName] = ip
	return ip, nil
}

// Suite is a set of prepared benchmarks.
type Suite struct {
	Cfg   Config
	Items []*Prepared

	// Analyses is the shared per-program analysis cache (stage 2 of the
	// pipeline caching): every Prepared's Prog comes out of it, and reruns
	// over the same sources hit instead of recomputing.
	Analyses *core.Cache

	// measured memoizes finished measurement cells (bench|config|workers):
	// Table 2, Figures 5–8 and the JSON export overlap heavily, and every
	// cell is deterministic, so each is measured once per suite.
	measMu   sync.Mutex
	measured map[string]*Measurement

	// natives memoizes the uninstrumented baseline run per
	// (bench, workers): it is config-independent.
	natMu   sync.Mutex
	natives map[string]*vm.Result
}

// NewSuite prepares the named benchmarks (all of them when names is
// empty), fanning the per-benchmark preparation over cfg.Parallel workers.
// Items keeps the canonical benchmark order regardless of parallelism.
func NewSuite(cfg Config, names ...string) (*Suite, error) {
	var list []*bench.Benchmark
	if len(names) == 0 {
		list = bench.All()
	} else {
		for _, n := range names {
			b := bench.ByName(n)
			if b == nil {
				return nil, fmt.Errorf("unknown benchmark %q", n)
			}
			list = append(list, b)
		}
	}
	return NewSuiteOf(cfg, list)
}

// NewSuiteOf prepares an explicit benchmark list — the entry point for
// workloads that are not in the embedded registry, such as generated
// scenarios adapted via scenario.ToBenchmark.
func NewSuiteOf(cfg Config, list []*bench.Benchmark) (*Suite, error) {
	s := &Suite{
		Cfg:      cfg,
		Analyses: core.NewCache(),
		measured: make(map[string]*Measurement),
		natives:  make(map[string]*vm.Result),
	}
	items := make([]*Prepared, len(list))
	errs := make([]error, len(list))
	s.forEach(len(list), func(i int) {
		items[i], errs[i] = s.prepare(list[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.Items = items
	return s, nil
}

// forEach runs fn(0..n-1) on a pool of cfg.Parallel goroutines (inline
// when sequential).
func (s *Suite) forEach(n int, fn func(i int)) {
	workers := s.Cfg.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Prepare analyzes, profiles and instruments one benchmark under every
// configuration, standalone (no shared caches, sequential analysis).
func Prepare(b *bench.Benchmark) (*Prepared, error) {
	return prepareWith(core.NewCache(), b, 1, false)
}

func (s *Suite) prepare(b *bench.Benchmark) (*Prepared, error) {
	workers := s.Cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	return prepareWith(s.Analyses, b, workers, s.Cfg.Precision)
}

func prepareWith(cache *core.Cache, b *bench.Benchmark, workers int, precision bool) (*Prepared, error) {
	prog, err := cache.Load(b.Name, b.FullSource(), workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	conc := prog.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 10_000)
	p := &Prepared{B: b, Prog: prog, Conc: conc, Precision: precision, Inst: make(map[string]*core.Instrumented)}
	for _, cn := range ConfigNames {
		ip, err := prog.InstrumentWith(p.ReportFor(cn), conc, OptionsFor(cn))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", b.Name, cn, err)
		}
		p.Inst[cn] = ip
	}
	return p, nil
}

// Measurement is one measured configuration of one benchmark.
type Measurement struct {
	Bench  string
	Config string

	NativeMakespan int64
	RecordMakespan int64
	ReplayMakespan int64

	RecordOverhead float64
	ReplayOverhead float64

	// DRF log volumes (Table 2 left columns).
	Syscalls int // input-log records
	SyncOps  int // order-log records for original sync

	// Weak-lock log records by granularity (Table 2 middle columns:
	// instr. / basic blk. / loop / func.).
	WLLogs [weaklock.NumKinds]int64

	// Dynamic operation counts (Figure 6).
	MemOps int64
	WLOps  int64

	// Per-kind logging and contention cycles (Figure 7).
	LogCycles  [weaklock.NumKinds]int64
	Contention [weaklock.NumKinds]int64

	// Compressed log sizes in KB (Table 2 right columns).
	InputLogKB float64
	OrderLogKB float64

	// Streamed chunked-log sizes in compressed bytes, from the LogWriter
	// attached to the recording run: the whole recording stream and the
	// order-stream share of its chunks.
	RecordLogBytes int64
	OrderLogBytes  int64

	// Real wall-clock nanoseconds of the dynamic phases. Unlike the
	// simulated makespans (and every ratio derived from them) these vary
	// run to run and machine to machine; EXPERIMENTS.md documents the
	// methodology.
	RecordWallNS int64
	ReplayWallNS int64

	// CheckerWallNS is the wall time the epoch race checker spent
	// consuming the instrumented run's event stream (a separate checked
	// run); CheckerRaces is its verdict count — 0 for a correctly
	// instrumented program under the extended synchronization set.
	// CheckersAgree is true when the full-vector oracle, attached to the
	// same event stream, reached the identical verdict set.
	CheckerWallNS int64
	CheckerRaces  int
	CheckersAgree bool

	Timeouts int64

	// ReplayMatches is true when replay bit-matched the recording.
	ReplayMatches bool
	ReplayErr     string

	// Metrics is the observability block exported into the JSON rows:
	// per-weak-lock-site counters, event-stream stats from the checked
	// run, and the per-stream log breakdown. Every field is simulated and
	// deterministic (no wall times).
	Metrics *obs.RowMetrics
}

// Measure runs native + record + replay for one benchmark/config at the
// given worker count. Cells are deterministic, so finished measurements
// are memoized per (bench, config, workers) unless Cfg.NoCache is set;
// the memo is safe for concurrent cells.
func (s *Suite) Measure(p *Prepared, configName string, workers int) (*Measurement, error) {
	if s.Cfg.NoCache || s.measured == nil {
		return s.measure(p, configName, workers)
	}
	key := fmt.Sprintf("%s|%s|%d", p.B.Name, configName, workers)
	s.measMu.Lock()
	m, ok := s.measured[key]
	s.measMu.Unlock()
	if ok {
		return m, nil
	}
	m, err := s.measure(p, configName, workers)
	if err != nil {
		return nil, err
	}
	s.measMu.Lock()
	s.measured[key] = m
	s.measMu.Unlock()
	return m, nil
}

// native runs (and memoizes) the uninstrumented baseline for one
// benchmark at a worker count; it is independent of the instrumentation
// config.
func (s *Suite) native(p *Prepared, workers int) (*vm.Result, error) {
	key := fmt.Sprintf("%s|%d", p.B.Name, workers)
	if !s.Cfg.NoCache && s.natives != nil {
		s.natMu.Lock()
		r, ok := s.natives[key]
		s.natMu.Unlock()
		if ok {
			return r, nil
		}
	}
	rcNative := core.RunConfig{World: p.B.EvalWorld(workers), Seed: s.Cfg.Seed, HeapWords: s.Cfg.HeapWords}
	native := p.Prog.RunNative(rcNative)
	if native.Err != nil {
		return nil, fmt.Errorf("%s native: %w", p.B.Name, native.Err)
	}
	if !s.Cfg.NoCache && s.natives != nil {
		s.natMu.Lock()
		s.natives[key] = native
		s.natMu.Unlock()
	}
	return native, nil
}

func (s *Suite) measure(p *Prepared, configName string, workers int) (*Measurement, error) {
	ip, err := p.Instrumented(configName)
	if err != nil {
		return nil, err
	}
	m := &Measurement{Bench: p.B.Name, Config: configName}

	native, err := s.native(p, workers)
	if err != nil {
		return nil, err
	}
	m.NativeMakespan = native.Makespan

	rcRec := core.RunConfig{World: p.B.EvalWorld(workers), Seed: s.Cfg.Seed, Table: ip.Table, HeapWords: s.Cfg.HeapWords}
	var cw countWriter
	recStart := time.Now()
	recRes, log, lw := ip.RecordTo(rcRec, &cw)
	m.RecordWallNS = time.Since(recStart).Nanoseconds()
	if recRes.Err != nil {
		return nil, fmt.Errorf("%s/%s record: %w", p.B.Name, configName, recRes.Err)
	}
	m.RecordLogBytes = cw.n
	m.OrderLogBytes = lw.OrderBytesWritten()
	m.RecordMakespan = recRes.Makespan
	m.RecordOverhead = ratio(recRes.Makespan, native.Makespan)
	m.Syscalls = log.InputCount()
	m.SyncOps = log.OrderCount(vm.SyncMutex, vm.SyncBarrier, vm.SyncCond, vm.SyncSpawn)
	m.WLLogs = recRes.WLStats.Logs
	m.MemOps = recRes.Counters.MemOps
	m.WLOps = recRes.WLStats.TotalOps()
	m.LogCycles = recRes.WLStats.LogCycles
	m.Contention = recRes.WLStats.Contention
	m.InputLogKB = log.InputLogKB()
	m.OrderLogKB = log.OrderLogKB()
	m.Timeouts = recRes.WLStats.Timeouts

	repStart := time.Now()
	repRes, err := ip.Replay(log, core.RunConfig{
		World: p.B.EvalWorld(workers), Seed: s.Cfg.ReplaySeed, Table: ip.Table, HeapWords: s.Cfg.HeapWords,
	})
	m.ReplayWallNS = time.Since(repStart).Nanoseconds()
	if err != nil {
		m.ReplayErr = err.Error()
	} else {
		m.ReplayMakespan = repRes.Makespan
		m.ReplayOverhead = ratio(repRes.Makespan, native.Makespan)
		m.ReplayMatches = repRes.Hash64() == recRes.Hash64()
		if !m.ReplayMatches {
			m.ReplayErr = "replay hash mismatch"
		}
	}

	// A separate checked run: the epoch checker and the full-vector
	// oracle consume the instrumented program's batched event stream
	// (pure observers, so the measured record/replay runs above are
	// untouched). An EventCounter rides the same stream and attributes it
	// for the metrics block; the two checkers' verdict sets must agree on
	// every row — CheckersAgree feeds the JSON export the CI gate asserts.
	chk := trace.NewChecker(0)
	vchk := trace.NewVectorChecker(0)
	counter := &obs.EventCounter{}
	chkRes := core.CheckDynamicRacesWith(ip.Prog, ip.Table, core.RunConfig{
		World: p.B.EvalWorld(workers), Seed: s.Cfg.Seed, HeapWords: s.Cfg.HeapWords,
		Sinks: []vm.EventSink{counter},
	}, chk, vchk)
	if chkRes.Err != nil {
		return nil, fmt.Errorf("%s/%s checker run: %w", p.B.Name, configName, chkRes.Err)
	}
	m.CheckerWallNS = chk.WallNS()
	m.CheckerRaces = chk.RaceCount()
	m.CheckersAgree = trace.SameVerdicts(chk.Races(), vchk.Races())

	wl := obs.WeakLocksFrom(ip.Table, recRes.WLSites)
	wl.Timeouts = recRes.WLStats.Timeouts
	wl.OrderLogEntries = int64(log.OrderCount(vm.SyncWeakLock))
	wl.AcquireOrderEntries = countAcquireEntries(log)
	ws := lw.Stats()
	m.Metrics = &obs.RowMetrics{
		Schema: obs.Schema,
		Makespans: obs.Makespans{
			Native: native.Makespan,
			Record: recRes.Makespan,
			Replay: m.ReplayMakespan,
		},
		WeakLocks: wl,
		Events:    counter.Events(chkRes.Counters.EventsEmitted, chkRes.Counters.EventBatches),
		Log: obs.LogStreams{
			TotalBytes:    cw.n,
			InputChunks:   ws.InputChunks,
			OrderChunks:   ws.OrderChunks,
			InputRecords:  ws.InputRecords,
			OrderRecords:  ws.OrderRecords,
			InputRawBytes: ws.InputRawBytes,
			OrderRawBytes: ws.OrderRawBytes,
			InputBytes:    ws.InputBytes,
			OrderBytes:    ws.OrderBytes,
		},
	}
	return m, nil
}

// countWriter counts bytes streamed through it (the recording's total
// on-disk size, without buffering the stream).
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Cell identifies one independent benchmark × config × workers
// measurement.
type Cell struct {
	P       *Prepared
	Config  string
	Workers int
}

// MeasureCells measures every cell, fanning out over Cfg.Parallel workers.
// Results keep the input order (slot-indexed), and the returned error is
// the one from the lowest-index failing cell, so output and failures are
// deterministic regardless of scheduling.
func (s *Suite) MeasureCells(cells []Cell) ([]*Measurement, error) {
	ms := make([]*Measurement, len(cells))
	errs := make([]error, len(cells))
	s.forEach(len(cells), func(i int) {
		ms[i], errs[i] = s.Measure(cells[i].P, cells[i].Config, cells[i].Workers)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// ---------------------------------------------------------------------------
// Table 1

// Table1 renders the benchmark inventory.
func (s *Suite) Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: benchmarks and environments (LOC counts MiniC lines incl. mini-libc)\n")
	fmt.Fprintf(&sb, "%-8s %-11s %5s  %-45s %s\n", "app", "class", "LOC", "profile environment", "evaluation environment")
	for _, p := range s.Items {
		fmt.Fprintf(&sb, "%-8s %-11s %5d  %-45s %s\n",
			p.B.Name, p.B.Class, p.B.LOC(), p.B.ProfileEnv, p.B.EvalEnv)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 2

// Table2 measures every benchmark in the "all" configuration at the
// default worker count.
func (s *Suite) Table2() ([]*Measurement, string, error) {
	cells := make([]Cell, len(s.Items))
	for i, p := range s.Items {
		cells[i] = Cell{P: p, Config: "all", Workers: s.Cfg.Workers}
	}
	ms, err := s.MeasureCells(cells)
	if err != nil {
		return nil, "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: record and replay, %d worker threads, all optimizations\n", s.Cfg.Workers)
	fmt.Fprintf(&sb, "%-8s | %8s %8s | %8s %8s %8s %8s | %7s %7s | %9s %9s | %4s\n",
		"app", "syscalls", "syncops", "instrlog", "bblog", "looplog", "funclog",
		"rec.ovh", "rep.ovh", "inlog(KB)", "ordlog(KB)", "rep?")
	for _, m := range ms {
		ok := "ok"
		if !m.ReplayMatches {
			ok = "FAIL"
		}
		fmt.Fprintf(&sb, "%-8s | %8d %8d | %8d %8d %8d %8d | %7.2f %7.2f | %9.1f %9.1f | %4s\n",
			m.Bench, m.Syscalls, m.SyncOps,
			m.WLLogs[weaklock.KindInstr], m.WLLogs[weaklock.KindBB],
			m.WLLogs[weaklock.KindLoop], m.WLLogs[weaklock.KindFunc],
			m.RecordOverhead, m.ReplayOverhead,
			m.InputLogKB, m.OrderLogKB, ok)
	}
	return ms, sb.String(), nil
}

// ---------------------------------------------------------------------------
// Figure 5 / Figure 6

// FigureRow is one benchmark's series over configurations.
type FigureRow struct {
	Bench  string
	Values map[string]float64
}

// Figure5 measures the recording overhead under each configuration.
func (s *Suite) Figure5() ([]FigureRow, string, error) {
	rows, err := s.perConfig(ConfigNames, func(m *Measurement) float64 { return m.RecordOverhead })
	if err != nil {
		return nil, "", err
	}
	return rows, renderFigure("Figure 5: normalized recording overhead (x)", ConfigNames, rows, "%8.2f"), nil
}

// Figure6 measures weak-lock operations as a percentage of dynamic memory
// operations under each configuration.
func (s *Suite) Figure6() ([]FigureRow, string, error) {
	rows, err := s.perConfig(ConfigNames, func(m *Measurement) float64 {
		if m.MemOps == 0 {
			return 0
		}
		return 100 * float64(m.WLOps) / float64(m.MemOps)
	})
	if err != nil {
		return nil, "", err
	}
	return rows, renderFigure("Figure 6: weak-lock ops as % of memory ops", ConfigNames, rows, "%8.3f"), nil
}

// FigureMHP measures recording overhead with and without the static MHP
// refinement at each instrumentation level (Figure-5-style presentation).
func (s *Suite) FigureMHP() ([]FigureRow, string, error) {
	rows, err := s.perConfig(MHPConfigNames, func(m *Measurement) float64 { return m.RecordOverhead })
	if err != nil {
		return nil, "", err
	}
	return rows, renderFigure("Figure 5 + MHP: normalized recording overhead (x)", MHPConfigNames, rows, "%8.2f"), nil
}

func (s *Suite) perConfig(configNames []string, metric func(*Measurement) float64) ([]FigureRow, error) {
	var cells []Cell
	for _, p := range s.Items {
		for _, cn := range configNames {
			cells = append(cells, Cell{P: p, Config: cn, Workers: s.Cfg.Workers})
		}
	}
	ms, err := s.MeasureCells(cells)
	if err != nil {
		return nil, err
	}
	var rows []FigureRow
	for i, p := range s.Items {
		row := FigureRow{Bench: p.B.Name, Values: make(map[string]float64)}
		for j, cn := range configNames {
			row.Values[cn] = metric(ms[i*len(configNames)+j])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func renderFigure(title string, configNames []string, rows []FigureRow, f string) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-8s", "app")
	for _, cn := range configNames {
		fmt.Fprintf(&sb, " %12s", cn)
	}
	sb.WriteByte('\n')
	var gmean = make(map[string]float64)
	for _, cn := range configNames {
		gmean[cn] = 1
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s", r.Bench)
		for _, cn := range configNames {
			fmt.Fprintf(&sb, "     "+f, r.Values[cn])
			if r.Values[cn] > 0 {
				gmean[cn] *= r.Values[cn]
			}
		}
		sb.WriteByte('\n')
	}
	if len(rows) > 1 {
		fmt.Fprintf(&sb, "%-8s", "geomean")
		for _, cn := range configNames {
			fmt.Fprintf(&sb, "     "+f, pow(gmean[cn], 1/float64(len(rows))))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

// ---------------------------------------------------------------------------
// Figure 7

// Fig7Row is the per-kind overhead breakdown for one benchmark, as
// fractions of the native makespan.
type Fig7Row struct {
	Bench      string
	Logging    [weaklock.NumKinds]float64
	Contention [weaklock.NumKinds]float64
}

// Figure7 breaks recording overhead into logging and contention per
// weak-lock granularity (all-optimizations configuration).
func (s *Suite) Figure7() ([]Fig7Row, string, error) {
	cells := make([]Cell, len(s.Items))
	for i, p := range s.Items {
		cells[i] = Cell{P: p, Config: "all", Workers: s.Cfg.Workers}
	}
	ms, err := s.MeasureCells(cells)
	if err != nil {
		return nil, "", err
	}
	var rows []Fig7Row
	for i, p := range s.Items {
		m := ms[i]
		r := Fig7Row{Bench: p.B.Name}
		for k := weaklock.Kind(0); k < weaklock.NumKinds; k++ {
			r.Logging[k] = ratio(m.LogCycles[k], m.NativeMakespan)
			r.Contention[k] = ratio(m.Contention[k], m.NativeMakespan)
		}
		rows = append(rows, r)
	}
	var sb strings.Builder
	sb.WriteString("Figure 7: sources of recording overhead (fraction of native time)\n")
	fmt.Fprintf(&sb, "%-8s", "app")
	for k := weaklock.Kind(0); k < weaklock.NumKinds; k++ {
		fmt.Fprintf(&sb, " %9s-log %9s-wait", k, k)
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s", r.Bench)
		for k := weaklock.Kind(0); k < weaklock.NumKinds; k++ {
			fmt.Fprintf(&sb, " %13.3f %14.3f", r.Logging[k], r.Contention[k])
		}
		sb.WriteByte('\n')
	}
	return rows, sb.String(), nil
}

// ---------------------------------------------------------------------------
// Figure 8

// Fig8Row is the scalability series for one benchmark.
type Fig8Row struct {
	Bench     string
	Overheads map[int]float64 // workers -> record overhead
}

// Figure8 sweeps worker counts (paper: 2, 4, 8 processors).
func (s *Suite) Figure8(workerCounts []int) ([]Fig8Row, string, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 8}
	}
	var cells []Cell
	for _, p := range s.Items {
		for _, wc := range workerCounts {
			cells = append(cells, Cell{P: p, Config: "all", Workers: wc})
		}
	}
	ms, err := s.MeasureCells(cells)
	if err != nil {
		return nil, "", err
	}
	var rows []Fig8Row
	for i, p := range s.Items {
		r := Fig8Row{Bench: p.B.Name, Overheads: make(map[int]float64)}
		for j, wc := range workerCounts {
			r.Overheads[wc] = ms[i*len(workerCounts)+j].RecordOverhead
		}
		rows = append(rows, r)
	}
	var sb strings.Builder
	sb.WriteString("Figure 8: recording overhead vs worker threads (all opts)\n")
	fmt.Fprintf(&sb, "%-8s", "app")
	for _, wc := range workerCounts {
		fmt.Fprintf(&sb, " %7dw", wc)
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s", r.Bench)
		for _, wc := range workerCounts {
			fmt.Fprintf(&sb, " %8.2f", r.Overheads[wc])
		}
		sb.WriteByte('\n')
	}
	return rows, sb.String(), nil
}

// ---------------------------------------------------------------------------
// §7.3 profile sensitivity

// SensitivityRow tracks concurrent-pair saturation per profile run count.
type SensitivityRow struct {
	Bench string
	Pairs []int // pairs observed after run i+1
}

// ProfileSensitivity reproduces the §7.3 study: the number of concurrent
// function pairs observed saturates after a few profile runs.
func ProfileSensitivity(names []string, maxRuns int) ([]SensitivityRow, string, error) {
	if len(names) == 0 {
		names = []string{"pfscan", "water"}
	}
	if maxRuns == 0 {
		maxRuns = 10
	}
	var rows []SensitivityRow
	for _, name := range names {
		b := bench.ByName(name)
		if b == nil {
			return nil, "", fmt.Errorf("unknown benchmark %q", name)
		}
		prog, err := core.Load(b.Name, b.FullSource())
		if err != nil {
			return nil, "", err
		}
		row := SensitivityRow{Bench: name}
		acc := profile.NewConcurrency()
		for run := 0; run < maxRuns; run++ {
			r := run
			one := prog.ProfileNonConcurrency(func(int) *oskit.World {
				return b.ProfileWorld(r)
			}, 1, uint64(run)*1000003+7)
			acc.Merge(one)
			row.Pairs = append(row.Pairs, acc.PairCount())
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	sb.WriteString("Profile sensitivity (§7.3): concurrent pairs after k profile runs\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s", r.Bench)
		for _, n := range r.Pairs {
			fmt.Fprintf(&sb, " %4d", n)
		}
		sb.WriteByte('\n')
	}
	return rows, sb.String(), nil
}
