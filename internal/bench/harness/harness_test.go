package harness

import (
	"strings"
	"testing"

	"repro/internal/weaklock"
)

// TestSingleBenchmarkPipeline exercises the full measurement path on one
// cheap benchmark.
func TestSingleBenchmarkPipeline(t *testing.T) {
	s, err := NewSuite(Default(), "pbzip2")
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	p := s.Items[0]
	m, err := s.Measure(p, "all", 4)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	if !m.ReplayMatches {
		t.Fatalf("replay did not match recording: %s", m.ReplayErr)
	}
	if m.Timeouts != 0 {
		t.Errorf("unexpected weak-lock timeouts: %d", m.Timeouts)
	}
	if m.RecordOverhead < 1.0 {
		t.Errorf("record overhead %.3f below 1.0?", m.RecordOverhead)
	}
	if m.Syscalls == 0 {
		t.Errorf("no syscalls logged")
	}
}

// TestOptimizationOrdering checks the Figure 5 shape on one benchmark:
// all-opts must beat naive instr by a wide margin.
func TestOptimizationOrdering(t *testing.T) {
	s, err := NewSuite(Default(), "radix")
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	p := s.Items[0]
	naive, err := s.Measure(p, "instr", 4)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	all, err := s.Measure(p, "all", 4)
	if err != nil {
		t.Fatalf("all: %v", err)
	}
	if !naive.ReplayMatches || !all.ReplayMatches {
		t.Fatalf("replay mismatch: naive=%s all=%s", naive.ReplayErr, all.ReplayErr)
	}
	if all.RecordOverhead >= naive.RecordOverhead {
		t.Errorf("all-opts (%.2fx) should beat naive (%.2fx)",
			all.RecordOverhead, naive.RecordOverhead)
	}
	// Figure 6 shape: instrumented op fraction drops by a big factor.
	fNaive := float64(naive.WLOps) / float64(naive.MemOps)
	fAll := float64(all.WLOps) / float64(all.MemOps)
	if fAll*3 > fNaive {
		t.Errorf("wl-op fraction did not drop: naive %.4f, all %.4f", fNaive, fAll)
	}
	// radix's all-opts config uses loop locks (paper Fig. 4).
	if all.WLLogs[weaklock.KindLoop] == 0 {
		t.Errorf("radix should produce loop-lock logs; got %+v", all.WLLogs)
	}
}

func TestTable1Renders(t *testing.T) {
	s, err := NewSuite(Default(), "pbzip2", "fft")
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	out := s.Table1()
	if !strings.Contains(out, "pbzip2") || !strings.Contains(out, "fft") {
		t.Errorf("table 1 missing rows:\n%s", out)
	}
}

func TestProfileSensitivity(t *testing.T) {
	rows, out, err := ProfileSensitivity([]string{"pfscan"}, 5)
	if err != nil {
		t.Fatalf("sensitivity: %v", err)
	}
	if len(rows) != 1 || len(rows[0].Pairs) != 5 {
		t.Fatalf("bad rows: %+v", rows)
	}
	// Monotone non-decreasing and saturating (last two equal is typical).
	p := rows[0].Pairs
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Errorf("pair counts must be monotone: %v", p)
		}
	}
	if !strings.Contains(out, "pfscan") {
		t.Errorf("render missing bench name:\n%s", out)
	}
}
