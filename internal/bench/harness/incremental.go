package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/summary"
)

// incrementalEditOld/New is the scripted single edit the warm-vs-cold
// measurement applies: a one-constant change inside the embedded libc's
// my_checksum, which every benchmark links (FullSource appends LibC), so
// the same edit dirties a real call cone in all nine programs. The
// anchor is unique to the libc copy — benchmark-local checksums use a
// differently named accumulator.
const (
	incrementalEditOld = "h = h * 16777619;"
	incrementalEditNew = "h = h * 16777618;"
)

// IncrementalEntry is one benchmark's cold-vs-warm single-edit
// measurement: a fresh whole-program analysis of the edited source
// against an incremental re-analysis warmed by a store primed with the
// pre-edit program. Walls are minimum-of-reps wall-clock nanoseconds;
// the reuse counts are deterministic (a pure function of the edit).
type IncrementalEntry struct {
	Bench string `json:"bench"`

	// The dirty cone of the scripted edit: how much of the RELAY summary
	// walk the warm analysis reused versus recomputed.
	TotalFuncs      int `json:"total_funcs"`
	ReusedFuncs     int `json:"reused_funcs"`
	RecomputedFuncs int `json:"recomputed_funcs"`
	DirtySCCs       int `json:"dirty_sccs"`

	// Full-pipeline walls (parse → … → RELAY) and the RELAY stage's own
	// share, cold (fresh analysis of the edited source) and warm (store
	// primed with the original source).
	ColdWallNS      int64   `json:"cold_wall_ns"`
	WarmWallNS      int64   `json:"warm_wall_ns"`
	Speedup         float64 `json:"speedup"`
	ColdRelayWallNS int64   `json:"cold_relay_wall_ns"`
	WarmRelayWallNS int64   `json:"warm_relay_wall_ns"`
	RelaySpeedup    float64 `json:"relay_speedup"`

	// Identical reports the load-bearing guarantee: the warm run's race
	// report and MHP-refined report rendered byte-identically to cold's.
	Identical bool `json:"identical"`
}

// IncrementalBench is the machine-readable incremental-analysis section
// of the benchmark export: per-benchmark single-edit measurements plus
// the summed summary-store counters of every warm run.
type IncrementalBench struct {
	Edit    string                 `json:"edit"`
	Reps    int                    `json:"reps"`
	Workers int                    `json:"workers"`
	Entries []IncrementalEntry     `json:"entries"`
	Store   *obs.SummaryStoreStats `json:"store"`
}

// MeasureIncremental measures the warm-edit speedup of the incremental
// analysis over the named benchmarks (all nine when names is empty):
// for each, it primes a summary store with the original program, applies
// the scripted libc edit, and times the incremental re-analysis against
// a cold whole-program analysis of the same edited source. Both paths
// run with the given worker count; walls take the minimum of reps runs.
// Byte-identity of the warm report (plain and MHP-refined) against the
// cold one is verified on every rep and recorded per entry.
func MeasureIncremental(names []string, workers, reps int) (*IncrementalBench, error) {
	if reps < 1 {
		reps = 1
	}
	var list []*bench.Benchmark
	if len(names) == 0 {
		list = bench.All()
	} else {
		for _, n := range names {
			b := bench.ByName(n)
			if b == nil {
				return nil, fmt.Errorf("unknown benchmark %q", n)
			}
			list = append(list, b)
		}
	}

	out := &IncrementalBench{
		Edit:    incrementalEditOld + " -> " + incrementalEditNew,
		Reps:    reps,
		Workers: workers,
		Store:   &obs.SummaryStoreStats{},
	}
	for _, b := range list {
		e, st, err := measureIncrementalOne(b, workers, reps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		out.Entries = append(out.Entries, *e)
		out.Store.Hits += st.Hits
		out.Store.Misses += st.Misses
		out.Store.Puts += st.Puts
		out.Store.Evictions += st.Evictions
		out.Store.Entries += st.Entries
		out.Store.MHPHits += st.MHPHits
		out.Store.MHPMisses += st.MHPMisses
	}
	return out, nil
}

func measureIncrementalOne(b *bench.Benchmark, workers, reps int) (*IncrementalEntry, *summary.StoreStats, error) {
	orig := b.FullSource()
	edited := strings.Replace(orig, incrementalEditOld, incrementalEditNew, 1)
	if edited == orig {
		return nil, nil, fmt.Errorf("edit anchor %q not present", incrementalEditOld)
	}

	entry := &IncrementalEntry{Bench: b.Name, Identical: true}
	var stats summary.StoreStats
	for rep := 0; rep < reps; rep++ {
		// Cold: fresh whole-program analysis of the edited source.
		coldTr := obs.NewTracer()
		coldStart := time.Now()
		cold, err := core.LoadParallelTraced(b.Name, edited, workers, coldTr)
		coldWall := time.Since(coldStart).Nanoseconds()
		if err != nil {
			return nil, nil, err
		}

		// Warm: prime a fresh store with the original program (untimed),
		// then time the incremental re-analysis of the edited source.
		store := summary.NewStore()
		if _, err := core.LoadIncremental(b.Name, orig, workers, store); err != nil {
			return nil, nil, err
		}
		warmTr := obs.NewTracer()
		warmStart := time.Now()
		warm, err := core.LoadIncrementalTraced(b.Name, edited, workers, store, warmTr)
		warmWall := time.Since(warmStart).Nanoseconds()
		if err != nil {
			return nil, nil, err
		}

		if warm.Races.Render() != cold.Races.Render() ||
			warm.RefinedRaces().Render() != cold.RefinedRaces().Render() {
			entry.Identical = false
		}
		st := warm.Incremental
		entry.TotalFuncs = st.TotalFuncs
		entry.ReusedFuncs = st.ReusedFuncs
		entry.RecomputedFuncs = st.RecomputedFuncs
		entry.DirtySCCs = st.DirtySCCs
		stats = store.Stats()

		if rep == 0 || coldWall < entry.ColdWallNS {
			entry.ColdWallNS = coldWall
		}
		if rep == 0 || warmWall < entry.WarmWallNS {
			entry.WarmWallNS = warmWall
		}
		if w := stageWall(coldTr, "relay"); rep == 0 || w < entry.ColdRelayWallNS {
			entry.ColdRelayWallNS = w
		}
		if w := stageWall(warmTr, "relay"); rep == 0 || w < entry.WarmRelayWallNS {
			entry.WarmRelayWallNS = w
		}
	}
	if entry.WarmWallNS > 0 {
		entry.Speedup = float64(entry.ColdWallNS) / float64(entry.WarmWallNS)
	}
	if entry.WarmRelayWallNS > 0 {
		entry.RelaySpeedup = float64(entry.ColdRelayWallNS) / float64(entry.WarmRelayWallNS)
	}
	return entry, &stats, nil
}

// stageWall returns the wall time of the first stage with the given
// slash-joined path in the tracer's span forest, 0 when absent.
func stageWall(tr *obs.Tracer, path string) int64 {
	for _, st := range tr.Stages() {
		if st.Path == path {
			return st.WallNS
		}
	}
	return 0
}

// RenderIncremental formats the measurement as the human-readable table
// chimera-bench prints alongside the JSON export.
func RenderIncremental(ib *IncrementalBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental re-analysis after a single libc edit (%s), min of %d rep(s), %d worker(s):\n",
		ib.Edit, ib.Reps, ib.Workers)
	fmt.Fprintf(&sb, "%-8s %9s %9s %9s %11s %11s %8s %8s %s\n",
		"bench", "funcs", "reused", "dirty", "cold-relay", "warm-relay", "speedup", "full", "identical")
	for _, e := range ib.Entries {
		fmt.Fprintf(&sb, "%-8s %9d %9d %9d %10.2fms %10.2fms %7.2fx %7.2fx %v\n",
			e.Bench, e.TotalFuncs, e.ReusedFuncs, e.RecomputedFuncs,
			float64(e.ColdRelayWallNS)/1e6, float64(e.WarmRelayWallNS)/1e6,
			e.RelaySpeedup, e.Speedup, e.Identical)
	}
	return sb.String()
}
