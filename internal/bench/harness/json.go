package harness

import (
	"encoding/json"
	"sort"

	"repro/internal/obs"
)

// JSONEntry is one benchmark/configuration data point in the
// machine-readable benchmark export (BENCH_PR*.json): the static analysis
// volume (race pairs surviving refinement, weak locks emitted) alongside
// the measured record/replay overheads and the wall-clock cost of the
// shared analysis artifact.
type JSONEntry struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`

	// StaticPairs is the unrefined RELAY pair count; InstrumentedPairs is
	// what survived every refinement this row's config ran (MHP and/or the
	// precision layer) and actually received weak locks; PrunedPairs is
	// their difference, broken down by prune reason in PrunedBy.
	StaticPairs       int            `json:"static_pairs"`
	InstrumentedPairs int            `json:"instrumented_pairs"`
	PrunedPairs       int            `json:"pruned_pairs"`
	PrunedBy          map[string]int `json:"pruned_by,omitempty"`
	WeakLocks         int            `json:"weak_locks"`

	// AnalysisWallNS is the wall-clock time spent computing this
	// benchmark's shared analysis artifact (parse → points-to → callgraph
	// → RELAY). With the analysis cache it is identical across every
	// config row of one benchmark: the artifact was computed once and
	// shared, not recomputed per config.
	AnalysisWallNS int64 `json:"analysis_wall_ns"`

	RecordOverhead float64 `json:"record_overhead"`
	ReplayOverhead float64 `json:"replay_overhead"`
	ReplayMatches  bool    `json:"replay_matches"`

	// Streamed chunked-log sizes in compressed bytes: the whole recording
	// stream and the order-stream share of its chunks.
	RecordLogBytes int64 `json:"record_log_bytes"`
	OrderLogBytes  int64 `json:"order_log_bytes"`

	// Real wall-clock nanoseconds of the dynamic phases: the recording run
	// (with the log streaming to a writer), the gated replay run, and the
	// epoch race checker's share of a separate checked run. Unlike every
	// simulated metric these vary run to run; see EXPERIMENTS.md.
	RecordWallNS  int64 `json:"record_wall_ns"`
	ReplayWallNS  int64 `json:"replay_wall_ns"`
	CheckerWallNS int64 `json:"checker_wall_ns"`

	// CheckerRaces is the epoch checker's verdict count on the checked
	// run (0 for a correctly instrumented program); CheckersAgree reports
	// whether the full-vector oracle on the same event stream reached the
	// identical verdict set. The scenario soundness gate in CI asserts
	// both.
	CheckerRaces  int  `json:"checker_races"`
	CheckersAgree bool `json:"checkers_agree"`

	// Certified reports whether the static DRF/deadlock-freedom certifier
	// (internal/certify) validated this row's instrumented output against
	// its race report; CertifyWallNS is the certifier's wall-clock cost
	// (one-time per benchmark × config, memoized alongside the
	// instrumentation).
	Certified     bool  `json:"certified"`
	CertifyWallNS int64 `json:"certify_wall_ns"`

	// Metrics is the observability block: per-stage makespans,
	// per-weak-lock-site counters, event-stream stats and the log-stream
	// breakdown. Every field in it is simulated and deterministic.
	Metrics *obs.RowMetrics `json:"metrics,omitempty"`

	// QueueWaitNS and ServerRunNS appear only on server-mode rows
	// (chimera-bench -server): the chimerad queue wait and execution wall
	// the job view reported for this row's gen-pipeline job.
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	ServerRunNS int64 `json:"server_run_ns,omitempty"`
}

// JSONReport is the machine-readable export document. Entries are sorted
// by (bench, config) so the file diffs cleanly across PRs regardless of
// measurement scheduling.
type JSONReport struct {
	// Parallel is the harness worker-pool bound the run used.
	Parallel int `json:"parallel"`
	// Workers is the evaluation (simulated) worker count of each cell.
	Workers int `json:"workers"`

	// HarnessWallNS is the wall-clock time of the full harness workload
	// in this configuration. BaselineWallNS, when present, is the same
	// workload re-run sequentially with all caches disabled (the pre-cache
	// harness cost model); Speedup is their ratio.
	HarnessWallNS  int64   `json:"harness_wall_ns"`
	BaselineWallNS int64   `json:"baseline_wall_ns,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`

	// Incremental, when present, is the warm-edit measurement of the
	// summary-store-backed incremental analysis (see MeasureIncremental).
	Incremental *IncrementalBench `json:"incremental,omitempty"`

	Entries []JSONEntry `json:"entries"`
}

// MeasureJSON measures every prepared benchmark under the given
// configurations (cells fan out over Cfg.Parallel workers) and returns
// machine-readable entries sorted by (bench, config).
func (s *Suite) MeasureJSON(configNames []string) ([]JSONEntry, error) {
	var cells []Cell
	for _, p := range s.Items {
		for _, cn := range configNames {
			cells = append(cells, Cell{P: p, Config: cn, Workers: s.Cfg.Workers})
		}
	}
	ms, err := s.MeasureCells(cells)
	if err != nil {
		return nil, err
	}
	out := make([]JSONEntry, len(cells))
	for i, c := range cells {
		m := ms[i]
		ip, err := c.P.Instrumented(c.Config)
		if err != nil {
			return nil, err
		}
		rep := c.P.ReportFor(c.Config)
		cert, certWall, err := ip.Certify(c.Config)
		if err != nil {
			return nil, err
		}
		var prunedBy map[string]int
		if len(rep.Pruned) > 0 {
			prunedBy = make(map[string]int, 4)
			for _, pp := range rep.Pruned {
				prunedBy[pp.Reason]++
			}
		}
		out[i] = JSONEntry{
			Bench:             m.Bench,
			Config:            m.Config,
			StaticPairs:       len(c.P.Prog.Races.Pairs),
			InstrumentedPairs: len(rep.Pairs),
			PrunedPairs:       len(rep.Pruned),
			PrunedBy:          prunedBy,
			WeakLocks:         ip.Table.Len(),
			AnalysisWallNS:    c.P.Prog.AnalysisWallNS,
			RecordOverhead:    m.RecordOverhead,
			ReplayOverhead:    m.ReplayOverhead,
			ReplayMatches:     m.ReplayMatches,
			RecordLogBytes:    m.RecordLogBytes,
			OrderLogBytes:     m.OrderLogBytes,
			RecordWallNS:      m.RecordWallNS,
			ReplayWallNS:      m.ReplayWallNS,
			CheckerWallNS:     m.CheckerWallNS,
			CheckerRaces:      m.CheckerRaces,
			CheckersAgree:     m.CheckersAgree,
			Certified:         cert.OK,
			CertifyWallNS:     certWall,
			Metrics:           m.Metrics,
		}
	}
	SortEntries(out)
	return out, nil
}

// SortEntries orders entries canonically by (bench, config).
func SortEntries(entries []JSONEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Bench != entries[j].Bench {
			return entries[i].Bench < entries[j].Bench
		}
		return entries[i].Config < entries[j].Config
	})
}

// RenderJSON serializes a report with stable formatting for checking into
// the repository; entries are (re)sorted canonically first.
func RenderJSON(rep *JSONReport) ([]byte, error) {
	SortEntries(rep.Entries)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
