package harness

import (
	"encoding/json"
)

// JSONEntry is one benchmark/configuration data point in the
// machine-readable benchmark export (BENCH_PR1.json and successors): the
// static analysis volume (race pairs surviving refinement, weak locks
// emitted) alongside the measured record/replay overheads.
type JSONEntry struct {
	Bench          string  `json:"bench"`
	Config         string  `json:"config"`
	StaticPairs    int     `json:"static_pairs"`
	PrunedPairs    int     `json:"pruned_pairs"`
	WeakLocks      int     `json:"weak_locks"`
	RecordOverhead float64 `json:"record_overhead"`
	ReplayOverhead float64 `json:"replay_overhead"`
	ReplayMatches  bool    `json:"replay_matches"`
}

// MeasureJSON measures every prepared benchmark under the given
// configurations and returns machine-readable entries.
func (s *Suite) MeasureJSON(configNames []string) ([]JSONEntry, error) {
	var out []JSONEntry
	for _, p := range s.Items {
		for _, cn := range configNames {
			m, err := s.Measure(p, cn, s.Cfg.Workers)
			if err != nil {
				return nil, err
			}
			ip, err := p.Instrumented(cn)
			if err != nil {
				return nil, err
			}
			rep := p.ReportFor(cn)
			out = append(out, JSONEntry{
				Bench:          m.Bench,
				Config:         m.Config,
				StaticPairs:    len(rep.Pairs),
				PrunedPairs:    len(rep.Pruned),
				WeakLocks:      ip.Table.Len(),
				RecordOverhead: m.RecordOverhead,
				ReplayOverhead: m.ReplayOverhead,
				ReplayMatches:  m.ReplayMatches,
			})
		}
	}
	return out, nil
}

// RenderJSON serializes entries with stable formatting for checking into
// the repository.
func RenderJSON(entries []JSONEntry) ([]byte, error) {
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
