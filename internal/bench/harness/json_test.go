package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/bench"
)

// update regenerates the golden files:
// go test ./internal/bench/harness -run TestJSONSchemaGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// The machine-readable export schema — field names, nesting, and row
// order — is pinned by a golden file so accidental schema drift shows up
// as a test diff, not as a surprise to downstream consumers of
// BENCH_PR*.json. Values here are synthetic; only the shape matters.
func TestJSONSchemaGolden(t *testing.T) {
	rep := &JSONReport{
		Parallel:       4,
		Workers:        4,
		HarnessWallNS:  2_000_000,
		BaselineWallNS: 5_000_000,
		Speedup:        2.5,
		Entries: []JSONEntry{
			// Deliberately out of canonical order: RenderJSON must sort.
			{
				Bench: "radix", Config: "instr",
				StaticPairs: 3, PrunedPairs: 0, WeakLocks: 2,
				AnalysisWallNS: 1_000_000,
				RecordOverhead: 1.25, ReplayOverhead: 1.10, ReplayMatches: true,
				RecordLogBytes: 2_048, OrderLogBytes: 512,
				RecordWallNS: 900_000, ReplayWallNS: 700_000, CheckerWallNS: 300_000,
				Certified: true, CertifyWallNS: 400_000,
			},
			{
				Bench: "aget", Config: "instr+mhp",
				StaticPairs: 5, PrunedPairs: 2, WeakLocks: 4,
				AnalysisWallNS: 1_500_000,
				RecordOverhead: 1.50, ReplayOverhead: 1.20, ReplayMatches: true,
				RecordLogBytes: 4_096, OrderLogBytes: 1_024,
				RecordWallNS: 1_100_000, ReplayWallNS: 800_000, CheckerWallNS: 350_000,
				Certified: true, CertifyWallNS: 500_000,
			},
			{
				Bench: "aget", Config: "all",
				StaticPairs: 7, PrunedPairs: 0, WeakLocks: 6,
				AnalysisWallNS: 1_500_000,
				RecordOverhead: 1.75, ReplayOverhead: 1.30, ReplayMatches: true,
				RecordLogBytes: 8_192, OrderLogBytes: 2_048,
				RecordWallNS: 1_300_000, ReplayWallNS: 900_000, CheckerWallNS: 400_000,
				Certified: true, CertifyWallNS: 600_000,
			},
		},
	}
	got, err := RenderJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "json_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON schema drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// MeasureJSON rows must come out sorted by (bench, config) with one row
// per benchmark × config cell, and the analysis cache must make
// analysis_wall_ns identical across every config row of one benchmark.
func TestMeasureJSONRowOrder(t *testing.T) {
	name := bench.All()[0].Name
	s, err := NewSuite(Default(), name)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.MeasureJSON(MHPConfigNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(MHPConfigNames) {
		t.Fatalf("got %d rows, want %d", len(entries), len(MHPConfigNames))
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool {
		if entries[i].Bench != entries[j].Bench {
			return entries[i].Bench < entries[j].Bench
		}
		return entries[i].Config < entries[j].Config
	}) {
		t.Errorf("rows not in canonical (bench, config) order: %+v", entries)
	}
	for _, e := range entries {
		if e.Bench != name {
			t.Errorf("unexpected bench %q", e.Bench)
		}
		if e.AnalysisWallNS != entries[0].AnalysisWallNS {
			t.Errorf("analysis_wall_ns differs across configs of one benchmark: %d vs %d (cache not shared?)",
				e.AnalysisWallNS, entries[0].AnalysisWallNS)
		}
		if !e.ReplayMatches {
			t.Errorf("%s/%s: replay did not match recording", e.Bench, e.Config)
		}
		if !e.Certified {
			t.Errorf("%s/%s: instrumented output failed certification", e.Bench, e.Config)
		}
		if e.CertifyWallNS <= 0 {
			t.Errorf("%s/%s: certify_wall_ns = %d, want > 0", e.Bench, e.Config, e.CertifyWallNS)
		}
		if e.RecordLogBytes <= 0 || e.OrderLogBytes <= 0 {
			t.Errorf("%s/%s: streamed log sizes not populated: record=%d order=%d",
				e.Bench, e.Config, e.RecordLogBytes, e.OrderLogBytes)
		}
		if e.RecordLogBytes <= e.OrderLogBytes {
			t.Errorf("%s/%s: whole stream (%d bytes) must exceed its order share (%d bytes)",
				e.Bench, e.Config, e.RecordLogBytes, e.OrderLogBytes)
		}
		if e.RecordWallNS <= 0 || e.ReplayWallNS <= 0 || e.CheckerWallNS <= 0 {
			t.Errorf("%s/%s: wall-clock fields not populated: rec=%d rep=%d chk=%d",
				e.Bench, e.Config, e.RecordWallNS, e.ReplayWallNS, e.CheckerWallNS)
		}
	}
}
