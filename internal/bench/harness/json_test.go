package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// update regenerates the golden files:
// go test ./internal/bench/harness -run TestJSONSchemaGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// The machine-readable export schema — field names, nesting, and row
// order — is pinned by a golden file so accidental schema drift shows up
// as a test diff, not as a surprise to downstream consumers of
// BENCH_PR*.json. Values here are synthetic; only the shape matters.
func TestJSONSchemaGolden(t *testing.T) {
	rep := &JSONReport{
		Parallel:       4,
		Workers:        4,
		HarnessWallNS:  2_000_000,
		BaselineWallNS: 5_000_000,
		Speedup:        2.5,
		Entries: []JSONEntry{
			// Deliberately out of canonical order: RenderJSON must sort.
			{
				Bench: "radix", Config: "instr",
				StaticPairs: 3, InstrumentedPairs: 3, PrunedPairs: 0, WeakLocks: 2,
				AnalysisWallNS: 1_000_000,
				RecordOverhead: 1.25, ReplayOverhead: 1.10, ReplayMatches: true,
				RecordLogBytes: 2_048, OrderLogBytes: 512,
				RecordWallNS: 900_000, ReplayWallNS: 700_000, CheckerWallNS: 300_000,
				CheckerRaces: 0, CheckersAgree: true,
				Certified: true, CertifyWallNS: 400_000,
			},
			{
				Bench: "aget", Config: "instr+mhp",
				StaticPairs: 5, InstrumentedPairs: 3, PrunedPairs: 2,
				PrunedBy:       map[string]int{"pre-fork": 1, "read-only": 1},
				WeakLocks:      4,
				AnalysisWallNS: 1_500_000,
				RecordOverhead: 1.50, ReplayOverhead: 1.20, ReplayMatches: true,
				RecordLogBytes: 4_096, OrderLogBytes: 1_024,
				RecordWallNS: 1_100_000, ReplayWallNS: 800_000, CheckerWallNS: 350_000,
				CheckerRaces: 0, CheckersAgree: true,
				Certified: true, CertifyWallNS: 500_000,
			},
			{
				Bench: "aget", Config: "all",
				StaticPairs: 7, InstrumentedPairs: 7, PrunedPairs: 0, WeakLocks: 6,
				AnalysisWallNS: 1_500_000,
				RecordOverhead: 1.75, ReplayOverhead: 1.30, ReplayMatches: true,
				RecordLogBytes: 8_192, OrderLogBytes: 2_048,
				RecordWallNS: 1_300_000, ReplayWallNS: 900_000, CheckerWallNS: 400_000,
				CheckerRaces: 0, CheckersAgree: true,
				Certified: true, CertifyWallNS: 600_000,
				Metrics: &obs.RowMetrics{
					Schema:    obs.Schema,
					Makespans: obs.Makespans{Native: 10_000, Record: 17_500, Replay: 13_000},
					WeakLocks: &obs.WeakLocks{
						Sites: []obs.Site{
							{ID: 0, Kind: "func", Name: "clique0", Acquires: 40, Releases: 40, Contended: 3, StallCycles: 900},
							{ID: 1, Kind: "instr", Name: "site1", Acquires: 10, Releases: 10, Forced: 1},
						},
						Acquires: 50, Releases: 50, Forced: 1, Timeouts: 1,
						OrderLogEntries: 101, AcquireOrderEntries: 50,
					},
					Events: &obs.Events{Emitted: 5_000, Batches: 2, Reads: 3_000, Writes: 1_500, Syncs: 500},
					Log: obs.LogStreams{
						TotalBytes: 8_192, InputChunks: 1, OrderChunks: 2,
						InputRecords: 12, OrderRecords: 101,
						InputRawBytes: 384, OrderRawBytes: 3_232,
						InputBytes: 96, OrderBytes: 2_048,
					},
				},
			},
		},
	}
	got, err := RenderJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "json_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON schema drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// MeasureJSON rows must come out sorted by (bench, config) with one row
// per benchmark × config cell, and the analysis cache must make
// analysis_wall_ns identical across every config row of one benchmark.
func TestMeasureJSONRowOrder(t *testing.T) {
	name := bench.All()[0].Name
	s, err := NewSuite(Default(), name)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s.MeasureJSON(MHPConfigNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(MHPConfigNames) {
		t.Fatalf("got %d rows, want %d", len(entries), len(MHPConfigNames))
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool {
		if entries[i].Bench != entries[j].Bench {
			return entries[i].Bench < entries[j].Bench
		}
		return entries[i].Config < entries[j].Config
	}) {
		t.Errorf("rows not in canonical (bench, config) order: %+v", entries)
	}
	for _, e := range entries {
		if e.Bench != name {
			t.Errorf("unexpected bench %q", e.Bench)
		}
		if e.InstrumentedPairs+e.PrunedPairs != e.StaticPairs {
			t.Errorf("%s/%s: instrumented %d + pruned %d != static %d",
				e.Bench, e.Config, e.InstrumentedPairs, e.PrunedPairs, e.StaticPairs)
		}
		var byReason int
		for _, n := range e.PrunedBy {
			byReason += n
		}
		if byReason != e.PrunedPairs {
			t.Errorf("%s/%s: pruned_by sums to %d, want pruned_pairs %d",
				e.Bench, e.Config, byReason, e.PrunedPairs)
		}
		if e.AnalysisWallNS != entries[0].AnalysisWallNS {
			t.Errorf("analysis_wall_ns differs across configs of one benchmark: %d vs %d (cache not shared?)",
				e.AnalysisWallNS, entries[0].AnalysisWallNS)
		}
		if !e.ReplayMatches {
			t.Errorf("%s/%s: replay did not match recording", e.Bench, e.Config)
		}
		if !e.Certified {
			t.Errorf("%s/%s: instrumented output failed certification", e.Bench, e.Config)
		}
		if e.CertifyWallNS <= 0 {
			t.Errorf("%s/%s: certify_wall_ns = %d, want > 0", e.Bench, e.Config, e.CertifyWallNS)
		}
		if e.RecordLogBytes <= 0 || e.OrderLogBytes <= 0 {
			t.Errorf("%s/%s: streamed log sizes not populated: record=%d order=%d",
				e.Bench, e.Config, e.RecordLogBytes, e.OrderLogBytes)
		}
		if e.RecordLogBytes <= e.OrderLogBytes {
			t.Errorf("%s/%s: whole stream (%d bytes) must exceed its order share (%d bytes)",
				e.Bench, e.Config, e.RecordLogBytes, e.OrderLogBytes)
		}
		if e.RecordWallNS <= 0 || e.ReplayWallNS <= 0 || e.CheckerWallNS <= 0 {
			t.Errorf("%s/%s: wall-clock fields not populated: rec=%d rep=%d chk=%d",
				e.Bench, e.Config, e.RecordWallNS, e.ReplayWallNS, e.CheckerWallNS)
		}
		mtr := e.Metrics
		if mtr == nil {
			t.Fatalf("%s/%s: metrics block missing", e.Bench, e.Config)
		}
		if mtr.Schema != obs.Schema {
			t.Errorf("%s/%s: metrics schema = %d, want %d", e.Bench, e.Config, mtr.Schema, obs.Schema)
		}
		wl := mtr.WeakLocks
		if len(wl.Sites) != e.WeakLocks {
			t.Errorf("%s/%s: %d site rows, want %d (one per weak lock)",
				e.Bench, e.Config, len(wl.Sites), e.WeakLocks)
		}
		// The runtime accounting invariant: per-site committed operations
		// are exactly the lock's order-log records.
		if wl.Acquires+wl.Releases+wl.Forced != wl.OrderLogEntries {
			t.Errorf("%s/%s: acquires %d + releases %d + forced %d != order-log entries %d",
				e.Bench, e.Config, wl.Acquires, wl.Releases, wl.Forced, wl.OrderLogEntries)
		}
		if wl.Acquires != wl.AcquireOrderEntries {
			t.Errorf("%s/%s: per-site acquire total %d != EvWLAcquire order entries %d",
				e.Bench, e.Config, wl.Acquires, wl.AcquireOrderEntries)
		}
		var siteAcq int64
		for _, st := range wl.Sites {
			siteAcq += st.Acquires
		}
		if siteAcq != wl.Acquires {
			t.Errorf("%s/%s: site acquire sum %d != total %d", e.Bench, e.Config, siteAcq, wl.Acquires)
		}
		// Log-stream consistency with the row's own byte counters.
		if mtr.Log.TotalBytes != e.RecordLogBytes {
			t.Errorf("%s/%s: metrics log total %d != record_log_bytes %d",
				e.Bench, e.Config, mtr.Log.TotalBytes, e.RecordLogBytes)
		}
		if mtr.Log.OrderBytes != e.OrderLogBytes {
			t.Errorf("%s/%s: metrics order bytes %d != order_log_bytes %d",
				e.Bench, e.Config, mtr.Log.OrderBytes, e.OrderLogBytes)
		}
		if mtr.Events.Emitted <= 0 || mtr.Events.Reads+mtr.Events.Writes+mtr.Events.Syncs != mtr.Events.Emitted {
			t.Errorf("%s/%s: event stream accounting off: emitted=%d reads=%d writes=%d syncs=%d",
				e.Bench, e.Config, mtr.Events.Emitted, mtr.Events.Reads, mtr.Events.Writes, mtr.Events.Syncs)
		}
	}
}
