package harness

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/oskit"
)

// The PR's acceptance criterion on the barrier-heavy benchmarks: the MHP
// refinement strictly shrinks both the static race-pair set and the
// emitted weak-lock table, record→replay still bit-matches, and the
// dynamic vector-clock checker observes no race in the refined
// instrumentation — i.e. every pruned pair really was non-concurrent.
func TestMHPRefinementOnBarrierBenches(t *testing.T) {
	for _, name := range []string{"water", "ocean", "fft"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b := bench.ByName(name)
			if b == nil {
				t.Fatalf("unknown benchmark %q", name)
			}
			prog, err := core.Load(b.Name, b.FullSource())
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			ref := prog.RefineMHP()
			if len(ref.Pairs) >= len(prog.Races.Pairs) {
				t.Fatalf("static pairs did not decrease: %d -> %d",
					len(prog.Races.Pairs), len(ref.Pairs))
			}
			if len(ref.Pairs)+len(ref.Pruned) != len(prog.Races.Pairs) {
				t.Fatalf("kept %d + pruned %d != total %d",
					len(ref.Pairs), len(ref.Pruned), len(prog.Races.Pairs))
			}
			t.Logf("%s: %d pairs, MHP kept %d, pruned %d",
				name, len(prog.Races.Pairs), len(ref.Pairs), len(ref.Pruned))

			base, err := prog.Instrument(nil, instrument.NaiveOptions())
			if err != nil {
				t.Fatalf("instrument base: %v", err)
			}
			mhpIP, err := prog.InstrumentWith(ref, nil, instrument.NaiveOptions())
			if err != nil {
				t.Fatalf("instrument mhp: %v", err)
			}
			if mhpIP.Table.Len() >= base.Table.Len() {
				t.Fatalf("weak locks did not decrease: %d -> %d",
					base.Table.Len(), mhpIP.Table.Len())
			}
			t.Logf("%s: weak locks %d -> %d", name, base.Table.Len(), mhpIP.Table.Len())

			// Record under one seed, replay under another: still bit-exact.
			world := func() *oskit.World { return b.ProfileWorld(0) }
			if err := mhpIP.VerifyDeterministicReplay(world, 1234, 987654); err != nil {
				t.Errorf("replay with MHP pruning diverged: %v", err)
			}

			// The pruning must be sound, not just aggressive: with the
			// pruned pairs uninstrumented, the vector-clock checker must
			// still see no unordered racy pair.
			for seed := uint64(0); seed < 3; seed++ {
				races, r := core.CheckDynamicRaces(mhpIP.Prog, mhpIP.Table, core.RunConfig{
					World: b.ProfileWorld(0), Seed: seed, Table: mhpIP.Table,
				})
				if r.Err != nil {
					t.Fatalf("seed %d: dynamic check run failed: %v", seed, r.Err)
				}
				if len(races) != 0 {
					t.Fatalf("seed %d: MHP-refined instrumentation left a dynamic race: %v",
						seed, races[0])
				}
			}
		})
	}
}

// The harness builds "+mhp" configurations lazily and they measure end to
// end, replay matching included.
func TestHarnessMHPConfigs(t *testing.T) {
	s, err := NewSuite(Default(), "water")
	if err != nil {
		t.Fatal(err)
	}
	p := s.Items[0]
	for _, cn := range []string{"instr+mhp", "all+mhp"} {
		m, err := s.Measure(p, cn, 2)
		if err != nil {
			t.Fatalf("%s: %v", cn, err)
		}
		if !m.ReplayMatches {
			t.Errorf("%s: replay did not match: %s", cn, m.ReplayErr)
		}
	}
	// The refined instrumentation must be strictly smaller at both levels.
	for _, pair := range [][2]string{{"instr", "instr+mhp"}, {"all", "all+mhp"}} {
		baseIP, err := p.Instrumented(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		mhpIP, err := p.Instrumented(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if mhpIP.Table.Len() >= baseIP.Table.Len() {
			t.Errorf("%s: weak locks %d, want fewer than %s's %d",
				pair[1], mhpIP.Table.Len(), pair[0], baseIP.Table.Len())
		}
	}
}
