package harness

// The observed pipeline: Observe runs the full Chimera flow for one
// program under one configuration with every stage wrapped in a tracer
// span, and aggregates the runtime counters (weak-lock sites, event
// batches, log streams, analysis cache, dynamic checker) into an
// obs.Report. It backs racecheck's -trace/-metrics flags and the
// observability determinism tests.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oskit"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/vm"
)

// ObserveOptions parameterizes one observed pipeline run. The zero value
// selects the harness defaults (config "all", epoch checker, Default()
// seeds and heap).
type ObserveOptions struct {
	// Config is the instrumentation configuration name (OptionsFor
	// vocabulary, "+mhp" suffix honored). Default "all".
	Config string

	// Workers is the evaluation-world worker count. Default Default().Workers.
	Workers int

	// Parallel is the analysis worker count (relay wave scheduling).
	// Default 1.
	Parallel int

	Seed       uint64 // record/check schedule seed (default Default().Seed)
	ReplaySeed uint64 // replay schedule seed (default Default().ReplaySeed)
	HeapWords  int64  // VM heap (default Default().HeapWords)

	// Checker selects the dynamic race checker: "epoch" (default) or
	// "vector".
	Checker string

	// Cache, when non-nil, is the shared analysis cache to load through;
	// a fresh cache is used otherwise (so the report's cache section
	// reflects exactly this run).
	Cache *core.Cache

	// Clock, when non-nil, drives the tracer instead of the wall clock —
	// the determinism tests inject a virtual clock so even span
	// durations are reproducible.
	Clock func() int64
}

// ObserveTarget is the program under observation: its source plus the
// worlds to profile and evaluate it in.
type ObserveTarget struct {
	Name         string
	Source       string
	ProfileWorld func(run int) *oskit.World
	ProfileRuns  int
	EvalWorld    func(workers int) *oskit.World
}

// TargetFor wraps an embedded benchmark as an observation target.
func TargetFor(b *bench.Benchmark) ObserveTarget {
	return ObserveTarget{
		Name:         b.Name,
		Source:       b.FullSource(),
		ProfileWorld: b.ProfileWorld,
		ProfileRuns:  b.ProfileRuns,
		EvalWorld:    b.EvalWorld,
	}
}

// Observation is the result of one observed pipeline run.
type Observation struct {
	Tracer *obs.Tracer
	Report *obs.Report

	Cert          *certify.Certificate
	Races         []trace.Race
	ReplayMatches bool
}

// ObserveBench observes an embedded benchmark by name.
func ObserveBench(benchName string, o ObserveOptions) (*Observation, error) {
	b := bench.ByName(benchName)
	if b == nil {
		return nil, fmt.Errorf("unknown benchmark %q", benchName)
	}
	return Observe(TargetFor(b), o)
}

func (o *ObserveOptions) fill() {
	def := Default()
	if o.Config == "" {
		o.Config = "all"
	}
	if o.Workers == 0 {
		o.Workers = def.Workers
	}
	if o.Parallel == 0 {
		o.Parallel = 1
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.ReplaySeed == 0 {
		o.ReplaySeed = def.ReplaySeed
	}
	if o.HeapWords == 0 {
		o.HeapWords = def.HeapWords
	}
	if o.Checker == "" {
		o.Checker = "epoch"
	}
	if o.Cache == nil {
		o.Cache = core.NewCache()
	}
}

// Observe runs the traced pipeline end to end: analyze → MHP refinement
// → profile → instrument → certify → record → replay → dynamic check.
// The MHP refinement stage always runs (and appears in the trace) even
// for configurations that instrument the unrefined report, so every
// trace covers every pipeline stage.
func Observe(t ObserveTarget, o ObserveOptions) (*Observation, error) {
	o.fill()
	var tr *obs.Tracer
	if o.Clock != nil {
		tr = obs.NewTracerWithClock(o.Clock)
	} else {
		tr = obs.NewTracer()
	}

	root := tr.Start("pipeline")
	root.SetStr("program", t.Name).SetStr("config", o.Config)

	sp := tr.Start("analyze")
	prog, err := o.Cache.LoadTraced(t.Name, t.Source, o.Parallel, tr)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("pairs", int64(len(prog.Races.Pairs))).End()

	sp = tr.Start("mhp-refine")
	refined := prog.RefinedRaces()
	sp.SetAttr("kept", int64(len(refined.Pairs))).
		SetAttr("pruned", int64(len(refined.Pruned))).End()
	rep := prog.Races
	if strings.HasSuffix(o.Config, "+mhp") {
		rep = refined
	}

	sp = tr.Start("profile")
	conc := prog.ProfileNonConcurrency(t.ProfileWorld, t.ProfileRuns, 10_000)
	sp.SetAttr("runs", int64(t.ProfileRuns)).
		SetAttr("concurrent_pairs", int64(conc.PairCount())).End()

	sp = tr.Start("instrument")
	iopts := OptionsFor(o.Config)
	iopts.Tracer = tr
	ip, err := prog.InstrumentWith(rep, conc, iopts)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("weak_locks", int64(ip.Table.Len())).
		SetAttr("sites", int64(len(ip.Report.Sites))).End()

	sp = tr.Start("certify")
	cert, _, err := ip.Certify(o.Config)
	if err != nil {
		return nil, fmt.Errorf("%s certify: %w", t.Name, err)
	}
	ok := int64(0)
	if cert.OK {
		ok = 1
	}
	sp.SetAttr("ok", ok).End()

	sp = tr.Start("record")
	var cw countWriter
	rcRec := core.RunConfig{World: t.EvalWorld(o.Workers), Seed: o.Seed, Table: ip.Table, HeapWords: o.HeapWords}
	recRes, log, lw := ip.RecordTo(rcRec, &cw)
	if recRes.Err != nil {
		return nil, fmt.Errorf("%s record: %w", t.Name, recRes.Err)
	}
	sp.SetAttr("makespan", recRes.Makespan).
		SetAttr("input_records", int64(log.InputCount())).
		SetAttr("order_records", int64(log.OrderCount())).
		SetAttr("log_bytes", cw.n).End()

	sp = tr.Start("replay")
	repRes, repErr := ip.Replay(log, core.RunConfig{
		World: t.EvalWorld(o.Workers), Seed: o.ReplaySeed, Table: ip.Table, HeapWords: o.HeapWords,
	})
	matches := repErr == nil && repRes.Hash64() == recRes.Hash64()
	match := int64(0)
	if matches {
		match = 1
	}
	if repErr == nil {
		sp.SetAttr("makespan", repRes.Makespan)
	}
	sp.SetAttr("match", match).End()
	if repErr != nil {
		return nil, fmt.Errorf("%s replay: %w", t.Name, repErr)
	}

	// The dynamic check is a separate run: the record run carries no
	// sinks (observation stays off there, as in the measured harness), so
	// the event-stream metrics describe the checked execution.
	sp = tr.Start("dynamic-check")
	var chk trace.RaceChecker
	switch o.Checker {
	case "epoch":
		chk = trace.NewChecker(0)
	case "vector":
		chk = trace.NewVectorChecker(0)
	default:
		return nil, fmt.Errorf("unknown checker %q (want epoch or vector)", o.Checker)
	}
	counter := &obs.EventCounter{}
	chkStart := time.Now()
	chkRes := core.CheckDynamicRacesWith(ip.Prog, ip.Table, core.RunConfig{
		World: t.EvalWorld(o.Workers), Seed: o.Seed, HeapWords: o.HeapWords,
		Sinks: []vm.EventSink{counter},
	}, chk)
	chkWall := time.Since(chkStart).Nanoseconds()
	if chkRes.Err != nil {
		return nil, fmt.Errorf("%s checker run: %w", t.Name, chkRes.Err)
	}
	races := chk.Races()
	sp.SetAttr("races", int64(len(races))).
		SetAttr("events", chkRes.Counters.EventsEmitted).End()
	root.End()

	wl := obs.WeakLocksFrom(ip.Table, recRes.WLSites)
	wl.Timeouts = recRes.WLStats.Timeouts
	wl.OrderLogEntries = int64(log.OrderCount(vm.SyncWeakLock))
	wl.AcquireOrderEntries = countAcquireEntries(log)

	ws := lw.Stats()
	rpt := &obs.Report{
		Schema:    obs.Schema,
		Program:   t.Name,
		Config:    o.Config,
		Stages:    tr.Stages(),
		WeakLocks: wl,
		Events:    counter.Events(chkRes.Counters.EventsEmitted, chkRes.Counters.EventBatches),
		Log: &obs.LogStreams{
			TotalBytes:    cw.n,
			InputChunks:   ws.InputChunks,
			OrderChunks:   ws.OrderChunks,
			InputRecords:  ws.InputRecords,
			OrderRecords:  ws.OrderRecords,
			InputRawBytes: ws.InputRawBytes,
			OrderRawBytes: ws.OrderRawBytes,
			InputBytes:    ws.InputBytes,
			OrderBytes:    ws.OrderBytes,
		},
		Checker: &obs.Checker{Name: o.Checker, Races: len(races), WallNS: chkWall},
	}
	hits, partial, misses := o.Cache.Stats()
	rpt.Cache = &obs.CacheStats{Hits: hits, PartialHits: partial, Misses: misses}
	rpt.SummaryStore = o.Cache.SummaryStats()

	return &Observation{
		Tracer: tr, Report: rpt,
		Cert: cert, Races: races, ReplayMatches: matches,
	}, nil
}

// countAcquireEntries counts the order log's weak-lock EvWLAcquire
// records — the figure the report's AcquireOrderEntries invariant checks
// against the per-site acquire totals.
func countAcquireEntries(log *replay.Log) int64 {
	var n int64
	for key, recs := range log.Orders {
		if key.Class != vm.SyncWeakLock {
			continue
		}
		for _, r := range recs {
			if r.Kind == vm.EvWLAcquire {
				n++
			}
		}
	}
	return n
}
