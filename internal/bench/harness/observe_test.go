package harness

import (
	"testing"

	"repro/internal/bench"
)

// maskedReport runs one observed pipeline and returns its metrics report
// with every wall-clock field zeroed, rendered canonically. Each run gets
// a fresh cache (ObserveOptions.fill default), so the cache section is
// pinned at {0 hits, 1 miss} and the whole document is deterministic.
func maskedReport(t *testing.T, name string, parallel int) string {
	t.Helper()
	o, err := ObserveBench(name, ObserveOptions{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	if !o.ReplayMatches {
		t.Fatalf("%s: replay diverged from recording", name)
	}
	if o.Cert == nil || !o.Cert.OK {
		t.Fatalf("%s: instrumented output failed certification", name)
	}
	o.Report.MaskWall()
	b, err := o.Report.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The metrics report — stages, per-site weak-lock counters, event stream,
// log streams, cache, checker — must be a pure function of (program,
// config, seeds) once wall time is masked: byte-identical between a
// sequential and a parallel analysis, and across repeated runs. This is
// the observability layer's version of the analysis determinism guard.
func TestObservedReportDeterministic(t *testing.T) {
	benches := bench.All()
	if testing.Short() {
		benches = benches[:2]
	}
	for _, b := range benches {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			seq := maskedReport(t, b.Name, 1)
			par := maskedReport(t, b.Name, 8)
			if seq != par {
				t.Errorf("masked report differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
			again := maskedReport(t, b.Name, 1)
			if seq != again {
				t.Errorf("masked report differs across repeated runs:\n--- first ---\n%s\n--- second ---\n%s", seq, again)
			}
		})
	}
}
