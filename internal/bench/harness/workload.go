package harness

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/scenario"
)

// Workload is the set of outputs one evaluation run regenerates — the
// paper's tables and figures plus the machine-readable JSON entries.
// It was lifted out of cmd/chimera-bench so the service layer and the
// CLI drive the identical workload path.
type Workload struct {
	Table1, Table2               bool
	Fig5, Fig6, Fig7, Fig8, Sens bool
	MHP, JSON                    bool
}

// RunWorkload prepares a suite and renders every requested output to w,
// returning the machine-readable entries when the JSON export was
// requested. Progress notes go to errOut (nil discards them).
func RunWorkload(cfg Config, names []string, want Workload, w, errOut io.Writer) ([]JSONEntry, error) {
	if errOut == nil {
		errOut = io.Discard
	}
	fmt.Fprintln(errOut, "preparing benchmarks (analyze + profile + instrument)...")
	s, err := NewSuite(cfg, names...)
	if err != nil {
		return nil, err
	}

	if want.Table1 {
		fmt.Fprintln(w, s.Table1())
	}
	if want.Table2 {
		_, out, err := s.Table2()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.Fig5 {
		_, out, err := s.Figure5()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.Fig6 {
		_, out, err := s.Figure6()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.Fig7 {
		_, out, err := s.Figure7()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.Fig8 {
		_, out, err := s.Figure8(nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.Sens {
		sensNames := names
		if len(sensNames) == 0 {
			sensNames = []string{"pfscan", "water"}
		}
		_, out, err := ProfileSensitivity(sensNames, 10)
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.MHP {
		_, out, err := s.FigureMHP()
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(w, out)
	}
	if want.JSON {
		return s.MeasureJSON(MHPConfigNames)
	}
	return nil, nil
}

// RunScenarios measures generated scenario workloads (';'-separated
// family:seed:size specs) through the full harness (MHP opt sets),
// printing a per-row summary to w and returning the JSON entries. The
// rows carry the same metrics block as the embedded benchmarks; the CI
// soundness gate asserts certified / replay_matches / checkers_agree /
// checker_races on them. Progress notes go to errOut (nil discards).
func RunScenarios(cfg Config, specText string, w, errOut io.Writer) ([]JSONEntry, error) {
	if errOut == nil {
		errOut = io.Discard
	}
	specs, err := scenario.ParseList(specText)
	if err != nil {
		return nil, err
	}
	list := make([]*bench.Benchmark, len(specs))
	for i, sp := range specs {
		if list[i], err = scenario.ToBenchmark(sp); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(errOut, "preparing %d generated scenario(s) (analyze + profile + instrument)...\n", len(list))
	s, err := NewSuiteOf(cfg, list)
	if err != nil {
		return nil, err
	}
	entries, err := s.MeasureJSON(MHPConfigNames)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Generated scenarios (all+mhp column):")
	fmt.Fprintf(w, "%-28s %6s %6s %6s | %7s %5s %5s %6s %6s\n",
		"scenario", "pairs", "kept", "wl", "rec.ovh", "cert", "rep?", "races", "agree")
	for _, e := range entries {
		if e.Config != "all+mhp" {
			continue
		}
		fmt.Fprintf(w, "%-28s %6d %6d %6d | %7.2f %5v %5v %6d %6v\n",
			e.Bench, e.StaticPairs, e.InstrumentedPairs, e.WeakLocks,
			e.RecordOverhead, e.Certified, e.ReplayMatches, e.CheckerRaces, e.CheckersAgree)
	}
	fmt.Fprintln(w)
	return entries, nil
}
