package bench

import "repro/internal/oskit"

// ---------------------------------------------------------------------------
// radix — SPLASH-2 radix sort (paper Fig. 4; Table 1: profile 2 workers /
// 2^8 keys, eval 4 workers / 2^14 keys with sanity check; key counts are
// scaled to the simulator).
//
// Each worker owns a slice of the key array and a private region of the
// shared rank histogram. The clear loop gets precise symbolic bounds
// (&rank[base] .. &rank[base+radix-1]); the count loop indexes rank with
// (key >> shift) & mask, which the bounds grammar cannot express, so it
// gets an infinite-range loop-lock — both exactly as in the paper's
// Figure 4. The single-threaded offset/swap phases are inlined into the
// worker driver (as in the SPLASH original), so radix exercises loop-locks
// rather than function-locks.

const radixSrc = `
int cfg[8];
int nworkers;
int nkeys;
int bits;
int radixsz;
int npasses;
int sanity;

int keys0[16384];
int keys1[16384];
int rank[2048];
int offsets[2048];
int *kf;
int *kt;
int bar;

void sort_worker(int id) {
    int chunk = nkeys / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    int rsz = radixsz;
    int base = id * rsz;
    int mask = rsz - 1;
    int passes = npasses;
    int nbits = bits;
    for (int pass = 0; pass < passes; pass++) {
        int shift = pass * nbits;
        for (int j = 0; j < rsz; j++) {
            rank[base + j] = 0;
        }
        for (int j = start; j < stop; j++) {
            int my_key = (kf[j] >> shift) & mask;
            rank[base + my_key] = rank[base + my_key] + 1;
        }
        barrier_wait(&bar);
        if (id == 0) {
            int run = 0;
            int nw = nworkers;
            for (int d = 0; d < rsz; d++) {
                for (int w = 0; w < nw; w++) {
                    offsets[w * rsz + d] = run;
                    run = run + rank[w * rsz + d];
                }
            }
        }
        barrier_wait(&bar);
        for (int j = start; j < stop; j++) {
            int my_key = (kf[j] >> shift) & mask;
            int pos = offsets[base + my_key];
            offsets[base + my_key] = pos + 1;
            kt[pos] = kf[j];
        }
        barrier_wait(&bar);
        if (id == 0) {
            int *tmp = kf;
            kf = kt;
            kt = tmp;
        }
        barrier_wait(&bar);
    }
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    nkeys = cfg[1];
    bits = cfg[2];
    radixsz = 1 << bits;
    npasses = cfg[3];
    sanity = cfg[4];

    int kfd = open(10);
    int got = 0;
    int n = read(kfd, keys0, 2048);
    while (n > 0) {
        got = got + n;
        int *dst = keys0;
        n = read(kfd, dst + got, 2048);
    }
    close(kfd);
    check(got == nkeys);

    kf = keys0;
    kt = keys1;
    barrier_init(&bar, nworkers);

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(sort_worker, w);
    }
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }

    if (sanity != 0) {
        for (int i = 1; i < nkeys; i++) {
            check(kf[i - 1] <= kf[i]);
        }
    }
    int hsum = 2166136261;
    for (int hi = 0; hi < nkeys; hi++) {
        hsum = hsum ^ kf[hi];
        hsum = hsum * 16777619;
        hsum = hsum & 1073741823;
    }
    print(hsum);
    return 0;
}
`

// Radix returns the radix benchmark.
func Radix() *Benchmark {
	mkWorld := func(seed uint64, workers, nkeys, bits, passes, sanity int64) *oskit.World {
		w := cfgWorld(seed, []int64{workers, nkeys, bits, passes, sanity, 0, 0, 0})
		maxVal := int64(1) << uint(bits*passes)
		keys := make([]int64, nkeys)
		x := seed*2862933555777941757 + 3037000493
		for i := range keys {
			x = x*2862933555777941757 + 3037000493
			keys[i] = int64(x>>33) % maxVal
		}
		w.AddFile(10, keys)
		return w
	}
	return &Benchmark{
		Name:   "radix",
		Class:  "scientific",
		Source: radixSrc,
		ProfileWorld: func(run int) *oskit.World {
			return mkWorld(uint64(run)+1, 2, 256, 4, 2, 0)
		},
		EvalWorld: func(workers int) *oskit.World {
			return mkWorld(99, int64(workers), 16384, 4, 3, 1)
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 2^8 keys, no sanity check",
		EvalEnv:     "N workers, 2^14 keys, with sanity check",
	}
}

// ---------------------------------------------------------------------------
// water — SPLASH-2 water-nsquared (paper Fig. 2; Table 1: profile 2
// workers / 64 molecules / 5 steps, eval 4 workers / 1000 molecules / 10
// steps; scaled). The barrier-separated phase functions predic / correc /
// bndry and the snapshot/force accessors carry the false races that the
// profiler proves non-concurrent — water is the paper's function-lock
// showcase. The O(n^2) force computation reads a thread-private snapshot,
// so the heavy loop itself is race-free and stays parallel.

const waterSrc = `
int cfg[8];
int nworkers;
int nmol;
int nsteps;

int pos[1024];
int vel[1024];
int force[1024];
int poten;
int potlock;
int flock;
int bar;

void init_data(void) {
    int n = nmol;
    for (int i = 0; i < n; i++) {
        pos[i] = (i * 37 + 11) & 4095;
        vel[i] = (i * 13) & 63;
        force[i] = 0;
    }
}

void snapshot_positions(int *dst) {
    int n = nmol;
    for (int j = 0; j < n; j++) {
        dst[j] = pos[j];
    }
}

void add_force(int i, int v) {
    lock(&flock);
    force[i] = force[i] + v;
    unlock(&flock);
}

void predic(int id) {
    int chunk = nmol / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    for (int i = start; i < stop; i++) {
        pos[i] = pos[i] + vel[i];
    }
}

void interf(int id) {
    int snap[1024];
    int n = nmol;
    snapshot_positions(snap);
    int chunk = n / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    for (int i = start; i < stop; i++) {
        int acc = 0;
        // Cutoff radius: only a window of neighbors interacts.
        for (int k = 0; k < 24; k++) {
            int j = i + k - 12;
            if (j < 0) { j = j + n; }
            if (j >= n) { j = j - n; }
            int d = snap[i] - snap[j];
            if (d < 0) { d = -d; }
            acc = acc + (d & 15);
        }
        add_force(i, acc);
    }
}

void correc(int id) {
    int chunk = nmol / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    for (int i = start; i < stop; i++) {
        vel[i] = vel[i] + force[i] / 2;
        force[i] = 0;
    }
}

void bndry(int id) {
    int chunk = nmol / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    for (int i = start; i < stop; i++) {
        if (pos[i] > 4096) { pos[i] = pos[i] - 4096; }
        if (pos[i] < 0) { pos[i] = pos[i] + 4096; }
    }
}

void poteng(int id) {
    int chunk = nmol / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    int local = 0;
    for (int i = start; i < stop; i++) {
        local = local + pos[i] * pos[i] / 1024;
    }
    lock(&potlock);
    poten = poten + local;
    unlock(&potlock);
}

void water_worker(int id) {
    int steps = nsteps;
    for (int s = 0; s < steps; s++) {
        predic(id);
        barrier_wait(&bar);
        interf(id);
        barrier_wait(&bar);
        correc(id);
        barrier_wait(&bar);
        bndry(id);
        barrier_wait(&bar);
    }
    poteng(id);
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    nmol = cfg[1];
    nsteps = cfg[2];

    init_data();
    barrier_init(&bar, nworkers);

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(water_worker, w);
    }
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }
    print(poten);
    int hsum = 2166136261;
    for (int hi = 0; hi < nmol; hi++) {
        hsum = hsum ^ pos[hi];
        hsum = hsum * 16777619;
        hsum = hsum & 1073741823;
    }
    print(hsum);
    return 0;
}
`

// Water returns the water benchmark.
func Water() *Benchmark {
	return &Benchmark{
		Name:   "water",
		Class:  "scientific",
		Source: waterSrc,
		ProfileWorld: func(run int) *oskit.World {
			return cfgWorld(uint64(run)+1, []int64{2, 32, 2, 0, 0, 0, 0, 0})
		},
		EvalWorld: func(workers int) *oskit.World {
			return cfgWorld(5, []int64{int64(workers), 512, 5, 0, 0, 0, 0, 0})
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 32 molecules, 2 steps",
		EvalEnv:     "N workers, 512 molecules, 5 steps",
	}
}

// ---------------------------------------------------------------------------
// ocean — SPLASH-2 ocean (Table 1: profile 2 workers / 130x130 grid, eval
// 4 workers / 1026x1026; scaled). A Jacobi stencil over row bands with
// barriers between sweeps: band writes have precise loop bounds but the
// stencil reads neighbor rows, so adjacent workers' loop-lock ranges
// overlap at band boundaries — the loop-lock contention the paper reports
// dominating ocean (Fig. 7). The single-threaded grid flip is inlined in
// the driver.

const oceanSrc = `
int cfg[8];
int nworkers;
int dim;
int iters;

int grid0[9604];
int grid1[9604];
int *src;
int *dst;
int bar;
int difflock;
int totaldiff;

void sweep(int id) {
    int d = dim;
    int *g = src;
    int *h = dst;
    int rows = (d - 2) / nworkers;
    int r0 = 1 + id * rows;
    int r1 = r0 + rows;
    int local = 0;
    for (int r = r0; r < r1; r++) {
        for (int c = 1; c < d - 1; c++) {
            int up = g[(r - 1) * d + c];
            int down = g[(r + 1) * d + c];
            int left = g[r * d + c - 1];
            int right = g[r * d + c + 1];
            int v = (up + down + left + right) / 4;
            int old = g[r * d + c];
            h[r * d + c] = v;
            int dd = v - old;
            if (dd < 0) { dd = -dd; }
            local = local + dd;
        }
    }
    lock(&difflock);
    totaldiff = totaldiff + local;
    unlock(&difflock);
}

void ocean_worker(int id) {
    int ni = iters;
    for (int it = 0; it < ni; it++) {
        sweep(id);
        barrier_wait(&bar);
        if (id == 0) {
            int *tmp = src;
            src = dst;
            dst = tmp;
            totaldiff = 0;
        }
        barrier_wait(&bar);
    }
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    dim = cfg[1];
    iters = cfg[2];

    int d0 = dim;
    for (int r = 0; r < d0; r++) {
        for (int c = 0; c < d0; c++) {
            grid0[r * d0 + c] = ((r * 31 + c * 17) & 255) * 16;
            grid1[r * d0 + c] = grid0[r * d0 + c];
        }
    }
    src = grid0;
    dst = grid1;
    barrier_init(&bar, nworkers);

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(ocean_worker, w);
    }
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }
    int hn = dim * dim;
    int hsum = 2166136261;
    for (int hi = 0; hi < hn; hi++) {
        hsum = hsum ^ src[hi];
        hsum = hsum * 16777619;
        hsum = hsum & 1073741823;
    }
    print(hsum);
    return 0;
}
`

// Ocean returns the ocean benchmark.
func Ocean() *Benchmark {
	return &Benchmark{
		Name:   "ocean",
		Class:  "scientific",
		Source: oceanSrc,
		ProfileWorld: func(run int) *oskit.World {
			return cfgWorld(uint64(run)+1, []int64{2, 18, 2, 0, 0, 0, 0, 0})
		},
		EvalWorld: func(workers int) *oskit.World {
			return cfgWorld(3, []int64{int64(workers), 98, 5, 0, 0, 0, 0, 0})
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 18x18 grid, 2 sweeps",
		EvalEnv:     "N workers, 98x98 grid, 5 sweeps",
	}
}

// ---------------------------------------------------------------------------
// fft — SPLASH-2 fft (Table 1: profile 2 workers / 2^4 matrix, eval 4
// workers / larger with inverse check; scaled). An in-place Walsh-Hadamard
// butterfly: each stage pairs element i with i^stride — the XOR index is
// outside the symbolic bounds grammar, so fft's hot loops get imprecise
// loop-locks and the contention the paper observes (Fig. 7, §7.4).

const fftSrc = `
int cfg[8];
int nworkers;
int n;
int logn;
int docheck;

int data[8192];
int orig[8192];
int bar;

void butterfly(int id, int stride) {
    int nn = n;
    int chunk = nn / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    for (int i = start; i < stop; i++) {
        int partner = i ^ stride;
        if (partner > i) {
            int a = data[i];
            int b = data[partner];
            data[i] = a + b;
            data[partner] = a - b;
        }
    }
}

void fft_worker(int id) {
    int stride = 1;
    int stages = logn;
    for (int s = 0; s < stages; s++) {
        butterfly(id, stride);
        stride = stride * 2;
        barrier_wait(&bar);
    }
}

void inverse_worker(int id) {
    int stride = 1;
    int stages = logn;
    for (int s = 0; s < stages; s++) {
        butterfly(id, stride);
        stride = stride * 2;
        barrier_wait(&bar);
    }
    // The transform composed with itself scales by n.
    int nn = n;
    int chunk = nn / nworkers;
    int start = id * chunk;
    int stop = start + chunk;
    for (int i = start; i < stop; i++) {
        data[i] = data[i] / nn;
    }
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    logn = cfg[1];
    n = 1 << logn;
    docheck = cfg[2];

    for (int i = 0; i < n; i++) {
        data[i] = (i * 29 + 7) & 1023;
        orig[i] = data[i];
    }
    barrier_init(&bar, nworkers);

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(fft_worker, w);
    }
    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }
    int hsum = 2166136261;
    for (int hi = 0; hi < n; hi++) {
        hsum = hsum ^ data[hi];
        hsum = hsum * 16777619;
        hsum = hsum & 1073741823;
    }
    print(hsum);

    if (docheck != 0) {
        for (int w = 0; w < nworkers; w++) {
            tids[w] = spawn(inverse_worker, w);
        }
        for (int w = 0; w < nworkers; w++) {
            join(tids[w]);
        }
        for (int i = 0; i < n; i++) {
            check(data[i] == orig[i]);
        }
        print(1);
    }
    return 0;
}
`

// FFT returns the fft benchmark.
func FFT() *Benchmark {
	return &Benchmark{
		Name:   "fft",
		Class:  "scientific",
		Source: fftSrc,
		ProfileWorld: func(run int) *oskit.World {
			return cfgWorld(uint64(run)+1, []int64{2, 6, 0, 0, 0, 0, 0, 0})
		},
		EvalWorld: func(workers int) *oskit.World {
			return cfgWorld(8, []int64{int64(workers), 12, 1, 0, 0, 0, 0, 0})
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 2^6 points, no inverse check",
		EvalEnv:     "N workers, 2^12 points, with inverse FFT check",
	}
}
