package bench

import "repro/internal/oskit"

// ---------------------------------------------------------------------------
// knot — threaded web server (Table 1: profile 2 workers / 4 clients / 100
// requests, eval N workers / 16 clients / 1000 requests; scaled). The main
// thread accepts connections into a mutex+condvar queue; workers serve
// requests out of a shared file cache. The cache hit counter is the
// classic benign server race; per-worker scoreboard slots are disjoint but
// collapsed by the pointer analysis.

const knotSrc = `
int cfg[8];
int nworkers;

int connq[128];
int qhead;
int qtail;
int qlock;
int qcond;

int cache_tag[8];
int cache_data[2048];
int cache_lock;
int cache_hits;

int scoreboard[8];

int cache_lookup(int fileid, int *out, int maxn) {
    int slot = fileid & 7;
    lock(&cache_lock);
    if (cache_tag[slot] != fileid) {
        int fd = open(fileid);
        if (fd < 0) {
            unlock(&cache_lock);
            return -1;
        }
        int n = read(fd, &cache_data[slot * 256], 256);
        close(fd);
        cache_tag[slot] = fileid;
    } else {
        cache_hits = cache_hits + 1;
    }
    int base = slot * 256;
    int n = maxn;
    if (n > 256) { n = 256; }
    for (int i = 0; i < n; i++) {
        out[i] = cache_data[base + i];
    }
    unlock(&cache_lock);
    return n;
}

void serve(int id, int conn) {
    int req[4];
    int n = recv(conn, req, 4);
    if (n < 2) { return; }
    int fileid = req[0];
    int want = req[1];
    int resp[256];
    int have = cache_lookup(fileid, resp, want);
    if (have < 0) {
        resp[0] = -1;
        send(conn, resp, 1);
        return;
    }
    send(conn, resp, have);
    scoreboard[id] = scoreboard[id] + 1;
}

void knot_worker(int id) {
    while (1) {
        lock(&qlock);
        while (qhead == qtail) {
            cond_wait(&qcond, &qlock);
        }
        int conn = connq[qhead];
        qhead = qhead + 1;
        unlock(&qlock);
        if (conn < 0) { break; }
        serve(id, conn);
    }
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(knot_worker, w);
    }

    int conn = accept(0);
    while (conn >= 0) {
        lock(&qlock);
        connq[qtail] = conn;
        qtail = qtail + 1;
        cond_signal(&qcond);
        unlock(&qlock);
        conn = accept(0);
    }
    lock(&qlock);
    for (int w = 0; w < nworkers; w++) {
        connq[qtail] = -1;
        qtail = qtail + 1;
    }
    cond_broadcast(&qcond);
    unlock(&qlock);

    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }
    int served = 0;
    for (int w = 0; w < nworkers; w++) {
        served = served + scoreboard[w];
    }
    print(served);
    print(cache_hits);
    return 0;
}
`

// knotWorld builds a request stream over a small set of files.
func knotWorld(seed uint64, workers, nreqs, fwords int64) *oskit.World {
	w := cfgWorld(seed, []int64{workers, 0, 0, 0, 0, 0, 0, 0})
	for f := int64(10); f < 14; f++ {
		data := make([]int64, fwords)
		x := seed + uint64(f)*7919
		for j := range data {
			x = x*6364136223846793005 + 1442695040888963407
			data[j] = int64(x>>46) & 63
		}
		w.AddFile(f, data)
	}
	x := seed * 104729
	for i := int64(0); i < nreqs; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		fileid := 10 + int64(x>>40)&3
		want := fwords
		w.AddConn(400+i*600, []int64{fileid, want, 0, 0})
	}
	return w
}

// Knot returns the knot benchmark.
func Knot() *Benchmark {
	return &Benchmark{
		Name:   "knot",
		Class:  "server",
		Source: knotSrc,
		ProfileWorld: func(run int) *oskit.World {
			return knotWorld(uint64(run)+1, 2, 6, 64)
		},
		EvalWorld: func(workers int) *oskit.World {
			return knotWorld(31, int64(workers), 48, 192)
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 6 requests, 64-word file",
		EvalEnv:     "N workers, 48 requests, 192-word file",
	}
}

// ---------------------------------------------------------------------------
// apache — web server with per-worker response buffers (Table 1: same
// client setup as knot; scaled). Building a response clears the worker's
// buffer with my_memset — the paper's flagship false self-race: RELAY
// flags the memset store against itself, and only the loop-lock with
// symbolic bounds (&buf[0] .. &buf[len-1]) keeps concurrent responses
// parallel (§7.3: "in apache, RELAY reports a false data-race between
// memory operations within a hot loop in the memset library function").

const apacheSrc = `
int cfg[8];
int nworkers;
int respwords;

int connq[128];
int qhead;
int qtail;
int qlock;
int qcond;

int respbuf[4096];
int files[1024];
int fwords;

int slock;
int bytes_sent;
int requests_served;

int content_len(void) {
    return fwords;
}

void build_response(int id, int fileid, int want) {
    int rw = respwords;
    int base = id * rw;
    int *dst = &respbuf[base];
    my_memset(dst, 0, rw);
    int n = want;
    int fl = content_len();
    if (n > fl) { n = fl; }
    if (n > rw - 2) { n = rw - 2; }
    my_memcpy(dst, &files[0], n);
    dst[n] = my_checksum(&files[0], n);
    dst[n + 1] = 0;
}

void account(int n) {
    lock(&slock);
    bytes_sent = bytes_sent + n;
    unlock(&slock);
    requests_served = requests_served + 1;
}

void handle(int id, int conn) {
    int req[4];
    int n = recv(conn, req, 4);
    if (n < 2) { return; }
    build_response(id, req[0], req[1]);
    int rw = respwords;
    int base = id * rw;
    int sent = send(conn, &respbuf[base], req[1] + 2);
    account(sent);
}

void apache_worker(int id) {
    while (1) {
        lock(&qlock);
        while (qhead == qtail) {
            cond_wait(&qcond, &qlock);
        }
        int conn = connq[qhead];
        qhead = qhead + 1;
        unlock(&qlock);
        if (conn < 0) { break; }
        handle(id, conn);
    }
}

void load_content(void) {
    int fd = open(10);
    fwords = read(fd, files, 1024);
    close(fd);
}

int main(void) {
    int fd = open(1);
    read(fd, cfg, 8);
    close(fd);
    nworkers = cfg[0];
    respwords = cfg[1];

    load_content();

    int tids[8];
    for (int w = 0; w < nworkers; w++) {
        tids[w] = spawn(apache_worker, w);
    }

    int conn = accept(0);
    while (conn >= 0) {
        lock(&qlock);
        connq[qtail] = conn;
        qtail = qtail + 1;
        cond_signal(&qcond);
        unlock(&qlock);
        conn = accept(0);
    }
    lock(&qlock);
    for (int w = 0; w < nworkers; w++) {
        connq[qtail] = -1;
        qtail = qtail + 1;
    }
    cond_broadcast(&qcond);
    unlock(&qlock);

    for (int w = 0; w < nworkers; w++) {
        join(tids[w]);
    }
    print(requests_served);
    print(bytes_sent);
    return 0;
}
`

// apacheWorld builds the request stream.
func apacheWorld(seed uint64, workers, nreqs, respwords, fwords int64) *oskit.World {
	w := cfgWorld(seed, []int64{workers, respwords, 0, 0, 0, 0, 0, 0})
	data := make([]int64, fwords)
	x := seed*53 + 1
	for j := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[j] = int64(x>>46) & 63
	}
	w.AddFile(10, data)
	x = seed * 7
	for i := int64(0); i < nreqs; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		want := fwords/2 + int64(x>>44)%(fwords/2)
		w.AddConn(400+i*500, []int64{10, want, 0, 0})
	}
	return w
}

// Apache returns the apache benchmark.
func Apache() *Benchmark {
	return &Benchmark{
		Name:   "apache",
		Class:  "server",
		Source: apacheSrc,
		ProfileWorld: func(run int) *oskit.World {
			return apacheWorld(uint64(run)+1, 2, 6, 96, 64)
		},
		EvalWorld: func(workers int) *oskit.World {
			return apacheWorld(41, int64(workers), 48, 320, 256)
		},
		ProfileRuns: 6,
		ProfileEnv:  "2 workers, 6 requests, 96-word responses",
		EvalEnv:     "N workers, 48 requests, 320-word responses",
	}
}
