// Package callgraph builds the program call graph, resolving indirect calls
// and spawn targets through the Andersen points-to analysis, and provides
// the bottom-up SCC order in which RELAY composes function summaries
// (paper §3.1: "RELAY composes function summaries in a bottom-up manner
// over the call graph").
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

// Edge is one call site.
type Edge struct {
	Caller *types.FuncInfo
	Callee *types.FuncInfo
	Site   *ast.Call
	Spawn  bool // edge created by spawn(fn, arg)
}

// Graph is the call graph.
type Graph struct {
	Info *types.Info

	// Edges in deterministic order.
	Edges []*Edge

	// Callees[f] and Callers[f] index the edges.
	Callees map[*types.FuncInfo][]*Edge
	Callers map[*types.FuncInfo][]*Edge

	// Roots are the thread entry points: main plus every spawn target
	// (paper §3.1: access summaries are computed for "all functions that
	// are thread entry points").
	Roots []*types.FuncInfo

	// SCCs lists strongly connected components in bottom-up (callee-first)
	// order; recursion groups appear as multi-function components.
	SCCs [][]*types.FuncInfo

	// sccIndex[f] is the index of f's SCC in SCCs.
	sccIndex map[*types.FuncInfo]int
}

// Build constructs the call graph using the type checker's direct-call
// resolution plus pta's indirect-call and spawn resolution.
func Build(info *types.Info, pta *pointsto.Analysis) *Graph {
	g := &Graph{
		Info:     info,
		Callees:  make(map[*types.FuncInfo][]*Edge),
		Callers:  make(map[*types.FuncInfo][]*Edge),
		sccIndex: make(map[*types.FuncInfo]int),
	}

	rootSet := make(map[*types.FuncInfo]bool)
	if mainFn := info.Funcs["main"]; mainFn != nil {
		g.Roots = append(g.Roots, mainFn)
		rootSet[mainFn] = true
	}

	for _, fn := range info.FuncList {
		caller := fn
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.Call)
			if !ok {
				return true
			}
			if target := info.CallTargets[call.ID()]; target != nil {
				if target.Kind == types.ObjFunc {
					g.addEdge(caller, info.Funcs[target.Name], call, false)
					return true
				}
				if target.Builtin == types.BSpawn {
					g.addSpawnEdges(caller, call, pta, rootSet)
				}
				return true
			}
			// Indirect call.
			for _, callee := range pta.CallTargets[call.ID()] {
				g.addEdge(caller, callee, call, false)
			}
			return true
		})
	}
	g.computeSCCs()
	return g
}

func (g *Graph) addSpawnEdges(caller *types.FuncInfo, call *ast.Call, pta *pointsto.Analysis, rootSet map[*types.FuncInfo]bool) {
	var targets []*types.FuncInfo
	// Direct spawn target: spawn(worker, x).
	if len(call.Args) > 0 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if o := g.Info.Uses[id.ID()]; o != nil && o.Kind == types.ObjFunc {
				targets = append(targets, o.Func)
			}
		}
	}
	if len(targets) == 0 {
		targets = pta.SpawnTargets[call.ID()]
	}
	for _, fn := range targets {
		g.addEdge(caller, fn, call, true)
		if !rootSet[fn] {
			rootSet[fn] = true
			g.Roots = append(g.Roots, fn)
		}
	}
}

func (g *Graph) addEdge(caller, callee *types.FuncInfo, site *ast.Call, spawn bool) {
	if caller == nil || callee == nil {
		return
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Spawn: spawn}
	g.Edges = append(g.Edges, e)
	g.Callees[caller] = append(g.Callees[caller], e)
	g.Callers[callee] = append(g.Callers[callee], e)
}

// CalleesOf returns the distinct functions f may call (excluding spawn
// edges, which are concurrency edges rather than call edges).
func (g *Graph) CalleesOf(f *types.FuncInfo) []*types.FuncInfo {
	seen := make(map[*types.FuncInfo]bool)
	var out []*types.FuncInfo
	for _, e := range g.Callees[f] {
		if e.Spawn || seen[e.Callee] {
			continue
		}
		seen[e.Callee] = true
		out = append(out, e.Callee)
	}
	return out
}

// IsRoot reports whether f is a thread entry point.
func (g *Graph) IsRoot(f *types.FuncInfo) bool {
	for _, r := range g.Roots {
		if r == f {
			return true
		}
	}
	return false
}

// SCCOf returns the index of f's SCC in bottom-up order.
func (g *Graph) SCCOf(f *types.FuncInfo) int { return g.sccIndex[f] }

// InCycle reports whether f participates in recursion.
func (g *Graph) InCycle(f *types.FuncInfo) bool {
	scc := g.SCCs[g.sccIndex[f]]
	if len(scc) > 1 {
		return true
	}
	for _, callee := range g.CalleesOf(f) {
		if callee == f {
			return true
		}
	}
	return false
}

// computeSCCs runs Tarjan's algorithm; the natural output order of Tarjan
// is already bottom-up (an SCC is emitted only after all SCCs it calls
// into).
func (g *Graph) computeSCCs() {
	index := make(map[*types.FuncInfo]int)
	low := make(map[*types.FuncInfo]int)
	onStack := make(map[*types.FuncInfo]bool)
	var stack []*types.FuncInfo
	next := 0

	var strongconnect func(f *types.FuncInfo)
	strongconnect = func(f *types.FuncInfo) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true

		for _, callee := range g.CalleesOf(f) {
			if _, seen := index[callee]; !seen {
				strongconnect(callee)
				if low[callee] < low[f] {
					low[f] = low[callee]
				}
			} else if onStack[callee] && index[callee] < low[f] {
				low[f] = index[callee]
			}
		}

		if low[f] == index[f] {
			var scc []*types.FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == f {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].Name < scc[j].Name })
			for _, w := range scc {
				g.sccIndex[w] = len(g.SCCs)
			}
			g.SCCs = append(g.SCCs, scc)
		}
	}

	for _, fn := range g.Info.FuncList {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
}

// Waves groups the SCC condensation into parallel scheduling waves: wave
// k holds every SCC whose call edges (spawn edges excluded) reach only
// SCCs in waves < k. SCCs within one wave are mutually call-independent,
// so their summaries can be computed concurrently once every earlier wave
// is done — the schedule RELAY itself used to distribute summary
// computation across a cluster (Voung et al., FSE 2007 §5). Wave indices
// and the SCC order within each wave are deterministic: both derive from
// the bottom-up SCC order, which Tarjan emits deterministically from
// Info.FuncList.
func (g *Graph) Waves() [][]int {
	level := make([]int, len(g.SCCs))
	var waves [][]int
	for i, scc := range g.SCCs {
		lv := 0
		for _, fn := range scc {
			for _, callee := range g.CalleesOf(fn) {
				ci := g.sccIndex[callee]
				if ci == i {
					continue // intra-SCC edge (recursion)
				}
				if level[ci]+1 > lv {
					lv = level[ci] + 1
				}
			}
		}
		level[i] = lv
		for len(waves) <= lv {
			waves = append(waves, nil)
		}
		waves[lv] = append(waves[lv], i)
	}
	return waves
}

// BottomUp returns all functions in bottom-up order (callees before
// callers), flattening the SCCs.
func (g *Graph) BottomUp() []*types.FuncInfo {
	var out []*types.FuncInfo
	for _, scc := range g.SCCs {
		out = append(out, scc...)
	}
	return out
}

// ReachableFrom returns the set of functions reachable from root via call
// edges (spawn edges excluded).
func (g *Graph) ReachableFrom(root *types.FuncInfo) map[*types.FuncInfo]bool {
	seen := make(map[*types.FuncInfo]bool)
	var dfs func(f *types.FuncInfo)
	dfs = func(f *types.FuncInfo) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, callee := range g.CalleesOf(f) {
			dfs(callee)
		}
	}
	dfs(root)
	return seen
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "callgraph (%d edges, roots:", len(g.Edges))
	for _, r := range g.Roots {
		fmt.Fprintf(&sb, " %s", r.Name)
	}
	sb.WriteString(")\n")
	for _, e := range g.Edges {
		arrow := "->"
		if e.Spawn {
			arrow = "=spawn=>"
		}
		fmt.Fprintf(&sb, "  %s %s %s\n", e.Caller.Name, arrow, e.Callee.Name)
	}
	return sb.String()
}
