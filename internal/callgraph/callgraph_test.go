package callgraph

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	pta := pointsto.Analyze(info)
	return Build(info, pta)
}

func names(fns []*types.FuncInfo) map[string]bool {
	out := make(map[string]bool)
	for _, fn := range fns {
		out[fn.Name] = true
	}
	return out
}

func TestDirectEdges(t *testing.T) {
	g := build(t, `
int leaf(int x) { return x; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main(void) { return mid(3); }
`)
	callees := names(g.CalleesOf(g.Info.Funcs["mid"]))
	if !callees["leaf"] || len(callees) != 1 {
		t.Errorf("mid callees = %v, want {leaf}", callees)
	}
	if len(g.Callers[g.Info.Funcs["leaf"]]) != 2 {
		t.Errorf("leaf has %d call sites, want 2", len(g.Callers[g.Info.Funcs["leaf"]]))
	}
}

func TestSpawnRoots(t *testing.T) {
	g := build(t, `
int gv;
void worker(int x) { gv = x; }
int main(void) {
    int t = spawn(worker, 1);
    join(t);
    return 0;
}
`)
	r := names(g.Roots)
	if !r["main"] || !r["worker"] {
		t.Errorf("roots = %v, want main and worker", r)
	}
	if !g.IsRoot(g.Info.Funcs["worker"]) {
		t.Errorf("worker should be a root")
	}
}

func TestIndirectSpawnRoots(t *testing.T) {
	g := build(t, `
int gv;
void w1(int x) { gv = x; }
void w2(int x) { gv = x + 1; }
int sel;
int main(void) {
    int fp = w1;
    if (sel) { fp = w2; }
    int t = spawn(fp, 0);
    join(t);
    return 0;
}
`)
	r := names(g.Roots)
	if !r["w1"] || !r["w2"] {
		t.Errorf("roots = %v, want w1 and w2 via points-to", r)
	}
}

func TestBottomUpOrder(t *testing.T) {
	g := build(t, `
int leaf(int x) { return x; }
int mid(int x) { return leaf(x); }
int main(void) { return mid(1); }
`)
	order := g.BottomUp()
	pos := make(map[string]int)
	for i, fn := range order {
		pos[fn.Name] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["main"]) {
		t.Errorf("bottom-up order wrong: %v", pos)
	}
}

func TestMutualRecursionDetected(t *testing.T) {
	g := build(t, `
int pong(int n) { if (n <= 0) { return 0; } return ping(n - 1); }
int ping(int n) { if (n <= 0) { return 0; } return pong(n - 1); }
int main(void) { return ping(4); }
`)
	ping := g.Info.Funcs["ping"]
	pong := g.Info.Funcs["pong"]
	if g.SCCOf(ping) != g.SCCOf(pong) {
		t.Errorf("ping and pong should share an SCC")
	}
	if !g.InCycle(ping) {
		t.Errorf("ping should be in a cycle")
	}
	if g.InCycle(g.Info.Funcs["main"]) {
		t.Errorf("main is not recursive")
	}
}

func TestSelfRecursion(t *testing.T) {
	g := build(t, `
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main(void) { return fact(5); }
`)
	if !g.InCycle(g.Info.Funcs["fact"]) {
		t.Errorf("fact should be in a cycle")
	}
}

func TestReachableFrom(t *testing.T) {
	g := build(t, `
int gv;
int helper(int x) { return x; }
void worker(int x) { gv = helper(x); }
int unused(int x) { return x; }
int main(void) {
    int t = spawn(worker, 1);
    join(t);
    return 0;
}
`)
	fromWorker := g.ReachableFrom(g.Info.Funcs["worker"])
	if !fromWorker[g.Info.Funcs["helper"]] {
		t.Errorf("helper should be reachable from worker")
	}
	if fromWorker[g.Info.Funcs["unused"]] {
		t.Errorf("unused should not be reachable from worker")
	}
	fromMain := g.ReachableFrom(g.Info.Funcs["main"])
	if fromMain[g.Info.Funcs["worker"]] {
		t.Errorf("spawn edges must not count as call reachability")
	}
}

func TestWaves(t *testing.T) {
	g := build(t, `
int gv;
int leaf1(int x) { return x; }
int leaf2(int x) { return x + 1; }
int mid(int x) { return leaf1(x) + leaf2(x); }
int rec(int x) { if (x > 0) { return rec(x - 1); } return leaf1(x); }
int main(void) { gv = mid(1) + rec(2); return gv; }
`)
	waves := g.Waves()

	// Every SCC appears exactly once.
	seen := make(map[int]bool)
	for _, wave := range waves {
		for _, scc := range wave {
			if seen[scc] {
				t.Fatalf("SCC %d scheduled twice", scc)
			}
			seen[scc] = true
		}
	}
	if len(seen) != len(g.SCCs) {
		t.Fatalf("waves cover %d SCCs, graph has %d", len(seen), len(g.SCCs))
	}

	// Wave invariant: every (non-intra-SCC) callee sits in a strictly
	// earlier wave.
	waveOf := make(map[int]int)
	for wi, wave := range waves {
		for _, scc := range wave {
			waveOf[scc] = wi
		}
	}
	for _, scc := range g.SCCs {
		for _, fn := range scc {
			for _, callee := range g.CalleesOf(fn) {
				if g.SCCOf(callee) == g.SCCOf(fn) {
					continue
				}
				if waveOf[g.SCCOf(callee)] >= waveOf[g.SCCOf(fn)] {
					t.Errorf("callee %s (wave %d) not before caller %s (wave %d)",
						callee.Name, waveOf[g.SCCOf(callee)], fn.Name, waveOf[g.SCCOf(fn)])
				}
			}
		}
	}

	// Concrete shape: leaves in wave 0; mid and rec one wave later (rec's
	// self-edge is intra-SCC); main last.
	fnWave := func(name string) int { return waveOf[g.SCCOf(g.Info.Funcs[name])] }
	if fnWave("leaf1") != 0 || fnWave("leaf2") != 0 {
		t.Errorf("leaves in waves %d/%d, want 0/0", fnWave("leaf1"), fnWave("leaf2"))
	}
	if fnWave("mid") != 1 || fnWave("rec") != 1 {
		t.Errorf("mid/rec in waves %d/%d, want 1/1", fnWave("mid"), fnWave("rec"))
	}
	if fnWave("main") != 2 {
		t.Errorf("main in wave %d, want 2", fnWave("main"))
	}

	// Determinism: repeated builds produce identical wave schedules.
	for i := 0; i < 3; i++ {
		g2 := build(t, `
int gv;
int leaf1(int x) { return x; }
int leaf2(int x) { return x + 1; }
int mid(int x) { return leaf1(x) + leaf2(x); }
int rec(int x) { if (x > 0) { return rec(x - 1); } return leaf1(x); }
int main(void) { gv = mid(1) + rec(2); return gv; }
`)
		w2 := g2.Waves()
		if len(w2) != len(waves) {
			t.Fatalf("wave count varies: %d vs %d", len(w2), len(waves))
		}
		for wi := range waves {
			if len(w2[wi]) != len(waves[wi]) {
				t.Fatalf("wave %d size varies", wi)
			}
			for k := range waves[wi] {
				if w2[wi][k] != waves[wi][k] {
					t.Fatalf("wave %d entry %d varies: %d vs %d", wi, k, w2[wi][k], waves[wi][k])
				}
			}
		}
	}
}
