package callgraph

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	pta := pointsto.Analyze(info)
	return Build(info, pta)
}

func names(fns []*types.FuncInfo) map[string]bool {
	out := make(map[string]bool)
	for _, fn := range fns {
		out[fn.Name] = true
	}
	return out
}

func TestDirectEdges(t *testing.T) {
	g := build(t, `
int leaf(int x) { return x; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main(void) { return mid(3); }
`)
	callees := names(g.CalleesOf(g.Info.Funcs["mid"]))
	if !callees["leaf"] || len(callees) != 1 {
		t.Errorf("mid callees = %v, want {leaf}", callees)
	}
	if len(g.Callers[g.Info.Funcs["leaf"]]) != 2 {
		t.Errorf("leaf has %d call sites, want 2", len(g.Callers[g.Info.Funcs["leaf"]]))
	}
}

func TestSpawnRoots(t *testing.T) {
	g := build(t, `
int gv;
void worker(int x) { gv = x; }
int main(void) {
    int t = spawn(worker, 1);
    join(t);
    return 0;
}
`)
	r := names(g.Roots)
	if !r["main"] || !r["worker"] {
		t.Errorf("roots = %v, want main and worker", r)
	}
	if !g.IsRoot(g.Info.Funcs["worker"]) {
		t.Errorf("worker should be a root")
	}
}

func TestIndirectSpawnRoots(t *testing.T) {
	g := build(t, `
int gv;
void w1(int x) { gv = x; }
void w2(int x) { gv = x + 1; }
int sel;
int main(void) {
    int fp = w1;
    if (sel) { fp = w2; }
    int t = spawn(fp, 0);
    join(t);
    return 0;
}
`)
	r := names(g.Roots)
	if !r["w1"] || !r["w2"] {
		t.Errorf("roots = %v, want w1 and w2 via points-to", r)
	}
}

func TestBottomUpOrder(t *testing.T) {
	g := build(t, `
int leaf(int x) { return x; }
int mid(int x) { return leaf(x); }
int main(void) { return mid(1); }
`)
	order := g.BottomUp()
	pos := make(map[string]int)
	for i, fn := range order {
		pos[fn.Name] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["main"]) {
		t.Errorf("bottom-up order wrong: %v", pos)
	}
}

func TestMutualRecursionDetected(t *testing.T) {
	g := build(t, `
int pong(int n) { if (n <= 0) { return 0; } return ping(n - 1); }
int ping(int n) { if (n <= 0) { return 0; } return pong(n - 1); }
int main(void) { return ping(4); }
`)
	ping := g.Info.Funcs["ping"]
	pong := g.Info.Funcs["pong"]
	if g.SCCOf(ping) != g.SCCOf(pong) {
		t.Errorf("ping and pong should share an SCC")
	}
	if !g.InCycle(ping) {
		t.Errorf("ping should be in a cycle")
	}
	if g.InCycle(g.Info.Funcs["main"]) {
		t.Errorf("main is not recursive")
	}
}

func TestSelfRecursion(t *testing.T) {
	g := build(t, `
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main(void) { return fact(5); }
`)
	if !g.InCycle(g.Info.Funcs["fact"]) {
		t.Errorf("fact should be in a cycle")
	}
}

func TestReachableFrom(t *testing.T) {
	g := build(t, `
int gv;
int helper(int x) { return x; }
void worker(int x) { gv = helper(x); }
int unused(int x) { return x; }
int main(void) {
    int t = spawn(worker, 1);
    join(t);
    return 0;
}
`)
	fromWorker := g.ReachableFrom(g.Info.Funcs["worker"])
	if !fromWorker[g.Info.Funcs["helper"]] {
		t.Errorf("helper should be reachable from worker")
	}
	if fromWorker[g.Info.Funcs["unused"]] {
		t.Errorf("unused should not be reachable from worker")
	}
	fromMain := g.ReachableFrom(g.Info.Funcs["main"])
	if fromMain[g.Info.Funcs["worker"]] {
		t.Errorf("spawn edges must not count as call reachability")
	}
}
