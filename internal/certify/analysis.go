package certify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/weaklock"
)

// Lock node names in the order graph: weak-locks are identified by their
// table ID alone ("wl:7") because the VM's mutual exclusion is per-ID —
// the same component lock can be acquired at loop granularity at one
// site and instruction granularity at another. Real mutexes are keyed by
// the printed text of their lock() argument ("mu:&m"); two different
// addresses with identical text conservatively merge into one node
// (over-approximate, so spurious merging can only add edges, never hide
// a cycle between distinctly-named locks).

// weakEntry is one held weak-lock in acquisition order. kind is the
// granularity of the FIRST (non-reentrant) acquire — a site attribute
// the VM remembers for its discipline check — and depth counts
// reentrant acquires of the same ID.
type weakEntry struct {
	id    int64
	kind  int64
	depth int
}

// state is the abstract held-lock state at a program point: the stack of
// held weak-locks (must-held: joins require equality, mismatches fail
// closed) and the may-held set of real mutexes (joins take the union —
// branch-dependent mutex usage in the original program is legal and must
// not fail balance; the union only over-approximates order edges).
type state struct {
	weak []weakEntry
	mu   map[string]bool
}

func newState() *state {
	return &state{mu: make(map[string]bool)}
}

func (s *state) clone() *state {
	c := &state{weak: make([]weakEntry, len(s.weak)), mu: make(map[string]bool, len(s.mu))}
	copy(c.weak, s.weak)
	for k := range s.mu {
		c.mu[k] = true
	}
	return c
}

func weakEqual(a, b []weakEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// weakIDs returns the held weak-lock IDs, sorted, for coverage
// snapshots.
func (s *state) weakIDs() []int64 {
	if len(s.weak) == 0 {
		return nil
	}
	ids := make([]int64, len(s.weak))
	for i, e := range s.weak {
		ids[i] = e.id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// heldNames returns order-graph node names for everything held.
func (s *state) heldNames() []string {
	var names []string
	for _, e := range s.weak {
		names = append(names, weakName(e.id))
	}
	for m := range s.mu {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

func weakName(id int64) string    { return fmt.Sprintf("wl:%d", id) }
func mutexName(arg string) string { return "mu:" + arg }

// fnAnalysis holds the per-function dataflow results the coverage check
// consumes: the CFG and, for every reachable simple statement and branch
// condition, the weak-lock IDs held when it executes.
type fnAnalysis struct {
	fn *types.FuncInfo
	g  *cfg.Graph

	// stmtHeld maps each reachable simple statement to the weak-lock IDs
	// held when the statement executes (state after any preceding
	// wl_acquire in the same block). condHeld does the same for branch
	// condition expressions, which evaluate in the block's exit state.
	stmtHeld map[ast.Stmt][]int64
	condHeld map[ast.Expr][]int64
}

// analysis is the whole-program result of the balance/order pass.
type analysis struct {
	info  *types.Info
	funcs []*fnAnalysis

	// summaries maps function name -> transitively acquired lock names
	// (weak and mutex), for interprocedural order edges at call sites.
	summaries map[string]map[string]bool

	// Order graph.
	lockNodes map[string]bool
	edges     map[[2]string]bool

	balanceViolations []string
	timeoutReliant    map[string]bool
}

// analyze runs balance/order over every function of the reparsed
// instrumented program. Everything is iterated in declaration order so
// results (and their diagnostics) are deterministic.
func analyze(info *types.Info) *analysis {
	a := &analysis{
		info:           info,
		summaries:      make(map[string]map[string]bool),
		lockNodes:      make(map[string]bool),
		edges:          make(map[[2]string]bool),
		timeoutReliant: make(map[string]bool),
	}
	a.buildSummaries()
	for _, fi := range info.FuncList {
		if fi.Decl == nil {
			continue
		}
		a.funcs = append(a.funcs, a.analyzeFn(fi))
	}
	return a
}

// --- interprocedural acquire summaries ---

// buildSummaries computes, for every function, the set of lock names it
// may acquire transitively through direct calls. Spawned thread bodies
// are excluded: a child thread's acquires do not nest inside the
// spawner's held locks.
func (a *analysis) buildSummaries() {
	direct := make(map[string]map[string]bool) // fn -> syntactic acquires
	callees := make(map[string][]string)       // fn -> direct callees
	for _, fi := range a.info.FuncList {
		if fi.Decl == nil {
			continue
		}
		acq := make(map[string]bool)
		var outs []string
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.Call)
			if !ok {
				return true
			}
			obj := a.info.CallTargets[call.ID()]
			if obj == nil {
				return true
			}
			switch obj.Kind {
			case types.ObjFunc:
				outs = append(outs, obj.Name)
			case types.ObjBuiltin:
				switch obj.Builtin {
				case types.BWlAcquire:
					if id, _, ok := wlArgs(call); ok {
						acq[weakName(id)] = true
					}
				case types.BLock:
					if len(call.Args) == 1 {
						acq[mutexName(ast.PrintExpr(call.Args[0]))] = true
					}
				case types.BSpawn:
					// Do not descend into the spawned function; its
					// argument expressions still get visited below.
					return true
				}
			}
			return true
		})
		direct[fi.Name] = acq
		callees[fi.Name] = outs
	}

	// Transitive closure, iterated in declaration order to a fixpoint.
	for name, acq := range direct {
		cp := make(map[string]bool, len(acq))
		for k := range acq {
			cp[k] = true
		}
		a.summaries[name] = cp
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range a.info.FuncList {
			if fi.Decl == nil {
				continue
			}
			sum := a.summaries[fi.Name]
			for _, callee := range callees[fi.Name] {
				for lock := range a.summaries[callee] {
					if !sum[lock] {
						sum[lock] = true
						changed = true
					}
				}
			}
		}
	}
}

// wlArgs extracts the constant (id, kind) of a wl_acquire/wl_release
// call. The instrumenter always emits integer literals here; anything
// else is unanalyzable and the caller fails closed.
func wlArgs(call *ast.Call) (id, kind int64, ok bool) {
	if len(call.Args) < 2 {
		return 0, 0, false
	}
	k, ok1 := call.Args[0].(*ast.IntLit)
	i, ok2 := call.Args[1].(*ast.IntLit)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return i.Value, k.Value, true
}

// --- per-function dataflow ---

func (a *analysis) analyzeFn(fi *types.FuncInfo) *fnAnalysis {
	fa := &fnAnalysis{
		fn:       fi,
		g:        cfg.Build(fi.Decl),
		stmtHeld: make(map[ast.Stmt][]int64),
		condHeld: make(map[ast.Expr][]int64),
	}
	g := fa.g

	// Blocks reachable from entry; unreachable blocks (e.g. dead code
	// after a return, which can contain the instrumenter's dead releases)
	// never execute and are excluded from every check.
	reach := make(map[*cfg.Block]bool)
	var dfs func(*cfg.Block)
	dfs = func(b *cfg.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(g.Entry)

	rpo := g.ReversePostOrder()
	out := make(map[*cfg.Block]*state)

	inState := func(b *cfg.Block) *state {
		if b == g.Entry {
			return newState()
		}
		var st *state
		for _, p := range b.Preds {
			ps := out[p]
			if ps == nil {
				continue
			}
			if st == nil {
				st = ps.clone()
				continue
			}
			// Mutex may-join; the weak must-join equality check is
			// deferred to the reporting pass below so each mismatch is
			// reported exactly once, from the fixpoint states.
			for m := range ps.mu {
				st.mu[m] = true
			}
		}
		if st == nil {
			st = newState()
		}
		return st
	}

	// Fixpoint (silent): the weak component stabilizes after one pass —
	// its join just adopts the first available predecessor — and the
	// mutex may-sets grow monotonically.
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			st := inState(b)
			a.transfer(fa, b, st, false)
			prev := out[b]
			if prev == nil || !weakEqual(prev.weak, st.weak) || !mutexEqual(prev.mu, st.mu) {
				out[b] = st
				changed = true
			}
		}
	}

	// Reporting pass over the stabilized states, in block-ID order for
	// deterministic diagnostics.
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		if b == g.Exit {
			// Every path into exit must have released all weak-locks.
			for _, p := range b.Preds {
				ps := out[p]
				if ps == nil {
					continue
				}
				for _, e := range ps.weak {
					a.balancef("%s: %s held at exit of %s", fi.Name, weakName(e.id), fi.Name)
				}
			}
			continue
		}
		// Fail-closed join check: all predecessors must agree on the
		// held weak-lock stack.
		var first *state
		var firstPred *cfg.Block
		for _, p := range b.Preds {
			ps := out[p]
			if ps == nil {
				continue
			}
			if first == nil {
				first, firstPred = ps, p
				continue
			}
			if !weakEqual(first.weak, ps.weak) {
				a.balancef("%s: mismatched weak-lock held-sets at join (block %d): [%s] from block %d vs [%s] from block %d",
					fi.Name, b.ID, weakStackString(first.weak), firstPred.ID, weakStackString(ps.weak), p.ID)
			}
		}
		st := inState(b)
		a.transfer(fa, b, st, true)
	}
	return fa
}

func mutexEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func weakStackString(ws []weakEntry) string {
	parts := make([]string, len(ws))
	for i, e := range ws {
		parts[i] = weakName(e.id)
	}
	return strings.Join(parts, " ")
}

// transfer interprets one block's statements and branch conditions over
// st. When rec is set it records coverage snapshots, balance violations,
// discipline (timeout-reliance) findings and order-graph edges; the
// fixpoint iteration calls it silently.
func (a *analysis) transfer(fa *fnAnalysis, b *cfg.Block, st *state, rec bool) {
	for _, s := range b.Stmts {
		a.transferStmt(fa, s, st, rec)
	}
	// Branch conditions evaluate after the block's statements.
	if rec {
		ids := st.weakIDs()
		for _, c := range b.Conds {
			fa.condHeld[c] = ids
			a.visitCalls(fa, c, st, true)
		}
	} else {
		for _, c := range b.Conds {
			a.visitCalls(fa, c, st, false)
		}
	}
}

func (a *analysis) transferStmt(fa *fnAnalysis, s ast.Stmt, st *state, rec bool) {
	// wl_acquire / wl_release only ever appear as bare expression
	// statements emitted by the instrumenter.
	if es, ok := s.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.Call); ok {
			if obj := a.info.CallTargets[call.ID()]; obj != nil && obj.Kind == types.ObjBuiltin {
				switch obj.Builtin {
				case types.BWlAcquire:
					a.weakAcquire(fa, call, st, rec)
					return
				case types.BWlRelease:
					a.weakRelease(fa, call, st, rec)
					return
				}
			}
		}
	}

	// The statement's memory accesses execute under the current held
	// set; snapshot it for the coverage check before interpreting any
	// calls the statement makes.
	if rec {
		fa.stmtHeld[s] = st.weakIDs()
	}

	switch s := s.(type) {
	case *ast.DeclStmt:
		if s.Decl.Init != nil {
			a.visitCalls(fa, s.Decl.Init, st, rec)
		}
	case *ast.AssignStmt:
		a.visitCalls(fa, s.LHS, st, rec)
		a.visitCalls(fa, s.RHS, st, rec)
	case *ast.IncDecStmt:
		a.visitCalls(fa, s.X, st, rec)
	case *ast.ExprStmt:
		a.visitCalls(fa, s.X, st, rec)
	case *ast.ReturnStmt:
		if s.X != nil {
			a.visitCalls(fa, s.X, st, rec)
		}
	}
}

// visitCalls interprets the calls inside an expression: real mutex
// lock/unlock, direct user-function calls (whose transitive acquires
// order after everything currently held), and indirect calls (which are
// unanalyzable — holding anything across one is flagged as relying on
// timeout recovery).
func (a *analysis) visitCalls(fa *fnAnalysis, e ast.Expr, st *state, rec bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.Call)
		if !ok {
			return true
		}
		obj := a.info.CallTargets[call.ID()]
		if obj == nil {
			// Indirect call: callee unknown, its lock acquisitions are
			// unanalyzable. Anything held here may order arbitrarily.
			if rec && (len(st.weak) > 0 || len(st.mu) > 0) {
				a.timeoutf("%s:%s: indirect call with locks held [%s]",
					fa.fn.Name, call.Pos(), strings.Join(st.heldNames(), " "))
			}
			return true
		}
		switch obj.Kind {
		case types.ObjFunc:
			if rec {
				for lock := range a.summaries[obj.Name] {
					a.lockNodes[lock] = true
					for _, held := range st.heldNames() {
						if held != lock {
							a.edge(held, lock)
						}
					}
				}
			}
		case types.ObjBuiltin:
			switch obj.Builtin {
			case types.BLock:
				if len(call.Args) == 1 {
					a.mutexLock(fa, call, st, rec)
				}
			case types.BUnlock:
				if len(call.Args) == 1 {
					delete(st.mu, mutexName(ast.PrintExpr(call.Args[0])))
				}
			case types.BSpawn:
				// The spawned function runs in a fresh thread with an
				// empty held set; its acquires do not nest under ours.
				return true
			}
		}
		return true
	})
}

func (a *analysis) weakAcquire(fa *fnAnalysis, call *ast.Call, st *state, rec bool) {
	id, kind, ok := wlArgs(call)
	if !ok {
		if rec {
			a.balancef("%s:%s: wl_acquire with non-constant kind/id", fa.fn.Name, call.Pos())
		}
		return
	}
	name := weakName(id)
	if rec {
		a.lockNodes[name] = true
	}

	// Reentrant acquire: the VM keys held weak-locks by ID alone and
	// permits nested reacquisition at any granularity.
	for i := range st.weak {
		if st.weak[i].id == id {
			st.weak[i].depth++
			return
		}
	}

	if rec {
		// Discipline (mirrors vm/sync.go): a fresh acquire must be
		// strictly above the maximum held (kind, id); otherwise the
		// runtime falls back to timeout recovery.
		maxI := -1
		for i, e := range st.weak {
			if maxI == -1 || e.kind > st.weak[maxI].kind ||
				(e.kind == st.weak[maxI].kind && e.id > st.weak[maxI].id) {
				maxI = i
			}
		}
		if maxI >= 0 {
			last := st.weak[maxI]
			if last.kind > kind || (last.kind == kind && last.id >= id) {
				a.timeoutf("%s:%s: wl_acquire(%s, %d) out of order: %s (kind %s) already held",
					fa.fn.Name, call.Pos(), weaklock.Kind(kind), id, weakName(last.id), weaklock.Kind(last.kind))
			}
		}
		// Order edges: everything currently held precedes the new lock.
		for _, held := range st.heldNames() {
			if held != name {
				a.edge(held, name)
			}
		}
	}
	st.weak = append(st.weak, weakEntry{id: id, kind: kind, depth: 1})
}

func (a *analysis) weakRelease(fa *fnAnalysis, call *ast.Call, st *state, rec bool) {
	id, _, ok := wlArgs(call)
	if !ok {
		if rec {
			a.balancef("%s:%s: wl_release with non-constant kind/id", fa.fn.Name, call.Pos())
		}
		return
	}
	for i := len(st.weak) - 1; i >= 0; i-- {
		if st.weak[i].id != id {
			continue
		}
		st.weak[i].depth--
		if st.weak[i].depth == 0 {
			if rec && i != len(st.weak)-1 {
				a.balancef("%s:%s: non-LIFO release of %s while %s held inside it",
					fa.fn.Name, call.Pos(), weakName(id), weakStackString(st.weak[i+1:]))
			}
			st.weak = append(st.weak[:i], st.weak[i+1:]...)
		}
		return
	}
	if rec {
		a.balancef("%s:%s: release of unheld %s", fa.fn.Name, call.Pos(), weakName(id))
	}
}

func (a *analysis) mutexLock(fa *fnAnalysis, call *ast.Call, st *state, rec bool) {
	name := mutexName(ast.PrintExpr(call.Args[0]))
	if rec {
		a.lockNodes[name] = true
		for _, held := range st.heldNames() {
			// A self-edge is real for mutexes: they are non-reentrant,
			// so re-locking while (possibly) held is a deadlock risk the
			// cycle report must surface.
			a.edge(held, name)
		}
	}
	st.mu[name] = true
}

func (a *analysis) edge(from, to string) {
	a.lockNodes[from] = true
	a.lockNodes[to] = true
	a.edges[[2]string{from, to}] = true
}

func (a *analysis) balancef(format string, args ...any) {
	a.balanceViolations = append(a.balanceViolations, fmt.Sprintf(format, args...))
}

func (a *analysis) timeoutf(format string, args ...any) {
	a.timeoutReliant[fmt.Sprintf(format, args...)] = true
}

func (a *analysis) balanceResult() BalanceResult {
	res := BalanceResult{Functions: len(a.funcs)}
	res.Violations = append(res.Violations, a.balanceViolations...)
	sort.Strings(res.Violations)
	res.Violations = dedup(res.Violations)
	res.OK = len(res.Violations) == 0
	return res
}

func (a *analysis) orderResult() OrderResult {
	res := OrderResult{Locks: len(a.lockNodes), Edges: len(a.edges)}
	for s := range a.timeoutReliant {
		res.TimeoutReliant = append(res.TimeoutReliant, s)
	}
	sort.Strings(res.TimeoutReliant)
	res.Cycles = lockCycles(a.lockNodes, a.edges)
	res.OK = len(res.Cycles) == 0 && len(res.TimeoutReliant) == 0
	return res
}

func dedup(xs []string) []string {
	var out []string
	for _, x := range xs {
		if len(out) == 0 || out[len(out)-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// lockCycles runs Tarjan's SCC over the order graph and returns the
// strongly connected lock groups that admit a deadlock: any SCC with
// more than one node, or a single node with a self-edge (a non-reentrant
// mutex re-locked while held). Nodes within a cycle and the cycle list
// itself are sorted for deterministic output.
func lockCycles(nodes map[string]bool, edges map[[2]string]bool) [][]string {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	succs := make(map[string][]string)
	for e := range edges {
		succs[e[0]] = append(succs[e[0]], e[1])
	}
	for _, s := range succs {
		sort.Strings(s)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var cycles [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 || edges[[2]string{v, v}] {
				sort.Strings(scc)
				cycles = append(cycles, scc)
			}
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(cycles, func(i, j int) bool {
		return strings.Join(cycles[i], ",") < strings.Join(cycles[j], ",")
	})
	return cycles
}
