// Package certify is a static translation validator for Chimera's
// weak-lock instrumentation pass (paper §2.2–§2.3).
//
// The instrumenter promises three properties that the rest of the system
// takes on faith: every RELAY race pair is guarded by a common weak-lock
// (so the recorded acquisition order of that lock orders the racy
// accesses and replay is deterministic), weak-lock acquire/release
// brackets are balanced on every control-flow path, and weak-locks are
// acquired under the deadlock-freedom discipline (func < loop < bb <
// instr, ascending IDs within a granularity). The instrumenter's own
// bookkeeping asserts all three, but a bug there would silently undermine
// the soundness argument — `internal/instrument` explicitly notes the
// ordering discipline "cannot be guaranteed" and leans on runtime timeout
// recovery.
//
// This package turns the promises into a machine-checkable certificate.
// It REPARSES the instrumented MiniC source (the actual pass output, not
// the instrumenter's in-memory plan), rebuilds control-flow graphs with
// internal/cfg, and re-derives every judgment from scratch:
//
//   - coverage: race pairs from the report are independently regrouped
//     into connected components (union-find over the pair graph, not the
//     instrumenter's component map), each racy access is located in the
//     instrumented text by (function, expression) occurrence matching,
//     and the pair is certified only if a common weak-lock is held at
//     BOTH endpoints on ALL control-flow paths (a must-hold forward
//     dataflow; occurrences that cannot be located fail the pair).
//   - balance: the same dataflow verifies that weak-lock brackets are
//     balanced and well nested (LIFO) on every path of every function's
//     CFG; joins with mismatched held-sets fail closed.
//   - order: a static lock-order graph over real mutexes plus weak-locks
//     (edge A→B when B is acquired while A is held, including through
//     calls via interprocedural acquire summaries) either certifies
//     deadlock-freedom — no cycles, no discipline violations — or
//     enumerates exactly the acquisition sites that rely on the runtime
//     timeout mechanism.
//
// The certificate is deterministic: it is a pure function of the race
// report and the instrumented source text, so certificates are
// byte-identical across analysis worker counts and are diffable in CI.
package certify

import (
	"encoding/json"
	"fmt"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

// Schema is the certificate JSON schema version. Version 2 added the
// discharge check (precision-layer prune re-derivation).
const Schema = 2

// Certificate is the machine-readable result of the three checks for one
// instrumented program.
type Certificate struct {
	Schema  int    `json:"schema"`
	Program string `json:"program"`
	Config  string `json:"config"`

	// OK is the conjunction of the four per-check verdicts.
	OK bool `json:"ok"`

	Coverage  CoverageResult  `json:"coverage"`
	Balance   BalanceResult   `json:"balance"`
	Order     OrderResult     `json:"order"`
	Discharge DischargeResult `json:"discharge"`
}

// CoverageResult reports whether every race pair is guarded by a common
// weak-lock at both endpoints on all paths.
type CoverageResult struct {
	OK bool `json:"ok"`

	// Pairs and Covered count the race pairs checked and certified.
	Pairs   int `json:"pairs"`
	Covered int `json:"covered"`

	// Components is the number of connected components of the pair
	// graph, recomputed independently of the instrumenter.
	Components int `json:"components"`

	// Uncovered lists the failing pairs with diagnostics.
	Uncovered []UncoveredPair `json:"uncovered,omitempty"`
}

// UncoveredPair is one race pair that failed coverage. Positions refer to
// the original (pre-instrumentation) source.
type UncoveredPair struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Reason string `json:"reason"`
}

// BalanceResult reports whether weak-lock brackets are balanced and well
// nested on every path of every function.
type BalanceResult struct {
	OK bool `json:"ok"`

	// Functions is the number of function CFGs analyzed.
	Functions int `json:"functions"`

	// Violations lists balance failures ("release of unheld lock",
	// "mismatched held-sets at join", "held at exit", non-LIFO release),
	// with instrumented-source positions.
	Violations []string `json:"violations,omitempty"`
}

// OrderResult reports deadlock-freedom of the combined real-mutex +
// weak-lock order graph.
type OrderResult struct {
	OK bool `json:"ok"`

	// Locks is the number of distinct lock nodes observed (weak-locks by
	// (kind,id) acquisition site identity collapse to their table ID;
	// real mutexes are keyed by their lock() argument expression).
	Locks int `json:"locks"`

	// Edges is the number of distinct order edges (A held while B
	// acquired).
	Edges int `json:"edges"`

	// Cycles enumerates the strongly connected lock groups that admit a
	// deadlock; empty when deadlock-freedom is certified.
	Cycles [][]string `json:"cycles,omitempty"`

	// TimeoutReliant lists the acquisition sites that violate the static
	// discipline and therefore rely on the runtime timeout mechanism:
	// out-of-order weak-lock acquires and acquires under an
	// unanalyzable (indirect) call.
	TimeoutReliant []string `json:"timeout_reliant,omitempty"`
}

// Certify checks the instrumented source against the race report the
// instrumentation was derived from (for "+mhp" configurations, the
// MHP-refined report). It is independent of the instrumenter's internal
// state: everything is recomputed from the report and the source text.
//
// The returned certificate is a pure function of (rep, instrumentedSrc),
// so it is byte-identical across analysis worker counts. An error means
// the instrumented source did not even parse or type-check — a
// translation failure more basic than any certificate check.
func Certify(rep *relay.Report, instrumentedSrc, program, config string) (*Certificate, error) {
	file, err := parser.Parse(program+".chimera", instrumentedSrc)
	if err != nil {
		return nil, fmt.Errorf("certify %s: reparse: %w", program, err)
	}
	info, err := types.Check(file)
	if err != nil {
		return nil, fmt.Errorf("certify %s: recheck: %w", program, err)
	}

	an := analyze(info)

	cert := &Certificate{Schema: Schema, Program: program, Config: config}
	cert.Balance = an.balanceResult()
	cert.Order = an.orderResult()
	cert.Coverage = checkCoverage(rep, an)
	cert.Discharge = checkDischarge(rep)
	cert.OK = cert.Coverage.OK && cert.Balance.OK && cert.Order.OK && cert.Discharge.OK
	return cert, nil
}

// Render serializes a certificate with stable formatting (trailing
// newline included) for writing to disk and byte-comparison in tests.
func Render(c *Certificate) ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Summary renders a one-line human-readable verdict.
func (c *Certificate) Summary() string {
	verdict := "OK"
	if !c.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("certificate %s: %s/%s coverage %d/%d pairs (%d components), balance %d function(s) %d violation(s), order %d lock(s) %d edge(s) %d cycle(s) %d timeout-reliant, discharge %d/%d prune(s)",
		verdict, c.Program, c.Config,
		c.Coverage.Covered, c.Coverage.Pairs, c.Coverage.Components,
		c.Balance.Functions, len(c.Balance.Violations),
		c.Order.Locks, c.Order.Edges, len(c.Order.Cycles), len(c.Order.TimeoutReliant),
		c.Discharge.Verified, c.Discharge.Pruned)
}
