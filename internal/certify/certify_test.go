package certify_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/instrument"
	"repro/internal/relay"
)

var update = flag.Bool("update", false, "rewrite golden files")

// prepared caches the expensive per-benchmark pipeline (analysis +
// profile) across the tests in this package.
var (
	prepMu  sync.Mutex
	prepped = map[string]*benchPrep{}
)

type benchPrep struct {
	b    *bench.Benchmark
	prog *core.Program
	inst map[string]*core.Instrumented // by config name
}

func optionsFor(config string) instrument.Options {
	switch config {
	case "instr", "instr+mhp":
		return instrument.NaiveOptions()
	case "all", "all+mhp":
		return instrument.AllOptions()
	}
	panic("unknown config " + config)
}

func prepare(t *testing.T, name string) *benchPrep {
	t.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := prepped[name]; ok {
		return p
	}
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	prog, err := core.Load(b.Name, b.FullSource())
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	p := &benchPrep{b: b, prog: prog, inst: make(map[string]*core.Instrumented)}
	prepped[name] = p
	return p
}

func (p *benchPrep) instrumented(t *testing.T, config string) *core.Instrumented {
	t.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if ip, ok := p.inst[config]; ok {
		return ip
	}
	rep := p.prog.Races
	if config == "instr+mhp" || config == "all+mhp" {
		rep = p.prog.RefinedRaces()
	}
	conc := p.prog.ProfileNonConcurrency(p.b.ProfileWorld, p.b.ProfileRuns, 10_000)
	ip, err := p.prog.InstrumentWith(rep, conc, optionsFor(config))
	if err != nil {
		t.Fatalf("instrument %s/%s: %v", p.b.Name, config, err)
	}
	p.inst[config] = ip
	return ip
}

// TestBenchmarksCertifyClean is the acceptance gate: every benchmark's
// instrumented output must earn a clean certificate — all race pairs
// covered by a common weak-lock, brackets balanced on every path, and
// no lock-order cycles or discipline violations — under both the naive
// and the fully optimized configuration, with and without MHP
// refinement.
func TestBenchmarksCertifyClean(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := prepare(t, b.Name)
			for _, config := range []string{"instr", "instr+mhp", "all", "all+mhp"} {
				ip := p.instrumented(t, config)
				cert, err := certify.Certify(ip.Rep, ip.Report.Source, b.Name, config)
				if err != nil {
					t.Fatalf("%s/%s: certify error: %v", b.Name, config, err)
				}
				if !cert.OK {
					out, _ := certify.Render(cert)
					t.Errorf("%s/%s: certificate failed:\n%s", b.Name, config, out)
				}
			}
		})
	}
}

// TestCertificateDeterministic asserts the certificate is a pure
// function of (report, instrumented source): byte-identical between a
// sequential and an 8-worker analysis of the same benchmark.
func TestCertificateDeterministic(t *testing.T) {
	b := bench.ByName("water")
	certs := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		prog, err := core.LoadParallel(b.Name, b.FullSource(), workers)
		if err != nil {
			t.Fatalf("load (workers=%d): %v", workers, err)
		}
		conc := prog.ProfileNonConcurrency(b.ProfileWorld, b.ProfileRuns, 10_000)
		ip, err := prog.InstrumentWith(prog.RefinedRaces(), conc, instrument.AllOptions())
		if err != nil {
			t.Fatalf("instrument (workers=%d): %v", workers, err)
		}
		cert, _, err := ip.Certify("all+mhp")
		if err != nil {
			t.Fatalf("certify (workers=%d): %v", workers, err)
		}
		out, err := certify.Render(cert)
		if err != nil {
			t.Fatalf("render: %v", err)
		}
		certs[i] = out
	}
	if !bytes.Equal(certs[0], certs[1]) {
		t.Errorf("certificates differ between -parallel 1 and -parallel 8:\n--- 1 ---\n%s--- 8 ---\n%s", certs[0], certs[1])
	}
}

// TestCertificateGolden pins the certificate JSON schema on a small
// benchmark. Regenerate with -update.
func TestCertificateGolden(t *testing.T) {
	p := prepare(t, "aget")
	ip := p.instrumented(t, "all+mhp")
	cert, _, err := ip.Certify("all+mhp")
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	got, err := certify.Render(cert)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	golden := filepath.Join("testdata", "aget_all_mhp.cert.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("certificate differs from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestDischargeFailClosed doctors a precision-refined report by moving a
// pair the precision layer KEPT into Pruned under each discharge reason
// (plus one unknown reason): the discharge check must refuse to re-derive
// every one of them. The genuine precision report certifies clean first
// (the control), so a failure isolates the planted lie.
func TestDischargeFailClosed(t *testing.T) {
	p := prepare(t, "aget")
	prec := escape.Refine(p.prog.Races)
	if len(prec.Pruned) == 0 {
		t.Fatal("fixture drift: precision layer pruned nothing on aget")
	}
	if len(prec.Pairs) == 0 {
		t.Fatal("fixture drift: precision layer kept no pairs on aget")
	}
	conc := p.prog.ProfileNonConcurrency(p.b.ProfileWorld, p.b.ProfileRuns, 10_000)
	ip, err := p.prog.InstrumentWith(prec, conc, instrument.AllOptions())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	control, err := certify.Certify(prec, ip.Report.Source, "aget", "all+precision")
	if err != nil {
		t.Fatalf("certify control: %v", err)
	}
	if !control.OK || control.Discharge.Verified != control.Discharge.Pruned || control.Discharge.Pruned == 0 {
		out, _ := certify.Render(control)
		t.Fatalf("control: genuine precision report failed certification:\n%s", out)
	}

	for _, tc := range []struct {
		reason string
		diag   string
	}{
		{"escape", "is thread-shared"},
		{"read-only", "written after the first spawn"},
		{"must-lock", "no common grounded lock"},
		{"frobnicate", "unknown prune reason"},
	} {
		t.Run(tc.reason, func(t *testing.T) {
			doctored := *prec
			doctored.Pairs = prec.Pairs[1:]
			doctored.Pruned = append(append([]relay.PrunedPair{}, prec.Pruned...),
				relay.PrunedPair{Pair: prec.Pairs[0], Reason: tc.reason})
			cert, err := certify.Certify(&doctored, ip.Report.Source, "aget", "all+precision")
			if err != nil {
				t.Fatalf("certify: %v", err)
			}
			if cert.OK || cert.Discharge.OK {
				out, _ := certify.Render(cert)
				t.Fatalf("doctored prune (%s) certified clean:\n%s", tc.reason, out)
			}
			found := false
			for _, f := range cert.Discharge.Failures {
				if strings.Contains(f, tc.diag) {
					found = true
				}
			}
			if !found {
				t.Errorf("no discharge failure containing %q; got %q", tc.diag, cert.Discharge.Failures)
			}
		})
	}
}

// loadNegative analyzes the negative-fixture original program; its race
// report is what every broken variant is certified against.
func loadNegative(t *testing.T) *core.Program {
	t.Helper()
	orig, err := os.ReadFile(filepath.Join("testdata", "negative", "orig.mc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Load("negative", string(orig))
	if err != nil {
		t.Fatalf("load negative fixture: %v", err)
	}
	return prog
}

// TestNegativeFixturesFailClosed feeds hand-broken instrumented programs
// to the certifier: each must fail its targeted check with a
// deterministic diagnostic. The genuine instrumenter output for the same
// program certifies clean (the control), so a failure here isolates the
// hand-planted defect rather than fixture drift.
func TestNegativeFixturesFailClosed(t *testing.T) {
	prog := loadNegative(t)

	ip, err := prog.InstrumentWith(prog.Races, nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatalf("instrument control: %v", err)
	}
	control, _, err := ip.Certify("instr")
	if err != nil {
		t.Fatalf("certify control: %v", err)
	}
	if !control.OK {
		out, _ := certify.Render(control)
		t.Fatalf("control: genuine instrumentation failed certification:\n%s", out)
	}

	cases := []struct {
		file string
		// diag must appear in the targeted check's diagnostics.
		check func(c *certify.Certificate) (ok bool, diags []string)
		diag  string
	}{
		{
			file:  "broken_release.mc",
			check: func(c *certify.Certificate) (bool, []string) { return c.Balance.OK, c.Balance.Violations },
			diag:  "held at exit",
		},
		{
			file: "broken_uncovered.mc",
			check: func(c *certify.Certificate) (bool, []string) {
				var rs []string
				for _, u := range c.Coverage.Uncovered {
					rs = append(rs, u.Reason)
				}
				return c.Coverage.OK, rs
			},
			diag: "no common weak-lock",
		},
		{
			file:  "broken_order.mc",
			check: func(c *certify.Certificate) (bool, []string) { return c.Order.OK, c.Order.TimeoutReliant },
			diag:  "out of order",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "negative", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			certA, err := certify.Certify(prog.Races, string(src), "negative", "instr")
			if err != nil {
				t.Fatalf("certify: %v", err)
			}
			if certA.OK {
				out, _ := certify.Render(certA)
				t.Fatalf("broken fixture certified clean:\n%s", out)
			}
			ok, diags := tc.check(certA)
			if ok {
				out, _ := certify.Render(certA)
				t.Fatalf("targeted check unexpectedly passed:\n%s", out)
			}
			found := false
			for _, d := range diags {
				if strings.Contains(d, tc.diag) {
					found = true
				}
			}
			if !found {
				t.Errorf("no diagnostic containing %q; got %q", tc.diag, diags)
			}
			// The diagnostic must be deterministic: re-certifying yields
			// a byte-identical certificate.
			certB, err := certify.Certify(prog.Races, string(src), "negative", "instr")
			if err != nil {
				t.Fatalf("re-certify: %v", err)
			}
			ra, _ := certify.Render(certA)
			rb, _ := certify.Render(certB)
			if !bytes.Equal(ra, rb) {
				t.Errorf("certificate not deterministic:\n--- first ---\n%s--- second ---\n%s", ra, rb)
			}
		})
	}
}
