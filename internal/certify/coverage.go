package certify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minic/ast"
	"repro/internal/relay"
)

// The coverage check re-establishes the instrumenter's central claim —
// every race pair is protected by a common weak-lock — without using the
// instrumenter's node tables. The difficulty is that the instrumented
// source is a REPARSE: its AST has fresh node IDs and positions, so the
// report's racy nodes (original-program IDs) cannot be looked up
// directly. Instead each racy access is located textually.
//
// A bare expression text like "segwords" is too ambiguous — the same
// variable legitimately appears unguarded at non-racy sites (e.g. reads
// after all joins), and even whole statements repeat verbatim (radix
// runs `int my_key = (kf[j] >> shift) & mask;` once per barrier phase
// under different locks). Two facts pin an access down:
//
//   - the report records each access's anchor — its innermost simple
//     statement, or the if/while/for whose condition holds it — and the
//     instrumenter never rewrites a racy statement's text;
//   - the instrumenter inserts statements but never reorders or deletes
//     the original ones, so the k-th occurrence of a statement text in
//     execution-order walk of the original function corresponds to the
//     k-th occurrence in the instrumented function.
//
// An occurrence of the racy expression therefore counts if it appears in
// the ordinal-matched anchor statement (or condition), or inside any
// "__wlc"/"__wlh"/"__wlr" capture temp — those synthesized declarations
// carry original condition/call/return expressions, so one of them may
// BE the racy occurrence after lowering; including them can only shrink
// the credited lockset (conservative). The access is credited with the
// weak-locks held at ALL counted occurrences (intersection): when we
// cannot tell which occurrence is the racy one, the least-protected one
// wins and the pair fails closed. If the anchor cannot be located at all
// (lowered away), the check falls back to intersecting over every
// occurrence of the expression text in the function — strictly more
// conservative. Occurrences inside wl_acquire/wl_release operands and
// "__wlb" loop-bound captures (new reads the instrumenter synthesized,
// not the original access) are never counted.

// anchorKind distinguishes how an access is anchored in the original
// program.
type anchorKind int

const (
	anchorStmt anchorKind = iota // innermost simple statement
	anchorCond                   // if/while/for condition expression
	anchorNone                   // anchor unavailable: whole-function fallback
)

// accessSite is the locatable identity of one racy access: the ordinal-th
// statement (or condition) with this text, in execution-order walk of
// the access's function.
type accessSite struct {
	fn         string
	exprText   string
	anchorKind anchorKind
	anchorText string
	ordinal    int
}

// checkCoverage certifies every race pair of rep against the dataflow
// snapshots in an.
func checkCoverage(rep *relay.Report, an *analysis) CoverageResult {
	res := CoverageResult{Pairs: len(rep.Pairs)}
	res.Components = componentCount(rep)
	if len(rep.Pairs) == 0 {
		res.OK = true
		return res
	}

	sites, texts := resolveSites(rep)

	// Intersections of held weak-lock ID sets, one slot per distinct
	// site; located marks sites with at least one counted occurrence.
	held := make(map[accessSite][]int64)
	located := make(map[accessSite]bool)

	perFn := make(map[string][]accessSite)
	for _, s := range sites {
		perFn[s.fn] = append(perFn[s.fn], s)
	}

	for _, fa := range an.funcs {
		wanted := perFn[fa.fn.Name]
		if len(wanted) == 0 {
			continue
		}
		scanAnchored(fa, wanted, held, located)
	}
	// Whole-function fallback for anchors that were lowered away.
	for _, fa := range an.funcs {
		var missing []accessSite
		for _, s := range perFn[fa.fn.Name] {
			if !located[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			scanFallback(fa, missing, held, located)
		}
	}

	for _, p := range rep.Pairs {
		sa, sb := sites[p.A], sites[p.B]
		va, vb := texts[p.A.Node], texts[p.B.Node]
		if !located[sa] || !located[sb] {
			miss := va
			if located[sa] {
				miss = vb
			}
			res.Uncovered = append(res.Uncovered, UncoveredPair{
				A: accessString(p.A, va), B: accessString(p.B, vb),
				Reason: fmt.Sprintf("access %q not located in instrumented source", miss),
			})
			continue
		}
		if len(intersectIDs(held[sa], held[sb])) == 0 {
			res.Uncovered = append(res.Uncovered, UncoveredPair{
				A: accessString(p.A, va), B: accessString(p.B, vb),
				Reason: fmt.Sprintf("no common weak-lock (A holds %s, B holds %s)",
					idSetString(held[sa]), idSetString(held[sb])),
			})
			continue
		}
		res.Covered++
	}

	sort.Slice(res.Uncovered, func(i, j int) bool {
		a, b := res.Uncovered[i], res.Uncovered[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.Reason < b.Reason
	})
	res.OK = res.Covered == res.Pairs
	return res
}

// execWalk visits a function body's simple statements and branch
// conditions in execution order — the order the instrumenter preserves.
// A for's post-statement is visited after its body, matching the lowered
// while(1) form where the post migrates to the body's end. onCond
// receives the anchoring control statement along with the condition.
func execWalk(body *ast.Block, onStmt func(ast.Stmt), onCond func(anchor ast.Stmt, cond ast.Expr)) {
	var walkStmt func(s ast.Stmt)
	walkList := func(b *ast.Block) {
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			walkList(s)
		case *ast.IfStmt:
			onCond(s, s.CondE)
			walkList(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.WhileStmt:
			onCond(s, s.CondE)
			walkList(s.Body)
		case *ast.ForStmt:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.CondE != nil {
				onCond(s, s.CondE)
			}
			walkList(s.Body)
			if s.Post != nil {
				walkStmt(s.Post)
			}
		case *ast.BreakStmt, *ast.ContinueStmt:
			// No expressions.
		default:
			onStmt(s)
		}
	}
	walkList(body)
}

func stmtText(s ast.Stmt) string {
	return strings.TrimSuffix(ast.PrintStmt(s, 0), "\n")
}

// scanAnchored walks one instrumented function in execution order,
// counting same-text occurrences, and credits each wanted site with the
// weak-locks held at its ordinal-matched anchor (plus every capture-temp
// occurrence of its expression).
func scanAnchored(fa *fnAnalysis, wanted []accessSite, held map[accessSite][]int64, located map[accessSite]bool) {
	record := func(s accessSite, ids []int64) {
		if !located[s] {
			located[s] = true
			held[s] = ids
			return
		}
		held[s] = intersectIDs(held[s], ids)
	}
	scanFor := func(root ast.Expr, ids []int64, match func(accessSite) bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			ex, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			t := ast.PrintExpr(ex)
			for _, s := range wanted {
				if s.exprText == t && match(s) {
					record(s, ids)
				}
			}
			return true
		})
	}

	stmtSeen := make(map[string]int)
	condSeen := make(map[string]int)

	execWalk(fa.fn.Decl.Body,
		func(s ast.Stmt) {
			if isWlOpStmt(fa, s) {
				return
			}
			if d, ok := s.(*ast.DeclStmt); ok && isWlTemp(d.Decl.Name) {
				if strings.HasPrefix(d.Decl.Name, "__wlb") {
					return
				}
				ids, reachable := fa.stmtHeld[s]
				if reachable && d.Decl.Init != nil {
					scanFor(d.Decl.Init, ids, func(accessSite) bool { return true })
				}
				return
			}
			text := stmtText(s)
			ord := stmtSeen[text]
			stmtSeen[text] = ord + 1
			ids, reachable := fa.stmtHeld[s]
			if !reachable {
				return
			}
			match := func(site accessSite) bool {
				return site.anchorKind == anchorStmt && site.anchorText == text && site.ordinal == ord
			}
			scanStmt(s, ids, func(e ast.Expr, ids []int64) { scanFor(e, ids, match) })
		},
		func(_ ast.Stmt, cond ast.Expr) {
			text := ast.PrintExpr(cond)
			ord := condSeen[text]
			condSeen[text] = ord + 1
			ids, reachable := fa.condHeld[cond]
			if !reachable {
				return
			}
			match := func(site accessSite) bool {
				return site.anchorKind == anchorCond && site.anchorText == text && site.ordinal == ord
			}
			scanFor(cond, ids, match)
		})
}

// scanFallback intersects over every countable occurrence of each
// missing site's expression text, anywhere in the function.
func scanFallback(fa *fnAnalysis, missing []accessSite, held map[accessSite][]int64, located map[accessSite]bool) {
	record := func(s accessSite, ids []int64) {
		if !located[s] {
			located[s] = true
			held[s] = ids
			return
		}
		held[s] = intersectIDs(held[s], ids)
	}
	scanAll := func(root ast.Expr, ids []int64) {
		ast.Inspect(root, func(n ast.Node) bool {
			ex, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			t := ast.PrintExpr(ex)
			for _, s := range missing {
				if s.exprText == t {
					record(s, ids)
				}
			}
			return true
		})
	}
	for _, b := range fa.g.Blocks {
		for _, s := range b.Stmts {
			ids, reachable := fa.stmtHeld[s]
			if !reachable {
				continue
			}
			if d, ok := s.(*ast.DeclStmt); ok && strings.HasPrefix(d.Decl.Name, "__wlb") {
				continue
			}
			// Other capture temps (__wlc/__wlh/__wlr) participate like
			// ordinary statements here.
			scanStmt(s, ids, scanAll)
		}
		for _, c := range b.Conds {
			if ids, ok := fa.condHeld[c]; ok {
				scanAll(c, ids)
			}
		}
	}
}

// isWlOpStmt reports whether s is a wl_acquire/wl_release expression
// statement (instrumentation apparatus, carrying no original accesses).
func isWlOpStmt(fa *fnAnalysis, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.Call)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name == "wl_acquire" || id.Name == "wl_release"
	}
	return false
}

func isWlTemp(name string) bool {
	return strings.HasPrefix(name, "__wl")
}

// resolveSites maps every access mentioned by the report's pairs to its
// locatable site, printing the racy lvalue and its anchor from the
// ORIGINAL program's AST and computing the anchor's same-text ordinal.
func resolveSites(rep *relay.Report) (map[*relay.Access]accessSite, map[ast.NodeID]string) {
	need := make(map[ast.NodeID]bool)
	fns := make(map[string]*ast.FuncDecl)
	for _, p := range rep.Pairs {
		for _, a := range []*relay.Access{p.A, p.B} {
			need[a.Node] = true
			need[a.Stmt] = true
			if a.Fn.Decl != nil {
				fns[a.Fn.Name] = a.Fn.Decl
			}
		}
	}
	nodes := make(map[ast.NodeID]ast.Node, len(need))
	ast.InspectFile(rep.Info.File, func(n ast.Node) bool {
		if need[n.ID()] {
			nodes[n.ID()] = n
		}
		return true
	})

	ordinals := make(map[string]*ordIndex, len(fns))
	for name, decl := range fns {
		idx := &ordIndex{stmts: make(map[string][]ast.NodeID), conds: make(map[string][]ast.NodeID)}
		execWalk(decl.Body,
			func(s ast.Stmt) {
				t := stmtText(s)
				idx.stmts[t] = append(idx.stmts[t], s.ID())
			},
			func(anchor ast.Stmt, cond ast.Expr) {
				t := ast.PrintExpr(cond)
				idx.conds[t] = append(idx.conds[t], anchor.ID())
			})
		ordinals[name] = idx
	}
	ordinalOf := func(ids []ast.NodeID, want ast.NodeID) int {
		for i, id := range ids {
			if id == want {
				return i
			}
		}
		return -1
	}

	texts := make(map[ast.NodeID]string)
	sites := make(map[*relay.Access]accessSite)
	for _, p := range rep.Pairs {
		for _, a := range []*relay.Access{p.A, p.B} {
			if _, done := sites[a]; done {
				continue
			}
			site := accessSite{fn: a.Fn.Name, anchorKind: anchorNone}
			if e, ok := nodes[a.Node].(ast.Expr); ok {
				site.exprText = ast.PrintExpr(e)
				texts[a.Node] = site.exprText
			}
			idx := ordinals[a.Fn.Name]
			switch anchor := nodes[a.Stmt].(type) {
			case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.ExprStmt, *ast.ReturnStmt:
				text := stmtText(anchor.(ast.Stmt))
				if ord := ordinalOf(idx.stmts[text], a.Stmt); ord >= 0 {
					site.anchorKind, site.anchorText, site.ordinal = anchorStmt, text, ord
				}
			case *ast.IfStmt:
				site = condSite(site, idx, ast.PrintExpr(anchor.CondE), a.Stmt)
			case *ast.WhileStmt:
				site = condSite(site, idx, ast.PrintExpr(anchor.CondE), a.Stmt)
			case *ast.ForStmt:
				if anchor.CondE != nil {
					site = condSite(site, idx, ast.PrintExpr(anchor.CondE), a.Stmt)
				}
			}
			sites[a] = site
		}
	}
	return sites, texts
}

// ordIndex holds one function's execution-order ordinals: statement
// text -> stmt node IDs, and condition text -> anchoring control-stmt
// node IDs.
type ordIndex struct {
	stmts map[string][]ast.NodeID
	conds map[string][]ast.NodeID
}

func condSite(site accessSite, idx *ordIndex, text string, anchorID ast.NodeID) accessSite {
	for i, id := range idx.conds[text] {
		if id == anchorID {
			site.anchorKind, site.anchorText, site.ordinal = anchorCond, text, i
			break
		}
	}
	return site
}

// scanStmt feeds a statement's expressions to scan.
func scanStmt(s ast.Stmt, ids []int64, scan func(ast.Expr, []int64)) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		if s.Decl.Init != nil {
			scan(s.Decl.Init, ids)
		}
	case *ast.AssignStmt:
		scan(s.LHS, ids)
		scan(s.RHS, ids)
	case *ast.IncDecStmt:
		scan(s.X, ids)
	case *ast.ExprStmt:
		scan(s.X, ids)
	case *ast.ReturnStmt:
		if s.X != nil {
			scan(s.X, ids)
		}
	}
}

// componentCount unions the race pairs' endpoints and counts the
// connected components of the pair graph — the certifier's independent
// recomputation of the instrumenter's lock-component grouping.
func componentCount(rep *relay.Report) int {
	parent := make(map[ast.NodeID]ast.NodeID)
	var find func(x ast.NodeID) ast.NodeID
	find = func(x ast.NodeID) ast.NodeID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(x ast.NodeID) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, p := range rep.Pairs {
		add(p.A.Node)
		add(p.B.Node)
		ra, rb := find(p.A.Node), find(p.B.Node)
		if ra != rb {
			parent[ra] = rb
		}
	}
	n := 0
	for x := range parent {
		if find(x) == x {
			n++
		}
	}
	return n
}

func accessString(a *relay.Access, text string) string {
	rw := "read"
	if a.Write {
		rw = "write"
	}
	if text == "" {
		text = "?"
	}
	return fmt.Sprintf("%s %s in %s at %s", rw, text, a.Fn.Name, a.Pos)
}

func intersectIDs(a, b []int64) []int64 {
	in := make(map[int64]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []int64
	for _, x := range a {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

func idSetString(ids []int64) string {
	if len(ids) == 0 {
		return "{}"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = weakName(id)
	}
	return "{" + strings.Join(parts, " ") + "}"
}
