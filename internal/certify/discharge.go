package certify

// The discharge check validates the static precision layer the same way
// coverage validates the instrumenter: by re-deriving every judgment
// instead of trusting the pass's bookkeeping. For each race pair the
// precision layer pruned (internal/escape), the stated justification is
// recomputed here from the analysis artifacts the pruner itself consumed
// — the materialized root accesses, the points-to object graph, the call
// graph and the lock representative grammar — with none of the pruner's
// cached fact tables in the loop. A pair whose justification does not
// re-derive fails the certificate: a wrongly discharged pair gets no
// weak lock, so this is the check that keeps "fewer weak locks" from
// silently meaning "unsound replay".
//
// MHP prunes ("pre-fork", "join-ordered", "barrier-phase") are a
// different pass with its own validation story and are counted but
// trusted here; any reason this check does not recognize fails closed.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/relay"
)

// DischargeResult reports whether every precision-layer prune's
// justification independently re-derives.
type DischargeResult struct {
	OK bool `json:"ok"`

	// Pruned and Verified count the precision prunes checked and
	// re-derived; Trusted counts MHP prunes outside this check's scope.
	Pruned   int `json:"pruned"`
	Verified int `json:"verified"`
	Trusted  int `json:"trusted"`

	// Failures lists the prunes whose justification did not re-derive.
	Failures []string `json:"failures,omitempty"`
}

// mhpReasons are the prune reasons produced by internal/mhp, outside the
// discharge check's scope.
var mhpReasons = map[string]bool{
	"pre-fork":      true,
	"join-ordered":  true,
	"barrier-phase": true,
}

func checkDischarge(rep *relay.Report) DischargeResult {
	res := DischargeResult{OK: true}
	var prunes []relay.PrunedPair
	for _, pp := range rep.Pruned {
		if mhpReasons[pp.Reason] {
			res.Trusted++
			continue
		}
		prunes = append(prunes, pp)
	}
	res.Pruned = len(prunes)
	if len(prunes) == 0 {
		return res
	}
	d := newDischarger(rep)
	for _, pp := range prunes {
		if err := d.verify(pp); err != nil {
			res.Failures = append(res.Failures,
				fmt.Sprintf("[%s] %s / %s: %v", pp.Reason,
					accessString(pp.Pair.A, ""), accessString(pp.Pair.B, ""), err))
			continue
		}
		res.Verified++
	}
	res.OK = len(res.Failures) == 0
	return res
}

// discharger re-derives the precision layer's three fact kinds from the
// report's raw artifacts. Every precondition gap makes the relevant
// verification fail (never pass): a missing main or capped summaries
// leave valid=false, an unplaceable spawn leaves firstSpawn=-1 (every
// write then counts as post-spawn), an unresolvable lock path simply
// contributes no grounded key.
type discharger struct {
	rep   *relay.Report
	valid bool

	accs  []relay.RootAccess
	multi map[*types.FuncInfo]bool
	main  *types.FuncInfo

	shared    map[pointsto.ObjID]bool
	postWrite map[pointsto.ObjID]bool

	byNode map[ast.NodeID][]relay.RootAccess
	subst  map[string]string
}

func newDischarger(rep *relay.Report) *discharger {
	d := &discharger{rep: rep, main: rep.Info.Funcs["main"]}
	if d.main == nil || !rep.SummariesComplete() {
		return d
	}
	d.valid = true
	d.accs = rep.RootAccesses()
	d.multi = rep.MultiInstanceRoots()
	d.byNode = make(map[ast.NodeID][]relay.RootAccess)
	for _, ra := range d.accs {
		d.byNode[ra.Acc.Node] = append(d.byNode[ra.Acc.Node], ra)
	}
	d.deriveShared()
	d.derivePostSpawnWrites()
	d.deriveSubst()
	return d
}

func (d *discharger) verify(pp relay.PrunedPair) error {
	if !d.valid {
		return fmt.Errorf("precision preconditions do not hold (no main, or capped summaries)")
	}
	switch pp.Reason {
	case "escape":
		return d.verifyEscape(pp.Pair)
	case "must-lock":
		return d.verifyMustLock(pp.Pair)
	case "read-only":
		return d.verifyReadOnly(pp.Pair)
	}
	return fmt.Errorf("unknown prune reason %q", pp.Reason)
}

// verifyEscape re-derives the escape justification: the two accesses must
// share no writable abstract object that is thread-shared.
func (d *discharger) verifyEscape(p *relay.RacePair) error {
	for _, o := range d.witnesses(p) {
		if d.shared[o] {
			return fmt.Errorf("witness object %s is thread-shared", d.rep.PTA.Obj(o).Name)
		}
	}
	return nil
}

// verifyReadOnly re-derives write-freedom: no thread-shared witness
// object may have a summary-visible write that is not proven pre-spawn.
func (d *discharger) verifyReadOnly(p *relay.RacePair) error {
	for _, o := range d.witnesses(p) {
		if d.shared[o] && d.postWrite[o] {
			return fmt.Errorf("witness object %s is written after the first spawn", d.rep.PTA.Obj(o).Name)
		}
	}
	return nil
}

// witnesses lists the writable abstract objects in both accesses'
// points-to sets — the cells a real race between them could occur on.
func (d *discharger) witnesses(p *relay.RacePair) []pointsto.ObjID {
	in := make(map[pointsto.ObjID]bool, len(p.B.Objs))
	for _, o := range p.B.Objs {
		in[o] = true
	}
	var out []pointsto.ObjID
	for _, o := range p.A.Objs {
		if in[o] && d.rep.PTA.Obj(o).Kind != pointsto.OFunc {
			out = append(out, o)
		}
	}
	return out
}

// deriveShared recomputes the thread-escape fact: objects referenced by
// two concurrently runnable roots or reachable from a spawn argument,
// closed under points-to contents.
func (d *discharger) deriveShared() {
	pta := d.rep.PTA
	d.shared = make(map[pointsto.ObjID]bool)
	roots := make(map[pointsto.ObjID]map[*types.FuncInfo]bool)
	for _, ra := range d.accs {
		for _, o := range ra.Acc.Objs {
			set := roots[o]
			if set == nil {
				set = make(map[*types.FuncInfo]bool)
				roots[o] = set
			}
			set[ra.Root] = true
		}
	}
	var frontier []pointsto.ObjID
	mark := func(o pointsto.ObjID) {
		if !d.shared[o] {
			d.shared[o] = true
			frontier = append(frontier, o)
		}
	}
	for o, set := range roots {
		if len(set) > 1 {
			mark(o)
			continue
		}
		for r := range set {
			if r != d.main && d.multi[r] {
				mark(o)
			}
		}
	}
	for _, o := range pta.SpawnArgPointees() {
		mark(o)
	}
	for len(frontier) > 0 {
		o := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, q := range pta.ContentsPointees(o) {
			mark(q)
		}
	}
}

// derivePostSpawnWrites recomputes the read-only fact: the objects with a
// summary-visible write not provably ordered before main's first spawn.
// The timeline is main's top-level statement order; a function's position
// is the set of top-level statements whose spawn-free call closure
// reaches it.
func (d *discharger) derivePostSpawnWrites() {
	topIdx := make(map[ast.NodeID]int)
	reach := make(map[*types.FuncInfo]map[int]bool)
	for i, s := range d.main.Decl.Body.Stmts {
		var direct []*types.FuncInfo
		idx := i
		ast.Inspect(s, func(n ast.Node) bool {
			topIdx[n.ID()] = idx
			if call, ok := n.(*ast.Call); ok {
				direct = append(direct, d.callTargets(call)...)
			}
			return true
		})
		closure := make(map[*types.FuncInfo]bool)
		for len(direct) > 0 {
			f := direct[len(direct)-1]
			direct = direct[:len(direct)-1]
			if f == nil || closure[f] {
				continue
			}
			closure[f] = true
			direct = append(direct, d.rep.CG.CalleesOf(f)...)
		}
		for f := range closure {
			if reach[f] == nil {
				reach[f] = make(map[int]bool)
			}
			reach[f][idx] = true
		}
	}

	firstSpawn := -1
	anySpawn := false
	seenSite := make(map[ast.NodeID]bool)
	consider := func(idx int) {
		if firstSpawn < 0 || idx < firstSpawn {
			firstSpawn = idx
		}
	}
	for _, e := range d.rep.CG.Edges {
		if !e.Spawn || seenSite[e.Site.ID()] {
			continue
		}
		seenSite[e.Site.ID()] = true
		anySpawn = true
		if idx, in := topIdx[e.Site.ID()]; in {
			consider(idx)
			continue
		}
		for idx := range reach[e.Caller] {
			consider(idx)
		}
	}
	if !anySpawn {
		firstSpawn = len(d.main.Decl.Body.Stmts)
	}

	d.postWrite = make(map[pointsto.ObjID]bool)
	markAll := func(objs []pointsto.ObjID) {
		for _, o := range objs {
			d.postWrite[o] = true
		}
	}
	for _, ra := range d.accs {
		if !ra.Acc.Write {
			continue
		}
		switch {
		case ra.Root != d.main || firstSpawn < 0:
			markAll(ra.Acc.Objs)
		case ra.Acc.Fn == d.main:
			if idx, in := topIdx[ra.Acc.Node]; !in || idx >= firstSpawn {
				markAll(ra.Acc.Objs)
			}
		default:
			set := reach[ra.Acc.Fn]
			if len(set) == 0 {
				markAll(ra.Acc.Objs)
				continue
			}
			for idx := range set {
				if idx >= firstSpawn {
					markAll(ra.Acc.Objs)
					break
				}
			}
		}
	}
}

func (d *discharger) callTargets(call *ast.Call) []*types.FuncInfo {
	info := d.rep.Info
	if target := info.CallTargets[call.ID()]; target != nil {
		if target.Kind == types.ObjFunc {
			return []*types.FuncInfo{info.Funcs[target.Name]}
		}
		return nil
	}
	return d.rep.PTA.CallTargets[call.ID()]
}

// deriveSubst recomputes the must-alias substitution: a single-assignment
// (declaration-initialized, never reassigned), address-free, unshadowed
// local always holds its initializer's value, so loads of it can be
// rewritten to the initializer's lock representative.
func (d *discharger) deriveSubst() {
	info := d.rep.Info
	d.subst = make(map[string]string)
	writes := make(map[*types.Object]int)
	ast.InspectFile(info.File, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			if o := info.Objects[s.Decl.ID()]; o != nil && s.Decl.Init != nil {
				writes[o]++
			}
		case *ast.AssignStmt:
			if id, ok := s.LHS.(*ast.Ident); ok {
				if o := info.Uses[id.ID()]; o != nil {
					writes[o]++
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				if o := info.Uses[id.ID()]; o != nil {
					writes[o]++
				}
			}
		}
		return true
	})
	for _, fn := range info.FuncList {
		count := make(map[string]int)
		var decls []*ast.DeclStmt
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeclStmt); ok {
				if o := info.Objects[ds.Decl.ID()]; o != nil && o.Kind == types.ObjLocal {
					count[o.Name]++
					decls = append(decls, ds)
				}
			}
			return true
		})
		for _, ds := range decls {
			o := info.Objects[ds.Decl.ID()]
			if o == nil || o.AddrTaken || ds.Decl.Init == nil ||
				count[o.Name] != 1 || writes[o] != 1 {
				continue
			}
			v, ok := d.rep.LockRep(ds.Decl.Init, fn)
			if !ok {
				continue
			}
			key := "ld(L#" + fn.Name + "#" + o.Name + ")"
			if v != key {
				d.subst[key] = v
			}
		}
	}
}

// verifyMustLock re-derives the must-lock justification: every root
// combination of the two access nodes that RELAY's own filters admit
// must hold a common grounded lock key after must-alias sharpening, and
// at least one such combination must exist.
func (d *discharger) verifyMustLock(p *relay.RacePair) error {
	as, bs := d.byNode[p.A.Node], d.byNode[p.B.Node]
	combos := 0
	for _, ra := range as {
		for _, rb := range bs {
			if !ra.Acc.Write && !rb.Acc.Write {
				continue
			}
			if ra.Acc.Node == rb.Acc.Node && ra.Root == rb.Root && !d.multi[ra.Root] {
				continue
			}
			if ra.Root == rb.Root && (ra.Root.Name == "main" || !d.multi[ra.Root]) {
				continue
			}
			combos++
			if !d.commonGrounded(ra.Acc.Lockset, rb.Acc.Lockset) {
				return fmt.Errorf("roots %s/%s hold no common grounded lock", ra.Root.Name, rb.Root.Name)
			}
		}
	}
	if combos == 0 {
		return fmt.Errorf("no admissible root combination materializes the pair")
	}
	return nil
}

func (d *discharger) commonGrounded(la, lb []string) bool {
	ga := d.groundedKeys(la)
	if len(ga) == 0 {
		return false
	}
	gb := d.groundedKeys(lb)
	for _, k := range gb {
		for _, j := range ga {
			if k == j {
				return true
			}
		}
	}
	return false
}

// groundedKeys sharpens a lockset and keeps the grounded representatives:
// pure G#-rooted static address paths with no loads, parameter residue or
// local frames — paths that name the same concrete mutex in every thread.
func (d *discharger) groundedKeys(locks []string) []string {
	keys := make([]string, 0, len(d.subst))
	for k := range d.subst {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, l := range locks {
		for round := 0; round < 8; round++ {
			next := l
			for _, k := range keys {
				next = strings.ReplaceAll(next, k, d.subst[k])
			}
			if next == l {
				break
			}
			l = next
		}
		if strings.HasPrefix(l, "G#") && !strings.Contains(l, "ld(") &&
			!strings.Contains(l, "P@") && !strings.Contains(l, "L#") {
			out = append(out, l)
		}
	}
	return out
}
