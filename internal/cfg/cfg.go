// Package cfg builds control-flow graphs for MiniC functions and computes
// dominators and natural loops.
//
// MiniC is fully structured (no goto), so every natural loop corresponds to
// a syntactic WhileStmt or ForStmt; the CFG records that correspondence.
// The instrumenter uses CFG basic blocks to pick basic-block weak-lock
// granularity, and the symbolic bounds analysis uses loop membership.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/minic/ast"
)

// Block is a basic block: a maximal straight-line sequence of simple
// statements.
type Block struct {
	ID    int
	Stmts []ast.Stmt // simple statements only (no control flow)
	Succs []*Block
	Preds []*Block

	// Conds are the branch condition expressions evaluated at the end of
	// this block, after Stmts: an if's condition is evaluated in the block
	// the IfStmt was reached in, a loop's condition in its head block.
	// Dataflow clients (e.g. the certifier's held-lock analysis) use this
	// to attribute condition-expression reads to the block's exit state.
	Conds []ast.Expr

	// Label describes the block's role for debugging ("entry", "exit",
	// "loop.head", ...).
	Label string

	// LoopStmt is set on the head block of a loop to the syntactic loop
	// statement (WhileStmt or ForStmt).
	LoopStmt ast.Stmt
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *ast.FuncDecl
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Loop is a natural loop: its head block, its body blocks, and the
// syntactic loop statement it corresponds to.
type Loop struct {
	Head *Block
	Body map[*Block]bool
	Stmt ast.Stmt // the WhileStmt/ForStmt
}

type builder struct {
	g *Graph

	// break/continue targets of the innermost enclosing loop
	breakTo []*Block
	contTo  []*Block
}

// Build constructs the CFG for fn.
func Build(fn *ast.FuncDecl) *Graph {
	b := &builder{g: &Graph{Fn: fn}}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.g.Entry, b.g.Exit = entry, exit

	last := b.stmts(fn.Body.Stmts, entry)
	if last != nil {
		b.link(last, exit)
	}
	b.prune()
	return b.g
}

func (b *builder) newBlock(label string) *Block {
	blk := &Block{ID: len(b.g.Blocks), Label: label}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmts lowers a statement list starting in cur; it returns the block where
// control continues, or nil if control cannot fall through.
func (b *builder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code still gets blocks so analyses see it.
			cur = b.newBlock("unreachable")
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.Block:
		return b.stmts(s.Stmts, cur)

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.ExprStmt:
		cur.Stmts = append(cur.Stmts, s)
		return cur

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.link(cur, b.g.Exit)
		return nil

	case *ast.BreakStmt:
		cur.Stmts = append(cur.Stmts, s)
		if n := len(b.breakTo); n > 0 {
			b.link(cur, b.breakTo[n-1])
		} else {
			b.link(cur, b.g.Exit)
		}
		return nil

	case *ast.ContinueStmt:
		cur.Stmts = append(cur.Stmts, s)
		if n := len(b.contTo); n > 0 {
			b.link(cur, b.contTo[n-1])
		} else {
			b.link(cur, b.g.Exit)
		}
		return nil

	case *ast.IfStmt:
		// cur evaluates the condition (kept in cur's statements implicitly;
		// conditions are expressions, not statements).
		cur.Conds = append(cur.Conds, s.CondE)
		thenB := b.newBlock("if.then")
		b.link(cur, thenB)
		afterB := b.newBlock("if.after")
		thenEnd := b.stmts(s.Then.Stmts, thenB)
		if thenEnd != nil {
			b.link(thenEnd, afterB)
		}
		if s.Else != nil {
			elseB := b.newBlock("if.else")
			b.link(cur, elseB)
			elseEnd := b.stmt(s.Else, elseB)
			if elseEnd != nil {
				b.link(elseEnd, afterB)
			}
		} else {
			b.link(cur, afterB)
		}
		return afterB

	case *ast.WhileStmt:
		head := b.newBlock("loop.head")
		head.LoopStmt = s
		head.Conds = append(head.Conds, s.CondE)
		b.link(cur, head)
		body := b.newBlock("loop.body")
		after := b.newBlock("loop.after")
		b.link(head, body)
		b.link(head, after)
		b.breakTo = append(b.breakTo, after)
		b.contTo = append(b.contTo, head)
		bodyEnd := b.stmts(s.Body.Stmts, body)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.contTo = b.contTo[:len(b.contTo)-1]
		if bodyEnd != nil {
			b.link(bodyEnd, head)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock("loop.head")
		head.LoopStmt = s
		if s.CondE != nil {
			head.Conds = append(head.Conds, s.CondE)
		}
		b.link(cur, head)
		body := b.newBlock("loop.body")
		after := b.newBlock("loop.after")
		post := b.newBlock("loop.post")
		b.link(head, body)
		if s.CondE != nil {
			b.link(head, after)
		}
		b.breakTo = append(b.breakTo, after)
		b.contTo = append(b.contTo, post)
		bodyEnd := b.stmts(s.Body.Stmts, body)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.contTo = b.contTo[:len(b.contTo)-1]
		if bodyEnd != nil {
			b.link(bodyEnd, post)
		}
		if s.Post != nil {
			post.Stmts = append(post.Stmts, s.Post)
		}
		b.link(post, head)
		return after
	}
	panic(fmt.Sprintf("cfg: unknown statement %T", s))
}

// prune removes blocks that are empty, unreachable from entry and have no
// role (artifacts of lowering). It preserves IDs' relative order.
func (b *builder) prune() {
	reach := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(x *Block) {
		if reach[x] {
			return
		}
		reach[x] = true
		for _, s := range x.Succs {
			dfs(s)
		}
	}
	dfs(b.g.Entry)
	var kept []*Block
	for _, blk := range b.g.Blocks {
		if reach[blk] || len(blk.Stmts) > 0 || len(blk.Conds) > 0 {
			kept = append(kept, blk)
		}
	}
	for i, blk := range kept {
		blk.ID = i
		// Drop edges to pruned blocks.
		var succs []*Block
		for _, s := range blk.Succs {
			if reach[s] || len(s.Stmts) > 0 || len(s.Conds) > 0 {
				succs = append(succs, s)
			}
		}
		blk.Succs = succs
		var preds []*Block
		for _, p := range blk.Preds {
			if reach[p] || len(p.Stmts) > 0 || len(p.Conds) > 0 {
				preds = append(preds, p)
			}
		}
		blk.Preds = preds
	}
	b.g.Blocks = kept
}

// Dominators computes the immediate dominator of every block reachable from
// entry, using the Cooper–Harvey–Kennedy iterative algorithm. The result
// maps block ID to immediate-dominator block ID; the entry maps to itself
// and unreachable blocks map to -1.
func (g *Graph) Dominators() []int {
	// Reverse post-order.
	order := g.ReversePostOrder()
	rpoIdx := make([]int, len(g.Blocks))
	for i := range rpoIdx {
		rpoIdx[i] = -1
	}
	for i, blk := range order {
		rpoIdx[blk.ID] = i
	}

	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry.ID] = g.Entry.ID

	intersect := func(a, b int) int {
		for a != b {
			for rpoIdx[a] > rpoIdx[b] {
				a = idom[a]
			}
			for rpoIdx[b] > rpoIdx[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			if blk == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range blk.Preds {
				if idom[p.ID] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.ID
				} else {
					newIdom = intersect(p.ID, newIdom)
				}
			}
			if newIdom != -1 && idom[blk.ID] != newIdom {
				idom[blk.ID] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ReversePostOrder returns the blocks reachable from entry in reverse
// post-order.
func (g *Graph) ReversePostOrder() []*Block {
	seen := make(map[*Block]bool)
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == -1 || next == b {
			return b == a
		}
		b = next
	}
}

// NaturalLoops finds natural loops via back edges (edge t->h where h
// dominates t) and returns them with their syntactic loop statements.
func (g *Graph) NaturalLoops() []*Loop {
	idom := g.Dominators()
	var loops []*Loop
	byHead := make(map[*Block]*Loop)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if idom[blk.ID] == -1 || idom[s.ID] == -1 {
				continue
			}
			if !Dominates(idom, s.ID, blk.ID) {
				continue
			}
			// Back edge blk -> s; collect the natural loop body.
			l := byHead[s]
			if l == nil {
				l = &Loop{Head: s, Body: map[*Block]bool{s: true}, Stmt: s.LoopStmt}
				byHead[s] = l
				loops = append(loops, l)
			}
			var stack []*Block
			if !l.Body[blk] {
				l.Body[blk] = true
				stack = append(stack, blk)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !l.Body[p] {
						l.Body[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	return loops
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s:\n", g.Fn.Name)
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "  b%d [%s]", b.ID, b.Label)
		if len(b.Stmts) > 0 {
			fmt.Fprintf(&sb, " %d stmts", len(b.Stmts))
		}
		fmt.Fprintf(&sb, " ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.ID)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
