package cfg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
)

func build(t *testing.T, src, fn string) *Graph {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	fd := f.Func(fn)
	if fd == nil {
		t.Fatalf("no function %s", fn)
	}
	return Build(fd)
}

func TestStraightLine(t *testing.T) {
	g := build(t, `
int f(void) {
    int a = 1;
    int b = 2;
    return a + b;
}`, "f")
	// Everything lands in the entry block, which flows to exit.
	if len(g.Entry.Stmts) != 3 {
		t.Errorf("entry has %d stmts, want 3", len(g.Entry.Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should flow straight to exit")
	}
}

func TestIfDiamond(t *testing.T) {
	g := build(t, `
int f(int x) {
    int r = 0;
    if (x > 0) {
        r = 1;
    } else {
        r = 2;
    }
    return r;
}`, "f")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2 (then/else)", len(g.Entry.Succs))
	}
	idom := g.Dominators()
	// The join block is dominated by the entry.
	for _, b := range g.Blocks {
		if b.Label == "if.after" {
			if !Dominates(idom, g.Entry.ID, b.ID) {
				t.Errorf("entry should dominate join")
			}
			if len(b.Preds) != 2 {
				t.Errorf("join preds = %d, want 2", len(b.Preds))
			}
		}
	}
}

func TestWhileLoop(t *testing.T) {
	g := build(t, `
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s += i;
        i++;
    }
    return s;
}`, "f")
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if _, ok := l.Stmt.(*ast.WhileStmt); !ok {
		t.Errorf("loop stmt is %T, want *ast.WhileStmt", l.Stmt)
	}
	if len(l.Body) < 2 {
		t.Errorf("loop body has %d blocks, want >= 2", len(l.Body))
	}
}

func TestForLoopWithBreakContinue(t *testing.T) {
	g := build(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 3) { continue; }
        if (i == 7) { break; }
        s += i;
    }
    return s;
}`, "f")
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	if _, ok := loops[0].Stmt.(*ast.ForStmt); !ok {
		t.Errorf("loop stmt is %T, want *ast.ForStmt", loops[0].Stmt)
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            s += i * j;
        }
    }
    return s;
}`, "f")
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// One loop body must be contained in the other.
	a, b := loops[0], loops[1]
	if len(a.Body) < len(b.Body) {
		a, b = b, a
	}
	for blk := range b.Body {
		if !a.Body[blk] {
			t.Errorf("inner loop block b%d not inside outer loop", blk.ID)
		}
	}
}

func TestInfiniteForHasNoExitEdgeFromHead(t *testing.T) {
	g := build(t, `
int f(void) {
    for (;;) {
        int x = 1;
        if (x) { break; }
    }
    return 0;
}`, "f")
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	head := loops[0].Head
	if len(head.Succs) != 1 {
		t.Errorf("infinite-loop head should have exactly one successor, got %d", len(head.Succs))
	}
}

func TestDominatorsChain(t *testing.T) {
	g := build(t, `
int f(int x) {
    int a = 1;
    if (x) { a = 2; }
    int b = a;
    if (b) { a = 3; }
    return a;
}`, "f")
	idom := g.Dominators()
	// Entry dominates everything reachable.
	for _, b := range g.Blocks {
		if idom[b.ID] == -1 {
			continue
		}
		if !Dominates(idom, g.Entry.ID, b.ID) {
			t.Errorf("entry does not dominate b%d", b.ID)
		}
	}
}

func TestReturnTerminates(t *testing.T) {
	g := build(t, `
int f(int x) {
    if (x) { return 1; }
    return 2;
}`, "f")
	// Exit should have two predecessors (both returns).
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit preds = %d, want 2", len(g.Exit.Preds))
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	g := build(t, `
int f(int n) {
    int s = 0;
    while (n > 0) { n--; s++; }
    return s;
}`, "f")
	order := g.ReversePostOrder()
	if len(order) == 0 || order[0] != g.Entry {
		t.Errorf("RPO must start at entry")
	}
}

// TestPropertyDominators: on randomly generated structured functions, the
// entry dominates every reachable block and every immediate dominator is
// itself dominated by the entry.
func TestPropertyDominators(t *testing.T) {
	gen := func(seed int64) string {
		r := rand.New(rand.NewSource(seed))
		var body func(depth int) string
		body = func(depth int) string {
			if depth <= 0 {
				return fmt.Sprintf("s = s + %d;\n", r.Intn(9))
			}
			switch r.Intn(5) {
			case 0:
				return fmt.Sprintf("if (s > %d) {\n%s}\n", r.Intn(20), body(depth-1))
			case 1:
				return fmt.Sprintf("if (s > %d) {\n%s} else {\n%s}\n",
					r.Intn(20), body(depth-1), body(depth-1))
			case 2:
				return fmt.Sprintf("for (int i = 0; i < %d; i++) {\n%s}\n",
					2+r.Intn(5), body(depth-1))
			case 3:
				return fmt.Sprintf("while (s < %d) {\ns++;\n%s}\n", r.Intn(30)+30, body(depth-1))
			default:
				return body(depth-1) + body(depth-1)
			}
		}
		return "int f(int x) {\nint s = x;\n" + body(3) + "return s;\n}\n"
	}
	for seed := int64(0); seed < 40; seed++ {
		src := gen(seed)
		f, err := parser.Parse("p.mc", src)
		if err != nil {
			t.Fatalf("seed %d parse: %v\n%s", seed, err, src)
		}
		g := Build(f.Func("f"))
		idom := g.Dominators()
		for _, b := range g.Blocks {
			if idom[b.ID] == -1 {
				continue // unreachable
			}
			if !Dominates(idom, g.Entry.ID, b.ID) {
				t.Fatalf("seed %d: entry does not dominate b%d\n%s", seed, b.ID, g.String())
			}
			if b != g.Entry {
				parent := idom[b.ID]
				if !Dominates(idom, g.Entry.ID, parent) {
					t.Fatalf("seed %d: idom(b%d)=b%d not dominated by entry", seed, b.ID, parent)
				}
			}
		}
		// Natural loops: each loop head dominates its body.
		for _, l := range g.NaturalLoops() {
			for blk := range l.Body {
				if idom[blk.ID] == -1 {
					continue
				}
				if !Dominates(idom, l.Head.ID, blk.ID) {
					t.Fatalf("seed %d: loop head b%d does not dominate body b%d",
						seed, l.Head.ID, blk.ID)
				}
			}
		}
	}
}
