// Package clique implements Chimera's clique analysis (paper §4.2): racy
// function pairs that profiling found non-concurrent are grouped so that
// one function-level weak-lock can guard many race pairs.
//
// Nodes are racy functions; an edge connects two functions observed
// non-concurrent in every profile run. Greedy maximal cliques are carved
// out of this graph; each clique gets one function-lock. A racy function
// pair contained in several cliques is assigned the clique holding the
// most racy pairs (the paper's greedy tie-break), so e.g. alice needs only
// clique0's lock for both of its races rather than two pairwise locks
// (paper Fig. 3).
package clique

import (
	"fmt"
	"sort"
)

// Pair is an unordered racy function pair, stored canonically (A <= B).
type Pair [2]string

// MakePair canonicalizes a pair.
func MakePair(a, b string) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

// Result is the clique assignment.
type Result struct {
	// Cliques lists each clique's member functions, sorted.
	Cliques [][]string

	// CliqueOfPair maps each non-concurrent racy pair to the index of the
	// clique whose function-lock guards it. Pairs that are concurrent (or
	// involve a function concurrent with itself) are absent.
	CliqueOfPair map[Pair]int

	// FuncCliques maps each function to the sorted set of clique indices
	// whose locks it must acquire (the cliques assigned to its pairs).
	FuncCliques map[string][]int
}

// Build computes the clique assignment.
//
//   - racyPairs: the racy-function-pairs from RELAY (may contain self
//     pairs f==f for functions racing with another instance of themselves).
//   - concurrent: the profiler's observation; concurrent(f, g) true means
//     the pair was seen overlapping in some run and cannot use
//     function-locks.
func Build(racyPairs []Pair, concurrent func(a, b string) bool) *Result {
	res := &Result{
		CliqueOfPair: make(map[Pair]int),
		FuncCliques:  make(map[string][]int),
	}

	// Candidate pairs: non-concurrent, distinct functions, and neither
	// function concurrent with itself... actually a function concurrent
	// with itself can still take a function-lock against a *different*
	// non-concurrent function; what matters is the pair. Self-pairs
	// (f racing f across two instances of f) can use a function-lock only
	// if f is never concurrent with itself — in which case the two
	// instances are serialized anyway, but the lock still records order.
	seen := make(map[Pair]bool)
	var cand []Pair
	for _, p := range racyPairs {
		if seen[p] {
			continue
		}
		seen[p] = true
		if concurrent(p[0], p[1]) {
			continue
		}
		cand = append(cand, p)
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i][0] != cand[j][0] {
			return cand[i][0] < cand[j][0]
		}
		return cand[i][1] < cand[j][1]
	})
	if len(cand) == 0 {
		return res
	}

	// Node set and non-concurrency adjacency (over all candidate-involved
	// functions; edges exist whenever the profiler never saw the two
	// concurrent, not only for racy pairs — sharing needs the full graph,
	// see Fig. 3 where bob and carol are non-concurrent but race-free).
	nodeSet := make(map[string]bool)
	for _, p := range cand {
		nodeSet[p[0]] = true
		nodeSet[p[1]] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	adj := func(a, b string) bool {
		if a == b {
			// Self-loop: f joins a clique with itself only if f is never
			// concurrent with itself.
			return !concurrent(a, a)
		}
		return !concurrent(a, b)
	}

	// Greedy maximal cliques seeded from uncovered candidate pairs.
	covered := make(map[Pair]bool)
	for _, p := range cand {
		if covered[p] {
			continue
		}
		cl := []string{p[0]}
		if p[1] != p[0] {
			cl = append(cl, p[1])
		}
		// Extend greedily with nodes adjacent to every member.
		for _, n := range nodes {
			if n == p[0] || n == p[1] {
				continue
			}
			ok := true
			for _, m := range cl {
				if !adj(n, m) {
					ok = false
					break
				}
			}
			if ok {
				cl = append(cl, n)
			}
		}
		sort.Strings(cl)
		res.Cliques = append(res.Cliques, cl)
		// Mark candidate pairs inside this clique covered.
		in := make(map[string]bool, len(cl))
		for _, m := range cl {
			in[m] = true
		}
		for _, q := range cand {
			if in[q[0]] && in[q[1]] {
				covered[q] = true
			}
		}
	}

	// Assign each candidate pair the containing clique with the most racy
	// pairs (paper: "a greedy algorithm that chooses the weak-lock
	// corresponding to the clique that contains the most number of
	// racy-function-pairs").
	pairsIn := make([]int, len(res.Cliques))
	contains := func(ci int, p Pair) bool {
		in := false
		inB := false
		for _, m := range res.Cliques[ci] {
			if m == p[0] {
				in = true
			}
			if m == p[1] {
				inB = true
			}
		}
		return in && inB
	}
	for ci := range res.Cliques {
		for _, p := range cand {
			if contains(ci, p) {
				pairsIn[ci]++
			}
		}
	}
	for _, p := range cand {
		best := -1
		for ci := range res.Cliques {
			if !contains(ci, p) {
				continue
			}
			if best == -1 || pairsIn[ci] > pairsIn[best] {
				best = ci
			}
		}
		if best >= 0 {
			res.CliqueOfPair[p] = best
		}
	}

	// Function → needed clique locks.
	fc := make(map[string]map[int]bool)
	for p, ci := range res.CliqueOfPair {
		for _, f := range []string{p[0], p[1]} {
			if fc[f] == nil {
				fc[f] = make(map[int]bool)
			}
			fc[f][ci] = true
		}
	}
	for f, set := range fc {
		var ids []int
		for ci := range set {
			ids = append(ids, ci)
		}
		sort.Ints(ids)
		res.FuncCliques[f] = ids
	}
	return res
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("cliques{%d cliques, %d pairs assigned}", len(r.Cliques), len(r.CliqueOfPair))
}
