package clique

import (
	"testing"
)

// concFrom builds a concurrency oracle from a list of concurrent pairs.
func concFrom(pairs ...[2]string) func(a, b string) bool {
	set := make(map[Pair]bool)
	for _, p := range pairs {
		set[MakePair(p[0], p[1])] = true
	}
	return func(a, b string) bool { return set[MakePair(a, b)] }
}

func TestPaperFigure3(t *testing.T) {
	// Paper Fig. 3: alice races with bob and carol (all mutually
	// non-concurrent); bob and dave race but are concurrent; carol and
	// dave are non-concurrent.
	racy := []Pair{
		MakePair("alice", "bob"),
		MakePair("alice", "carol"),
		MakePair("bob", "dave"),
	}
	concurrent := concFrom([2]string{"bob", "dave"}, [2]string{"alice", "dave"})
	r := Build(racy, concurrent)

	// bob-dave is concurrent: no function lock.
	if _, ok := r.CliqueOfPair[MakePair("bob", "dave")]; ok {
		t.Errorf("concurrent pair bob-dave must not get a function-lock")
	}
	// alice-bob and alice-carol share one clique ({alice,bob,carol}).
	cAB, okAB := r.CliqueOfPair[MakePair("alice", "bob")]
	cAC, okAC := r.CliqueOfPair[MakePair("alice", "carol")]
	if !okAB || !okAC {
		t.Fatalf("non-concurrent racy pairs not assigned: %+v", r.CliqueOfPair)
	}
	if cAB != cAC {
		t.Errorf("alice's two pairs should share one clique (got %d and %d)", cAB, cAC)
	}
	// alice needs exactly one function-lock.
	if got := r.FuncCliques["alice"]; len(got) != 1 {
		t.Errorf("alice needs %d locks, want 1", len(got))
	}
	// The chosen clique contains alice, bob, carol.
	members := r.Cliques[cAB]
	want := map[string]bool{"alice": true, "bob": true, "carol": true}
	for _, m := range members {
		delete(want, m)
	}
	if len(want) != 0 {
		t.Errorf("clique %v missing members %v", members, want)
	}
}

func TestAllConcurrentNothingAssigned(t *testing.T) {
	racy := []Pair{MakePair("f", "g")}
	r := Build(racy, func(a, b string) bool { return true })
	if len(r.CliqueOfPair) != 0 || len(r.Cliques) != 0 {
		t.Errorf("nothing should be assigned when everything is concurrent")
	}
}

func TestSelfPair(t *testing.T) {
	// f races with itself; if f is never concurrent with itself (e.g.
	// serialized by a pipeline), a function-lock applies.
	racy := []Pair{MakePair("f", "f")}
	r := Build(racy, func(a, b string) bool { return false })
	if _, ok := r.CliqueOfPair[MakePair("f", "f")]; !ok {
		t.Errorf("self pair of a never-self-concurrent function should get a lock")
	}

	r2 := Build(racy, func(a, b string) bool { return a == "f" && b == "f" })
	if _, ok := r2.CliqueOfPair[MakePair("f", "f")]; ok {
		t.Errorf("self-concurrent function must not get a function lock for its self pair")
	}
}

func TestDisjointCliques(t *testing.T) {
	// Two independent non-concurrent pairs, where cross pairs are
	// concurrent: two cliques.
	racy := []Pair{MakePair("a", "b"), MakePair("c", "d")}
	concurrent := concFrom(
		[2]string{"a", "c"}, [2]string{"a", "d"},
		[2]string{"b", "c"}, [2]string{"b", "d"},
	)
	r := Build(racy, concurrent)
	if len(r.Cliques) != 2 {
		t.Fatalf("got %d cliques, want 2: %v", len(r.Cliques), r.Cliques)
	}
	if r.CliqueOfPair[MakePair("a", "b")] == r.CliqueOfPair[MakePair("c", "d")] {
		t.Errorf("independent pairs must get distinct cliques")
	}
}

func TestPairInTwoCliquesPicksBigger(t *testing.T) {
	// carol-dave is in cliques {alice,bob,carol,dave}? Construct: pairs
	// (a,b),(a,c),(b,c) all non-concurrent → big clique; pair (c,d) also
	// non-concurrent but d concurrent with a and b → small clique {c,d}.
	racy := []Pair{
		MakePair("a", "b"), MakePair("a", "c"), MakePair("b", "c"),
		MakePair("c", "d"),
	}
	concurrent := concFrom([2]string{"a", "d"}, [2]string{"b", "d"})
	r := Build(racy, concurrent)
	big := r.CliqueOfPair[MakePair("a", "b")]
	if r.CliqueOfPair[MakePair("a", "c")] != big || r.CliqueOfPair[MakePair("b", "c")] != big {
		t.Errorf("triangle pairs should share the big clique")
	}
	small := r.CliqueOfPair[MakePair("c", "d")]
	if small == big {
		t.Errorf("c-d cannot use the big clique (d is concurrent with a and b)")
	}
	// c participates in both cliques.
	if got := r.FuncCliques["c"]; len(got) != 2 {
		t.Errorf("c needs %d locks, want 2 (both cliques)", len(got))
	}
}

func TestDeterministic(t *testing.T) {
	racy := []Pair{
		MakePair("w3", "w1"), MakePair("w2", "w1"), MakePair("w3", "w2"),
	}
	conc := func(a, b string) bool { return false }
	r1 := Build(racy, conc)
	r2 := Build([]Pair{racy[2], racy[0], racy[1]}, conc)
	if len(r1.Cliques) != len(r2.Cliques) {
		t.Fatalf("clique count differs across orderings")
	}
	for p, c1 := range r1.CliqueOfPair {
		if c2, ok := r2.CliqueOfPair[p]; !ok || r1.Cliques[c1][0] != r2.Cliques[c2][0] {
			t.Errorf("assignment for %v differs across input orderings", p)
		}
	}
}
