package core

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/summary"
)

// Cache is a concurrency-safe, content-addressed store of analysis
// artifacts. The key is the program identity — SHA-256 of (name, source)
// — which covers every stage input: parse, points-to, callgraph, RELAY
// summaries, the MHP refinement memoized on the Program, and the symbolic
// bounds derived from its Info. One Analysis artifact is therefore
// computed once per distinct program and shared read-only across all
// instrumentation configs and harness workers; only the per-config
// instrument → record → replay tail runs again.
//
// A cache built with NewIncrementalCache additionally carries a
// per-function summary store (internal/summary), giving loads three
// outcomes instead of two: a whole-program hit returns the shared
// artifact, a whole-program miss runs the incremental pipeline, and that
// fresh computation counts as a *partial hit* when it reused at least one
// stored function summary (and as a miss otherwise). The store persists
// across programs, so a batch of related sources pays the RELAY walk only
// for functions no earlier program already summarized.
//
// Loads of the same key are single-flighted: concurrent callers block on
// one computation instead of racing to duplicate it. The worker count
// does not enter the key because the parallel RELAY schedule is proven
// (by the determinism test layer) to produce byte-identical artifacts.
type Cache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry

	// store, when non-nil, routes miss-path loads through the incremental
	// analyzer.
	store *summary.Store

	hits     atomic.Int64
	partials atomic.Int64
	misses   atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// NewCache returns an empty analysis cache with no summary store: every
// whole-program miss is a full recomputation.
func NewCache() *Cache {
	return &Cache{entries: make(map[[sha256.Size]byte]*cacheEntry)}
}

// NewIncrementalCache returns an analysis cache whose miss path runs the
// summary-store-backed incremental pipeline (LoadIncremental). The store
// may be shared with other caches and outlives any one cache.
func NewIncrementalCache(store *summary.Store) *Cache {
	c := NewCache()
	c.store = store
	return c
}

// Load returns the analyzed program for (name, src), computing it with
// LoadParallel(workers) on first use and returning the shared artifact on
// every subsequent call.
func (c *Cache) Load(name, src string, workers int) (*Program, error) {
	return c.LoadTraced(name, src, workers, nil)
}

// LoadTraced is Load with the miss-path analysis traced into tr (see
// LoadParallelTraced). On a hit the cached artifact is returned and tr
// records nothing — the stages never ran; the hit shows up in Stats.
func (c *Cache) LoadTraced(name, src string, workers int, tr *obs.Tracer) (*Program, error) {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var key [sha256.Size]byte
	h.Sum(key[:0])

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	fresh := false
	e.once.Do(func() {
		fresh = true
		if c.store != nil {
			e.prog, e.err = LoadIncrementalTraced(name, src, workers, c.store, tr)
		} else {
			e.prog, e.err = LoadParallelTraced(name, src, workers, tr)
		}
	})
	switch {
	case !fresh:
		c.hits.Add(1)
	case e.prog != nil && e.prog.Incremental != nil && e.prog.Incremental.ReusedFuncs > 0:
		c.partials.Add(1)
	default:
		c.misses.Add(1)
	}
	return e.prog, e.err
}

// Stats reports whole-program hits, partial hits (fresh loads that
// reused stored function summaries), and full misses so far.
func (c *Cache) Stats() (hits, partial, misses int64) {
	return c.hits.Load(), c.partials.Load(), c.misses.Load()
}

// SummaryStats snapshots the summary store's counters as the obs metrics
// section; nil when the cache has no store.
func (c *Cache) SummaryStats() *obs.SummaryStoreStats {
	if c.store == nil {
		return nil
	}
	st := c.store.Stats()
	return &obs.SummaryStoreStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Puts:      st.Puts,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		MHPHits:   st.MHPHits,
		MHPMisses: st.MHPMisses,
	}
}
