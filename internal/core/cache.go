package core

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Cache is a concurrency-safe, content-addressed store of analysis
// artifacts. The key is the program identity — SHA-256 of (name, source)
// — which covers every stage input: parse, points-to, callgraph, RELAY
// summaries, the MHP refinement memoized on the Program, and the symbolic
// bounds derived from its Info. One Analysis artifact is therefore
// computed once per distinct program and shared read-only across all
// instrumentation configs and harness workers; only the per-config
// instrument → record → replay tail runs again.
//
// Loads of the same key are single-flighted: concurrent callers block on
// one computation instead of racing to duplicate it. The worker count
// does not enter the key because the parallel RELAY schedule is proven
// (by the determinism test layer) to produce byte-identical artifacts.
type Cache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// NewCache returns an empty analysis cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[[sha256.Size]byte]*cacheEntry)}
}

// Load returns the analyzed program for (name, src), computing it with
// LoadParallel(workers) on first use and returning the shared artifact on
// every subsequent call.
func (c *Cache) Load(name, src string, workers int) (*Program, error) {
	return c.LoadTraced(name, src, workers, nil)
}

// LoadTraced is Load with the miss-path analysis traced into tr (see
// LoadParallelTraced). On a hit the cached artifact is returned and tr
// records nothing — the stages never ran; the hit shows up in Stats.
func (c *Cache) LoadTraced(name, src string, workers int, tr *obs.Tracer) (*Program, error) {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var key [sha256.Size]byte
	h.Sum(key[:0])

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	fresh := false
	e.once.Do(func() {
		fresh = true
		e.prog, e.err = LoadParallelTraced(name, src, workers, tr)
	})
	if fresh {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e.prog, e.err
}

// Stats reports cache hits and misses so far.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
