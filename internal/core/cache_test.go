package core

import (
	"sync"
	"testing"
)

const cacheSrc = `
int gv;
int m;
void worker(int x) { lock(&m); gv = gv + x; unlock(&m); }
int main(void) {
    int t = spawn(worker, 1);
    gv = 7;
    join(t);
    return gv;
}
`

// Concurrent loads of one program must share a single artifact
// (single-flight), and distinct programs must not collide.
func TestCacheSharesOneArtifact(t *testing.T) {
	c := NewCache()
	const callers = 16
	progs := make([]*Program, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.Load("cached", cacheSrc, 2)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			progs[i] = p
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("caller %d got a different artifact", i)
		}
	}
	hits, partial, misses := c.Stats()
	if misses != 1 || partial != 0 || hits != callers-1 {
		t.Errorf("stats = %d hits / %d partial / %d misses, want %d / 0 / 1",
			hits, partial, misses, callers-1)
	}

	other, err := c.Load("other", cacheSrc+"\n", 1)
	if err != nil {
		t.Fatal(err)
	}
	if other == progs[0] {
		t.Error("distinct (name, source) shared an artifact")
	}
}

// The refined report is memoized per program and identical for every
// caller.
func TestRefinedRacesMemoized(t *testing.T) {
	c := NewCache()
	p, err := c.Load("cached", cacheSrc, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reps := make([]interface{}, 8)
	for i := range reps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps[i] = p.RefinedRaces()
		}()
	}
	wg.Wait()
	for i := 1; i < len(reps); i++ {
		if reps[i] != reps[0] {
			t.Fatalf("caller %d got a different refined report", i)
		}
	}
}

// LoadForExecution must produce a runnable program without the analysis
// stages.
func TestLoadForExecution(t *testing.T) {
	p, err := LoadForExecution("exec", cacheSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.PTA != nil || p.CG != nil || p.Races != nil {
		t.Error("execution-only load ran analysis stages")
	}
	r := p.RunNative(RunConfig{Seed: 1})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
}
