// Package core orchestrates the Chimera pipeline (paper Fig. 1):
//
//	parse → type-check → points-to → call graph → RELAY race detection
//	  → profile non-concurrent functions → clique analysis
//	  → symbolic bounds → weak-lock instrumentation
//	  → record on the simulated multicore → replay → verify determinism
//
// It is the programmatic API behind the root chimera package, the CLI
// tools, and the benchmark harness.
package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/callgraph"
	"repro/internal/certify"
	"repro/internal/escape"
	"repro/internal/instrument"
	"repro/internal/mhp"
	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/obs"
	"repro/internal/oskit"
	"repro/internal/pointsto"
	"repro/internal/profile"
	"repro/internal/relay"
	"repro/internal/replay"
	"repro/internal/summary"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/weaklock"
)

// Program is a fully analyzed MiniC program. After Load returns, every
// field is read-only, so one Program can back any number of concurrent
// instrumentation configs, recordings and replays.
type Program struct {
	Name   string
	Source string
	File   *ast.File
	Info   *types.Info
	PTA    *pointsto.Analysis
	CG     *callgraph.Graph
	Races  *relay.Report
	Code   *vm.Program

	// AnalysisWallNS is the wall-clock time Load spent producing this
	// artifact (parse through RELAY). It feeds the harness's
	// analysis_wall_ns accounting: with the analysis cache, the cost is
	// paid once per benchmark and amortized over every config.
	AnalysisWallNS int64

	// Incremental is set by LoadIncremental: what the summary-store-backed
	// analysis reused and recomputed. Nil on whole-program loads.
	Incremental *relay.IncrementalStats

	// store, when non-nil, is the summary store that backed the load; the
	// MHP refinement memoizes its verdicts there.
	store *summary.Store

	refineOnce sync.Once
	refined    *relay.Report

	precOnce sync.Once
	prec     *relay.Report

	precBaseOnce sync.Once
	precBase     *relay.Report
}

// Load parses, checks, analyzes and compiles a program with the
// sequential RELAY summary walk.
func Load(name, src string) (*Program, error) {
	return LoadParallel(name, src, 1)
}

// LoadParallel is Load with the RELAY summary computation wave-scheduled
// over `workers` goroutines (relay.AnalyzeParallel). The resulting
// analysis is byte-identical to the sequential one for any worker count.
func LoadParallel(name, src string, workers int) (*Program, error) {
	return LoadParallelTraced(name, src, workers, nil)
}

// LoadParallelTraced is LoadParallel with each analysis stage wrapped in a
// span of tr (nil disables tracing at zero cost). Stage attributes carry
// the headline artifact sizes: SCC/wave counts on the call graph, pair
// counts on RELAY.
func LoadParallelTraced(name, src string, workers int, tr *obs.Tracer) (*Program, error) {
	start := time.Now()
	sp := tr.Start("lex-parse")
	file, err := parser.Parse(name, src)
	sp.SetAttr("bytes", int64(len(src))).End()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	sp = tr.Start("typecheck")
	info, err := types.Check(file)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", name, err)
	}
	sp = tr.Start("compile")
	code, err := vm.Compile(info)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("compile %s: %w", name, err)
	}
	sp.SetAttr("funcs", int64(len(code.Funcs))).End()
	sp = tr.Start("points-to")
	pta := pointsto.Analyze(info)
	sp.End()
	sp = tr.Start("callgraph")
	cg := callgraph.Build(info, pta)
	sp.SetAttr("sccs", int64(len(cg.SCCs))).
		SetAttr("waves", int64(len(cg.Waves()))).End()
	sp = tr.Start("relay")
	races := relay.AnalyzeParallel(info, pta, cg, workers)
	// No workers attribute here: analysis parallelism is an execution
	// detail, and the stage attributes must be a pure function of the
	// source so masked metrics reports compare byte-identically.
	sp.SetAttr("pairs", int64(len(races.Pairs))).
		SetAttr("racy_funcs", int64(len(races.RacyFuncs))).
		SetAttr("racy_nodes", int64(len(races.RacyNodes))).End()
	return &Program{
		Name: name, Source: src, File: file, Info: info,
		PTA: pta, CG: cg, Races: races, Code: code,
		AnalysisWallNS: time.Since(start).Nanoseconds(),
	}, nil
}

// LoadForExecution parses, checks and compiles a program without running
// the static-analysis stages (points-to, callgraph, RELAY): PTA, CG and
// Races stay nil. Instrumented programs are reloaded this way — they are
// only ever executed, never re-analyzed, and skipping the analysis
// removes a full redundant RELAY run per instrumentation config.
func LoadForExecution(name, src string) (*Program, error) {
	file, err := parser.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	info, err := types.Check(file)
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", name, err)
	}
	code, err := vm.Compile(info)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", name, err)
	}
	return &Program{Name: name, Source: src, File: file, Info: info, Code: code}, nil
}

// MustLoad loads or panics; for tests and embedded benchmarks.
func MustLoad(name, src string) *Program {
	p, err := Load(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// RunConfig parameterizes one execution of a program.
type RunConfig struct {
	World *oskit.World
	Seed  uint64
	Cost  vm.CostModel
	// Table is the weak-lock table for instrumented programs.
	Table *weaklock.Table
	// MaxSteps overrides the default instruction budget if nonzero.
	MaxSteps int64
	// HeapWords overrides the default VM heap size if nonzero.
	HeapWords int64
	// CheckLockOrder enables the weak-lock discipline assertion.
	CheckLockOrder bool
	// MaxThreads overrides the thread limit if nonzero.
	MaxThreads int
	// Sinks are additional batched event sinks (e.g. the observability
	// layer's counters) attached to the run. Attaching any sink turns on
	// event emission for the run.
	Sinks []vm.EventSink
}

func (rc RunConfig) vmConfig() vm.Config {
	return vm.Config{
		Inputs:         vm.LiveInputs{OS: rc.World},
		Cost:           rc.Cost,
		Seed:           rc.Seed,
		WL:             rc.Table,
		MaxSteps:       rc.MaxSteps,
		HeapWords:      rc.HeapWords,
		CheckLockOrder: rc.CheckLockOrder,
		MaxThreads:     rc.MaxThreads,
		Sinks:          rc.Sinks,
	}
}

// RunNative executes the program with no recording (the paper's baseline
// "original time").
func (p *Program) RunNative(rc RunConfig) *vm.Result {
	return vm.Run(p.Code, rc.vmConfig())
}

// ProfileNonConcurrency runs the program multiple times over profile
// worlds and accumulates the set of concurrent function pairs (paper §4.1:
// "we profiled each program 20 times with various inputs").
func (p *Program) ProfileNonConcurrency(mkWorld func(run int) *oskit.World, runs int, seedBase uint64) *profile.Concurrency {
	names := make([]string, len(p.Code.Funcs))
	for i, fn := range p.Code.Funcs {
		names[i] = fn.Name
	}
	conc := profile.NewConcurrency()
	for i := 0; i < runs; i++ {
		col := profile.NewCollector()
		cfg := vm.Config{
			Inputs: vm.LiveInputs{OS: mkWorld(i)},
			Seed:   seedBase + uint64(i)*1000003,
			Funcs:  col,
		}
		r := vm.Run(p.Code, cfg)
		if r.Err != nil {
			// Profile runs on racy programs can fail (e.g. a check
			// tripped by a manifested race); the partial profile is
			// still usable — observed concurrency stands.
			_ = r.Err
		}
		conc.AddRun(col, names)
	}
	return conc
}

// Instrumented is a Chimera-transformed program ready to record.
type Instrumented struct {
	Orig   *Program
	Prog   *Program // the reparsed, recompiled instrumented program
	Table  *weaklock.Table
	Report *instrument.Result

	// Rep is the race report the instrumentation was derived from (the
	// MHP-refined report under "+mhp" configs). The certifier validates
	// the instrumented source against exactly this report.
	Rep *relay.Report

	certOnce sync.Once
	cert     *certify.Certificate
	certWall int64
	certErr  error
}

// Certify runs the static translation validator (internal/certify) over
// the instrumented source: race-pair coverage, weak-lock balance, and
// lock-order deadlock-freedom, recomputed independently of the
// instrumenter's bookkeeping. The certificate is computed once per
// Instrumented and shared — like RefinedRaces it is part of the
// read-only artifact a Cache hands out, safe for concurrent pipeline
// workers. The config label is stamped into the certificate on the
// first call. The returned wall time is the certification cost of that
// first computation, in nanoseconds.
func (ip *Instrumented) Certify(config string) (*certify.Certificate, int64, error) {
	ip.certOnce.Do(func() {
		start := time.Now()
		ip.cert, ip.certErr = certify.Certify(ip.Rep, ip.Report.Source, ip.Orig.Name, config)
		ip.certWall = time.Since(start).Nanoseconds()
	})
	return ip.cert, ip.certWall, ip.certErr
}

// Instrument applies the weak-lock transformation and recompiles.
func (p *Program) Instrument(conc *profile.Concurrency, opts instrument.Options) (*Instrumented, error) {
	return p.InstrumentWith(p.Races, conc, opts)
}

// RefineMHP applies the static may-happen-in-parallel refinement
// (internal/mhp) to the program's race report, returning a copy with
// provably non-concurrent pairs pruned. p.Races itself is untouched, so
// the paper-faithful unrefined report stays available.
func (p *Program) RefineMHP() *relay.Report {
	return mhp.Refine(p.Races)
}

// RefinedRaces returns the MHP-refined race report, computed once and
// shared; it is safe to call from concurrent pipeline workers. The report
// is part of the read-only analysis artifact a Cache hands out.
//
// On incrementally loaded programs the refinement verdicts are memoized
// in the summary store under the whole-program content key: a later load
// of a byte-identical (modulo formatting) program replays the stored
// verdicts through relay.ApplyMHPFacts instead of re-running the MHP
// analysis. Replay is fail-closed — any pair mismatch falls back to the
// real analysis — and reproduces the refined report byte-identically,
// since the verdict sequence fully determines RefineMHP's output.
func (p *Program) RefinedRaces() *relay.Report {
	p.refineOnce.Do(func() {
		if p.store != nil && p.Incremental != nil && p.Incremental.Index != nil {
			if facts, ok := p.store.GetMHP(p.Incremental.ProgramKey()); ok {
				if refined, applied := relay.ApplyMHPFacts(p.Races, facts, p.Incremental.Index); applied {
					p.refined = refined
					p.Incremental.MHPFactsReused = true
					return
				}
			}
			p.refined = p.RefineMHP()
			if facts, ok := relay.EncodeMHPFacts(p.Races, p.refined, p.Incremental.Index); ok {
				p.store.PutMHP(p.Incremental.ProgramKey(), facts)
			}
			return
		}
		p.refined = p.RefineMHP()
	})
	return p.refined
}

// PrecisionRaces returns the race report with both the MHP refinement and
// the static precision layer (internal/escape: thread-escape, must-lockset
// sharpening, read-only sharing) applied, computed once and shared. Like
// RefinedRaces it is part of the read-only analysis artifact a Cache hands
// out, safe for concurrent pipeline workers.
func (p *Program) PrecisionRaces() *relay.Report {
	p.precOnce.Do(func() {
		p.prec = p.precisionOver(p.RefinedRaces(), "precision+mhp")
	})
	return p.prec
}

// PrecisionRacesBase is PrecisionRaces without the MHP refinement: the
// precision layer applied directly to the unrefined RELAY report, for
// configs that run paper-faithful RELAY plus precision only.
func (p *Program) PrecisionRacesBase() *relay.Report {
	p.precBaseOnce.Do(func() {
		p.precBase = p.precisionOver(p.Races, "precision")
	})
	return p.precBase
}

// precisionOver applies the precision layer to a base report, memoizing
// verdicts in the summary store on incrementally loaded programs. Each
// (layer, base) combination stores under its own key derived from the
// whole-program content key — a new fact kind under a new address, so
// byte-identity of the pre-existing summary and MHP artifacts is
// preserved. Replay is fail-closed: any pair mismatch falls back to the
// real analysis.
func (p *Program) precisionOver(base *relay.Report, label string) *relay.Report {
	if p.store != nil && p.Incremental != nil && p.Incremental.Index != nil {
		key := summary.DeriveKey(p.Incremental.ProgramKey(), label)
		if facts, ok := p.store.GetMHP(key); ok {
			if refined, applied := relay.ApplyPrecisionFacts(base, facts, p.Incremental.Index); applied {
				p.Incremental.PrecisionFactsReused = true
				return refined
			}
		}
		refined := escape.Refine(base)
		if facts, ok := relay.EncodePrecisionFacts(base, refined, p.Incremental.Index); ok {
			p.store.PutMHP(key, facts)
		}
		return refined
	}
	return escape.Refine(base)
}

// InstrumentWith is Instrument with an explicit race report — typically
// the result of RefineMHP, so statically pruned pairs get no weak locks.
func (p *Program) InstrumentWith(rep *relay.Report, conc *profile.Concurrency, opts instrument.Options) (*Instrumented, error) {
	res, err := instrument.Instrument(rep, conc, opts)
	if err != nil {
		return nil, fmt.Errorf("instrument %s: %w", p.Name, err)
	}
	ip, err := LoadForExecution(p.Name+".chimera", res.Source)
	if err != nil {
		return nil, fmt.Errorf("reload instrumented %s: %w\n--- source ---\n%s", p.Name, err, res.Source)
	}
	return &Instrumented{Orig: p, Prog: ip, Table: res.Table, Report: res, Rep: rep}, nil
}

// Record executes the instrumented program while logging inputs and sync
// order; it returns the run result and the log.
func (ip *Instrumented) Record(rc RunConfig) (*vm.Result, *replay.Log) {
	return RecordProgram(ip.Prog, ip.Table, rc)
}

// RecordTo is Record with the log additionally streamed to w; see
// RecordProgramTo.
func (ip *Instrumented) RecordTo(rc RunConfig, w io.Writer) (*vm.Result, *replay.Log, *replay.LogWriter) {
	return RecordProgramTo(ip.Prog, ip.Table, rc, w)
}

// RecordProgram records an arbitrary program (e.g. the DRF-only baseline
// on an uninstrumented program).
func RecordProgram(p *Program, table *weaklock.Table, rc RunConfig) (*vm.Result, *replay.Log) {
	r, log, _ := RecordProgramTo(p, table, rc, nil)
	return r, log
}

// RecordProgramTo records like RecordProgram while additionally streaming
// the log to w in the chunked on-disk format as records are committed. The
// returned LogWriter is already closed; its byte counters attribute the
// compressed stream to inputs vs sync order (nil when w is nil). Streaming
// adds no simulated cost — the cost model already charges for logging.
func RecordProgramTo(p *Program, table *weaklock.Table, rc RunConfig, w io.Writer) (*vm.Result, *replay.Log, *replay.LogWriter) {
	rec := replay.NewRecorder(rc.World, rc.Cost)
	var lw *replay.LogWriter
	if w != nil {
		lw = replay.NewLogWriter(w)
		rec.AttachWriter(lw)
	}
	cfg := rc.vmConfig()
	cfg.Inputs = rec
	cfg.Monitor = rec
	cfg.WL = table
	r := vm.Run(p.Code, cfg)
	if lw != nil {
		if err := lw.Close(); err != nil && r.Err == nil {
			r.Err = fmt.Errorf("record stream: %w", err)
		}
	}
	return r, rec.Log(), lw
}

// ReplayProgram re-executes a program against a recording; the seed may
// differ from the recording seed — determinism must come from the log.
//
// Recordings containing forced weak-lock preemptions (timeouts) replay
// too: each preemption was logged with a deterministic anchor (the owner's
// retired-instruction and committed-sync counts — the role DoublePlay's
// instruction-pointer/branch-count pair plays in §2.3), and the VM injects
// it at exactly that point. This goes beyond the paper, which left the
// replay side unported. Organic timeouts are disabled during replay so the
// only preemptions are the recorded ones.
func ReplayProgram(p *Program, table *weaklock.Table, log *replay.Log, rc RunConfig) (*vm.Result, error) {
	rep := replay.NewReplayer(log, rc.Cost)
	cfg := rc.vmConfig()
	cfg.Inputs = rep
	cfg.Monitor = rep
	cfg.WL = table
	cfg.DisableTimeouts = true
	r := vm.Run(p.Code, cfg)
	if rep.Err() != nil {
		return r, rep.Err()
	}
	if r.Err != nil {
		return r, r.Err
	}
	if !rep.Drained() {
		return r, fmt.Errorf("replay divergence: order log not fully consumed")
	}
	return r, nil
}

// Replay re-executes the instrumented program against a recording.
func (ip *Instrumented) Replay(log *replay.Log, rc RunConfig) (*vm.Result, error) {
	return ReplayProgram(ip.Prog, ip.Table, log, rc)
}

// ReplayProgramStream is ReplayProgram reading the recording from a
// CHIMLOG2 stream (e.g. an on-disk spool) through replay.StreamReplayer
// instead of a decoded in-memory Log: chunks are decoded as the replay
// consumes them, so memory stays bounded by one chunk per stream no
// matter how long the recording is. This is the replay path of the
// service's replay-verify jobs, which must never hold whole logs in
// memory. The divergence checks match ReplayProgram's exactly.
func ReplayProgramStream(p *Program, table *weaklock.Table, r io.ReadSeeker, rc RunConfig) (*vm.Result, error) {
	rep, err := replay.NewStreamReplayer(r, rc.Cost)
	if err != nil {
		return nil, fmt.Errorf("open log stream: %w", err)
	}
	cfg := rc.vmConfig()
	cfg.Inputs = rep
	cfg.Monitor = rep
	cfg.WL = table
	cfg.DisableTimeouts = true
	res := vm.Run(p.Code, cfg)
	if rep.Err() != nil {
		return res, rep.Err()
	}
	if res.Err != nil {
		return res, res.Err
	}
	if !rep.Drained() {
		return res, fmt.Errorf("replay divergence: order log not fully consumed")
	}
	return res, nil
}

// VerifyDeterministicReplay records with one seed and replays with another;
// it returns an error unless the replay bit-matches the recording.
func (ip *Instrumented) VerifyDeterministicReplay(world func() *oskit.World, recSeed, repSeed uint64) error {
	rc := RunConfig{World: world(), Seed: recSeed, Table: ip.Table}
	recRes, log := ip.Record(rc)
	if recRes.Err != nil {
		return fmt.Errorf("record failed: %w", recRes.Err)
	}
	repRes, err := ip.Replay(log, RunConfig{World: world(), Seed: repSeed, Table: ip.Table})
	if err != nil {
		return fmt.Errorf("replay failed: %w", err)
	}
	if recRes.Hash64() != repRes.Hash64() {
		return fmt.Errorf("replay diverged: recorded hash %x, replayed hash %x\nrecorded output: %q\nreplayed output: %q",
			recRes.Hash64(), repRes.Hash64(), recRes.Output, repRes.Output)
	}
	return nil
}

// RunDeterministic executes an instrumented program under the
// deterministic-execution arbiter (the paper's §9 vision: "future work may
// be able to leverage the data-race-freedom provided by Chimera to provide
// stronger guarantees such as ... deterministic execution"). The result is
// a pure function of the program and its input world: independent of the
// schedule seed and of the cost model, with no recording involved.
// Organic weak-lock timeouts are disabled — time-based preemption would
// reintroduce timing dependence — so programs that block while holding a
// weak-lock deadlock visibly instead.
func (ip *Instrumented) RunDeterministic(rc RunConfig) *vm.Result {
	cfg := rc.vmConfig()
	cfg.WL = ip.Table
	cfg.Deterministic = true
	cfg.DisableTimeouts = true
	return vm.Run(ip.Prog.Code, cfg)
}

// CheckDynamicRaces runs the program under the happens-before race checker
// (FastTrack-style adaptive epochs) and returns the distinct races
// observed. For instrumented programs pass the weak-lock table so
// weak-lock edges count as synchronization.
func CheckDynamicRaces(p *Program, table *weaklock.Table, rc RunConfig) ([]trace.Race, *vm.Result) {
	chk := trace.NewChecker(0)
	r := CheckDynamicRacesWith(p, table, rc, chk)
	return chk.Races(), r
}

// CheckDynamicRacesWith runs the program with explicit race checkers
// attached as batched event sinks — the epoch checker for production, the
// full-vector oracle for differential testing. Passing both runs them over
// the one event stream of a single execution.
func CheckDynamicRacesWith(p *Program, table *weaklock.Table, rc RunConfig, chks ...trace.RaceChecker) *vm.Result {
	cfg := rc.vmConfig()
	cfg.WL = table
	for _, chk := range chks {
		cfg.Sinks = append(cfg.Sinks, chk)
	}
	return vm.Run(p.Code, cfg)
}
