package core

import (
	"strings"
	"testing"

	"repro/internal/instrument"
	"repro/internal/oskit"
	"repro/internal/weaklock"
)

// racyCounter: classic lost-update race, plus a read in main.
const racyCounter = `
int count;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int tmp = count;
        count = tmp + 1;
    }
}
int main(void) {
    int t1 = spawn(worker, 400);
    int t2 = spawn(worker, 400);
    join(t1); join(t2);
    print(count);
    return 0;
}
`

// barrierPhases: the water pattern — false races across a barrier.
const barrierPhases = `
int bar;
int acc[2];
int total;
void interf(int id) {
    int s = 0;
    for (int i = 0; i < 300; i++) { s += i; }
    acc[id] = s;
    total = acc[0] + acc[1];
}
void bndry(int id) {
    total = total + acc[id];
}
void worker(int id) {
    interf(id);
    barrier_wait(&bar);
    if (id == 0) {
        bndry(id);
    }
    barrier_wait(&bar);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 1);
    join(t1); join(t2);
    print(total);
    return 0;
}
`

// radixSlices: the radix pattern — disjoint partitions, loop-lock bounds.
const radixSlices = `
int rank[256];
int done;
int m;
void worker(int base) {
    for (int i = 0; i < 128; i++) {
        rank[base + i] = base + i * 3;
    }
    lock(&m);
    done = done + 1;
    unlock(&m);
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 128);
    join(t1); join(t2);
    int s = 0;
    for (int i = 0; i < 256; i++) { s += rank[i]; }
    print(s);
    print(done);
    return 0;
}
`

func world() *oskit.World { return oskit.NewWorld(7) }

func TestOriginalProgramHasDynamicRaces(t *testing.T) {
	p := MustLoad("racy.mc", racyCounter)
	races, r := CheckDynamicRaces(p, nil, RunConfig{World: world(), Seed: 3})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if len(races) == 0 {
		t.Fatalf("expected dynamic races in the racy counter")
	}
}

func TestNaiveInstrumentationMakesProgramRaceFree(t *testing.T) {
	p := MustLoad("racy.mc", racyCounter)
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	for seed := uint64(0); seed < 4; seed++ {
		races, r := CheckDynamicRaces(ip.Prog, ip.Table, RunConfig{World: world(), Seed: seed, Table: ip.Table})
		if r.Err != nil {
			t.Fatalf("seed %d run: %v\nsource:\n%s", seed, r.Err, ip.Prog.Source)
		}
		if len(races) != 0 {
			t.Fatalf("seed %d: instrumented program still has races: %v\nsource:\n%s",
				seed, races[0], ip.Prog.Source)
		}
	}
}

func TestRecordReplayDeterministicNaive(t *testing.T) {
	p := MustLoad("racy.mc", racyCounter)
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	// Record with one seed, replay with very different seeds: the log
	// must fully determine the outcome.
	for _, seeds := range [][2]uint64{{1, 99}, {5, 1234}, {42, 0}} {
		if err := ip.VerifyDeterministicReplay(world, seeds[0], seeds[1]); err != nil {
			t.Fatalf("seeds %v: %v", seeds, err)
		}
	}
}

func TestDRFOnlyRecordingDivergesOnRacyProgram(t *testing.T) {
	// The negative control: record the ORIGINAL racy program (inputs +
	// program sync only) and replay under different seeds. Some pair must
	// diverge — otherwise weak-locks would be pointless on this workload.
	p := MustLoad("racy.mc", racyCounter)
	diverged := false
	for seed := uint64(0); seed < 6 && !diverged; seed++ {
		recRes, log := RecordProgram(p, nil, RunConfig{World: world(), Seed: seed})
		if recRes.Err != nil {
			t.Fatalf("record: %v", recRes.Err)
		}
		repRes, err := ReplayProgram(p, nil, log, RunConfig{World: world(), Seed: seed + 77})
		if err != nil || repRes.Hash64() != recRes.Hash64() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("DRF-only replay never diverged on a racy program across 6 seeds")
	}
}

func TestFunctionLocksViaProfile(t *testing.T) {
	p := MustLoad("water.mc", barrierPhases)
	if len(p.Races.Pairs) == 0 {
		t.Fatalf("RELAY found no races in the barrier program")
	}
	conc := p.ProfileNonConcurrency(func(run int) *oskit.World { return oskit.NewWorld(uint64(run)) }, 6, 100)
	ip, err := p.Instrument(conc, instrument.AllOptions())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	counts := ip.Table.CountByKind()
	if counts[weaklock.KindFunc] == 0 {
		t.Errorf("expected function-locks for barrier-separated phases; table: %+v, report: %+v",
			counts, ip.Report.FuncLockOf)
	}
	if err := ip.VerifyDeterministicReplay(world, 3, 888); err != nil {
		t.Fatalf("replay: %v\nsource:\n%s", err, ip.Prog.Source)
	}
	// No weak-lock timeouts expected (paper: none observed).
	r := ip.Prog.RunNative(RunConfig{World: world(), Seed: 11, Table: ip.Table})
	if r.Err != nil {
		t.Fatalf("native instrumented run: %v", r.Err)
	}
	if r.WLStats.Timeouts != 0 {
		t.Errorf("unexpected weak-lock timeouts: %d", r.WLStats.Timeouts)
	}
}

func TestLoopLocksWithPreciseBounds(t *testing.T) {
	p := MustLoad("radix.mc", radixSlices)
	conc := p.ProfileNonConcurrency(func(run int) *oskit.World { return oskit.NewWorld(uint64(run)) }, 4, 500)
	ip, err := p.Instrument(conc, instrument.Options{LoopLocks: true, BBLocks: true, LoopBodyThreshold: 14})
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	if !strings.Contains(ip.Prog.Source, "wl_acquire(1") {
		t.Errorf("expected a loop-granularity acquire; source:\n%s", ip.Prog.Source)
	}
	// At least one loop site should carry precise symbolic bounds (the
	// worker's partitioned writes).
	precise := false
	for _, s := range ip.Report.Sites {
		if s.Kind == weaklock.KindLoop && s.Precise {
			precise = true
		}
	}
	if !precise {
		t.Errorf("no precise loop bounds found; sites: %+v", ip.Report.Sites)
	}
	if err := ip.VerifyDeterministicReplay(world, 9, 321); err != nil {
		t.Fatalf("replay: %v\nsource:\n%s", err, ip.Prog.Source)
	}
	// The partitioned loops must actually run concurrently: contention on
	// the ranged loop-locks should be far below full serialization.
	races, r := CheckDynamicRaces(ip.Prog, ip.Table, RunConfig{World: world(), Seed: 5, Table: ip.Table})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	if len(races) != 0 {
		t.Errorf("instrumented radix still racy: %v", races[0])
	}
}

func TestAllOptsCheaperThanNaive(t *testing.T) {
	p := MustLoad("radix.mc", radixSlices)
	conc := p.ProfileNonConcurrency(func(run int) *oskit.World { return oskit.NewWorld(uint64(run)) }, 4, 500)

	native := p.RunNative(RunConfig{World: world(), Seed: 2})
	if native.Err != nil {
		t.Fatalf("native: %v", native.Err)
	}

	naive, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatalf("naive instrument: %v", err)
	}
	allOpt, err := p.Instrument(conc, instrument.AllOptions())
	if err != nil {
		t.Fatalf("all-opts instrument: %v", err)
	}

	rNaive, _ := naive.Record(RunConfig{World: world(), Seed: 2, Table: naive.Table})
	if rNaive.Err != nil {
		t.Fatalf("naive record: %v", rNaive.Err)
	}
	rAll, _ := allOpt.Record(RunConfig{World: world(), Seed: 2, Table: allOpt.Table})
	if rAll.Err != nil {
		t.Fatalf("all-opts record: %v", rAll.Err)
	}

	ovNaive := float64(rNaive.Makespan) / float64(native.Makespan)
	ovAll := float64(rAll.Makespan) / float64(native.Makespan)
	if ovAll >= ovNaive {
		t.Errorf("all-opts overhead %.2fx not below naive %.2fx", ovAll, ovNaive)
	}
	if ovAll > 3.0 {
		t.Errorf("all-opts overhead %.2fx unexpectedly high", ovAll)
	}
	// Weak-lock ops should drop by a large factor.
	if rAll.WLStats.TotalOps()*4 > rNaive.WLStats.TotalOps() {
		t.Errorf("all-opts wl ops %d not well below naive %d",
			rAll.WLStats.TotalOps(), rNaive.WLStats.TotalOps())
	}
}

func TestInstrumentedOutputMatchesOriginalSemantics(t *testing.T) {
	// The transformation must not change what a DRF schedule computes:
	// for the radix program (deterministic given locks), the printed sum
	// must equal the original's.
	p := MustLoad("radix.mc", radixSlices)
	orig := p.RunNative(RunConfig{World: world(), Seed: 4})
	if orig.Err != nil {
		t.Fatalf("orig: %v", orig.Err)
	}
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	inst := ip.Prog.RunNative(RunConfig{World: world(), Seed: 4, Table: ip.Table})
	if inst.Err != nil {
		t.Fatalf("instrumented: %v\nsource:\n%s", inst.Err, ip.Prog.Source)
	}
	if string(orig.Output) != string(inst.Output) {
		t.Errorf("output changed: %q vs %q", orig.Output, inst.Output)
	}
}
