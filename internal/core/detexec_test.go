package core

import (
	"testing"

	"repro/internal/instrument"
	"repro/internal/oskit"
	"repro/internal/vm"
)

// detRacy is a program whose native result varies with the schedule.
const detRacy = `
int count;
int hist[4];
void worker(int id) {
    for (int i = 0; i < 300; i++) {
        int tmp = count;
        count = tmp + 1;
    }
    hist[id] = count;
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 1);
    int t3 = spawn(worker, 2);
    join(t1); join(t2); join(t3);
    print(count);
    print(hist[0] + hist[1] + hist[2]);
    return 0;
}
`

// TestDeterministicExecutionSeedIndependent: under the arbiter, every
// schedule seed produces the identical result with no log — the §9
// deterministic-execution vision built on Chimera's transformation.
func TestDeterministicExecutionSeedIndependent(t *testing.T) {
	p := MustLoad("det.mc", detRacy)
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Control: without the arbiter, seeds disagree (the program is racy
	// natively; instrumented-but-unarbitrated order still varies).
	varies := false
	var first uint64
	for seed := uint64(0); seed < 6; seed++ {
		r := p.RunNative(RunConfig{World: oskit.NewWorld(1), Seed: seed})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if seed == 0 {
			first = r.Hash64()
		} else if r.Hash64() != first {
			varies = true
		}
	}
	if !varies {
		t.Fatalf("control failed: native results did not vary across seeds")
	}

	// Deterministic mode: identical across seeds.
	var want *vm.Result
	for seed := uint64(0); seed < 8; seed++ {
		r := ip.RunDeterministic(RunConfig{World: oskit.NewWorld(1), Seed: seed})
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seed, r.Err)
		}
		if want == nil {
			want = r
			continue
		}
		if r.Hash64() != want.Hash64() {
			t.Fatalf("seed %d diverged: %q vs %q", seed, r.Output, want.Output)
		}
	}
	// Weak-locks record ordering; they do not repair the program's
	// non-atomic read-modify-write (paper §2.4: "Chimera's transformation
	// does not attempt to correct a given program"). Updates may still be
	// lost — but deterministically: the same ones every run.
	if len(want.Output) < 2 || want.Output[0] == '0' {
		t.Fatalf("suspicious deterministic count: %q", want.Output)
	}
}

// TestDeterministicExecutionCostModelIndependent: the arbiter uses logical
// clocks, so even perturbing the simulated cost model (the stand-in for
// hardware timing variation) leaves the result unchanged.
func TestDeterministicExecutionCostModelIndependent(t *testing.T) {
	p := MustLoad("det.mc", detRacy)
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	costs := []vm.CostModel{
		vm.DefaultCost(),
		{Instr: 1, Call: 9, SyncOp: 77, LogEvent: 5, LogWord: 2, WeakLockOp: 3, RangeCheck: 1, Malloc: 80, Syscall: 500, ReplayGate: 4},
		{Instr: 1, Call: 1, SyncOp: 1, LogEvent: 1, LogWord: 1, WeakLockOp: 1, RangeCheck: 1, Malloc: 1, Syscall: 1, ReplayGate: 1},
	}
	var want uint64
	for i, cm := range costs {
		r := ip.RunDeterministic(RunConfig{World: oskit.NewWorld(1), Seed: 42, Cost: cm})
		if r.Err != nil {
			t.Fatalf("cost model %d: %v", i, r.Err)
		}
		if i == 0 {
			want = r.Hash64()
		} else if r.Hash64() != want {
			t.Fatalf("cost model %d changed the result", i)
		}
	}
}

// TestDeterministicExecutionWithSync: programs mixing weak-locks with
// mutexes, barriers and condvars stay deterministic under the arbiter.
func TestDeterministicExecutionWithSync(t *testing.T) {
	src := `
int m;
int bar;
int total;
int shared;
void worker(int id) {
    for (int i = 0; i < 50; i++) {
        shared = shared + id;
    }
    barrier_wait(&bar);
    lock(&m);
    total = total + shared + id;
    unlock(&m);
}
int main(void) {
    barrier_init(&bar, 3);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    int t3 = spawn(worker, 3);
    join(t1); join(t2); join(t3);
    print(total);
    return 0;
}
`
	p := MustLoad("detsync.mc", src)
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for seed := uint64(0); seed < 8; seed++ {
		r := ip.RunDeterministic(RunConfig{World: oskit.NewWorld(1), Seed: seed*7 + 1})
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seed, r.Err)
		}
		if seed == 0 {
			want = r.Hash64()
		} else if r.Hash64() != want {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

// TestDeterministicExecutionBenchmark: a full benchmark program (pbzip2)
// is seed-independent under the arbiter.
func TestDeterministicExecutionIO(t *testing.T) {
	src := `
int sum;
int m;
void worker(int id) {
    int buf[16];
    int fd = open(10 + id);
    int n = read(fd, buf, 16);
    int s = 0;
    for (int i = 0; i < n; i++) { s += buf[i]; }
    close(fd);
    lock(&m);
    sum = sum + s;
    unlock(&m);
    // Benign race on the same counter, guarded by weak-locks after
    // instrumentation:
    sum = sum + rnd(3);
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 1);
    join(t1); join(t2);
    print(sum);
    return 0;
}
`
	world := func() *oskit.World {
		w := oskit.NewWorld(5)
		w.AddFile(10, []int64{1, 2, 3})
		w.AddFile(11, []int64{10, 20})
		return w
	}
	p := MustLoad("detio.mc", src)
	ip, err := p.Instrument(nil, instrument.NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for seed := uint64(0); seed < 8; seed++ {
		r := ip.RunDeterministic(RunConfig{World: world(), Seed: seed + 11})
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seed, r.Err)
		}
		if seed == 0 {
			want = r.Hash64()
		} else if r.Hash64() != want {
			t.Fatalf("seed %d diverged: %q", seed, r.Output)
		}
	}
}
