package core

import (
	"fmt"
	"time"

	"repro/internal/callgraph"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/obs"
	"repro/internal/pointsto"
	"repro/internal/relay"
	"repro/internal/summary"
	"repro/internal/vm"
)

// LoadIncremental is LoadParallel with the RELAY summary walk backed by a
// content-addressed summary store: function summaries whose keys hit the
// store are reused, only the dirty SCC cone is recomputed, and the
// recomputed summaries are stored for the next load. The resulting
// Program is byte-identical (race report, MHP prunes, instrumented
// source) to a from-scratch LoadParallel of the same source, for any
// store contents — the store can only make it faster, never different.
func LoadIncremental(name, src string, workers int, store *summary.Store) (*Program, error) {
	return LoadIncrementalTraced(name, src, workers, store, nil)
}

// LoadIncrementalTraced is LoadIncremental with each stage wrapped in a
// span of tr, using the same span names as LoadParallelTraced; the relay
// span additionally carries reuse attributes (reused/recomputed function
// and dirty-SCC counts), which are a pure function of (source, store
// state) and independent of the worker count.
func LoadIncrementalTraced(name, src string, workers int, store *summary.Store, tr *obs.Tracer) (*Program, error) {
	start := time.Now()
	sp := tr.Start("lex-parse")
	file, err := parser.Parse(name, src)
	sp.SetAttr("bytes", int64(len(src))).End()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	sp = tr.Start("typecheck")
	info, err := types.Check(file)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", name, err)
	}
	sp = tr.Start("compile")
	code, err := vm.Compile(info)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("compile %s: %w", name, err)
	}
	sp.SetAttr("funcs", int64(len(code.Funcs))).End()
	sp = tr.Start("points-to")
	pta := pointsto.Analyze(info)
	sp.End()
	sp = tr.Start("callgraph")
	cg := callgraph.Build(info, pta)
	sp.SetAttr("sccs", int64(len(cg.SCCs))).
		SetAttr("waves", int64(len(cg.Waves()))).End()
	sp = tr.Start("relay")
	races, stats := relay.AnalyzeIncremental(info, pta, cg, workers, store)
	sp.SetAttr("pairs", int64(len(races.Pairs))).
		SetAttr("racy_funcs", int64(len(races.RacyFuncs))).
		SetAttr("racy_nodes", int64(len(races.RacyNodes))).
		SetAttr("reused_funcs", int64(stats.ReusedFuncs)).
		SetAttr("recomputed_funcs", int64(stats.RecomputedFuncs)).
		SetAttr("dirty_sccs", int64(stats.DirtySCCs)).End()
	return &Program{
		Name: name, Source: src, File: file, Info: info,
		PTA: pta, CG: cg, Races: races, Code: code,
		AnalysisWallNS: time.Since(start).Nanoseconds(),
		Incremental:    stats,
		store:          store,
	}, nil
}
