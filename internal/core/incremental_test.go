package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/callgraph"
	"repro/internal/instrument"
	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/profile"
	"repro/internal/summary"
)

// The load-bearing guarantee of the incremental path: for any edit, a
// store-backed analysis of the edited program must be byte-identical —
// race report, MHP-refined report, instrumented source — to a fresh
// whole-program analysis, and must recompute exactly the dirty cone.

// editScenario is one scripted edit: old/new applied to the benchmark
// program text, old2/new2 (optional) applied to the LibC portion.
type editScenario struct {
	name       string
	prog       [2]string // replace prog[0] with prog[1] in the program text
	libc       [2]string // replace libc[0] with libc[1] in the LibC text
	wholeWords bool
}

func (e editScenario) apply(t *testing.T, b *bench.Benchmark) string {
	t.Helper()
	prog, libc := b.Source, bench.LibC
	if e.prog[0] != "" {
		if !strings.Contains(prog, e.prog[0]) {
			t.Fatalf("%s: edit anchor %q not in %s", e.name, e.prog[0], b.Name)
		}
		prog = strings.ReplaceAll(prog, e.prog[0], e.prog[1])
	}
	if e.libc[0] != "" {
		if !strings.Contains(libc, e.libc[0]) {
			t.Fatalf("%s: edit anchor %q not in LibC", e.name, e.libc[0])
		}
		libc = strings.ReplaceAll(libc, e.libc[0], e.libc[1])
	}
	if e.wholeWords {
		// The rename scenario renames at every occurrence, call sites
		// included, across the whole program (no-op if the program never
		// calls the helper).
		prog = strings.ReplaceAll(prog, e.libc[0], e.libc[1])
	}
	return prog + "\n" + libc
}

// scenarios are the issue's four edit classes. LibC edits localize the
// change to one library function so the expected cone is its transitive
// callers; the main edit appends a dead local so only main changes.
var scenarios = []editScenario{
	{
		name: "leaf-edit",
		libc: [2]string{"h = h * 16777619;", "h = h * 16777618;"},
	},
	{
		name: "touch-main",
		prog: [2]string{"int main(void) {", "int main(void) {\n    int __it0; __it0 = 1;"},
	},
	{
		name:       "rename-helper",
		libc:       [2]string{"my_memset", "my_memset_r"},
		wholeWords: true,
	},
	{
		name: "add-lock",
		libc: [2]string{
			"void my_memset(int *dst, int value, int len) {\n    for (int i = 0; i < len; i++) {\n        dst[i] = value;\n    }\n}",
			"int __pr6lk;\nvoid my_memset(int *dst, int value, int len) {\n    for (int i = 0; i < len; i++) {\n        lock(&__pr6lk);\n        dst[i] = value;\n        unlock(&__pr6lk);\n    }\n}",
		},
	},
}

// declPrints maps every function name to its canonical (whitespace- and
// position-independent) printed declaration.
func declPrints(t *testing.T, name, src string) map[string]string {
	t.Helper()
	file, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	info, err := types.Check(file)
	if err != nil {
		t.Fatalf("check %s: %v", name, err)
	}
	out := make(map[string]string, len(info.FuncList))
	for _, fn := range info.FuncList {
		out[fn.Name] = ast.Print(&ast.File{Decls: []ast.Decl{fn.Decl}})
	}
	return out
}

// expectedCone computes, independently of the summary keying, which
// functions an edit must dirty: the functions whose canonical source
// changed (or are new), closed under transitive callers via non-spawn
// call edges and SCC co-membership on the edited program's callgraph.
func expectedCone(t *testing.T, origSrc, editSrc string) map[string]bool {
	t.Helper()
	orig := declPrints(t, "orig", origSrc)

	file, err := parser.Parse("edit", editSrc)
	if err != nil {
		t.Fatalf("parse edited: %v", err)
	}
	info, err := types.Check(file)
	if err != nil {
		t.Fatalf("check edited: %v", err)
	}
	pta := pointsto.Analyze(info)
	cg := callgraph.Build(info, pta)

	cone := make(map[string]bool)
	for _, fn := range info.FuncList {
		if orig[fn.Name] != ast.Print(&ast.File{Decls: []ast.Decl{fn.Decl}}) {
			cone[fn.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range cg.Edges {
			if !e.Spawn && cone[e.Callee.Name] && !cone[e.Caller.Name] {
				cone[e.Caller.Name] = true
				changed = true
			}
		}
		for _, scc := range cg.SCCs {
			dirty := false
			for _, fn := range scc {
				dirty = dirty || cone[fn.Name]
			}
			if dirty {
				for _, fn := range scc {
					if !cone[fn.Name] {
						cone[fn.Name] = true
						changed = true
					}
				}
			}
		}
	}
	return cone
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// renderAll produces the three byte-compared artifacts of a program:
// the unrefined race report, the MHP-refined report, and the
// instrumented source under the full chimera config.
func renderAll(t *testing.T, p *Program) (races, refined, instrumented string) {
	t.Helper()
	rep := p.RefinedRaces()
	ip, err := p.InstrumentWith(rep, profile.NewConcurrency(), instrument.Options{
		FuncLocks: true, LoopLocks: true, BBLocks: true,
	})
	if err != nil {
		t.Fatalf("instrument %s: %v", p.Name, err)
	}
	return p.Races.Render(), rep.Render(), ip.Report.Source
}

// TestIncrementalEditSequences runs the scripted edit scenarios on three
// benchmarks, asserting (a) byte-identical artifacts vs a fresh analysis,
// (b) the recomputed set equals the expected dirty cone exactly, and
// (c) reverting the edit with the same store recomputes nothing.
func TestIncrementalEditSequences(t *testing.T) {
	for _, name := range []string{"pfscan", "knot", "radix"} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("unknown benchmark %s", name)
		}
		for _, sc := range scenarios {
			t.Run(name+"/"+sc.name, func(t *testing.T) {
				origSrc := b.FullSource()
				editSrc := sc.apply(t, b)
				if editSrc == origSrc {
					t.Fatal("edit had no effect")
				}

				store := summary.NewStore()
				origInc, err := LoadIncremental(name, origSrc, 4, store)
				if err != nil {
					t.Fatalf("prime: %v", err)
				}
				origInc.RefinedRaces() // prime the MHP facts too

				editInc, err := LoadIncremental(name, editSrc, 4, store)
				if err != nil {
					t.Fatalf("incremental: %v", err)
				}
				editFresh, err := LoadParallel(name, editSrc, 1)
				if err != nil {
					t.Fatalf("fresh: %v", err)
				}

				ir, irr, ii := renderAll(t, editInc)
				fr, frr, fi := renderAll(t, editFresh)
				if ir != fr {
					t.Errorf("race reports diverge:\nincremental:\n%s\nfresh:\n%s", ir, fr)
				}
				if irr != frr {
					t.Errorf("refined reports diverge:\nincremental:\n%s\nfresh:\n%s", irr, frr)
				}
				if ii != fi {
					t.Errorf("instrumented sources diverge:\nincremental:\n%s\nfresh:\n%s", ii, fi)
				}

				gotDirty := make(map[string]bool, len(editInc.Incremental.Dirty))
				for _, fn := range editInc.Incremental.Dirty {
					gotDirty[fn] = true
				}
				wantDirty := expectedCone(t, origSrc, editSrc)
				if got, want := sortedSet(gotDirty), sortedSet(wantDirty); strings.Join(got, ",") != strings.Join(want, ",") {
					t.Errorf("dirty cone mismatch:\n got  %v\n want %v", got, want)
				}
				if editInc.Incremental.ReusedFuncs == 0 {
					t.Error("no summaries reused")
				}

				// Revert: the original program's summaries and MHP facts are
				// still stored, so re-analyzing it must recompute nothing.
				revert, err := LoadIncremental(name, origSrc, 4, store)
				if err != nil {
					t.Fatalf("revert: %v", err)
				}
				if revert.Incremental.RecomputedFuncs != 0 {
					t.Errorf("revert recomputed %d funcs (%v), want 0",
						revert.Incremental.RecomputedFuncs, revert.Incremental.Dirty)
				}
				rr, rrr, ri := renderAll(t, revert)
				or, orr, oi := renderAll(t, origInc)
				if rr != or || rrr != orr || ri != oi {
					t.Error("revert artifacts diverge from the original analysis")
				}
				if !revert.Incremental.MHPFactsReused {
					t.Error("revert did not reuse stored MHP facts")
				}
			})
		}
	}
}

// TestIncrementalEquivalence is the CI gate: on every benchmark, prime a
// store with the original program, apply the leaf edit, and require the
// incremental re-analysis to reuse summaries while producing byte-
// identical artifacts vs a fresh analysis — at several worker counts.
func TestIncrementalEquivalence(t *testing.T) {
	leaf := scenarios[0]
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			origSrc := b.FullSource()
			editSrc := leaf.apply(t, b)

			fresh, err := LoadParallel(b.Name, editSrc, 1)
			if err != nil {
				t.Fatalf("fresh: %v", err)
			}
			fr, frr, fi := renderAll(t, fresh)

			for _, workers := range []int{1, 8} {
				store := summary.NewStore()
				if _, err := LoadIncremental(b.Name, origSrc, workers, store); err != nil {
					t.Fatalf("prime: %v", err)
				}
				inc, err := LoadIncremental(b.Name, editSrc, workers, store)
				if err != nil {
					t.Fatalf("incremental: %v", err)
				}
				ir, irr, ii := renderAll(t, inc)
				if ir != fr || irr != frr || ii != fi {
					t.Errorf("workers=%d: incremental artifacts diverge from fresh", workers)
				}
				st := inc.Incremental
				if st.ReusedFuncs == 0 || st.RecomputedFuncs == 0 ||
					st.ReusedFuncs+st.RecomputedFuncs != st.TotalFuncs {
					t.Errorf("workers=%d: implausible reuse stats %+v", workers, st)
				}
				if st.RecomputedFuncs >= st.TotalFuncs {
					t.Errorf("workers=%d: leaf edit dirtied every function", workers)
				}
			}
		})
	}
}

// TestIncrementalCacheOutcomes pins the three-way Cache classification:
// miss (cold), partial hit (fresh load that reused summaries), hit
// (whole-program repeat) — and the summary-stats surface.
func TestIncrementalCacheOutcomes(t *testing.T) {
	b := bench.ByName("pfscan")
	orig := b.FullSource()
	edit := scenarios[0].apply(t, b)

	store := summary.NewStore()
	c := NewIncrementalCache(store)

	if _, err := c.Load("pfscan", orig, 2); err != nil {
		t.Fatal(err)
	}
	hits, partial, misses := c.Stats()
	if hits != 0 || partial != 0 || misses != 1 {
		t.Fatalf("cold load: stats = %d/%d/%d, want 0/0/1", hits, partial, misses)
	}

	if _, err := c.Load("pfscan", edit, 2); err != nil {
		t.Fatal(err)
	}
	hits, partial, misses = c.Stats()
	if hits != 0 || partial != 1 || misses != 1 {
		t.Fatalf("edited load: stats = %d/%d/%d, want 0/1/1", hits, partial, misses)
	}

	if _, err := c.Load("pfscan", edit, 2); err != nil {
		t.Fatal(err)
	}
	hits, partial, misses = c.Stats()
	if hits != 1 || partial != 1 || misses != 1 {
		t.Fatalf("repeat load: stats = %d/%d/%d, want 1/1/1", hits, partial, misses)
	}

	ss := c.SummaryStats()
	if ss == nil || ss.Puts == 0 || ss.Hits == 0 || ss.Entries == 0 {
		t.Fatalf("summary stats missing activity: %+v", ss)
	}
	if NewCache().SummaryStats() != nil {
		t.Fatal("store-less cache reported summary stats")
	}
}
