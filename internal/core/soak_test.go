package core

// End-to-end soak test: randomly generated racy multithreaded programs go
// through the full pipeline — RELAY, instrumentation, recording, replay
// under different seeds, and the dynamic race checker. Every generated
// program must (a) replay bit-identically and (b) be dynamically race-free
// after transformation. This is the reproduction's strongest correctness
// net: it exercises the interaction of the static analyses, the rewriter,
// the weak-lock runtime and the logs on program shapes nobody hand-picked.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/instrument"
	"repro/internal/oskit"
)

// genProgram builds a random but well-formed multithreaded MiniC program:
// a few shared globals and arrays, 2-3 worker functions built from a
// statement grammar (shared reads/writes, partitioned array loops, locked
// sections, optional barrier phases), and a main that spawns a mix of
// workers and prints the shared state.
func genProgram(r *rand.Rand) string {
	nGlobals := 2 + r.Intn(3)
	nWorkers := 2 + r.Intn(2)
	useBarrier := r.Intn(2) == 0
	nThreads := 2 + r.Intn(3) // spawned threads

	var sb strings.Builder
	for i := 0; i < nGlobals; i++ {
		fmt.Fprintf(&sb, "int g%d;\n", i)
	}
	sb.WriteString("int shared_arr[64];\nint mtx;\nint bar;\n")

	gvar := func() string { return fmt.Sprintf("g%d", r.Intn(nGlobals)) }

	var stmt func(depth int) string
	stmt = func(depth int) string {
		switch r.Intn(8) {
		case 0:
			return fmt.Sprintf("%s = %s + %d;", gvar(), gvar(), r.Intn(10))
		case 1:
			return fmt.Sprintf("shared_arr[(id * 7 + %d) & 63] = %s;", r.Intn(64), gvar())
		case 2:
			// Partitioned loop: the loop-lock showcase.
			return fmt.Sprintf(`for (int i = 0; i < 16; i++) {
        shared_arr[(id & 3) * 16 + i] = i + %d;
    }`, r.Intn(5))
		case 3:
			return fmt.Sprintf(`lock(&mtx);
    %s = %s + 1;
    unlock(&mtx);`, gvar(), gvar())
		case 4:
			return fmt.Sprintf("int t%d = %s * 2;\n    %s = t%d;", depth, gvar(), gvar(), depth)
		case 5:
			return fmt.Sprintf(`if (%s > %d) {
        %s = %d;
    }`, gvar(), r.Intn(50), gvar(), r.Intn(20))
		case 6:
			return fmt.Sprintf(`for (int k = 0; k < %d; k++) {
        %s = %s + shared_arr[k & 63];
    }`, 4+r.Intn(12), gvar(), gvar())
		default:
			return fmt.Sprintf("%s = shared_arr[%d] + %s;", gvar(), r.Intn(64), gvar())
		}
	}

	for w := 0; w < nWorkers; w++ {
		fmt.Fprintf(&sb, "\nvoid worker%d(int id) {\n", w)
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "    %s\n", stmt(i))
		}
		if useBarrier {
			sb.WriteString("    barrier_wait(&bar);\n")
			fmt.Fprintf(&sb, "    %s\n", stmt(9))
		}
		sb.WriteString("}\n")
	}

	sb.WriteString("\nint main(void) {\n")
	if useBarrier {
		fmt.Fprintf(&sb, "    barrier_init(&bar, %d);\n", nThreads)
	}
	fmt.Fprintf(&sb, "    int tids[%d];\n", nThreads)
	for i := 0; i < nThreads; i++ {
		fmt.Fprintf(&sb, "    tids[%d] = spawn(worker%d, %d);\n", i, r.Intn(nWorkers), i)
	}
	for i := 0; i < nThreads; i++ {
		fmt.Fprintf(&sb, "    join(tids[%d]);\n", i)
	}
	for i := 0; i < nGlobals; i++ {
		fmt.Fprintf(&sb, "    print(g%d);\n", i)
	}
	sb.WriteString("    print(shared_arr[5]);\n")
	sb.WriteString("    return 0;\n}\n")
	return sb.String()
}

func TestSoakRandomPrograms(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	r := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < trials; trial++ {
		src := genProgram(r)
		prog, err := Load(fmt.Sprintf("soak%d.mc", trial), src)
		if err != nil {
			t.Fatalf("trial %d load: %v\n%s", trial, err, src)
		}
		// Alternate between naive and all-opts instrumentation.
		opts := instrument.NaiveOptions()
		if trial%2 == 1 {
			opts = instrument.AllOptions()
		}
		profiled := prog.ProfileNonConcurrency(
			func(run int) *oskit.World { return oskit.NewWorld(uint64(run)) }, 3, uint64(trial))
		ip, err := prog.Instrument(profiled, opts)
		if err != nil {
			t.Fatalf("trial %d instrument: %v\n%s", trial, err, src)
		}

		// Record and replay under two unrelated seeds.
		recSeed := uint64(trial*31 + 5)
		rec, log := ip.Record(RunConfig{World: oskit.NewWorld(1), Seed: recSeed, Table: ip.Table})
		if rec.Err != nil {
			t.Fatalf("trial %d record: %v\noriginal:\n%s\ninstrumented:\n%s",
				trial, rec.Err, src, ip.Prog.Source)
		}
		if rec.WLStats.Timeouts != 0 {
			t.Errorf("trial %d: %d weak-lock timeouts during record", trial, rec.WLStats.Timeouts)
		}
		for _, repSeed := range []uint64{recSeed + 1000, 999999 - uint64(trial)} {
			rep, err := ip.Replay(log, RunConfig{World: oskit.NewWorld(1), Seed: repSeed, Table: ip.Table})
			if err != nil {
				t.Fatalf("trial %d replay(seed %d): %v\ninstrumented:\n%s",
					trial, repSeed, err, ip.Prog.Source)
			}
			if rep.Hash64() != rec.Hash64() {
				t.Fatalf("trial %d replay(seed %d) diverged:\nrecorded %q\nreplayed %q\nsource:\n%s",
					trial, repSeed, rec.Output, rep.Output, src)
			}
		}

		// The transformed program is race-free under the extended sync set.
		races, res := CheckDynamicRaces(ip.Prog, ip.Table,
			RunConfig{World: oskit.NewWorld(1), Seed: recSeed + 7, Table: ip.Table})
		if res.Err != nil {
			t.Fatalf("trial %d check run: %v", trial, res.Err)
		}
		if len(races) != 0 {
			t.Fatalf("trial %d: instrumented program has a race: %v\noriginal:\n%s\ninstrumented:\n%s",
				trial, races[0], src, ip.Prog.Source)
		}
	}
}

// TestSoakDeterministicExecution runs a slice of the generated programs
// under the deterministic-execution arbiter across seeds.
func TestSoakDeterministicExecution(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	r := rand.New(rand.NewSource(424242))
	for trial := 0; trial < trials; trial++ {
		src := genProgram(r)
		prog, err := Load(fmt.Sprintf("dsoak%d.mc", trial), src)
		if err != nil {
			t.Fatalf("trial %d load: %v\n%s", trial, err, src)
		}
		ip, err := prog.Instrument(nil, instrument.NaiveOptions())
		if err != nil {
			t.Fatalf("trial %d instrument: %v", trial, err)
		}
		var want uint64
		for seed := uint64(0); seed < 4; seed++ {
			res := ip.RunDeterministic(RunConfig{World: oskit.NewWorld(1), Seed: seed * 917})
			if res.Err != nil {
				t.Fatalf("trial %d det seed %d: %v\n%s", trial, seed, res.Err, ip.Prog.Source)
			}
			if seed == 0 {
				want = res.Hash64()
			} else if res.Hash64() != want {
				t.Fatalf("trial %d: deterministic execution diverged at seed %d\n%s",
					trial, seed, src)
			}
		}
	}
}
