// Package escape is the static precision layer between RELAY and the
// instrumenter: three sound passes that discharge race pairs before they
// cost a weak lock, in the spirit of lightweight prune phases such as
// RacerF (Dacík & Vojnar, 2025).
//
// Chimera's dynamic cost — weak-lock acquires, sync-order log bytes,
// record/replay wall time — scales with the race-pair set that survives
// to instrumentation, and RELAY is deliberately as imprecise as the
// paper's tool (§3.3): pairs are generated per Steensgaard alias class,
// locksets ignore non-mutex synchronization, and sharing is judged by a
// coarse whole-program escape bit. Each pass here attacks one of those
// imprecision sources with a proof obligation that fails closed:
//
//  1. Thread-escape (this file): an abstract object is shared only if it
//     is referenced by two thread roots that may run concurrently (two
//     distinct roots, or one root with several live instances), reaches a
//     spawn argument, or is reachable from such memory through the
//     points-to contents relation. A pair is discharged ("escape") when
//     the two accesses share no abstract object that is shared — in
//     particular when they share no abstract object at all: RELAY pairs
//     by Steensgaard class, but every concrete cell maps to exactly one
//     abstract object, so a real race always places that one object in
//     both accesses' Andersen points-to sets. Pairs that exist only
//     because two distinct objects were unified into one alias class
//     cannot race and are pruned.
//
//  2. Must-lockset sharpening (mustlock.go): RELAY intersects symbolic
//     lock representatives literally, so `lock(m)` where m is a local
//     alias of &qlock protects nothing it can see. The pass sharpens
//     lock access paths by conditional must-alias reasoning —
//     single-assignment, address-free locals are replaced by the
//     representative of their initializer — and discharges a pair
//     ("must-lock") when every materialized root combination of the two
//     accesses holds a common grounded key: a pure G#-rooted path that
//     names the same concrete mutex in every thread.
//
//  3. Read-only sharing (timeline.go): an object whose every
//     summary-visible write provably executes on main's timeline before
//     the first possible spawn is immutable while more than one thread
//     exists. A pair whose shared witness objects are all write-free
//     after the first spawn is discharged ("read-only"): the pair's own
//     racing write is one of its two accesses, and that write either
//     runs on a child thread (then the object is marked written), on
//     main after a spawn may have happened (marked), or provably before
//     any thread exists — in which case it is ordered before the other
//     access by the spawn edge itself.
//
// Soundness is the product's only hard requirement — a wrongly pruned
// pair gets no weak lock, so a real race would replay unordered. Every
// pass therefore keeps the pair when any input is imperfect: missing
// main, capped (possibly truncated) summaries, unindexable nodes,
// locals the must-alias reasoning cannot pin, or spawn sites whose
// timeline position cannot be attributed. The certifier re-derives each
// discharge independently (internal/certify, the discharge check), and
// scenario pipeline stage 10 plus FuzzPrecisionSoundness hold the
// refined programs to bit-identical replay and unchanged dynamic-checker
// verdicts.
//
// The layer is wired as relay.Report.RefinePrecision and composes with
// the MHP refinement: refine MHP first (its Pruned entries are carried
// forward), then precision; the provenance chain reported → mhp →
// escape → must-lock → read-only → instrumented is what `racecheck
// -pairs` renders.
package escape

import (
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/relay"
)

// Analysis holds the computed precision facts for one analyzed program.
type Analysis struct {
	rep *relay.Report

	// disabled fails the whole layer closed: every verdict keeps.
	disabled bool

	// shared marks abstract objects reachable by two concurrently
	// runnable threads (see computeShared).
	shared map[pointsto.ObjID]bool

	// writtenPostSpawn marks objects with at least one summary-visible
	// write not proven to execute before the first possible spawn.
	writtenPostSpawn map[pointsto.ObjID]bool

	ml *mustLock
}

// Analyze computes the three passes' facts over an analyzed program. The
// report must carry the Info/PTA/CG/Summaries it was produced with.
func Analyze(rep *relay.Report) *Analysis {
	a := &Analysis{rep: rep}
	main := rep.Info.Funcs["main"]
	if main == nil || !rep.SummariesComplete() {
		// No timeline to reason from, or summaries may have dropped
		// accesses: nothing below is trustworthy.
		a.disabled = true
		return a
	}
	accs := rep.RootAccesses()
	multi := rep.MultiInstanceRoots()
	a.computeShared(accs, multi, main)
	tl := newTimeline(rep, main)
	a.writtenPostSpawn = tl.postSpawnWrites(accs)
	a.ml = newMustLock(rep, accs, multi)
	return a
}

// Refine returns a copy of the report with every pair the analysis
// discharges moved to Pruned (with provenance); earlier refinement
// passes' Pruned entries are carried forward. The input report is not
// modified.
func Refine(rep *relay.Report) *relay.Report {
	return rep.RefinePrecision(Analyze(rep).Verdict)
}

// Verdict decides one race pair: prune=true means the pair provably
// cannot be a real race, with reason one of "escape", "must-lock", or
// "read-only". Any gap in the proofs yields (false, ""): the pair is
// kept.
func (a *Analysis) Verdict(p *relay.RacePair) (prune bool, reason string) {
	if a.disabled {
		return false, ""
	}
	// Witness objects: a real race between the two accesses happens on a
	// concrete cell, and each concrete cell maps to exactly one abstract
	// object, which Andersen's analysis then places in both accesses'
	// points-to sets. Function objects cannot be written; non-shared
	// objects cannot be reached by two concurrent threads.
	witnessShared := false
	witnessWritten := false
	for _, o := range intersectObjs(p.A.Objs, p.B.Objs) {
		if a.rep.PTA.Obj(o).Kind == pointsto.OFunc {
			continue
		}
		if !a.shared[o] {
			continue
		}
		witnessShared = true
		if a.writtenPostSpawn[o] {
			witnessWritten = true
			break
		}
	}
	if !witnessShared {
		return true, "escape"
	}
	if a.ml.protected(p) {
		return true, "must-lock"
	}
	if !witnessWritten {
		return true, "read-only"
	}
	return false, ""
}

// computeShared seeds sharing from (a) objects referenced — through the
// materialized root accesses — by two distinct thread roots or by one
// multi-instance root, and (b) everything a spawn argument may point to;
// then closes the set under the points-to contents relation (memory
// reachable from shared memory is shared).
func (a *Analysis) computeShared(accs []relay.RootAccess, multi map[*types.FuncInfo]bool, main *types.FuncInfo) {
	pta := a.rep.PTA
	a.shared = make(map[pointsto.ObjID]bool)

	firstRoot := make(map[pointsto.ObjID]*types.FuncInfo)
	var queue []pointsto.ObjID
	mark := func(o pointsto.ObjID) {
		if !a.shared[o] {
			a.shared[o] = true
			queue = append(queue, o)
		}
	}
	for _, ra := range accs {
		for _, o := range ra.Acc.Objs {
			if ra.Root != main && multi[ra.Root] {
				mark(o) // two instances of one root share everything it touches
				continue
			}
			if first, ok := firstRoot[o]; !ok {
				firstRoot[o] = ra.Root
			} else if first != ra.Root {
				mark(o) // two distinct roots reference it
			}
		}
	}
	for _, o := range pta.SpawnArgPointees() {
		mark(o)
	}
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		for _, p := range pta.ContentsPointees(o) {
			mark(p)
		}
	}
}

// intersectObjs intersects two sorted ObjID slices.
func intersectObjs(x, y []pointsto.ObjID) []pointsto.ObjID {
	var out []pointsto.ObjID
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	return out
}
