package escape

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

func analyzeFixture(t *testing.T, name string) *relay.Report {
	t.Helper()
	path := filepath.Join("testdata", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.Parse(path, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("typecheck %s: %v", name, err)
	}
	return relay.AnalyzeProgram(info)
}

// The precision layer's behavior on each fixture is pinned exactly: the
// positives must discharge precisely the intended pairs with the
// intended reason, and the fail-closed negatives — escape via a struct
// field chain, a lock held on only one path, a "read-only" object
// written under a condvar wakeup — must not lose a single pair.
func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		base    int
		kept    int
		reasons map[string]int
	}{
		// pick() unifies arrays a and b into one Steensgaard class, but
		// their Andersen objects are disjoint: every cross-array pair is
		// discharged as non-shared; the done-flag pair survives.
		{"aliasclass.mc", 7, 3, map[string]int{"escape": 4}},
		// worker's single-assignment local alias of &glock sharpens to
		// G#glock, giving every g pair a common grounded lock.
		{"mustlock.mc", 4, 1, map[string]int{"must-lock": 3}},
		// cfg is written once, provably before the first spawn: its
		// write/read pairs are read-only sharing.
		{"readonly.mc", 3, 1, map[string]int{"read-only": 2}},
		// NEGATIVE: node escapes via gbox.slot — the val race pair must
		// survive. (The slot-pointer field itself is written only before
		// the spawn, so that one pair is sound to discharge.)
		{"fieldchain.mc", 2, 1, map[string]int{"read-only": 1}},
		// NEGATIVE: bump() runs with glock on only one path, so the
		// must-lockset is empty and nothing may be discharged.
		{"onepath.mc", 3, 3, nil},
		// NEGATIVE: data is written after the spawn under a condvar
		// wakeup, so read-only sharing must not fire.
		{"condwrite.mc", 3, 3, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.fixture, func(t *testing.T) {
			rep := analyzeFixture(t, tc.fixture)
			if len(rep.Pairs) != tc.base {
				t.Fatalf("base report has %d pairs, want %d", len(rep.Pairs), tc.base)
			}
			prec := Refine(rep)
			if len(prec.Pairs) != tc.kept {
				t.Errorf("precision kept %d pairs, want %d", len(prec.Pairs), tc.kept)
			}
			if got, want := len(prec.Pairs)+len(prec.Pruned), len(rep.Pairs); got != want {
				t.Errorf("kept %d + pruned %d != reported %d", len(prec.Pairs), len(prec.Pruned), want)
			}
			byReason := make(map[string]int)
			for _, pp := range prec.Pruned {
				byReason[pp.Reason]++
			}
			for reason, want := range tc.reasons {
				if byReason[reason] != want {
					t.Errorf("pruned %d pair(s) as %q, want %d", byReason[reason], reason, want)
				}
				delete(byReason, reason)
			}
			for reason, n := range byReason {
				t.Errorf("unexpected prune reason %q on %d pair(s)", reason, n)
			}
		})
	}
}

// The genuinely racing pair in the field-chain fixture — worker's
// gbox.slot->val write against main's post-spawn val read — must be
// among the kept pairs, not just "some pair survived".
func TestFieldChainKeepsValRace(t *testing.T) {
	prec := Refine(analyzeFixture(t, "fieldchain.mc"))
	found := false
	for _, p := range prec.Pairs {
		if (p.A.Fn.Name == "worker" && p.A.Write) || (p.B.Fn.Name == "worker" && p.B.Write) {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker's val write is in no kept pair: %v", prec.Render())
	}
}

// Refinement is deterministic: three runs over fresh analyses render
// byte-identical reports (map iteration must never leak into output).
func TestRefineDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 3; i++ {
		prec := Refine(analyzeFixture(t, "aliasclass.mc"))
		got := []byte(prec.Render())
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(got, first) {
			t.Fatalf("run %d rendered differently:\n--- got ---\n%s\n--- first ---\n%s", i, got, first)
		}
	}
}

// Refining an already-refined report discharges nothing further: the
// verdicts are a function of the base analysis, so a second pass must
// be a fixpoint (and must carry the first pass's provenance forward).
func TestRefineIdempotent(t *testing.T) {
	once := Refine(analyzeFixture(t, "mustlock.mc"))
	twice := Refine(once)
	if len(twice.Pairs) != len(once.Pairs) {
		t.Errorf("second pass changed kept pairs: %d -> %d", len(once.Pairs), len(twice.Pairs))
	}
	if len(twice.Pruned) != len(once.Pruned) {
		t.Errorf("second pass changed pruned pairs: %d -> %d", len(once.Pruned), len(twice.Pruned))
	}
}
