package escape

import (
	"sort"
	"strings"

	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

// Must-lockset sharpening.
//
// RELAY compares symbolic lock representatives literally, so a lock
// acquired through a local pointer alias — `int *m = &qlock; lock(m);` —
// carries the representative ld(L#fn#m), which never intersects the
// G#qlock held elsewhere, and the pair is reported even though both
// accesses are protected by the same concrete mutex. The sharpening is a
// conditional must-alias step: a function-local that is assigned exactly
// once (at its declaration), and whose address is never taken, always
// holds the value of its initializer, so ld(L#fn#x) can be rewritten to
// the initializer's representative. Rewriting runs to a fixpoint so
// chained aliases resolve.
//
// A sharpened representative proves protection only if it is "grounded":
// a pure G#-rooted address path with no loads, no parameter residue and
// no local frames — such a path names the same concrete memory cell in
// every thread, so two accesses holding it hold the same mutex. A raw
// L#fn#x match is deliberately NOT protection: each running instance of
// fn has its own x, so equal names may be different locks (the
// one-path-lock fixture pins this strictness).
//
// The pair verdict re-enumerates every materialized root combination of
// the two access nodes — RELAY dedups pairs by node pair, so the
// recorded roots are only the first attribution, and the same node can
// materialize under several locksets via different call chains — and
// discharges ("must-lock") only when each combination that RELAY's own
// overapproximation admits shares a common grounded key on both sides.
type mustLock struct {
	rep   *relay.Report
	multi map[*types.FuncInfo]bool

	// byNode groups the materialized root accesses by access node; a
	// pair's combinations are the cross product of its two groups.
	byNode map[ast.NodeID][]relay.RootAccess

	subst     map[string]string // "ld(L#fn#x)" -> initializer representative
	substKeys []string          // sorted, for deterministic rewriting

	groundedMemo map[*relay.Access][]string
}

func newMustLock(rep *relay.Report, accs []relay.RootAccess, multi map[*types.FuncInfo]bool) *mustLock {
	m := &mustLock{
		rep:          rep,
		multi:        multi,
		byNode:       make(map[ast.NodeID][]relay.RootAccess),
		subst:        make(map[string]string),
		groundedMemo: make(map[*relay.Access][]string),
	}
	for _, ra := range accs {
		m.byNode[ra.Acc.Node] = append(m.byNode[ra.Acc.Node], ra)
	}
	m.buildSubst()
	return m
}

// buildSubst collects the single-assignment, address-free locals whose
// declaration initializer the representative grammar can name. Shadowed
// names are skipped entirely: L#fn#x does not distinguish two locals
// both called x, so a substitution keyed on the name could pick the
// wrong one.
func (m *mustLock) buildSubst() {
	info := m.rep.Info
	for _, fn := range info.FuncList {
		localCount := make(map[string]int)
		var decls []*ast.DeclStmt
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeclStmt); ok {
				if o := info.Objects[ds.Decl.ID()]; o != nil && o.Kind == types.ObjLocal {
					localCount[o.Name]++
					decls = append(decls, ds)
				}
			}
			return true
		})
		for _, ds := range decls {
			o := info.Objects[ds.Decl.ID()]
			if o == nil || o.AddrTaken || ds.Decl.Init == nil || localCount[o.Name] != 1 {
				continue
			}
			if m.writeCount(o) != 1 {
				continue // reassigned somewhere: not single-assignment
			}
			v, ok := m.rep.LockRep(ds.Decl.Init, fn)
			if !ok {
				continue
			}
			key := "ld(L#" + fn.Name + "#" + o.Name + ")"
			if v == key {
				continue
			}
			m.subst[key] = v
		}
	}
	for k := range m.subst {
		m.substKeys = append(m.substKeys, k)
	}
	sort.Strings(m.substKeys)
}

// writeCount counts stores to a scalar object across the whole program
// (the initializing declaration included).
func (m *mustLock) writeCount(v *types.Object) int {
	info := m.rep.Info
	n := 0
	ast.InspectFile(info.File, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.DeclStmt:
			if info.Objects[s.Decl.ID()] == v && s.Decl.Init != nil {
				n++
			}
		case *ast.AssignStmt:
			if id, ok := s.LHS.(*ast.Ident); ok && info.Uses[id.ID()] == v {
				n++
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && info.Uses[id.ID()] == v {
				n++
			}
		}
		return true
	})
	return n
}

// sharpen rewrites local-alias loads to their initializer representatives,
// to a fixpoint (chains like a = b, b = &g resolve in two rounds; the
// declaration order of MiniC locals makes cycles impossible, the bound is
// a belt-and-braces guard).
func (m *mustLock) sharpen(l string) string {
	for round := 0; round < 8; round++ {
		out := l
		for _, k := range m.substKeys {
			out = strings.ReplaceAll(out, k, m.subst[k])
		}
		if out == l {
			break
		}
		l = out
	}
	return l
}

// grounded reports whether a sharpened representative is a pure static
// address path: rooted at a global, with no loads of mutable memory, no
// parameter residue, and no per-instance local frames. Such a path names
// the same concrete cell in every thread of every execution.
func grounded(rep string) bool {
	return strings.HasPrefix(rep, "G#") &&
		!strings.Contains(rep, "ld(") &&
		!strings.Contains(rep, "P@") &&
		!strings.Contains(rep, "L#")
}

// protected decides the must-lock verdict for one pair: every root
// combination RELAY's overapproximation admits for the two access nodes
// must share a grounded key. No combination at all fails closed.
func (m *mustLock) protected(p *relay.RacePair) bool {
	as := m.byNode[p.A.Node]
	bs := m.byNode[p.B.Node]
	if len(as) == 0 || len(bs) == 0 {
		return false
	}
	combos := 0
	for _, ra := range as {
		for _, rb := range bs {
			if !ra.Acc.Write && !rb.Acc.Write {
				continue
			}
			if ra.Acc.Node == rb.Acc.Node && ra.Root == rb.Root && !m.multi[ra.Root] {
				continue
			}
			if !m.canRace(ra.Root, rb.Root) {
				continue
			}
			combos++
			if !m.commonGrounded(ra.Acc, rb.Acc) {
				return false
			}
		}
	}
	return combos > 0
}

// canRace mirrors detectRaces' root filter: distinct roots may always
// overlap; a root races itself only when several instances run.
func (m *mustLock) canRace(r1, r2 *types.FuncInfo) bool {
	if r1 != r2 {
		return true
	}
	if r1.Name == "main" {
		return false
	}
	return m.multi[r1]
}

func (m *mustLock) commonGrounded(a, b *relay.Access) bool {
	ga := m.groundedSet(a)
	if len(ga) == 0 {
		return false
	}
	gb := m.groundedSet(b)
	for _, k := range gb {
		for _, j := range ga {
			if k == j {
				return true
			}
		}
	}
	return false
}

// groundedSet computes (and memoizes) the grounded keys an access's
// absolute lockset holds after sharpening.
func (m *mustLock) groundedSet(acc *relay.Access) []string {
	if s, ok := m.groundedMemo[acc]; ok {
		return s
	}
	var out []string
	for _, l := range acc.Lockset {
		if g := m.sharpen(l); grounded(g) {
			out = append(out, g)
		}
	}
	m.groundedMemo[acc] = out
	return out
}
