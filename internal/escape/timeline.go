package escape

import (
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/relay"
)

// Read-only-sharing detection.
//
// Before main executes its first spawn, exactly one thread exists, so a
// write that provably completes before that point is ordered before
// every access any child thread will ever perform. An object whose
// every summary-visible write is such a pre-spawn write is effectively
// immutable while the program is concurrent, and a pair whose shared
// witness objects are all in that state cannot be a real race: the
// pair's racing write is one of its own two summary-visible accesses.
//
// The timeline mirrors the MHP fork/join analysis' main indexing — the
// top-level statement order of main is a sequential timeline; each
// statement's call closure (spawn edges excluded) tells which functions
// run as part of it — but needs only one event: the smallest top-level
// index at which a spawn may execute. Writes are classified against it:
//
//   - a write materialized at a non-main root runs on a child thread —
//     post-spawn by definition;
//   - a write in main's own body is pre-spawn iff its top-level index is
//     strictly below the first-spawn index (a statement that both spawns
//     and writes is post-spawn: intra-statement order is not modeled);
//   - a write in a function main calls is pre-spawn iff every top-level
//     statement whose closure reaches that function lies strictly below
//     the first-spawn index.
//
// Every attribution gap fails closed to "written post-spawn": nodes
// missing from the index, functions with no reach set, or spawn sites
// that cannot be placed on the timeline (then firstSpawn is -1 and
// everything is post-spawn).
type timeline struct {
	rep  *relay.Report
	main *types.FuncInfo

	// topIdx maps every AST node in main's body to the index of the
	// top-level statement containing it.
	topIdx map[ast.NodeID]int

	// reach maps a function to the set of main top-level statement
	// indices whose call closure (call edges only) reaches it.
	reach map[*types.FuncInfo]map[int]bool

	// firstSpawn is the smallest main top-level index under which a spawn
	// may execute; -1 means "unknown — treat everything as post-spawn".
	// The first thread creation in any execution is performed by main
	// (no other thread exists yet), so the minimum over main-attributable
	// spawn positions bounds every spawn, including ones that later run
	// on child threads.
	firstSpawn int
}

func newTimeline(rep *relay.Report, main *types.FuncInfo) *timeline {
	tl := &timeline{
		rep:    rep,
		main:   main,
		topIdx: make(map[ast.NodeID]int),
		reach:  make(map[*types.FuncInfo]map[int]bool),
	}
	tl.indexMain()
	tl.findFirstSpawn()
	return tl
}

// indexMain assigns every node in main's body its top-level statement
// index and computes, per function, the set of top-level statements
// whose call closure reaches it (spawn edges excluded: a spawned
// function's work belongs to the child thread, not the statement).
func (tl *timeline) indexMain() {
	for i, s := range tl.main.Decl.Body.Stmts {
		idx := i
		var direct []*types.FuncInfo
		ast.Inspect(s, func(n ast.Node) bool {
			tl.topIdx[n.ID()] = idx
			if call, ok := n.(*ast.Call); ok {
				direct = append(direct, tl.callTargets(call)...)
			}
			return true
		})
		seen := make(map[*types.FuncInfo]bool)
		var dfs func(f *types.FuncInfo)
		dfs = func(f *types.FuncInfo) {
			if f == nil || seen[f] {
				return
			}
			seen[f] = true
			for _, callee := range tl.rep.CG.CalleesOf(f) {
				dfs(callee)
			}
		}
		for _, f := range direct {
			dfs(f)
		}
		for f := range seen {
			set := tl.reach[f]
			if set == nil {
				set = make(map[int]bool)
				tl.reach[f] = set
			}
			set[idx] = true
		}
	}
}

// callTargets resolves the non-builtin functions a call may invoke.
func (tl *timeline) callTargets(call *ast.Call) []*types.FuncInfo {
	info := tl.rep.Info
	if target := info.CallTargets[call.ID()]; target != nil {
		if target.Kind == types.ObjFunc {
			return []*types.FuncInfo{info.Funcs[target.Name]}
		}
		return nil // builtin
	}
	return tl.rep.PTA.CallTargets[call.ID()]
}

// findFirstSpawn places every spawn edge on main's timeline: a site in
// main's own body sits at its top-level index; a site inside another
// function may execute under every top-level statement whose closure
// reaches that function. If any spawn edge cannot be attributed, the
// whole timeline is distrusted (firstSpawn = -1).
func (tl *timeline) findFirstSpawn() {
	tl.firstSpawn = -1
	any := false
	min := -1
	consider := func(idx int) {
		if min < 0 || idx < min {
			min = idx
		}
	}
	seenSite := make(map[ast.NodeID]bool)
	for _, e := range tl.rep.CG.Edges {
		if !e.Spawn || seenSite[e.Site.ID()] {
			continue
		}
		seenSite[e.Site.ID()] = true
		any = true
		if idx, in := tl.topIdx[e.Site.ID()]; in {
			consider(idx)
			continue
		}
		// The site is inside some function: it may run under any main
		// statement reaching its lexical container. A spawn-containing
		// function reachable only through other threads is still bounded
		// below by the main-attributable minimum — but if *no* spawn is
		// attributable the bound is unknown, handled below.
		set := tl.reach[e.Caller]
		if len(set) == 0 {
			continue
		}
		for idx := range set {
			consider(idx)
		}
	}
	if !any {
		// No spawns at all: no second thread ever exists. RELAY reports
		// no pairs for such programs, but keep the math consistent: every
		// write is "pre-spawn" against an infinite first-spawn index.
		tl.firstSpawn = len(tl.main.Decl.Body.Stmts)
		return
	}
	if min < 0 {
		return // spawns exist but none attributable: fail closed
	}
	tl.firstSpawn = min
}

// postSpawnWrites classifies every materialized write access and returns
// the set of objects with at least one write not proven pre-spawn.
func (tl *timeline) postSpawnWrites(accs []relay.RootAccess) map[pointsto.ObjID]bool {
	written := make(map[pointsto.ObjID]bool)
	markAll := func(objs []pointsto.ObjID) {
		for _, o := range objs {
			written[o] = true
		}
	}
	for _, ra := range accs {
		if !ra.Acc.Write {
			continue
		}
		if ra.Root != tl.main || tl.firstSpawn < 0 {
			markAll(ra.Acc.Objs)
			continue
		}
		if ra.Acc.Fn == tl.main {
			idx, in := tl.topIdx[ra.Acc.Node]
			if !in || idx >= tl.firstSpawn {
				markAll(ra.Acc.Objs)
			}
			continue
		}
		set := tl.reach[ra.Acc.Fn]
		if len(set) == 0 {
			markAll(ra.Acc.Objs)
			continue
		}
		for idx := range set {
			if idx >= tl.firstSpawn {
				markAll(ra.Acc.Objs)
				break
			}
		}
	}
	return written
}
