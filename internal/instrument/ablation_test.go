package instrument

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/profile"
	"repro/internal/relay"
)

// fig3Src encodes the paper's Figure 3 situation: alice races with bob and
// with carol; all three are mutually non-concurrent (sequential phases in
// one controller thread while a fourth function runs elsewhere keeps the
// program multithreaded so RELAY reports pairs).
const fig3Src = `
int shared;
int other;

void alice(int n) { shared = n; }
void bob(int n) { shared = shared + n; }
void carol(int n) { shared = shared * n; }

void controller(int n) {
    alice(n);
    bob(n);
    carol(n);
}

void bystander(int n) {
    for (int i = 0; i < 50; i++) { other = other + i; }
}

int main(void) {
    int t1 = spawn(controller, 1);
    int t2 = spawn(controller, 2);
    join(t1); join(t2);
    print(shared);
    return 0;
}
`

// fig3Conc builds the Figure 3 concurrency oracle: alice/bob/carol are
// mutually non-concurrent (and not self-concurrent), everything else is
// concurrent.
func fig3Conc() *profile.Concurrency {
	c := profile.NewConcurrency()
	// Mark everything concurrent by default through observation of a fake
	// run is complex; instead rely on Concurrent() returning false for
	// unobserved pairs and add only the pairs we want concurrent.
	// (controller, controller) etc. are concurrent:
	add := func(a, b string) {
		col := profile.NewCollector()
		// Two overlapping activations on different threads.
		col.Enter(1, 0, 0)
		col.Enter(2, 1, 5)
		col.Exit(1, 0, 10)
		col.Exit(2, 1, 15)
		cc := profile.NewConcurrency()
		cc.AddRun(col, []string{a, b})
		c.Merge(cc)
	}
	add("controller", "controller")
	add("bystander", "controller")
	add("main", "controller")
	add("main", "bystander")
	return c
}

func TestCliqueSharingVsPerPair(t *testing.T) {
	f := parser.MustParse("fig3.mc", fig3Src)
	info := types.MustCheck(f)
	rep := relay.AnalyzeProgram(info)
	if len(rep.Pairs) == 0 {
		t.Fatal("no race pairs")
	}
	conc := fig3Conc()

	shared, err := Instrument(rep, conc, Options{FuncLocks: true, BBLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	perPair, err := Instrument(rep, conc, Options{FuncLocks: true, BBLocks: true, PerPairFuncLocks: true})
	if err != nil {
		t.Fatal(err)
	}

	if len(shared.FuncLockOf) == 0 {
		t.Fatalf("expected function locks with clique sharing; got none (func pairs: %d)", shared.FuncHandledPairs)
	}
	// The paper's point (Fig. 3(b)): with clique sharing, alice holds ONE
	// lock for both of its races; per-pair, it holds one per partner.
	sharedAlice := len(shared.FuncLockOf["alice"])
	perPairAlice := len(perPair.FuncLockOf["alice"])
	if sharedAlice == 0 || perPairAlice == 0 {
		t.Fatalf("alice has no function locks: shared=%d perpair=%d\nfunc locks: %v / %v",
			sharedAlice, perPairAlice, shared.FuncLockOf, perPair.FuncLockOf)
	}
	if !(sharedAlice < perPairAlice) {
		t.Errorf("clique sharing should give alice fewer locks: shared=%d perpair=%d",
			sharedAlice, perPairAlice)
	}
	// Both variants must still run and stay balanced.
	runInstrumented(t, shared, 2)
	runInstrumented(t, perPair, 2)
}
