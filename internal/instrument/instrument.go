// Package instrument implements Chimera's weak-lock instrumentation pass
// (paper §2.2): every potential race pair reported by RELAY is guarded by a
// weak-lock, at the coarsest granularity the profile and symbolic-bounds
// analyses justify:
//
//   - racy function pairs observed non-concurrent in every profile run get
//     a function-lock shared through clique analysis (paper §4);
//   - racy accesses in call-free loops get a loop-lock protecting the
//     symbolic address range, or the whole loop when bounds are imprecise
//     but the body is small (paper §5);
//   - remaining accesses get a basic-block lock, or an instruction lock
//     when the basic block contains a function call (paper §2.2).
//
// The two endpoints of a race pair always share a lock: site-level pairs
// are grouped into connected components (one lock per component), so the
// recorded acquire order of that lock orders the racy accesses, which is
// what makes replay deterministic.
//
// The transformation emits MiniC source text (the moral equivalent of the
// original system's CIL source-to-source translation); the caller reparses
// and recompiles it. Weak-locks in the VM are reentrant and time out, so
// the instrumented code cannot deadlock even where the static ordering
// discipline (func < loop < bb < instr, ascending IDs) cannot be
// guaranteed; the order log keeps replay sound either way.
package instrument

import (
	"fmt"
	"sort"

	"repro/internal/clique"
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/relay"
	"repro/internal/symbolic"
	"repro/internal/weaklock"
)

// Options selects which optimizations are enabled — the paper's Figure 5
// configurations.
type Options struct {
	// FuncLocks enables profile-driven function-granularity locks (§4).
	FuncLocks bool

	// LoopLocks enables symbolic-bounds loop-granularity locks (§5).
	LoopLocks bool

	// BBLocks enables basic-block granularity; when false, site locks
	// degrade to instruction granularity ("instr" config).
	BBLocks bool

	// LoopBodyThreshold is the body-size limit under which an imprecise
	// loop still gets a (serializing) loop-lock (§5.3).
	LoopBodyThreshold int

	// PerPairFuncLocks disables clique sharing (paper Fig. 3(a) vs 3(b)):
	// every non-concurrent racy function pair gets its own function-lock,
	// so a function racing with several partners acquires several locks.
	// Ablation knob; the paper's configuration shares via cliques.
	PerPairFuncLocks bool

	// Tracer, when non-nil, records a span per instrumentation stage
	// (clique/function-lock assignment, site-lock assignment and
	// granularity decisions, rewrite).
	Tracer *obs.Tracer
}

// NaiveOptions is the paper's "instr" configuration: every race guarded at
// instruction granularity.
func NaiveOptions() Options { return Options{} }

// AllOptions enables every optimization ("inst+bb+loop+func").
func AllOptions() Options {
	return Options{FuncLocks: true, LoopLocks: true, BBLocks: true, LoopBodyThreshold: 14}
}

// Site describes one instrumentation decision, for reports and tests.
type Site struct {
	Node    ast.NodeID // racy lvalue
	Kind    weaklock.Kind
	Lock    weaklock.ID
	Precise bool   // loop sites: bounds were precise
	Reason  string // loop sites: imprecision reason
	Fn      string
}

// Result is the instrumentation output.
type Result struct {
	// Source is the instrumented MiniC program text; reparse + recheck +
	// recompile to run it.
	Source string

	// Table is the weak-lock table the VM needs.
	Table *weaklock.Table

	// Sites are the per-racy-node decisions.
	Sites []Site

	// FuncLockOf maps function names to the function-lock IDs they
	// acquire on entry.
	FuncLockOf map[string][]weaklock.ID

	// Cliques is the clique analysis result (nil without FuncLocks).
	Cliques *clique.Result

	// StaticCounts counts instrumentation sites per granularity.
	StaticCounts [weaklock.NumKinds]int

	// PairsByFunc counts race pairs handled by function locks vs sites.
	FuncHandledPairs, SiteHandledPairs int
}

// nodeCtx locates a racy node in the tree.
type nodeCtx struct {
	fn    string
	expr  ast.Expr
	stmt  ast.Stmt   // innermost statement (may be a loop/if for header accesses)
	loops []ast.Stmt // enclosing loops, outermost first (excluding stmt itself)
	block *ast.Block // block containing stmt (nil for header statements)
	idx   int        // index of stmt within block
}

// loopAcq is one loop-level acquire placement.
type loopAcq struct {
	lock    weaklock.ID
	precise bool
	base    ast.Expr
	lo, hi  *symbolic.LinExpr
}

// region is a basic-block region within a block.
type region struct {
	start, end int // inclusive statement index range
	locks      map[weaklock.ID]bool
}

// plan is the full set of placements consumed by the rewriter.
type plan struct {
	funcLocks  map[string][]weaklock.ID
	loopSites  map[ast.NodeID][]loopAcq            // loop stmt -> acquires
	bbSites    map[ast.NodeID][]*region            // block -> regions
	instrSites map[ast.NodeID]map[weaklock.ID]bool // stmt -> locks
	table      *weaklock.Table
}

// Instrument runs the full pass. conc may be nil (no profile; function
// locks disabled in that case regardless of Options).
func Instrument(rep *relay.Report, conc *profile.Concurrency, opts Options) (*Result, error) {
	ins := &instrumenter{
		rep:  rep,
		conc: conc,
		opts: opts,
		sym:  symbolic.New(rep.Info),
		res: &Result{
			Table:      weaklock.NewTable(),
			FuncLockOf: make(map[string][]weaklock.ID),
		},
	}
	if ins.opts.LoopBodyThreshold == 0 {
		ins.opts.LoopBodyThreshold = 14
	}
	tr := opts.Tracer
	sp := tr.Start("locate")
	ins.locate()
	ins.splitPairs()
	sp.SetAttr("func_pairs", int64(ins.res.FuncHandledPairs)).
		SetAttr("site_pairs", int64(ins.res.SiteHandledPairs)).End()
	sp = tr.Start("clique-func-locks")
	ins.assignFuncLocks()
	if ins.res.Cliques != nil {
		sp.SetAttr("cliques", int64(len(ins.res.Cliques.Cliques)))
	}
	sp.SetAttr("func_locks", int64(len(ins.res.FuncLockOf))).End()
	sp = tr.Start("site-locks")
	ins.assignSiteLocks()
	ins.decideSites()
	sp.SetAttr("sites", int64(len(ins.res.Sites))).
		SetAttr("locks", int64(ins.res.Table.Len())).End()
	sp = tr.Start("rewrite")
	src, err := ins.rewrite()
	sp.End()
	if err != nil {
		return nil, err
	}
	ins.res.Source = src
	return ins.res, nil
}

type instrumenter struct {
	rep  *relay.Report
	conc *profile.Concurrency
	opts Options
	sym  *symbolic.Analysis
	res  *Result

	ctx map[ast.NodeID]*nodeCtx

	funcPairs []clique.Pair
	sitePairs []*relay.RacePair

	// nodeLock maps racy nodes with site pairs to their component lock.
	nodeLock map[ast.NodeID]weaklock.ID

	// wlUsers marks functions whose call subtree performs weak-lock
	// operations (for §2.3 release-around-inner-region).
	wlUsers map[string]bool

	pl plan
}

// computeWLUsers closes the "uses weak-locks" property over the call
// graph: a function uses them if it holds a function-lock, contains any
// instrumentation site, or calls a user.
func (ins *instrumenter) computeWLUsers() {
	ins.wlUsers = make(map[string]bool)
	for fn := range ins.pl.funcLocks {
		ins.wlUsers[fn] = true
	}
	for _, s := range ins.res.Sites {
		ins.wlUsers[s.Fn] = true
	}
	// Propagate up the call graph to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fn := range ins.rep.Info.FuncList {
			if ins.wlUsers[fn.Name] {
				continue
			}
			for _, callee := range ins.rep.CG.CalleesOf(fn) {
				if ins.wlUsers[callee.Name] {
					ins.wlUsers[fn.Name] = true
					changed = true
					break
				}
			}
		}
	}
}

// locate builds the nodeCtx map for every racy node by walking the
// original tree with positional context.
func (ins *instrumenter) locate() {
	ins.ctx = make(map[ast.NodeID]*nodeCtx)
	racy := ins.rep.RacyNodes

	for _, fn := range ins.rep.Info.FuncList {
		fnName := fn.Name
		var loops []ast.Stmt

		var walkStmt func(s ast.Stmt, blk *ast.Block, idx int)
		record := func(n ast.Node, stmt ast.Stmt, blk *ast.Block, idx int) {
			ast.Inspect(n, func(x ast.Node) bool {
				e, ok := x.(ast.Expr)
				if !ok {
					return true
				}
				if _, isRacy := racy[e.ID()]; !isRacy {
					return true
				}
				if _, seen := ins.ctx[e.ID()]; seen {
					return true
				}
				ins.ctx[e.ID()] = &nodeCtx{
					fn: fnName, expr: e, stmt: stmt,
					loops: append([]ast.Stmt{}, loops...),
					block: blk, idx: idx,
				}
				return true
			})
		}
		var walkBlock func(b *ast.Block)
		walkBlock = func(b *ast.Block) {
			for i, s := range b.Stmts {
				walkStmt(s, b, i)
			}
		}
		walkStmt = func(s ast.Stmt, blk *ast.Block, idx int) {
			switch s := s.(type) {
			case *ast.Block:
				walkBlock(s)
			case *ast.IfStmt:
				record(s.CondE, s, blk, idx)
				walkBlock(s.Then)
				if s.Else != nil {
					walkStmt(s.Else, nil, -1)
				}
			case *ast.WhileStmt:
				record(s.CondE, s, blk, idx)
				loops = append(loops, s)
				walkBlock(s.Body)
				loops = loops[:len(loops)-1]
			case *ast.ForStmt:
				if s.Init != nil {
					record(s.Init, s, blk, idx)
				}
				if s.CondE != nil {
					record(s.CondE, s, blk, idx)
				}
				if s.Post != nil {
					record(s.Post, s, blk, idx)
				}
				loops = append(loops, s)
				walkBlock(s.Body)
				loops = loops[:len(loops)-1]
			default:
				record(s, s, blk, idx)
			}
		}
		walkBlock(fn.Decl.Body)
	}
}

// splitPairs divides race pairs into function-lock-handled and
// site-handled (paper Fig. 1 decision). Functions that unconditionally
// block (barrier_wait, join) are excluded from function-lock treatment:
// holding a weak-lock across a barrier guarantees weak-lock timeouts on
// every generation, the pathological case §2.3's preemption mechanism is a
// backstop for, not a steady state.
func (ins *instrumenter) splitPairs() {
	blocksAlways := make(map[string]bool)
	for _, fn := range ins.rep.Info.FuncList {
		found := false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.Call)
			if !ok {
				return true
			}
			if target := ins.rep.Info.CallTargets[call.ID()]; target != nil {
				switch target.Builtin {
				case types.BBarrierWait, types.BJoin:
					found = true
					return false
				}
			}
			return true
		})
		blocksAlways[fn.Name] = found
	}
	useFunc := func(a, b string) bool {
		if !ins.opts.FuncLocks || ins.conc == nil {
			return false
		}
		if blocksAlways[a] || blocksAlways[b] {
			return false
		}
		return !ins.conc.Concurrent(a, b)
	}
	seenFP := make(map[clique.Pair]bool)
	for _, p := range ins.rep.Pairs {
		fa, fb := p.A.Fn.Name, p.B.Fn.Name
		if useFunc(fa, fb) {
			fp := clique.MakePair(fa, fb)
			if !seenFP[fp] {
				seenFP[fp] = true
				ins.funcPairs = append(ins.funcPairs, fp)
			}
			ins.res.FuncHandledPairs++
			continue
		}
		ins.sitePairs = append(ins.sitePairs, p)
		ins.res.SiteHandledPairs++
	}
}

// assignFuncLocks runs the clique analysis and allocates function-locks.
func (ins *instrumenter) assignFuncLocks() {
	if len(ins.funcPairs) == 0 {
		return
	}
	if ins.opts.PerPairFuncLocks {
		// Ablation: one lock per racy function pair (paper Fig. 3(a)).
		ins.pl.funcLocks = make(map[string][]weaklock.ID)
		add := func(fn string, id weaklock.ID) {
			ins.pl.funcLocks[fn] = append(ins.pl.funcLocks[fn], id)
		}
		for _, fp := range ins.funcPairs {
			id := ins.res.Table.Add(weaklock.KindFunc,
				fmt.Sprintf("pair:%s-%s", fp[0], fp[1]), false)
			add(fp[0], id)
			if fp[1] != fp[0] {
				add(fp[1], id)
			}
		}
		for fn, ids := range ins.pl.funcLocks {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			ins.pl.funcLocks[fn] = ids
			ins.res.FuncLockOf[fn] = ids
		}
		return
	}
	concurrent := func(a, b string) bool {
		if ins.conc == nil {
			return true
		}
		return ins.conc.Concurrent(a, b)
	}
	cl := clique.Build(ins.funcPairs, concurrent)
	ins.res.Cliques = cl

	lockOfClique := make(map[int]weaklock.ID)
	// Allocate in clique order for determinism.
	var usedCliques []int
	seen := make(map[int]bool)
	for _, fp := range ins.funcPairs {
		if ci, ok := cl.CliqueOfPair[fp]; ok && !seen[ci] {
			seen[ci] = true
			usedCliques = append(usedCliques, ci)
		}
	}
	sort.Ints(usedCliques)
	for _, ci := range usedCliques {
		lockOfClique[ci] = ins.res.Table.Add(weaklock.KindFunc,
			fmt.Sprintf("clique%d", ci), false)
	}

	ins.pl.funcLocks = make(map[string][]weaklock.ID)
	for fnName, cliqueIDs := range cl.FuncCliques {
		var ids []weaklock.ID
		for _, ci := range cliqueIDs {
			if id, ok := lockOfClique[ci]; ok {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) > 0 {
			ins.pl.funcLocks[fnName] = ids
			ins.res.FuncLockOf[fnName] = ids
		}
	}

	// Pairs whose clique assignment failed fall back to site handling.
	for _, fp := range ins.funcPairs {
		if _, ok := cl.CliqueOfPair[fp]; ok {
			continue
		}
		for _, p := range ins.rep.Pairs {
			if clique.MakePair(p.A.Fn.Name, p.B.Fn.Name) == fp {
				ins.sitePairs = append(ins.sitePairs, p)
			}
		}
	}
}

// assignSiteLocks groups site-handled racy nodes into connected components
// and allocates one lock per component.
func (ins *instrumenter) assignSiteLocks() {
	ins.nodeLock = make(map[ast.NodeID]weaklock.ID)
	parent := make(map[ast.NodeID]ast.NodeID)
	var find func(x ast.NodeID) ast.NodeID
	find = func(x ast.NodeID) ast.NodeID {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	add := func(x ast.NodeID) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, p := range ins.sitePairs {
		add(p.A.Node)
		add(p.B.Node)
		ra, rb := find(p.A.Node), find(p.B.Node)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	var roots []ast.NodeID
	seen := make(map[ast.NodeID]bool)
	var nodes []ast.NodeID
	for n := range parent {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	lockOfRoot := make(map[ast.NodeID]weaklock.ID)
	for _, n := range nodes {
		r := find(n)
		if !seen[r] {
			seen[r] = true
			roots = append(roots, r)
			lockOfRoot[r] = ins.res.Table.Add(weaklock.KindInstr,
				fmt.Sprintf("sites@%d", r), true)
		}
		ins.nodeLock[n] = lockOfRoot[r]
	}
	_ = roots
}

// decideSites picks the granularity for every site-handled racy node and
// fills the placement plan.
func (ins *instrumenter) decideSites() {
	ins.pl.loopSites = make(map[ast.NodeID][]loopAcq)
	ins.pl.bbSites = make(map[ast.NodeID][]*region)
	ins.pl.instrSites = make(map[ast.NodeID]map[weaklock.ID]bool)
	ins.pl.table = ins.res.Table
	if ins.pl.funcLocks == nil {
		ins.pl.funcLocks = make(map[string][]weaklock.ID)
	}

	var nodes []ast.NodeID
	for n := range ins.nodeLock {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, n := range nodes {
		ctx := ins.ctx[n]
		if ctx == nil {
			// A racy node we failed to locate would be an internal bug;
			// guard with an instruction site on nothing is impossible, so
			// skip (tests assert full coverage).
			continue
		}
		lock := ins.nodeLock[n]
		ins.decideNode(n, ctx, lock)
	}
}

func (ins *instrumenter) decideNode(n ast.NodeID, ctx *nodeCtx, lock weaklock.ID) {
	// Candidate loops: the access's enclosing loops (the stmt itself
	// counts when it is a loop header), restricted to call-free bodies —
	// a suffix of the chain, since a loop containing calls contains them
	// in every outer loop too.
	chain := ctx.loops
	if isLoopStmt(ctx.stmt) {
		chain = append(append([]ast.Stmt{}, chain...), ctx.stmt)
	}
	var candidates []ast.Stmt
	for i := 0; i < len(chain); i++ {
		if !symbolic.LoopHasCalls(ins.rep.Info, chain[i]) {
			candidates = chain[i:]
			break
		}
	}

	if ins.opts.LoopLocks && len(candidates) > 0 {
		b := ins.sym.AccessBounds(candidates, ctx.expr)
		if b.Precise {
			ins.addLoopSite(n, ctx, b.Loop, lock, b)
			return
		}
		inner := candidates[len(candidates)-1]
		if symbolic.LoopBodySize(inner) <= ins.opts.LoopBodyThreshold {
			ins.addLoopSite(n, ctx, inner, lock, b) // imprecise: ±inf range
			return
		}
		// Large imprecise loop: fall through to bb/instr inside the loop.
	}

	// Header accesses of loops/ifs cannot take a finer granularity than
	// their whole statement.
	if isLoopStmt(ctx.stmt) || isIfStmt(ctx.stmt) {
		ins.addInstrSite(n, ctx, lock)
		return
	}

	if ins.opts.BBLocks {
		if stmtBreaksRegion(ins.rep.Info, ctx.stmt) {
			// Paper §2.2: a basic block with a function call degrades to
			// instruction granularity.
			ins.addInstrSite(n, ctx, lock)
			return
		}
		ins.addBBSite(n, ctx, lock)
		return
	}
	ins.addInstrSite(n, ctx, lock)
}

func (ins *instrumenter) addLoopSite(n ast.NodeID, ctx *nodeCtx, loop ast.Stmt, lock weaklock.ID, b *symbolic.Bounds) {
	acqs := ins.pl.loopSites[loop.ID()]
	for i := range acqs {
		if acqs[i].lock != lock {
			continue
		}
		// Same lock twice on one loop: merge; differing bounds widen to
		// infinity (a symbolic union is not expressible).
		if !acqs[i].precise || !b.Precise || !sameBounds(&acqs[i], b) {
			acqs[i].precise = false
		}
		ins.pl.loopSites[loop.ID()] = acqs
		ins.res.Sites = append(ins.res.Sites, Site{
			Node: n, Kind: weaklock.KindLoop, Lock: lock,
			Precise: acqs[i].precise, Fn: ctx.fn, Reason: b.Reason,
		})
		return
	}
	acq := loopAcq{lock: lock, precise: b.Precise}
	if b.Precise {
		acq.base, acq.lo, acq.hi = b.Base, b.LoWords, b.HiWords
	}
	ins.pl.loopSites[loop.ID()] = append(acqs, acq)
	ins.res.StaticCounts[weaklock.KindLoop]++
	ins.res.Sites = append(ins.res.Sites, Site{
		Node: n, Kind: weaklock.KindLoop, Lock: lock,
		Precise: b.Precise, Fn: ctx.fn, Reason: b.Reason,
	})
}

func sameBounds(a *loopAcq, b *symbolic.Bounds) bool {
	return ast.PrintExpr(a.base) == ast.PrintExpr(b.Base) &&
		a.lo.String() == b.LoWords.String() &&
		a.hi.String() == b.HiWords.String()
}

func (ins *instrumenter) addBBSite(n ast.NodeID, ctx *nodeCtx, lock weaklock.ID) {
	if ctx.block == nil {
		ins.addInstrSite(n, ctx, lock)
		return
	}
	// Expand to the maximal run of simple statements around the racy
	// statement, stopping at calls and at anything that can block:
	// holding a weak-lock across a join/barrier/lock/IO wait would create
	// deadlocks that only the timeout mechanism could untangle.
	start, end := ctx.idx, ctx.idx
	ok := func(s ast.Stmt) bool {
		return isSimpleStmt(s) && !stmtBreaksRegion(ins.rep.Info, s)
	}
	for start > 0 && ok(ctx.block.Stmts[start-1]) {
		start--
	}
	for end+1 < len(ctx.block.Stmts) && ok(ctx.block.Stmts[end+1]) {
		end++
	}
	regions := ins.pl.bbSites[ctx.block.ID()]
	for _, r := range regions {
		if start <= r.end && r.start <= end {
			// Overlapping regions merge.
			if start < r.start {
				r.start = start
			}
			if end > r.end {
				r.end = end
			}
			r.locks[lock] = true
			ins.res.Sites = append(ins.res.Sites, Site{
				Node: n, Kind: weaklock.KindBB, Lock: lock, Fn: ctx.fn,
			})
			return
		}
	}
	ins.pl.bbSites[ctx.block.ID()] = append(regions, &region{
		start: start, end: end, locks: map[weaklock.ID]bool{lock: true},
	})
	ins.res.StaticCounts[weaklock.KindBB]++
	ins.res.Sites = append(ins.res.Sites, Site{
		Node: n, Kind: weaklock.KindBB, Lock: lock, Fn: ctx.fn,
	})
}

func (ins *instrumenter) addInstrSite(n ast.NodeID, ctx *nodeCtx, lock weaklock.ID) {
	id := ctx.stmt.ID()
	if ins.pl.instrSites[id] == nil {
		ins.pl.instrSites[id] = make(map[weaklock.ID]bool)
		ins.res.StaticCounts[weaklock.KindInstr]++
	}
	ins.pl.instrSites[id][lock] = true
	ins.res.Sites = append(ins.res.Sites, Site{
		Node: n, Kind: weaklock.KindInstr, Lock: lock, Fn: ctx.fn,
	})
}

func isLoopStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ForStmt, *ast.WhileStmt:
		return true
	}
	return false
}

func isIfStmt(s ast.Stmt) bool {
	_, ok := s.(*ast.IfStmt)
	return ok
}

func isSimpleStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.ExprStmt:
		return true
	}
	return false
}
