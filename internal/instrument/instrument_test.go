package instrument

import (
	"strings"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/relay"
	"repro/internal/vm"
	"repro/internal/weaklock"
)

func report(t *testing.T, src string) *relay.Report {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	return relay.AnalyzeProgram(info)
}

// reparse checks the emitted source is valid MiniC.
func reparse(t *testing.T, src string) *types.Info {
	t.Helper()
	f, err := parser.Parse("inst.mc", src)
	if err != nil {
		t.Fatalf("instrumented source does not parse: %v\n%s", err, src)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("instrumented source does not check: %v\n%s", err, src)
	}
	return info
}

// runInstrumented compiles and executes the instrumented source; the VM
// faults on unbalanced weak-lock usage ("release of weak-lock not held",
// "return while holding"), making this the real balance check.
func runInstrumented(t *testing.T, res *Result, seed uint64) *vm.Result {
	t.Helper()
	info := reparse(t, res.Source)
	prog, err := vm.Compile(info)
	if err != nil {
		t.Fatalf("compile instrumented: %v\n%s", err, res.Source)
	}
	w := oskit.NewWorld(1)
	r := vm.Run(prog, vm.Config{Inputs: vm.LiveInputs{OS: w}, Seed: seed, WL: res.Table})
	if r.Err != nil {
		t.Fatalf("instrumented run failed: %v\n%s", r.Err, res.Source)
	}
	return r
}

const racySrc = `
int g;
void worker(int n) {
    g = g + n;
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`

func TestNaiveInstrumentsEveryRacyNode(t *testing.T) {
	rep := report(t, racySrc)
	res, err := Instrument(rep, nil, NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	reparse(t, res.Source)
	if res.Table.Len() == 0 {
		t.Fatalf("no locks created")
	}
	// Every racy node got a site.
	siteNodes := make(map[int64]bool)
	for _, s := range res.Sites {
		siteNodes[int64(s.Node)] = true
		if s.Kind != weaklock.KindInstr && s.Kind != weaklock.KindBB {
			t.Errorf("naive mode must not use %s granularity", s.Kind)
		}
	}
	for n := range rep.RacyNodes {
		if !siteNodes[int64(n)] {
			t.Errorf("racy node %d not instrumented", n)
		}
	}
	if !strings.Contains(res.Source, "wl_acquire(3") {
		t.Errorf("expected instruction-granularity acquires:\n%s", res.Source)
	}
}

func TestPairEndpointsShareLock(t *testing.T) {
	rep := report(t, racySrc)
	res, err := Instrument(rep, nil, NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	lockOf := make(map[int64]weaklock.ID)
	for _, s := range res.Sites {
		lockOf[int64(s.Node)] = s.Lock
	}
	for _, p := range rep.Pairs {
		la, oka := lockOf[int64(p.A.Node)]
		lb, okb := lockOf[int64(p.B.Node)]
		if !oka || !okb {
			t.Fatalf("pair endpoints missing sites")
		}
		if la != lb {
			t.Errorf("race pair endpoints have different locks: %d vs %d", la, lb)
		}
	}
}

func TestBBRegionsMerge(t *testing.T) {
	rep := report(t, `
int a;
int b;
void worker(int n) {
    a = n;
    int mid = n * 2;
    b = mid;
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`)
	res, err := Instrument(rep, nil, Options{BBLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	reparse(t, res.Source)
	// The three worker statements form one bb region: exactly one
	// bb acquire in worker (possibly multiple locks).
	body := extractFunc(res.Source, "worker")
	if got := strings.Count(body, "wl_acquire(2"); got < 1 {
		t.Errorf("expected bb acquires in worker:\n%s", body)
	}
	runInstrumented(t, res, 3)
}

func TestReturnReleasesLocks(t *testing.T) {
	rep := report(t, `
int g;
int worker_result;
int compute(int n) {
    if (n > 0) {
        g = n;
        return g + 1;
    }
    g = -n;
    return g;
}
void worker(int n) { worker_result = compute(n); }
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, -2);
    join(t1); join(t2);
    return 0;
}
`)
	res, err := Instrument(rep, nil, Options{BBLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	reparse(t, res.Source)
	// A return whose expression is inside a guarded region is rewritten
	// through a temp so releases come after evaluation; the VM verifies
	// lock balance at runtime.
	if !strings.Contains(res.Source, "__wlr") {
		t.Errorf("expected return-value temp:\n%s", res.Source)
	}
	for seed := uint64(0); seed < 3; seed++ {
		runInstrumented(t, res, seed)
	}
}

func TestLoopHeaderAccessWrapsLoop(t *testing.T) {
	rep := report(t, `
int limit;
int sink;
void worker(int n) {
    int s = 0;
    for (int i = 0; i < limit; i++) { s += i; }
    sink = s;
}
void setter(int n) { limit = n; }
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(setter, 50);
    join(t1); join(t2);
    return 0;
}
`)
	res, err := Instrument(rep, nil, AllOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		runInstrumented(t, res, seed)
	}
}

func TestStaticCountsReported(t *testing.T) {
	rep := report(t, racySrc)
	res, err := Instrument(rep, nil, NaiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.StaticCounts {
		total += c
	}
	if total == 0 {
		t.Errorf("no static sites counted")
	}
}

func TestRangedLoopLockEmitsBounds(t *testing.T) {
	rep := report(t, `
int arr[128];
void worker(int base) {
    for (int i = 0; i < 64; i++) {
        arr[base + i] = i;
    }
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 64);
    join(t1); join(t2);
    return 0;
}
`)
	res, err := Instrument(rep, nil, Options{LoopLocks: true, BBLocks: true, LoopBodyThreshold: 14})
	if err != nil {
		t.Fatal(err)
	}
	reparse(t, res.Source)
	if !strings.Contains(res.Source, "__wlb") {
		t.Errorf("expected a base-pointer temp for the ranged loop-lock:\n%s", res.Source)
	}
	if !strings.Contains(res.Source, "wl_acquire(1") {
		t.Errorf("expected a loop acquire:\n%s", res.Source)
	}
	// The range expression references the worker's parameter.
	if !strings.Contains(res.Source, "base") {
		t.Errorf("range should be symbolic in base:\n%s", res.Source)
	}
}

// extractFunc pulls one function body out of printed source (crudely, for
// assertions).
func extractFunc(src, name string) string {
	i := strings.Index(src, name+"(")
	if i < 0 {
		return ""
	}
	j := strings.Index(src[i:], "{")
	depth := 0
	for k := i + j; k < len(src); k++ {
		switch src[k] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[i : k+1]
			}
		}
	}
	return src[i:]
}
