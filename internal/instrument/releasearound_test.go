package instrument

import (
	"strings"
	"testing"

	"repro/internal/profile"
)

// crossSrc has two function-locked functions where one calls the other
// through a wrapper — the §2.3 "function calling a function" case. Without
// release-around-inner-region, a thread in stage_a would hold its
// function-lock while stage_b (with its own lock) runs inside.
const crossSrc = `
int d1;
int d2;

void stage_b(int n) {
    d2 = d2 + n;
}

void stage_a(int n) {
    d1 = d1 + n;
    stage_b(n);
}

void reader_b(int n) {
    int v = d2;
    d1 = v + n;
}

void controller(int n) {
    stage_a(n);
    reader_b(n);
}

int main(void) {
    int t1 = spawn(controller, 1);
    int t2 = spawn(controller, 2);
    join(t1); join(t2);
    print(d1 + d2);
    return 0;
}
`

// crossConc marks the stage functions mutually non-concurrent (so they get
// function-locks) while the controllers overlap.
func crossConc() *profile.Concurrency {
	c := profile.NewConcurrency()
	add := func(a, b string) {
		col := profile.NewCollector()
		col.Enter(1, 0, 0)
		col.Enter(2, 1, 5)
		col.Exit(1, 0, 10)
		col.Exit(2, 1, 15)
		cc := profile.NewConcurrency()
		cc.AddRun(col, []string{a, b})
		c.Merge(cc)
	}
	add("controller", "controller")
	add("main", "controller")
	return c
}

func TestReleaseAroundInnerCall(t *testing.T) {
	rep := report(t, crossSrc)
	res, err := Instrument(rep, crossConc(), Options{FuncLocks: true, BBLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FuncLockOf) == 0 {
		t.Skipf("no function locks assigned (pairs func=%d site=%d); scenario needs them",
			res.FuncHandledPairs, res.SiteHandledPairs)
	}
	// stage_a holds a function-lock and calls stage_b (a weak-lock user):
	// the call must be bracketed by release/reacquire of stage_a's locks.
	if locks, ok := res.FuncLockOf["stage_a"]; ok && len(locks) > 0 {
		body := extractFunc(res.Source, "stage_a")
		relIdx := strings.Index(body, "wl_release(0")
		callIdx := strings.Index(body, "stage_b(")
		if relIdx == -1 || callIdx == -1 || relIdx > callIdx {
			t.Errorf("stage_a should release its function-lock before calling stage_b:\n%s", body)
		}
	}
	// The transformed program runs cleanly with zero timeouts across
	// seeds — the discipline, not the timeout backstop, resolves nesting.
	for seed := uint64(0); seed < 4; seed++ {
		r := runInstrumented(t, res, seed)
		if r.WLStats.Timeouts != 0 {
			t.Errorf("seed %d: %d timeouts; release-around-call should prevent them",
				seed, r.WLStats.Timeouts)
		}
	}
}
