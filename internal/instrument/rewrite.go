package instrument

import (
	"fmt"
	"sort"

	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
	"repro/internal/symbolic"
	"repro/internal/weaklock"
)

// The rewriter produces the transformed tree. All emission is *flat*: a
// guarded statement becomes [acquire..., stmt, release...] spliced into the
// parent statement list, never a nested block — so declarations keep their
// scope. Control transfers that leave a guarded region (return, break,
// continue) are rewritten to release the locks they cross; loop-body entry
// pushes a boundary marker so break/continue release exactly the brackets
// opened inside the loop body.
type rewriter struct {
	ins *instrumenter

	curFn      *types.FuncInfo
	curFnLocks []weaklock.ID
	brackets   []bracket
	tempN      int
}

type bracket struct {
	boundary bool // loop-body boundary marker
	kind     weaklock.Kind
	id       weaklock.ID
}

// stmtBreaksRegion reports whether the statement cannot live inside a
// basic-block weak-lock region: it calls a user function (paper §2.2: such
// blocks degrade to instruction granularity) or performs an operation that
// can block or wait on a device (sync ops, thread ops, I/O) — holding a
// weak-lock across those invites the timeout path.
func stmtBreaksRegion(info *types.Info, s ast.Stmt) bool {
	breaks := false
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.Call)
		if !ok {
			return true
		}
		target := info.CallTargets[call.ID()]
		if target == nil || target.Kind == types.ObjFunc {
			breaks = true
			return false
		}
		switch target.Builtin {
		case types.BMalloc, types.BFree, types.BNow, types.BRnd,
			types.BPrint, types.BPrints, types.BCheck,
			types.BWlAcquire, types.BWlRelease:
			// Non-blocking: fine inside a region.
		default:
			breaks = true
			return false
		}
		return true
	})
	return breaks
}

// rewrite produces the instrumented source text.
func (ins *instrumenter) rewrite() (string, error) {
	ins.normalizeRegions()
	ins.computeWLUsers()
	clone := ast.CloneFile(ins.rep.Info.File)
	rw := &rewriter{ins: ins}
	for _, fn := range clone.Funcs {
		rw.curFn = ins.rep.Info.Funcs[fn.Name]
		rw.brackets = rw.brackets[:0]
		locks := ins.pl.funcLocks[fn.Name]
		rw.curFnLocks = locks
		for _, id := range locks {
			rw.push(weaklock.KindFunc, id)
		}
		body := rw.block(fn.Body)
		if len(locks) > 0 {
			var stmts []ast.Stmt
			for _, id := range locks {
				stmts = append(stmts, acquireStmt(weaklock.KindFunc, id, nil, nil))
				ins.res.StaticCounts[weaklock.KindFunc]++
			}
			stmts = append(stmts, body.Stmts...)
			for i := len(locks) - 1; i >= 0; i-- {
				stmts = append(stmts, releaseStmt(weaklock.KindFunc, locks[i]))
			}
			body = &ast.Block{Stmts: stmts}
		}
		for range locks {
			rw.pop()
		}
		fn.Body = body
	}
	return ast.Print(clone), nil
}

// normalizeRegions merges overlapping bb regions per block (late
// expansions can bridge previously separate regions).
func (ins *instrumenter) normalizeRegions() {
	for blk, regions := range ins.pl.bbSites {
		sort.Slice(regions, func(i, j int) bool { return regions[i].start < regions[j].start })
		var merged []*region
		for _, r := range regions {
			if n := len(merged); n > 0 && r.start <= merged[n-1].end+0 {
				last := merged[n-1]
				if r.end > last.end {
					last.end = r.end
				}
				for id := range r.locks {
					last.locks[id] = true
				}
				continue
			}
			merged = append(merged, r)
		}
		ins.pl.bbSites[blk] = merged
	}
}

func (rw *rewriter) push(kind weaklock.Kind, id weaklock.ID) {
	rw.brackets = append(rw.brackets, bracket{kind: kind, id: id})
}

func (rw *rewriter) pushBoundary() {
	rw.brackets = append(rw.brackets, bracket{boundary: true})
}

func (rw *rewriter) pop() {
	rw.brackets = rw.brackets[:len(rw.brackets)-1]
}

// releasesAbove emits releases for brackets above the innermost boundary
// (for break/continue) or for all brackets (for return), innermost first.
func (rw *rewriter) releasesAbove(toBoundary bool) []ast.Stmt {
	var out []ast.Stmt
	for i := len(rw.brackets) - 1; i >= 0; i-- {
		b := rw.brackets[i]
		if b.boundary {
			if toBoundary {
				break
			}
			continue
		}
		out = append(out, releaseStmt(b.kind, b.id))
	}
	return out
}

// block rewrites a block, applying bb regions.
func (rw *rewriter) block(b *ast.Block) *ast.Block {
	regions := rw.ins.pl.bbSites[b.ID()]
	regionAt := func(i int) *region {
		for _, r := range regions {
			if r.start == i {
				return r
			}
		}
		return nil
	}
	out := &ast.Block{}
	out.SetMeta(b.Pos(), b.ID())
	for i := 0; i < len(b.Stmts); {
		if r := regionAt(i); r != nil {
			locks := sortedLocks(r.locks)
			for _, id := range locks {
				out.Stmts = append(out.Stmts, acquireStmt(weaklock.KindBB, id, nil, nil))
				rw.push(weaklock.KindBB, id)
			}
			for j := r.start; j <= r.end && j < len(b.Stmts); j++ {
				out.Stmts = append(out.Stmts, rw.stmt(b.Stmts[j])...)
			}
			for k := len(locks) - 1; k >= 0; k-- {
				out.Stmts = append(out.Stmts, releaseStmt(weaklock.KindBB, locks[k]))
				rw.pop()
			}
			i = r.end + 1
			continue
		}
		out.Stmts = append(out.Stmts, rw.stmt(b.Stmts[i])...)
		i++
	}
	return out
}

// stmt rewrites one statement into a flat statement list.
func (rw *rewriter) stmt(s ast.Stmt) []ast.Stmt {
	instrLocks := sortedLocks(rw.ins.pl.instrSites[s.ID()])

	switch s := s.(type) {
	case *ast.Block:
		nb := rw.block(s)
		return rw.wrapFlat(instrLocks, []ast.Stmt{nb})

	case *ast.IfStmt:
		if len(instrLocks) > 0 && stmtBreaksRegion(rw.ins.rep.Info, s) {
			// The branches can block: evaluate the racy condition under
			// the lock, then branch without holding it.
			tmp := fmt.Sprintf("__wlc%d", rw.tempN)
			rw.tempN++
			out := rw.wrapFlat(instrLocks, []ast.Stmt{intTempDecl(tmp, ast.CloneExpr(s.CondE))})
			ni := &ast.IfStmt{CondE: identExpr(tmp), Then: rw.block(s.Then)}
			ni.SetMeta(s.Pos(), s.ID())
			if s.Else != nil {
				elseStmts := rw.stmt(s.Else)
				if len(elseStmts) == 1 {
					ni.Else = elseStmts[0]
				} else {
					ni.Else = &ast.Block{Stmts: elseStmts}
				}
			}
			return append(out, ni)
		}
		return rw.wrapControl(instrLocks, func() ast.Stmt {
			ni := &ast.IfStmt{CondE: ast.CloneExpr(s.CondE), Then: rw.block(s.Then)}
			ni.SetMeta(s.Pos(), s.ID())
			if s.Else != nil {
				elseStmts := rw.stmt(s.Else)
				if len(elseStmts) == 1 {
					ni.Else = elseStmts[0]
				} else {
					eb := &ast.Block{Stmts: elseStmts}
					ni.Else = eb
				}
			}
			return ni
		})

	case *ast.WhileStmt, *ast.ForStmt:
		return rw.loop(s, instrLocks)

	case *ast.ReturnStmt:
		return rw.ret(s, instrLocks)

	case *ast.BreakStmt:
		rel := rw.releasesAbove(true)
		return append(rel, cloneS(s))

	case *ast.ContinueStmt:
		rel := rw.releasesAbove(true)
		return append(rel, cloneS(s))

	default:
		// Simple statements. Before wrapping with instruction locks,
		// hoist race-free user-function calls out of the statement (the
		// three-address normalization CIL performed): otherwise the lock
		// is held across the entire callee.
		ns := cloneS(s)
		var pre []ast.Stmt
		if len(instrLocks) > 0 {
			pre, ns = rw.hoistCalls(ns)
			return append(pre, rw.wrapFlat(instrLocks, []ast.Stmt{ns})...)
		}
		// Paper §2.3: a function-lock holder releases its weak-locks
		// around inner regions — calls into functions that themselves use
		// weak-locks. The call is hoisted to its own statement first so
		// the release window contains nothing else.
		if len(rw.curFnLocks) > 0 && rw.stmtCallsWLUser(ns) {
			return rw.releaseAroundCalls(ns)
		}
		return []ast.Stmt{ns}
	}
}

// stmtCallsWLUser reports whether the statement calls a function whose
// subtree uses weak-locks.
func (rw *rewriter) stmtCallsWLUser(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.Call); ok {
			if t := rw.ins.rep.Info.CallTargets[call.ID()]; t != nil && t.Kind == types.ObjFunc {
				if rw.ins.wlUsers[t.Name] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// releaseAroundCalls rewrites a statement calling weak-lock-using functions
// so the caller's function-locks are released across each such call:
//
//	rel(F...); int __wlh = callee(args); acq(F...); rest-of-statement
//
// A call that touches racy nodes (its reads must stay protected) or that
// cannot be hoisted stays in place; the reentrant runtime plus the timeout
// mechanism then remain the backstop.
func (rw *rewriter) releaseAroundCalls(s ast.Stmt) []ast.Stmt {
	pre, ns := rw.hoistCalls(s)
	var out []ast.Stmt
	rel := func() {
		for i := len(rw.curFnLocks) - 1; i >= 0; i-- {
			out = append(out, releaseStmt(weaklock.KindFunc, rw.curFnLocks[i]))
		}
	}
	acq := func() {
		for _, id := range rw.curFnLocks {
			out = append(out, acquireStmt(weaklock.KindFunc, id, nil, nil))
		}
	}
	for _, p := range pre {
		if rw.stmtCallsWLUser(p) {
			rel()
			out = append(out, p)
			acq()
		} else {
			out = append(out, p)
		}
	}
	// A residual void call (g(x);) could not be hoisted; if the whole
	// statement is exactly that call and it is race-free, bracket it too.
	if es, ok := ns.(*ast.ExprStmt); ok && rw.stmtCallsWLUser(ns) && !rw.stmtHasRacyNode(es) {
		rel()
		out = append(out, ns)
		acq()
		return out
	}
	out = append(out, ns)
	return out
}

// stmtHasRacyNode reports whether the statement contains any racy lvalue.
func (rw *rewriter) stmtHasRacyNode(s ast.Stmt) bool {
	racy := false
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if _, isRacy := rw.ins.rep.RacyNodes[e.ID()]; isRacy {
				racy = true
				return false
			}
		}
		return true
	})
	return racy
}

// hoistCalls extracts user-function calls that are unconditionally
// evaluated and contain no racy access into temporaries emitted before the
// statement. Calls under short-circuit right operands or conditional
// branches stay (hoisting would change evaluation), as do calls whose
// subtree touches a racy node (their reads must stay under the lock).
func (rw *rewriter) hoistCalls(s ast.Stmt) ([]ast.Stmt, ast.Stmt) {
	var pre []ast.Stmt

	isHoistable := func(call *ast.Call) bool {
		target := rw.ins.rep.Info.CallTargets[call.ID()]
		if target != nil && target.Kind != types.ObjFunc {
			return false // builtins stay
		}
		racy := false
		ast.Inspect(call, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if _, isRacy := rw.ins.rep.RacyNodes[e.ID()]; isRacy {
					racy = true
					return false
				}
			}
			return true
		})
		return !racy
	}

	var rewriteExpr func(e ast.Expr) ast.Expr
	rewriteExpr = func(e ast.Expr) ast.Expr {
		switch e := e.(type) {
		case *ast.Call:
			// Rewrite arguments first (inner calls hoist before outer).
			for i, a := range e.Args {
				e.Args[i] = rewriteExpr(a)
			}
			if !isHoistable(e) {
				return e
			}
			// Void calls cannot be hoisted into a value temp.
			if t := rw.ins.rep.Info.Types[e.ID()]; t != nil && t.Kind == types.Void {
				return e
			}
			tmp := fmt.Sprintf("__wlh%d", rw.tempN)
			rw.tempN++
			pre = append(pre, intTempDecl(tmp, e))
			return identExpr(tmp)
		case *ast.Unary:
			e.X = rewriteExpr(e.X)
		case *ast.Binary:
			// Only the left operand of && and || evaluates
			// unconditionally.
			e.X = rewriteExpr(e.X)
			if e.Op != token.LAND && e.Op != token.LOR {
				e.Y = rewriteExpr(e.Y)
			}
		case *ast.Cond:
			e.CondE = rewriteExpr(e.CondE)
		case *ast.Index:
			e.X = rewriteExpr(e.X)
			e.Index = rewriteExpr(e.Index)
		case *ast.Field:
			e.X = rewriteExpr(e.X)
		}
		return e
	}

	switch s := s.(type) {
	case *ast.AssignStmt:
		s.RHS = rewriteExpr(s.RHS)
		s.LHS = rewriteExpr(s.LHS)
	case *ast.DeclStmt:
		if s.Decl.Init != nil {
			s.Decl.Init = rewriteExpr(s.Decl.Init)
		}
	case *ast.ExprStmt:
		// An ExprStmt that IS a user call stays in place (the call is the
		// statement); only nested calls in its arguments hoist.
		if call, ok := s.X.(*ast.Call); ok {
			for i, a := range call.Args {
				call.Args[i] = rewriteExpr(a)
			}
		} else {
			s.X = rewriteExpr(s.X)
		}
	case *ast.IncDecStmt:
		s.X = rewriteExpr(s.X)
	}
	return pre, s
}

// wrapFlat surrounds stmts with instruction-granularity acquire/release
// pairs (flat emission, no scoping block).
func (rw *rewriter) wrapFlat(locks []weaklock.ID, stmts []ast.Stmt) []ast.Stmt {
	if len(locks) == 0 {
		return stmts
	}
	var out []ast.Stmt
	for _, id := range locks {
		out = append(out, acquireStmt(weaklock.KindInstr, id, nil, nil))
	}
	out = append(out, stmts...)
	for i := len(locks) - 1; i >= 0; i-- {
		out = append(out, releaseStmt(weaklock.KindInstr, locks[i]))
	}
	return out
}

// wrapControl wraps a control statement whose interior may return/break;
// the brackets are pushed while rewriting the interior.
func (rw *rewriter) wrapControl(locks []weaklock.ID, build func() ast.Stmt) []ast.Stmt {
	for _, id := range locks {
		rw.push(weaklock.KindInstr, id)
	}
	inner := build()
	for range locks {
		rw.pop()
	}
	return rw.wrapFlat(locks, []ast.Stmt{inner})
}

// loop rewrites a loop statement, attaching loop-lock acquires and any
// instruction locks for header accesses.
//
// When the loop body can block (barriers, locks, joins, I/O, calls) a
// header instruction-lock must NOT wrap the whole loop — holding a
// weak-lock across a barrier wait is the forced-preemption storm the
// timeout mechanism exists for, and two such holders ping-pong forever.
// Those loops are lowered so the condition is evaluated under the lock
// inside the loop:
//
//	for (init; cond; post) body  =>  init; while (1) {
//	    acquire; int __wlc = cond; release;
//	    if (!__wlc) { break; }
//	    body
//	    post
//	}
func (rw *rewriter) loop(s ast.Stmt, instrLocks []weaklock.ID) []ast.Stmt {
	if len(instrLocks) > 0 && stmtBreaksRegion(rw.ins.rep.Info, s) && rw.canLowerLoop(s) {
		return rw.lowerLoop(s, instrLocks)
	}
	acqs := append([]loopAcq{}, rw.ins.pl.loopSites[s.ID()]...)
	sort.Slice(acqs, func(i, j int) bool { return acqs[i].lock < acqs[j].lock })

	var pre, post []ast.Stmt

	// Instruction locks (header accesses) wrap outermost.
	for _, id := range instrLocks {
		pre = append(pre, acquireStmt(weaklock.KindInstr, id, nil, nil))
		rw.push(weaklock.KindInstr, id)
	}
	// Loop locks with optional ranges.
	for _, a := range acqs {
		if a.precise {
			baseName := fmt.Sprintf("__wlb%d", rw.tempN)
			rw.tempN++
			pre = append(pre, ptrTempDecl(baseName, rw.baseAddrExpr(a.base)))
			lo := addExpr(identExpr(baseName), linExprAst(a.lo))
			hi := addExpr(identExpr(baseName), linExprAst(a.hi))
			pre = append(pre, acquireStmt(weaklock.KindLoop, a.lock, lo, hi))
		} else {
			pre = append(pre, acquireStmt(weaklock.KindLoop, a.lock, nil, nil))
		}
		rw.push(weaklock.KindLoop, a.lock)
	}

	// Rewrite the loop body with a boundary marker so break/continue
	// inside do not release the loop/instr brackets (they stay inside).
	rw.pushBoundary()
	var nl ast.Stmt
	switch l := s.(type) {
	case *ast.WhileStmt:
		nw := &ast.WhileStmt{CondE: ast.CloneExpr(l.CondE), Body: rw.block(l.Body)}
		nw.SetMeta(l.Pos(), l.ID())
		nl = nw
	case *ast.ForStmt:
		nf := &ast.ForStmt{Body: rw.block(l.Body)}
		nf.SetMeta(l.Pos(), l.ID())
		if l.Init != nil {
			nf.Init = ast.CloneStmt(l.Init)
		}
		if l.CondE != nil {
			nf.CondE = ast.CloneExpr(l.CondE)
		}
		if l.Post != nil {
			nf.Post = ast.CloneStmt(l.Post)
		}
		nl = nf
	}
	rw.pop() // boundary

	for i := len(acqs) - 1; i >= 0; i-- {
		post = append(post, releaseStmt(weaklock.KindLoop, acqs[i].lock))
		rw.pop()
	}
	for i := len(instrLocks) - 1; i >= 0; i-- {
		post = append(post, releaseStmt(weaklock.KindInstr, instrLocks[i]))
		rw.pop()
	}

	out := append(pre, nl)
	return append(out, post...)
}

// canLowerLoop reports whether the condition-inside lowering preserves
// semantics: a for-loop whose body contains a `continue` would skip the
// post statement in lowered form, so such (rare) loops keep the whole-loop
// wrap and rely on the timeout backstop.
func (rw *rewriter) canLowerLoop(s ast.Stmt) bool {
	fs, isFor := s.(*ast.ForStmt)
	if !isFor || fs.Post == nil {
		return true
	}
	hasContinue := false
	depth := 0
	var walk func(st ast.Stmt)
	walk = func(st ast.Stmt) {
		switch st := st.(type) {
		case *ast.Block:
			for _, x := range st.Stmts {
				walk(x)
			}
		case *ast.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.WhileStmt:
			depth++
			walk(st.Body)
			depth--
		case *ast.ForStmt:
			depth++
			walk(st.Body)
			depth--
		case *ast.ContinueStmt:
			if depth == 0 {
				hasContinue = true
			}
		}
	}
	walk(fs.Body)
	return !hasContinue
}

// lowerLoop emits the condition-inside form for a loop whose header
// carries instruction locks and whose body can block.
func (rw *rewriter) lowerLoop(s ast.Stmt, locks []weaklock.ID) []ast.Stmt {
	var out []ast.Stmt
	var condE ast.Expr
	var post ast.Stmt
	var body *ast.Block

	switch l := s.(type) {
	case *ast.WhileStmt:
		condE = l.CondE
		body = l.Body
	case *ast.ForStmt:
		if l.Init != nil {
			out = append(out, rw.wrapFlat(locks, []ast.Stmt{ast.CloneStmt(l.Init)})...)
		}
		condE = l.CondE
		post = l.Post
		body = l.Body
	}

	inner := &ast.Block{}
	if condE != nil {
		tmp := fmt.Sprintf("__wlc%d", rw.tempN)
		rw.tempN++
		inner.Stmts = append(inner.Stmts,
			rw.wrapFlat(locks, []ast.Stmt{intTempDecl(tmp, ast.CloneExpr(condE))})...)
		brk := &ast.Block{Stmts: []ast.Stmt{&ast.BreakStmt{}}}
		inner.Stmts = append(inner.Stmts, &ast.IfStmt{
			CondE: &ast.Unary{Op: token.NOT, X: identExpr(tmp)},
			Then:  brk,
		})
	}
	rw.pushBoundary()
	rewritten := rw.block(body)
	rw.pop()
	inner.Stmts = append(inner.Stmts, rewritten.Stmts...)
	if post != nil {
		inner.Stmts = append(inner.Stmts, rw.wrapFlat(locks, []ast.Stmt{ast.CloneStmt(post)})...)
	}

	one := &ast.IntLit{Value: 1}
	nw := &ast.WhileStmt{CondE: one, Body: inner}
	nw.SetMeta(s.Pos(), s.ID())
	out = append(out, nw)
	return out
}

// ret rewrites a return statement, releasing every open bracket first; a
// value expression is captured into a temp *before* the releases so its
// evaluation stays protected.
func (rw *rewriter) ret(s *ast.ReturnStmt, instrLocks []weaklock.ID) []ast.Stmt {
	var out []ast.Stmt
	for _, id := range instrLocks {
		out = append(out, acquireStmt(weaklock.KindInstr, id, nil, nil))
		rw.push(weaklock.KindInstr, id)
	}
	rel := rw.releasesAbove(false)
	for range instrLocks {
		rw.pop()
	}
	if len(rel) == 0 {
		out = append(out, cloneS(s))
		return out
	}
	if s.X == nil {
		out = append(out, rel...)
		nr := &ast.ReturnStmt{}
		nr.SetMeta(s.Pos(), s.ID())
		out = append(out, nr)
		return out
	}
	tmp := fmt.Sprintf("__wlr%d", rw.tempN)
	rw.tempN++
	out = append(out, intTempDecl(tmp, ast.CloneExpr(s.X)))
	out = append(out, rel...)
	nr := &ast.ReturnStmt{X: identExpr(tmp)}
	nr.SetMeta(s.Pos(), s.ID())
	out = append(out, nr)
	return out
}

func sortedLocks(m map[weaklock.ID]bool) []weaklock.ID {
	out := make([]weaklock.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cloneS(s ast.Stmt) ast.Stmt { return ast.CloneStmt(s) }

// ---------------------------------------------------------------------------
// AST emission helpers. Synthesized nodes carry zero metadata; the caller
// reparses the printed source, which assigns fresh IDs.

func identExpr(name string) *ast.Ident {
	return &ast.Ident{Name: name}
}

func intExpr(v int64) *ast.IntLit {
	return &ast.IntLit{Value: v}
}

func addExpr(x, y ast.Expr) ast.Expr {
	return &ast.Binary{Op: token.PLUS, X: x, Y: y}
}

// linExprAst converts a symbolic linear expression to a MiniC expression.
func linExprAst(l *symbolic.LinExpr) ast.Expr {
	var e ast.Expr = intExpr(l.Const)
	var vars []*types.Object
	for v := range l.Terms {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	for _, v := range vars {
		c := l.Terms[v]
		var term ast.Expr = identExpr(v.Name)
		switch {
		case c == 1:
		case c == -1:
			term = &ast.Unary{Op: token.MINUS, X: term}
		default:
			term = &ast.Binary{Op: token.STAR, X: intExpr(c), Y: term}
		}
		e = &ast.Binary{Op: token.PLUS, X: e, Y: term}
	}
	return e
}

// acquireStmt builds wl_acquire(kind, id, lo, hi); nil bounds emit the
// infinite-range sentinels.
func acquireStmt(kind weaklock.Kind, id weaklock.ID, lo, hi ast.Expr) ast.Stmt {
	if lo == nil {
		lo = intExpr(weaklock.NegInf)
	}
	if hi == nil {
		hi = intExpr(weaklock.PosInf)
	}
	call := &ast.Call{
		Fun:  identExpr("wl_acquire"),
		Args: []ast.Expr{intExpr(int64(kind)), intExpr(int64(id)), lo, hi},
	}
	return &ast.ExprStmt{X: call}
}

func releaseStmt(kind weaklock.Kind, id weaklock.ID) ast.Stmt {
	call := &ast.Call{
		Fun:  identExpr("wl_release"),
		Args: []ast.Expr{intExpr(int64(kind)), intExpr(int64(id))},
	}
	return &ast.ExprStmt{X: call}
}

// baseAddrExpr converts a bounds base lvalue into an address expression:
// arrays decay and pointers are already addresses, but a scalar variable
// base (a racy access to the variable itself) needs an explicit &.
func (rw *rewriter) baseAddrExpr(base ast.Expr) ast.Expr {
	t := rw.ins.rep.Info.Types[base.ID()]
	if t != nil && t.Kind == types.Int {
		return &ast.Unary{Op: token.AMP, X: ast.CloneExpr(base)}
	}
	return ast.CloneExpr(base)
}

// ptrTempDecl builds `int *name = init;` capturing a loop-lock base.
func ptrTempDecl(name string, init ast.Expr) ast.Stmt {
	return &ast.DeclStmt{Decl: &ast.VarDecl{
		Name: name,
		Type: ast.TypeName{Kind: ast.TypeInt, Stars: 1},
		Init: init,
	}}
}

// intTempDecl builds `int name = init;` capturing a return value.
func intTempDecl(name string, init ast.Expr) ast.Stmt {
	return &ast.DeclStmt{Decl: &ast.VarDecl{
		Name: name,
		Type: ast.TypeName{Kind: ast.TypeInt},
		Init: init,
	}}
}
