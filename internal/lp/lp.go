// Package lp implements a small exact linear-programming solver: two-phase
// primal simplex over arbitrary-precision rationals with Bland's rule (so
// it cannot cycle). It stands in for the lpsolve MILP solver the paper's
// symbolic bounds implementation called out to (paper §6.1: "we used
// lpsolve, a mixed integer linear programming solver, to find a solution
// for static bounds that a racy loop may access").
//
// The problems the symbolic bounds analysis produces are tiny — a handful
// of variables (loop indices) and constraints (loop bounds, guards) — so a
// dense exact tableau is both simple and fast, and exactness matters: a
// rounded bound could under-approximate an address range and break the
// soundness of a loop-lock.
package lp

import (
	"fmt"
	"math/big"
	"strings"
)

// Rel is a constraint relation.
type Rel int

// The constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // ==
)

// String renders the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status is the outcome of a solve.
type Status int

// The solve outcomes.
const (
	Optimal Status = iota
	Unbounded
	Infeasible
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case Infeasible:
		return "infeasible"
	}
	return "?"
}

// Constraint is one linear constraint sum(Coef[i]*x[i]) Rel Rhs.
type Constraint struct {
	Coef []*big.Rat
	Rel  Rel
	Rhs  *big.Rat
}

// Problem is a linear program over free (unbounded-sign) variables.
type Problem struct {
	n    int
	cons []Constraint
}

// New returns a problem with n free variables.
func New(n int) *Problem {
	return &Problem{n: n}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// AddConstraint adds sum(coef[i]*x[i]) rel rhs. Missing trailing
// coefficients are zero.
func (p *Problem) AddConstraint(coef []*big.Rat, rel Rel, rhs *big.Rat) {
	c := Constraint{Coef: make([]*big.Rat, p.n), Rel: rel, Rhs: new(big.Rat).Set(rhs)}
	for i := 0; i < p.n; i++ {
		if i < len(coef) && coef[i] != nil {
			c.Coef[i] = new(big.Rat).Set(coef[i])
		} else {
			c.Coef[i] = new(big.Rat)
		}
	}
	p.cons = append(p.cons, c)
}

// AddConstraintInts adds a constraint with integer coefficients.
func (p *Problem) AddConstraintInts(coef []int64, rel Rel, rhs int64) {
	rc := make([]*big.Rat, len(coef))
	for i, c := range coef {
		rc[i] = big.NewRat(c, 1)
	}
	p.AddConstraint(rc, rel, big.NewRat(rhs, 1))
}

// Maximize solves max sum(obj[i]*x[i]) subject to the constraints.
func (p *Problem) Maximize(obj []*big.Rat) (*big.Rat, []*big.Rat, Status) {
	return p.solve(obj, false)
}

// Minimize solves min sum(obj[i]*x[i]) subject to the constraints.
func (p *Problem) Minimize(obj []*big.Rat) (*big.Rat, []*big.Rat, Status) {
	v, x, st := p.solve(obj, true)
	if st == Optimal {
		v.Neg(v)
	}
	return v, x, st
}

// MaximizeInts and MinimizeInts are integer-coefficient conveniences.
func (p *Problem) MaximizeInts(obj []int64) (*big.Rat, []*big.Rat, Status) {
	return p.Maximize(ratSlice(obj, p.n))
}

// MinimizeInts minimizes an integer-coefficient objective.
func (p *Problem) MinimizeInts(obj []int64) (*big.Rat, []*big.Rat, Status) {
	return p.Minimize(ratSlice(obj, p.n))
}

func ratSlice(v []int64, n int) []*big.Rat {
	out := make([]*big.Rat, n)
	for i := 0; i < n; i++ {
		if i < len(v) {
			out[i] = big.NewRat(v[i], 1)
		} else {
			out[i] = new(big.Rat)
		}
	}
	return out
}

// solve converts to standard form and runs two-phase simplex. For
// minimization it negates the objective.
//
// Standard form: free variable x_i is split into x_i = u_i - w_i with
// u_i, w_i >= 0; every constraint becomes an equality with a slack or
// surplus variable; phase 1 drives artificial variables to zero.
func (p *Problem) solve(obj []*big.Rat, minimize bool) (*big.Rat, []*big.Rat, Status) {
	m := len(p.cons)
	// Variables: 2n split vars, then m slack/surplus (LE/GE rows), then m
	// artificials (one per row for simplicity).
	nSplit := 2 * p.n
	nSlack := 0
	slackOf := make([]int, m)
	for i, c := range p.cons {
		if c.Rel == LE || c.Rel == GE {
			slackOf[i] = nSplit + nSlack
			nSlack++
		} else {
			slackOf[i] = -1
		}
	}
	nArt := m
	total := nSplit + nSlack + nArt
	artBase := nSplit + nSlack

	// Tableau rows: A x = b with b >= 0.
	A := make([][]*big.Rat, m)
	b := make([]*big.Rat, m)
	for i, c := range p.cons {
		row := make([]*big.Rat, total)
		for j := range row {
			row[j] = new(big.Rat)
		}
		rhs := new(big.Rat).Set(c.Rhs)
		sign := big.NewRat(1, 1)
		// Normalize to nonnegative rhs.
		if rhs.Sign() < 0 {
			sign.Neg(sign)
			rhs.Neg(rhs)
		}
		for j := 0; j < p.n; j++ {
			v := new(big.Rat).Mul(c.Coef[j], sign)
			row[2*j].Set(v)
			row[2*j+1].Neg(v)
		}
		if slackOf[i] >= 0 {
			s := big.NewRat(1, 1)
			if c.Rel == GE {
				s.Neg(s)
			}
			s.Mul(s, sign)
			row[slackOf[i]].Set(s)
		}
		row[artBase+i].SetInt64(1)
		A[i] = row
		b[i] = rhs
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = artBase + i
	}

	// Phase 1: minimize sum of artificials.
	phase1 := make([]*big.Rat, total)
	for j := range phase1 {
		phase1[j] = new(big.Rat)
	}
	for j := artBase; j < total; j++ {
		phase1[j].SetInt64(-1) // maximize -(sum of artificials)
	}
	val := simplex(A, b, basis, phase1, artBase)
	if val == nil || val.Sign() != 0 {
		return nil, nil, Infeasible
	}
	// Drive any artificial variables out of the basis if possible.
	for i, bv := range basis {
		if bv < artBase {
			continue
		}
		pivoted := false
		for j := 0; j < artBase; j++ {
			if A[i][j].Sign() != 0 {
				pivot(A, b, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted && b[i].Sign() != 0 {
			return nil, nil, Infeasible
		}
	}

	// Phase 2 objective over split variables.
	c2 := make([]*big.Rat, total)
	for j := range c2 {
		c2[j] = new(big.Rat)
	}
	for j := 0; j < p.n; j++ {
		v := new(big.Rat)
		if j < len(obj) && obj[j] != nil {
			v.Set(obj[j])
		}
		if minimize {
			v.Neg(v)
		}
		c2[2*j].Set(v)
		c2[2*j+1].Neg(v)
	}
	val = simplex(A, b, basis, c2, artBase)
	if val == nil {
		return nil, nil, Unbounded
	}

	// Extract the solution.
	xs := make([]*big.Rat, p.n)
	for j := range xs {
		xs[j] = new(big.Rat)
	}
	for i, bv := range basis {
		if bv < nSplit {
			j := bv / 2
			if bv%2 == 0 {
				xs[j].Add(xs[j], b[i])
			} else {
				xs[j].Sub(xs[j], b[i])
			}
		}
	}
	return val, xs, Optimal
}

// simplex maximizes c·x over the tableau using Bland's rule; artificial
// columns (>= artBlock) are never re-entered once phase 2 begins (they have
// zero/negative reduced costs there anyway, but we exclude them for
// safety). It returns the optimal value, or nil if unbounded.
func simplex(A [][]*big.Rat, b []*big.Rat, basis []int, c []*big.Rat, artBlock int) *big.Rat {
	m := len(A)
	if m == 0 {
		return new(big.Rat)
	}
	total := len(A[0])

	reducedCost := func(j int) *big.Rat {
		// c_j - c_B . A_j
		r := new(big.Rat).Set(c[j])
		for i := 0; i < m; i++ {
			if c[basis[i]].Sign() != 0 && A[i][j].Sign() != 0 {
				t := new(big.Rat).Mul(c[basis[i]], A[i][j])
				r.Sub(r, t)
			}
		}
		return r
	}

	for iter := 0; iter < 10000; iter++ {
		// Bland: entering variable = lowest index with positive reduced
		// cost.
		enter := -1
		for j := 0; j < total; j++ {
			if isArtificial(j, artBlock, c) {
				continue
			}
			if reducedCost(j).Sign() > 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			// Optimal: value = c_B . b
			val := new(big.Rat)
			for i := 0; i < m; i++ {
				if c[basis[i]].Sign() != 0 {
					t := new(big.Rat).Mul(c[basis[i]], b[i])
					val.Add(val, t)
				}
			}
			return val
		}
		// Ratio test; Bland: leaving = lowest basis index among ties.
		leave := -1
		var best *big.Rat
		for i := 0; i < m; i++ {
			if A[i][enter].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(b[i], A[i][enter])
			if best == nil || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && basis[i] < basis[leave]) {
				best = ratio
				leave = i
			}
		}
		if leave == -1 {
			return nil // unbounded
		}
		pivot(A, b, basis, leave, enter)
	}
	return nil // iteration limit; treat as unbounded/failed
}

// isArtificial excludes artificial columns from entering during phase 2
// (their phase-2 cost is zero, so excluding them is safe).
func isArtificial(j, artBlock int, c []*big.Rat) bool {
	return j >= artBlock && c[j].Sign() == 0
}

// pivot performs a full tableau pivot at (row, col).
func pivot(A [][]*big.Rat, b []*big.Rat, basis []int, row, col int) {
	m := len(A)
	total := len(A[0])
	p := new(big.Rat).Set(A[row][col])
	for j := 0; j < total; j++ {
		A[row][j].Quo(A[row][j], p)
	}
	b[row].Quo(b[row], p)
	for i := 0; i < m; i++ {
		if i == row || A[i][col].Sign() == 0 {
			continue
		}
		f := new(big.Rat).Set(A[i][col])
		for j := 0; j < total; j++ {
			t := new(big.Rat).Mul(f, A[row][j])
			A[i][j].Sub(A[i][j], t)
		}
		t := new(big.Rat).Mul(f, b[row])
		b[i].Sub(b[i], t)
	}
	basis[row] = col
}

// String renders the problem for debugging.
func (p *Problem) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "lp with %d vars, %d constraints\n", p.n, len(p.cons))
	for _, c := range p.cons {
		for j, v := range c.Coef {
			if v.Sign() != 0 {
				fmt.Fprintf(&sb, "%s*x%d ", v.RatString(), j)
			}
		}
		fmt.Fprintf(&sb, "%s %s\n", c.Rel, c.Rhs.RatString())
	}
	return sb.String()
}
