package lp

import (
	"math/big"
	"testing"
	"testing/quick"
)

func ratEq(t *testing.T, got *big.Rat, num, den int64) {
	t.Helper()
	want := big.NewRat(num, den)
	if got == nil || got.Cmp(want) != 0 {
		t.Fatalf("got %v, want %s", got, want.RatString())
	}
}

func TestSimpleMax(t *testing.T) {
	// max x+y st x<=4, y<=3, x+y<=5 → 5
	p := New(2)
	p.AddConstraintInts([]int64{1, 0}, LE, 4)
	p.AddConstraintInts([]int64{0, 1}, LE, 3)
	p.AddConstraintInts([]int64{1, 1}, LE, 5)
	p.AddConstraintInts([]int64{1, 0}, GE, 0)
	p.AddConstraintInts([]int64{0, 1}, GE, 0)
	v, _, st := p.MaximizeInts([]int64{1, 1})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, v, 5, 1)
}

func TestSimpleMin(t *testing.T) {
	// min x st x >= 2, x <= 9 → 2
	p := New(1)
	p.AddConstraintInts([]int64{1}, GE, 2)
	p.AddConstraintInts([]int64{1}, LE, 9)
	v, _, st := p.MinimizeInts([]int64{1})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, v, 2, 1)
}

func TestFreeVariables(t *testing.T) {
	// Free vars may be negative: min x st x >= -7 → -7
	p := New(1)
	p.AddConstraintInts([]int64{1}, GE, -7)
	v, _, st := p.MinimizeInts([]int64{1})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, v, -7, 1)
}

func TestEquality(t *testing.T) {
	// max 2x+y st x+y == 10, x <= 6, y >= 0, x >= 0 → x=6, y=4 → 16
	p := New(2)
	p.AddConstraintInts([]int64{1, 1}, EQ, 10)
	p.AddConstraintInts([]int64{1, 0}, LE, 6)
	p.AddConstraintInts([]int64{0, 1}, GE, 0)
	p.AddConstraintInts([]int64{1, 0}, GE, 0)
	v, xs, st := p.MaximizeInts([]int64{2, 1})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, v, 16, 1)
	ratEq(t, xs[0], 6, 1)
	ratEq(t, xs[1], 4, 1)
}

func TestUnbounded(t *testing.T) {
	p := New(1)
	p.AddConstraintInts([]int64{1}, GE, 0)
	_, _, st := p.MaximizeInts([]int64{1})
	if st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.AddConstraintInts([]int64{1}, GE, 5)
	p.AddConstraintInts([]int64{1}, LE, 3)
	_, _, st := p.MaximizeInts([]int64{1})
	if st != Infeasible {
		t.Fatalf("status %v, want infeasible", st)
	}
}

func TestRationalAnswer(t *testing.T) {
	// max x st 3x <= 7 → 7/3
	p := New(1)
	p.AddConstraintInts([]int64{3}, LE, 7)
	p.AddConstraintInts([]int64{1}, GE, 0)
	v, _, st := p.MaximizeInts([]int64{1})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, v, 7, 3)
}

func TestLoopBoundsElimination(t *testing.T) {
	// The symbolic-bounds use case: address = base + 4*i, 0 <= i <= n-1
	// with n = 16: min/max of address-offset 4i is [0, 60].
	p := New(1)
	p.AddConstraintInts([]int64{1}, GE, 0)
	p.AddConstraintInts([]int64{1}, LE, 15)
	vmax, _, st := p.MaximizeInts([]int64{4})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, vmax, 60, 1)
	vmin, _, st := p.MinimizeInts([]int64{4})
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	ratEq(t, vmin, 0, 1)
}

func TestTwoIndexElimination(t *testing.T) {
	// addr = 8*i + j, 0<=i<=9, 0<=j<=7 → [0, 79].
	p := New(2)
	p.AddConstraintInts([]int64{1, 0}, GE, 0)
	p.AddConstraintInts([]int64{1, 0}, LE, 9)
	p.AddConstraintInts([]int64{0, 1}, GE, 0)
	p.AddConstraintInts([]int64{0, 1}, LE, 7)
	vmax, _, st := p.MaximizeInts([]int64{8, 1})
	if st != Optimal {
		t.Fatalf("%v", st)
	}
	ratEq(t, vmax, 79, 1)
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classically degenerate problem; Bland's rule must terminate.
	p := New(2)
	p.AddConstraintInts([]int64{1, 1}, LE, 0)
	p.AddConstraintInts([]int64{1, -1}, LE, 0)
	p.AddConstraintInts([]int64{1, 0}, GE, 0)
	p.AddConstraintInts([]int64{0, 1}, GE, 0)
	v, _, st := p.MaximizeInts([]int64{1, 0})
	if st != Optimal {
		t.Fatalf("%v", st)
	}
	ratEq(t, v, 0, 1)
}

func TestNegativeRhs(t *testing.T) {
	// x <= -2, x >= -5: max x = -2.
	p := New(1)
	p.AddConstraintInts([]int64{1}, LE, -2)
	p.AddConstraintInts([]int64{1}, GE, -5)
	v, _, st := p.MaximizeInts([]int64{1})
	if st != Optimal {
		t.Fatalf("%v", st)
	}
	ratEq(t, v, -2, 1)
}

// TestPropertyBoxBounds checks, with random boxes, that maximizing a linear
// function over a box equals the corner evaluation.
func TestPropertyBoxBounds(t *testing.T) {
	f := func(lo1, w1, lo2, w2 int8, c1, c2 int8) bool {
		l1, l2 := int64(lo1), int64(lo2)
		h1 := l1 + int64(w1&0x1f)
		h2 := l2 + int64(w2&0x1f)
		p := New(2)
		p.AddConstraintInts([]int64{1, 0}, GE, l1)
		p.AddConstraintInts([]int64{1, 0}, LE, h1)
		p.AddConstraintInts([]int64{0, 1}, GE, l2)
		p.AddConstraintInts([]int64{0, 1}, LE, h2)
		v, _, st := p.MaximizeInts([]int64{int64(c1), int64(c2)})
		if st != Optimal {
			return false
		}
		want := big.NewRat(0, 1)
		pick := func(c, lo, hi int64) *big.Rat {
			if c >= 0 {
				return big.NewRat(c*hi, 1)
			}
			return big.NewRat(c*lo, 1)
		}
		want.Add(pick(int64(c1), l1, h1), pick(int64(c2), l2, h2))
		return v.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
