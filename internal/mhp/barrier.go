package mhp

import (
	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

// Barrier-phase segmentation.
//
// A barrier with count C aligns its C waiters: no waiter starts episode
// g+1 before every waiter finishes episode g. If every instance of a
// thread root executes the same sequence of barrier_wait calls — because
// the waits sit either bare at the body top level or inside loops whose
// trip counts are uniform across instances — then the number of completed
// episodes at any program point is a function of the point alone, and two
// points whose episode counts can never be equal can never run
// concurrently (the Aiken/Gay barrier-inference discipline, as revived by
// RacerF's lightweight MHP phase).
//
// The proof obligations, all of which fail closed:
//
//  1. The barrier variable is a global whose every use is the literal
//     argument &b of barrier_init/barrier_wait; any barrier call whose
//     argument is not of that form disables the analysis entirely (it
//     could alias anything).
//  2. It is initialized exactly once, by a top-level statement of main
//     that precedes every spawn of every waiter.
//  3. Every wait on it is inside a thread root (never main, never a
//     shared helper) that is entered only through spawn edges — a root
//     that is also called as a plain function (from main, a helper, or
//     itself) would execute waits no instance bound counts — and every
//     such root is spawned only from main with at most C instances:
//     either at most C non-loop spawn sites with a literal C, or a
//     single spawn site inside one counted loop whose bound prints
//     identically to C and is frozen. Fewer instances than C merely
//     deadlock at the first wait — the episode count then never
//     advances, which is safe; more instances would break alignment, so
//     they must be excluded.
//  4. With several waiter roots, their fork/join windows must be pairwise
//     disjoint (proven via the fork/join analysis), so each root's
//     episodes are counted in isolation.
//  5. Within a root's body, waits appear only as bare top-level
//     statements or bare top-level statements of uniform-trip for loops;
//     a wait under an if, a while, a nested loop, or a callee fails the
//     root.
//
// Positions are either "outside, between unit u-1 and unit u" or "inside
// loop unit u, segment j of k" (segment k is the tail that wraps to the
// next iteration). Two positions are provably non-concurrent when their
// episode-count sets cannot intersect; the algebra is in disjoint().

type barrierAnalysis struct {
	rep      *relay.Report
	fj       *forkJoin
	barriers []*barrierInfo
}

type barrierInfo struct {
	obj     *types.Object
	waiters []*types.FuncInfo
	phases  map[*types.FuncInfo]*phaseMap
}

// phasePos is one position in a root's barrier-phase structure.
type phasePos struct {
	unit   int
	inLoop bool
	seg, k int
}

// phaseMap is the phase structure of one waiter root for one barrier.
type phaseMap struct {
	bare  []bool                         // per unit: bare wait vs loop
	pos   map[ast.NodeID][]phasePos      // nodes of the root body
	fnPos map[*types.FuncInfo][]phasePos // callees, via call closure
}

type barrierCall struct {
	call *ast.Call
	fn   *types.FuncInfo
	init bool
	obj  *types.Object // nil when the argument is not &global
}

func newBarrierAnalysis(rep *relay.Report, fj *forkJoin) *barrierAnalysis {
	ba := &barrierAnalysis{rep: rep, fj: fj}
	if fj.main == nil {
		return ba
	}
	calls := ba.collectCalls()
	// Obligation 1: one unresolvable barrier argument poisons everything.
	for _, c := range calls {
		if c.obj == nil {
			return ba
		}
	}
	byObj := make(map[*types.Object][]barrierCall)
	var order []*types.Object
	for _, c := range calls {
		if _, seen := byObj[c.obj]; !seen {
			order = append(order, c.obj)
		}
		byObj[c.obj] = append(byObj[c.obj], c)
	}
	for _, obj := range order {
		if bi := ba.validate(obj, byObj[obj]); bi != nil {
			ba.barriers = append(ba.barriers, bi)
		}
	}
	return ba
}

func (ba *barrierAnalysis) collectCalls() []barrierCall {
	info := ba.rep.Info
	var out []barrierCall
	for _, fn := range info.FuncList {
		f := fn
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.Call)
			if !ok {
				return true
			}
			t := info.CallTargets[call.ID()]
			if t == nil || (t.Builtin != types.BBarrierInit && t.Builtin != types.BBarrierWait) {
				return true
			}
			out = append(out, barrierCall{
				call: call,
				fn:   f,
				init: t.Builtin == types.BBarrierInit,
				obj:  ba.ampGlobal(call.Args[0]),
			})
			return true
		})
	}
	return out
}

// ampGlobal matches the argument form &g for a global g.
func (ba *barrierAnalysis) ampGlobal(e ast.Expr) *types.Object {
	u, ok := e.(*ast.Unary)
	if !ok || u.Op != token.AMP {
		return nil
	}
	id, ok := u.X.(*ast.Ident)
	if !ok {
		return nil
	}
	o := ba.rep.Info.Uses[id.ID()]
	if o == nil || o.Kind != types.ObjGlobal {
		return nil
	}
	return o
}

func (ba *barrierAnalysis) validate(obj *types.Object, calls []barrierCall) *barrierInfo {
	info := ba.rep.Info

	// Every use of the barrier variable must be one of these calls'
	// arguments: no copies, comparisons, or other address-takings.
	uses, sanctioned := 0, 0
	ast.InspectFile(info.File, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id.ID()] == obj {
			uses++
		}
		return true
	})
	for range calls {
		sanctioned++
	}
	if uses != sanctioned {
		return nil
	}

	// Obligation 2: a single init, top level in main.
	var initIdx = -1
	var countExpr ast.Expr
	inits := 0
	for _, c := range calls {
		if !c.init {
			continue
		}
		inits++
		if c.fn != ba.fj.main {
			return nil
		}
		idx, ok := ba.fj.topIdx[c.call.ID()]
		if !ok {
			return nil
		}
		es, ok := ba.fj.main.Decl.Body.Stmts[idx].(*ast.ExprStmt)
		if !ok || es.X != c.call {
			return nil
		}
		initIdx = idx
		countExpr = c.call.Args[1]
	}
	if inits != 1 {
		return nil
	}

	// Obligation 3: waits only inside spawn-bounded roots.
	waiterSet := make(map[*types.FuncInfo]bool)
	var waiters []*types.FuncInfo
	for _, c := range calls {
		if c.init {
			continue
		}
		if c.fn == ba.fj.main || !ba.rep.CG.IsRoot(c.fn) {
			return nil
		}
		if !waiterSet[c.fn] {
			waiterSet[c.fn] = true
			waiters = append(waiters, c.fn)
		}
	}
	if len(waiters) == 0 {
		return nil
	}
	for _, r := range waiters {
		// A waiter must be entered only by spawn: a direct call (from
		// main, a helper, or recursively) executes waits that neither
		// instancesBounded nor the phase map counts, breaking episode
		// alignment.
		for _, e := range ba.rep.CG.Callers[r] {
			if !e.Spawn {
				return nil
			}
		}
		min, ok := ba.fj.minSpawn[r]
		if !ok || initIdx >= min {
			return nil
		}
		if !ba.instancesBounded(r, countExpr, initIdx) {
			return nil
		}
	}

	// Obligation 4: pairwise disjoint windows among multiple waiters.
	for i := 0; i < len(waiters); i++ {
		for j := i + 1; j < len(waiters); j++ {
			if !ba.windowsDisjoint(waiters[i], waiters[j]) {
				return nil
			}
		}
	}

	bi := &barrierInfo{obj: obj, waiters: waiters, phases: make(map[*types.FuncInfo]*phaseMap)}
	for _, r := range waiters {
		// Obligation 5, per root; a nil entry keeps that root's pairs.
		bi.phases[r] = ba.buildPhases(obj, r)
	}
	return bi
}

func (ba *barrierAnalysis) windowsDisjoint(r1, r2 *types.FuncInfo) bool {
	j1, ok1 := ba.fj.joinAll[r1]
	s2, ok2 := ba.fj.minSpawn[r2]
	if ok1 && ok2 && j1 < s2 {
		return true
	}
	j2, ok3 := ba.fj.joinAll[r2]
	s1, ok4 := ba.fj.minSpawn[r1]
	return ok3 && ok4 && j2 < s1
}

// instancesBounded proves at most count(b) instances of root r run.
func (ba *barrierAnalysis) instancesBounded(r *types.FuncInfo, countExpr ast.Expr, initIdx int) bool {
	sites := ba.fj.spawnSites[r]
	if len(sites) == 0 {
		return false
	}
	// Each site must start r and nothing else (an indirect spawn that may
	// start several roots defeats instance counting).
	for _, s := range sites {
		if len(s.targets) != 1 || s.targets[0] != r {
			return false
		}
	}

	loops := ba.enclosingLoops(sites)
	if loops == nil {
		return false // a site inside a while loop, or not found
	}

	allBare := true
	for _, chain := range loops {
		if len(chain) != 0 {
			allBare = false
		}
	}
	if allBare {
		// Straight-line spawns: a literal count bounds them directly.
		lit, ok := countExpr.(*ast.IntLit)
		return ok && int64(len(sites)) <= lit.Value
	}

	// Loop-spawned: a single site inside exactly one counted loop whose
	// trip bound prints identically to the init count and is frozen from
	// before both the init and the loop.
	if len(sites) != 1 || len(loops[0]) != 1 {
		return false
	}
	f := loops[0][0]
	lv, _, ok := ba.fj.countedHeader(f)
	if !ok || lv == nil {
		return false
	}
	bound := f.CondE.(*ast.Binary).Y
	if ast.PrintExpr(bound) != ast.PrintExpr(countExpr) {
		return false
	}
	loopIdx, ok := ba.fj.topIdx[f.ID()]
	if !ok {
		return false
	}
	at := initIdx
	if loopIdx < at {
		at = loopIdx
	}
	if lit, isLit := bound.(*ast.IntLit); isLit {
		cl, isCl := countExpr.(*ast.IntLit)
		return isCl && lit.Value == cl.Value
	}
	return ba.fj.boundFrozenBefore(bound, at)
}

// enclosingLoops returns, per spawn site, the chain of for loops enclosing
// it in main (innermost last); nil if any site sits in a while loop or
// cannot be located.
func (ba *barrierAnalysis) enclosingLoops(sites []spawnSite) [][]*ast.ForStmt {
	out := make([][]*ast.ForStmt, len(sites))
	found := make([]bool, len(sites))
	var stack []*ast.ForStmt
	inWhile := 0
	bad := false

	var walkStmt func(s ast.Stmt)
	checkExprs := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.Call)
			if !ok {
				return true
			}
			for i, site := range sites {
				if site.call == call {
					if inWhile > 0 {
						bad = true
						return true
					}
					out[i] = append([]*ast.ForStmt(nil), stack...)
					found[i] = true
				}
			}
			return true
		})
	}
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walkStmt(st)
			}
		case *ast.IfStmt:
			checkExprs(s.CondE)
			walkStmt(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *ast.WhileStmt:
			inWhile++
			checkExprs(s.CondE)
			walkStmt(s.Body)
			inWhile--
		case *ast.ForStmt:
			stack = append(stack, s)
			if s.Init != nil {
				walkStmt(s.Init)
			}
			if s.CondE != nil {
				checkExprs(s.CondE)
			}
			if s.Post != nil {
				walkStmt(s.Post)
			}
			walkStmt(s.Body)
			stack = stack[:len(stack)-1]
		default:
			checkExprs(s)
		}
	}
	walkStmt(ba.fj.main.Decl.Body)
	for i := range sites {
		if !found[i] || bad {
			return nil
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Phase walk

// buildPhases segments root r's body by waits on obj; nil means the shape
// is not provable and r's pairs must be kept.
func (ba *barrierAnalysis) buildPhases(obj *types.Object, r *types.FuncInfo) *phaseMap {
	pm := &phaseMap{
		pos:   make(map[ast.NodeID][]phasePos),
		fnPos: make(map[*types.FuncInfo][]phasePos),
	}
	unit := 0
	for _, s := range r.Decl.Body.Stmts {
		switch {
		case ba.isBareWait(s, obj):
			pm.assign(ba, s, phasePos{unit: unit})
			pm.bare = append(pm.bare, true)
			unit++
		case ba.containsWait(s, obj):
			f, ok := s.(*ast.ForStmt)
			if !ok {
				return nil // wait under if/while: trips are not uniform
			}
			if !ba.uniformLoop(f, r) {
				return nil
			}
			if !ba.walkLoopUnit(pm, f, obj, unit) {
				return nil
			}
			pm.bare = append(pm.bare, false)
			unit++
		default:
			pm.assign(ba, s, phasePos{unit: unit})
		}
	}
	if unit == 0 {
		return nil
	}
	return pm
}

// walkLoopUnit segments a uniform loop's body by its bare waits; false if
// any wait on obj hides below the body top level.
func (ba *barrierAnalysis) walkLoopUnit(pm *phaseMap, f *ast.ForStmt, obj *types.Object, unit int) bool {
	k := 0
	for _, s := range f.Body.Stmts {
		if ba.isBareWait(s, obj) {
			k++
		} else if ba.containsWait(s, obj) {
			return false
		}
	}
	if k == 0 {
		return false
	}
	if f.Init != nil {
		// The init runs once, before the loop's first episode.
		pm.assign(ba, f.Init, phasePos{unit: unit})
	}
	// The condition and post straddle the wrap: they run in the leading
	// segment of one iteration and the trailing segment of the previous.
	wrap := []phasePos{
		{unit: unit, inLoop: true, seg: 0, k: k},
		{unit: unit, inLoop: true, seg: k, k: k},
	}
	if f.CondE != nil {
		pm.assignExpr(ba, f.CondE, wrap)
	}
	if f.Post != nil {
		pm.assignStmtMulti(ba, f.Post, wrap)
	}
	seg := 0
	for _, s := range f.Body.Stmts {
		if ba.isBareWait(s, obj) {
			pm.assign(ba, s, phasePos{unit: unit, inLoop: true, seg: seg, k: k})
			seg++
			continue
		}
		pm.assign(ba, s, phasePos{unit: unit, inLoop: true, seg: seg, k: k})
	}
	return true
}

func (ba *barrierAnalysis) isBareWait(s ast.Stmt, obj *types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.Call)
	if !ok {
		return false
	}
	t := ba.rep.Info.CallTargets[call.ID()]
	if t == nil || t.Builtin != types.BBarrierWait {
		return false
	}
	return ba.ampGlobal(call.Args[0]) == obj
}

func (ba *barrierAnalysis) containsWait(s ast.Stmt, obj *types.Object) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.Call)
		if !ok {
			return true
		}
		t := ba.rep.Info.CallTargets[call.ID()]
		if t != nil && t.Builtin == types.BBarrierWait && ba.ampGlobal(call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}

// assign maps every node of a statement subtree to one position and adds
// the position to every function its call closure reaches.
func (pm *phaseMap) assign(ba *barrierAnalysis, n ast.Node, p phasePos) {
	pm.assignMulti(ba, n, []phasePos{p})
}

func (pm *phaseMap) assignStmtMulti(ba *barrierAnalysis, s ast.Stmt, ps []phasePos) {
	pm.assignMulti(ba, s, ps)
}

func (pm *phaseMap) assignExpr(ba *barrierAnalysis, e ast.Expr, ps []phasePos) {
	pm.assignMulti(ba, e, ps)
}

func (pm *phaseMap) assignMulti(ba *barrierAnalysis, n ast.Node, ps []phasePos) {
	var direct []*types.FuncInfo
	ast.Inspect(n, func(x ast.Node) bool {
		pm.pos[x.ID()] = append(pm.pos[x.ID()], ps...)
		if call, ok := x.(*ast.Call); ok {
			direct = append(direct, ba.fj.callTargets(call)...)
		}
		return true
	})
	seen := make(map[*types.FuncInfo]bool)
	var dfs func(fn *types.FuncInfo)
	dfs = func(fn *types.FuncInfo) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		for _, callee := range ba.rep.CG.CalleesOf(fn) {
			dfs(callee)
		}
	}
	for _, fn := range direct {
		dfs(fn)
	}
	for fn := range seen {
		pm.fnPos[fn] = append(pm.fnPos[fn], ps...)
	}
}

// uniformLoop proves a loop's trip count is the same in every instance of
// the root: counted header over uniform bounds, loop variable never
// written in the body, no return in the body, no break/continue binding
// this loop.
func (ba *barrierAnalysis) uniformLoop(f *ast.ForStmt, r *types.FuncInfo) bool {
	info := ba.rep.Info
	var v *types.Object
	var init ast.Expr
	switch s := f.Init.(type) {
	case *ast.DeclStmt:
		v = info.Objects[s.Decl.ID()]
		init = s.Decl.Init
	case *ast.AssignStmt:
		if s.Op != token.ASSIGN {
			return false
		}
		id, ok := s.LHS.(*ast.Ident)
		if !ok {
			return false
		}
		v = info.Uses[id.ID()]
		init = s.RHS
	default:
		return false
	}
	if v == nil || v.AddrTaken || init == nil || !ba.uniformExpr(init, r, 0) {
		return false
	}
	cond, ok := f.CondE.(*ast.Binary)
	if !ok || (cond.Op != token.LT && cond.Op != token.LE) {
		return false
	}
	cid, ok := cond.X.(*ast.Ident)
	if !ok || info.Uses[cid.ID()] != v || !ba.uniformExpr(cond.Y, r, 0) {
		return false
	}
	inc, ok := f.Post.(*ast.IncDecStmt)
	if !ok || inc.Op != token.INC {
		return false
	}
	pid, ok := inc.X.(*ast.Ident)
	if !ok || info.Uses[pid.ID()] != v {
		return false
	}

	okBody := true
	var check func(s ast.Stmt, loopDepth int)
	checkNode := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if id, is := s.LHS.(*ast.Ident); is && info.Uses[id.ID()] == v {
					okBody = false
				}
			case *ast.IncDecStmt:
				if id, is := s.X.(*ast.Ident); is && info.Uses[id.ID()] == v {
					okBody = false
				}
			}
			return true
		})
	}
	check = func(s ast.Stmt, depth int) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				check(st, depth)
			}
		case *ast.IfStmt:
			checkNode(s.CondE)
			check(s.Then, depth)
			if s.Else != nil {
				check(s.Else, depth)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				checkNode(s.Init)
			}
			if s.CondE != nil {
				checkNode(s.CondE)
			}
			if s.Post != nil {
				checkNode(s.Post)
			}
			check(s.Body, depth+1)
		case *ast.WhileStmt:
			checkNode(s.CondE)
			check(s.Body, depth+1)
		case *ast.ReturnStmt:
			okBody = false
		case *ast.BreakStmt, *ast.ContinueStmt:
			if depth == 0 {
				okBody = false
			}
		default:
			checkNode(s)
		}
	}
	check(f.Body, 0)
	return okBody
}

// uniformExpr proves an expression evaluates to the same value in every
// instance of the root: literals, frozen globals, and single-write locals
// with uniform initializers. Parameters (the thread id) are not uniform.
func (ba *barrierAnalysis) uniformExpr(e ast.Expr, r *types.FuncInfo, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.Unary:
		return e.Op != token.AMP && e.Op != token.STAR && ba.uniformExpr(e.X, r, depth+1)
	case *ast.Binary:
		return ba.uniformExpr(e.X, r, depth+1) && ba.uniformExpr(e.Y, r, depth+1)
	case *ast.Ident:
		o := ba.rep.Info.Uses[e.ID()]
		if o == nil || o.AddrTaken {
			return false
		}
		switch o.Kind {
		case types.ObjGlobal:
			min, ok := ba.fj.minSpawn[r]
			return ok && ba.fj.frozenBefore(o, min)
		case types.ObjLocal:
			if o.Func != r {
				return false
			}
			if ba.fj.writeCount(o) != 1 {
				return false
			}
			d, ok := o.Decl.(*ast.VarDecl)
			return ok && d.Init != nil && ba.uniformExpr(d.Init, r, depth+1)
		}
	}
	return false
}

// bareIn reports whether any unit with index in [lo, hi) is a bare wait —
// a guaranteed episode between the two positions.
func (pm *phaseMap) bareIn(lo, hi int) bool {
	for i := lo; i < hi && i < len(pm.bare); i++ {
		if i >= 0 && pm.bare[i] {
			return true
		}
	}
	return false
}

// disjoint decides whether two positions of the same root can ever see
// the same barrier-episode count; see the derivation in the package doc.
func (pm *phaseMap) disjoint(a, b phasePos) bool {
	switch {
	case !a.inLoop && !b.inLoop:
		if a.unit == b.unit {
			return false
		}
		lo, hi := a.unit, b.unit
		if lo > hi {
			lo, hi = hi, lo
		}
		return pm.bareIn(lo, hi)

	case a.inLoop && b.inLoop:
		if a.unit == b.unit {
			// Same loop: segments collide iff equal mod k (segment k
			// wraps onto segment 0 of the next iteration).
			return a.seg%a.k != b.seg%a.k
		}
		e, l := a, b
		if b.unit < a.unit {
			e, l = b, a
		}
		// Only the earlier loop's trailing segment can catch the later
		// loop's leading segment, and only with no guaranteed episode
		// between (interposed loops may run zero trips).
		return e.seg != e.k || l.seg != 0 || pm.bareIn(e.unit+1, l.unit)

	default:
		lp, o := a, b
		if b.inLoop {
			lp, o = b, a
		}
		if o.unit <= lp.unit {
			// Outside-before: collides only with the loop's leading
			// segment when no episode is guaranteed in between.
			return lp.seg != 0 || pm.bareIn(o.unit, lp.unit)
		}
		// Outside-after: collides only with the trailing segment.
		return lp.seg != lp.k || pm.bareIn(lp.unit+1, o.unit)
	}
}

// allDisjoint reports whether every position combination is disjoint,
// stopping at the first colliding pair.
func (pm *phaseMap) allDisjoint(pa, pb []phasePos) bool {
	for _, x := range pa {
		for _, y := range pb {
			if !pm.disjoint(x, y) {
				return false
			}
		}
	}
	return true
}

// positions returns the phase positions of an access under this root.
func (pm *phaseMap) positions(a *relay.Access, root *types.FuncInfo) []phasePos {
	if a.Fn == root {
		return pm.pos[a.Node]
	}
	return pm.fnPos[a.Fn]
}
