package mhp

import (
	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

// Fork/join ordering.
//
// main runs exactly once and its body top level executes sequentially, so
// the top-level statement index of main is a timeline: everything inside
// statement i happens-before everything inside statement j > i. The
// analysis places three kinds of events on that timeline:
//
//   - accesses performed by the main thread (directly in main, or in a
//     function main's statement i calls — spawn edges excluded, because a
//     spawned function's work belongs to the child),
//   - the spawn sites of each thread root R, and
//   - join points proven to wait for *every* instance of R.
//
// From those, three happens-before facts follow:
//
//	pre-fork:     a main access wholly before every spawn of R cannot run
//	              concurrently with R;
//	join-ordered: a main access wholly after a proven join-all of R cannot
//	              run concurrently with R;
//	window-disjoint: if all of R1 is joined before the first spawn of R2,
//	              no R1 access runs concurrently with any R2 access.
//
// Join-all proofs are deliberately syntactic and fail closed. Two shapes
// are recognized:
//
//	scalar: t = spawn(R, ...) at top level, where t is never address-taken
//	        and the spawn is its only write anywhere in the program, matched
//	        with an unconditional top-level join(t) at a later index;
//	loop:   for (v = 0; v < E; v++) { arr[v] = spawn(R, ...); } matched
//	        with a later top-level loop with an identical printed header
//	        whose body is exactly join(arr[v]), where every use of arr in
//	        the whole program is a spawn-store or join-load element access,
//	        no arr store lands between the two loops, and E's free
//	        variables are frozen (written only before the spawn loop).
//
// Anything else — escaping handles, conditional spawns or joins, handle
// arrays that alias — yields no proof, and the pairs are kept.

type forkJoin struct {
	rep  *relay.Report
	main *types.FuncInfo

	// topIdx maps every AST node in main's body to the index of the
	// top-level statement containing it.
	topIdx map[ast.NodeID]int

	// reach maps a function to the set of main top-level statement
	// indices whose call closure (call edges only) reaches it.
	reach map[*types.FuncInfo]map[int]bool

	// spawnSites lists, per thread root, its spawn call sites with the
	// enclosing function.
	spawnSites map[*types.FuncInfo][]spawnSite

	// minSpawn is the smallest main top-level index containing a spawn of
	// the root; present only when every spawn site of the root is in main.
	minSpawn map[*types.FuncInfo]int

	// joinAll is the main top-level index after which every instance of
	// the root has provably terminated; present only when every spawn
	// site of the root is matched by a proven join.
	joinAll map[*types.FuncInfo]int
}

type spawnSite struct {
	caller *types.FuncInfo
	call   *ast.Call
	// targets are the roots this site may start (usually exactly one).
	targets []*types.FuncInfo
}

func newForkJoin(rep *relay.Report) *forkJoin {
	fj := &forkJoin{
		rep:        rep,
		main:       rep.Info.Funcs["main"],
		topIdx:     make(map[ast.NodeID]int),
		reach:      make(map[*types.FuncInfo]map[int]bool),
		spawnSites: make(map[*types.FuncInfo][]spawnSite),
		minSpawn:   make(map[*types.FuncInfo]int),
		joinAll:    make(map[*types.FuncInfo]int),
	}
	if fj.main == nil {
		return fj
	}
	fj.indexMain()
	fj.collectSpawns()
	fj.proveJoins()
	return fj
}

// indexMain assigns every node in main's body its top-level statement
// index and computes, per top-level statement, which functions its call
// closure reaches.
func (fj *forkJoin) indexMain() {
	for i, s := range fj.main.Decl.Body.Stmts {
		idx := i
		var direct []*types.FuncInfo
		ast.Inspect(s, func(n ast.Node) bool {
			fj.topIdx[n.ID()] = idx
			if call, ok := n.(*ast.Call); ok {
				direct = append(direct, fj.callTargets(call)...)
			}
			return true
		})
		// Closure over call edges (spawn edges excluded: the spawned
		// function's execution is not part of this statement's work).
		seen := make(map[*types.FuncInfo]bool)
		var dfs func(f *types.FuncInfo)
		dfs = func(f *types.FuncInfo) {
			if f == nil || seen[f] {
				return
			}
			seen[f] = true
			for _, callee := range fj.rep.CG.CalleesOf(f) {
				dfs(callee)
			}
		}
		for _, f := range direct {
			dfs(f)
		}
		for f := range seen {
			set := fj.reach[f]
			if set == nil {
				set = make(map[int]bool)
				fj.reach[f] = set
			}
			set[idx] = true
		}
	}
}

// callTargets resolves the non-builtin functions a call may invoke.
func (fj *forkJoin) callTargets(call *ast.Call) []*types.FuncInfo {
	info := fj.rep.Info
	if target := info.CallTargets[call.ID()]; target != nil {
		if target.Kind == types.ObjFunc {
			return []*types.FuncInfo{info.Funcs[target.Name]}
		}
		return nil // builtin
	}
	return fj.rep.PTA.CallTargets[call.ID()]
}

// collectSpawns groups the call graph's spawn edges by site and computes
// minSpawn for roots spawned only from main.
func (fj *forkJoin) collectSpawns() {
	bySite := make(map[ast.NodeID]*spawnSite)
	var order []ast.NodeID
	for _, e := range fj.rep.CG.Edges {
		if !e.Spawn {
			continue
		}
		s := bySite[e.Site.ID()]
		if s == nil {
			s = &spawnSite{caller: e.Caller, call: e.Site}
			bySite[e.Site.ID()] = s
			order = append(order, e.Site.ID())
		}
		s.targets = append(s.targets, e.Callee)
	}
	for _, id := range order {
		s := bySite[id]
		for _, r := range s.targets {
			fj.spawnSites[r] = append(fj.spawnSites[r], *s)
		}
	}
	for root, sites := range fj.spawnSites {
		min, ok := -1, true
		for _, s := range sites {
			if s.caller != fj.main {
				ok = false
				break
			}
			idx, in := fj.topIdx[s.call.ID()]
			if !in {
				ok = false
				break
			}
			if min < 0 || idx < min {
				min = idx
			}
		}
		if ok && min >= 0 {
			fj.minSpawn[root] = min
		}
	}
}

// spawnTargetOf returns the unique root a spawn call starts, or nil.
func (fj *forkJoin) spawnTargetOf(call *ast.Call) *types.FuncInfo {
	var found *types.FuncInfo
	for _, e := range fj.rep.CG.Edges {
		if e.Spawn && e.Site == call {
			if found != nil && found != e.Callee {
				return nil
			}
			found = e.Callee
		}
	}
	return found
}

// ---------------------------------------------------------------------------
// Join-all proofs

func (fj *forkJoin) proveJoins() {
	// joinOf[siteID] = top-level index of a proven join for that spawn.
	joinOf := make(map[ast.NodeID]int)

	stmts := fj.main.Decl.Body.Stmts
	for i, s := range stmts {
		if v, call := fj.scalarSpawn(s); v != nil {
			fj.proveScalarJoin(v, call, i, joinOf)
		}
		if m := fj.loopSpawn(s); m != nil {
			fj.proveLoopJoin(m, i, joinOf)
		}
	}

	for root, sites := range fj.spawnSites {
		if _, ok := fj.minSpawn[root]; !ok {
			continue // some spawn outside main: no join window
		}
		max, ok := -1, true
		for _, s := range sites {
			j, matched := joinOf[s.call.ID()]
			if !matched {
				ok = false
				break
			}
			if j > max {
				max = j
			}
		}
		if ok && max >= 0 {
			fj.joinAll[root] = max
		}
	}
}

// scalarSpawn matches `t = spawn(...)` / `int t = spawn(...)` at top
// level, returning the handle object and the spawn call.
func (fj *forkJoin) scalarSpawn(s ast.Stmt) (*types.Object, *ast.Call) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		if call, ok := fj.asSpawnCall(s.Decl.Init); ok {
			return fj.rep.Info.Objects[s.Decl.ID()], call
		}
	case *ast.AssignStmt:
		if s.Op != token.ASSIGN {
			return nil, nil
		}
		id, ok := s.LHS.(*ast.Ident)
		if !ok {
			return nil, nil
		}
		if call, ok := fj.asSpawnCall(s.RHS); ok {
			return fj.rep.Info.Uses[id.ID()], call
		}
	}
	return nil, nil
}

func (fj *forkJoin) asSpawnCall(e ast.Expr) (*ast.Call, bool) {
	call, ok := e.(*ast.Call)
	if !ok {
		return nil, false
	}
	t := fj.rep.Info.CallTargets[call.ID()]
	if t == nil || t.Builtin != types.BSpawn {
		return nil, false
	}
	return call, true
}

func (fj *forkJoin) asJoinCall(e ast.Expr) (*ast.Call, bool) {
	call, ok := e.(*ast.Call)
	if !ok {
		return nil, false
	}
	t := fj.rep.Info.CallTargets[call.ID()]
	if t == nil || t.Builtin != types.BJoin {
		return nil, false
	}
	return call, true
}

// proveScalarJoin matches the earliest unconditional top-level join(t)
// after the spawn, provided t never escapes and the spawn is t's only
// write anywhere in the program.
func (fj *forkJoin) proveScalarJoin(v *types.Object, call *ast.Call, spawnIdx int, joinOf map[ast.NodeID]int) {
	if v == nil || v.AddrTaken {
		return
	}
	if fj.writeCount(v) != 1 {
		return
	}
	stmts := fj.main.Decl.Body.Stmts
	for j := spawnIdx + 1; j < len(stmts); j++ {
		es, ok := stmts[j].(*ast.ExprStmt)
		if !ok {
			continue
		}
		jc, ok := fj.asJoinCall(es.X)
		if !ok {
			continue
		}
		arg, ok := jc.Args[0].(*ast.Ident)
		if !ok || fj.rep.Info.Uses[arg.ID()] != v {
			continue
		}
		joinOf[call.ID()] = j
		return
	}
}

// writeCount counts stores to a scalar object across the whole program
// (initializing declarations included).
func (fj *forkJoin) writeCount(v *types.Object) int {
	info := fj.rep.Info
	n := 0
	ast.InspectFile(info.File, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.DeclStmt:
			if info.Objects[s.Decl.ID()] == v && s.Decl.Init != nil {
				n++
			}
		case *ast.AssignStmt:
			if id, ok := s.LHS.(*ast.Ident); ok && info.Uses[id.ID()] == v {
				n++
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && info.Uses[id.ID()] == v {
				n++
			}
		}
		return true
	})
	// A global with an initializer also counts as written once.
	if v.Kind == types.ObjGlobal {
		if d, ok := v.Decl.(*ast.VarDecl); ok && d.Init != nil {
			n++
		}
	}
	return n
}

// loopSpawnMatch is a recognized top-level spawn loop.
type loopSpawnMatch struct {
	arr   *types.Object
	call  *ast.Call
	hdr   string
	bound ast.Expr
}

// loopSpawn matches the top-level statement shape
//
//	for (v = 0; v < E; v++) { arr[v] = spawn(R, ...); }
func (fj *forkJoin) loopSpawn(s ast.Stmt) *loopSpawnMatch {
	f, ok := s.(*ast.ForStmt)
	if !ok || len(f.Body.Stmts) != 1 {
		return nil
	}
	as, ok := f.Body.Stmts[0].(*ast.AssignStmt)
	if !ok || as.Op != token.ASSIGN {
		return nil
	}
	idx, ok := as.LHS.(*ast.Index)
	if !ok {
		return nil
	}
	base, ok := idx.X.(*ast.Ident)
	if !ok {
		return nil
	}
	iv, ok := idx.Index.(*ast.Ident)
	if !ok {
		return nil
	}
	sc, ok := fj.asSpawnCall(as.RHS)
	if !ok {
		return nil
	}
	lv, hdrStr, ok := fj.countedHeader(f)
	if !ok || fj.rep.Info.Uses[iv.ID()] != lv {
		return nil
	}
	arr := fj.rep.Info.Uses[base.ID()]
	if arr == nil {
		return nil
	}
	return &loopSpawnMatch{arr: arr, call: sc, hdr: hdrStr, bound: f.CondE.(*ast.Binary).Y}
}

// countedHeader matches `for (v = 0; v < E; v++)` (declaration or plain
// assignment init) where v is a scalar never address-taken and not written
// in the loop body, and E is an int literal or a non-address-taken
// variable. It returns the loop variable and a canonical printed header.
func (fj *forkJoin) countedHeader(f *ast.ForStmt) (*types.Object, string, bool) {
	info := fj.rep.Info
	var v *types.Object
	switch init := f.Init.(type) {
	case *ast.DeclStmt:
		if lit, ok := init.Decl.Init.(*ast.IntLit); !ok || lit.Value != 0 {
			return nil, "", false
		}
		v = info.Objects[init.Decl.ID()]
	case *ast.AssignStmt:
		if init.Op != token.ASSIGN {
			return nil, "", false
		}
		id, ok := init.LHS.(*ast.Ident)
		if !ok {
			return nil, "", false
		}
		if lit, ok := init.RHS.(*ast.IntLit); !ok || lit.Value != 0 {
			return nil, "", false
		}
		v = info.Uses[id.ID()]
	default:
		return nil, "", false
	}
	if v == nil || v.AddrTaken {
		return nil, "", false
	}
	cond, ok := f.CondE.(*ast.Binary)
	if !ok || cond.Op != token.LT {
		return nil, "", false
	}
	cid, ok := cond.X.(*ast.Ident)
	if !ok || info.Uses[cid.ID()] != v {
		return nil, "", false
	}
	switch e := cond.Y.(type) {
	case *ast.IntLit:
	case *ast.Ident:
		o := info.Uses[e.ID()]
		if o == nil || o.AddrTaken || o.Kind == types.ObjParam {
			return nil, "", false
		}
	default:
		return nil, "", false
	}
	inc, ok := f.Post.(*ast.IncDecStmt)
	if !ok || inc.Op != token.INC {
		return nil, "", false
	}
	pid, ok := inc.X.(*ast.Ident)
	if !ok || info.Uses[pid.ID()] != v {
		return nil, "", false
	}
	// v must not be stored to inside the body.
	written := false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if id, ok := s.LHS.(*ast.Ident); ok && info.Uses[id.ID()] == v {
				written = true
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && info.Uses[id.ID()] == v {
				written = true
			}
		}
		return true
	})
	if written {
		return nil, "", false
	}
	hdr := v.Name + "|" + ast.PrintExpr(f.CondE)
	return v, hdr, true
}

// proveLoopJoin matches a later top-level loop with an identical counted
// header whose body is exactly join(arr[v]).
func (fj *forkJoin) proveLoopJoin(m *loopSpawnMatch, spawnIdx int, joinOf map[ast.NodeID]int) {
	arr, call, hdr := m.arr, m.call, m.hdr
	if !fj.handleArrayOK(arr) {
		return
	}
	if !fj.boundFrozenBefore(m.bound, spawnIdx) {
		return
	}
	stmts := fj.main.Decl.Body.Stmts
	for j := spawnIdx + 1; j < len(stmts); j++ {
		f, ok := stmts[j].(*ast.ForStmt)
		if !ok {
			continue
		}
		if len(f.Body.Stmts) != 1 {
			continue
		}
		es, ok := f.Body.Stmts[0].(*ast.ExprStmt)
		if !ok {
			continue
		}
		jc, ok := fj.asJoinCall(es.X)
		if !ok {
			continue
		}
		idx, ok := jc.Args[0].(*ast.Index)
		if !ok {
			continue
		}
		base, ok := idx.X.(*ast.Ident)
		if !ok || fj.rep.Info.Uses[base.ID()] != arr {
			continue
		}
		iv, ok := idx.Index.(*ast.Ident)
		if !ok {
			continue
		}
		lv, jhdr, ok := fj.countedHeader(f)
		if !ok || jhdr != hdr || fj.rep.Info.Uses[iv.ID()] != lv {
			continue
		}
		// No store to arr may land between the spawn loop and the join
		// loop; stores before are overwritten for the whole range (the
		// frozen identical headers cover the same indices) and stores
		// after cannot affect the joins.
		if fj.arrayStoreBetween(arr, spawnIdx, j) {
			return
		}
		joinOf[call.ID()] = j
		return
	}
}

// handleArrayOK verifies the handle array never aliases: every use of it,
// anywhere in the program, is an element access arr[i] that is either the
// target of a spawn store or the argument of a join. The check counts
// total identifier uses against sanctioned occurrences, so any appearance
// in another context (a bare reference, a copy, an address-taking, an
// index expression mentioning arr itself) makes the counts disagree and
// the proof fails closed.
func (fj *forkJoin) handleArrayOK(arr *types.Object) bool {
	if arr == nil {
		return false
	}
	info := fj.rep.Info
	uses, sanctioned := 0, 0
	ast.InspectFile(info.File, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if info.Uses[n.ID()] == arr {
				uses++
			}
		case *ast.AssignStmt:
			if n.Op == token.ASSIGN && fj.isHandleElem(n.LHS, arr) {
				if _, isSpawn := fj.asSpawnCall(n.RHS); isSpawn {
					sanctioned++
				}
			}
		case *ast.Call:
			if _, isJoin := fj.asJoinCall(n); isJoin && len(n.Args) == 1 && fj.isHandleElem(n.Args[0], arr) {
				sanctioned++
			}
		}
		return true
	})
	return uses > 0 && uses == sanctioned
}

// isHandleElem matches arr[i] with a plain identifier index (not arr).
func (fj *forkJoin) isHandleElem(e ast.Expr, arr *types.Object) bool {
	idx, ok := e.(*ast.Index)
	if !ok {
		return false
	}
	base, ok := idx.X.(*ast.Ident)
	if !ok || fj.rep.Info.Uses[base.ID()] != arr {
		return false
	}
	inner, ok := idx.Index.(*ast.Ident)
	return ok && fj.rep.Info.Uses[inner.ID()] != arr
}

// arrayStoreBetween reports whether any store to arr sits in a main
// top-level statement strictly between the given indices, or outside main
// entirely.
func (fj *forkJoin) arrayStoreBetween(arr *types.Object, lo, hi int) bool {
	info := fj.rep.Info
	found := false
	for _, fn := range info.FuncList {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			idx, ok := as.LHS.(*ast.Index)
			if !ok {
				return true
			}
			base, ok := idx.X.(*ast.Ident)
			if !ok || info.Uses[base.ID()] != arr {
				return true
			}
			if fn != fj.main {
				found = true
				return true
			}
			i, in := fj.topIdx[as.ID()]
			if !in || (i > lo && i < hi) {
				found = true
			}
			return true
		})
	}
	return found
}

// boundFrozenBefore verifies a loop-bound expression holds the same value
// from the given main top-level index onward: it is a literal, or a
// non-address-taken variable written only in main top-level statements
// before that index.
func (fj *forkJoin) boundFrozenBefore(bound ast.Expr, idx int) bool {
	switch e := bound.(type) {
	case *ast.IntLit:
		return true
	case *ast.Ident:
		o := fj.rep.Info.Uses[e.ID()]
		return fj.frozenBefore(o, idx)
	}
	return false
}

// frozenBefore reports whether every write to the object across the whole
// program is a main top-level statement with index < idx.
func (fj *forkJoin) frozenBefore(o *types.Object, idx int) bool {
	if o == nil || o.AddrTaken {
		return false
	}
	if o.Kind == types.ObjParam {
		return false
	}
	if o.Kind == types.ObjLocal && o.Func != fj.main {
		return false
	}
	info := fj.rep.Info
	ok := true
	check := func(n ast.Node) {
		i, in := fj.topIdx[n.ID()]
		if !in || i >= idx {
			ok = false
		}
	}
	ast.InspectFile(info.File, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			if info.Objects[s.Decl.ID()] == o && s.Decl.Init != nil {
				check(s)
			}
		case *ast.AssignStmt:
			if id, isID := s.LHS.(*ast.Ident); isID && info.Uses[id.ID()] == o {
				check(s)
			}
		case *ast.IncDecStmt:
			if id, isID := s.X.(*ast.Ident); isID && info.Uses[id.ID()] == o {
				check(s)
			}
		}
		return true
	})
	return ok
}
