// Package mhp is a static may-happen-in-parallel refinement for RELAY
// race reports.
//
// The core RELAY reproduction is, by design, exactly as imprecise as the
// paper's (§3.3): it ignores the happens-before edges contributed by
// fork/join and barriers, so a pair like phase_a/phase_b in the water
// benchmark — separated by a barrier_wait in every execution — is still
// reported as a race and still costs a weak lock at run time. Chimera
// recovers that precision dynamically, via the non-concurrency profiler;
// this package recovers a large class of it statically, in the spirit of
// lightweight static MHP phases such as RacerF (Dacík & Vojnar, 2025).
//
// Two sub-analyses produce non-concurrency proofs:
//
//   - fork/join (forkjoin.go): main's top-level statement order is a
//     timeline; accesses provably before every spawn of a root, or after a
//     proven join-all of it, cannot run concurrently with that root, and
//     two roots with disjoint fork/join windows cannot overlap at all.
//   - barrier phases (barrier.go): a thread body whose barrier waits form
//     a uniform phase structure is segmented, and accesses that can never
//     observe the same episode count are non-concurrent.
//
// Both analyses are syntactic and fail closed: escaping thread handles,
// conditional spawns or joins, barriers whose address is copied, waits
// under conditionals, or non-uniform trip counts all simply produce no
// proof, and the pair is kept. Soundness — never pruning a pair that can
// actually race — is what makes the refinement safe to feed to the
// instrumenter: a pruned pair gets no weak lock, so a wrong prune would
// let a real race replay unordered. docs/mhp.md develops the argument.
//
// The pass is opt-in (RefineMHP on the RELAY report, -mhp on racecheck,
// the +mhp configurations in the bench harness); the default pipeline
// keeps the paper-faithful false-positive structure.
package mhp

import (
	"repro/internal/minic/types"
	"repro/internal/relay"
)

// Analysis holds the computed MHP facts for one program.
type Analysis struct {
	rep *relay.Report
	fj  *forkJoin
	ba  *barrierAnalysis

	// rootsOf maps each function to the thread roots whose call closure
	// (spawn edges excluded) can execute it. An access in f can run on
	// every thread in rootsOf[f], not just the one RELAY happened to
	// record on the pair.
	rootsOf map[*types.FuncInfo][]*types.FuncInfo
}

// Analyze runs the fork/join and barrier-phase analyses over an analyzed
// program. The report must carry the Info/PTA/CG it was produced with.
func Analyze(rep *relay.Report) *Analysis {
	fj := newForkJoin(rep)
	a := &Analysis{
		rep:     rep,
		fj:      fj,
		ba:      newBarrierAnalysis(rep, fj),
		rootsOf: make(map[*types.FuncInfo][]*types.FuncInfo),
	}
	for _, root := range rep.CG.Roots {
		seen := make(map[*types.FuncInfo]bool)
		var dfs func(fn *types.FuncInfo)
		dfs = func(fn *types.FuncInfo) {
			if fn == nil || seen[fn] {
				return
			}
			seen[fn] = true
			a.rootsOf[fn] = append(a.rootsOf[fn], root)
			for _, callee := range rep.CG.CalleesOf(fn) {
				dfs(callee)
			}
		}
		dfs(root)
	}
	return a
}

// Refine returns a copy of the report with every pair the analysis proves
// non-concurrent moved to Pruned (with provenance); the original report is
// left intact.
func Refine(rep *relay.Report) *relay.Report {
	return rep.RefineMHP(Analyze(rep).Verdict)
}

// Verdict decides one race pair: prune=true means the two accesses are
// proven never to run concurrently, with reason one of "pre-fork",
// "join-ordered", or "barrier-phase". Any gap in the proofs yields
// (false, ""): the pair is kept.
//
// RELAY dedups pairs by node pair alone, so the recorded RootA/RootB is
// only the first root combination that produced the pair; a shared helper
// reachable from several roots can race under combinations the report
// never materialized. The verdict therefore enumerates every pair of
// roots whose call closures reach the two access functions and prunes
// only when each combination is proven non-concurrent.
func (a *Analysis) Verdict(p *relay.RacePair) (prune bool, reason string) {
	if a.fj.main == nil {
		return false, ""
	}
	rootsA := a.rootsOf[p.A.Fn]
	rootsB := a.rootsOf[p.B.Fn]
	if len(rootsA) == 0 || len(rootsB) == 0 {
		return false, ""
	}
	for _, ra := range rootsA {
		for _, rb := range rootsB {
			ok, r := a.comboVerdict(p, ra, rb)
			if !ok {
				return false, ""
			}
			if reason == "" {
				reason = r
			}
		}
	}
	if reason == "" {
		// Every combination degenerated to a single thread; RELAY never
		// reports such a pair, so fail closed rather than invent a proof.
		return false, ""
	}
	return true, reason
}

// comboVerdict decides one root combination: thread ra executing access
// p.A against thread rb executing access p.B. An empty reason with
// prune=true marks a degenerate combination (both accesses on one
// single-instance thread) that contributes no concurrency.
func (a *Analysis) comboVerdict(p *relay.RacePair, ra, rb *types.FuncInfo) (prune bool, reason string) {
	main := a.fj.main
	aMain, bMain := ra == main, rb == main
	switch {
	case aMain && bMain:
		// Both accesses on the main thread, which runs once: sequential.
		return true, ""

	case aMain != bMain:
		// One side runs on the main thread: order it against the other
		// root's fork/join window on main's timeline.
		acc, root := p.A, rb
		if bMain {
			acc, root = p.B, ra
		}
		lo, hi, ok := a.mainSpan(acc)
		if !ok {
			return false, ""
		}
		if ms, in := a.fj.minSpawn[root]; in && hi < ms {
			return true, "pre-fork"
		}
		if ja, in := a.fj.joinAll[root]; in && lo > ja {
			return true, "join-ordered"
		}
		return false, ""

	case ra != rb:
		// Two different roots: disjoint fork/join windows mean no overlap.
		if a.ba.windowsDisjoint(ra, rb) {
			return true, "join-ordered"
		}
		return false, ""

	default:
		// Same root on both sides: sequential when at most one instance
		// runs; otherwise only barrier phases can separate two instances
		// of the same code.
		if a.singleInstance(ra) {
			return true, ""
		}
		for _, bi := range a.ba.barriers {
			pm := bi.phases[ra]
			if pm == nil {
				continue
			}
			pa := pm.positions(p.A, ra)
			pb := pm.positions(p.B, ra)
			if len(pa) == 0 || len(pb) == 0 {
				continue
			}
			if pm.allDisjoint(pa, pb) {
				return true, "barrier-phase"
			}
		}
		return false, ""
	}
}

// singleInstance proves at most one instance of root r ever runs: a lone
// spawn site, at main's top level, outside every loop.
func (a *Analysis) singleInstance(r *types.FuncInfo) bool {
	sites := a.fj.spawnSites[r]
	if len(sites) != 1 || sites[0].caller != a.fj.main {
		return false
	}
	loops := a.ba.enclosingLoops(sites)
	return loops != nil && len(loops[0]) == 0
}

// mainSpan returns the smallest and largest main top-level statement index
// under which the access can execute on the main thread.
func (a *Analysis) mainSpan(acc *relay.Access) (lo, hi int, ok bool) {
	if acc.Fn == a.fj.main {
		i, in := a.fj.topIdx[acc.Node]
		return i, i, in
	}
	set := a.fj.reach[acc.Fn]
	if len(set) == 0 {
		return 0, 0, false
	}
	first := true
	for i := range set {
		if first || i < lo {
			lo = i
		}
		if first || i > hi {
			hi = i
		}
		first = false
	}
	return lo, hi, true
}
