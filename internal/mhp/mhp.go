// Package mhp is a static may-happen-in-parallel refinement for RELAY
// race reports.
//
// The core RELAY reproduction is, by design, exactly as imprecise as the
// paper's (§3.3): it ignores the happens-before edges contributed by
// fork/join and barriers, so a pair like phase_a/phase_b in the water
// benchmark — separated by a barrier_wait in every execution — is still
// reported as a race and still costs a weak lock at run time. Chimera
// recovers that precision dynamically, via the non-concurrency profiler;
// this package recovers a large class of it statically, in the spirit of
// lightweight static MHP phases such as RacerF (Dacík & Vojnar, 2025).
//
// Two sub-analyses produce non-concurrency proofs:
//
//   - fork/join (forkjoin.go): main's top-level statement order is a
//     timeline; accesses provably before every spawn of a root, or after a
//     proven join-all of it, cannot run concurrently with that root, and
//     two roots with disjoint fork/join windows cannot overlap at all.
//   - barrier phases (barrier.go): a thread body whose barrier waits form
//     a uniform phase structure is segmented, and accesses that can never
//     observe the same episode count are non-concurrent.
//
// Both analyses are syntactic and fail closed: escaping thread handles,
// conditional spawns or joins, barriers whose address is copied, waits
// under conditionals, or non-uniform trip counts all simply produce no
// proof, and the pair is kept. Soundness — never pruning a pair that can
// actually race — is what makes the refinement safe to feed to the
// instrumenter: a pruned pair gets no weak lock, so a wrong prune would
// let a real race replay unordered. docs/mhp.md develops the argument.
//
// The pass is opt-in (RefineMHP on the RELAY report, -mhp on racecheck,
// the +mhp configurations in the bench harness); the default pipeline
// keeps the paper-faithful false-positive structure.
package mhp

import (
	"repro/internal/relay"
)

// Analysis holds the computed MHP facts for one program.
type Analysis struct {
	rep *relay.Report
	fj  *forkJoin
	ba  *barrierAnalysis
}

// Analyze runs the fork/join and barrier-phase analyses over an analyzed
// program. The report must carry the Info/PTA/CG it was produced with.
func Analyze(rep *relay.Report) *Analysis {
	fj := newForkJoin(rep)
	return &Analysis{rep: rep, fj: fj, ba: newBarrierAnalysis(rep, fj)}
}

// Refine returns a copy of the report with every pair the analysis proves
// non-concurrent moved to Pruned (with provenance); the original report is
// left intact.
func Refine(rep *relay.Report) *relay.Report {
	return rep.RefineMHP(Analyze(rep).Verdict)
}

// Verdict decides one race pair: prune=true means the two accesses are
// proven never to run concurrently, with reason one of "pre-fork",
// "join-ordered", or "barrier-phase". Any gap in the proofs yields
// (false, ""): the pair is kept.
func (a *Analysis) Verdict(p *relay.RacePair) (prune bool, reason string) {
	main := a.fj.main
	if main == nil {
		return false, ""
	}

	aMain, bMain := p.RootA == main, p.RootB == main
	switch {
	case aMain && bMain:
		// RELAY never pairs main with itself; keep defensively.
		return false, ""

	case aMain != bMain:
		// One side runs on the main thread: order it against the other
		// root's fork/join window on main's timeline.
		acc, root := p.A, p.RootB
		if bMain {
			acc, root = p.B, p.RootA
		}
		lo, hi, ok := a.mainSpan(acc)
		if !ok {
			return false, ""
		}
		if ms, in := a.fj.minSpawn[root]; in && hi < ms {
			return true, "pre-fork"
		}
		if ja, in := a.fj.joinAll[root]; in && lo > ja {
			return true, "join-ordered"
		}
		return false, ""

	case p.RootA != p.RootB:
		// Two different roots: disjoint fork/join windows mean no overlap.
		if a.ba.windowsDisjoint(p.RootA, p.RootB) {
			return true, "join-ordered"
		}
		return false, ""

	default:
		// Same root (multi-spawned): only barrier phases can separate two
		// instances of the same code.
		root := p.RootA
		for _, bi := range a.ba.barriers {
			pm := bi.phases[root]
			if pm == nil {
				continue
			}
			pa := pm.positions(p.A, root)
			pb := pm.positions(p.B, root)
			if len(pa) == 0 || len(pb) == 0 {
				continue
			}
			all := true
			for _, x := range pa {
				for _, y := range pb {
					if !pm.disjoint(x, y) {
						all = false
					}
				}
			}
			if all {
				return true, "barrier-phase"
			}
		}
		return false, ""
	}
}

// mainSpan returns the smallest and largest main top-level statement index
// under which the access can execute on the main thread.
func (a *Analysis) mainSpan(acc *relay.Access) (lo, hi int, ok bool) {
	if acc.Fn == a.fj.main {
		i, in := a.fj.topIdx[acc.Node]
		return i, i, in
	}
	set := a.fj.reach[acc.Fn]
	if len(set) == 0 {
		return 0, 0, false
	}
	first := true
	for i := range set {
		if first || i < lo {
			lo = i
		}
		if first || i > hi {
			hi = i
		}
		first = false
	}
	return lo, hi, true
}
