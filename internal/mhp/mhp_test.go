package mhp

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/relay"
)

func analyze(t *testing.T, src string) *relay.Report {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	return relay.AnalyzeProgram(info)
}

func hasFnPair(r *relay.Report, a, b string) bool {
	if a > b {
		a, b = b, a
	}
	return len(r.FuncPairs[[2]string{a, b}]) > 0
}

func prunedReasons(r *relay.Report) map[string]int {
	m := make(map[string]int)
	for _, p := range r.Pruned {
		m[p.Reason]++
	}
	return m
}

// The water example (Fig. 2 of the paper): RELAY reports phase_a/phase_b
// as racy because it ignores barriers; the MHP pass proves the barrier
// separates them, while keeping the genuine same-phase race.
func TestBarrierPhasePrunesWaterPair(t *testing.T) {
	r := analyze(t, `
int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void worker(int id) {
    phase_a(id);
    barrier_wait(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return data;
}
`)
	if !hasFnPair(r, "phase_a", "phase_b") {
		t.Fatal("RELAY should report the cross-phase pair before refinement")
	}
	ref := Refine(r)
	if len(ref.Pairs) >= len(r.Pairs) {
		t.Fatalf("refinement should shrink the pair set: %d -> %d", len(r.Pairs), len(ref.Pairs))
	}
	if hasFnPair(ref, "phase_a", "phase_b") {
		t.Error("cross-phase pair should be pruned (barrier-phase)")
	}
	if !hasFnPair(ref, "phase_a", "phase_a") || !hasFnPair(ref, "phase_b", "phase_b") {
		t.Error("same-phase pairs are real races and must be kept")
	}
	reasons := prunedReasons(ref)
	if reasons["barrier-phase"] == 0 {
		t.Errorf("expected a barrier-phase prune, got %v", reasons)
	}
	if reasons["join-ordered"] == 0 {
		t.Errorf("main's post-join read should be join-ordered, got %v", reasons)
	}
	// The original report is untouched.
	if len(r.Pruned) != 0 || !hasFnPair(r, "phase_a", "phase_b") {
		t.Error("Refine must not mutate the input report")
	}
}

// Water's step loop: phases inside a barrier loop alternate segments; the
// cross-segment pair is pruned, the same-segment pairs stay, and code
// after the loop (poteng-style) is separated from all in-loop phases.
func TestBarrierLoopPhases(t *testing.T) {
	r := analyze(t, `
int bar;
int nsteps;
int g;
void predic(int id) { g = id; }
void interf(int id) { g = g + id; }
void poteng(int id) { g = g * 2; }
void worker(int id) {
    int steps = nsteps;
    for (int s = 0; s < steps; s++) {
        predic(id);
        barrier_wait(&bar);
        interf(id);
        barrier_wait(&bar);
    }
    poteng(id);
}
int main(void) {
    nsteps = 10;
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return g;
}
`)
	for _, pair := range [][2]string{{"predic", "interf"}, {"predic", "poteng"}, {"interf", "poteng"}} {
		if !hasFnPair(r, pair[0], pair[1]) {
			t.Fatalf("RELAY should report %v before refinement", pair)
		}
	}
	ref := Refine(r)
	for _, pair := range [][2]string{{"predic", "interf"}, {"predic", "poteng"}, {"interf", "poteng"}} {
		if hasFnPair(ref, pair[0], pair[1]) {
			t.Errorf("%v is barrier-separated and should be pruned", pair)
		}
	}
	for _, fn := range []string{"predic", "interf", "poteng"} {
		if !hasFnPair(ref, fn, fn) {
			t.Errorf("same-segment pair %s/%s must be kept", fn, fn)
		}
	}
}

// Pre-fork initialization and post-join reads on the main thread are
// ordered against the workers' fork/join window, including the loop-spawn
// / loop-join shape used by the scientific benchmarks.
func TestForkJoinWindowOnMainTimeline(t *testing.T) {
	r := analyze(t, `
int tids[4];
int nworkers;
int table[64];
void worker(int id) { table[id] = table[id] + 1; }
int main(void) {
    nworkers = 4;
    for (int i = 0; i < 64; i++) { table[i] = i; }
    for (int w = 0; w < nworkers; w++) { tids[w] = spawn(worker, w); }
    for (int w = 0; w < nworkers; w++) { join(tids[w]); }
    return table[0];
}
`)
	if !hasFnPair(r, "main", "worker") {
		t.Fatal("RELAY should pair main's init/read with the workers")
	}
	ref := Refine(r)
	if hasFnPair(ref, "main", "worker") {
		t.Error("main's accesses are pre-fork or join-ordered and should be pruned")
	}
	if !hasFnPair(ref, "worker", "worker") {
		t.Error("worker/worker is a real race and must be kept")
	}
	reasons := prunedReasons(ref)
	if reasons["pre-fork"] == 0 || reasons["join-ordered"] == 0 {
		t.Errorf("expected pre-fork and join-ordered prunes, got %v", reasons)
	}
}

// Two roots whose fork/join windows are disjoint never overlap.
func TestDisjointWindowsPruned(t *testing.T) {
	r := analyze(t, `
int g;
void w1(int id) { g = g + 1; }
void w2(int id) { g = g * 2; }
int main(void) {
    int a = spawn(w1, 1);
    join(a);
    int b = spawn(w2, 2);
    join(b);
    return g;
}
`)
	if len(r.Pairs) == 0 {
		t.Fatal("RELAY should report pairs before refinement")
	}
	ref := Refine(r)
	if len(ref.Pairs) != 0 {
		t.Errorf("all pairs are fork/join ordered; kept %d", len(ref.Pairs))
	}
}

// Negative: a handle whose address escapes yields no join-all proof, so
// main's post-"join" access is kept.
func TestEscapingHandleKept(t *testing.T) {
	r := analyze(t, `
int g;
void taker(int *p) { }
void worker(int id) { g = id; }
int main(void) {
    int t = spawn(worker, 1);
    taker(&t);
    join(t);
    g = 5;
    return g;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "main", "worker") {
		t.Error("escaping handle: join is unproven, main/worker must be kept")
	}
}

// Negative: a conditional join proves nothing.
func TestConditionalJoinKept(t *testing.T) {
	r := analyze(t, `
int g;
int flag;
void worker(int id) { g = id; }
int main(void) {
    int t = spawn(worker, 1);
    if (flag != 0) { join(t); }
    g = 5;
    return g;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "main", "worker") {
		t.Error("conditional join proves nothing; main/worker must be kept")
	}
}

// Negative: a barrier waited on in only one of two concurrent roots
// orders nothing between them.
func TestBarrierInOneThreadKept(t *testing.T) {
	r := analyze(t, `
int bar;
int g;
void w1(int id) { barrier_wait(&bar); g = id; }
void w2(int id) { g = 7; }
int main(void) {
    barrier_init(&bar, 2);
    int a = spawn(w1, 1);
    int b = spawn(w2, 2);
    join(a); join(b);
    return g;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "w1", "w2") {
		t.Error("concurrent roots with a one-sided barrier must stay paired")
	}
}

// Negative: a wait under a conditional breaks the uniform phase
// structure; the whole root keeps its pairs.
func TestConditionalWaitKept(t *testing.T) {
	r := analyze(t, `
int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void worker(int id) {
    phase_a(id);
    if (id > 0) { barrier_wait(&bar); }
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return data;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "phase_a", "phase_b") {
		t.Error("a conditional wait aligns nothing; cross-phase pair must be kept")
	}
}

// Negative: more spawned instances than the barrier count breaks phase
// alignment, so no barrier prune may fire.
func TestOverSubscribedBarrierKept(t *testing.T) {
	r := analyze(t, `
int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void worker(int id) {
    phase_a(id);
    barrier_wait(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    int t3 = spawn(worker, 3);
    join(t1); join(t2); join(t3);
    return data;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "phase_a", "phase_b") {
		t.Error("three waiters on a two-slot barrier are not aligned; pair must be kept")
	}
}

// Regression: RELAY dedups a node pair across root combinations, keeping
// only the first (main-rooted) attribution. A helper written pre-fork by
// main but also called by two concurrent workers must keep its pair: the
// recorded (main, worker) combination is pre-fork, yet the worker×worker
// combination still races on the same nodes.
func TestSharedHelperAllRootCombinationsKept(t *testing.T) {
	r := analyze(t, `
int g;
void touch(void) { g = g + 1; }
void w1(int id) { touch(); }
void w2(int id) { touch(); }
int main(void) {
    touch();
    int a = spawn(w1, 1);
    int b = spawn(w2, 2);
    join(a); join(b);
    return g;
}
`)
	if !hasFnPair(r, "touch", "touch") {
		t.Fatal("RELAY should report the touch/touch pair before refinement")
	}
	ref := Refine(r)
	if !hasFnPair(ref, "touch", "touch") {
		t.Error("w1 and w2 run touch concurrently; the pair must be kept " +
			"even though the recorded main/w1 combination is pre-fork")
	}
}

// Positive control for the combination enumeration: with the two workers'
// fork/join windows disjoint, every root combination is discharged and
// the shared-helper pair is pruned.
func TestSharedHelperDisjointCombinationsPruned(t *testing.T) {
	r := analyze(t, `
int g;
void touch(void) { g = g + 1; }
void w1(int id) { touch(); }
void w2(int id) { touch(); }
int main(void) {
    touch();
    int a = spawn(w1, 1);
    join(a);
    int b = spawn(w2, 2);
    join(b);
    return g;
}
`)
	if !hasFnPair(r, "touch", "touch") {
		t.Fatal("RELAY should report the touch/touch pair before refinement")
	}
	ref := Refine(r)
	if hasFnPair(ref, "touch", "touch") {
		t.Error("every root combination is fork/join ordered; pair should be pruned")
	}
}

// Negative: a barrier waiter that is also called as a plain function
// executes extra waits the instance bound never counted, so episode
// alignment is unprovable and the cross-phase pair must be kept.
func TestCalledWaiterDisablesBarrier(t *testing.T) {
	r := analyze(t, `
int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void worker(int id) {
    phase_a(id);
    barrier_wait(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    worker(0);
    return data;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "phase_a", "phase_b") {
		t.Error("a waiter also entered by a direct call breaks episode alignment; pair must be kept")
	}
}

// Negative: a copied barrier address could alias; the analysis must
// disable itself entirely.
func TestBarrierAddressEscapeDisables(t *testing.T) {
	r := analyze(t, `
int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void wait_on(int *b) { barrier_wait(b); }
void worker(int id) {
    phase_a(id);
    wait_on(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return data;
}
`)
	ref := Refine(r)
	if !hasFnPair(ref, "phase_a", "phase_b") {
		t.Error("a barrier waited through a pointer is not provable; pair must be kept")
	}
}
