// Package ast declares the abstract syntax tree of MiniC.
//
// The tree is deliberately close to CIL's view of C: expressions are typed
// lvalues/rvalues over ints, pointers, arrays and structs; loops are
// structured (no goto), so the loop bodies that Chimera's symbolic bounds
// analysis reasons about are syntactic nodes; synchronization and thread
// operations are ordinary calls to builtin functions that later stages
// recognize by name.
//
// Every node carries a unique ID assigned at parse time. Analyses use IDs as
// stable map keys, and the instrumenter's clones preserve them so results
// computed on the original tree can be applied to the transformed one.
package ast

import (
	"repro/internal/minic/token"
)

// NodeID uniquely identifies an AST node within one parsed File.
type NodeID int

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
	ID() NodeID
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is a top-level declaration node.
type Decl interface {
	Node
	declNode()
}

type base struct {
	NodePos token.Pos
	NodeID  NodeID
}

// Pos returns the source position of the node.
func (b *base) Pos() token.Pos { return b.NodePos }

// ID returns the unique node ID.
func (b *base) ID() NodeID { return b.NodeID }

// SetMeta sets the position and ID; used by the parser and by passes that
// synthesize nodes.
func (b *base) SetMeta(pos token.Pos, id NodeID) { b.NodePos = pos; b.NodeID = id }

// ---------------------------------------------------------------------------
// Types (syntactic)

// TypeKind distinguishes the syntactic base types.
type TypeKind int

// The syntactic base type kinds.
const (
	TypeInt TypeKind = iota
	TypeVoid
	TypeStruct
)

// TypeName is a syntactic type: a base type, a pointer depth, and optional
// array lengths (outermost first). `int *a[10]` is {Int, Stars:1, Array:[10]}:
// an array of 10 pointers to int, matching C declarator semantics for the
// restricted forms MiniC supports.
type TypeName struct {
	Kind       TypeKind
	StructName string // for TypeStruct
	Stars      int    // pointer depth
	ArrayLens  []int64
}

// IsVoid reports whether the type is plain void (no pointers, no arrays).
func (t TypeName) IsVoid() bool {
	return t.Kind == TypeVoid && t.Stars == 0 && len(t.ArrayLens) == 0
}

// ---------------------------------------------------------------------------
// Expressions

// IntLit is an integer literal.
type IntLit struct {
	base
	Value int64
}

// StringLit is a string literal; it evaluates to the address of a static
// NUL-terminated word array holding the bytes.
type StringLit struct {
	base
	Value string
}

// Ident is a use of a named variable or function.
type Ident struct {
	base
	Name string
}

// Unary is a unary expression: -x, !x, *p (deref), &lv (address-of).
type Unary struct {
	base
	Op token.Kind // MINUS, NOT, STAR, AMP
	X  Expr
}

// Binary is a binary expression with a C-precedence operator.
type Binary struct {
	base
	Op   token.Kind
	X, Y Expr
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	base
	CondE      Expr
	Then, Else Expr
}

// Index is array or pointer indexing x[i].
type Index struct {
	base
	X     Expr
	Index Expr
}

// Field is struct member access: x.Name, or x->Name when Arrow is set.
type Field struct {
	base
	X     Expr
	Name  string
	Arrow bool
}

// Call is a function call. Fun is an Ident naming a function or builtin, or
// an arbitrary expression evaluating to a function pointer.
type Call struct {
	base
	Fun  Expr
	Args []Expr
}

// Sizeof is sizeof(type); it folds to a word count at type check.
type Sizeof struct {
	base
	Type TypeName
}

func (*IntLit) exprNode()    {}
func (*StringLit) exprNode() {}
func (*Ident) exprNode()     {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Cond) exprNode()      {}
func (*Index) exprNode()     {}
func (*Field) exprNode()     {}
func (*Call) exprNode()      {}
func (*Sizeof) exprNode()    {}

// ---------------------------------------------------------------------------
// Statements

// Block is { stmts... }.
type Block struct {
	base
	Stmts []Stmt
}

// DeclStmt declares a local variable, with optional initializer.
type DeclStmt struct {
	base
	Decl *VarDecl
}

// AssignStmt is lhs = rhs or a compound assignment (+=, -=, ...).
type AssignStmt struct {
	base
	Op  token.Kind // ASSIGN, ADD_ASSIGN, ...
	LHS Expr
	RHS Expr
}

// IncDecStmt is lv++ or lv--.
type IncDecStmt struct {
	base
	Op token.Kind // INC or DEC
	X  Expr
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	base
	X Expr
}

// IfStmt is if (cond) then [else else].
type IfStmt struct {
	base
	CondE Expr
	Then  *Block
	Else  Stmt // *Block, *IfStmt, or nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	base
	CondE Expr
	Body  *Block
}

// ForStmt is for (init; cond; post) body. Init and Post may be nil; Cond may
// be nil (infinite loop).
type ForStmt struct {
	base
	Init  Stmt // *DeclStmt, *AssignStmt, *IncDecStmt, or nil
	CondE Expr
	Post  Stmt
	Body  *Block
}

// ReturnStmt is return [expr].
type ReturnStmt struct {
	base
	X Expr // nil for bare return
}

// BreakStmt is break.
type BreakStmt struct{ base }

// ContinueStmt is continue.
type ContinueStmt struct{ base }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Declarations

// VarDecl declares a variable (global or local).
type VarDecl struct {
	base
	Name string
	Type TypeName
	Init Expr // optional
}

// FieldDecl is one field of a struct.
type FieldDecl struct {
	base
	Name string
	Type TypeName
}

// StructDecl declares struct Name { fields }.
type StructDecl struct {
	base
	Name   string
	Fields []*FieldDecl
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	base
	Name string
	Type TypeName
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	base
	Name   string
	Params []*ParamDecl
	Ret    TypeName
	Body   *Block
}

func (*VarDecl) declNode()    {}
func (*StructDecl) declNode() {}
func (*FuncDecl) declNode()   {}

// File is a parsed MiniC translation unit.
type File struct {
	Name    string // source name, for diagnostics
	Decls   []Decl
	MaxID   NodeID // all node IDs in the file are < MaxID
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Func returns the function declaration with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// Struct returns the struct declaration with the given name, or nil.
func (f *File) Struct(name string) *StructDecl {
	for _, s := range f.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Global returns the global variable declaration with the given name, or nil.
func (f *File) Global(name string) *VarDecl {
	for _, g := range f.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}
