package ast_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
)

// genStmts produces a random but always-valid MiniC function body.
func genStmts(r *rand.Rand, depth, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += genStmt(r, depth) + "\n"
	}
	return out
}

func genStmt(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("g = g + %d;", r.Intn(100))
	}
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("g = %s;", genE(r, 2))
	case 1:
		return fmt.Sprintf("arr[%d] = %s;", r.Intn(8), genE(r, 2))
	case 2:
		return fmt.Sprintf("if (%s) {\n%s}", genE(r, 1), genStmts(r, depth-1, 1+r.Intn(2)))
	case 3:
		return fmt.Sprintf("if (%s) {\n%s} else {\n%s}",
			genE(r, 1), genStmts(r, depth-1, 1), genStmts(r, depth-1, 1))
	case 4:
		v := fmt.Sprintf("i%d", r.Intn(1000))
		return fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {\n%s}",
			v, v, 2+r.Intn(5), v, genStmts(r, depth-1, 1))
	case 5:
		return "g++;"
	case 6:
		return fmt.Sprintf("g += %s;", genE(r, 1))
	default:
		return fmt.Sprintf("p = &arr[%d];\n*p = %s;", r.Intn(8), genE(r, 1))
	}
}

func genE(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(50))
		case 1:
			return "g"
		case 2:
			return fmt.Sprintf("arr[%d]", r.Intn(8))
		default:
			return "x"
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "==", "<=", ">>", "<<"}
	op := ops[r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", genE(r, depth-1), op, genE(r, depth-1))
}

// TestPropertyPrintParseRoundTrip: for random programs, print∘parse is a
// fixed point of the printer.
func TestPropertyPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		src := fmt.Sprintf(`
int g;
int arr[8];
int *p;
void f(int x) {
%s}
int main(void) { f(1); return g; }
`, genStmts(r, 3, 3))
		f1, err := parser.Parse("r.mc", src)
		if err != nil {
			t.Fatalf("trial %d parse: %v\n%s", trial, err, src)
		}
		s1 := ast.Print(f1)
		f2, err := parser.Parse("r2.mc", s1)
		if err != nil {
			t.Fatalf("trial %d reparse: %v\n%s", trial, err, s1)
		}
		s2 := ast.Print(f2)
		if s1 != s2 {
			t.Fatalf("trial %d: print not a fixed point\n--- s1 ---\n%s\n--- s2 ---\n%s", trial, s1, s2)
		}
	}
}

// TestPropertyCloneIsDeepAndIDPreserving: clones print identically, share
// node IDs, and are structurally independent.
func TestPropertyCloneIsDeepAndIDPreserving(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 40; trial++ {
		src := fmt.Sprintf(`
int g;
int arr[8];
int *p;
void f(int x) {
%s}
`, genStmts(r, 3, 2))
		f1, err := parser.Parse("c.mc", src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		cl := ast.CloneFile(f1)
		if ast.Print(f1) != ast.Print(cl) {
			t.Fatalf("clone prints differently")
		}
		ids1 := collectIDs(f1)
		ids2 := collectIDs(cl)
		if len(ids1) != len(ids2) {
			t.Fatalf("node counts differ: %d vs %d", len(ids1), len(ids2))
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatalf("IDs not preserved at %d", i)
			}
		}
		// Mutate the clone: original must not change.
		before := ast.Print(f1)
		cl.Funcs[0].Body.Stmts = nil
		if ast.Print(f1) != before {
			t.Fatalf("clone aliases original")
		}
	}
}

func collectIDs(f *ast.File) []ast.NodeID {
	var ids []ast.NodeID
	ast.InspectFile(f, func(n ast.Node) bool {
		ids = append(ids, n.ID())
		return true
	})
	return ids
}
