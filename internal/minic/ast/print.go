package ast

import (
	"fmt"
	"strings"
)

// Print renders the file back to MiniC source text. The output parses to an
// equivalent tree (modulo node IDs/positions) and is used to display
// instrumented programs and in round-trip tests.
func Print(f *File) string {
	var p printer
	for i, d := range f.Decls {
		if i > 0 {
			p.ws("\n")
		}
		p.decl(d)
	}
	return p.sb.String()
}

// PrintStmt renders one statement at the given indent level.
func PrintStmt(s Stmt, indent int) string {
	p := printer{indent: indent}
	p.stmt(s)
	return p.sb.String()
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.sb.String()
}

// TypeString renders a syntactic type together with a declarator name, e.g.
// TypeString(t, "x") => "int *x[10]".
func TypeString(t TypeName, name string) string {
	var sb strings.Builder
	switch t.Kind {
	case TypeInt:
		sb.WriteString("int")
	case TypeVoid:
		sb.WriteString("void")
	case TypeStruct:
		sb.WriteString("struct ")
		sb.WriteString(t.StructName)
	}
	sb.WriteByte(' ')
	sb.WriteString(strings.Repeat("*", t.Stars))
	sb.WriteString(name)
	for _, n := range t.ArrayLens {
		fmt.Fprintf(&sb, "[%d]", n)
	}
	return sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) ws(s string)              { p.sb.WriteString(s) }
func (p *printer) wf(f string, args ...any) { fmt.Fprintf(&p.sb, f, args...) }
func (p *printer) nl()                      { p.sb.WriteByte('\n') }
func (p *printer) tab()                     { p.ws(strings.Repeat("    ", p.indent)) }

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *VarDecl:
		p.ws(TypeString(d.Type, d.Name))
		if d.Init != nil {
			p.ws(" = ")
			p.expr(d.Init, 0)
		}
		p.ws(";\n")
	case *StructDecl:
		p.wf("struct %s {\n", d.Name)
		for _, fd := range d.Fields {
			p.ws("    ")
			p.ws(TypeString(fd.Type, fd.Name))
			p.ws(";\n")
		}
		p.ws("};\n")
	case *FuncDecl:
		p.ws(TypeString(d.Ret, d.Name))
		p.ws("(")
		for i, par := range d.Params {
			if i > 0 {
				p.ws(", ")
			}
			p.ws(TypeString(par.Type, par.Name))
		}
		if len(d.Params) == 0 {
			p.ws("void")
		}
		p.ws(") ")
		p.block(d.Body)
		p.nl()
	}
}

func (p *printer) block(b *Block) {
	p.ws("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.tab()
		p.stmt(s)
		p.nl()
	}
	p.indent--
	p.tab()
	p.ws("}")
}

// stmt prints a statement without a trailing newline.
func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.block(s)
	case *DeclStmt:
		p.ws(TypeString(s.Decl.Type, s.Decl.Name))
		if s.Decl.Init != nil {
			p.ws(" = ")
			p.expr(s.Decl.Init, 0)
		}
		p.ws(";")
	case *AssignStmt:
		p.expr(s.LHS, 0)
		p.wf(" %s ", s.Op)
		p.expr(s.RHS, 0)
		p.ws(";")
	case *IncDecStmt:
		p.expr(s.X, 0)
		p.ws(s.Op.String())
		p.ws(";")
	case *ExprStmt:
		p.expr(s.X, 0)
		p.ws(";")
	case *IfStmt:
		p.ws("if (")
		p.expr(s.CondE, 0)
		p.ws(") ")
		p.block(s.Then)
		if s.Else != nil {
			p.ws(" else ")
			p.stmt(s.Else)
		}
	case *WhileStmt:
		p.ws("while (")
		p.expr(s.CondE, 0)
		p.ws(") ")
		p.block(s.Body)
	case *ForStmt:
		p.ws("for (")
		if s.Init != nil {
			p.stmtNoSemi(s.Init)
		}
		p.ws("; ")
		if s.CondE != nil {
			p.expr(s.CondE, 0)
		}
		p.ws("; ")
		if s.Post != nil {
			p.stmtNoSemi(s.Post)
		}
		p.ws(") ")
		p.block(s.Body)
	case *ReturnStmt:
		p.ws("return")
		if s.X != nil {
			p.ws(" ")
			p.expr(s.X, 0)
		}
		p.ws(";")
	case *BreakStmt:
		p.ws("break;")
	case *ContinueStmt:
		p.ws("continue;")
	}
}

// stmtNoSemi prints a simple statement without its trailing semicolon, for
// use inside for-headers.
func (p *printer) stmtNoSemi(s Stmt) {
	var tmp printer
	tmp.stmt(s)
	p.ws(strings.TrimSuffix(tmp.sb.String(), ";"))
}

// expr prints e, parenthesizing when the context precedence demands it.
func (p *printer) expr(e Expr, prec int) {
	switch e := e.(type) {
	case *IntLit:
		p.wf("%d", e.Value)
	case *StringLit:
		p.wf("%q", e.Value)
	case *Ident:
		p.ws(e.Name)
	case *Unary:
		const unaryPrec = 11
		if prec > unaryPrec {
			p.ws("(")
		}
		p.ws(e.Op.String())
		p.expr(e.X, unaryPrec+1)
		if prec > unaryPrec {
			p.ws(")")
		}
	case *Binary:
		bp := e.Op.Precedence()
		if prec > bp {
			p.ws("(")
		}
		p.expr(e.X, bp)
		p.wf(" %s ", e.Op)
		p.expr(e.Y, bp+1)
		if prec > bp {
			p.ws(")")
		}
	case *Cond:
		if prec > 0 {
			p.ws("(")
		}
		p.expr(e.CondE, 1)
		p.ws(" ? ")
		p.expr(e.Then, 1)
		p.ws(" : ")
		p.expr(e.Else, 0)
		if prec > 0 {
			p.ws(")")
		}
	case *Index:
		p.expr(e.X, 12)
		p.ws("[")
		p.expr(e.Index, 0)
		p.ws("]")
	case *Field:
		p.expr(e.X, 12)
		if e.Arrow {
			p.ws("->")
		} else {
			p.ws(".")
		}
		p.ws(e.Name)
	case *Call:
		p.expr(e.Fun, 12)
		p.ws("(")
		for i, a := range e.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a, 0)
		}
		p.ws(")")
	case *Sizeof:
		p.ws("sizeof(")
		p.ws(strings.TrimSuffix(TypeString(e.Type, ""), " "))
		p.ws(")")
	}
}
