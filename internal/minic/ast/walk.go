package ast

// Inspect traverses the subtree rooted at n in depth-first pre-order,
// calling f for each non-nil node. If f returns false for a node, its
// children are not visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *IntLit, *StringLit, *Ident, *Sizeof,
		*BreakStmt, *ContinueStmt, *FieldDecl, *ParamDecl:
		// leaves

	case *Unary:
		Inspect(n.X, f)
	case *Binary:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *Cond:
		Inspect(n.CondE, f)
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	case *Index:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	case *Field:
		Inspect(n.X, f)
	case *Call:
		Inspect(n.Fun, f)
		for _, a := range n.Args {
			Inspect(a, f)
		}

	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		Inspect(n.Decl, f)
	case *AssignStmt:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *IncDecStmt:
		Inspect(n.X, f)
	case *ExprStmt:
		Inspect(n.X, f)
	case *IfStmt:
		Inspect(n.CondE, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		Inspect(n.CondE, f)
		Inspect(n.Body, f)
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.CondE != nil {
			Inspect(n.CondE, f)
		}
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	case *ReturnStmt:
		if n.X != nil {
			Inspect(n.X, f)
		}

	case *VarDecl:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *StructDecl:
		for _, fd := range n.Fields {
			Inspect(fd, f)
		}
	case *FuncDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		Inspect(n.Body, f)
	}
}

// InspectFile applies Inspect to every declaration in the file.
func InspectFile(file *File, f func(Node) bool) {
	for _, d := range file.Decls {
		Inspect(d, f)
	}
}

// CloneFile returns a deep copy of the file. Node IDs and positions are
// preserved, so analysis results keyed by NodeID computed on the original
// remain valid on the clone. The instrumenter clones before transforming.
func CloneFile(f *File) *File {
	nf := &File{Name: f.Name, MaxID: f.MaxID}
	for _, d := range f.Decls {
		nd := cloneDecl(d)
		nf.Decls = append(nf.Decls, nd)
		switch nd := nd.(type) {
		case *StructDecl:
			nf.Structs = append(nf.Structs, nd)
		case *VarDecl:
			nf.Globals = append(nf.Globals, nd)
		case *FuncDecl:
			nf.Funcs = append(nf.Funcs, nd)
		}
	}
	return nf
}

func cloneDecl(d Decl) Decl {
	switch d := d.(type) {
	case *VarDecl:
		return cloneVarDecl(d)
	case *StructDecl:
		nd := &StructDecl{base: d.base, Name: d.Name}
		for _, fd := range d.Fields {
			c := *fd
			nd.Fields = append(nd.Fields, &c)
		}
		return nd
	case *FuncDecl:
		nd := &FuncDecl{base: d.base, Name: d.Name, Ret: d.Ret}
		for _, p := range d.Params {
			c := *p
			nd.Params = append(nd.Params, &c)
		}
		nd.Body = CloneStmt(d.Body).(*Block)
		return nd
	}
	panic("ast: unknown decl type")
}

func cloneVarDecl(d *VarDecl) *VarDecl {
	nd := &VarDecl{base: d.base, Name: d.Name, Type: d.Type}
	if d.Init != nil {
		nd.Init = CloneExpr(d.Init)
	}
	return nd
}

// CloneExpr returns a deep copy of an expression, preserving IDs.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		c := *e
		return &c
	case *StringLit:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *Unary:
		return &Unary{base: e.base, Op: e.Op, X: CloneExpr(e.X)}
	case *Binary:
		return &Binary{base: e.base, Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *Cond:
		return &Cond{base: e.base, CondE: CloneExpr(e.CondE), Then: CloneExpr(e.Then), Else: CloneExpr(e.Else)}
	case *Index:
		return &Index{base: e.base, X: CloneExpr(e.X), Index: CloneExpr(e.Index)}
	case *Field:
		return &Field{base: e.base, X: CloneExpr(e.X), Name: e.Name, Arrow: e.Arrow}
	case *Call:
		nc := &Call{base: e.base, Fun: CloneExpr(e.Fun)}
		for _, a := range e.Args {
			nc.Args = append(nc.Args, CloneExpr(a))
		}
		return nc
	case *Sizeof:
		c := *e
		return &c
	}
	panic("ast: unknown expr type")
}

// CloneStmt returns a deep copy of a statement, preserving IDs.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Block:
		nb := &Block{base: s.base}
		for _, st := range s.Stmts {
			nb.Stmts = append(nb.Stmts, CloneStmt(st))
		}
		return nb
	case *DeclStmt:
		return &DeclStmt{base: s.base, Decl: cloneVarDecl(s.Decl)}
	case *AssignStmt:
		return &AssignStmt{base: s.base, Op: s.Op, LHS: CloneExpr(s.LHS), RHS: CloneExpr(s.RHS)}
	case *IncDecStmt:
		return &IncDecStmt{base: s.base, Op: s.Op, X: CloneExpr(s.X)}
	case *ExprStmt:
		return &ExprStmt{base: s.base, X: CloneExpr(s.X)}
	case *IfStmt:
		ni := &IfStmt{base: s.base, CondE: CloneExpr(s.CondE), Then: CloneStmt(s.Then).(*Block)}
		if s.Else != nil {
			ni.Else = CloneStmt(s.Else)
		}
		return ni
	case *WhileStmt:
		return &WhileStmt{base: s.base, CondE: CloneExpr(s.CondE), Body: CloneStmt(s.Body).(*Block)}
	case *ForStmt:
		nf := &ForStmt{base: s.base, Body: CloneStmt(s.Body).(*Block)}
		if s.Init != nil {
			nf.Init = CloneStmt(s.Init)
		}
		if s.CondE != nil {
			nf.CondE = CloneExpr(s.CondE)
		}
		if s.Post != nil {
			nf.Post = CloneStmt(s.Post)
		}
		return nf
	case *ReturnStmt:
		nr := &ReturnStmt{base: s.base}
		if s.X != nil {
			nr.X = CloneExpr(s.X)
		}
		return nr
	case *BreakStmt:
		c := *s
		return &c
	case *ContinueStmt:
		c := *s
		return &c
	}
	panic("ast: unknown stmt type")
}
