package lexer_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/minic/lexer"
	"repro/internal/minic/token"
)

// FuzzLexer asserts the lexer total on arbitrary byte strings: it must
// terminate (bounded token count), never panic, and always finish with
// EOF. Errors (returned via Errors) are fine — crashes are not.
//
// Run longer locally with:
//
//	go test ./internal/minic/lexer -fuzz FuzzLexer -fuzztime 30s
func FuzzLexer(f *testing.F) {
	for _, b := range bench.All() {
		f.Add(b.FullSource())
	}
	f.Add("")
	f.Add("int main(void) { return 0; }")
	f.Add(`char *s = "unterminated`)
	f.Add("'\\x4")
	f.Add("// comment without newline")
	f.Add("/* unterminated block")
	f.Add("0x 0b2 1e+ 'ab' \"\\q\"")
	f.Add("\x00\xff\x80 @ $ ` \\")
	f.Fuzz(func(t *testing.T, src string) {
		l := lexer.New(src)
		// Every token consumes at least one byte, so len(src)+1 (for EOF)
		// bounds the stream; anything beyond means the lexer stopped
		// making progress.
		max := len(src) + 2
		n := 0
		for {
			tok := l.Next()
			if tok.Kind == token.EOF {
				break
			}
			n++
			if n > max {
				t.Fatalf("lexer emitted %d tokens for %d input bytes: no progress", n, len(src))
			}
		}
		_ = l.Errors()
	})
}
