// Package lexer implements the MiniC scanner. It converts source text into
// a token stream consumed by the parser, tracking line/column positions and
// supporting C-style line and block comments.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/minic/token"
)

// Error is a lexical error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text.
type Lexer struct {
	src  string
	off  int // current byte offset
	line int
	col  int

	errs []*Error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Offset: l.off, Line: l.line, Col: l.col}
}

// peek returns the byte at offset+n without consuming, or 0 at EOF.
func (l *Lexer) peek(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool  { return '0' <= c && c <= '9' }
func isLetter(c byte) bool { return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }
func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// Next scans and returns the next token, skipping whitespace and comments.
// At end of input it returns an EOF token (repeatedly, if called again).
func (l *Lexer) Next() token.Token {
	for {
		tok := l.scan()
		if tok.Kind != token.COMMENT {
			return tok
		}
	}
}

// All scans the entire input and returns every non-comment token including
// the trailing EOF token.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) scan() token.Token {
	for l.off < len(l.src) && isSpace(l.peek(0)) {
		l.advance()
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: start}
	}

	c := l.peek(0)
	switch {
	case isLetter(c):
		return l.scanIdent(start)
	case isDigit(c):
		return l.scanNumber(start)
	case c == '"':
		return l.scanString(start)
	case c == '\'':
		return l.scanChar(start)
	}

	l.advance()
	two := func(next byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek(0) == next {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: start}
		}
		return token.Token{Kind: ifOne, Pos: start}
	}

	switch c {
	case '+':
		if l.peek(0) == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: start}
		}
		return two('=', token.ADD_ASSIGN, token.PLUS)
	case '-':
		switch l.peek(0) {
		case '-':
			l.advance()
			return token.Token{Kind: token.DEC, Pos: start}
		case '>':
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: start}
		}
		return two('=', token.SUB_ASSIGN, token.MINUS)
	case '*':
		return two('=', token.MUL_ASSIGN, token.STAR)
	case '/':
		switch l.peek(0) {
		case '/':
			return l.scanLineComment(start)
		case '*':
			return l.scanBlockComment(start)
		}
		return two('=', token.DIV_ASSIGN, token.SLASH)
	case '%':
		return two('=', token.MOD_ASSIGN, token.PERCENT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '^':
		return token.Token{Kind: token.CARET, Pos: start}
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '<':
		if l.peek(0) == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: start}
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek(0) == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: start}
		}
		return two('=', token.GE, token.GT)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: start}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: start}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: start}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: start}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: start}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: start}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: start}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: start}
	case '.':
		return token.Token{Kind: token.DOT, Pos: start}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: start}
	case ':':
		return token.Token{Kind: token.COLON, Pos: start}
	}
	l.errorf(start, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Pos: start, Lit: string(c)}
}

func (l *Lexer) scanIdent(start token.Pos) token.Token {
	for l.off < len(l.src) && isIdent(l.peek(0)) {
		l.advance()
	}
	lit := l.src[start.Offset:l.off]
	kind := token.Lookup(lit)
	if kind != token.IDENT {
		return token.Token{Kind: kind, Pos: start}
	}
	return token.Token{Kind: token.IDENT, Pos: start, Lit: lit}
}

func (l *Lexer) scanNumber(start token.Pos) token.Token {
	// Hex literals: 0x...
	if l.peek(0) == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.advance()
		l.advance()
		n := 0
		for l.off < len(l.src) && isHex(l.peek(0)) {
			l.advance()
			n++
		}
		if n == 0 {
			l.errorf(start, "malformed hex literal")
		}
		return token.Token{Kind: token.INT, Pos: start, Lit: l.src[start.Offset:l.off]}
	}
	for l.off < len(l.src) && isDigit(l.peek(0)) {
		l.advance()
	}
	return token.Token{Kind: token.INT, Pos: start, Lit: l.src[start.Offset:l.off]}
}

func isHex(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

// scanString scans a double-quoted string literal, handling the escapes
// \n \t \r \\ \" \0. The returned Lit is the unescaped contents.
func (l *Lexer) scanString(start token.Pos) token.Token {
	l.advance() // consume opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) || l.peek(0) == '\n' {
			l.errorf(start, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Pos: start, Lit: sb.String()}
		}
		c := l.advance()
		if c == '"' {
			return token.Token{Kind: token.STRING, Pos: start, Lit: sb.String()}
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				l.errorf(start, "unterminated escape in string literal")
				return token.Token{Kind: token.ILLEGAL, Pos: start, Lit: sb.String()}
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				l.errorf(start, "unknown escape \\%c in string literal", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
}

// scanChar scans a character literal such as 'a' or '\n'. Lit holds the
// single unescaped character.
func (l *Lexer) scanChar(start token.Pos) token.Token {
	l.advance() // consume opening quote
	if l.off >= len(l.src) {
		l.errorf(start, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: start}
	}
	c := l.advance()
	if c == '\\' {
		if l.off >= len(l.src) {
			l.errorf(start, "unterminated character literal")
			return token.Token{Kind: token.ILLEGAL, Pos: start}
		}
		switch e := l.advance(); e {
		case 'n':
			c = '\n'
		case 't':
			c = '\t'
		case 'r':
			c = '\r'
		case '\\':
			c = '\\'
		case '\'':
			c = '\''
		case '0':
			c = 0
		default:
			l.errorf(start, "unknown escape \\%c in character literal", e)
		}
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		l.errorf(start, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: start, Lit: string(c)}
	}
	return token.Token{Kind: token.CHAR, Pos: start, Lit: string(c)}
}

func (l *Lexer) scanLineComment(start token.Pos) token.Token {
	for l.off < len(l.src) && l.peek(0) != '\n' {
		l.advance()
	}
	return token.Token{Kind: token.COMMENT, Pos: start, Lit: l.src[start.Offset:l.off]}
}

func (l *Lexer) scanBlockComment(start token.Pos) token.Token {
	l.advance() // consume '*'
	for {
		if l.off >= len(l.src) {
			l.errorf(start, "unterminated block comment")
			return token.Token{Kind: token.COMMENT, Pos: start, Lit: l.src[start.Offset:l.off]}
		}
		if l.peek(0) == '*' && l.peek(1) == '/' {
			l.advance()
			l.advance()
			return token.Token{Kind: token.COMMENT, Pos: start, Lit: l.src[start.Offset:l.off]}
		}
		l.advance()
	}
}
