package lexer

import (
	"testing"

	"repro/internal/minic/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	l := New(src)
	var ks []token.Kind
	for {
		tok := l.Next()
		if tok.Kind == token.EOF {
			return ks
		}
		ks = append(ks, tok.Kind)
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / % & | ^ << >> && || ! == != < > <= >= = += -= *= /= %= ++ -- -> . ? :"
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR,
		token.LAND, token.LOR, token.NOT,
		token.EQ, token.NEQ, token.LT, token.GT, token.LE, token.GE,
		token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.DIV_ASSIGN, token.MOD_ASSIGN, token.INC, token.DEC,
		token.ARROW, token.DOT, token.QUESTION, token.COLON,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("int void struct if else while for return break continue sizeof foo _bar x9")
	want := []token.Kind{
		token.KW_INT, token.KW_VOID, token.KW_STRUCT, token.KW_IF, token.KW_ELSE,
		token.KW_WHILE, token.KW_FOR, token.KW_RETURN, token.KW_BREAK,
		token.KW_CONTINUE, token.KW_SIZEOF, token.IDENT, token.IDENT, token.IDENT,
	}
	for i, w := range want {
		got := l.Next()
		if got.Kind != w {
			t.Errorf("token %d: got %s, want %s", i, got.Kind, w)
		}
	}
	if len(l.Errors()) != 0 {
		t.Errorf("unexpected errors: %v", l.Errors())
	}
}

func TestNumbers(t *testing.T) {
	l := New("0 42 0x1f 0XFF")
	lits := []string{"0", "42", "0x1f", "0XFF"}
	for i, w := range lits {
		tok := l.Next()
		if tok.Kind != token.INT || tok.Lit != w {
			t.Errorf("number %d: got %s %q, want INT %q", i, tok.Kind, tok.Lit, w)
		}
	}
}

func TestStringsAndChars(t *testing.T) {
	l := New(`"hi\n" "a\"b" 'x' '\n' '\0'`)
	s1 := l.Next()
	if s1.Kind != token.STRING || s1.Lit != "hi\n" {
		t.Errorf("got %s %q", s1.Kind, s1.Lit)
	}
	s2 := l.Next()
	if s2.Kind != token.STRING || s2.Lit != `a"b` {
		t.Errorf("got %s %q", s2.Kind, s2.Lit)
	}
	c1 := l.Next()
	if c1.Kind != token.CHAR || c1.Lit != "x" {
		t.Errorf("got %s %q", c1.Kind, c1.Lit)
	}
	c2 := l.Next()
	if c2.Kind != token.CHAR || c2.Lit != "\n" {
		t.Errorf("got %s %q", c2.Kind, c2.Lit)
	}
	c3 := l.Next()
	if c3.Kind != token.CHAR || c3.Lit != "\x00" {
		t.Errorf("got %s %q", c3.Kind, c3.Lit)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	l := New("a\n  bb\n")
	a := l.Next()
	if a.Pos.Line != 1 || a.Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", a.Pos)
	}
	b := l.Next()
	if b.Pos.Line != 2 || b.Pos.Col != 3 {
		t.Errorf("bb at %v, want 2:3", b.Pos)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{"\"unterminated", "'a", "@", "/* open", "\"bad \\q esc\""}
	for _, src := range cases {
		l := New(src)
		l.All()
		if len(l.Errors()) == 0 {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestEOFIdempotent(t *testing.T) {
	l := New("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if got := l.Next(); got.Kind != token.EOF {
			t.Fatalf("call %d after end: got %s, want EOF", i, got.Kind)
		}
	}
}
