package parser_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
)

// FuzzParser asserts two properties on arbitrary input:
//
//  1. Totality: Parse returns a *File or an error, never panics.
//  2. Print fixpoint: any accepted program survives a
//     parse → Print → parse round trip, and the second Print is
//     byte-identical to the first (Print output is a fixpoint of the
//     grammar). This is the property that keeps golden files and
//     instrumented-source diffs stable.
//
// Run longer locally with:
//
//	go test ./internal/minic/parser -fuzz FuzzParser -fuzztime 30s
func FuzzParser(f *testing.F) {
	for _, b := range bench.All() {
		f.Add(b.FullSource())
	}
	f.Add("")
	f.Add("int main(void) { return 0; }")
	f.Add("int g; void w(int x) { lock(&g); g = g + x; unlock(&g); }")
	f.Add("int main(void) { int t = spawn(w, 1); join(t); return 0; }")
	f.Add("struct p { int x; int y; }; int main(void) { struct p q; q.x = 1; return q.x; }")
	f.Add("int a[10]; int main(void) { for (int i = 0; i < 10; i = i + 1) a[i] = i; return a[3]; }")
	f.Add("int main(void) { if (1) { } else while (0) ; return (1 ? 2 : 3); }")
	f.Add("int f(int")
	f.Add("void f(void) { x = ; }")
	f.Add("{ } ; ; int 3bad")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := parser.Parse("fuzz.mc", src)
		if err != nil {
			return // rejected input; only crashes count
		}
		printed := ast.Print(file)
		reparsed, err := parser.Parse("fuzz-reprint.mc", printed)
		if err != nil {
			t.Fatalf("Print emitted unparsable source: %v\n--- printed ---\n%s\n--- original ---\n%s", err, printed, src)
		}
		if again := ast.Print(reparsed); again != printed {
			t.Fatalf("Print is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}
