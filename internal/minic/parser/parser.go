// Package parser implements a recursive-descent parser for MiniC.
//
// The grammar is a restricted C: struct declarations, global variables, and
// function definitions at top level; structured statements (no goto, so all
// loops are syntactic — a property the symbolic bounds analysis relies on);
// C expression syntax with standard precedence, the ternary operator,
// pointer/array/field access and calls through function pointers.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/minic/ast"
	"repro/internal/minic/lexer"
	"repro/internal/minic/token"
)

// Error is a syntax error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors; it implements error.
type ErrorList []*Error

// Error returns the first error plus a count of the rest.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Parse parses src into a File. name labels diagnostics.
func Parse(name, src string) (*ast.File, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &parser{name: name, toks: toks}
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	file := p.parseFile()
	if len(p.errs) > 0 {
		return nil, p.errs
	}
	return file, nil
}

// MustParse parses src and panics on error; for tests and builtin programs.
func MustParse(name, src string) *ast.File {
	f, err := Parse(name, src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%s): %v", name, err))
	}
	return f
}

type parser struct {
	name string
	toks []token.Token
	i    int
	errs ErrorList

	nextID ast.NodeID
}

func (p *parser) cur() token.Token { return p.toks[p.i] }
func (p *parser) peek() token.Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
	if len(p.errs) > 50 {
		panic(bailout{})
	}
}

type bailout struct{}

// meta stamps a node with a position and fresh ID; it is how every node is
// finalized.
func (p *parser) meta(n interface {
	SetMeta(token.Pos, ast.NodeID)
}, pos token.Pos) {
	n.SetMeta(pos, p.nextID)
	p.nextID++
}

func (p *parser) parseFile() *ast.File {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	f := &ast.File{Name: p.name}
	for !p.at(token.EOF) {
		d := p.parseTopDecl()
		if d == nil {
			// Error recovery: skip a token and try again.
			p.next()
			continue
		}
		f.Decls = append(f.Decls, d)
		switch d := d.(type) {
		case *ast.StructDecl:
			f.Structs = append(f.Structs, d)
		case *ast.VarDecl:
			f.Globals = append(f.Globals, d)
		case *ast.FuncDecl:
			f.Funcs = append(f.Funcs, d)
		}
	}
	f.MaxID = p.nextID
	return f
}

func (p *parser) parseTopDecl() ast.Decl {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.KW_STRUCT:
		// Either a struct definition `struct S { ... };` or a declaration
		// with struct type `struct S x;` / `struct S *f(...) {...}`.
		if p.peek().Kind == token.IDENT && p.toks[p.i+2].Kind == token.LBRACE {
			return p.parseStructDecl()
		}
		fallthrough
	case token.KW_INT, token.KW_VOID:
		base := p.parseBaseType()
		stars := 0
		for p.accept(token.STAR) {
			stars++
		}
		nameTok := p.expect(token.IDENT)
		t := base
		t.Stars = stars
		if p.at(token.LPAREN) {
			return p.parseFuncRest(pos, t, nameTok.Lit)
		}
		return p.parseVarRest(pos, t, nameTok.Lit)
	}
	p.errorf("expected declaration, found %s", p.cur())
	return nil
}

func (p *parser) parseBaseType() ast.TypeName {
	switch p.cur().Kind {
	case token.KW_INT:
		p.next()
		return ast.TypeName{Kind: ast.TypeInt}
	case token.KW_VOID:
		p.next()
		return ast.TypeName{Kind: ast.TypeVoid}
	case token.KW_STRUCT:
		p.next()
		name := p.expect(token.IDENT)
		return ast.TypeName{Kind: ast.TypeStruct, StructName: name.Lit}
	}
	p.errorf("expected type, found %s", p.cur())
	p.next()
	return ast.TypeName{Kind: ast.TypeInt}
}

func (p *parser) parseStructDecl() *ast.StructDecl {
	pos := p.cur().Pos
	p.expect(token.KW_STRUCT)
	name := p.expect(token.IDENT)
	p.expect(token.LBRACE)
	sd := &ast.StructDecl{Name: name.Lit}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		fpos := p.cur().Pos
		base := p.parseBaseType()
		stars := 0
		for p.accept(token.STAR) {
			stars++
		}
		fname := p.expect(token.IDENT)
		t := base
		t.Stars = stars
		for p.accept(token.LBRACKET) {
			n := p.parseIntConst()
			t.ArrayLens = append(t.ArrayLens, n)
			p.expect(token.RBRACKET)
		}
		p.expect(token.SEMI)
		fd := &ast.FieldDecl{Name: fname.Lit, Type: t}
		p.meta(fd, fpos)
		sd.Fields = append(sd.Fields, fd)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	p.meta(sd, pos)
	return sd
}

func (p *parser) parseIntConst() int64 {
	neg := p.accept(token.MINUS)
	t := p.expect(token.INT)
	v, err := strconv.ParseInt(t.Lit, 0, 64)
	if err != nil {
		p.errorf("bad integer literal %q", t.Lit)
	}
	if neg {
		v = -v
	}
	return v
}

// parseVarRest parses the remainder of a variable declaration after the
// type and name: optional array lengths, optional initializer, semicolon.
func (p *parser) parseVarRest(pos token.Pos, t ast.TypeName, name string) *ast.VarDecl {
	for p.accept(token.LBRACKET) {
		n := p.parseIntConst()
		t.ArrayLens = append(t.ArrayLens, n)
		p.expect(token.RBRACKET)
	}
	vd := &ast.VarDecl{Name: name, Type: t}
	if p.accept(token.ASSIGN) {
		vd.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	p.meta(vd, pos)
	return vd
}

func (p *parser) parseFuncRest(pos token.Pos, ret ast.TypeName, name string) *ast.FuncDecl {
	p.expect(token.LPAREN)
	fd := &ast.FuncDecl{Name: name, Ret: ret}
	if !p.at(token.RPAREN) {
		if p.at(token.KW_VOID) && p.peek().Kind == token.RPAREN {
			p.next() // f(void)
		} else {
			for {
				ppos := p.cur().Pos
				base := p.parseBaseType()
				stars := 0
				for p.accept(token.STAR) {
					stars++
				}
				pname := p.expect(token.IDENT)
				t := base
				t.Stars = stars
				// Array parameters decay to pointers, as in C.
				for p.accept(token.LBRACKET) {
					if !p.at(token.RBRACKET) {
						p.parseIntConst()
					}
					p.expect(token.RBRACKET)
					t.Stars++
				}
				pd := &ast.ParamDecl{Name: pname.Lit, Type: t}
				p.meta(pd, ppos)
				fd.Params = append(fd.Params, pd)
				if !p.accept(token.COMMA) {
					break
				}
			}
		}
	}
	p.expect(token.RPAREN)
	fd.Body = p.parseBlock()
	p.meta(fd, pos)
	return fd
}

func (p *parser) parseBlock() *ast.Block {
	pos := p.cur().Pos
	p.expect(token.LBRACE)
	b := &ast.Block{}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	p.meta(b, pos)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.KW_INT, token.KW_VOID:
		return p.parseDeclStmt()
	case token.KW_STRUCT:
		return p.parseDeclStmt()
	case token.KW_IF:
		return p.parseIf()
	case token.KW_WHILE:
		return p.parseWhile()
	case token.KW_FOR:
		return p.parseFor()
	case token.KW_RETURN:
		p.next()
		rs := &ast.ReturnStmt{}
		if !p.at(token.SEMI) {
			rs.X = p.parseExpr()
		}
		p.expect(token.SEMI)
		p.meta(rs, pos)
		return rs
	case token.KW_BREAK:
		p.next()
		p.expect(token.SEMI)
		bs := &ast.BreakStmt{}
		p.meta(bs, pos)
		return bs
	case token.KW_CONTINUE:
		p.next()
		p.expect(token.SEMI)
		cs := &ast.ContinueStmt{}
		p.meta(cs, pos)
		return cs
	case token.SEMI:
		p.next()
		// Empty statement: represent as an empty block.
		b := &ast.Block{}
		p.meta(b, pos)
		return b
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMI)
	return s
}

func (p *parser) parseDeclStmt() ast.Stmt {
	pos := p.cur().Pos
	base := p.parseBaseType()
	stars := 0
	for p.accept(token.STAR) {
		stars++
	}
	name := p.expect(token.IDENT)
	t := base
	t.Stars = stars
	vd := p.parseVarRest(pos, t, name.Lit)
	ds := &ast.DeclStmt{Decl: vd}
	p.meta(ds, pos)
	return ds
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KW_IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmtAsBlock()
	is := &ast.IfStmt{CondE: cond, Then: then}
	if p.accept(token.KW_ELSE) {
		if p.at(token.KW_IF) {
			is.Else = p.parseIf()
		} else {
			is.Else = p.parseStmtAsBlock()
		}
	}
	p.meta(is, pos)
	return is
}

// parseStmtAsBlock parses a statement, wrapping a non-block body in a block
// so downstream passes always see block-structured branches.
func (p *parser) parseStmtAsBlock() *ast.Block {
	if p.at(token.LBRACE) {
		return p.parseBlock()
	}
	pos := p.cur().Pos
	s := p.parseStmt()
	b := &ast.Block{Stmts: []ast.Stmt{s}}
	p.meta(b, pos)
	return b
}

func (p *parser) parseWhile() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KW_WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmtAsBlock()
	ws := &ast.WhileStmt{CondE: cond, Body: body}
	p.meta(ws, pos)
	return ws
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KW_FOR)
	p.expect(token.LPAREN)
	fs := &ast.ForStmt{}
	if !p.at(token.SEMI) {
		if p.at(token.KW_INT) || p.at(token.KW_STRUCT) {
			// Declaration initializer; parseVarRest consumes the semicolon.
			dpos := p.cur().Pos
			base := p.parseBaseType()
			stars := 0
			for p.accept(token.STAR) {
				stars++
			}
			name := p.expect(token.IDENT)
			t := base
			t.Stars = stars
			vd := p.parseVarRest(dpos, t, name.Lit)
			ds := &ast.DeclStmt{Decl: vd}
			p.meta(ds, dpos)
			fs.Init = ds
		} else {
			fs.Init = p.parseSimpleStmt()
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	if !p.at(token.SEMI) {
		fs.CondE = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		fs.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	fs.Body = p.parseStmtAsBlock()
	p.meta(fs, pos)
	return fs
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon).
func (p *parser) parseSimpleStmt() ast.Stmt {
	pos := p.cur().Pos
	lhs := p.parseExpr()
	switch p.cur().Kind {
	case token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN,
		token.MUL_ASSIGN, token.DIV_ASSIGN, token.MOD_ASSIGN:
		op := p.next().Kind
		rhs := p.parseExpr()
		as := &ast.AssignStmt{Op: op, LHS: lhs, RHS: rhs}
		p.meta(as, pos)
		return as
	case token.INC, token.DEC:
		op := p.next().Kind
		is := &ast.IncDecStmt{Op: op, X: lhs}
		p.meta(is, pos)
		return is
	}
	es := &ast.ExprStmt{X: lhs}
	p.meta(es, pos)
	return es
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr { return p.parseCond() }

func (p *parser) parseCond() ast.Expr {
	pos := p.cur().Pos
	c := p.parseBinary(1)
	if p.accept(token.QUESTION) {
		then := p.parseExpr()
		p.expect(token.COLON)
		els := p.parseCond()
		ce := &ast.Cond{CondE: c, Then: then, Else: els}
		p.meta(ce, pos)
		return ce
	}
	return c
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	pos := p.cur().Pos
	x := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := op.Precedence()
		if prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		b := &ast.Binary{Op: op, X: x, Y: y}
		p.meta(b, pos)
		x = b
	}
}

func (p *parser) parseUnary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.MINUS, token.NOT, token.STAR, token.AMP:
		op := p.next().Kind
		x := p.parseUnary()
		u := &ast.Unary{Op: op, X: x}
		p.meta(u, pos)
		return u
	case token.KW_SIZEOF:
		p.next()
		p.expect(token.LPAREN)
		base := p.parseBaseType()
		stars := 0
		for p.accept(token.STAR) {
			stars++
		}
		t := base
		t.Stars = stars
		p.expect(token.RPAREN)
		sz := &ast.Sizeof{Type: t}
		p.meta(sz, pos)
		return sz
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case token.LBRACKET:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			ix := &ast.Index{X: x, Index: idx}
			p.meta(ix, pos)
			x = ix
		case token.DOT:
			p.next()
			name := p.expect(token.IDENT)
			fe := &ast.Field{X: x, Name: name.Lit}
			p.meta(fe, pos)
			x = fe
		case token.ARROW:
			p.next()
			name := p.expect(token.IDENT)
			fe := &ast.Field{X: x, Name: name.Lit, Arrow: true}
			p.meta(fe, pos)
			x = fe
		case token.LPAREN:
			p.next()
			call := &ast.Call{Fun: x}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				call.Args = append(call.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			p.meta(call, pos)
			x = call
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.INT:
		t := p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf("bad integer literal %q", t.Lit)
		}
		il := &ast.IntLit{Value: v}
		p.meta(il, pos)
		return il
	case token.CHAR:
		t := p.next()
		var v int64
		if len(t.Lit) > 0 {
			v = int64(t.Lit[0])
		}
		il := &ast.IntLit{Value: v}
		p.meta(il, pos)
		return il
	case token.STRING:
		t := p.next()
		sl := &ast.StringLit{Value: t.Lit}
		p.meta(sl, pos)
		return sl
	case token.IDENT:
		t := p.next()
		id := &ast.Ident{Name: t.Lit}
		p.meta(id, pos)
		return id
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf("expected expression, found %s", p.cur())
	p.next()
	il := &ast.IntLit{}
	p.meta(il, pos)
	return il
}
