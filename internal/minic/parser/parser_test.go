package parser

import (
	"strings"
	"testing"

	"repro/internal/minic/ast"
)

const demo = `
struct node {
    int value;
    struct node *next;
    int pad[4];
};

int shared;
int arr[100];
int *ptr;

int add(int a, int b) {
    return a + b;
}

void worker(int id) {
    int i;
    for (i = 0; i < 100; i++) {
        arr[i] = arr[i] + id;
    }
    while (shared < 10) {
        shared++;
    }
    if (id == 0) {
        shared = 0;
    } else if (id == 1) {
        shared = 1;
    } else {
        shared = 2;
    }
}

int main(void) {
    int t = spawn(worker, 1);
    struct node n;
    n.value = add(1, 2 * 3);
    n.next = &n;
    n.next->value = n.value;
    ptr = &shared;
    *ptr = arr[2] + 1;
    join(t);
    return shared ? 1 : 0;
}
`

func TestParseDemo(t *testing.T) {
	f, err := Parse("demo.mc", demo)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "node" {
		t.Errorf("structs: got %v", f.Structs)
	}
	if len(f.Globals) != 3 {
		t.Errorf("globals: got %d, want 3", len(f.Globals))
	}
	if len(f.Funcs) != 3 {
		t.Errorf("funcs: got %d, want 3", len(f.Funcs))
	}
	if f.Func("main") == nil || f.Func("worker") == nil {
		t.Errorf("missing functions")
	}
	if g := f.Global("arr"); g == nil || len(g.Type.ArrayLens) != 1 || g.Type.ArrayLens[0] != 100 {
		t.Errorf("arr global wrong: %+v", g)
	}
}

func TestNodeIDsUnique(t *testing.T) {
	f := MustParse("demo.mc", demo)
	seen := make(map[ast.NodeID]bool)
	ast.InspectFile(f, func(n ast.Node) bool {
		if seen[n.ID()] {
			t.Errorf("duplicate node ID %d at %s", n.ID(), n.Pos())
		}
		seen[n.ID()] = true
		if n.ID() >= f.MaxID {
			t.Errorf("node ID %d >= MaxID %d", n.ID(), f.MaxID)
		}
		return true
	})
	if len(seen) < 50 {
		t.Errorf("suspiciously few nodes: %d", len(seen))
	}
}

// TestRoundTrip checks print→parse→print is a fixed point.
func TestRoundTrip(t *testing.T) {
	f1 := MustParse("demo.mc", demo)
	s1 := ast.Print(f1)
	f2, err := Parse("demo2.mc", s1)
	if err != nil {
		t.Fatalf("reparse error: %v\nsource:\n%s", err, s1)
	}
	s2 := ast.Print(f2)
	if s1 != s2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", s1, s2)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustParse("demo.mc", demo)
	c := ast.CloneFile(f)
	// Clone has identical print and IDs.
	if ast.Print(f) != ast.Print(c) {
		t.Fatalf("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	c.Funcs[0].Body.Stmts = nil
	if ast.Print(f) == ast.Print(c) {
		t.Errorf("mutating clone changed original")
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a = 1 + 2 * 3;", "a = 1 + 2 * 3;"},
		{"a = (1 + 2) * 3;", "a = (1 + 2) * 3;"},
		{"a = 1 << 2 + 3;", "a = 1 << 2 + 3;"},
		{"a = x && y || z;", "a = x && y || z;"},
		{"a = -b[2];", "a = -b[2];"},
		{"a = *p + 1;", "a = *p + 1;"},
		{"a = x & 7;", "a = x & 7;"},
	}
	for _, tc := range cases {
		src := "int a; int b[4]; int *p; int x; int y; int z;\nvoid f(void) { " + tc.src + " }\n"
		f, err := Parse("t.mc", src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		body := f.Func("f").Body
		got := ast.PrintStmt(body.Stmts[0], 0)
		if got != tc.want {
			t.Errorf("%q printed as %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestForVariants(t *testing.T) {
	srcs := []string{
		"void f(void) { for (;;) { break; } }",
		"void f(void) { int i; for (i = 0; i < 10; i++) { continue; } }",
		"void f(void) { for (int i = 0; i < 10; i += 2) { } }",
		"void f(void) { int i = 9; while (i) { i--; } }",
	}
	for _, src := range srcs {
		if _, err := Parse("t.mc", src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestDanglingElse(t *testing.T) {
	f := MustParse("t.mc", "int a; void f(int x) { if (x) if (x > 1) a = 1; else a = 2; }")
	fn := f.Func("f")
	outer := fn.Body.Stmts[0].(*ast.IfStmt)
	if outer.Else != nil {
		t.Fatalf("else bound to outer if")
	}
	inner := outer.Then.Stmts[0].(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatalf("else not bound to inner if")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( { }",
		"void f(void) { x = ; }",
		"void f(void) { if x { } }",
		"int 3x;",
		"struct S { int }; ",
		"void f(void) { a[1 = 2; }",
	}
	for _, src := range cases {
		if _, err := Parse("bad.mc", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("bad.mc", "void f(void) {\n  x = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestCommaInCallArgs(t *testing.T) {
	f := MustParse("t.mc", "int g(int a, int b) { return a; } void f(void) { g(1, g(2, 3)); }")
	call := f.Func("f").Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Call)
	if len(call.Args) != 2 {
		t.Fatalf("got %d args, want 2", len(call.Args))
	}
}

func TestArrayParamsDecay(t *testing.T) {
	f := MustParse("t.mc", "void f(int buf[], int m[16]) { }")
	fn := f.Func("f")
	for _, p := range fn.Params {
		if p.Type.Stars != 1 || len(p.Type.ArrayLens) != 0 {
			t.Errorf("param %s: got %+v, want pointer", p.Name, p.Type)
		}
	}
}
