package parser

// Robustness: the front end must never panic, whatever bytes it is fed —
// it returns errors. Exercised with mutated valid programs and raw noise.

import (
	"math/rand"
	"testing"

	"repro/internal/minic/types"
)

func TestParserNeverPanicsOnMutations(t *testing.T) {
	base := `
struct s { int a; int b[4]; };
int g;
int *p;
struct s gs;
int f(int x, int *q) {
    for (int i = 0; i < x; i++) {
        gs.b[i & 3] += *q ? i : -i;
    }
    return g;
}
int main(void) {
    int t = f(3, &g);
    while (t > 0) { t--; }
    return t;
}
`
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		// Apply a few random mutations: delete, duplicate, or scramble.
		for m := 0; m < 1+r.Intn(4); m++ {
			if len(b) < 4 {
				break
			}
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b = append(b[:pos], b[pos+1:]...)
			case 1:
				b = append(b[:pos], append([]byte{b[pos]}, b[pos:]...)...)
			default:
				b[pos] = byte(r.Intn(128))
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("trial %d panicked: %v\ninput:\n%s", trial, rec, b)
				}
			}()
			f, err := Parse("fuzz.mc", string(b))
			if err == nil {
				// Mutants that still parse must also survive the type
				// checker without panicking.
				_, _ = types.Check(f)
			}
		}()
	}
}

func TestParserNeverPanicsOnNoise(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := []byte("{}()[];,*&|<>=+-/%!?:abcxyz0123456789 \n\t\"'_")
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("trial %d panicked: %v\ninput: %q", trial, rec, b)
				}
			}()
			_, _ = Parse("noise.mc", string(b))
		}()
	}
}
