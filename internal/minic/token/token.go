// Package token defines the lexical tokens of the MiniC language, the
// C-like input language of the Chimera pipeline. MiniC plays the role that
// CIL-processed C played in the original system: it has the constructs the
// Chimera analyses reason about (pointers, arrays, structs, loops, function
// pointers, threads and synchronization) and nothing more.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds. Keywords and builtins are recognized by the lexer;
// builtin calls (spawn, lock, barrier_wait, ...) lex as IDENT and are
// resolved by the type checker.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // foo
	INT    // 12345
	STRING // "abc"
	CHAR   // 'a'

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	AMP   // &
	PIPE  // |
	CARET // ^
	SHL   // <<
	SHR   // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	EQ  // ==
	NEQ // !=
	LT  // <
	GT  // >
	LE  // <=
	GE  // >=

	ASSIGN     // =
	ADD_ASSIGN // +=
	SUB_ASSIGN // -=
	MUL_ASSIGN // *=
	DIV_ASSIGN // /=
	MOD_ASSIGN // %=
	INC        // ++
	DEC        // --

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	ARROW    // ->
	QUESTION // ?
	COLON    // :

	// Keywords.
	keywordBeg
	KW_INT
	KW_VOID
	KW_STRUCT
	KW_IF
	KW_ELSE
	KW_WHILE
	KW_FOR
	KW_RETURN
	KW_BREAK
	KW_CONTINUE
	KW_SIZEOF
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT:  "IDENT",
	INT:    "INT",
	STRING: "STRING",
	CHAR:   "CHAR",

	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	PERCENT: "%",

	AMP:   "&",
	PIPE:  "|",
	CARET: "^",
	SHL:   "<<",
	SHR:   ">>",

	LAND: "&&",
	LOR:  "||",
	NOT:  "!",

	EQ:  "==",
	NEQ: "!=",
	LT:  "<",
	GT:  ">",
	LE:  "<=",
	GE:  ">=",

	ASSIGN:     "=",
	ADD_ASSIGN: "+=",
	SUB_ASSIGN: "-=",
	MUL_ASSIGN: "*=",
	DIV_ASSIGN: "/=",
	MOD_ASSIGN: "%=",
	INC:        "++",
	DEC:        "--",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACKET: "[",
	RBRACKET: "]",
	COMMA:    ",",
	SEMI:     ";",
	DOT:      ".",
	ARROW:    "->",
	QUESTION: "?",
	COLON:    ":",

	KW_INT:      "int",
	KW_VOID:     "void",
	KW_STRUCT:   "struct",
	KW_IF:       "if",
	KW_ELSE:     "else",
	KW_WHILE:    "while",
	KW_FOR:      "for",
	KW_RETURN:   "return",
	KW_BREAK:    "break",
	KW_CONTINUE: "continue",
	KW_SIZEOF:   "sizeof",
}

// String returns the textual form of the token kind: the operator or keyword
// spelling for fixed tokens, the class name for variable ones.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a MiniC keyword.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// Pos is a source position: byte offset, 1-based line and column.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set (Line > 0).
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string // literal text for IDENT, INT, STRING, CHAR, COMMENT
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, COMMENT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	case STRING:
		return fmt.Sprintf("STRING(%q)", t.Lit)
	case CHAR:
		return fmt.Sprintf("CHAR(%q)", t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary-operator precedence of k, higher binds
// tighter, or 0 if k is not a binary operator. The table mirrors C.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case PIPE:
		return 3
	case CARET:
		return 4
	case AMP:
		return 5
	case EQ, NEQ:
		return 6
	case LT, GT, LE, GE:
		return 7
	case SHL, SHR:
		return 8
	case PLUS, MINUS:
		return 9
	case STAR, SLASH, PERCENT:
		return 10
	}
	return 0
}
