package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"int": KW_INT, "void": KW_VOID, "struct": KW_STRUCT,
		"if": KW_IF, "else": KW_ELSE, "while": KW_WHILE, "for": KW_FOR,
		"return": KW_RETURN, "break": KW_BREAK, "continue": KW_CONTINUE,
		"sizeof": KW_SIZEOF,
		"foo":    IDENT, "Int": IDENT, "IF": IDENT, "": IDENT,
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !KW_INT.IsKeyword() || !KW_SIZEOF.IsKeyword() {
		t.Error("keywords not recognized")
	}
	if IDENT.IsKeyword() || PLUS.IsKeyword() || EOF.IsKeyword() {
		t.Error("non-keywords recognized as keywords")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		PLUS: "+", SHL: "<<", ARROW: "->", EQ: "==",
		KW_WHILE: "while", IDENT: "IDENT", EOF: "EOF",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestPrecedence(t *testing.T) {
	// Multiplication binds tighter than addition, which binds tighter
	// than comparison, which binds tighter than &&, which beats ||.
	order := []Kind{LOR, LAND, PIPE, CARET, AMP, EQ, LT, SHL, PLUS, STAR}
	for i := 1; i < len(order); i++ {
		if !(order[i-1].Precedence() < order[i].Precedence()) {
			t.Errorf("%v should bind looser than %v", order[i-1], order[i])
		}
	}
	if ASSIGN.Precedence() != 0 || LPAREN.Precedence() != 0 {
		t.Error("non-binary tokens must have precedence 0")
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Lit: "x"}, "IDENT(x)"},
		{Token{Kind: INT, Lit: "42"}, "INT(42)"},
		{Token{Kind: STRING, Lit: "hi"}, `STRING("hi")`},
		{Token{Kind: PLUS}, "+"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestPos(t *testing.T) {
	p := Pos{Offset: 10, Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("pos string %q", p.String())
	}
	if !p.IsValid() || (Pos{}).IsValid() {
		t.Error("IsValid wrong")
	}
}
