package types_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
)

// FuzzTypes asserts two properties of the type checker on arbitrary
// parseable input:
//
//  1. Totality: Check returns an *Info or an error, never panics — the
//     checker sits directly behind every CLI entry point, so a grammar
//     corner that parses but crashes Check is a user-visible crash.
//  2. Print stability: a program Check accepts still checks after a
//     Print → reparse round trip. The instrumenter and the certifier
//     both re-enter the front end through printed source, so an
//     accepted program whose printed form is rejected would break the
//     pipeline downstream.
//
// Run longer locally with:
//
//	go test ./internal/minic/types -fuzz FuzzTypes -fuzztime 30s
func FuzzTypes(f *testing.F) {
	for _, b := range bench.All() {
		f.Add(b.FullSource())
	}
	f.Add("int main(void) { return 0; }")
	f.Add("int g; void w(int x) { lock(&g); g = g + x; unlock(&g); }")
	f.Add("int main(void) { wl_acquire(3, 1, 0, 10); wl_release(3, 1); return 0; }")
	f.Add("int main(void) { return missing; }")
	f.Add("void f(int x) { } int main(void) { f(1, 2); return 0; }")
	f.Add("struct p { int x; }; int main(void) { struct p q; return q.y; }")
	f.Add("int a[4]; int main(void) { return a; }")
	f.Add("int main(void) { int t = spawn(main); join(t); return 0; }")
	f.Add("void v(void) { } int main(void) { return v(); }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := parser.Parse("fuzz.mc", src)
		if err != nil {
			return // unparseable input; the parser fuzz target owns this space
		}
		info, err := types.Check(file)
		if err != nil {
			return // rejected program; only crashes count
		}
		_ = info
		printed := ast.Print(file)
		reparsed, err := parser.Parse("fuzz-reprint.mc", printed)
		if err != nil {
			t.Fatalf("Print emitted unparsable source: %v\n--- printed ---\n%s", err, printed)
		}
		if _, err := types.Check(reparsed); err != nil {
			t.Fatalf("accepted program rejected after Print round trip: %v\n--- printed ---\n%s\n--- original ---\n%s", err, printed, src)
		}
	})
}
