// Package types implements semantic analysis for MiniC: symbol resolution,
// struct layout, expression typing, and recognition of the builtin
// thread/synchronization/I-O operations that later Chimera stages key on.
//
// Memory in MiniC is word-addressed: every scalar (int, pointer) occupies
// one word, arrays and structs occupy consecutive words, and pointer
// arithmetic is scaled by element size in words. This matches the simulated
// VM's flat address space and makes the symbolic address-bounds analysis
// (paper §5) directly expressible in word units.
package types

import (
	"fmt"

	"repro/internal/minic/ast"
	"repro/internal/minic/token"
)

// Kind classifies semantic types.
type Kind int

// The semantic type kinds.
const (
	Invalid Kind = iota
	Int
	Void
	Ptr
	Array
	StructT
	FuncT
)

// Type is a semantic MiniC type.
type Type struct {
	Kind   Kind
	Elem   *Type       // Ptr, Array
	Len    int64       // Array
	Struct *StructInfo // StructT
	Sig    *Signature  // FuncT
}

// Signature is a function type.
type Signature struct {
	Params []*Type
	Ret    *Type
}

// Basic singleton types.
var (
	IntType     = &Type{Kind: Int}
	VoidType    = &Type{Kind: Void}
	IntPtrType  = &Type{Kind: Ptr, Elem: IntType}
	invalidType = &Type{Kind: Invalid}
)

// PointerTo returns the type *t.
func PointerTo(t *Type) *Type { return &Type{Kind: Ptr, Elem: t} }

// Size returns the type's size in words. Functions size as pointers.
func (t *Type) Size() int64 {
	switch t.Kind {
	case Int, Ptr, FuncT:
		return 1
	case Array:
		return t.Len * t.Elem.Size()
	case StructT:
		return t.Struct.Size
	}
	return 0
}

// IsScalar reports whether the type is word-sized (int, pointer, function).
func (t *Type) IsScalar() bool {
	return t.Kind == Int || t.Kind == Ptr || t.Kind == FuncT
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	switch t.Kind {
	case Int:
		return "int"
	case Void:
		return "void"
	case Ptr:
		return t.Elem.String() + "*"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case StructT:
		return "struct " + t.Struct.Name
	case FuncT:
		s := "func("
		for i, p := range t.Sig.Params {
			if i > 0 {
				s += ", "
			}
			s += p.String()
		}
		return s + ") " + t.Sig.Ret.String()
	}
	return "invalid"
}

// FieldInfo is one laid-out struct field.
type FieldInfo struct {
	Name   string
	Type   *Type
	Offset int64 // word offset within the struct
}

// StructInfo is a laid-out struct.
type StructInfo struct {
	Name   string
	Fields []FieldInfo
	Size   int64
}

// Field returns the field with the given name, or nil.
func (s *StructInfo) Field(name string) *FieldInfo {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// ObjKind classifies resolved objects.
type ObjKind int

// The object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjLocal
	ObjParam
	ObjFunc
	ObjBuiltin
)

// String names the object kind.
func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjLocal:
		return "local"
	case ObjParam:
		return "param"
	case ObjFunc:
		return "func"
	case ObjBuiltin:
		return "builtin"
	}
	return "?"
}

// Object is a named program entity.
type Object struct {
	Name string
	Kind ObjKind
	Type *Type

	// Decl is the declaring node: *ast.VarDecl, *ast.ParamDecl or
	// *ast.FuncDecl. Nil for builtins.
	Decl ast.Node

	// Func is the enclosing function for locals and params.
	Func *FuncInfo

	// Index is the slot index: globals get a global index, params their
	// position, locals a per-function slot number.
	Index int

	// AddrTaken is set when the object's address is taken with &, or when
	// the object is an aggregate (whose uses are inherently by address).
	// RELAY's local-escape filter (paper §6.2) keys on this.
	AddrTaken bool

	// Builtin identifies the builtin operation for ObjBuiltin objects.
	Builtin BuiltinOp
}

// FuncInfo is the semantic view of a function.
type FuncInfo struct {
	Name   string
	Decl   *ast.FuncDecl
	Sig    *Signature
	Obj    *Object
	Params []*Object
	Locals []*Object // declaration order, excluding params
}

// BuiltinOp enumerates the runtime builtins. These are the operations the
// VM, the recorder, and the RELAY analysis each give special meaning to.
type BuiltinOp int

// The builtin operations.
const (
	BNone BuiltinOp = iota

	// Threads.
	BSpawn // spawn(fn, arg) -> tid
	BJoin  // join(tid)

	// Synchronization. Lock identity is the address argument.
	BLock        // lock(&m)
	BUnlock      // unlock(&m)
	BBarrierInit // barrier_init(&b, n)
	BBarrierWait // barrier_wait(&b)
	BCondWait    // cond_wait(&c, &m)
	BCondSignal  // cond_signal(&c)
	BCondBcast   // cond_broadcast(&c)

	// Memory.
	BMalloc // malloc(nwords) -> ptr
	BFree   // free(ptr)

	// Simulated OS input (nondeterministic; recorded).
	BOpen   // open(pathid) -> fd
	BClose  // close(fd)
	BRead   // read(fd, buf, n) -> count
	BWrite  // write(fd, buf, n) -> count
	BAccept // accept(lsock) -> sock or -1
	BRecv   // recv(sock, buf, n) -> count
	BSend   // send(sock, buf, n) -> count
	BNow    // now() -> simulated time
	BRnd    // rnd(n) -> pseudo-random in [0,n)

	// Deterministic program output.
	BPrint  // print(x): append int to output
	BPrints // prints(p): append NUL-terminated word string
	BExit   // exit(code)
	BCheck  // check(cond): abort the run if cond == 0

	// Weak-lock intrinsics inserted by the Chimera instrumenter
	// (paper §2.2-2.3). kind and id are constants; lo/hi are the runtime
	// address bounds for loop-locks (wlInf encodes ±infinity).
	BWlAcquire // wl_acquire(kind, id, lo, hi)
	BWlRelease // wl_release(kind, id)
)

// builtinSpec describes a builtin's arity and result.
type builtinSpec struct {
	name    string
	op      BuiltinOp
	arity   int
	retsInt bool // result is int (or pointer-as-int); otherwise void
}

var builtinSpecs = []builtinSpec{
	{"spawn", BSpawn, 2, true},
	{"join", BJoin, 1, false},
	{"lock", BLock, 1, false},
	{"unlock", BUnlock, 1, false},
	{"barrier_init", BBarrierInit, 2, false},
	{"barrier_wait", BBarrierWait, 1, false},
	{"cond_wait", BCondWait, 2, false},
	{"cond_signal", BCondSignal, 1, false},
	{"cond_broadcast", BCondBcast, 1, false},
	{"malloc", BMalloc, 1, true},
	{"free", BFree, 1, false},
	{"open", BOpen, 1, true},
	{"close", BClose, 1, false},
	{"read", BRead, 3, true},
	{"write", BWrite, 3, true},
	{"accept", BAccept, 1, true},
	{"recv", BRecv, 3, true},
	{"send", BSend, 3, true},
	{"now", BNow, 0, true},
	{"rnd", BRnd, 1, true},
	{"print", BPrint, 1, false},
	{"prints", BPrints, 1, false},
	{"exit", BExit, 1, false},
	{"check", BCheck, 1, false},
	{"wl_acquire", BWlAcquire, 4, false},
	{"wl_release", BWlRelease, 2, false},
}

// BuiltinName returns the source-level name of op, or "".
func BuiltinName(op BuiltinOp) string {
	for _, s := range builtinSpecs {
		if s.op == op {
			return s.name
		}
	}
	return ""
}

// IsSyncOp reports whether op is an original-program synchronization
// operation whose happens-before order the recorder logs for DRF replay.
func (op BuiltinOp) IsSyncOp() bool {
	switch op {
	case BLock, BUnlock, BBarrierWait, BCondWait, BCondSignal, BCondBcast,
		BSpawn, BJoin:
		return true
	}
	return false
}

// IsInputOp reports whether op produces nondeterministic input that the
// recorder must log (paper §2.2: "records non-deterministic input").
func (op BuiltinOp) IsInputOp() bool {
	switch op {
	case BOpen, BRead, BAccept, BRecv, BNow, BRnd:
		return true
	}
	return false
}

// Info holds the results of type checking a file.
type Info struct {
	File *ast.File

	// Types maps expression node IDs to their semantic type.
	Types map[ast.NodeID]*Type

	// Uses maps Ident node IDs to the object they denote.
	Uses map[ast.NodeID]*Object

	// Objects maps declaration node IDs (VarDecl/ParamDecl/FuncDecl) to
	// their object.
	Objects map[ast.NodeID]*Object

	// Structs maps struct names to layout.
	Structs map[string]*StructInfo

	// Funcs maps function names to semantic info; FuncList preserves
	// declaration order.
	Funcs    map[string]*FuncInfo
	FuncList []*FuncInfo

	// Globals in declaration order.
	Globals []*Object

	// Strings collects string literals in first-appearance order; the VM
	// materializes them as static word arrays.
	Strings []*ast.StringLit

	// CallTargets maps Call node IDs of *direct* calls to the callee
	// object (function or builtin). Indirect calls through expressions are
	// absent and resolved by the points-to analysis.
	CallTargets map[ast.NodeID]*Object
}

// Error is a semantic error at a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of semantic errors; it implements error.
type ErrorList []*Error

// Error returns the first error plus a count of the rest.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Check type-checks the file and returns the semantic info.
func Check(file *ast.File) (*Info, error) {
	c := &checker{
		info: &Info{
			File:        file,
			Types:       make(map[ast.NodeID]*Type),
			Uses:        make(map[ast.NodeID]*Object),
			Objects:     make(map[ast.NodeID]*Object),
			Structs:     make(map[string]*StructInfo),
			Funcs:       make(map[string]*FuncInfo),
			CallTargets: make(map[ast.NodeID]*Object),
		},
		scope: newScope(nil),
	}
	c.seenStr = make(map[string]bool)
	c.declareBuiltins()
	c.collectStructs(file)
	c.collectGlobalsAndFuncs(file)
	c.checkGlobalInits(file)
	c.checkFuncBodies(file)
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}

// MustCheck type-checks and panics on error; for tests and builtin programs.
func MustCheck(file *ast.File) *Info {
	info, err := Check(file)
	if err != nil {
		panic(fmt.Sprintf("types.MustCheck(%s): %v", file.Name, err))
	}
	return info
}

type scope struct {
	parent *scope
	names  map[string]*Object
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]*Object)}
}

func (s *scope) lookup(name string) *Object {
	for sc := s; sc != nil; sc = sc.parent {
		if o, ok := sc.names[name]; ok {
			return o
		}
	}
	return nil
}

func (s *scope) declare(o *Object) bool {
	if _, ok := s.names[o.Name]; ok {
		return false
	}
	s.names[o.Name] = o
	return true
}

type checker struct {
	info  *Info
	errs  ErrorList
	scope *scope // current scope; root holds builtins+globals+funcs

	curFunc *FuncInfo
	seenStr map[string]bool
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) declareBuiltins() {
	for _, spec := range builtinSpecs {
		ret := VoidType
		if spec.retsInt {
			ret = IntType
		}
		params := make([]*Type, spec.arity)
		for i := range params {
			params[i] = IntType
		}
		o := &Object{
			Name:    spec.name,
			Kind:    ObjBuiltin,
			Type:    &Type{Kind: FuncT, Sig: &Signature{Params: params, Ret: ret}},
			Builtin: spec.op,
		}
		c.scope.declare(o)
	}
}

// collectStructs lays out all structs. Structs may reference earlier structs
// by value and any struct by pointer.
func (c *checker) collectStructs(file *ast.File) {
	for _, sd := range file.Structs {
		if _, dup := c.info.Structs[sd.Name]; dup {
			c.errorf(sd.Pos(), "duplicate struct %s", sd.Name)
			continue
		}
		si := &StructInfo{Name: sd.Name}
		c.info.Structs[sd.Name] = si // visible to own pointer fields
		off := int64(0)
		for _, fd := range sd.Fields {
			ft := c.resolveType(fd.Type, fd.Pos())
			if ft.Kind == StructT && ft.Struct == si {
				c.errorf(fd.Pos(), "struct %s embeds itself", sd.Name)
				ft = invalidType
			}
			if ft.Kind == Void {
				c.errorf(fd.Pos(), "field %s has void type", fd.Name)
				ft = invalidType
			}
			if si.Field(fd.Name) != nil {
				c.errorf(fd.Pos(), "duplicate field %s in struct %s", fd.Name, sd.Name)
				continue
			}
			si.Fields = append(si.Fields, FieldInfo{Name: fd.Name, Type: ft, Offset: off})
			off += ft.Size()
		}
		si.Size = off
	}
}

// resolveType converts a syntactic type to a semantic one.
func (c *checker) resolveType(t ast.TypeName, pos token.Pos) *Type {
	var base *Type
	switch t.Kind {
	case ast.TypeInt:
		base = IntType
	case ast.TypeVoid:
		base = VoidType
	case ast.TypeStruct:
		si, ok := c.info.Structs[t.StructName]
		if !ok {
			c.errorf(pos, "undefined struct %s", t.StructName)
			return invalidType
		}
		base = &Type{Kind: StructT, Struct: si}
	}
	for i := 0; i < t.Stars; i++ {
		if base.Kind == Void && i == 0 {
			// void* is modeled as int* (a word pointer).
			base = IntType
		}
		base = PointerTo(base)
	}
	// Apply array lengths outermost-first: int a[2][3] is [2][3]int.
	for i := len(t.ArrayLens) - 1; i >= 0; i-- {
		n := t.ArrayLens[i]
		if n <= 0 {
			c.errorf(pos, "array length must be positive, got %d", n)
			n = 1
		}
		base = &Type{Kind: Array, Elem: base, Len: n}
	}
	return base
}

func (c *checker) collectGlobalsAndFuncs(file *ast.File) {
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			t := c.resolveType(d.Type, d.Pos())
			if t.Kind == Void {
				c.errorf(d.Pos(), "global %s has void type", d.Name)
				t = invalidType
			}
			o := &Object{
				Name: d.Name, Kind: ObjGlobal, Type: t, Decl: d,
				Index:     len(c.info.Globals),
				AddrTaken: !t.IsScalar(),
			}
			if !c.scope.declare(o) {
				c.errorf(d.Pos(), "duplicate declaration of %s", d.Name)
				continue
			}
			c.info.Globals = append(c.info.Globals, o)
			c.info.Objects[d.ID()] = o
		case *ast.FuncDecl:
			sig := &Signature{Ret: c.resolveType(d.Ret, d.Pos())}
			for _, p := range d.Params {
				pt := c.resolveType(p.Type, p.Pos())
				if !pt.IsScalar() {
					c.errorf(p.Pos(), "parameter %s must be scalar (got %s)", p.Name, pt)
					pt = IntType
				}
				sig.Params = append(sig.Params, pt)
			}
			fi := &FuncInfo{Name: d.Name, Decl: d, Sig: sig}
			o := &Object{
				Name: d.Name, Kind: ObjFunc,
				Type: &Type{Kind: FuncT, Sig: sig},
				Decl: d, Func: fi,
			}
			fi.Obj = o
			if !c.scope.declare(o) {
				c.errorf(d.Pos(), "duplicate declaration of %s", d.Name)
				continue
			}
			c.info.Funcs[d.Name] = fi
			c.info.FuncList = append(c.info.FuncList, fi)
			c.info.Objects[d.ID()] = o
		}
	}
}

// checkGlobalInits types global initializer expressions (they must also be
// compile-time constants, which the VM compiler enforces).
func (c *checker) checkGlobalInits(file *ast.File) {
	for _, g := range file.Globals {
		if g.Init == nil {
			continue
		}
		it := c.checkExpr(g.Init)
		if it.Kind != Invalid && !it.IsScalar() && it.Kind != Array {
			c.errorf(g.Pos(), "cannot initialize global %s from aggregate %s", g.Name, it)
		}
	}
}

func (c *checker) checkFuncBodies(file *ast.File) {
	for _, fi := range c.info.FuncList {
		c.curFunc = fi
		fnScope := newScope(c.scope)
		for i, p := range fi.Decl.Params {
			po := &Object{
				Name: p.Name, Kind: ObjParam, Type: fi.Sig.Params[i],
				Decl: p, Func: fi, Index: i,
			}
			if !fnScope.declare(po) {
				c.errorf(p.Pos(), "duplicate parameter %s", p.Name)
			}
			fi.Params = append(fi.Params, po)
			c.info.Objects[p.ID()] = po
		}
		saved := c.scope
		c.scope = fnScope
		c.checkBlock(fi.Decl.Body)
		c.scope = saved
		c.curFunc = nil
	}
}

func (c *checker) checkBlock(b *ast.Block) {
	c.scope = newScope(c.scope)
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.scope = c.scope.parent
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)
	case *ast.DeclStmt:
		c.checkLocalDecl(s.Decl)
	case *ast.AssignStmt:
		lt := c.checkExpr(s.LHS)
		rt := c.checkExpr(s.RHS)
		if !c.isLvalue(s.LHS) {
			c.errorf(s.LHS.Pos(), "cannot assign to %s", ast.PrintExpr(s.LHS))
		}
		if lt.Kind != Invalid && !lt.IsScalar() {
			c.errorf(s.Pos(), "cannot assign aggregate %s", lt)
		}
		if rt.Kind != Invalid && !rt.IsScalar() && rt.Kind != Array {
			c.errorf(s.Pos(), "cannot assign from aggregate %s", rt)
		}
		if s.Op != token.ASSIGN && lt.Kind == StructT {
			c.errorf(s.Pos(), "compound assignment needs scalar operands")
		}
	case *ast.IncDecStmt:
		t := c.checkExpr(s.X)
		if !c.isLvalue(s.X) {
			c.errorf(s.X.Pos(), "cannot modify %s", ast.PrintExpr(s.X))
		}
		if t.Kind != Invalid && !t.IsScalar() {
			c.errorf(s.Pos(), "%s requires scalar operand", s.Op)
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.IfStmt:
		c.checkScalarExpr(s.CondE, "if condition")
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkScalarExpr(s.CondE, "while condition")
		c.checkBlock(s.Body)
	case *ast.ForStmt:
		// The for-header introduces a scope for a declared index variable.
		c.scope = newScope(c.scope)
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.CondE != nil {
			c.checkScalarExpr(s.CondE, "for condition")
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.checkBlock(s.Body)
		c.scope = c.scope.parent
	case *ast.ReturnStmt:
		want := c.curFunc.Sig.Ret
		if s.X == nil {
			if want.Kind != Void {
				c.errorf(s.Pos(), "missing return value in %s", c.curFunc.Name)
			}
			return
		}
		got := c.checkExpr(s.X)
		if want.Kind == Void {
			c.errorf(s.Pos(), "unexpected return value in void function %s", c.curFunc.Name)
		} else if got.Kind != Invalid && !got.IsScalar() && got.Kind != Array {
			c.errorf(s.Pos(), "cannot return aggregate %s", got)
		}
	case *ast.BreakStmt, *ast.ContinueStmt:
		// Loop nesting is validated by the compiler pass, which knows the
		// enclosing loop structure.
	}
}

func (c *checker) checkLocalDecl(d *ast.VarDecl) {
	t := c.resolveType(d.Type, d.Pos())
	if t.Kind == Void {
		c.errorf(d.Pos(), "local %s has void type", d.Name)
		t = invalidType
	}
	o := &Object{
		Name: d.Name, Kind: ObjLocal, Type: t, Decl: d,
		Func:      c.curFunc,
		Index:     len(c.curFunc.Locals),
		AddrTaken: !t.IsScalar(),
	}
	if !c.scope.declare(o) {
		c.errorf(d.Pos(), "duplicate declaration of %s", d.Name)
		return
	}
	c.curFunc.Locals = append(c.curFunc.Locals, o)
	c.info.Objects[d.ID()] = o
	if d.Init != nil {
		it := c.checkExpr(d.Init)
		if it.Kind != Invalid && !it.IsScalar() && it.Kind != Array {
			c.errorf(d.Pos(), "cannot initialize from aggregate %s", it)
		}
		if !t.IsScalar() && t.Kind != Invalid {
			c.errorf(d.Pos(), "cannot initialize aggregate %s with an expression", d.Name)
		}
	}
}

func (c *checker) checkScalarExpr(e ast.Expr, what string) {
	t := c.checkExpr(e)
	if t.Kind != Invalid && !t.IsScalar() && t.Kind != Array {
		c.errorf(e.Pos(), "%s must be scalar, got %s", what, t)
	}
}

// isLvalue reports whether e denotes a memory location.
func (c *checker) isLvalue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		o := c.info.Uses[e.ID()]
		return o != nil && (o.Kind == ObjGlobal || o.Kind == ObjLocal || o.Kind == ObjParam)
	case *ast.Unary:
		return e.Op == token.STAR
	case *ast.Index, *ast.Field:
		return true
	}
	return false
}

// checkExpr types e, records the type in Types, and returns it.
func (c *checker) checkExpr(e ast.Expr) *Type {
	t := c.exprType(e)
	c.info.Types[e.ID()] = t
	return t
}

func (c *checker) exprType(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntType

	case *ast.StringLit:
		if !c.seenStr[e.Value] {
			c.seenStr[e.Value] = true
		}
		c.info.Strings = append(c.info.Strings, e)
		return IntPtrType

	case *ast.Ident:
		o := c.scope.lookup(e.Name)
		if o == nil {
			c.errorf(e.Pos(), "undefined: %s", e.Name)
			return invalidType
		}
		c.info.Uses[e.ID()] = o
		// Arrays decay to pointers when used as values; the decay is
		// applied at use sites (Index handles arrays directly).
		return o.Type

	case *ast.Unary:
		switch e.Op {
		case token.MINUS, token.NOT:
			xt := c.checkExpr(e.X)
			if xt.Kind != Invalid && !xt.IsScalar() {
				c.errorf(e.Pos(), "operator %s requires scalar, got %s", e.Op, xt)
			}
			return IntType
		case token.STAR:
			xt := c.checkExpr(e.X)
			switch xt.Kind {
			case Ptr:
				return xt.Elem
			case Array:
				return xt.Elem
			case Int, FuncT:
				// Dereferencing an int: a word pointer; *fp on a function
				// pointer is the function itself, as in C.
				if xt.Kind == FuncT {
					return xt
				}
				return IntType
			case Invalid:
				return invalidType
			}
			c.errorf(e.Pos(), "cannot dereference %s", xt)
			return invalidType
		case token.AMP:
			xt := c.checkExpr(e.X)
			if id, ok := e.X.(*ast.Ident); ok {
				if o := c.info.Uses[id.ID()]; o != nil {
					if o.Kind == ObjFunc {
						return o.Type // &f is the function value
					}
					o.AddrTaken = true
				}
			}
			if !c.isLvalue(e.X) {
				if _, isIdent := e.X.(*ast.Ident); !isIdent {
					c.errorf(e.Pos(), "cannot take address of %s", ast.PrintExpr(e.X))
					return invalidType
				}
			}
			if xt.Kind == Invalid {
				return invalidType
			}
			return PointerTo(xt)
		}
		c.errorf(e.Pos(), "bad unary operator %s", e.Op)
		return invalidType

	case *ast.Binary:
		xt := c.checkExpr(e.X)
		yt := c.checkExpr(e.Y)
		if xt.Kind == Invalid || yt.Kind == Invalid {
			return invalidType
		}
		okOperand := func(t *Type) bool { return t.IsScalar() || t.Kind == Array }
		if !okOperand(xt) || !okOperand(yt) {
			c.errorf(e.Pos(), "operator %s requires scalar operands, got %s and %s", e.Op, xt, yt)
			return invalidType
		}
		switch e.Op {
		case token.PLUS, token.MINUS:
			// Pointer arithmetic keeps the pointer type; ptr-ptr is int.
			xp := xt.Kind == Ptr || xt.Kind == Array
			yp := yt.Kind == Ptr || yt.Kind == Array
			switch {
			case xp && yp && e.Op == token.MINUS:
				return IntType
			case xp:
				return decay(xt)
			case yp && e.Op == token.PLUS:
				return decay(yt)
			}
			return IntType
		default:
			return IntType
		}

	case *ast.Cond:
		c.checkScalarExpr(e.CondE, "conditional")
		tt := c.checkExpr(e.Then)
		et := c.checkExpr(e.Else)
		if tt.Kind == Ptr || tt.Kind == Array {
			return decay(tt)
		}
		if et.Kind == Ptr || et.Kind == Array {
			return decay(et)
		}
		return IntType

	case *ast.Index:
		xt := c.checkExpr(e.X)
		c.checkScalarExpr(e.Index, "index")
		switch xt.Kind {
		case Array, Ptr:
			return xt.Elem
		case Int:
			return IntType // indexing through an int-as-pointer
		case Invalid:
			return invalidType
		}
		c.errorf(e.Pos(), "cannot index %s", xt)
		return invalidType

	case *ast.Field:
		xt := c.checkExpr(e.X)
		if xt.Kind == Invalid {
			return invalidType
		}
		var si *StructInfo
		if e.Arrow {
			if xt.Kind != Ptr || xt.Elem.Kind != StructT {
				c.errorf(e.Pos(), "-> requires struct pointer, got %s", xt)
				return invalidType
			}
			si = xt.Elem.Struct
		} else {
			if xt.Kind != StructT {
				c.errorf(e.Pos(), ". requires struct, got %s", xt)
				return invalidType
			}
			si = xt.Struct
		}
		fi := si.Field(e.Name)
		if fi == nil {
			c.errorf(e.Pos(), "struct %s has no field %s", si.Name, e.Name)
			return invalidType
		}
		return fi.Type

	case *ast.Call:
		return c.checkCall(e)

	case *ast.Sizeof:
		t := c.resolveType(e.Type, e.Pos())
		_ = t
		return IntType
	}
	c.errorf(e.Pos(), "unexpected expression")
	return invalidType
}

// decay converts array types to pointers-to-element for value contexts.
func decay(t *Type) *Type {
	if t.Kind == Array {
		return PointerTo(t.Elem)
	}
	return t
}

func (c *checker) checkCall(e *ast.Call) *Type {
	// Direct call through a name?
	if id, ok := e.Fun.(*ast.Ident); ok {
		o := c.scope.lookup(id.Name)
		if o == nil {
			c.errorf(id.Pos(), "undefined function: %s", id.Name)
			return invalidType
		}
		c.info.Uses[id.ID()] = o
		c.info.Types[id.ID()] = o.Type
		if o.Kind == ObjFunc || o.Kind == ObjBuiltin {
			c.info.CallTargets[e.ID()] = o
			return c.checkCallArgs(e, o.Type.Sig, o)
		}
		// Variable holding a function pointer.
		if o.Type.Kind == FuncT {
			return c.checkCallArgs(e, o.Type.Sig, nil)
		}
		if o.Type.Kind == Int || o.Type.Kind == Ptr {
			// Untyped function pointer stored in an int; args unchecked.
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return IntType
		}
		c.errorf(e.Pos(), "%s is not callable (%s)", id.Name, o.Type)
		return invalidType
	}
	// Indirect call through an arbitrary expression.
	ft := c.checkExpr(e.Fun)
	for _, a := range e.Args {
		c.checkExpr(a)
	}
	if ft.Kind == FuncT {
		return ft.Sig.Ret
	}
	if ft.Kind == Int || ft.Kind == Ptr || ft.Kind == Invalid {
		return IntType
	}
	c.errorf(e.Pos(), "cannot call value of type %s", ft)
	return invalidType
}

func (c *checker) checkCallArgs(e *ast.Call, sig *Signature, callee *Object) *Type {
	if len(e.Args) != len(sig.Params) {
		name := "function"
		if callee != nil {
			name = callee.Name
		}
		c.errorf(e.Pos(), "%s expects %d arguments, got %d", name, len(sig.Params), len(e.Args))
	}
	for _, a := range e.Args {
		at := c.checkExpr(a)
		if at.Kind != Invalid && !at.IsScalar() && at.Kind != Array {
			c.errorf(a.Pos(), "cannot pass aggregate %s", at)
		}
	}
	// spawn's first argument must be a function (pointer) taking one word.
	if callee != nil && callee.Builtin == BSpawn && len(e.Args) == 2 {
		ft := c.info.Types[e.Args[0].ID()]
		if ft != nil && ft.Kind == FuncT {
			if len(ft.Sig.Params) != 1 {
				c.errorf(e.Args[0].Pos(), "spawn target must take exactly one argument")
			}
		}
	}
	return sig.Ret
}
