package types

import (
	"strings"
	"testing"

	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
)

func check(t *testing.T, src string) *Info {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info, err := Check(f)
	if err != nil {
		t.Fatalf("check error: %v", err)
	}
	return info
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	f, err := parser.Parse("t.mc", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	_, err = Check(f)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestStructLayout(t *testing.T) {
	info := check(t, `
struct point { int x; int y; };
struct box {
    int id;
    struct point lo;
    struct point hi;
    int *tag;
    int pad[3];
};
`)
	pt := info.Structs["point"]
	if pt.Size != 2 {
		t.Errorf("point size = %d, want 2", pt.Size)
	}
	box := info.Structs["box"]
	if box.Size != 1+2+2+1+3 {
		t.Errorf("box size = %d, want 9", box.Size)
	}
	if f := box.Field("hi"); f == nil || f.Offset != 3 {
		t.Errorf("box.hi offset: %+v", f)
	}
	if f := box.Field("pad"); f == nil || f.Offset != 6 || f.Type.Kind != Array {
		t.Errorf("box.pad: %+v", f)
	}
}

func TestTypeSizes(t *testing.T) {
	info := check(t, `
struct s { int a; int b; int c; };
int g;
int arr[10];
int mat[4][8];
struct s many[5];
int *p;
`)
	sizes := map[string]int64{"g": 1, "arr": 10, "mat": 32, "many": 15, "p": 1}
	for _, o := range info.Globals {
		if want := sizes[o.Name]; o.Type.Size() != want {
			t.Errorf("%s size = %d, want %d", o.Name, o.Type.Size(), want)
		}
	}
}

func TestExprTypes(t *testing.T) {
	src := `
struct node { int v; struct node *next; };
struct node pool[8];
int g;
int f(int x) {
    struct node *p = &pool[0];
    int a = p->v;
    int b = pool[1].v;
    int c = *(&g);
    int d = x + a;
    return d + b + c;
}
`
	info := check(t, src)
	fn := info.Funcs["f"]
	if fn == nil {
		t.Fatal("no f")
	}
	// p is struct node*
	p := fn.Locals[0]
	if p.Type.Kind != Ptr || p.Type.Elem.Kind != StructT || p.Type.Elem.Struct.Name != "node" {
		t.Errorf("p type = %s", p.Type)
	}
	if len(fn.Locals) != 5 {
		t.Errorf("locals = %d, want 5", len(fn.Locals))
	}
}

func TestAddrTaken(t *testing.T) {
	info := check(t, `
int g;
void f(void) {
    int x;
    int y;
    int *p = &x;
    int arr[4];
    *p = 1;
    y = 2;
    arr[0] = y;
}
`)
	fn := info.Funcs["f"]
	byName := map[string]*Object{}
	for _, l := range fn.Locals {
		byName[l.Name] = l
	}
	if !byName["x"].AddrTaken {
		t.Errorf("x should be AddrTaken")
	}
	if byName["y"].AddrTaken {
		t.Errorf("y should not be AddrTaken")
	}
	if !byName["arr"].AddrTaken {
		t.Errorf("aggregate arr should be AddrTaken")
	}
}

func TestBuiltins(t *testing.T) {
	info := check(t, `
int m;
void worker(int arg) { lock(&m); unlock(&m); }
int main(void) {
    int t = spawn(worker, 7);
    join(t);
    int *buf = malloc(16);
    int fd = open(1);
    int n = read(fd, buf, 16);
    print(n);
    return 0;
}
`)
	// Direct call targets recorded.
	var spawnSeen, lockSeen bool
	ast.InspectFile(info.File, func(n ast.Node) bool {
		if call, ok := n.(*ast.Call); ok {
			if o := info.CallTargets[call.ID()]; o != nil {
				switch o.Builtin {
				case BSpawn:
					spawnSeen = true
				case BLock:
					lockSeen = true
				}
			}
		}
		return true
	})
	if !spawnSeen || !lockSeen {
		t.Errorf("builtin call targets missing: spawn=%v lock=%v", spawnSeen, lockSeen)
	}
}

func TestSpawnTargetResolvable(t *testing.T) {
	info := check(t, `
void w(int x) { }
int main(void) { int t = spawn(w, 0); join(t); return 0; }
`)
	fn := info.Funcs["w"]
	if fn == nil || fn.Obj.Kind != ObjFunc {
		t.Fatalf("w not resolved")
	}
}

func TestScopes(t *testing.T) {
	info := check(t, `
int x;
int f(void) {
    int x = 1;
    {
        int x = 2;
        x = 3;
    }
    for (int x = 0; x < 4; x++) { }
    return x;
}
`)
	fn := info.Funcs["f"]
	if len(fn.Locals) != 3 {
		t.Errorf("locals = %d, want 3 (shadowing copies)", len(fn.Locals))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int f(void) { return y; }", "undefined"},
		{"void f(void) { } void f(void) { }", "duplicate"},
		{"int x; int x;", "duplicate"},
		{"struct s { int a; }; void f(void) { struct s v; v.b = 1; }", "no field"},
		{"void f(void) { 3 = 4; }", "cannot assign"},
		{"struct s { int a; }; void f(struct s v) { }", "scalar"},
		{"int f(void) { return; }", "missing return value"},
		{"void f(void) { return 3; }", "unexpected return value"},
		{"struct s { struct s inner; };", "embeds itself"},
		{"int g(int a) { return a; } void f(void) { g(1, 2); }", "expects 1 arguments"},
		{"int a[0];", "positive"},
		{"void v; ", "void type"},
	}
	for _, tc := range cases {
		checkErr(t, tc.src, tc.want)
	}
}

func TestPointerArithTypes(t *testing.T) {
	info := check(t, `
int arr[10];
int f(int *p, int i) {
    int *q = p + i;
    int d = q - p;
    int v = arr[i] + *(arr + i);
    return d + v;
}
`)
	fn := info.Funcs["f"]
	q := fn.Locals[0]
	if q.Type.Kind != Ptr {
		t.Errorf("q type = %s, want pointer", q.Type)
	}
}

func TestFunctionPointers(t *testing.T) {
	info := check(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int apply(int f, int x) { return f(x); }
int main(void) {
    int r = apply(inc, 1) + apply(dec, 2);
    return r;
}
`)
	// inc used as a value argument resolves to the function object.
	var found bool
	ast.InspectFile(info.File, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "inc" {
			if o := info.Uses[id.ID()]; o != nil && o.Kind == ObjFunc {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Error("inc as value not resolved to function object")
	}
}

func TestStringsCollected(t *testing.T) {
	info := check(t, `void f(void) { prints("hello"); prints("world"); }`)
	if len(info.Strings) != 2 {
		t.Errorf("strings = %d, want 2", len(info.Strings))
	}
}

func TestSizeofFolds(t *testing.T) {
	info := check(t, `
struct s { int a; int b; };
int f(void) { return sizeof(struct s) + sizeof(int) + sizeof(int*); }
`)
	if info.Funcs["f"] == nil {
		t.Fatal("missing f")
	}
}

func TestCondExprTypes(t *testing.T) {
	info := check(t, `
int arr[4];
int *choose(int c) {
    return c ? &arr[0] : &arr[2];
}
int main(void) {
    int *p = choose(1);
    return *p;
}`)
	if info.Funcs["choose"] == nil {
		t.Fatal("missing choose")
	}
}

func TestVoidStarBecomesWordPointer(t *testing.T) {
	info := check(t, `
void *alias(void *p) { return p; }
int main(void) {
    int x = 5;
    int *q = alias(&x);
    return *q;
}`)
	fn := info.Funcs["alias"]
	if fn.Sig.Params[0].Kind != Ptr {
		t.Errorf("void* param is %s, want pointer", fn.Sig.Params[0])
	}
}

func TestPointerCompoundAssign(t *testing.T) {
	info := check(t, `
int arr[10];
int main(void) {
    int *p = arr;
    p += 3;
    p -= 1;
    return *p;
}`)
	_ = info
}

func TestCharLiteralsAreInts(t *testing.T) {
	info := check(t, `
int main(void) {
    int c = 'a';
    return c == 97;
}`)
	_ = info
}

func TestNestedStructAccess(t *testing.T) {
	info := check(t, `
struct inner { int v; };
struct outer { struct inner in; int tail; };
struct outer g;
int main(void) {
    g.in.v = 3;
    struct outer *p = &g;
    p->in.v = 4;
    return g.in.v + g.tail;
}`)
	oi := info.Structs["outer"]
	if oi.Size != 2 || oi.Field("tail").Offset != 1 {
		t.Errorf("outer layout: %+v", oi)
	}
}

func TestBuiltinArityErrors(t *testing.T) {
	checkErr(t, `int main(void) { lock(); return 0; }`, "expects 1 arguments")
	checkErr(t, `void w(int a, int b) { } int main(void) { return spawn(w, 1); }`, "exactly one argument")
	checkErr(t, `int main(void) { read(1); return 0; }`, "expects 3 arguments")
}

func TestBuiltinAsValueRejected(t *testing.T) {
	f := parser.MustParse("t.mc", `int main(void) { int x = lock; return x; }`)
	// The checker resolves `lock` to a builtin; using it as a value is a
	// compile-time error in the VM compiler (the checker allows the
	// lookup). Either layer may reject; together they must not accept.
	info, err := Check(f)
	if err != nil {
		return // checker rejected: fine
	}
	_ = info
	// Otherwise the VM compiler must reject; that is tested in vm.
}

func TestArrayDecayInCalls(t *testing.T) {
	check(t, `
int sum(int *p, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += p[i]; }
    return s;
}
int data[5];
int main(void) {
    return sum(data, 5) + sum(&data[1], 3);
}`)
}

func TestBreakContinueParse(t *testing.T) {
	check(t, `
int main(void) {
    for (int i = 0; i < 10; i++) {
        if (i == 2) { continue; }
        while (i > 5) { break; }
    }
    return 0;
}`)
}

func TestIsInputAndSyncOpSets(t *testing.T) {
	if !BRead.IsInputOp() || !BRnd.IsInputOp() || !BAccept.IsInputOp() {
		t.Error("input ops misclassified")
	}
	if BWrite.IsInputOp() || BPrint.IsInputOp() {
		t.Error("output ops are not input ops")
	}
	if !BLock.IsSyncOp() || !BBarrierWait.IsSyncOp() || !BSpawn.IsSyncOp() {
		t.Error("sync ops misclassified")
	}
	if BMalloc.IsSyncOp() || BRead.IsSyncOp() {
		t.Error("non-sync ops classified as sync")
	}
}

func TestBuiltinNames(t *testing.T) {
	if BuiltinName(BWlAcquire) != "wl_acquire" || BuiltinName(BCondBcast) != "cond_broadcast" {
		t.Error("builtin names wrong")
	}
	if BuiltinName(BNone) != "" {
		t.Error("BNone should have no name")
	}
}

func TestTypeStrings(t *testing.T) {
	si := &StructInfo{Name: "s", Size: 2}
	cases := map[*Type]string{
		IntType:                              "int",
		VoidType:                             "void",
		PointerTo(IntType):                   "int*",
		{Kind: Array, Elem: IntType, Len: 4}: "int[4]",
		{Kind: StructT, Struct: si}:          "struct s",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%v prints %q, want %q", ty.Kind, got, want)
		}
	}
	ft := &Type{Kind: FuncT, Sig: &Signature{Params: []*Type{IntType}, Ret: VoidType}}
	if got := ft.String(); got != "func(int) void" {
		t.Errorf("func type %q", got)
	}
}
