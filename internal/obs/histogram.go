package obs

import "sync"

// Fixed-bucket latency histograms. The bucket layout is chosen at
// construction and never changes, so two histograms built from the same
// bounds are structurally identical regardless of what they observed —
// that is what lets the service metrics masking (ServiceMetrics.Mask)
// zero the observed state while determinism tests still pin the
// structure, exactly as Report.MaskWall does for wall-clock fields.

// DefaultLatencyBuckets is the service latency bucket layout: upper
// bounds in nanoseconds, 1µs × 4^i from 1µs to ≈16.8s (13 bounds, 14
// buckets counting the implicit +Inf). Powers of four keep the table
// short while still separating "cache hit" (µs), "static analysis" (ms)
// and "full record/replay pipeline" (s) populations.
func DefaultLatencyBuckets() []int64 {
	bounds := make([]int64, 13)
	b := int64(1_000)
	for i := range bounds {
		bounds[i] = b
		b *= 4
	}
	return bounds
}

// Histogram is a concurrency-safe fixed-bucket histogram of nanosecond
// durations. A nil *Histogram is the disabled histogram: Observe on it
// is an allocation-free no-op, mirroring the nil-Tracer contract.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // ascending upper bounds; implicit +Inf bucket last
	counts []int64 // len(bounds)+1
	sum    int64
	count  int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (nanoseconds). The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one duration. Nil-safe and allocation-free.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += ns
	h.count++
	h.mu.Unlock()
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		BoundsNS: append([]int64(nil), h.bounds...),
		Counts:   append([]int64(nil), h.counts...),
		SumNS:    h.sum,
		Count:    h.count,
	}
}

// HistogramSnapshot is the serialized form of a histogram: the fixed
// bucket bounds (structure) and the observed counts/sum (state). Counts
// has one entry per bound plus a final +Inf bucket.
type HistogramSnapshot struct {
	BoundsNS []int64 `json:"bounds_ns"`
	Counts   []int64 `json:"counts"`
	SumNS    int64   `json:"sum_ns"`
	Count    int64   `json:"count"`
}

// Mask zeroes the observed state in place, keeping the bucket structure
// — the histogram analogue of Report.MaskWall.
func (s *HistogramSnapshot) Mask() {
	for i := range s.Counts {
		s.Counts[i] = 0
	}
	s.SumNS = 0
	s.Count = 0
}
