package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Structured JSON logging for the service: one JSON object per line,
// with a fixed header (ts, level, event) followed by the caller's fields
// in call order — deterministic field order, so log lines diff cleanly
// and tests can pin everything but the timestamp. A nil *Logger is the
// disabled logger: every method is an allocation-free no-op, the same
// contract as the nil Tracer and nil Histogram.

// Level is a log severity. Records below the logger's minimum are
// dropped before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff is above every real level; a logger with this minimum
	// emits nothing.
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a flag value ("debug", "info", "warn", "error",
// "off") to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return LevelOff, nil
	}
	return LevelOff, fmt.Errorf("unknown log level %q (want debug|info|warn|error|off)", s)
}

// Field is one key/value pair in a log record. Construct with Str, Int,
// or RawJSON; the zero Field renders as a JSON null.
type Field struct {
	Key  string
	str  string
	num  int64
	raw  []byte
	kind fieldKind
}

type fieldKind uint8

const (
	fieldNull fieldKind = iota
	fieldStr
	fieldInt
	fieldRaw
)

// Str builds a string field.
func Str(key, v string) Field { return Field{Key: key, str: v, kind: fieldStr} }

// Int builds an integer field.
func Int(key string, v int64) Field { return Field{Key: key, num: v, kind: fieldInt} }

// RawJSON embeds pre-encoded JSON verbatim (e.g. a metrics snapshot).
// The caller is responsible for v being valid JSON; invalid input would
// corrupt the line.
func RawJSON(key string, v []byte) Field { return Field{Key: key, raw: v, kind: fieldRaw} }

// Logger writes newline-delimited JSON records to one writer. Safe for
// concurrent use; each record is written in a single Write call.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	clock func() time.Time
}

// NewLogger returns a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, clock: time.Now}
}

// NewLoggerWithClock is NewLogger with an injectable timestamp source,
// for tests that pin whole lines.
func NewLoggerWithClock(w io.Writer, min Level, clock func() time.Time) *Logger {
	return &Logger{w: w, min: min, clock: clock}
}

// Enabled reports whether records at lv would be written. Nil-safe.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min && lv < LevelOff
}

// Log writes one record. Nil-safe; below-minimum records cost one
// comparison and no allocation.
func (l *Logger) Log(lv Level, event string, fields ...Field) {
	if !l.Enabled(lv) {
		return
	}
	var buf []byte
	buf = append(buf, `{"ts":`...)
	buf = appendJSONString(buf, l.clock().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSONString(buf, lv.String())
	buf = append(buf, `,"event":`...)
	buf = appendJSONString(buf, event)
	for i := range fields {
		f := &fields[i]
		buf = append(buf, ',')
		buf = appendJSONString(buf, f.Key)
		buf = append(buf, ':')
		switch f.kind {
		case fieldStr:
			buf = appendJSONString(buf, f.str)
		case fieldInt:
			buf = strconv.AppendInt(buf, f.num, 10)
		case fieldRaw:
			buf = append(buf, f.raw...)
		default:
			buf = append(buf, "null"...)
		}
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(event string, fields ...Field) { l.Log(LevelDebug, event, fields...) }

// Info logs at LevelInfo.
func (l *Logger) Info(event string, fields ...Field) { l.Log(LevelInfo, event, fields...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(event string, fields ...Field) { l.Log(LevelWarn, event, fields...) }

// Error logs at LevelError.
func (l *Logger) Error(event string, fields ...Field) { l.Log(LevelError, event, fields...) }

func appendJSONString(buf []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return append(buf, `""`...)
	}
	return append(buf, b...)
}
