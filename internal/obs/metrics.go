package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/weaklock"
)

// Schema is the metrics report schema version. Bump it whenever a field
// is renamed, retyped, or changes meaning; adding fields is
// backward-compatible and does not require a bump.
//
// v2: Cache.Stats() split fresh computations into misses and partial
// hits (incremental analyses that reused stored function summaries), so
// the cache section's miss count changed meaning; the report also gained
// the summary_store section.
const Schema = 2

// Attr is one span or stage attribute: an integer by default, a string
// when IsStr is set.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// AttrMap is an ordered attribute list that marshals as a JSON object in
// insertion order (deterministic: attributes are set by straight-line
// pipeline code).
type AttrMap []Attr

func (m AttrMap) set(a Attr) AttrMap {
	for i := range m {
		if m[i].Key == a.Key {
			m[i] = a
			return m
		}
	}
	return append(m, a)
}

// Get returns the integer attribute for key (0 when absent).
func (m AttrMap) Get(key string) int64 {
	for _, a := range m {
		if a.Key == key && !a.IsStr {
			return a.Int
		}
	}
	return 0
}

// MarshalJSON renders the attributes as an object, keys in insertion
// order.
func (m AttrMap) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, a := range m {
		if i > 0 {
			buf.WriteByte(',')
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return nil, err
		}
		buf.Write(k)
		buf.WriteByte(':')
		if a.IsStr {
			v, err := json.Marshal(a.Str)
			if err != nil {
				return nil, err
			}
			buf.Write(v)
		} else {
			fmt.Fprintf(&buf, "%d", a.Int)
		}
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON parses an attribute object back into the map, so reports
// round-trip through JSON. Go's decoder hands object keys in source
// order only via a token walk, which this does.
func (m *AttrMap) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok != json.Delim('{') {
		return fmt.Errorf("obs: attrs must be an object, got %v", tok)
	}
	out := AttrMap{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key := keyTok.(string)
		valTok, err := dec.Token()
		if err != nil {
			return err
		}
		switch v := valTok.(type) {
		case json.Number:
			n, err := v.Int64()
			if err != nil {
				return fmt.Errorf("obs: attr %q: %w", key, err)
			}
			out = out.set(Attr{Key: key, Int: n})
		case string:
			out = out.set(Attr{Key: key, Str: v, IsStr: true})
		default:
			return fmt.Errorf("obs: attr %q: unsupported value %v", key, valTok)
		}
	}
	if _, err := dec.Token(); err != nil {
		return err
	}
	*m = out
	return nil
}

// Stage is one flattened span in the metrics report: its slash-joined
// path in the span tree, wall time, and attributes.
type Stage struct {
	Path   string  `json:"path"`
	WallNS int64   `json:"wall_ns"`
	Attrs  AttrMap `json:"attrs,omitempty"`
}

// Stages flattens the tracer's span forest depth-first into stage rows.
// The order is the deterministic span start order; only WallNS varies
// between runs.
func (t *Tracer) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Stage
	var walk func(prefix string, sp *Span)
	walk = func(prefix string, sp *Span) {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		out = append(out, Stage{Path: path, WallNS: sp.WallNS(), Attrs: sp.Attrs})
		for _, c := range sp.Children {
			walk(path, c)
		}
	}
	for _, r := range t.roots {
		walk("", r)
	}
	return out
}

// Site is the per-weak-lock-site counter row of the metrics report. All
// values come from the simulated run and are deterministic.
type Site struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"`
	Name string `json:"name"`

	// Acquires counts non-reentrant (order-logged when recording)
	// acquisitions; ReentrantAcquires the nested re-acquisitions that
	// bypass gating and logging. Releases/ReentrantReleases mirror them.
	Acquires          int64 `json:"acquires"`
	ReentrantAcquires int64 `json:"reentrant_acquires,omitempty"`
	Releases          int64 `json:"releases"`
	ReentrantReleases int64 `json:"reentrant_releases,omitempty"`

	// Forced counts forced (timeout or replay-injected) releases.
	Forced int64 `json:"forced,omitempty"`

	// Contended counts acquisitions that blocked first; StallCycles is
	// the simulated time those acquisitions spent blocked.
	Contended   int64 `json:"contended,omitempty"`
	StallCycles int64 `json:"stall_cycles,omitempty"`
}

// WeakLocks is the weak-lock section of the metrics report.
type WeakLocks struct {
	// Sites are the per-lock rows, sorted by lock ID.
	Sites []Site `json:"sites"`

	// Totals over all sites.
	Acquires int64 `json:"acquires"`
	Releases int64 `json:"releases"`
	Forced   int64 `json:"forced"`
	Timeouts int64 `json:"timeouts"`

	// OrderLogEntries is the number of weak-lock records in the recorded
	// order log; AcquireOrderEntries its EvWLAcquire share. By the
	// runtime's accounting invariant OrderLogEntries equals
	// Acquires+Releases+Forced and AcquireOrderEntries equals Acquires.
	OrderLogEntries     int64 `json:"order_log_entries"`
	AcquireOrderEntries int64 `json:"acquire_order_entries"`
}

// WeakLocksFrom builds the weak-lock section from a run's per-site stats
// (vm.Result.WLSites) and its lock table. Order-log fields are left for
// the caller, which owns the log.
func WeakLocksFrom(table *weaklock.Table, sites []weaklock.SiteStats) *WeakLocks {
	wl := &WeakLocks{Sites: make([]Site, 0, len(sites))}
	for i, st := range sites {
		d := table.Lock(weaklock.ID(i))
		row := Site{
			ID:                i,
			Acquires:          st.Acquires,
			ReentrantAcquires: st.ReentrantAcquires,
			Releases:          st.Releases,
			ReentrantReleases: st.ReentrantReleases,
			Forced:            st.Forced,
			Contended:         st.Contended,
			StallCycles:       st.StallCycles,
		}
		if d != nil {
			row.Kind = d.Kind.String()
			row.Name = d.Name
		}
		wl.Sites = append(wl.Sites, row)
		wl.Acquires += st.Acquires
		wl.Releases += st.Releases
		wl.Forced += st.Forced
	}
	sort.Slice(wl.Sites, func(i, j int) bool { return wl.Sites[i].ID < wl.Sites[j].ID })
	return wl
}

// Events is the event-sink runtime section: how many observation events
// the VM emitted and in how many batch drains, with the per-kind
// breakdown an EventCounter sink observed.
type Events struct {
	Emitted int64 `json:"emitted"`
	Batches int64 `json:"batches"`
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	Syncs   int64 `json:"syncs"`
}

// LogStreams is the CHIMLOG2 stream section, from the recording's
// LogWriter: per-stream chunk/record counts, raw (uncompressed) payload
// bytes, and compressed wire bytes including the 13-byte chunk headers.
// InputBytes+OrderBytes plus the 8-byte magic and 13-byte end marker is
// the whole stream (TotalBytes).
type LogStreams struct {
	TotalBytes    int64 `json:"total_bytes"`
	InputChunks   int64 `json:"input_chunks"`
	OrderChunks   int64 `json:"order_chunks"`
	InputRecords  int64 `json:"input_records"`
	OrderRecords  int64 `json:"order_records"`
	InputRawBytes int64 `json:"input_raw_bytes"`
	OrderRawBytes int64 `json:"order_raw_bytes"`
	InputBytes    int64 `json:"input_bytes"`
	OrderBytes    int64 `json:"order_bytes"`
}

// CacheStats is the analysis-cache section. PartialHits counts loads
// that missed the whole-program cache but reused at least one stored
// function summary on the incremental path; Misses are loads computed
// entirely from scratch.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	PartialHits int64 `json:"partial_hits"`
	Misses      int64 `json:"misses"`
}

// SummaryStoreStats is the incremental summary-store section: the
// content-addressed per-function artifact store's counters (see
// internal/summary). All values are deterministic functions of the load
// sequence.
type SummaryStoreStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	MHPHits   int64 `json:"mhp_hits"`
	MHPMisses int64 `json:"mhp_misses"`
}

// Checker is the dynamic race checker section. WallNS is real time
// (masked by MaskWall); Races is deterministic.
type Checker struct {
	Name   string `json:"name"`
	Races  int    `json:"races"`
	WallNS int64  `json:"wall_ns"`
}

// Report is the aggregated metrics document one observed pipeline run
// produces. Marshal renders it canonically; MaskWall zeroes every
// wall-clock field, after which two runs of the same program and
// configuration must render byte-identically regardless of analysis
// parallelism.
type Report struct {
	Schema       int                `json:"schema"`
	Program      string             `json:"program"`
	Config       string             `json:"config,omitempty"`
	Stages       []Stage            `json:"stages,omitempty"`
	WeakLocks    *WeakLocks         `json:"weak_locks,omitempty"`
	Events       *Events            `json:"events,omitempty"`
	Log          *LogStreams        `json:"log,omitempty"`
	Cache        *CacheStats        `json:"cache,omitempty"`
	SummaryStore *SummaryStoreStats `json:"summary_store,omitempty"`
	Checker      *Checker           `json:"checker,omitempty"`
}

// MaskWall zeroes every wall-clock (nondeterministic) field in place:
// stage durations and the checker's wall share. Everything else in the
// report derives from the simulated run and the analysis, which are
// deterministic.
func (r *Report) MaskWall() {
	for i := range r.Stages {
		r.Stages[i].WallNS = 0
	}
	if r.Checker != nil {
		r.Checker.WallNS = 0
	}
}

// Marshal renders the report as stable, indented JSON with a trailing
// newline.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RowMetrics is the per-stage+per-site metrics block embedded in the
// benchmark harness's JSON rows. Every field is derived from the
// simulated run, so the block is deterministic and safe to pin in
// checked-in BENCH_PR*.json files; wall-clock values stay in the row's
// existing *_wall_ns fields.
type RowMetrics struct {
	Schema    int        `json:"schema"`
	Makespans Makespans  `json:"makespans"`
	WeakLocks *WeakLocks `json:"weak_locks"`
	Events    *Events    `json:"events"`
	Log       LogStreams `json:"log"`
}

// Makespans are the simulated cycle totals of the measured stages.
type Makespans struct {
	Native int64 `json:"native"`
	Record int64 `json:"record"`
	Replay int64 `json:"replay"`
}
