// Package obs is the observability layer: a hierarchical span tracer for
// the pipeline stages, counter aggregation for the runtime (weak-lock
// sites, event batches, log streams, analysis cache), a schema-versioned
// JSON metrics report, and a Chrome/Perfetto trace-event export.
//
// The layer is deterministic and low-overhead by construction:
//
//   - A nil *Tracer (and the nil *Span it hands out) is the disabled
//     tracer: every method is a nil-safe no-op that performs no
//     allocation, so instrumented call sites cost one pointer test when
//     observability is off.
//   - The clock is injectable (NewTracerWithClock), so tests can drive
//     spans with a virtual clock; wall-clock durations are the only
//     nondeterministic values the layer produces, and Report.MaskWall
//     zeroes them all for byte-equality determinism tests.
//   - All aggregation output is stably ordered: sites sort by lock ID,
//     stages flatten in span start order, attributes keep insertion
//     order, and JSON rendering is canonical.
package obs

import (
	"sync"
	"time"
)

// Tracer records a forest of hierarchical spans. Spans started while
// another span is open nest under it automatically (the tracer keeps an
// open-span stack), which matches the pipeline's single-goroutine
// orchestration; Start/End must be called from one goroutine at a time
// (a mutex keeps concurrent misuse memory-safe, not meaningful).
type Tracer struct {
	mu    sync.Mutex
	clock func() int64
	roots []*Span
	stack []*Span
}

// NewTracer returns a tracer driven by the process monotonic clock,
// with time zero at the call.
func NewTracer() *Tracer {
	base := time.Now()
	return NewTracerWithClock(func() int64 { return time.Since(base).Nanoseconds() })
}

// NewTracerWithClock returns a tracer driven by the given monotonic
// nanosecond clock. The clock must never go backwards.
func NewTracerWithClock(clock func() int64) *Tracer {
	return &Tracer{clock: clock}
}

// Start opens a span as a child of the innermost open span (or as a new
// root). On a nil tracer it returns nil, which is the valid disabled span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, Name: name, StartNS: t.clock()}
	if n := len(t.stack); n > 0 {
		p := t.stack[n-1]
		p.Children = append(p.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// Roots returns the root spans recorded so far, in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.roots
}

// Span is one timed region with attributes and children. The zero of the
// type is never used; a nil *Span is the disabled span and every method
// on it is a no-op.
type Span struct {
	tr       *Tracer
	Name     string
	StartNS  int64
	EndNS    int64
	Attrs    AttrMap
	Children []*Span
	ended    bool
}

// SetAttr attaches (or overwrites) an integer attribute. Returns the span
// for chaining.
func (s *Span) SetAttr(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.Attrs = s.Attrs.set(Attr{Key: key, Int: v})
	return s
}

// SetStr attaches (or overwrites) a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.Attrs = s.Attrs.set(Attr{Key: key, Str: v, IsStr: true})
	return s
}

// End closes the span. Any children left open are abandoned (they keep a
// zero EndNS and stop parenting new spans). Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.EndNS = t.clock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			break
		}
	}
}

// WallNS returns the span duration (zero until End).
func (s *Span) WallNS() int64 {
	if s == nil || s.EndNS < s.StartNS {
		return 0
	}
	return s.EndNS - s.StartNS
}
