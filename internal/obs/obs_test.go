package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/weaklock"
)

// virtualClock ticks a fixed amount per reading, so span durations are
// exact and test failures are byte-precise.
func virtualClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		v := now
		now += step
		return v
	}
}

func TestSpanAutoNesting(t *testing.T) {
	tr := NewTracerWithClock(virtualClock(10))
	root := tr.Start("pipeline")
	a := tr.Start("analyze")
	lex := tr.Start("lex-parse")
	lex.End()
	a.End()
	b := tr.Start("record")
	b.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("%d roots, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != 2 {
		t.Fatalf("root has %d children, want 2 (analyze, record)", got)
	}
	if roots[0].Children[0].Name != "analyze" || roots[0].Children[1].Name != "record" {
		t.Errorf("children = %q, %q", roots[0].Children[0].Name, roots[0].Children[1].Name)
	}
	if got := roots[0].Children[0].Children; len(got) != 1 || got[0].Name != "lex-parse" {
		t.Errorf("analyze children = %+v, want one lex-parse", got)
	}

	paths := make([]string, 0, 4)
	for _, s := range tr.Stages() {
		paths = append(paths, s.Path)
	}
	want := "pipeline pipeline/analyze pipeline/analyze/lex-parse pipeline/record"
	if got := strings.Join(paths, " "); got != want {
		t.Errorf("stage paths = %q, want %q", got, want)
	}
	for _, s := range tr.Stages() {
		if s.WallNS <= 0 {
			t.Errorf("stage %s wall = %d, want > 0 under a ticking clock", s.Path, s.WallNS)
		}
	}
}

func TestEndAbandonsOpenChildren(t *testing.T) {
	tr := NewTracerWithClock(virtualClock(1))
	root := tr.Start("root")
	tr.Start("left-open")
	root.End()
	// The abandoned child must stop parenting: a new span is a fresh root.
	next := tr.Start("next")
	next.End()
	roots := tr.Roots()
	if len(roots) != 2 || roots[1].Name != "next" {
		t.Fatalf("roots = %+v, want [root next]", roots)
	}
	open := roots[0].Children[0]
	if open.EndNS != 0 {
		t.Errorf("abandoned span got EndNS %d, want 0", open.EndNS)
	}
	if open.WallNS() != 0 {
		t.Errorf("abandoned span wall = %d, want 0", open.WallNS())
	}
	// Double End is idempotent.
	end := roots[0].EndNS
	root.End()
	if roots[0].EndNS != end {
		t.Errorf("second End moved EndNS %d → %d", end, roots[0].EndNS)
	}
}

// The disabled tracer is a nil pointer: every call must be a safe no-op
// so instrumented pipeline code never branches on enablement.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("ignored")
	if sp != nil {
		t.Fatalf("nil tracer handed out a real span")
	}
	sp.SetAttr("k", 1).SetStr("s", "v").SetAttr("k2", 2)
	sp.End()
	if sp.WallNS() != 0 {
		t.Errorf("nil span wall = %d", sp.WallNS())
	}
	if tr.Roots() != nil || tr.Stages() != nil {
		t.Errorf("nil tracer reported spans")
	}
}

func TestAttrMapOrderAndOverwrite(t *testing.T) {
	tr := NewTracerWithClock(virtualClock(1))
	sp := tr.Start("s")
	sp.SetAttr("zeta", 1).SetStr("alpha", "x").SetAttr("mid", 7).SetAttr("zeta", 3)
	sp.End()
	b, err := json.Marshal(sp.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	// Insertion order, not sorted; overwrite keeps the original slot.
	want := `{"zeta":3,"alpha":"x","mid":7}`
	if string(b) != want {
		t.Errorf("attrs marshal = %s, want %s", b, want)
	}
	if got := sp.Attrs.Get("mid"); got != 7 {
		t.Errorf("Get(mid) = %d", got)
	}
	if got := sp.Attrs.Get("alpha"); got != 0 {
		t.Errorf("Get on a string attr = %d, want 0", got)
	}
}

func TestMaskWallZeroesOnlyWallFields(t *testing.T) {
	r := &Report{
		Schema:  Schema,
		Program: "p",
		Stages: []Stage{
			{Path: "pipeline", WallNS: 123, Attrs: AttrMap{{Key: "pairs", Int: 4}}},
			{Path: "pipeline/record", WallNS: 45},
		},
		Checker: &Checker{Name: "epoch", Races: 2, WallNS: 999},
	}
	r.MaskWall()
	for _, s := range r.Stages {
		if s.WallNS != 0 {
			t.Errorf("stage %s wall not masked: %d", s.Path, s.WallNS)
		}
	}
	if r.Checker.WallNS != 0 {
		t.Errorf("checker wall not masked: %d", r.Checker.WallNS)
	}
	if r.Stages[0].Attrs.Get("pairs") != 4 || r.Checker.Races != 2 {
		t.Errorf("MaskWall clobbered deterministic fields: %+v", r)
	}
}

func TestWeakLocksFromSortsAndTotals(t *testing.T) {
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindFunc, "clique0", false)
	tbl.Add(weaklock.KindInstr, "site1", false)
	sites := []weaklock.SiteStats{
		{Acquires: 40, Releases: 39, Forced: 1, Contended: 3, StallCycles: 900},
		{Acquires: 10, Releases: 10, ReentrantAcquires: 2, ReentrantReleases: 2},
	}
	wl := WeakLocksFrom(tbl, sites)
	if len(wl.Sites) != 2 {
		t.Fatalf("%d site rows", len(wl.Sites))
	}
	if wl.Sites[0].Kind != "func" || wl.Sites[0].Name != "clique0" {
		t.Errorf("site 0 identity = %s/%s", wl.Sites[0].Kind, wl.Sites[0].Name)
	}
	if wl.Acquires != 50 || wl.Releases != 49 || wl.Forced != 1 {
		t.Errorf("totals = %d/%d/%d, want 50/49/1", wl.Acquires, wl.Releases, wl.Forced)
	}
	if wl.Sites[1].ReentrantAcquires != 2 {
		t.Errorf("reentrant acquires lost: %+v", wl.Sites[1])
	}
}

func TestPerfettoExport(t *testing.T) {
	tr := NewTracerWithClock(virtualClock(1_000)) // 1µs per tick
	root := tr.Start("pipeline")
	root.SetStr("program", "demo")
	child := tr.Start("analyze")
	child.SetAttr("pairs", 3)
	child.End()
	open := tr.Start("record") // left open: gets a best-effort end
	_ = open
	root.End()

	b, err := tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d trace events, want 3", len(doc.TraceEvents))
	}
	rootEv := doc.TraceEvents[0]
	if rootEv.Name != "pipeline" || rootEv.Cat != "pipeline" || rootEv.Ph != "X" {
		t.Errorf("root event = %+v", rootEv)
	}
	if rootEv.Ts != 0 {
		t.Errorf("trace does not start at t=0: ts=%v", rootEv.Ts)
	}
	if rootEv.Args["program"] != "demo" {
		t.Errorf("root args = %v", rootEv.Args)
	}
	// Children sit inside the root's [ts, ts+dur] window.
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ts < rootEv.Ts || ev.Ts+ev.Dur > rootEv.Ts+rootEv.Dur {
			t.Errorf("event %s [%v,%v] escapes root [%v,%v]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
		}
	}
	if got := doc.TraceEvents[1].Args["pairs"]; got != float64(3) {
		t.Errorf("analyze args = %v", doc.TraceEvents[1].Args)
	}
}

// Two identical span sequences under a virtual clock must produce
// byte-identical masked reports and byte-identical traces — the unit-level
// version of the pipeline determinism guard.
func TestReportDeterministicUnderVirtualClock(t *testing.T) {
	build := func() ([]byte, []byte) {
		tr := NewTracerWithClock(virtualClock(7))
		root := tr.Start("pipeline")
		tr.Start("analyze").SetAttr("pairs", 9).End()
		root.End()
		rep := &Report{Schema: Schema, Program: "p", Stages: tr.Stages()}
		rep.MaskWall()
		m, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		p, err := tr.Perfetto()
		if err != nil {
			t.Fatal(err)
		}
		return m, p
	}
	m1, p1 := build()
	m2, p2 := build()
	if string(m1) != string(m2) {
		t.Errorf("masked reports differ:\n%s\n%s", m1, m2)
	}
	if string(p1) != string(p2) {
		t.Errorf("traces differ:\n%s\n%s", p1, p2)
	}
}

func TestAttrMapRoundTrip(t *testing.T) {
	in := AttrMap{{Key: "pairs", Int: 9}, {Key: "config", Str: "all", IsStr: true}, {Key: "neg", Int: -3}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out AttrMap
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("attr map does not round-trip: %s → %s", b, b2)
	}
}
