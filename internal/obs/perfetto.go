package obs

import "encoding/json"

// Chrome trace-event export: the span forest renders as complete ("X")
// events in the JSON object format, which chrome://tracing and Perfetto's
// trace viewer (ui.perfetto.dev) open directly as a flame chart.
// Timestamps and durations are microseconds (floats), relative to the
// earliest span start so a trace always begins at t=0.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Perfetto renders the recorded spans as a Chrome trace-event JSON
// document. Nesting is conveyed by timestamps: children sit inside their
// parent's [ts, ts+dur] window on the same track, which the viewers
// render as stacked slices. An unended span gets its latest descendant's
// end (or its own start) as a best-effort end time.
func (t *Tracer) Perfetto() ([]byte, error) {
	return PerfettoNodes(t.Nodes())
}

// PerfettoNodes renders a detached span forest — typically one returned
// over the wire in a job result — as the same Chrome trace-event JSON
// document Tracer.Perfetto produces locally.
func PerfettoNodes(roots []*SpanNode) ([]byte, error) {
	var epoch int64
	if len(roots) > 0 {
		epoch = roots[0].StartNS
	}
	doc := traceDoc{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	var walk func(sp *SpanNode)
	walk = func(sp *SpanNode) {
		end := sp.EndNS
		for _, c := range sp.Children {
			if c.EndNS > end {
				end = c.EndNS
			}
		}
		if end < sp.StartNS {
			end = sp.StartNS
		}
		ev := traceEvent{
			Name: sp.Name,
			Cat:  "pipeline",
			Ph:   "X",
			Ts:   float64(sp.StartNS-epoch) / 1e3,
			Dur:  float64(end-sp.StartNS) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				if a.IsStr {
					ev.Args[a.Key] = a.Str
				} else {
					ev.Args[a.Key] = a.Int
				}
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
