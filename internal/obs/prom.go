package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a ServiceMetrics
// snapshot. The output is fully ordered — families in fixed order,
// series sorted by label value — so consecutive scrapes of a quiesced
// server are byte-identical and tests can diff them.
//
// Durations are exported in seconds (the Prometheus convention); the
// underlying histograms count nanoseconds, so bucket bounds convert as
// le = bound_ns / 1e9.

// Prometheus renders the snapshot as Prometheus text exposition.
func (m *ServiceMetrics) Prometheus() []byte {
	var b strings.Builder
	writeGauge(&b, "chimerad_draining", "Whether the server is draining (1) or accepting jobs (0).", boolVal(m.Draining))

	b.WriteString("# HELP chimerad_jobs Jobs by lifecycle state.\n# TYPE chimerad_jobs gauge\n")
	for _, st := range []struct {
		name string
		v    int64
	}{
		{"awaiting-log", m.Jobs.AwaitingLog},
		{"done", m.Jobs.Done},
		{"failed", m.Jobs.Failed},
		{"queued", m.Jobs.Queued},
		{"running", m.Jobs.Running},
	} {
		fmt.Fprintf(&b, "chimerad_jobs{state=%q} %d\n", st.name, st.v)
	}

	writeGauge(&b, "chimerad_pool_shards", "Number of worker shards.", float64(m.Pool.Shards))
	writeGauge(&b, "chimerad_pool_pending", "Tasks queued or executing across all shards.", float64(m.Pool.Pending))
	writeCounter(&b, "chimerad_pool_completed_total", "Tasks completed since start.", float64(m.Pool.Completed))

	if len(m.Shards) > 0 {
		b.WriteString("# HELP chimerad_shard_queue_depth Tasks waiting in a shard's queue.\n# TYPE chimerad_shard_queue_depth gauge\n")
		for _, s := range m.Shards {
			fmt.Fprintf(&b, "chimerad_shard_queue_depth{shard=\"%d\"} %d\n", s.Shard, s.QueueDepth)
		}
		b.WriteString("# HELP chimerad_shard_inflight Tasks executing on a shard.\n# TYPE chimerad_shard_inflight gauge\n")
		for _, s := range m.Shards {
			fmt.Fprintf(&b, "chimerad_shard_inflight{shard=\"%d\"} %d\n", s.Shard, s.InFlight)
		}
	}

	if t := m.Telemetry; t != nil {
		writeHistograms(&b, "chimerad_job_duration_seconds", "Job execution time (excluding queue wait) by job kind.", "kind", t.Jobs)
		writeHistograms(&b, "chimerad_stage_duration_seconds", "Per-request span durations by stage name.", "stage", t.Stages)
		b.WriteString("# HELP chimerad_spool_bytes_total Bytes moved through the CHIMLOG2 spool directory.\n# TYPE chimerad_spool_bytes_total counter\n")
		fmt.Fprintf(&b, "chimerad_spool_bytes_total{direction=\"in\"} %d\n", t.SpoolInBytes)
		fmt.Fprintf(&b, "chimerad_spool_bytes_total{direction=\"out\"} %d\n", t.SpoolOutBytes)
	}

	if len(m.Tenants) > 0 {
		b.WriteString("# HELP chimerad_tenant_jobs_total Jobs submitted by tenant.\n# TYPE chimerad_tenant_jobs_total counter\n")
		for _, tn := range m.Tenants {
			fmt.Fprintf(&b, "chimerad_tenant_jobs_total{tenant=%q} %d\n", tn.Tenant, tn.Jobs)
		}
		b.WriteString("# HELP chimerad_tenant_cache_hit_ratio Whole-program analysis cache hit ratio by tenant.\n# TYPE chimerad_tenant_cache_hit_ratio gauge\n")
		for _, tn := range m.Tenants {
			fmt.Fprintf(&b, "chimerad_tenant_cache_hit_ratio{tenant=%q} %s\n", tn.Tenant, formatFloat(tn.CacheHitRatio))
		}
		b.WriteString("# HELP chimerad_tenant_summary_hit_ratio Summary-store hit ratio by tenant.\n# TYPE chimerad_tenant_summary_hit_ratio gauge\n")
		for _, tn := range m.Tenants {
			fmt.Fprintf(&b, "chimerad_tenant_summary_hit_ratio{tenant=%q} %s\n", tn.Tenant, formatFloat(tn.SummaryHitRatio))
		}
	}
	return []byte(b.String())
}

func writeHistograms(b *strings.Builder, family, help, label string, hs []NamedHistogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", family, help, family)
	for _, nh := range hs {
		s := nh.Histogram
		var cum int64
		for i, bound := range s.BoundsNS {
			cum += s.Counts[i]
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", family, label, nh.Name, formatFloat(float64(bound)/1e9), cum)
		}
		if len(s.Counts) > 0 {
			cum += s.Counts[len(s.Counts)-1]
		}
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", family, label, nh.Name, cum)
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", family, label, nh.Name, formatFloat(float64(s.SumNS)/1e9))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", family, label, nh.Name, s.Count)
	}
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
}

func writeCounter(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, formatFloat(v))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func boolVal(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
