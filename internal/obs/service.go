package obs

import "encoding/json"

// Service metrics: the document chimerad serves at /metrics. Everything
// here is a counter snapshot — per-tenant cache and summary-store
// traffic with hit ratios, job counts by state, and pool occupancy.
// Unlike Report, none of it is pinned byte-stable across runs (a warm
// service is stateful by design), but field order and encoding are
// canonical so diffs within one server lifetime are readable.

// JobCounts is the jobs-by-state section.
type JobCounts struct {
	Queued      int64 `json:"queued"`
	AwaitingLog int64 `json:"awaiting_log"`
	Running     int64 `json:"running"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
}

// PoolCounts is the sharded-pool section.
type PoolCounts struct {
	Shards    int   `json:"shards"`
	Pending   int64 `json:"pending"`
	Completed int64 `json:"completed"`
}

// TenantMetrics is one tenant's slice of the service: job volume, its
// whole-program cache outcomes, and its summary-store view's counters.
// The ratios are the headline numbers ("how warm is this tenant").
type TenantMetrics struct {
	Tenant          string            `json:"tenant"`
	Jobs            int64             `json:"jobs"`
	Cache           CacheStats        `json:"cache"`
	CacheHitRatio   float64           `json:"cache_hit_ratio"`
	SummaryStore    SummaryStoreStats `json:"summary_store"`
	SummaryHitRatio float64           `json:"summary_hit_ratio"`
}

// ServiceMetrics is the full /metrics document. Tenants are sorted by
// name for stable output.
type ServiceMetrics struct {
	Schema   int             `json:"schema"`
	Draining bool            `json:"draining"`
	Jobs     JobCounts       `json:"jobs"`
	Pool     PoolCounts      `json:"pool"`
	Tenants  []TenantMetrics `json:"tenants,omitempty"`
}

// Marshal renders the metrics as stable, indented JSON with a trailing
// newline (the same canonical shape Report.Marshal uses).
func (m *ServiceMetrics) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Ratio returns hits/total, or 0 when there has been no traffic.
func Ratio(hits, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
