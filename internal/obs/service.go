package obs

import "encoding/json"

// Service metrics: the document chimerad serves at /metrics.json (and
// flattens into Prometheus text exposition at /metrics). Everything
// here is a counter snapshot — per-tenant cache and summary-store
// traffic with hit ratios, job counts by state, pool and per-shard
// occupancy, and the latency histogram registry.
// Unlike Report, none of it is pinned byte-stable across runs (a warm
// service is stateful by design), but field order and encoding are
// canonical so diffs within one server lifetime are readable.

// JobCounts is the jobs-by-state section.
type JobCounts struct {
	Queued      int64 `json:"queued"`
	AwaitingLog int64 `json:"awaiting_log"`
	Running     int64 `json:"running"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
}

// PoolCounts is the sharded-pool section.
type PoolCounts struct {
	Shards    int   `json:"shards"`
	Pending   int64 `json:"pending"`
	Completed int64 `json:"completed"`
}

// TenantMetrics is one tenant's slice of the service: job volume, its
// whole-program cache outcomes, and its summary-store view's counters.
// The ratios are the headline numbers ("how warm is this tenant").
type TenantMetrics struct {
	Tenant          string            `json:"tenant"`
	Jobs            int64             `json:"jobs"`
	Cache           CacheStats        `json:"cache"`
	CacheHitRatio   float64           `json:"cache_hit_ratio"`
	SummaryStore    SummaryStoreStats `json:"summary_store"`
	SummaryHitRatio float64           `json:"summary_hit_ratio"`
}

// ShardMetrics is one pool shard's occupancy at scrape time.
type ShardMetrics struct {
	Shard      int   `json:"shard"`
	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`
}

// ServiceMetrics is the full service metrics document (served as JSON
// at /metrics.json and rendered as Prometheus text at /metrics).
// Tenants are sorted by name for stable output.
type ServiceMetrics struct {
	Schema    int                `json:"schema"`
	Draining  bool               `json:"draining"`
	Jobs      JobCounts          `json:"jobs"`
	Pool      PoolCounts         `json:"pool"`
	Shards    []ShardMetrics     `json:"shards,omitempty"`
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
	Tenants   []TenantMetrics    `json:"tenants,omitempty"`
}

// Mask zeroes every load- and wall-dependent value in place — histogram
// state, spool counters, shard gauges, pool pending — keeping the
// structural parts (schema, bucket bounds, family names, job/tenant
// counts for a quiesced engine) so two equivalent runs compare
// byte-equal after masking, the service analogue of Report.MaskWall.
func (m *ServiceMetrics) Mask() {
	m.Pool.Pending = 0
	for i := range m.Shards {
		m.Shards[i].QueueDepth = 0
		m.Shards[i].InFlight = 0
	}
	m.Telemetry.Mask()
}

// Marshal renders the metrics as stable, indented JSON with a trailing
// newline (the same canonical shape Report.Marshal uses).
func (m *ServiceMetrics) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Ratio returns hits/total, or 0 when there has been no traffic.
func Ratio(hits, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
