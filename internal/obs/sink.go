package obs

import "repro/internal/vm"

// EventCounter is a vm.EventSink that tallies the observation event
// stream by kind. Registered alongside a race checker it attributes the
// stream the checker consumed — reads, writes, sync operations — at one
// interface dispatch per batch, like every sink.
type EventCounter struct {
	Reads   int64
	Writes  int64
	Syncs   int64
	Batches int64
}

// Drain implements vm.EventSink.
func (c *EventCounter) Drain(events []vm.Event) {
	c.Batches++
	for i := range events {
		switch events[i].Kind {
		case vm.EventRead:
			c.Reads++
		case vm.EventWrite:
			c.Writes++
		case vm.EventSync:
			c.Syncs++
		}
	}
}

// Events builds the metrics section from the counter plus the VM's own
// emission counters (vm.Counters.EventsEmitted / EventBatches).
func (c *EventCounter) Events(emitted, batches int64) *Events {
	return &Events{
		Emitted: emitted,
		Batches: batches,
		Reads:   c.Reads,
		Writes:  c.Writes,
		Syncs:   c.Syncs,
	}
}
