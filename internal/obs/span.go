package obs

// SpanNode is the serializable form of a span tree: the same shape as
// the live *Span forest but detached from the tracer, safe to marshal
// onto the wire (job results, /debug/traces) and to render with
// PerfettoNodes on the far side. Children keep start order.
type SpanNode struct {
	Name     string      `json:"name"`
	StartNS  int64       `json:"start_ns"`
	EndNS    int64       `json:"end_ns"`
	Attrs    AttrMap     `json:"attrs,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// WallNS returns the node duration (zero for an unended span).
func (n *SpanNode) WallNS() int64 {
	if n == nil || n.EndNS < n.StartNS {
		return 0
	}
	return n.EndNS - n.StartNS
}

// Nodes deep-copies the recorded span forest into detached SpanNodes.
// The copy is taken under the tracer lock, so it is safe even while
// other goroutines are still opening and ending spans; spans recorded
// after the call do not appear.
func (t *Tracer) Nodes() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanNode, 0, len(t.roots))
	for _, r := range t.roots {
		out = append(out, copyNode(r))
	}
	return out
}

func copyNode(sp *Span) *SpanNode {
	n := &SpanNode{
		Name:    sp.Name,
		StartNS: sp.StartNS,
		EndNS:   sp.EndNS,
		Attrs:   append(AttrMap(nil), sp.Attrs...),
	}
	for _, c := range sp.Children {
		n.Children = append(n.Children, copyNode(c))
	}
	return n
}

// Walk visits every node in the forest depth-first, parents before
// children, in start order.
func Walk(roots []*SpanNode, fn func(n *SpanNode)) {
	for _, r := range roots {
		walkNode(r, fn)
	}
}

func walkNode(n *SpanNode, fn func(n *SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		walkNode(c, fn)
	}
}
