package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Telemetry is the service-wide aggregation point chimerad scrapes:
// per-job-kind and per-stage latency histograms plus spool byte
// counters. Job-kind histograms are pre-registered at construction so
// the exposition always carries every kind's family (scrapers and CI
// can assert on them before the first job of that kind runs); stage
// histograms appear lazily as span names are observed, which is still
// deterministic for a fixed job mix because span names are. A nil
// *Telemetry is the disabled registry: every method is an
// allocation-free no-op.
type Telemetry struct {
	mu         sync.Mutex
	jobs       map[string]*Histogram
	stages     map[string]*Histogram
	spoolIn    atomic.Int64
	spoolOut   atomic.Int64
	newBuckets func() []int64
}

// NewTelemetry returns a registry with DefaultLatencyBuckets and one
// pre-registered job histogram per kind.
func NewTelemetry(kinds ...string) *Telemetry {
	t := &Telemetry{
		jobs:       make(map[string]*Histogram, len(kinds)),
		stages:     make(map[string]*Histogram),
		newBuckets: DefaultLatencyBuckets,
	}
	for _, k := range kinds {
		t.jobs[k] = NewHistogram(t.newBuckets())
	}
	return t
}

// ObserveJob records one job execution duration under its kind.
func (t *Telemetry) ObserveJob(kind string, ns int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.jobs[kind]
	if h == nil {
		h = NewHistogram(t.newBuckets())
		t.jobs[kind] = h
	}
	t.mu.Unlock()
	h.Observe(ns)
}

// ObserveStage records one pipeline-stage duration under the stage
// (span) name.
func (t *Telemetry) ObserveStage(stage string, ns int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.stages[stage]
	if h == nil {
		h = NewHistogram(t.newBuckets())
		t.stages[stage] = h
	}
	t.mu.Unlock()
	h.Observe(ns)
}

// AddSpoolBytes bumps the spool I/O counters: in is bytes written to
// the spool directory (log uploads, record output), out is bytes read
// back (replay input, log downloads).
func (t *Telemetry) AddSpoolBytes(in, out int64) {
	if t == nil {
		return
	}
	if in != 0 {
		t.spoolIn.Add(in)
	}
	if out != 0 {
		t.spoolOut.Add(out)
	}
}

// Snapshot copies the registry state, kinds and stages sorted by name.
func (t *Telemetry) Snapshot() *TelemetrySnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	jobs := make([]NamedHistogram, 0, len(t.jobs))
	for k, h := range t.jobs {
		jobs = append(jobs, NamedHistogram{Name: k, Histogram: h.Snapshot()})
	}
	stages := make([]NamedHistogram, 0, len(t.stages))
	for k, h := range t.stages {
		stages = append(stages, NamedHistogram{Name: k, Histogram: h.Snapshot()})
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
	sort.Slice(stages, func(i, j int) bool { return stages[i].Name < stages[j].Name })
	return &TelemetrySnapshot{
		Jobs:          jobs,
		Stages:        stages,
		SpoolInBytes:  t.spoolIn.Load(),
		SpoolOutBytes: t.spoolOut.Load(),
	}
}

// NamedHistogram is one keyed histogram in a snapshot.
type NamedHistogram struct {
	Name      string            `json:"name"`
	Histogram HistogramSnapshot `json:"histogram"`
}

// TelemetrySnapshot is the serialized registry: job-kind histograms,
// stage histograms, and spool byte counters.
type TelemetrySnapshot struct {
	Jobs          []NamedHistogram `json:"jobs"`
	Stages        []NamedHistogram `json:"stages"`
	SpoolInBytes  int64            `json:"spool_in_bytes"`
	SpoolOutBytes int64            `json:"spool_out_bytes"`
}

// Mask zeroes every observed value (histogram counts and sums, spool
// counters) in place while keeping the structure — family names and
// bucket bounds — so masked snapshots from equivalent runs compare
// byte-equal, the way Report.MaskWall pins reports.
func (s *TelemetrySnapshot) Mask() {
	if s == nil {
		return
	}
	for i := range s.Jobs {
		s.Jobs[i].Histogram.Mask()
	}
	for i := range s.Stages {
		s.Stages[i].Histogram.Mask()
	}
	s.SpoolInBytes = 0
	s.SpoolOutBytes = 0
}
