package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := DefaultLatencyBuckets()
	if len(bounds) != 13 || bounds[0] != 1_000 || bounds[12] != 1_000*(1<<24) {
		t.Fatalf("DefaultLatencyBuckets = %v, want 13 bounds 1µs×4^i", bounds)
	}

	h := NewHistogram([]int64{10, 100, 1000})
	// One observation per bucket edge case: below first bound, exactly on
	// a bound (inclusive upper), between bounds, above the last bound.
	for _, ns := range []int64{5, 10, 11, 100, 500, 1000, 1001, 1 << 40} {
		h.Observe(ns)
	}
	s := h.Snapshot()
	wantCounts := []int64{2, 2, 2, 2} // (≤10)=5,10  (≤100)=11,100  (≤1000)=500,1000  (+Inf)=1001,2^40
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("Counts len = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("Count = %d, want 8", s.Count)
	}

	s.Mask()
	for i, c := range s.Counts {
		if c != 0 {
			t.Errorf("masked bucket %d = %d, want 0", i, c)
		}
	}
	if s.SumNS != 0 || s.Count != 0 {
		t.Errorf("masked sum/count = %d/%d, want 0/0", s.SumNS, s.Count)
	}
	if len(s.BoundsNS) != 3 {
		t.Errorf("Mask dropped bucket structure: bounds %v", s.BoundsNS)
	}
}

func TestTelemetrySnapshotSortedAndMasked(t *testing.T) {
	tel := NewTelemetry("record", "analyze")
	tel.ObserveJob("record", 5_000)
	tel.ObserveJob("replay-verify", 7_000) // not pre-registered: lazy family
	tel.ObserveStage("parse", 100)
	tel.ObserveStage("analyze", 200)
	tel.AddSpoolBytes(64, 32)

	s := tel.Snapshot()
	gotJobs := make([]string, len(s.Jobs))
	for i, nh := range s.Jobs {
		gotJobs[i] = nh.Name
	}
	if strings.Join(gotJobs, ",") != "analyze,record,replay-verify" {
		t.Errorf("job families = %v, want sorted analyze,record,replay-verify", gotJobs)
	}
	if s.Stages[0].Name != "analyze" || s.Stages[1].Name != "parse" {
		t.Errorf("stage families = %v/%v, want analyze,parse", s.Stages[0].Name, s.Stages[1].Name)
	}
	if s.SpoolInBytes != 64 || s.SpoolOutBytes != 32 {
		t.Errorf("spool counters = %d/%d, want 64/32", s.SpoolInBytes, s.SpoolOutBytes)
	}

	// Masked snapshots from two registries with the same families must be
	// byte-equal regardless of what each observed.
	tel2 := NewTelemetry("record", "analyze")
	tel2.ObserveJob("record", 999_999_999)
	tel2.ObserveJob("replay-verify", 1)
	tel2.ObserveStage("parse", 42)
	tel2.ObserveStage("analyze", 4_200)
	tel2.AddSpoolBytes(7, 7)
	s2 := tel2.Snapshot()
	s.Mask()
	s2.Mask()
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(s2)
	if !bytes.Equal(a, b) {
		t.Errorf("masked snapshots differ:\n%s\n%s", a, b)
	}
}

func TestLoggerFieldOrderLevelsAndClock(t *testing.T) {
	var buf bytes.Buffer
	clock := func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	lg := NewLoggerWithClock(&buf, LevelInfo, clock)

	lg.Debug("dropped") // below minimum
	lg.Info("job_done",
		Str("job", "j000001"),
		Int("run_ns", 1234),
		RawJSON("stages", []byte(`{"parse":1}`)),
		Str("quote", `a"b`),
	)
	want := `{"ts":"2026-08-08T12:00:00Z","level":"info","event":"job_done","job":"j000001","run_ns":1234,"stages":{"parse":1},"quote":"a\"b"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("log line:\n got %q\nwant %q", got, want)
	}
	if !json.Valid(bytes.TrimSpace(buf.Bytes())) {
		t.Errorf("log line is not valid JSON: %s", buf.String())
	}

	buf.Reset()
	off := NewLogger(&buf, LevelOff)
	off.Error("never")
	if buf.Len() != 0 {
		t.Errorf("LevelOff logger wrote %q", buf.String())
	}
	if off.Enabled(LevelError) {
		t.Error("LevelOff logger reports Enabled(error)")
	}

	for in, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError, "off": LevelOff} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
}

// TestNilObservabilityIsAllocFree pins the disabled contract for every
// new observability type: a nil receiver must cost zero allocations on
// the hot paths the engine calls unconditionally.
func TestNilObservabilityIsAllocFree(t *testing.T) {
	var h *Histogram
	var tel *Telemetry
	var lg *Logger
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(123)
		tel.ObserveJob("analyze", 1)
		tel.ObserveStage("parse", 1)
		tel.AddSpoolBytes(1, 1)
		lg.Info("event", Str("k", "v"))
		sp := tr.Start("stage")
		sp.SetAttr("k", 1)
		sp.End()
	}); n != 0 {
		t.Errorf("nil observability allocated %.1f per op, want 0", n)
	}
}

func TestRatioZeroTraffic(t *testing.T) {
	if r := Ratio(0, 0); r != 0 {
		t.Errorf("Ratio(0,0) = %v, want 0", r)
	}
	if r := Ratio(3, 4); r != 0.75 {
		t.Errorf("Ratio(3,4) = %v, want 0.75", r)
	}
}

func TestPrometheusExposition(t *testing.T) {
	tel := NewTelemetry("analyze")
	tel.ObserveJob("analyze", 3_000) // second bucket (1µs < 3µs ≤ 4µs)
	tel.ObserveJob("analyze", 1<<40) // +Inf bucket
	tel.AddSpoolBytes(10, 20)
	m := &ServiceMetrics{
		Schema:   2,
		Draining: true,
		Jobs:     JobCounts{Done: 2},
		Pool:     PoolCounts{Shards: 2, Completed: 2},
		Shards: []ShardMetrics{
			{Shard: 0, QueueDepth: 1, InFlight: 1},
			{Shard: 1},
		},
		Telemetry: tel.Snapshot(),
		Tenants: []TenantMetrics{
			{Tenant: "acme", Jobs: 2, CacheHitRatio: 0.5},
		},
	}
	text := string(m.Prometheus())

	for _, want := range []string{
		"chimerad_draining 1\n",
		`chimerad_jobs{state="done"} 2`,
		`chimerad_shard_queue_depth{shard="0"} 1`,
		`chimerad_job_duration_seconds_bucket{kind="analyze",le="1e-06"} 0`,
		`chimerad_job_duration_seconds_bucket{kind="analyze",le="4e-06"} 1`,
		// Buckets are cumulative: every later finite bound still counts the
		// 3µs observation, and +Inf counts both.
		`chimerad_job_duration_seconds_bucket{kind="analyze",le="16.777216"} 1`,
		`chimerad_job_duration_seconds_bucket{kind="analyze",le="+Inf"} 2`,
		`chimerad_job_duration_seconds_count{kind="analyze"} 2`,
		`chimerad_spool_bytes_total{direction="in"} 10`,
		`chimerad_spool_bytes_total{direction="out"} 20`,
		`chimerad_tenant_cache_hit_ratio{tenant="acme"} 0.5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, text)
		}
	}

	// Every non-comment line must be "name{labels} value" with a numeric
	// value, and a second render must be byte-identical.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("line %q: bad value: %v", line, err)
		}
	}
	if again := string(m.Prometheus()); again != text {
		t.Error("two renders of one snapshot differ")
	}
}
