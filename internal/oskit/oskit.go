// Package oskit implements the simulated operating system and devices the
// MiniC programs run against: files, a network with timed connection
// arrivals, a clock, and a pseudo-random source.
//
// This substitutes for the paper's patched Linux kernel (paper §6.1): the
// kernel's role in Chimera is to be the boundary at which nondeterministic
// input enters the program, so the simulation only needs to produce
// well-defined, timed inputs — which devices deliver what data when. The
// recorder logs exactly what crosses this boundary.
package oskit

import "fmt"

// World is one configured simulated environment. A World is deterministic:
// the same World contents produce the same device behavior, so run-to-run
// nondeterminism comes only from thread scheduling (and from Rnd, which is
// deliberately an unrecorded-until-logged input source).
type World struct {
	files map[int64][]int64 // path id -> contents (words)

	// Network: a listener socket accepts connections in arrival order.
	conns       []*Conn
	nextAccept  int
	connByID    map[int64]*Conn
	acceptGrace int64

	openFiles map[int64]*openFile
	nextFD    int64

	rndState uint64

	// ReadLatency and friends model device service times in cycles.
	ReadLatency  int64
	WriteLatency int64
	NetLatency   int64

	// writeLog captures write() data per fd, for assertions in tests.
	writeLog map[int64][]int64
}

// Conn is one simulated inbound network connection. Data is pipelined: the
// k-th recv's payload becomes ready at Arrival + (k+1)*NetLatency
// regardless of when the program asks, so a program that does extra work
// between recvs (e.g. recording overhead) overlaps it with the transfer —
// the effect behind the paper's "recording cost overlaps with I/O wait".
type Conn struct {
	ID      int64
	Arrival int64   // absolute simulated time the connection arrives
	Request []int64 // request payload readable via recv
	readOff int
	readyAt int64   // pipelined readiness cursor
	Sent    []int64 // words the program sent back
}

type openFile struct {
	path    int64
	off     int
	readyAt int64 // pipelined readahead cursor
}

// NewWorld returns an empty world with default device latencies.
func NewWorld(rndSeed uint64) *World {
	return &World{
		files:        make(map[int64][]int64),
		connByID:     make(map[int64]*Conn),
		openFiles:    make(map[int64]*openFile),
		nextFD:       3, // 0..2 reserved, as ever
		rndState:     rndSeed*2 + 1,
		ReadLatency:  600,
		WriteLatency: 400,
		NetLatency:   3000,
		writeLog:     make(map[int64][]int64),
	}
}

// AddFile installs a file with the given path id and contents.
func (w *World) AddFile(path int64, data []int64) { w.files[path] = data }

// FileWords returns the contents of a file (nil if absent).
func (w *World) FileWords(path int64) []int64 { return w.files[path] }

// AddConn schedules an inbound connection at the given arrival time with
// the given request payload; it returns the connection id the program will
// see from accept().
func (w *World) AddConn(arrival int64, request []int64) int64 {
	id := int64(1000 + len(w.conns))
	c := &Conn{ID: id, Arrival: arrival, Request: request}
	w.conns = append(w.conns, c)
	w.connByID[id] = c
	return id
}

// Conns returns all scheduled connections.
func (w *World) Conns() []*Conn { return w.conns }

// Written returns the words written to fd via write().
func (w *World) Written(fd int64) []int64 { return w.writeLog[fd] }

// Reset rewinds per-run device state (file offsets, accept cursor,
// connection read cursors, write logs) so the same World can serve multiple
// runs identically. The rnd stream is reseeded.
func (w *World) Reset(rndSeed uint64) {
	w.nextAccept = 0
	w.openFiles = make(map[int64]*openFile)
	w.nextFD = 3
	w.rndState = rndSeed*2 + 1
	w.writeLog = make(map[int64][]int64)
	for _, c := range w.conns {
		c.readOff = 0
		c.readyAt = 0
		c.Sent = nil
	}
}

// ---------------------------------------------------------------------------
// vm.OS implementation

// Open implements vm.OS.
func (w *World) Open(path int64, now int64) (int64, int64) {
	if _, ok := w.files[path]; !ok {
		return -1, now
	}
	fd := w.nextFD
	w.nextFD++
	w.openFiles[fd] = &openFile{path: path, readyAt: now + w.ReadLatency/4}
	return fd, now + w.ReadLatency/4
}

// Close implements vm.OS.
func (w *World) Close(fd int64) { delete(w.openFiles, fd) }

// Read implements vm.OS. Sequential reads are pipelined (readahead): each
// read's data becomes ready a fixed latency after the previous one was,
// independent of when the caller asks.
func (w *World) Read(fd, n, now int64) ([]int64, int64) {
	f, ok := w.openFiles[fd]
	if !ok || n <= 0 {
		return nil, now
	}
	data := w.files[f.path]
	if f.off >= len(data) {
		return nil, max64(now, f.readyAt) // EOF
	}
	end := f.off + int(n)
	if end > len(data) {
		end = len(data)
	}
	out := data[f.off:end]
	f.off = end
	f.readyAt += w.ReadLatency
	return out, max64(now, f.readyAt)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Write implements vm.OS.
func (w *World) Write(fd int64, data []int64, now int64) (int64, int64) {
	w.writeLog[fd] = append(w.writeLog[fd], data...)
	return int64(len(data)), now + w.WriteLatency
}

// Accept implements vm.OS. Connections are handed out in arrival order; the
// caller waits until the next one arrives. When all connections have been
// served, accept returns -1 ("listener closed").
func (w *World) Accept(lsock int64, now int64) (int64, int64) {
	if w.nextAccept >= len(w.conns) {
		return -1, now
	}
	c := w.conns[w.nextAccept]
	w.nextAccept++
	ready := c.Arrival
	if ready < now {
		ready = now
	}
	return c.ID, ready + w.acceptGrace
}

// Recv implements vm.OS.
func (w *World) Recv(conn, n, now int64) ([]int64, int64) {
	c, ok := w.connByID[conn]
	if !ok || n <= 0 {
		return nil, now
	}
	if c.readOff >= len(c.Request) {
		return nil, now // connection drained
	}
	end := c.readOff + int(n)
	if end > len(c.Request) {
		end = len(c.Request)
	}
	out := c.Request[c.readOff:end]
	c.readOff = end
	if c.readyAt == 0 {
		c.readyAt = c.Arrival
	}
	c.readyAt += w.NetLatency
	return out, max64(now, c.readyAt)
}

// Send implements vm.OS.
func (w *World) Send(conn int64, data []int64, now int64) (int64, int64) {
	c, ok := w.connByID[conn]
	if !ok {
		return -1, now
	}
	c.Sent = append(c.Sent, data...)
	return int64(len(data)), now + w.NetLatency/2
}

// Now implements vm.OS: the wall clock is the caller's own simulated time,
// which depends on scheduling — a genuinely nondeterministic input.
func (w *World) Now(now int64) int64 { return now }

// Rnd implements vm.OS with an xorshift PRNG stream shared by all threads,
// so the values a given thread sees depend on scheduling.
func (w *World) Rnd(n int64) int64 {
	w.rndState ^= w.rndState << 13
	w.rndState ^= w.rndState >> 7
	w.rndState ^= w.rndState << 17
	if n <= 0 {
		return int64(w.rndState >> 1)
	}
	return int64(w.rndState>>1) % n
}

// WordsOf converts a byte string to file words (one byte per word, as MiniC
// strings are word arrays).
func WordsOf(s string) []int64 {
	out := make([]int64, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = int64(s[i])
	}
	return out
}

// SeqWords returns n words 0..n-1 scrambled by a multiplicative hash; a
// convenient deterministic "file contents" generator for workloads.
func SeqWords(n int, seed uint64) []int64 {
	out := make([]int64, n)
	x := seed*6364136223846793005 + 1442695040888963407
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = int64((x >> 33) & 0x7fffffff)
	}
	return out
}

// String renders a brief world summary.
func (w *World) String() string {
	return fmt.Sprintf("world{files:%d conns:%d}", len(w.files), len(w.conns))
}
