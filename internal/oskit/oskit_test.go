package oskit

import "testing"

func TestFileReadSequential(t *testing.T) {
	w := NewWorld(1)
	w.AddFile(5, []int64{1, 2, 3, 4, 5})
	fd, _ := w.Open(5, 0)
	if fd < 3 {
		t.Fatalf("fd %d", fd)
	}
	d1, r1 := w.Read(fd, 2, 100)
	if len(d1) != 2 || d1[0] != 1 || r1 <= 100 {
		t.Fatalf("read1 %v @%d", d1, r1)
	}
	d2, _ := w.Read(fd, 10, 200)
	if len(d2) != 3 || d2[2] != 5 {
		t.Fatalf("read2 %v", d2)
	}
	d3, _ := w.Read(fd, 10, 300)
	if len(d3) != 0 {
		t.Fatalf("expected EOF, got %v", d3)
	}
}

func TestReadPipelining(t *testing.T) {
	// A slow reader should find later chunks already buffered: the ready
	// time tracks the device cursor, not the call time.
	w := NewWorld(1)
	data := make([]int64, 100)
	w.AddFile(7, data)
	fd, _ := w.Open(7, 0)
	_, r1 := w.Read(fd, 10, 0)
	// Caller dawdles far past the device cursor.
	_, r2 := w.Read(fd, 10, r1+100*w.ReadLatency)
	if r2 != r1+100*w.ReadLatency {
		t.Errorf("slow reader should not wait: ready %d, call at %d", r2, r1+100*w.ReadLatency)
	}
}

func TestOpenMissingFile(t *testing.T) {
	w := NewWorld(1)
	fd, _ := w.Open(42, 0)
	if fd != -1 {
		t.Fatalf("open of missing file: %d", fd)
	}
}

func TestConnLifecycle(t *testing.T) {
	w := NewWorld(1)
	id := w.AddConn(1000, []int64{10, 20, 30})
	conn, ready := w.Accept(0, 0)
	if conn != id {
		t.Fatalf("accept %d, want %d", conn, id)
	}
	if ready < 1000 {
		t.Fatalf("accept before arrival: %d", ready)
	}
	d, _ := w.Recv(conn, 2, ready)
	if len(d) != 2 || d[0] != 10 {
		t.Fatalf("recv %v", d)
	}
	n, _ := w.Send(conn, []int64{7, 8}, ready)
	if n != 2 {
		t.Fatalf("send %d", n)
	}
	if got := w.Conns()[0].Sent; len(got) != 2 || got[1] != 8 {
		t.Fatalf("sent %v", got)
	}
	// Listener closes after the last connection.
	conn2, _ := w.Accept(0, 2000)
	if conn2 != -1 {
		t.Fatalf("expected -1, got %d", conn2)
	}
}

func TestRecvPipelining(t *testing.T) {
	w := NewWorld(1)
	w.AddConn(100, make([]int64, 64))
	conn, _ := w.Accept(0, 0)
	_, r1 := w.Recv(conn, 16, 0)
	if r1 != 100+w.NetLatency {
		t.Fatalf("first chunk ready %d", r1)
	}
	// A caller arriving late gets buffered data immediately.
	late := r1 + 50*w.NetLatency
	_, r2 := w.Recv(conn, 16, late)
	if r2 != late {
		t.Errorf("late recv should not wait: %d vs %d", r2, late)
	}
}

func TestWriteLog(t *testing.T) {
	w := NewWorld(1)
	w.AddFile(2, nil)
	fd, _ := w.Open(2, 0)
	w.Write(fd, []int64{1, 2}, 0)
	w.Write(fd, []int64{3}, 0)
	if got := w.Written(fd); len(got) != 3 || got[2] != 3 {
		t.Fatalf("written %v", got)
	}
}

func TestResetReproducibility(t *testing.T) {
	w := NewWorld(9)
	w.AddFile(5, []int64{1, 2, 3})
	w.AddConn(100, []int64{4, 5})

	runOnce := func() []int64 {
		fd, _ := w.Open(5, 0)
		d, _ := w.Read(fd, 3, 0)
		conn, _ := w.Accept(0, 0)
		d2, _ := w.Recv(conn, 2, 0)
		r := append(append([]int64{}, d...), d2...)
		r = append(r, w.Rnd(100))
		return r
	}
	a := runOnce()
	w.Reset(9)
	b := runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reset not reproducible at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRndBounded(t *testing.T) {
	w := NewWorld(3)
	for i := 0; i < 1000; i++ {
		v := w.Rnd(17)
		if v < 0 || v >= 17 {
			t.Fatalf("rnd out of range: %d", v)
		}
	}
}

func TestWordsOfAndSeqWords(t *testing.T) {
	ws := WordsOf("ab")
	if len(ws) != 2 || ws[0] != 'a' || ws[1] != 'b' {
		t.Fatalf("WordsOf %v", ws)
	}
	s1 := SeqWords(16, 5)
	s2 := SeqWords(16, 5)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("SeqWords not deterministic")
		}
		if s1[i] < 0 {
			t.Fatalf("negative word")
		}
	}
}
