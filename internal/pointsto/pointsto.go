// Package pointsto implements the two flow-insensitive, context-insensitive
// pointer analyses RELAY is built on (paper §3.1, §6.2):
//
//   - Andersen's inclusion-based analysis [Andersen 1994], used to resolve
//     function pointers (and thus the call graph and spawn targets), with
//     on-the-fly call-graph construction for indirect calls.
//   - Steensgaard's unification-based analysis [Steensgaard 1996], used to
//     partition lvalues into alias classes for the lockset race check.
//
// Both are deliberately conservative in the same ways as the original
// tools: array elements are collapsed to their array object (index-
// insensitive), struct fields are field-based (one abstract object per
// (struct, field) pair, instance-insensitive), heap objects are per
// allocation site, and pointer arithmetic is assumed to stay within the
// object (paper §3.2, second unsoundness source). This imprecision is the
// raw material Chimera's optimizations work against: e.g. the collapse of
// rank[i] and rank[j] into one object is exactly what produces the false
// self-races that the symbolic bounds analysis (paper §5) then handles with
// loop-locks.
package pointsto

import (
	"fmt"
	"sort"

	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
)

// ObjKind classifies abstract memory objects.
type ObjKind int

// The abstract object kinds.
const (
	OGlobal ObjKind = iota
	OLocal          // a (heapified) local variable
	OParam
	OHeap  // a malloc site
	OField // a field-based struct field object
	OFunc  // a function (for function-pointer values)
	OStr   // a string literal
)

// ObjID indexes abstract objects within an Analysis.
type ObjID int

// Obj is one abstract memory object.
type Obj struct {
	ID   ObjID
	Kind ObjKind
	Name string

	Var    *types.Object   // OGlobal, OLocal, OParam
	Fn     *types.FuncInfo // OFunc
	Site   ast.NodeID      // OHeap: the malloc call node
	Struct string          // OField
	Field  string          // OField
	Str    string          // OStr: the literal itself
}

// objset is a small sorted set of ObjIDs.
type objset map[ObjID]struct{}

func (s objset) add(o ObjID) bool {
	if _, ok := s[o]; ok {
		return false
	}
	s[o] = struct{}{}
	return true
}

func (s objset) sorted() []ObjID {
	out := make([]ObjID, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// slot is a constraint variable: something that holds pointer values. Every
// object's contents is a slot; expression temporaries and function returns
// get their own slots.
type slot int

// Analysis is the result of running both pointer analyses over a program.
type Analysis struct {
	Info *types.Info

	Objects []*Obj

	objOfVar   map[*types.Object]ObjID
	objOfField map[[2]string]ObjID
	objOfHeap  map[ast.NodeID]ObjID
	objOfFunc  map[*types.FuncInfo]ObjID
	objOfStr   map[string]ObjID

	// contents[o] is the slot holding what object o stores.
	contents []slot

	// pts[s] is the Andersen points-to set of slot s.
	pts []objset

	// subset edges: succs[s] = slots t with pts[s] ⊆ pts[t].
	succs [][]slot

	// complex constraints pending on each slot.
	loads  map[slot][]slot // d with *s ⊆ d
	stores map[slot][]slot // v with v ⊆ *s

	// indirect call sites discovered during generation.
	icalls []*icall

	// lvalSlot memoizes, per lvalue expression node, the slot whose
	// points-to set is the set of objects the lvalue denotes.
	lvalSlot map[ast.NodeID]slot

	// callRet[f] is the slot holding f's return value.
	callRet map[*types.FuncInfo]slot

	// CallTargets maps indirect Call nodes to resolved targets.
	CallTargets map[ast.NodeID][]*types.FuncInfo

	// SpawnTargets maps spawn Call nodes to resolved thread entry points.
	SpawnTargets map[ast.NodeID][]*types.FuncInfo

	// Steensgaard union-find over objects.
	steens *steensgaard

	worklist []slot
	inWork   map[slot]bool
}

// Analyze runs both pointer analyses.
func Analyze(info *types.Info) *Analysis {
	a := &Analysis{
		Info:         info,
		objOfVar:     make(map[*types.Object]ObjID),
		objOfField:   make(map[[2]string]ObjID),
		objOfHeap:    make(map[ast.NodeID]ObjID),
		objOfFunc:    make(map[*types.FuncInfo]ObjID),
		objOfStr:     make(map[string]ObjID),
		loads:        make(map[slot][]slot),
		stores:       make(map[slot][]slot),
		lvalSlot:     make(map[ast.NodeID]slot),
		callRet:      make(map[*types.FuncInfo]slot),
		CallTargets:  make(map[ast.NodeID][]*types.FuncInfo),
		SpawnTargets: make(map[ast.NodeID][]*types.FuncInfo),
		inWork:       make(map[slot]bool),
	}
	a.generate()
	a.solve()
	a.resolveCallMaps()
	a.steens = runSteensgaard(a)
	return a
}

// ---------------------------------------------------------------------------
// Object and slot management

func (a *Analysis) newSlot() slot {
	s := slot(len(a.pts))
	a.pts = append(a.pts, make(objset))
	a.succs = append(a.succs, nil)
	return s
}

func (a *Analysis) newObj(o *Obj) ObjID {
	o.ID = ObjID(len(a.Objects))
	a.Objects = append(a.Objects, o)
	a.contents = append(a.contents, a.newSlot())
	return o.ID
}

// Contents returns the slot holding what object o stores.
func (a *Analysis) Contents(o ObjID) slot { return a.contents[o] }

// VarObj returns the abstract object for a variable, creating it on first
// use.
func (a *Analysis) VarObj(v *types.Object) ObjID {
	if id, ok := a.objOfVar[v]; ok {
		return id
	}
	kind := OGlobal
	name := v.Name
	switch v.Kind {
	case types.ObjLocal:
		kind = OLocal
		name = v.Func.Name + "." + v.Name
	case types.ObjParam:
		kind = OParam
		name = v.Func.Name + "." + v.Name
	}
	id := a.newObj(&Obj{Kind: kind, Name: name, Var: v})
	a.objOfVar[v] = id
	return id
}

// FieldObj returns the field-based object for struct.field.
func (a *Analysis) FieldObj(structName, field string) ObjID {
	key := [2]string{structName, field}
	if id, ok := a.objOfField[key]; ok {
		return id
	}
	id := a.newObj(&Obj{Kind: OField, Name: structName + "." + field, Struct: structName, Field: field})
	a.objOfField[key] = id
	return id
}

// HeapObj returns the allocation-site object for a malloc call.
func (a *Analysis) HeapObj(site ast.NodeID) ObjID {
	if id, ok := a.objOfHeap[site]; ok {
		return id
	}
	id := a.newObj(&Obj{Kind: OHeap, Name: fmt.Sprintf("heap@%d", site), Site: site})
	a.objOfHeap[site] = id
	return id
}

// FuncObj returns the function object for fn.
func (a *Analysis) FuncObj(fn *types.FuncInfo) ObjID {
	if id, ok := a.objOfFunc[fn]; ok {
		return id
	}
	id := a.newObj(&Obj{Kind: OFunc, Name: fn.Name, Fn: fn})
	a.objOfFunc[fn] = id
	return id
}

// StrObj returns the object for a string literal.
func (a *Analysis) StrObj(s string) ObjID {
	if id, ok := a.objOfStr[s]; ok {
		return id
	}
	id := a.newObj(&Obj{Kind: OStr, Name: fmt.Sprintf("str%d", len(a.objOfStr)), Str: s})
	a.objOfStr[s] = id
	return id
}

// retSlot returns the slot for fn's return value.
func (a *Analysis) retSlot(fn *types.FuncInfo) slot {
	if s, ok := a.callRet[fn]; ok {
		return s
	}
	s := a.newSlot()
	a.callRet[fn] = s
	return s
}

// ---------------------------------------------------------------------------
// Constraint generation

type icall struct {
	node    ast.NodeID
	funSlot slot
	args    []slot
	ret     slot
	isSpawn bool
	bound   map[*types.FuncInfo]bool
}

func (a *Analysis) generate() {
	// Seed function objects so even unreferenced functions exist.
	for _, fn := range a.Info.FuncList {
		a.FuncObj(fn)
	}
	for _, g := range a.Info.Globals {
		a.VarObj(g)
		if vd, ok := g.Decl.(*ast.VarDecl); ok && vd.Init != nil {
			v := a.genExpr(vd.Init, nil)
			a.copyEdge(v, a.contents[a.VarObj(g)])
		}
	}
	for _, fn := range a.Info.FuncList {
		a.genFunc(fn)
	}
}

func (a *Analysis) genFunc(fn *types.FuncInfo) {
	for _, p := range fn.Params {
		a.VarObj(p)
	}
	a.genStmt(fn.Decl.Body, fn)
}

func (a *Analysis) genStmt(s ast.Stmt, fn *types.FuncInfo) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			a.genStmt(st, fn)
		}
	case *ast.DeclStmt:
		o := a.Info.Objects[s.Decl.ID()]
		if o == nil {
			return
		}
		obj := a.VarObj(o)
		if s.Decl.Init != nil {
			v := a.genExpr(s.Decl.Init, fn)
			a.copyEdge(v, a.contents[obj])
		}
	case *ast.AssignStmt:
		addr := a.lvalAddr(s.LHS, fn)
		v := a.genExpr(s.RHS, fn)
		if s.Op != token.ASSIGN {
			// Compound assignment keeps pointers within the object.
			old := a.newSlot()
			a.loadEdge(addr, old)
			a.copyEdge(old, v)
		}
		a.storeEdge(v, addr)
	case *ast.IncDecStmt:
		// p++ keeps p pointing at the same object; nothing flows.
		a.genExpr(s.X, fn)
	case *ast.ExprStmt:
		a.genExpr(s.X, fn)
	case *ast.IfStmt:
		a.genExpr(s.CondE, fn)
		a.genStmt(s.Then, fn)
		if s.Else != nil {
			a.genStmt(s.Else, fn)
		}
	case *ast.WhileStmt:
		a.genExpr(s.CondE, fn)
		a.genStmt(s.Body, fn)
	case *ast.ForStmt:
		if s.Init != nil {
			a.genStmt(s.Init, fn)
		}
		if s.CondE != nil {
			a.genExpr(s.CondE, fn)
		}
		if s.Post != nil {
			a.genStmt(s.Post, fn)
		}
		a.genStmt(s.Body, fn)
	case *ast.ReturnStmt:
		if s.X != nil && fn != nil {
			v := a.genExpr(s.X, fn)
			a.copyEdge(v, a.retSlot(fn))
		}
	case *ast.BreakStmt, *ast.ContinueStmt:
	}
}

// lvalAddr returns a slot whose points-to set contains the abstract objects
// the lvalue e may denote; it memoizes per node for later queries.
func (a *Analysis) lvalAddr(e ast.Expr, fn *types.FuncInfo) slot {
	if s, ok := a.lvalSlot[e.ID()]; ok {
		return s
	}
	s := a.lvalAddrUncached(e, fn)
	a.lvalSlot[e.ID()] = s
	return s
}

func (a *Analysis) lvalAddrUncached(e ast.Expr, fn *types.FuncInfo) slot {
	switch e := e.(type) {
	case *ast.Ident:
		o := a.Info.Uses[e.ID()]
		s := a.newSlot()
		if o == nil {
			return s
		}
		switch o.Kind {
		case types.ObjGlobal, types.ObjLocal, types.ObjParam:
			a.addObj(s, a.VarObj(o))
		case types.ObjFunc:
			a.addObj(s, a.FuncObj(o.Func))
		}
		return s

	case *ast.Unary:
		if e.Op == token.STAR {
			// The address of *p is the value of p.
			return a.genExpr(e.X, fn)
		}
		return a.newSlot()

	case *ast.Index:
		// Element collapse: &a[i] denotes the array object itself.
		return a.baseObjects(e.X, fn)

	case *ast.Field:
		if e.Arrow {
			// p->f: field-based object; also evaluate p for its effects.
			a.genExpr(e.X, fn)
			xt := a.Info.Types[e.X.ID()]
			s := a.newSlot()
			if xt != nil && xt.Kind == types.Ptr && xt.Elem.Kind == types.StructT {
				a.addObj(s, a.FieldObj(xt.Elem.Struct.Name, e.Name))
			}
			return s
		}
		// v.f where v is a struct lvalue: if the struct is a plain
		// variable, still use the field-based object for uniformity.
		a.lvalAddr(e.X, fn)
		xt := a.Info.Types[e.X.ID()]
		s := a.newSlot()
		if xt != nil && xt.Kind == types.StructT {
			a.addObj(s, a.FieldObj(xt.Struct.Name, e.Name))
		}
		return s
	}
	// Not an lvalue; evaluate for effects.
	return a.genExpr(e, fn)
}

// baseObjects returns a slot holding the objects that indexing base e lands
// in: the array object for array lvalues, or what a pointer points to.
func (a *Analysis) baseObjects(e ast.Expr, fn *types.FuncInfo) slot {
	t := a.Info.Types[e.ID()]
	if t != nil && t.Kind == types.Array {
		return a.lvalAddr(e, fn)
	}
	// Pointer: the objects are the pointer's points-to set, i.e. its value.
	return a.genExpr(e, fn)
}

// genExpr generates constraints for e and returns the slot holding its
// (possible) pointer value.
func (a *Analysis) genExpr(e ast.Expr, fn *types.FuncInfo) slot {
	switch e := e.(type) {
	case *ast.IntLit, *ast.Sizeof:
		return a.newSlot()

	case *ast.StringLit:
		s := a.newSlot()
		a.addObj(s, a.StrObj(e.Value))
		return s

	case *ast.Ident:
		o := a.Info.Uses[e.ID()]
		s := a.newSlot()
		if o == nil {
			return s
		}
		switch o.Kind {
		case types.ObjFunc:
			a.addObj(s, a.FuncObj(o.Func))
			return s
		case types.ObjGlobal, types.ObjLocal, types.ObjParam:
			if o.Type.Kind == types.Array || o.Type.Kind == types.StructT {
				// Decay: the value is the object's address.
				a.addObj(s, a.VarObj(o))
				return s
			}
			a.copyEdge(a.contents[a.VarObj(o)], s)
			return s
		}
		return s

	case *ast.Unary:
		switch e.Op {
		case token.AMP:
			return a.lvalAddr(e.X, fn)
		case token.STAR:
			addr := a.genExpr(e.X, fn)
			if _, ok := a.lvalSlot[e.ID()]; !ok {
				a.lvalSlot[e.ID()] = addr // memoize for ObjectsOf queries
			}
			t := a.Info.Types[e.ID()]
			if t != nil && (t.Kind == types.Array || t.Kind == types.StructT) {
				return addr
			}
			s := a.newSlot()
			a.loadEdge(addr, s)
			return s
		default:
			a.genExpr(e.X, fn)
			return a.newSlot()
		}

	case *ast.Binary:
		x := a.genExpr(e.X, fn)
		y := a.genExpr(e.Y, fn)
		s := a.newSlot()
		// Pointer arithmetic: the result may point wherever either side
		// points (paper §3.2: arithmetic stays within the object).
		if e.Op == token.PLUS || e.Op == token.MINUS {
			a.copyEdge(x, s)
			a.copyEdge(y, s)
		}
		return s

	case *ast.Cond:
		a.genExpr(e.CondE, fn)
		x := a.genExpr(e.Then, fn)
		y := a.genExpr(e.Else, fn)
		s := a.newSlot()
		a.copyEdge(x, s)
		a.copyEdge(y, s)
		return s

	case *ast.Index:
		addr := a.lvalAddr(e, fn)
		a.genExpr(e.Index, fn)
		t := a.Info.Types[e.ID()]
		if t != nil && (t.Kind == types.Array || t.Kind == types.StructT) {
			return addr
		}
		s := a.newSlot()
		a.loadEdge(addr, s)
		return s

	case *ast.Field:
		addr := a.lvalAddr(e, fn)
		t := a.Info.Types[e.ID()]
		if t != nil && (t.Kind == types.Array || t.Kind == types.StructT) {
			return addr
		}
		s := a.newSlot()
		a.loadEdge(addr, s)
		return s

	case *ast.Call:
		return a.genCall(e, fn)
	}
	return a.newSlot()
}

func (a *Analysis) genCall(e *ast.Call, fn *types.FuncInfo) slot {
	var args []slot
	for _, arg := range e.Args {
		args = append(args, a.genExpr(arg, fn))
	}

	if target := a.Info.CallTargets[e.ID()]; target != nil {
		if target.Kind == types.ObjBuiltin {
			return a.genBuiltin(e, target.Builtin, args)
		}
		callee := a.Info.Funcs[target.Name]
		a.bindCall(callee, args)
		return a.retSlot(callee)
	}

	// Indirect call: resolve on the fly during solving.
	funSlot := a.genExpr(e.Fun, fn)
	ret := a.newSlot()
	a.icalls = append(a.icalls, &icall{
		node: e.ID(), funSlot: funSlot, args: args, ret: ret,
		bound: make(map[*types.FuncInfo]bool),
	})
	return ret
}

func (a *Analysis) genBuiltin(e *ast.Call, op types.BuiltinOp, args []slot) slot {
	switch op {
	case types.BMalloc:
		s := a.newSlot()
		a.addObj(s, a.HeapObj(e.ID()))
		return s
	case types.BSpawn:
		// The spawned function receives args[1] as its parameter.
		a.icalls = append(a.icalls, &icall{
			node: e.ID(), funSlot: args[0], args: []slot{args[1]},
			ret: a.newSlot(), isSpawn: true,
			bound: make(map[*types.FuncInfo]bool),
		})
		return a.newSlot()
	}
	return a.newSlot()
}

// bindCall wires argument and return flow for a resolved callee.
func (a *Analysis) bindCall(callee *types.FuncInfo, args []slot) {
	for i, p := range callee.Params {
		if i < len(args) {
			a.copyEdge(args[i], a.contents[a.VarObj(p)])
		}
	}
}

// ---------------------------------------------------------------------------
// Andersen solver

func (a *Analysis) addObj(s slot, o ObjID) {
	if a.pts[s].add(o) {
		a.enqueue(s)
	}
}

func (a *Analysis) copyEdge(from, to slot) {
	if from == to {
		return
	}
	a.succs[from] = append(a.succs[from], to)
	if len(a.pts[from]) > 0 {
		a.enqueue(from)
	}
}

func (a *Analysis) loadEdge(addr, dst slot) {
	a.loads[addr] = append(a.loads[addr], dst)
	if len(a.pts[addr]) > 0 {
		a.enqueue(addr)
	}
}

func (a *Analysis) storeEdge(val, addr slot) {
	a.stores[addr] = append(a.stores[addr], val)
	if len(a.pts[addr]) > 0 {
		a.enqueue(addr)
	}
}

func (a *Analysis) enqueue(s slot) {
	if !a.inWork[s] {
		a.inWork[s] = true
		a.worklist = append(a.worklist, s)
	}
}

func (a *Analysis) solve() {
	for len(a.worklist) > 0 {
		s := a.worklist[len(a.worklist)-1]
		a.worklist = a.worklist[:len(a.worklist)-1]
		a.inWork[s] = false

		objs := a.pts[s].sorted()

		// Subset edges.
		for _, t := range a.succs[s] {
			changed := false
			for _, o := range objs {
				if a.pts[t].add(o) {
					changed = true
				}
			}
			if changed {
				a.enqueue(t)
			}
		}
		// Complex constraints: loads and stores through s.
		for _, d := range a.loads[s] {
			for _, o := range objs {
				a.copyEdge(a.contents[o], d)
			}
		}
		for _, v := range a.stores[s] {
			for _, o := range objs {
				a.copyEdge(v, a.contents[o])
			}
		}
		// Indirect calls whose function slot gained targets.
		for _, ic := range a.icalls {
			if ic.funSlot != s {
				continue
			}
			for _, o := range objs {
				obj := a.Objects[o]
				if obj.Kind != OFunc || ic.bound[obj.Fn] {
					continue
				}
				ic.bound[obj.Fn] = true
				a.bindCall(obj.Fn, ic.args)
				a.copyEdge(a.retSlot(obj.Fn), ic.ret)
			}
		}
	}
}

func (a *Analysis) resolveCallMaps() {
	for _, ic := range a.icalls {
		var fns []*types.FuncInfo
		for _, o := range a.pts[ic.funSlot].sorted() {
			if obj := a.Objects[o]; obj.Kind == OFunc {
				fns = append(fns, obj.Fn)
			}
		}
		if ic.isSpawn {
			a.SpawnTargets[ic.node] = fns
		} else {
			a.CallTargets[ic.node] = fns
		}
	}
}

// ---------------------------------------------------------------------------
// Queries

// ObjectsOf returns the abstract objects an lvalue expression may denote
// (by node ID), as determined by the Andersen analysis.
func (a *Analysis) ObjectsOf(lval ast.NodeID) []ObjID {
	s, ok := a.lvalSlot[lval]
	if !ok {
		return nil
	}
	return a.pts[s].sorted()
}

// PointsTo returns the points-to set of an expression's value slot, if the
// expression was an lvalue address; nil otherwise.
func (a *Analysis) PointsTo(lval ast.NodeID) []ObjID { return a.ObjectsOf(lval) }

// VarObjID returns the abstract object for a variable if one was created
// during analysis.
func (a *Analysis) VarObjID(v *types.Object) (ObjID, bool) {
	id, ok := a.objOfVar[v]
	return id, ok
}

// FieldObjID returns the field-based object for struct.field if created.
func (a *Analysis) FieldObjID(structName, field string) (ObjID, bool) {
	id, ok := a.objOfField[[2]string{structName, field}]
	return id, ok
}

// Obj returns the object descriptor.
func (a *Analysis) Obj(id ObjID) *Obj { return a.Objects[id] }

// Escapes reports whether a local/param object may be reachable by another
// thread: it (transitively) appears in the contents of a non-local object
// or is passed to spawn. Globals, heap, fields and strings always escape.
// RELAY's heapified-local filter (paper §6.2) keeps race warnings only for
// escaping locals.
func (a *Analysis) Escapes(o ObjID) bool {
	obj := a.Objects[o]
	if obj.Kind != OLocal && obj.Kind != OParam {
		return true
	}
	// Fixpoint over "reachable from a shared root": shared roots are
	// globals, fields, heap and spawn arguments.
	shared := make(map[ObjID]bool)
	var queue []ObjID
	mark := func(x ObjID) {
		if !shared[x] {
			shared[x] = true
			queue = append(queue, x)
		}
	}
	for _, root := range a.Objects {
		switch root.Kind {
		case OGlobal, OField, OHeap, OStr:
			for _, p := range a.pts[a.contents[root.ID]].sorted() {
				mark(p)
			}
		}
	}
	for _, ic := range a.icalls {
		if ic.isSpawn && len(ic.args) > 0 {
			for _, p := range a.pts[ic.args[0]].sorted() {
				mark(p)
			}
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, p := range a.pts[a.contents[x]].sorted() {
			mark(p)
		}
	}
	return shared[o]
}

// SpawnArgPointees returns every object a spawn call's thread argument may
// point to, deduplicated and sorted: the seeds through which memory
// becomes reachable by a child thread. This is the same seed set Escapes
// closes over; it is exported so whole-program sharing analyses
// (internal/escape, the certifier's discharge check) can run the
// reachability once instead of per object.
func (a *Analysis) SpawnArgPointees() []ObjID {
	seen := make(map[ObjID]bool)
	var out []ObjID
	for _, ic := range a.icalls {
		if ic.isSpawn && len(ic.args) > 0 {
			for _, p := range a.pts[ic.args[0]].sorted() {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContentsPointees returns the objects o's contents may point to — one
// step of the heap-reachability relation Escapes closes over, in sorted
// order.
func (a *Analysis) ContentsPointees(o ObjID) []ObjID {
	return a.pts[a.contents[o]].sorted()
}

// SteensClass returns the Steensgaard alias class of an object. Objects in
// the same class may alias; the lockset analysis treats same-class
// accesses as accesses to the same shared object.
func (a *Analysis) SteensClass(o ObjID) int { return a.steens.find(int(o)) }

// SameClass reports whether two object sets share a Steensgaard class.
func (a *Analysis) SameClass(x, y []ObjID) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	cls := make(map[int]bool, len(x))
	for _, o := range x {
		cls[a.SteensClass(o)] = true
	}
	for _, o := range y {
		if cls[a.SteensClass(o)] {
			return true
		}
	}
	return false
}

// ClassMembers returns all objects in o's Steensgaard class.
func (a *Analysis) ClassMembers(o ObjID) []ObjID {
	c := a.SteensClass(o)
	var out []ObjID
	for id := range a.Objects {
		if a.steens.find(id) == c {
			out = append(out, ObjID(id))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Steensgaard unification
//
// Run after Andersen: we re-play the value-flow edges with unification
// semantics. Two objects whose contents exchange values (directly or
// through loads/stores already resolved by Andersen) land in one class.
// This reproduces the coarser equivalence RELAY uses for alias classes.

type steensgaard struct {
	parent []int
	// pointee[c] is the class this class's contents point to (-1 none).
	pointee []int
}

func runSteensgaard(a *Analysis) *steensgaard {
	st := &steensgaard{
		parent:  make([]int, len(a.Objects)),
		pointee: make([]int, len(a.Objects)),
	}
	for i := range st.parent {
		st.parent[i] = i
		st.pointee[i] = -1
	}
	// Unify along resolved points-to: if a slot's pts has multiple
	// objects, a single Steensgaard cell would have merged them.
	for s := range a.pts {
		objs := a.pts[slot(s)].sorted()
		for i := 1; i < len(objs); i++ {
			st.union(int(objs[0]), int(objs[i]))
		}
	}
	// Unify pointees: contents of one class point to one class.
	for o := range a.Objects {
		for _, p := range a.pts[a.contents[o]].sorted() {
			st.setPointee(o, int(p))
		}
	}
	// Fully compress so post-construction finds never write: queries run
	// concurrently once the analysis is shared across pipeline workers.
	for i := range st.parent {
		st.parent[i] = st.find(i)
	}
	return st
}

func (st *steensgaard) find(x int) int {
	root := x
	for st.parent[root] != root {
		root = st.parent[root]
	}
	for st.parent[x] != root {
		x, st.parent[x] = st.parent[x], root
	}
	return root
}

func (st *steensgaard) union(x, y int) {
	rx, ry := st.find(x), st.find(y)
	if rx == ry {
		return
	}
	px, py := st.pointee[rx], st.pointee[ry]
	st.parent[ry] = rx
	if px == -1 {
		st.pointee[rx] = py
	} else if py != -1 {
		st.pointee[rx] = px
		st.union(px, py) // recursive pointee unification
	}
}

func (st *steensgaard) setPointee(o, p int) {
	ro := st.find(o)
	cur := st.pointee[ro]
	if cur == -1 {
		st.pointee[ro] = st.find(p)
		return
	}
	st.union(cur, p)
}

// String summarizes the analysis for debugging.
func (a *Analysis) String() string {
	return fmt.Sprintf("pointsto{objects:%d slots:%d icalls:%d}",
		len(a.Objects), len(a.pts), len(a.icalls))
}
