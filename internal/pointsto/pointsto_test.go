package pointsto

import (
	"testing"

	"repro/internal/minic/ast"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	return Analyze(info)
}

// findLval locates the unique lvalue node printed as text within fn.
func findLval(t *testing.T, a *Analysis, fnName, text string) ast.NodeID {
	t.Helper()
	fn := a.Info.Funcs[fnName]
	if fn == nil {
		t.Fatalf("no function %s", fnName)
	}
	var found ast.NodeID = -1
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && ast.PrintExpr(e) == text {
			if _, ok := a.lvalSlot[e.ID()]; ok && found == -1 {
				found = e.ID()
			}
		}
		return true
	})
	if found == -1 {
		t.Fatalf("lvalue %q not found in %s", text, fnName)
	}
	return found
}

func objNames(a *Analysis, ids []ObjID) map[string]bool {
	out := make(map[string]bool)
	for _, id := range ids {
		out[a.Objects[id].Name] = true
	}
	return out
}

func TestDirectPointer(t *testing.T) {
	a := analyze(t, `
int g;
int h;
void f(void) {
    int *p = &g;
    *p = 1;
    p = &h;
    *p = 2;
}
`)
	lv := findLval(t, a, "f", "*p")
	names := objNames(a, a.ObjectsOf(lv))
	if !names["g"] || !names["h"] {
		t.Errorf("*p objects = %v, want g and h", names)
	}
}

func TestArrayCollapse(t *testing.T) {
	a := analyze(t, `
int arr[100];
void f(int i, int j) {
    arr[i] = arr[j] + 1;
}
`)
	wr := findLval(t, a, "f", "arr[i]")
	rd := findLval(t, a, "f", "arr[j]")
	if !a.SameClass(a.ObjectsOf(wr), a.ObjectsOf(rd)) {
		t.Errorf("arr[i] and arr[j] should share an alias class (index-insensitive)")
	}
}

func TestFieldBased(t *testing.T) {
	a := analyze(t, `
struct node { int val; int other; };
struct node n1;
struct node n2;
void f(struct node *p, struct node *q) {
    p->val = 1;
    q->val = 2;
    q->other = 3;
}
`)
	pv := findLval(t, a, "f", "p->val")
	qv := findLval(t, a, "f", "q->val")
	qo := findLval(t, a, "f", "q->other")
	if !a.SameClass(a.ObjectsOf(pv), a.ObjectsOf(qv)) {
		t.Errorf("p->val and q->val should share a class (field-based)")
	}
	if a.SameClass(a.ObjectsOf(pv), a.ObjectsOf(qo)) {
		t.Errorf("p->val and q->other should not share a class")
	}
}

func TestHeapSites(t *testing.T) {
	a := analyze(t, `
int *pa;
int *pb;
void f(void) {
    pa = malloc(4);
    pb = malloc(4);
    pa[0] = 1;
    pb[0] = 2;
}
`)
	la := findLval(t, a, "f", "pa[0]")
	lb := findLval(t, a, "f", "pb[0]")
	oa, ob := a.ObjectsOf(la), a.ObjectsOf(lb)
	if len(oa) == 0 || len(ob) == 0 {
		t.Fatalf("heap objects missing: %v %v", oa, ob)
	}
	if a.Objects[oa[0]].Kind != OHeap {
		t.Errorf("pa[0] object kind = %v, want OHeap", a.Objects[oa[0]].Kind)
	}
	// Different sites: Andersen keeps them apart.
	same := false
	for _, x := range oa {
		for _, y := range ob {
			if x == y {
				same = true
			}
		}
	}
	if same {
		t.Errorf("distinct malloc sites collapsed by Andersen")
	}
}

func TestFunctionPointerResolution(t *testing.T) {
	a := analyze(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int apply(int op, int x) { return op(x); }
int main(void) {
    int r = apply(inc, 1);
    r += apply(dec, 2);
    return r;
}
`)
	var resolved []*types.FuncInfo
	for _, fns := range a.CallTargets {
		resolved = append(resolved, fns...)
	}
	names := make(map[string]bool)
	for _, fn := range resolved {
		names[fn.Name] = true
	}
	if !names["inc"] || !names["dec"] {
		t.Errorf("indirect call targets = %v, want inc and dec", names)
	}
}

func TestSpawnTargets(t *testing.T) {
	a := analyze(t, `
int g;
void worker(int x) { g = x; }
void other(int x) { g = x + 1; }
int pick;
int main(void) {
    int fp = worker;
    if (pick) { fp = other; }
    int t = spawn(fp, 1);
    join(t);
    return 0;
}
`)
	var all []*types.FuncInfo
	for _, fns := range a.SpawnTargets {
		all = append(all, fns...)
	}
	names := make(map[string]bool)
	for _, fn := range all {
		names[fn.Name] = true
	}
	if !names["worker"] || !names["other"] {
		t.Errorf("spawn targets = %v, want worker and other", names)
	}
}

func TestEscape(t *testing.T) {
	a := analyze(t, `
int *shared;
void w(int x) { }
void f(void) {
    int stays;
    int leaks;
    int *p = &stays;
    *p = 1;
    shared = &leaks;
}
`)
	fn := a.Info.Funcs["f"]
	var staysID, leaksID ObjID = -1, -1
	for _, l := range fn.Locals {
		switch l.Name {
		case "stays":
			if id, ok := a.objOfVar[l]; ok {
				staysID = id
			}
		case "leaks":
			if id, ok := a.objOfVar[l]; ok {
				leaksID = id
			}
		}
	}
	if leaksID == -1 {
		t.Fatalf("leaks object not created")
	}
	if !a.Escapes(leaksID) {
		t.Errorf("leaks should escape (stored to global)")
	}
	if staysID != -1 && a.Escapes(staysID) {
		t.Errorf("stays should not escape")
	}
}

func TestPointerThroughStructField(t *testing.T) {
	a := analyze(t, `
struct box { int *ptr; };
int target;
struct box gb;
void f(void) {
    gb.ptr = &target;
}
void g(void) {
    int *p = gb.ptr;
    *p = 5;
}
`)
	lv := findLval(t, a, "g", "*p")
	names := objNames(a, a.ObjectsOf(lv))
	if !names["target"] {
		t.Errorf("*p objects = %v, want target (flow through field)", names)
	}
}

func TestSteensgaardCoarserThanAndersen(t *testing.T) {
	// x points to a or b depending on path; Steensgaard then unifies a and
	// b into one class even though Andersen can keep callers apart.
	a := analyze(t, `
int a;
int b;
void f(int pick) {
    int *x = &a;
    if (pick) { x = &b; }
    *x = 1;
}
`)
	fn := a.Info.Funcs["f"]
	_ = fn
	var aID, bID ObjID = -1, -1
	for _, g := range a.Info.Globals {
		id := a.objOfVar[g]
		if g.Name == "a" {
			aID = id
		}
		if g.Name == "b" {
			bID = id
		}
	}
	if a.SteensClass(aID) != a.SteensClass(bID) {
		t.Errorf("a and b should be unified by Steensgaard (both targets of x)")
	}
}

func TestParamFlow(t *testing.T) {
	a := analyze(t, `
int g1;
int g2;
void sink(int *p) { *p = 1; }
void f(void) {
    sink(&g1);
    sink(&g2);
}
`)
	lv := findLval(t, a, "sink", "*p")
	names := objNames(a, a.ObjectsOf(lv))
	if !names["g1"] || !names["g2"] {
		t.Errorf("*p objects = %v, want g1 and g2 (context-insensitive merge)", names)
	}
}

func TestClassMembers(t *testing.T) {
	a := analyze(t, `
int a;
int b;
void f(int pick) {
    int *x = &a;
    if (pick) { x = &b; }
    *x = 1;
}
`)
	var aID ObjID = -1
	for _, g := range a.Info.Globals {
		if g.Name == "a" {
			aID = a.objOfVar[g]
		}
	}
	members := a.ClassMembers(aID)
	names := objNames(a, members)
	if !names["a"] || !names["b"] {
		t.Errorf("class members %v should include a and b", names)
	}
}

func TestSameClassEmptySets(t *testing.T) {
	a := analyze(t, `int g; int main(void) { g = 1; return 0; }`)
	if a.SameClass(nil, []ObjID{0}) || a.SameClass([]ObjID{0}, nil) {
		t.Errorf("empty sets never share a class")
	}
}

func TestStringObjects(t *testing.T) {
	a := analyze(t, `
int *msg;
void f(void) {
    msg = "hello";
}
void g(void) {
    int c = msg[0];
    c = c + 1;
}
int main(void) { f(); g(); return 0; }
`)
	lv := findLval(t, a, "g", "msg[0]")
	objs := a.ObjectsOf(lv)
	found := false
	for _, o := range objs {
		if a.Obj(o).Kind == OStr {
			found = true
		}
	}
	if !found {
		t.Errorf("msg[0] should reach a string object; got %v", objNames(a, objs))
	}
}

func TestIndirectCallThroughStruct(t *testing.T) {
	a := analyze(t, `
struct ops { int handler; };
struct ops tbl;
int h1(int x) { return x; }
int h2(int x) { return x + 1; }
void install(int which) {
    tbl.handler = h1;
    if (which) { tbl.handler = h2; }
}
int dispatch(int x) {
    int f = tbl.handler;
    return f(x);
}
int main(void) {
    install(1);
    return dispatch(3);
}
`)
	var all []string
	for _, fns := range a.CallTargets {
		for _, fn := range fns {
			all = append(all, fn.Name)
		}
	}
	names := make(map[string]bool)
	for _, n := range all {
		names[n] = true
	}
	if !names["h1"] || !names["h2"] {
		t.Errorf("function pointers through struct fields unresolved: %v", names)
	}
}

func TestEscapeViaSpawnArg(t *testing.T) {
	a := analyze(t, `
void worker(int p) {
    int *q = p;
    *q = 5;
}
int main(void) {
    int shared_cell;
    int t = spawn(worker, &shared_cell);
    join(t);
    return shared_cell;
}
`)
	var cellID ObjID = -1
	for _, fn := range a.Info.Funcs {
		for _, l := range fn.Locals {
			if l.Name == "shared_cell" {
				if id, ok := a.objOfVar[l]; ok {
					cellID = id
				}
			}
		}
	}
	if cellID == -1 {
		t.Fatalf("shared_cell not found")
	}
	if !a.Escapes(cellID) {
		t.Errorf("a local passed to spawn escapes")
	}
}
