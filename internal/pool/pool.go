// Package pool provides the two worker-pool disciplines the pipeline
// schedules on:
//
//   - RunWave: a bounded fan-out over one wave of indexed tasks with a
//     full barrier at the end and deterministic least-index error
//     selection. This is the SCC-wave schedule RELAY's parallel summary
//     computation uses (relay.AnalyzeParallel), extracted so any stage
//     with wave-structured dependencies can reuse it.
//
//   - Sharded: a long-running pool of single-threaded shards with
//     hash-routed FIFO queues and graceful drain. Work routed by a
//     stable key always lands on the same shard, so per-key ordering
//     holds without locks; this is the scheduling core of the
//     Chimera-as-a-service job engine (internal/service).
//
// Both disciplines make the same determinism trade the SCC-wave pool
// pioneered: parallelism is an execution detail that must never leak
// into results. RunWave guarantees the surfaced error is the one the
// sequential walk would hit first; Sharded guarantees per-key FIFO.
package pool

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
)

// RunWave executes do(i) for every index in wave on at most `workers`
// goroutines and blocks until all complete (the wave barrier). If any
// task fails, the error returned is the one with the smallest index —
// exactly the fault a sequential in-order walk would surface first —
// and tasks with larger indices that have not started yet are skipped.
// Tasks already running are never interrupted.
//
// workers <= 1 degenerates to a sequential in-order walk with
// first-error short-circuit, byte-identical in effect to the concurrent
// schedule.
func RunWave(workers int, wave []int, do func(int) error) error {
	if len(wave) == 0 {
		return nil
	}
	if workers <= 1 {
		for _, i := range wave {
			if err := do(i); err != nil {
				return err
			}
		}
		return nil
	}

	// errIdx holds the smallest task index that produced an error
	// (math.MaxInt64 = none). An error cancels all outstanding work with
	// a higher index; lower-index tasks of the same wave still run, so
	// the surfaced error is deterministic.
	errIdx := int64(math.MaxInt64)
	var errMu sync.Mutex
	errs := make(map[int64]error)
	record := func(i int, err error) {
		errMu.Lock()
		errs[int64(i)] = err
		errMu.Unlock()
		for {
			cur := atomic.LoadInt64(&errIdx)
			if int64(i) >= cur || atomic.CompareAndSwapInt64(&errIdx, cur, int64(i)) {
				return
			}
		}
	}

	n := workers
	if n > len(wave) {
		n = len(wave)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if int64(i) > atomic.LoadInt64(&errIdx) {
					continue // cancelled: a lower-index task failed
				}
				if err := do(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for _, i := range wave {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if first := atomic.LoadInt64(&errIdx); first != math.MaxInt64 {
		return errs[first]
	}
	return nil
}

// ErrDraining is returned by Sharded.Submit after Drain has begun: the
// pool no longer accepts work.
var ErrDraining = errors.New("pool: draining, not accepting work")

// ErrFull is returned by Sharded.Submit when the routed shard's queue is
// at capacity.
var ErrFull = errors.New("pool: shard queue full")

// Sharded is a pool of single-threaded shards fed by bounded FIFO
// queues. Submit routes a task by key hash, so all tasks sharing a key
// execute in submission order on one shard. It generalizes the SCC-wave
// pool from one-shot barrier scheduling to a long-running service
// discipline: instead of wave barriers, ordering comes from per-shard
// FIFO; instead of run-to-completion, the pool drains on demand.
type Sharded struct {
	shards  []chan func()
	queued  []atomic.Int64 // per-shard tasks waiting in queue
	running []atomic.Int64 // per-shard tasks executing (0 or 1)
	wg      sync.WaitGroup
	drain   atomic.Bool
	submit  sync.RWMutex // held (R) across enqueue so Drain can fence
	pending atomic.Int64
	done    atomic.Int64
}

// NewSharded starts a pool with `shards` single-threaded shards, each
// with a queue of `depth` tasks. shards and depth are clamped to 1.
func NewSharded(shards, depth int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &Sharded{
		shards:  make([]chan func(), shards),
		queued:  make([]atomic.Int64, shards),
		running: make([]atomic.Int64, shards),
	}
	for i := range p.shards {
		ch := make(chan func(), depth)
		p.shards[i] = ch
		p.wg.Add(1)
		go func(i int) {
			defer p.wg.Done()
			for task := range ch {
				p.queued[i].Add(-1)
				p.running[i].Add(1)
				task()
				p.running[i].Add(-1)
				p.pending.Add(-1)
				p.done.Add(1)
			}
		}(i)
	}
	return p
}

// Shards returns the shard count.
func (p *Sharded) Shards() int { return len(p.shards) }

// Shard returns the shard index key routes to.
func (p *Sharded) Shard(key uint64) int { return int(key % uint64(len(p.shards))) }

// Submit enqueues task on the shard key routes to. It never blocks:
// a full shard queue returns ErrFull, a draining pool ErrDraining.
func (p *Sharded) Submit(key uint64, task func()) error {
	p.submit.RLock()
	defer p.submit.RUnlock()
	if p.drain.Load() {
		return ErrDraining
	}
	// The queued gauge is bumped before the send: the channel receive
	// orders the worker's decrement after this increment, so the gauge
	// never goes negative.
	idx := p.Shard(key)
	p.queued[idx].Add(1)
	select {
	case p.shards[idx] <- task:
		p.pending.Add(1)
		return nil
	default:
		p.queued[idx].Add(-1)
		return ErrFull
	}
}

// Stats reports tasks currently queued or running, and tasks completed.
func (p *Sharded) Stats() (pending, done int64) {
	return p.pending.Load(), p.done.Load()
}

// ShardStats reports, per shard, the tasks waiting in queue and the
// tasks executing. The two slices are parallel to shard indices. Each
// gauge is individually accurate; a scrape concurrent with task
// hand-off may observe the one-task transition inconsistently between
// the two slices (gauges, not ledgers).
func (p *Sharded) ShardStats() (queued, running []int64) {
	queued = make([]int64, len(p.shards))
	running = make([]int64, len(p.shards))
	for i := range p.shards {
		queued[i] = p.queued[i].Load()
		running[i] = p.running[i].Load()
	}
	return queued, running
}

// Drain stops admission and waits for every queued task to finish, or
// for stop to be closed, whichever comes first. It reports whether the
// pool drained completely. Drain is idempotent; the first call closes
// the queues.
func (p *Sharded) Drain(stop <-chan struct{}) bool {
	if !p.drain.CompareAndSwap(false, true) {
		// Another drainer closed the queues; just wait alongside it.
		return p.wait(stop)
	}
	// Fence: no Submit holds the lock mid-enqueue once we have it.
	p.submit.Lock()
	for _, ch := range p.shards {
		close(ch)
	}
	p.submit.Unlock()
	return p.wait(stop)
}

func (p *Sharded) wait(stop <-chan struct{}) bool {
	finished := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return true
	case <-stop:
		return false
	}
}
