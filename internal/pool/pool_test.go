package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunWaveEmpty(t *testing.T) {
	if err := RunWave(4, nil, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatalf("empty wave: %v", err)
	}
}

func TestRunWaveRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		wave := make([]int, 100)
		for i := range wave {
			wave[i] = i
		}
		var ran [100]atomic.Int32
		if err := RunWave(workers, wave, func(i int) error {
			ran[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestRunWaveLeastIndexError is the determinism contract: whichever
// schedule the workers take, the surfaced error is the one a sequential
// in-order walk would hit first.
func TestRunWaveLeastIndexError(t *testing.T) {
	wave := make([]int, 64)
	for i := range wave {
		wave[i] = i
	}
	for _, workers := range []int{1, 3, 16} {
		err := RunWave(workers, wave, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

func TestRunWaveSequentialShortCircuit(t *testing.T) {
	var ran []int
	err := RunWave(1, []int{0, 1, 2, 3}, func(i int) error {
		ran = append(ran, i)
		if i == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("sequential walk ran %v, want short-circuit after index 1", ran)
	}
}

func TestShardedPerKeyFIFO(t *testing.T) {
	p := NewSharded(4, 128)
	const perKey = 50
	var mu sync.Mutex
	got := map[uint64][]int{}
	for seq := 0; seq < perKey; seq++ {
		for key := uint64(0); key < 8; key++ {
			key, seq := key, seq
			if err := p.Submit(key, func() {
				mu.Lock()
				got[key] = append(got[key], seq)
				mu.Unlock()
			}); err != nil {
				t.Fatalf("Submit(%d,%d): %v", key, seq, err)
			}
		}
	}
	if !p.Drain(nil) {
		t.Fatal("drain did not complete")
	}
	for key, seqs := range got {
		if len(seqs) != perKey {
			t.Fatalf("key %d: %d tasks ran, want %d", key, len(seqs), perKey)
		}
		for i, s := range seqs {
			if s != i {
				t.Fatalf("key %d: out of order at %d: %v", key, i, seqs)
			}
		}
	}
}

func TestShardedRouting(t *testing.T) {
	p := NewSharded(4, 1)
	defer p.Drain(nil)
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d", p.Shards())
	}
	for key := uint64(0); key < 100; key++ {
		if a, b := p.Shard(key), p.Shard(key); a != b {
			t.Fatalf("Shard(%d) unstable: %d vs %d", key, a, b)
		}
		if s := p.Shard(key); s < 0 || s >= 4 {
			t.Fatalf("Shard(%d) = %d out of range", key, s)
		}
	}
	if p.Shard(5) != p.Shard(9) { // 5 % 4 == 9 % 4
		t.Fatal("equal residues routed to different shards")
	}
}

func TestShardedFull(t *testing.T) {
	p := NewSharded(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(0, func() { close(started); <-block }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // worker is busy; queue is empty
	if err := p.Submit(0, func() {}); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	if err := p.Submit(0, func() {}); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity submit: %v, want ErrFull", err)
	}
	close(block)
	if !p.Drain(nil) {
		t.Fatal("drain did not complete")
	}
}

func TestShardedDrain(t *testing.T) {
	p := NewSharded(2, 16)
	var done atomic.Int64
	for i := uint64(0); i < 20; i++ {
		if err := p.Submit(i, func() {
			time.Sleep(time.Millisecond)
			done.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if !p.Drain(nil) {
		t.Fatal("drain did not complete")
	}
	if done.Load() != 20 {
		t.Fatalf("done = %d, want 20 (drain must run queued work)", done.Load())
	}
	if err := p.Submit(0, func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	pending, completed := p.Stats()
	if pending != 0 || completed != 20 {
		t.Fatalf("Stats() = (%d, %d), want (0, 20)", pending, completed)
	}
}

func TestShardedDrainTimeout(t *testing.T) {
	p := NewSharded(1, 4)
	block := make(chan struct{})
	if err := p.Submit(0, func() { <-block }); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if p.Drain(stop) {
		t.Fatal("drain reported complete while a task was blocked")
	}
	close(block)
	// Idempotent second drain now succeeds.
	if !p.Drain(nil) {
		t.Fatal("second drain did not complete")
	}
}

// TestShardedConcurrentSubmitDrain races many submitters against a
// drainer under -race: every submission either runs or is rejected,
// nothing is lost.
func TestShardedConcurrentSubmitDrain(t *testing.T) {
	p := NewSharded(4, 64)
	var accepted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := p.Submit(uint64(g*1000+i), func() { ran.Add(1) }); err == nil {
					accepted.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(500 * time.Microsecond)
	if !p.Drain(nil) {
		t.Fatal("drain did not complete")
	}
	wg.Wait()
	if ran.Load() != accepted.Load() {
		t.Fatalf("accepted %d submissions but ran %d", accepted.Load(), ran.Load())
	}
}
