// Package profile implements Chimera's non-concurrency profiler
// (paper §4): it observes function-level execution intervals across
// profiling runs and reports which pairs of functions were ever observed
// executing concurrently on different threads.
//
// The original system instrumented function entry/exit with CIL; here the
// VM emits those events directly via its FuncHook, which is equivalent and
// leaves the profiled program unmodified. Pairs never observed concurrent
// across all profile runs are treated as "likely non-concurrent", which
// licenses function-granularity weak-locks; profiling is a heuristic, not a
// proof — the weak-lock still records the order, so replay stays sound even
// if the heuristic is wrong (paper §4.1).
package profile

import (
	"fmt"
	"sort"
)

// Collector gathers function entry/exit events from one VM run. It
// implements vm.FuncHook structurally (Enter/Exit methods), without
// importing the vm package.
type Collector struct {
	events []event
	depth  map[int]int
}

type event struct {
	tid   int
	fn    int
	enter bool
	clock int64
	seq   int // tie-break for identical clocks
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{depth: make(map[int]int)}
}

// Enter records a function entry.
func (c *Collector) Enter(tid int, fn int, clock int64) {
	c.events = append(c.events, event{tid: tid, fn: fn, enter: true, clock: clock, seq: len(c.events)})
}

// Exit records a function exit.
func (c *Collector) Exit(tid int, fn int, clock int64) {
	c.events = append(c.events, event{tid: tid, fn: fn, enter: false, clock: clock, seq: len(c.events)})
}

// interval is one function activation on one thread.
type interval struct {
	tid        int
	fn         int
	start, end int64
}

// intervals reconstructs per-thread activation intervals from the event
// log. Activations still open at the end of the run are closed at the
// maximum observed clock.
func (c *Collector) intervals() []interval {
	perThread := make(map[int][]event)
	var maxClock int64
	for _, e := range c.events {
		perThread[e.tid] = append(perThread[e.tid], e)
		if e.clock > maxClock {
			maxClock = e.clock
		}
	}
	var out []interval
	for _, evs := range perThread {
		// Events were appended in per-thread program order already (the
		// scheduler runs one thread at a time), so a simple stack works.
		type open struct {
			fn    int
			start int64
		}
		var stack []open
		for _, e := range evs {
			if e.enter {
				stack = append(stack, open{fn: e.fn, start: e.clock})
				continue
			}
			// Pop the matching activation (it must be on top).
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out = append(out, interval{tid: e.tid, fn: top.fn, start: top.start, end: e.clock})
		}
		for _, o := range stack {
			out = append(out, interval{tid: evs[0].tid, fn: o.fn, start: o.start, end: maxClock})
		}
	}
	return out
}

// Concurrency is the accumulated profile over one or more runs: the set of
// function pairs observed running concurrently.
type Concurrency struct {
	pairs map[[2]string]bool
	runs  int
}

// NewConcurrency returns an empty profile.
func NewConcurrency() *Concurrency {
	return &Concurrency{pairs: make(map[[2]string]bool)}
}

// key canonicalizes a function pair.
func key(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Concurrent reports whether f and g were ever observed concurrent (a
// function observed concurrent with another instance of itself reports
// true for f == g).
func (c *Concurrency) Concurrent(f, g string) bool { return c.pairs[key(f, g)] }

// Runs returns how many profile runs were accumulated.
func (c *Concurrency) Runs() int { return c.runs }

// PairCount returns the number of distinct concurrent pairs observed.
func (c *Concurrency) PairCount() int { return len(c.pairs) }

// Pairs lists the concurrent pairs in sorted order.
func (c *Concurrency) Pairs() [][2]string {
	out := make([][2]string, 0, len(c.pairs))
	for p := range c.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Merge folds another profile into c.
func (c *Concurrency) Merge(other *Concurrency) {
	for p := range other.pairs {
		c.pairs[p] = true
	}
	c.runs += other.runs
}

// AddRun incorporates one collector's observations. funcNames maps VM
// function indices to names.
func (c *Concurrency) AddRun(col *Collector, funcNames []string) {
	c.runs++
	ivs := col.intervals()

	// Sweep over interval boundaries: at each interval start, pair its
	// function with every active interval on other threads.
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})
	type active struct {
		fn  int
		end int64
	}
	perThread := make(map[int][]active)
	for _, iv := range ivs {
		// Expire finished activations lazily.
		for tid, acts := range perThread {
			keep := acts[:0]
			for _, a := range acts {
				if a.end > iv.start {
					keep = append(keep, a)
				}
			}
			perThread[tid] = keep
		}
		for tid, acts := range perThread {
			if tid == iv.tid {
				continue
			}
			for _, a := range acts {
				c.pairs[key(funcNames[iv.fn], funcNames[a.fn])] = true
			}
		}
		perThread[iv.tid] = append(perThread[iv.tid], active{fn: iv.fn, end: iv.end})
	}
}

// String summarizes the profile.
func (c *Concurrency) String() string {
	return fmt.Sprintf("profile{runs:%d concurrent-pairs:%d}", c.runs, len(c.pairs))
}
