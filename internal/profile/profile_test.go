package profile

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/vm"
)

func profileRun(t *testing.T, src string, seed uint64) (*Concurrency, []string) {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	p := vm.MustCompile(info)
	names := make([]string, len(p.Funcs))
	for i, fn := range p.Funcs {
		names[i] = fn.Name
	}
	col := NewCollector()
	w := oskit.NewWorld(seed)
	r := vm.Run(p, vm.Config{Inputs: vm.LiveInputs{OS: w}, Seed: seed, Funcs: col})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	c := NewConcurrency()
	c.AddRun(col, names)
	return c, names
}

const barrierProg = `
int bar;
int a;
int b;
void phase_a(int id) {
    int s = 0;
    for (int i = 0; i < 500; i++) { s += i; }
    a = s;
}
void phase_b(int id) {
    int s = 0;
    for (int i = 0; i < 500; i++) { s += i; }
    b = s;
}
void worker(int id) {
    phase_a(id);
    barrier_wait(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`

func TestBarrierSeparatedPhasesNonConcurrent(t *testing.T) {
	// The water pattern (paper Fig. 2): phase_a and phase_b are separated
	// by a barrier, so profiling must never see them concurrent, while
	// phase_a must be concurrent with itself across threads.
	c := NewConcurrency()
	for seed := uint64(0); seed < 5; seed++ {
		run, _ := profileRun(t, barrierProg, seed)
		c.Merge(run)
	}
	if c.Concurrent("phase_a", "phase_b") {
		t.Errorf("barrier-separated phases observed concurrent")
	}
	if !c.Concurrent("phase_a", "phase_a") {
		t.Errorf("phase_a should be concurrent with itself across workers")
	}
	if !c.Concurrent("phase_b", "phase_b") {
		t.Errorf("phase_b should be concurrent with itself across workers")
	}
	if c.Runs() != 5 {
		t.Errorf("runs = %d, want 5", c.Runs())
	}
}

func TestInitNotConcurrentWithWorkers(t *testing.T) {
	// Fork-join: initialization runs before any worker exists (paper §4.1
	// false positives between init code and the rest).
	src := `
int table[64];
int sink;
void init_table(int n) {
    for (int i = 0; i < n; i++) { table[i] = i; }
}
void worker(int id) {
    int s = 0;
    for (int i = 0; i < 64; i++) { s += table[i]; }
    sink = s;
}
int main(void) {
    init_table(64);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`
	c := NewConcurrency()
	for seed := uint64(0); seed < 3; seed++ {
		run, _ := profileRun(t, src, seed)
		c.Merge(run)
	}
	if c.Concurrent("init_table", "worker") {
		t.Errorf("init code observed concurrent with workers")
	}
	if !c.Concurrent("worker", "worker") {
		t.Errorf("workers should be concurrent with each other")
	}
}

func TestSequentialSpawnsNonConcurrent(t *testing.T) {
	// Threads spawned and joined one at a time never overlap.
	src := `
int g;
void w1(int id) { for (int i = 0; i < 200; i++) { g = i; } }
void w2(int id) { for (int i = 0; i < 200; i++) { g = i; } }
int main(void) {
    int t1 = spawn(w1, 1);
    join(t1);
    int t2 = spawn(w2, 2);
    join(t2);
    return 0;
}
`
	c, _ := profileRun(t, src, 1)
	if c.Concurrent("w1", "w2") {
		t.Errorf("sequentially joined workers observed concurrent")
	}
}

func TestNestedCallsAttributed(t *testing.T) {
	// A helper called inside a worker is active while the other worker
	// runs: helper must be concurrent with the other worker.
	src := `
int g;
int helper(int x) {
    int s = 0;
    for (int i = 0; i < 300; i++) { s += i; }
    return s + x;
}
void worker(int id) { g = helper(id); }
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`
	c := NewConcurrency()
	for seed := uint64(0); seed < 3; seed++ {
		run, _ := profileRun(t, src, seed)
		c.Merge(run)
	}
	if !c.Concurrent("helper", "helper") {
		t.Errorf("helper should be concurrent with itself")
	}
	if !c.Concurrent("helper", "worker") {
		t.Errorf("helper should be concurrent with worker")
	}
}

func TestPairsSortedAndMerge(t *testing.T) {
	a := NewConcurrency()
	a.pairs[key("b", "a")] = true
	b := NewConcurrency()
	b.pairs[key("c", "a")] = true
	b.runs = 2
	a.Merge(b)
	ps := a.Pairs()
	if len(ps) != 2 || ps[0] != [2]string{"a", "b"} || ps[1] != [2]string{"a", "c"} {
		t.Errorf("pairs = %v", ps)
	}
	if a.Runs() != 2 {
		t.Errorf("runs = %d", a.Runs())
	}
}
