package relay

import (
	"sort"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/summary"
)

// Incremental RELAY.
//
// The bottom-up summary walk is the only stage worth memoizing across
// edits: parsing, type checking and the pointer analyses are whole-program
// and cheap, while summary composition dominates analysis time and is
// per-function by construction. AnalyzeIncremental runs the same pipeline
// as AnalyzeParallel but consults a summary.Store before each SCC's
// fixpoint: if every member function's content key (summary.Indexer) hits
// the store and decodes cleanly against the fresh AST, the stored
// summaries are installed and the SCC's walk is skipped. Because a
// function's key embeds its callee SCCs' keys, a store hit proves the
// entire callee cone is unchanged, so reuse needs no further validity
// check — the dirty cone (the edited functions plus their transitive
// callers) is exactly the set of key misses.
//
// Everything downstream of the summaries (race pair generation, escape
// filtering, spawn multiplicity) is recomputed fresh, and decoded
// summaries rehydrate node IDs, object IDs and positions from the current
// parse, so the resulting Report is byte-identical to a from-scratch
// analysis — the property the differential and fuzz tests pin down.

// IncrementalStats describes what one incremental analysis reused and
// recomputed.
type IncrementalStats struct {
	TotalFuncs      int
	ReusedFuncs     int
	RecomputedFuncs int
	DirtySCCs       int

	// Dirty lists the recomputed functions in bottom-up SCC order.
	Dirty []string

	// Unkeyable lists recomputed functions whose summaries could not be
	// keyed or encoded and were therefore not stored (fail-closed).
	Unkeyable []string

	// MHPFactsReused reports whether the MHP refinement verdicts were
	// replayed from the store (set by the core wiring, not here).
	MHPFactsReused bool

	// PrecisionFactsReused reports whether the precision-layer verdicts
	// (escape/must-lock/read-only) were replayed from the store (set by
	// the core wiring, not here).
	PrecisionFactsReused bool

	// Index is the content index of this parse, kept for artifact
	// encoding/decoding by later stages. Its ProgramKey() addresses
	// whole-program artifacts (MHP facts); it is computed on first use,
	// so loads that never touch the refinement never pay for it.
	Index *summary.Indexer
}

// ProgramKey addresses whole-program artifacts (MHP facts).
func (s *IncrementalStats) ProgramKey() summary.Key { return s.Index.ProgramKey() }

// AnalyzeIncremental is AnalyzeParallel backed by a summary store: SCCs
// whose function keys all hit the store reuse their stored summaries, the
// rest (the dirty cone) run the normal fixpoint and are stored for next
// time. The Report is byte-identical to AnalyzeParallel's on the same
// program for any store contents and any worker count.
func AnalyzeIncremental(info *types.Info, pta *pointsto.Analysis, cg *callgraph.Graph, workers int, store *summary.Store) (*Report, *IncrementalStats) {
	idx := summary.NewIndexerParallel(info, pta, cg, workers)
	rl := &analyzer{
		info:      info,
		pta:       pta,
		cg:        cg,
		summaries: make(map[*types.FuncInfo]*Summary),
	}
	stats := &IncrementalStats{Index: idx}

	// Reuse pass, bottom-up: an SCC is clean iff every member is keyable,
	// present in the store, and decodes against the fresh AST. Reuse
	// decisions depend only on the index and the store — never on other
	// SCCs' decisions — so they are identical for every worker count.
	dirty := make([]bool, len(cg.SCCs))
	for i, scc := range cg.SCCs {
		stats.TotalFuncs += len(scc)
		decoded := make([]*Summary, len(scc))
		clean := true
		for j, fn := range scc {
			k, keyable := idx.FuncKey(fn.Name)
			if !keyable {
				clean = false
				break
			}
			ps, hit := store.Get(k)
			if !hit {
				clean = false
				break
			}
			sum, ok := decodeSummary(ps, fn, idx)
			if !ok {
				clean = false
				break
			}
			decoded[j] = sum
		}
		if clean {
			for j, fn := range scc {
				rl.summaries[fn] = decoded[j]
			}
			stats.ReusedFuncs += len(scc)
			continue
		}
		dirty[i] = true
		stats.DirtySCCs++
		for _, fn := range scc {
			rl.summaries[fn] = &Summary{Fn: fn, accessKeys: make(map[string]bool)}
			stats.Dirty = append(stats.Dirty, fn.Name)
		}
	}
	stats.RecomputedFuncs = len(stats.Dirty)

	// Fixpoint over the dirty cone only, wave-scheduled like the parallel
	// walk (reused summaries are already installed, so dirty callers
	// compose them exactly as a fresh walk would).
	if workers <= 1 {
		for i := range cg.SCCs {
			if dirty[i] {
				rl.analyzeSCC(i)
			}
		}
	} else {
		for _, wave := range cg.Waves() {
			var todo []int
			for _, si := range wave {
				if dirty[si] {
					todo = append(todo, si)
				}
			}
			if len(todo) == 0 {
				continue
			}
			n := workers
			if n > len(todo) {
				n = len(todo)
			}
			jobs := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for si := range jobs {
						rl.analyzeSCC(si)
					}
				}()
			}
			for _, si := range todo {
				jobs <- si
			}
			close(jobs)
			wg.Wait()
		}
	}

	// Store the recomputed summaries. Unkeyable or unencodable functions
	// are skipped (fail-closed: nothing ambiguous enters the store).
	for i, scc := range cg.SCCs {
		if !dirty[i] {
			continue
		}
		for _, fn := range scc {
			k, keyable := idx.FuncKey(fn.Name)
			if !keyable {
				stats.Unkeyable = append(stats.Unkeyable, fn.Name)
				continue
			}
			enc, ok := encodeSummary(rl.summaries[fn], idx)
			if !ok {
				stats.Unkeyable = append(stats.Unkeyable, fn.Name)
				continue
			}
			store.Put(k, enc)
		}
	}

	return rl.detectRaces(), stats
}

// encodeSummary turns a freshly computed summary into its portable image.
// ok is false when any access coordinate or object falls outside the
// canonical grammars, in which case the summary must not be stored.
func encodeSummary(sum *Summary, idx *summary.Indexer) (*summary.FuncSummary, bool) {
	ps := &summary.FuncSummary{
		Fn:       sum.Fn.Name,
		NetPlus:  append([]string(nil), sum.NetPlus...),
		NetMinus: append([]string(nil), sum.NetMinus...),
	}
	for _, a := range sum.Accesses {
		nodeFn, nodeOrd, ok := idx.NodeRef(a.node)
		if !ok || nodeFn != a.fn.Name {
			return nil, false
		}
		stmtFn, stmtOrd, ok := idx.NodeRef(a.stmt)
		if !ok || stmtFn != a.fn.Name {
			return nil, false
		}
		objs := make([]string, len(a.objs))
		for i, o := range a.objs {
			k := idx.ObjKey(o)
			if k == "" {
				return nil, false
			}
			objs[i] = k
		}
		ps.Accesses = append(ps.Accesses, summary.FuncAccess{
			Fn:    a.fn.Name,
			Node:  nodeOrd,
			Stmt:  stmtOrd,
			Write: a.write,
			Objs:  objs,
			Plus:  append([]string(nil), a.plus...),
			Minus: append([]string(nil), a.minus...),
		})
	}
	return ps, true
}

// decodeSummary rehydrates a stored summary against the current parse:
// ordinals resolve to fresh nodes (and their positions), canonical object
// keys to fresh ObjIDs. ok is false on any mismatch — a missing function,
// an out-of-range ordinal, a node of the wrong shape, an unresolvable
// object — which marks the SCC dirty rather than risking a stale reuse.
func decodeSummary(ps *summary.FuncSummary, fn *types.FuncInfo, idx *summary.Indexer) (*Summary, bool) {
	if ps.Fn != fn.Name {
		return nil, false
	}
	sum := &Summary{
		Fn:       fn,
		NetPlus:  append([]string(nil), ps.NetPlus...),
		NetMinus: append([]string(nil), ps.NetMinus...),
	}
	for i := range ps.Accesses {
		pa := &ps.Accesses[i]
		afn := idx.Info().Funcs[pa.Fn]
		if afn == nil {
			return nil, false
		}
		nodeN, ok := idx.NodeAt(pa.Fn, pa.Node)
		if !ok {
			return nil, false
		}
		node, isExpr := nodeN.(ast.Expr)
		if !isExpr {
			return nil, false
		}
		stmtN, ok := idx.NodeAt(pa.Fn, pa.Stmt)
		if !ok {
			return nil, false
		}
		objs := make([]pointsto.ObjID, len(pa.Objs))
		for j, k := range pa.Objs {
			oid, ok := idx.ObjByKey(k)
			if !ok {
				return nil, false
			}
			objs[j] = oid
		}
		// Fresh analysis emits objs sorted by the current parse's ObjIDs
		// (pointsto.ObjectsOf order); restore that invariant, since IDs
		// permute across parses.
		sort.Slice(objs, func(a, b int) bool { return objs[a] < objs[b] })
		sum.Accesses = append(sum.Accesses, &summaryAccess{
			fn:    afn,
			node:  node.ID(),
			stmt:  stmtN.ID(),
			write: pa.Write,
			objs:  objs,
			plus:  append([]string(nil), pa.Plus...),
			minus: append([]string(nil), pa.Minus...),
			pos:   node.Pos(),
		})
	}
	return sum, true
}

// EncodeMHPFacts records, portably, the verdict the MHP refinement reached
// for every pair of the unrefined report: refined must be the result of
// unrefined.RefineMHP. ok is false when any pair's coordinates cannot be
// canonicalized (the facts are then not stored).
func EncodeMHPFacts(unrefined, refined *Report, idx *summary.Indexer) (*summary.MHPFacts, bool) {
	reason := make(map[*RacePair]string, len(refined.Pruned))
	for _, pp := range refined.Pruned {
		reason[pp.Pair] = pp.Reason
	}
	kept := make(map[*RacePair]bool, len(refined.Pairs))
	for _, p := range refined.Pairs {
		kept[p] = true
	}
	facts := &summary.MHPFacts{}
	for _, p := range unrefined.Pairs {
		rsn, pruned := reason[p]
		if !pruned && !kept[p] {
			return nil, false // refined is not a refinement of unrefined
		}
		fp, ok := factCoords(p, idx)
		if !ok {
			return nil, false
		}
		fp.Pruned = pruned
		fp.Reason = rsn
		facts.Pairs = append(facts.Pairs, fp)
	}
	return facts, true
}

// ApplyMHPFacts replays stored refinement verdicts through RefineMHP.
// Every fact must match its pair position-for-position (function names and
// node ordinals for both accesses); any mismatch returns ok=false and the
// caller must fall back to the real MHP analysis (fail-closed).
func ApplyMHPFacts(unrefined *Report, facts *summary.MHPFacts, idx *summary.Indexer) (*Report, bool) {
	if len(facts.Pairs) != len(unrefined.Pairs) {
		return nil, false
	}
	okAll := true
	i := 0
	refined := unrefined.RefineMHP(func(p *RacePair) (bool, string) {
		f := facts.Pairs[i]
		i++
		fp, ok := factCoords(p, idx)
		if !ok || fp.FnA != f.FnA || fp.NodeA != f.NodeA || fp.FnB != f.FnB || fp.NodeB != f.NodeB {
			okAll = false
			return false, ""
		}
		return f.Pruned, f.Reason
	})
	if !okAll {
		return nil, false
	}
	return refined, true
}

// factCoords canonicalizes a race pair's two access nodes.
func factCoords(p *RacePair, idx *summary.Indexer) (summary.FactPair, bool) {
	fnA, ordA, okA := idx.NodeRef(p.A.Node)
	fnB, ordB, okB := idx.NodeRef(p.B.Node)
	if !okA || !okB || fnA != p.A.Fn.Name || fnB != p.B.Fn.Name {
		return summary.FactPair{}, false
	}
	return summary.FactPair{FnA: fnA, NodeA: ordA, FnB: fnB, NodeB: ordB}, true
}
