package relay_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/mhp"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/relay"
	"repro/internal/summary"
)

// The fuzz seed program: a small multi-threaded MiniC program exercising
// globals, locks, spawn, composition through a helper chain, arrays and
// pointer parameters. The fuzzer replaces one function's body with an
// arbitrary statement list and checks that a store-primed incremental
// analysis of the mutant is byte-identical to a fresh one.

var fuzzHeader = `
int g;
int h;
int m;
int buf[16];
`

var fuzzFuncs = []struct{ name, sig, body string }{
	{"leaf", "void leaf(int x)", "g = g + x;"},
	{"helper", "void helper(int n)", "lock(&m); leaf(n); h = h + 1; unlock(&m);"},
	{"fill", "void fill(int *dst, int v, int len)", "for (int i = 0; i < len; i++) { dst[i] = v; }"},
	{"worker", "void worker(int id)", "helper(id); fill(buf, id, 8); buf[id] = buf[id] + 1;"},
	{"main", "int main(void)", "int t = spawn(worker, 1); helper(0); fill(buf, 2, 4); join(t); return g + h;"},
}

// assembleFuzzProgram rebuilds the seed with function mutIdx's body
// replaced by newBody.
func assembleFuzzProgram(mutIdx int, newBody string) string {
	var sb strings.Builder
	sb.WriteString(fuzzHeader)
	for i, fn := range fuzzFuncs {
		body := fn.body
		if i == mutIdx {
			body = newBody
		}
		fmt.Fprintf(&sb, "%s { %s }\n", fn.sig, body)
	}
	return sb.String()
}

func analyzeFor(src string) (*types.Info, *pointsto.Analysis, *callgraph.Graph, error) {
	file, err := parser.Parse("fuzz", src)
	if err != nil {
		return nil, nil, nil, err
	}
	info, err := types.Check(file)
	if err != nil {
		return nil, nil, nil, err
	}
	pta := pointsto.Analyze(info)
	return info, pta, callgraph.Build(info, pta), nil
}

// FuzzIncrementalEquivalence mutates one function body of the seed
// program and requires the incremental analysis (warm store, primed with
// the unmutated seed) to produce byte-identical reports — unrefined and
// MHP-refined — versus a fresh whole-program analysis of the mutant.
func FuzzIncrementalEquivalence(f *testing.F) {
	// The scripted edit classes from the differential tests, as seeds.
	f.Add(uint8(0), "g = g + x + 1;")                                       // leaf edit
	f.Add(uint8(4), "int t = spawn(worker, 1); join(t); return g;")         // touch main
	f.Add(uint8(1), "leaf(n); h = h + 1;")                                  // remove a lock
	f.Add(uint8(1), "lock(&m); lock(&g); leaf(n); unlock(&g); unlock(&m);") // add a lock
	f.Add(uint8(2), "while (len > 0) { len--; dst[len] = v; }")             // rewrite a loop
	f.Add(uint8(3), "fill(buf, id, 16); g = buf[0];")                       // change callees
	f.Add(uint8(0), ";")                                                    // empty the leaf

	f.Fuzz(func(t *testing.T, fnIdx uint8, newBody string) {
		mutIdx := int(fnIdx) % len(fuzzFuncs)
		mutant := assembleFuzzProgram(mutIdx, newBody)
		info, pta, cg, err := analyzeFor(mutant)
		if err != nil {
			t.Skip() // mutation does not parse or check; nothing to compare
		}

		// Prime the store with the unmutated seed.
		store := summary.NewStore()
		sInfo, sPTA, sCG, err := analyzeFor(assembleFuzzProgram(-1, ""))
		if err != nil {
			t.Fatalf("seed program invalid: %v", err)
		}
		relay.AnalyzeIncremental(sInfo, sPTA, sCG, 2, store)

		inc, stats := relay.AnalyzeIncremental(info, pta, cg, 2, store)
		fresh := relay.AnalyzeParallel(info, pta, cg, 1)

		if got, want := inc.Render(), fresh.Render(); got != want {
			t.Fatalf("mutating %s: incremental report diverged\n--- incremental ---\n%s--- fresh ---\n%s\ndirty: %v",
				fuzzFuncs[mutIdx].name, got, want, stats.Dirty)
		}
		if got, want := mhp.Refine(inc).Render(), mhp.Refine(fresh).Render(); got != want {
			t.Fatalf("mutating %s: refined report diverged\n--- incremental ---\n%s--- fresh ---\n%s",
				fuzzFuncs[mutIdx].name, got, want)
		}
		if stats.ReusedFuncs+stats.RecomputedFuncs != stats.TotalFuncs {
			t.Fatalf("stats do not add up: %+v", stats)
		}
	})
}
