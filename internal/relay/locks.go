package relay

import (
	"fmt"
	"strings"

	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
)

// Lock representatives.
//
// A lockset analysis needs *must-alias* lock names: claiming two threads
// hold "the same lock" when they hold different mutexes would hide real
// races. Following RELAY, lock names are symbolic lvalue paths:
//
//	A(x)     = G#x | L#fn#x | P@i        (global / local / parameter cell)
//	A(*e)    = V(e)
//	A(e.f)   = A(e).f      A(e->f) = V(e).f     A(e[c]) = A(e)[c]
//	V(&lv)   = A(lv)
//	V(x)     = ld(A(x))                   (the value currently stored)
//
// The representative of lock(arg) is V(arg): the address value of the
// mutex. Parameter-relative names (containing P@i) are substituted at call
// sites: ld(P@i) becomes V(actual_i). Names that remain parameter-relative
// after substitution, and lvalues the grammar cannot express (variable
// array indices), are unresolvable; dropping them only shrinks locksets,
// which is the sound direction.

// lockRepOfArg computes the representative for the argument of
// lock()/unlock(); ok is false when unresolvable.
func (rl *analyzer) lockRepOfArg(e ast.Expr, fn *types.FuncInfo) (string, bool) {
	return rl.valueRep(e, fn)
}

func (rl *analyzer) valueRep(e ast.Expr, fn *types.FuncInfo) (string, bool) {
	switch e := e.(type) {
	case *ast.Unary:
		if e.Op == token.AMP {
			return rl.addrRep(e.X, fn)
		}
	case *ast.Ident:
		a, ok := rl.addrRep(e, fn)
		if !ok {
			return "", false
		}
		// Arrays decay: their value is their address.
		if t := rl.info.Types[e.ID()]; t != nil && t.Kind == types.Array {
			return a, true
		}
		return "ld(" + a + ")", true
	case *ast.Field:
		a, ok := rl.addrRep(e, fn)
		if !ok {
			return "", false
		}
		return "ld(" + a + ")", true
	}
	return "", false
}

func (rl *analyzer) addrRep(e ast.Expr, fn *types.FuncInfo) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		o := rl.info.Uses[e.ID()]
		if o == nil {
			return "", false
		}
		switch o.Kind {
		case types.ObjGlobal:
			return "G#" + o.Name, true
		case types.ObjLocal:
			return fmt.Sprintf("L#%s#%s", fn.Name, o.Name), true
		case types.ObjParam:
			return fmt.Sprintf("P@%d", o.Index), true
		}
		return "", false
	case *ast.Unary:
		if e.Op == token.STAR {
			return rl.valueRep(e.X, fn)
		}
	case *ast.Field:
		if e.Arrow {
			v, ok := rl.valueRep(e.X, fn)
			if !ok {
				return "", false
			}
			return v + "." + e.Name, true
		}
		a, ok := rl.addrRep(e.X, fn)
		if !ok {
			return "", false
		}
		return a + "." + e.Name, true
	case *ast.Index:
		c, isConst := e.Index.(*ast.IntLit)
		if !isConst {
			return "", false
		}
		t := rl.info.Types[e.X.ID()]
		if t != nil && t.Kind == types.Array {
			a, ok := rl.addrRep(e.X, fn)
			if !ok {
				return "", false
			}
			return fmt.Sprintf("%s[%d]", a, c.Value), true
		}
		v, ok := rl.valueRep(e.X, fn)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%s[%d]", v, c.Value), true
	}
	return "", false
}

// substRep rewrites a callee-relative representative into the caller's
// naming given the call's actual arguments; ok is false when the name stays
// parameter-relative.
func (rl *analyzer) substRep(rep string, call *ast.Call, fn *types.FuncInfo) (string, bool) {
	if !strings.Contains(rep, "P@") {
		// L# names are function-local mutexes; they remain valid names
		// (distinct per function) across composition.
		return rep, true
	}
	out := rep
	for i, arg := range call.Args {
		ldName := fmt.Sprintf("ld(P@%d)", i)
		if strings.Contains(out, ldName) {
			v, ok := rl.valueRep(arg, fn)
			if !ok {
				return "", false
			}
			out = strings.ReplaceAll(out, ldName, v)
		}
	}
	if strings.Contains(out, "P@") {
		return "", false
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Calls

// call handles a call expression: sync builtins mutate the lockstate;
// direct and indirect function calls compose callee summaries.
func (w *funcWalker) call(e *ast.Call, stmt ast.NodeID, ls *lockstate) {
	// Argument evaluation reads happen regardless of the callee, except
	// that &x arguments compute addresses.
	for _, arg := range e.Args {
		w.expr(arg, stmt, ls, false)
	}

	if target := w.rl.info.CallTargets[e.ID()]; target != nil {
		if target.Kind == types.ObjBuiltin {
			w.builtinCall(e, target.Builtin, ls)
			return
		}
		w.compose(w.rl.info.Funcs[target.Name], e, ls)
		return
	}
	// Indirect call: compose every possible callee.
	for _, callee := range w.rl.pta.CallTargets[e.ID()] {
		w.compose(callee, e, ls)
	}
}

func (w *funcWalker) builtinCall(e *ast.Call, op types.BuiltinOp, ls *lockstate) {
	switch op {
	case types.BLock:
		if rep, ok := w.rl.lockRepOfArg(e.Args[0], w.fn); ok {
			ls.acquire(rep)
		}
		// An unresolvable lock argument acquires an unnameable lock:
		// the lockset simply does not grow (sound).
	case types.BUnlock:
		if rep, ok := w.rl.lockRepOfArg(e.Args[0], w.fn); ok {
			ls.release(rep)
		} else {
			ls.releaseUnknown()
		}
	case types.BCondWait:
		// cond_wait releases and reacquires the mutex: the lockset is the
		// same after the call, but RELAY (like ours) does not model the
		// happens-before edge — a source of false positives (§3.3).
	case types.BSpawn:
		// The spawned function's accesses belong to the child thread
		// root, not to this summary. Nothing composes here.
	}
}

// compose plugs a callee summary into the current walk (paper §3.1:
// "plugging in the summaries of the callee functions").
func (w *funcWalker) compose(callee *types.FuncInfo, call *ast.Call, ls *lockstate) {
	if callee == nil {
		return
	}
	sum := w.rl.summaries[callee]
	if sum == nil {
		// Callee in a later SCC cannot happen (bottom-up order), but a
		// not-yet-computed summary within this SCC iteration is possible;
		// it converges on the next iteration.
		return
	}
	// Each callee access: effective lockset = (ls.plus \ subst(minus)) ∪
	// subst(plus); with unresolvable minus clearing the caller's locks.
	for _, acc := range sum.Accesses {
		eff := newLockstate()
		for k := range ls.plus {
			eff.plus[k] = true
		}
		for _, mrep := range acc.minus {
			if sub, ok := w.rl.substRep(mrep, call, w.fn); ok {
				delete(eff.plus, sub)
			} else {
				// Unknown released lock: drop everything (conservative).
				eff.plus = make(map[string]bool)
				break
			}
		}
		for _, prep := range acc.plus {
			if sub, ok := w.rl.substRep(prep, call, w.fn); ok {
				eff.plus[sub] = true
			}
		}
		w.addAccess(&summaryAccess{
			fn:    acc.fn,
			node:  acc.node,
			stmt:  acc.stmt,
			write: acc.write,
			objs:  acc.objs,
			plus:  sortedKeys(eff.plus),
			minus: sortedKeys(ls.minus),
			pos:   acc.pos,
		})
	}
	// Net effect on the caller's lockstate.
	for _, mrep := range sum.NetMinus {
		if sub, ok := w.rl.substRep(mrep, call, w.fn); ok {
			ls.release(sub)
		} else {
			ls.releaseUnknown()
		}
	}
	for _, prep := range sum.NetPlus {
		if sub, ok := w.rl.substRep(prep, call, w.fn); ok {
			ls.acquire(sub)
		}
	}
}
