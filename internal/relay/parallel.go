package relay

import (
	"fmt"

	"repro/internal/callgraph"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
	"repro/internal/pool"
)

// Parallel summary computation.
//
// RELAY's bottom-up composition is embarrassingly parallel across the
// callgraph SCC condensation: a summary depends only on the summaries of
// its callee SCCs, so all SCCs of one condensation wave (callgraph.Waves)
// can be analyzed concurrently, with the per-SCC fixpoint iteration kept
// sequential inside its worker. The original RELAY distributed exactly
// this schedule across a cluster (Voung et al., FSE 2007 §5); here it is a
// bounded worker pool.
//
// Determinism: a summary is a pure function of the function body and the
// (completed) callee summaries, and each wave ends with a full barrier, so
// the summaries — and therefore the Report — are byte-identical to the
// sequential walk no matter how workers interleave. The only shared
// mutable state during a wave is each worker's own Summary structs; the
// summaries map itself is fully populated before the first wave starts.

// AnalyzeParallel runs the full RELAY pipeline with summary computation
// distributed over at most `workers` goroutines. workers <= 1 selects the
// sequential post-order walk; any value yields an identical Report.
func AnalyzeParallel(info *types.Info, pta *pointsto.Analysis, cg *callgraph.Graph, workers int) *Report {
	rl := &analyzer{
		info:      info,
		pta:       pta,
		cg:        cg,
		summaries: make(map[*types.FuncInfo]*Summary),
	}
	if workers <= 1 {
		rl.computeSummaries()
	} else if err := rl.computeSummariesParallel(workers); err != nil {
		// No production error sources exist (errors come only from the
		// test-only fault hook), so this is unreachable outside tests.
		panic(fmt.Sprintf("relay: parallel summary computation failed: %v", err))
	}
	return rl.detectRaces()
}

// computeSummariesParallel is the wave-scheduled counterpart of
// computeSummaries, scheduled on the shared wave pool (internal/pool).
// Each wave ends with a full barrier (pool.RunWave returns only when the
// wave is complete, publishing its summaries); an error cancels all
// outstanding work with a higher SCC index while lower-index SCCs of the
// same wave still run, so the surfaced error is deterministic: the
// least-index fault of the first faulty wave — exactly the error the
// sequential walk would hit first.
func (rl *analyzer) computeSummariesParallel(workers int) error {
	// Pre-create every summary sequentially so the map is never written
	// during the concurrent phase: workers mutate only the Summary structs
	// of their own SCC and read completed callee summaries.
	for _, scc := range rl.cg.SCCs {
		for _, fn := range scc {
			rl.summaries[fn] = &Summary{Fn: fn, accessKeys: make(map[string]bool)}
		}
	}

	for _, wave := range rl.cg.Waves() {
		err := pool.RunWave(workers, wave, func(scc int) error {
			if err := rl.analyzeSCC(scc); err != nil {
				return fmt.Errorf("scc %d: %w", scc, err)
			}
			return nil
		})
		if err != nil {
			return err // a wave failed: later waves never start
		}
	}
	return nil
}

// analyzeSCC iterates one SCC's summaries to a fixpoint (the sequential
// inner loop of computeSummaries).
func (rl *analyzer) analyzeSCC(i int) error {
	if rl.sccFault != nil {
		if err := rl.sccFault(i); err != nil {
			return err
		}
	}
	scc := rl.cg.SCCs[i]
	for iter := 0; iter < 5; iter++ {
		changed := false
		for _, fn := range scc {
			if rl.analyzeFunc(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}
