package relay

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/callgraph"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

// diamondSrc exercises shared helpers, recursion, locks and multiple
// thread roots across several condensation waves.
const diamondSrc = `
int counter;
int other;
int m;
int m2;

int leafA(int x) { lock(&m); counter = counter + x; unlock(&m); return x; }
int leafB(int x) { counter = counter + x; return x; }
int rec(int x) { if (x > 0) { return rec(x - 1) + leafB(x); } return 0; }
int midA(int x) { return leafA(x) + leafB(x); }
int midB(int x) { lock(&m2); other = other + rec(x); unlock(&m2); return x; }

void worker(int x) {
    midA(x);
    midB(x);
}

int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    midA(0);
    join(t1);
    join(t2);
    return counter + other;
}
`

func analyzeWith(t *testing.T, src string, workers int) *Report {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	pta := pointsto.Analyze(info)
	cg := callgraph.Build(info, pta)
	return AnalyzeParallel(info, pta, cg, workers)
}

// The parallel scheduler must produce a byte-identical report no matter
// the worker count or scheduling.
func TestParallelMatchesSequential(t *testing.T) {
	want := analyzeWith(t, diamondSrc, 1).Render()
	if want == "" {
		t.Fatal("empty sequential render")
	}
	for _, workers := range []int{2, 4, 8} {
		for round := 0; round < 5; round++ {
			got := analyzeWith(t, diamondSrc, workers).Render()
			if got != want {
				t.Fatalf("workers=%d round=%d: parallel report differs\n--- sequential ---\n%s\n--- parallel ---\n%s",
					workers, round, want, got)
			}
		}
	}
}

// Benchmarks are the realistic workload: every one must analyze
// identically under parallel scheduling.
func TestParallelMatchesSequentialOnBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want := analyzeWith(t, b.FullSource(), 1).Render()
			got := analyzeWith(t, b.FullSource(), 8).Render()
			if got != want {
				t.Errorf("%s: parallel report differs from sequential", b.Name)
			}
		})
	}
}

// TestParallelSummariesStress runs the parallel analysis of the largest
// benchmark repeatedly at several GOMAXPROCS settings. Run under -race in
// CI (with GOMAXPROCS ∈ {1,2,8} set externally as well), it is the
// concurrency soak for the wave worker pool.
func TestParallelSummariesStress(t *testing.T) {
	largest := bench.All()[0]
	for _, b := range bench.All() {
		if b.LOC() > largest.LOC() {
			largest = b
		}
	}
	src := largest.FullSource()
	want := analyzeWith(t, src, 1).Render()

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := analyzeWith(t, src, 8).Render()
				if got != want {
					t.Errorf("GOMAXPROCS=%d: %s parallel report differs", procs, largest.Name)
				}
			}()
		}
		wg.Wait()
	}
}

// A mid-wave error must cancel outstanding higher-index work and surface
// the least-index error of the first faulty wave — the same error the
// sequential walk would hit first — on every run.
func TestMidWaveErrorCancellation(t *testing.T) {
	f := parser.MustParse("t.mc", diamondSrc)
	info := types.MustCheck(f)
	pta := pointsto.Analyze(info)
	cg := callgraph.Build(info, pta)

	waves := cg.Waves()
	// Pick the first wave with at least two SCCs and fault both; the
	// lower-index fault must win deterministically.
	faultWave := -1
	for wi, wave := range waves {
		if len(wave) >= 2 {
			faultWave = wi
			break
		}
	}
	if faultWave < 0 {
		t.Fatalf("test program has no multi-SCC wave; waves: %v", waves)
	}
	lo, hi := waves[faultWave][0], waves[faultWave][1]
	waveOf := make(map[int]int)
	for wi, wave := range waves {
		for _, scc := range wave {
			waveOf[scc] = wi
		}
	}

	errLo := errors.New("fault-lo")
	errHi := errors.New("fault-hi")
	for round := 0; round < 20; round++ {
		rl := &analyzer{
			info:      info,
			pta:       pta,
			cg:        cg,
			summaries: make(map[*types.FuncInfo]*Summary),
		}
		var ran sync.Map
		var laterWaveRuns atomic.Int64
		rl.sccFault = func(scc int) error {
			ran.Store(scc, true)
			if waveOf[scc] > faultWave {
				laterWaveRuns.Add(1)
			}
			switch scc {
			case lo:
				return errLo
			case hi:
				return errHi
			}
			return nil
		}
		err := rl.computeSummariesParallel(4)
		if !errors.Is(err, errLo) {
			t.Fatalf("round %d: got error %v, want the least-index fault %v", round, err, errLo)
		}
		wantMsg := fmt.Sprintf("scc %d: %s", lo, errLo)
		if err.Error() != wantMsg {
			t.Fatalf("round %d: error text %q, want %q", round, err.Error(), wantMsg)
		}
		if n := laterWaveRuns.Load(); n != 0 {
			t.Fatalf("round %d: %d SCCs from waves after the faulty one ran; cancellation failed", round, n)
		}
		if _, ok := ran.Load(lo); !ok {
			t.Fatalf("round %d: least-index faulty SCC never ran", round)
		}
	}
}
