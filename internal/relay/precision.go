package relay

import (
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/summary"
)

// This file exports the RELAY internals the precision passes
// (internal/escape) and the certifier's discharge check re-derive their
// facts from: the per-root materialized accesses detectRaces pairs up, the
// spawn-multiplicity facts, and the symbolic lock-representative grammar.
// Keeping them here avoids duplicating the materialization and naming
// logic while leaving the consumers free of relay's private state.

// RootAccess is one summary access materialized at a thread root, with the
// absolute lockset it holds there (entry holds no locks, so the absolute
// lockset is the access's plus set). These are exactly the accesses
// detectRaces generated pairs from, in the same order.
type RootAccess struct {
	Root *types.FuncInfo
	Acc  *Access
}

// RootAccesses re-materializes the per-root accesses of the analyzed
// program from the function summaries the report carries.
func (r *Report) RootAccesses() []RootAccess {
	var all []RootAccess
	for _, root := range r.CG.Roots {
		sum := r.Summaries[root]
		if sum == nil {
			continue
		}
		for _, sa := range sum.Accesses {
			all = append(all, RootAccess{Root: root, Acc: &Access{
				Fn:      sa.fn,
				Node:    sa.node,
				Stmt:    sa.stmt,
				Write:   sa.write,
				Objs:    sa.objs,
				Lockset: sa.plus,
				Pos:     sa.pos,
			}})
		}
	}
	return all
}

// SummariesComplete reports whether every function summary stayed below
// the access cap. A capped summary may have dropped accesses, so any
// whole-program reasoning over RootAccesses (escape seeding, post-spawn
// write collection) must fail closed when this is false.
func (r *Report) SummariesComplete() bool {
	for _, s := range r.Summaries {
		if s != nil && len(s.Accesses) >= maxSummaryAccesses {
			return false
		}
	}
	return true
}

// MultiInstanceRoots reports, per thread root, whether more than one
// instance may run concurrently — the same facts detectRaces uses to
// decide whether a root can race with itself.
func (r *Report) MultiInstanceRoots() map[*types.FuncInfo]bool {
	return spawnMultiplicity(r.Info, r.CG)
}

// LockRep resolves an expression to RELAY's symbolic lock representative
// in fn's naming (G#g, L#fn#x, P@i, with .field / [const] / ld(...)
// suffix structure), exactly as the summary walk names acquired locks.
// ok=false means the grammar cannot name the expression.
func (r *Report) LockRep(e ast.Expr, fn *types.FuncInfo) (string, bool) {
	rl := &analyzer{info: r.Info, pta: r.PTA}
	return rl.valueRep(e, fn)
}

// EncodePrecisionFacts records, portably, the verdict the precision
// refinement reached for every pair of the base report: refined must be
// the result of base.RefinePrecision. The encoding is the same
// positional pair-verdict artifact MHP facts use; only the store key
// distinguishes the two layers.
func EncodePrecisionFacts(base, refined *Report, idx *summary.Indexer) (*summary.MHPFacts, bool) {
	return EncodeMHPFacts(base, refined, idx)
}

// ApplyPrecisionFacts replays stored precision verdicts through
// RefinePrecision. Every fact must match its pair position-for-position;
// any mismatch returns ok=false and the caller must fall back to the real
// precision analysis (fail-closed).
func ApplyPrecisionFacts(base *Report, facts *summary.MHPFacts, idx *summary.Indexer) (*Report, bool) {
	if len(facts.Pairs) != len(base.Pairs) {
		return nil, false
	}
	okAll := true
	i := 0
	refined := base.RefinePrecision(func(p *RacePair) (bool, string) {
		f := facts.Pairs[i]
		i++
		fp, ok := factCoords(p, idx)
		if !ok || fp.FnA != f.FnA || fp.NodeA != f.NodeA || fp.FnB != f.FnB || fp.NodeB != f.NodeB {
			okAll = false
			return false, ""
		}
		return f.Pruned, f.Reason
	})
	if !okAll {
		return nil, false
	}
	return refined, true
}
