package relay

import (
	"sort"

	"repro/internal/callgraph"
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

// detectRaces materializes per-root accesses and reports conflicting pairs
// with disjoint locksets (paper §3.1: "the tool reports a race if a pair of
// memory accesses in different threads could access the same shared object,
// the intersection of their locksets is empty, and at least one of the
// accesses is a write").
func (rl *analyzer) detectRaces() *Report {
	rep := &Report{
		Info:      rl.info,
		PTA:       rl.pta,
		CG:        rl.cg,
		RacyNodes: make(map[ast.NodeID]*Access),
		RacyFuncs: make(map[*types.FuncInfo]bool),
		FuncPairs: make(map[[2]string][]*RacePair),
		Summaries: rl.summaries,
	}

	type rootAccess struct {
		root *types.FuncInfo
		acc  *Access
	}

	multi := spawnMultiplicity(rl.info, rl.cg)

	// Materialize accesses per thread root. At a root, entry holds no
	// locks, so the absolute lockset is the access's plus set.
	var all []rootAccess
	for _, root := range rl.cg.Roots {
		sum := rl.summaries[root]
		if sum == nil {
			continue
		}
		for _, sa := range sum.Accesses {
			all = append(all, rootAccess{root: root, acc: &Access{
				Fn:      sa.fn,
				Node:    sa.node,
				Stmt:    sa.stmt,
				Write:   sa.write,
				Objs:    sa.objs,
				Lockset: sa.plus,
				Pos:     sa.pos,
			}})
		}
	}

	// Bucket accesses by Steensgaard class for pair generation.
	byClass := make(map[int][]int) // class -> indices into all
	for i, ra := range all {
		seen := make(map[int]bool)
		for _, o := range ra.acc.Objs {
			c := rl.pta.SteensClass(o)
			if !seen[c] {
				seen[c] = true
				byClass[c] = append(byClass[c], i)
			}
		}
	}

	canRace := func(r1, r2 *types.FuncInfo) bool {
		if r1 != r2 {
			return true
		}
		// The same root can race with itself only when spawned more than
		// once; main runs once.
		if r1.Name == "main" {
			return false
		}
		return multi[r1]
	}

	lockDisjoint := func(a, b []string) bool {
		set := make(map[string]bool, len(a))
		for _, l := range a {
			set[l] = true
		}
		for _, l := range b {
			if set[l] {
				return false
			}
		}
		return true
	}

	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	seenPair := make(map[[2]ast.NodeID]bool)
	for _, c := range classes {
		idxs := byClass[c]
		for ii := 0; ii < len(idxs); ii++ {
			for jj := ii; jj < len(idxs); jj++ {
				ra, rb := all[idxs[ii]], all[idxs[jj]]
				if !ra.acc.Write && !rb.acc.Write {
					continue
				}
				if ra.acc.Node == rb.acc.Node && ra.root == rb.root && !multi[ra.root] {
					continue
				}
				if !canRace(ra.root, rb.root) {
					continue
				}
				if !lockDisjoint(ra.acc.Lockset, rb.acc.Lockset) {
					continue
				}
				if !rl.sharedWitness(ra.acc.Objs, rb.acc.Objs) {
					continue
				}
				p := &RacePair{A: ra.acc, B: rb.acc, RootA: ra.root, RootB: rb.root}
				k := p.Key()
				if seenPair[k] {
					continue
				}
				seenPair[k] = true
				rep.Pairs = append(rep.Pairs, p)
			}
		}
	}

	sort.Slice(rep.Pairs, func(i, j int) bool {
		ki, kj := rep.Pairs[i].Key(), rep.Pairs[j].Key()
		if ki[0] != kj[0] {
			return ki[0] < kj[0]
		}
		return ki[1] < kj[1]
	})

	for _, p := range rep.Pairs {
		rep.RacyNodes[p.A.Node] = p.A
		rep.RacyNodes[p.B.Node] = p.B
		rep.RacyFuncs[p.A.Fn] = true
		rep.RacyFuncs[p.B.Fn] = true
		fp := p.FnPair()
		rep.FuncPairs[fp] = append(rep.FuncPairs[fp], p)
	}
	return rep
}

// sharedWitness applies the escape filter (paper §6.2): the pair stands
// only if some same-class object pair is actually shareable — not a
// non-escaping heapified local, and not a function object.
func (rl *analyzer) sharedWitness(a, b []pointsto.ObjID) bool {
	classOf := rl.pta.SteensClass
	for _, oa := range a {
		obj := rl.pta.Obj(oa)
		if obj.Kind == pointsto.OFunc {
			continue
		}
		if !rl.pta.Escapes(oa) {
			continue
		}
		ca := classOf(oa)
		for _, ob := range b {
			objB := rl.pta.Obj(ob)
			if objB.Kind == pointsto.OFunc {
				continue
			}
			if !rl.pta.Escapes(ob) {
				continue
			}
			if classOf(ob) == ca {
				return true
			}
		}
	}
	return false
}

// spawnMultiplicity reports, per thread root, whether more than one
// instance may run: either multiple spawn sites target it, or a spawn site
// sits inside a loop. It is shared between race-pair generation and the
// refinement passes (Report.MultiInstanceRoots), so both reason from the
// same multiplicity facts.
func spawnMultiplicity(info *types.Info, cg *callgraph.Graph) map[*types.FuncInfo]bool {
	count := make(map[*types.FuncInfo]int)
	inLoop := make(map[*types.FuncInfo]bool)

	// Spawn edges from the call graph.
	spawnSites := make(map[ast.NodeID][]*types.FuncInfo)
	for _, e := range cg.Edges {
		if e.Spawn {
			count[e.Callee]++
			spawnSites[e.Site.ID()] = append(spawnSites[e.Site.ID()], e.Callee)
		}
	}
	// Mark spawn sites inside loops.
	for _, fn := range info.FuncList {
		var loopDepth int
		var walk func(s ast.Stmt)
		walkExprs := func(n ast.Node) {
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.Call); ok && loopDepth > 0 {
					for _, callee := range spawnSites[call.ID()] {
						inLoop[callee] = true
					}
				}
				return true
			})
		}
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					walk(st)
				}
			case *ast.IfStmt:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *ast.WhileStmt:
				loopDepth++
				walk(s.Body)
				loopDepth--
			case *ast.ForStmt:
				loopDepth++
				walk(s.Body)
				loopDepth--
			default:
				walkExprs(s)
			}
		}
		walk(fn.Decl.Body)
	}

	out := make(map[*types.FuncInfo]bool)
	for fn, n := range count {
		out[fn] = n > 1 || inLoop[fn]
	}
	return out
}
