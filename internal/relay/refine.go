package relay

import (
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
)

// PrunedPair records one race pair removed by a refinement pass, with the
// provenance of the proof that discharged it (e.g. "pre-fork",
// "join-ordered", "barrier-phase").
type PrunedPair struct {
	Pair   *RacePair
	Reason string
}

// RefineMHP returns a copy of the report with every pair the verdict
// function discharges moved to Pruned. The verdict is supplied by a
// may-happen-in-parallel analysis (internal/mhp); keeping it a callback
// avoids an import cycle and keeps RELAY itself paper-faithful. The
// original report is not modified, so the unrefined pair set remains
// available for comparison.
//
// The derived indexes (RacyNodes, RacyFuncs, FuncPairs) are rebuilt from
// the surviving pairs, so downstream consumers (the instrumenter) see a
// consistent, smaller race report.
func (r *Report) RefineMHP(verdict func(*RacePair) (prune bool, reason string)) *Report {
	out := &Report{
		Info:      r.Info,
		PTA:       r.PTA,
		CG:        r.CG,
		RacyNodes: make(map[ast.NodeID]*Access),
		RacyFuncs: make(map[*types.FuncInfo]bool),
		FuncPairs: make(map[[2]string][]*RacePair),
		Summaries: r.Summaries,
	}
	for _, p := range r.Pairs {
		if prune, reason := verdict(p); prune {
			out.Pruned = append(out.Pruned, PrunedPair{Pair: p, Reason: reason})
			continue
		}
		out.Pairs = append(out.Pairs, p)
	}
	for _, p := range out.Pairs {
		out.RacyNodes[p.A.Node] = p.A
		out.RacyNodes[p.B.Node] = p.B
		out.RacyFuncs[p.A.Fn] = true
		out.RacyFuncs[p.B.Fn] = true
		fp := p.FnPair()
		out.FuncPairs[fp] = append(out.FuncPairs[fp], p)
	}
	return out
}

// RefinePrecision is RefineMHP's composing sibling: it applies a further
// discharge verdict to the surviving pairs of an already-refined report,
// carrying the earlier passes' Pruned entries forward so the result holds
// the complete provenance chain (reported → pruned-by-mhp → pruned-by-
// escape/must-lock/read-only → instrumented). Calling it on an unrefined
// report is equally valid — Pruned is then empty and only the precision
// verdicts appear.
func (r *Report) RefinePrecision(verdict func(*RacePair) (prune bool, reason string)) *Report {
	out := r.RefineMHP(verdict)
	if len(r.Pruned) > 0 {
		carried := make([]PrunedPair, 0, len(r.Pruned)+len(out.Pruned))
		carried = append(carried, r.Pruned...)
		out.Pruned = append(carried, out.Pruned...)
	}
	return out
}
