package relay

import (
	"repro/internal/minic/ast"
	"repro/internal/minic/types"
)

// PrunedPair records one race pair removed by a refinement pass, with the
// provenance of the proof that discharged it (e.g. "pre-fork",
// "join-ordered", "barrier-phase").
type PrunedPair struct {
	Pair   *RacePair
	Reason string
}

// RefineMHP returns a copy of the report with every pair the verdict
// function discharges moved to Pruned. The verdict is supplied by a
// may-happen-in-parallel analysis (internal/mhp); keeping it a callback
// avoids an import cycle and keeps RELAY itself paper-faithful. The
// original report is not modified, so the unrefined pair set remains
// available for comparison.
//
// The derived indexes (RacyNodes, RacyFuncs, FuncPairs) are rebuilt from
// the surviving pairs, so downstream consumers (the instrumenter) see a
// consistent, smaller race report.
func (r *Report) RefineMHP(verdict func(*RacePair) (prune bool, reason string)) *Report {
	out := &Report{
		Info:      r.Info,
		PTA:       r.PTA,
		CG:        r.CG,
		RacyNodes: make(map[ast.NodeID]*Access),
		RacyFuncs: make(map[*types.FuncInfo]bool),
		FuncPairs: make(map[[2]string][]*RacePair),
		Summaries: r.Summaries,
	}
	for _, p := range r.Pairs {
		if prune, reason := verdict(p); prune {
			out.Pruned = append(out.Pruned, PrunedPair{Pair: p, Reason: reason})
			continue
		}
		out.Pairs = append(out.Pairs, p)
	}
	for _, p := range out.Pairs {
		out.RacyNodes[p.A.Node] = p.A
		out.RacyNodes[p.B.Node] = p.B
		out.RacyFuncs[p.A.Fn] = true
		out.RacyFuncs[p.B.Fn] = true
		fp := p.FnPair()
		out.FuncPairs[fp] = append(out.FuncPairs[fp], p)
	}
	return out
}
