// Package relay reimplements the RELAY static data-race detector
// [Voung, Jhala, Lerner, FSE 2007] that Chimera uses to find all potential
// data-races (paper §3).
//
// RELAY is a lockset-based, bottom-up, summary-driven analysis:
//
//   - For every function it computes a summary: the set of shared-memory
//     accesses the function (and its callees) may perform, each with a
//     *relative lockset* — the locks acquired (L+) and released (L-)
//     relative to function entry at the access point.
//   - Summaries compose bottom-up over the call graph: a callee's accesses
//     are translated into the caller's naming (parameters substituted by
//     actual arguments) and extended with the caller's lockset.
//   - Two accesses race if they may be performed by different threads, may
//     touch the same shared object (same Steensgaard alias class), at
//     least one is a write, and their locksets share no common lock.
//
// The analysis is sound in the same sense as RELAY (modulo the paper's §3.2
// corner cases, which do not arise in MiniC: there is no inline assembly,
// and pointer arithmetic is assumed to stay in the object by the points-to
// layer). It is deliberately imprecise in the same ways too: the core
// detector ignores happens-before from fork/join, barriers and condition
// variables, and it inherits the points-to collapses — both are the sources
// of false positives Chimera's optimizations target (paper §3.3). The
// fork/join and barrier portion of that imprecision can optionally be
// recovered statically after the fact: Report.RefineMHP applies a
// may-happen-in-parallel verdict (supplied by internal/mhp) that discharges
// pairs proven non-concurrent, leaving condition-variable ordering and the
// points-to collapses as the remaining over-approximation.
package relay

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/minic/ast"
	"repro/internal/minic/token"
	"repro/internal/minic/types"
	"repro/internal/pointsto"
)

// Access is one static shared-memory access with its absolute lockset,
// materialized at a thread root.
type Access struct {
	// Fn is the function lexically containing the access.
	Fn *types.FuncInfo

	// Node is the lvalue expression node; Stmt is the innermost simple
	// statement containing it (the instrumentation anchor).
	Node ast.NodeID
	Stmt ast.NodeID

	Write bool

	// Objs are the abstract objects the access may touch.
	Objs []pointsto.ObjID

	// Lockset holds the resolved lock representatives held at the access.
	Lockset []string

	Pos token.Pos
}

// RacePair is a potential data race between two static accesses
// (paper §2.1: "a race-pair is a pair of static memory instructions that
// are racy").
type RacePair struct {
	A, B *Access

	// RootA and RootB are thread entry points that can reach the two
	// accesses concurrently.
	RootA, RootB *types.FuncInfo
}

// FnPair returns the racy-function-pair, alphabetically ordered.
func (rp *RacePair) FnPair() [2]string {
	a, b := rp.A.Fn.Name, rp.B.Fn.Name
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Key returns a canonical identifier for deduplication.
func (rp *RacePair) Key() [2]ast.NodeID {
	a, b := rp.A.Node, rp.B.Node
	if a > b {
		a, b = b, a
	}
	return [2]ast.NodeID{a, b}
}

// Report is the full race-detection result.
type Report struct {
	Info *types.Info
	PTA  *pointsto.Analysis
	CG   *callgraph.Graph

	// Pairs are the deduplicated potential race pairs.
	Pairs []*RacePair

	// RacyNodes maps every racy lvalue node to its accesses.
	RacyNodes map[ast.NodeID]*Access

	// RacyFuncs is the set of functions containing at least one racy
	// access.
	RacyFuncs map[*types.FuncInfo]bool

	// FuncPairs maps racy-function-pairs to their race pairs.
	FuncPairs map[[2]string][]*RacePair

	// Pruned holds the pairs a refinement pass (RefineMHP) discharged,
	// with provenance. Empty on an unrefined report.
	Pruned []PrunedPair

	// Summaries, for inspection and tests.
	Summaries map[*types.FuncInfo]*Summary
}

// RacyPartners returns, for a racy node, the set of nodes it races with.
func (r *Report) RacyPartners(n ast.NodeID) []ast.NodeID {
	seen := make(map[ast.NodeID]bool)
	var out []ast.NodeID
	for _, p := range r.Pairs {
		var other ast.NodeID = -1
		if p.A.Node == n {
			other = p.B.Node
		} else if p.B.Node == n {
			other = p.A.Node
		}
		if other >= 0 && !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Analyze runs the full RELAY pipeline with the sequential bottom-up
// summary walk. AnalyzeParallel distributes the walk over SCC waves and
// produces a byte-identical Report.
func Analyze(info *types.Info, pta *pointsto.Analysis, cg *callgraph.Graph) *Report {
	return AnalyzeParallel(info, pta, cg, 1)
}

// AnalyzeProgram is a convenience wrapper building all prerequisite
// analyses from a type-checked file.
func AnalyzeProgram(info *types.Info) *Report {
	return AnalyzeProgramParallel(info, 1)
}

// AnalyzeProgramParallel is AnalyzeProgram with the summary computation
// fanned over the given number of workers; the report is byte-identical
// for every worker count.
func AnalyzeProgramParallel(info *types.Info, workers int) *Report {
	pta := pointsto.Analyze(info)
	cg := callgraph.Build(info, pta)
	return AnalyzeParallel(info, pta, cg, workers)
}

// ---------------------------------------------------------------------------
// Summaries

// summaryAccess is an access inside a function summary, with its relative
// lockset (plus = acquired since entry and still held; minus = released
// since entry).
type summaryAccess struct {
	fn    *types.FuncInfo
	node  ast.NodeID
	stmt  ast.NodeID
	write bool
	objs  []pointsto.ObjID
	plus  []string
	minus []string
	pos   token.Pos
}

// Summary is a RELAY function summary: the guarded accesses and the net
// lock effect (paper §3.1: "a summary of the set of shared objects accessed
// in the function and the lockset held during each of its accesses", plus
// the effect on the caller's lockset).
type Summary struct {
	Fn *types.FuncInfo

	Accesses []*summaryAccess

	// NetPlus are locks held at every return that were acquired locally;
	// NetMinus are locks possibly released relative to entry.
	NetPlus  []string
	NetMinus []string

	// accessKeys dedups accesses by (node, lockset signature).
	accessKeys map[string]bool
}

// AccessCount reports the number of summarized accesses (for tests).
func (s *Summary) AccessCount() int { return len(s.Accesses) }

type analyzer struct {
	info      *types.Info
	pta       *pointsto.Analysis
	cg        *callgraph.Graph
	summaries map[*types.FuncInfo]*Summary

	// sccFault, when non-nil, is invoked before each SCC's fixpoint in the
	// parallel scheduler; a non-nil return aborts the analysis. Test-only:
	// it exists to exercise mid-wave error cancellation.
	sccFault func(scc int) error
}

const maxSummaryAccesses = 200000

func (rl *analyzer) computeSummaries() {
	for _, scc := range rl.cg.SCCs {
		for _, fn := range scc {
			rl.summaries[fn] = &Summary{Fn: fn, accessKeys: make(map[string]bool)}
		}
		// Iterate the SCC to a fixpoint (single-function SCCs converge in
		// one pass unless self-recursive).
		for iter := 0; iter < 5; iter++ {
			changed := false
			for _, fn := range scc {
				if rl.analyzeFunc(fn) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// lockstate is the per-program-point relative lockset.
type lockstate struct {
	plus  map[string]bool
	minus map[string]bool
}

func newLockstate() *lockstate {
	return &lockstate{plus: make(map[string]bool), minus: make(map[string]bool)}
}

func (ls *lockstate) clone() *lockstate {
	n := newLockstate()
	for k := range ls.plus {
		n.plus[k] = true
	}
	for k := range ls.minus {
		n.minus[k] = true
	}
	return n
}

func (ls *lockstate) acquire(rep string) {
	ls.plus[rep] = true
	delete(ls.minus, rep)
}

func (ls *lockstate) release(rep string) {
	if ls.plus[rep] {
		delete(ls.plus, rep)
		return
	}
	ls.minus[rep] = true
}

// releaseUnknown models an unresolvable unlock: every held lock may have
// been released (sound for a must-hold analysis).
func (ls *lockstate) releaseUnknown() {
	for k := range ls.plus {
		delete(ls.plus, k)
		ls.minus[k] = true
	}
}

// meet intersects plus (must-hold) and unions minus (may-released).
func (ls *lockstate) meet(other *lockstate) {
	for k := range ls.plus {
		if !other.plus[k] {
			delete(ls.plus, k)
		}
	}
	for k := range other.minus {
		ls.minus[k] = true
	}
}

func (ls *lockstate) equal(other *lockstate) bool {
	if len(ls.plus) != len(other.plus) || len(ls.minus) != len(other.minus) {
		return false
	}
	for k := range ls.plus {
		if !other.plus[k] {
			return false
		}
	}
	for k := range ls.minus {
		if !other.minus[k] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// analyzeFunc (re)computes fn's summary; reports whether it changed.
func (rl *analyzer) analyzeFunc(fn *types.FuncInfo) bool {
	sum := rl.summaries[fn]
	before := len(sum.Accesses)
	beforeNet := strings.Join(sum.NetPlus, ",") + "|" + strings.Join(sum.NetMinus, ",")

	w := &funcWalker{rl: rl, fn: fn, sum: sum}
	ls := newLockstate()
	out := w.walkBlock(fn.Decl.Body, ls)

	// Net effect: meet of all return states (including fallthrough).
	final := out
	for _, r := range w.returns {
		if final == nil {
			final = r
		} else {
			final.meet(r)
		}
	}
	if final == nil {
		final = newLockstate()
	}
	sum.NetPlus = sortedKeys(final.plus)
	sum.NetMinus = sortedKeys(final.minus)

	afterNet := strings.Join(sum.NetPlus, ",") + "|" + strings.Join(sum.NetMinus, ",")
	return len(sum.Accesses) != before || beforeNet != afterNet
}

type funcWalker struct {
	rl      *analyzer
	fn      *types.FuncInfo
	sum     *Summary
	returns []*lockstate
}

// walkBlock analyzes a block; returns the fall-through lockstate or nil if
// control cannot fall through (the block always returns/breaks).
func (w *funcWalker) walkBlock(b *ast.Block, ls *lockstate) *lockstate {
	cur := ls
	for _, s := range b.Stmts {
		if cur == nil {
			cur = newLockstate() // unreachable; analyze anyway
		}
		cur = w.walkStmt(s, cur)
	}
	return cur
}

func (w *funcWalker) walkStmt(s ast.Stmt, ls *lockstate) *lockstate {
	switch s := s.(type) {
	case *ast.Block:
		return w.walkBlock(s, ls)

	case *ast.DeclStmt:
		if s.Decl.Init != nil {
			w.expr(s.Decl.Init, s.ID(), ls, false)
		}
		return ls

	case *ast.AssignStmt:
		// The RHS and the lvalue's address subexpressions are reads; the
		// lvalue itself is a write (and also a read for compound ops).
		w.expr(s.RHS, s.ID(), ls, false)
		w.lvalue(s.LHS, s.ID(), ls, s.Op != token.ASSIGN)
		return ls

	case *ast.IncDecStmt:
		w.lvalue(s.X, s.ID(), ls, true)
		return ls

	case *ast.ExprStmt:
		return w.exprStmt(s.X, s.ID(), ls)

	case *ast.IfStmt:
		w.expr(s.CondE, s.ID(), ls, false)
		thenLS := ls.clone()
		thenOut := w.walkBlock(s.Then, thenLS)
		var elseOut *lockstate
		if s.Else != nil {
			elseLS := ls.clone()
			elseOut = w.walkStmt(s.Else, elseLS)
		} else {
			elseOut = ls.clone()
		}
		switch {
		case thenOut == nil && elseOut == nil:
			return nil
		case thenOut == nil:
			return elseOut
		case elseOut == nil:
			return thenOut
		default:
			thenOut.meet(elseOut)
			return thenOut
		}

	case *ast.WhileStmt:
		return w.walkLoop(nil, s.CondE, nil, s.Body, s.ID(), ls)

	case *ast.ForStmt:
		return w.walkLoop(s.Init, s.CondE, s.Post, s.Body, s.ID(), ls)

	case *ast.ReturnStmt:
		if s.X != nil {
			w.expr(s.X, s.ID(), ls, false)
		}
		w.returns = append(w.returns, ls.clone())
		return nil

	case *ast.BreakStmt, *ast.ContinueStmt:
		// Conservative: treat as falling through for lockset purposes.
		// (Structured loops make the meet below safe.)
		return ls
	}
	return ls
}

// walkLoop analyzes a loop to a lockstate fixpoint; accesses are recorded
// only on the final iteration so their locksets are stable.
func (w *funcWalker) walkLoop(init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.Block, stmtID ast.NodeID, ls *lockstate) *lockstate {
	if init != nil {
		ls = w.walkStmt(init, ls)
	}
	entry := ls.clone()
	// Fixpoint on the loop-entry lockstate, without recording accesses.
	for i := 0; i < 6; i++ {
		probe := &funcWalker{rl: w.rl, fn: w.fn, sum: &Summary{Fn: w.fn, accessKeys: make(map[string]bool)}}
		st := entry.clone()
		if cond != nil {
			probe.expr(cond, stmtID, st, false)
		}
		out := probe.walkBlock(body, st)
		if out != nil && post != nil {
			out = probe.walkStmt(post, out)
		}
		next := entry.clone()
		if out != nil {
			next.meet(out)
		}
		if next.equal(entry) {
			break
		}
		entry = next
	}
	// Final recording pass with the stable entry state.
	st := entry.clone()
	if cond != nil {
		w.expr(cond, stmtID, st, false)
	}
	out := w.walkBlock(body, st)
	if out != nil && post != nil {
		out = w.walkStmt(post, out)
	}
	// The loop may execute zero times.
	res := entry.clone()
	if out != nil {
		res.meet(out)
	}
	return res
}

// exprStmt handles statement-level expressions; calls get special handling
// for sync builtins and summary composition.
func (w *funcWalker) exprStmt(e ast.Expr, stmt ast.NodeID, ls *lockstate) *lockstate {
	w.expr(e, stmt, ls, false)
	return ls
}

// expr records the reads performed when evaluating e and handles calls.
func (w *funcWalker) expr(e ast.Expr, stmt ast.NodeID, ls *lockstate, _ bool) {
	switch e := e.(type) {
	case *ast.IntLit, *ast.StringLit, *ast.Sizeof:

	case *ast.Ident:
		w.record(e, stmt, false, ls)

	case *ast.Unary:
		if e.Op == token.AMP {
			// Address computation: the base pointer reads inside still
			// happen (e.g. &p->f reads p), but the outer lvalue is not
			// loaded.
			w.addrReads(e.X, stmt, ls)
			return
		}
		if e.Op == token.STAR {
			w.expr(e.X, stmt, ls, false)
			w.record(e, stmt, false, ls)
			return
		}
		w.expr(e.X, stmt, ls, false)

	case *ast.Binary:
		w.expr(e.X, stmt, ls, false)
		w.expr(e.Y, stmt, ls, false)

	case *ast.Cond:
		w.expr(e.CondE, stmt, ls, false)
		w.expr(e.Then, stmt, ls, false)
		w.expr(e.Else, stmt, ls, false)

	case *ast.Index:
		w.addrReads(e, stmt, ls)
		w.record(e, stmt, false, ls)

	case *ast.Field:
		w.addrReads(e, stmt, ls)
		w.record(e, stmt, false, ls)

	case *ast.Call:
		w.call(e, stmt, ls)
	}
}

// addrReads records the reads performed while computing an lvalue address
// (but not the load of the lvalue itself): pointer bases are loaded, while
// taking the address of a variable or array element reads nothing extra.
func (w *funcWalker) addrReads(e ast.Expr, stmt ast.NodeID, ls *lockstate) {
	switch e := e.(type) {
	case *ast.Ident:
		// &x and array decay compute a constant address: no load.
	case *ast.Unary:
		if e.Op == token.STAR {
			w.expr(e.X, stmt, ls, false)
			return
		}
		w.expr(e, stmt, ls, false)
	case *ast.Index:
		// Array base: address computation; pointer base: the pointer
		// value is loaded.
		if t := w.rl.info.Types[e.X.ID()]; t != nil && t.Kind == types.Array {
			w.addrReads(e.X, stmt, ls)
		} else {
			w.expr(e.X, stmt, ls, false)
		}
		w.expr(e.Index, stmt, ls, false)
	case *ast.Field:
		if e.Arrow {
			w.expr(e.X, stmt, ls, false)
		} else {
			w.addrReads(e.X, stmt, ls)
		}
	default:
		w.expr(e, stmt, ls, false)
	}
}

// lvalue records a write access (plus the reads of its address
// computation; alsoRead marks compound assignments).
func (w *funcWalker) lvalue(e ast.Expr, stmt ast.NodeID, ls *lockstate, alsoRead bool) {
	switch e := e.(type) {
	case *ast.Ident:
		w.recordW(e, stmt, ls, alsoRead)
	case *ast.Unary:
		if e.Op == token.STAR {
			w.expr(e.X, stmt, ls, false)
			w.recordW(e, stmt, ls, alsoRead)
		}
	case *ast.Index:
		w.addrReads(e, stmt, ls)
		w.recordW(e, stmt, ls, alsoRead)
	case *ast.Field:
		w.addrReads(e, stmt, ls)
		w.recordW(e, stmt, ls, alsoRead)
	}
}

func (w *funcWalker) recordW(e ast.Expr, stmt ast.NodeID, ls *lockstate, alsoRead bool) {
	w.record(e, stmt, true, ls)
	if alsoRead {
		w.record(e, stmt, false, ls)
	}
}

// record adds an access to the summary if it touches trackable objects.
func (w *funcWalker) record(e ast.Expr, stmt ast.NodeID, write bool, ls *lockstate) {
	objs := w.rl.accessObjects(e)
	if len(objs) == 0 {
		return
	}
	w.addAccess(&summaryAccess{
		fn:    w.fn,
		node:  e.ID(),
		stmt:  stmt,
		write: write,
		objs:  objs,
		plus:  sortedKeys(ls.plus),
		minus: sortedKeys(ls.minus),
		pos:   e.Pos(),
	})
}

func (w *funcWalker) addAccess(a *summaryAccess) {
	if len(w.sum.Accesses) >= maxSummaryAccesses {
		return
	}
	key := fmt.Sprintf("%d|%v|%s|%s", a.node, a.write,
		strings.Join(a.plus, ","), strings.Join(a.minus, ","))
	if w.sum.accessKeys[key] {
		return
	}
	w.sum.accessKeys[key] = true
	w.sum.Accesses = append(w.sum.Accesses, a)
}

// accessObjects returns the abstract objects for an lvalue access,
// filtering out pure (non-escaping, non-address-taken) scalar locals early
// to keep summaries small; escaping locals stay and are handled by the
// escape filter at pair time.
func (rl *analyzer) accessObjects(e ast.Expr) []pointsto.ObjID {
	if id, ok := e.(*ast.Ident); ok {
		o := rl.info.Uses[id.ID()]
		if o == nil {
			return nil
		}
		switch o.Kind {
		case types.ObjLocal, types.ObjParam:
			if !o.AddrTaken {
				return nil // pure local: cannot be shared
			}
		case types.ObjFunc, types.ObjBuiltin:
			return nil
		}
		if oid, ok := rl.pta.VarObjID(o); ok {
			return []pointsto.ObjID{oid}
		}
		return nil
	}
	return rl.pta.ObjectsOf(e.ID())
}
