package relay

import (
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
)

func analyze(t *testing.T, src string) *Report {
	t.Helper()
	f := parser.MustParse("t.mc", src)
	info := types.MustCheck(f)
	return AnalyzeProgram(info)
}

// racyVar reports whether any race pair touches the named global.
func racyVar(t *testing.T, r *Report, name string) bool {
	t.Helper()
	g := r.Info.File.Global(name)
	if g == nil {
		t.Fatalf("no global %s", name)
	}
	obj := r.Info.Objects[g.ID()]
	oid, ok := r.PTA.VarObjID(obj)
	if !ok {
		return false
	}
	for _, p := range r.Pairs {
		for _, o := range p.A.Objs {
			if o == oid {
				return true
			}
		}
		for _, o := range p.B.Objs {
			if o == oid {
				return true
			}
		}
	}
	return false
}

func TestUnprotectedGlobalRaces(t *testing.T) {
	r := analyze(t, `
int counter;
void worker(int n) {
    for (int i = 0; i < n; i++) { counter = counter + 1; }
}
int main(void) {
    int t1 = spawn(worker, 10);
    int t2 = spawn(worker, 10);
    join(t1); join(t2);
    return counter;
}
`)
	if len(r.Pairs) == 0 {
		t.Fatal("no races reported for unprotected counter")
	}
	if !racyVar(t, r, "counter") {
		t.Errorf("counter should be racy")
	}
	if !r.RacyFuncs[r.Info.Funcs["worker"]] {
		t.Errorf("worker should be a racy function")
	}
}

func TestLockedGlobalClean(t *testing.T) {
	r := analyze(t, `
int m;
int counter;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(&m);
        counter = counter + 1;
        unlock(&m);
    }
}
int main(void) {
    int t1 = spawn(worker, 10);
    int t2 = spawn(worker, 10);
    join(t1); join(t2);
    return 0;
}
`)
	if racyVar(t, r, "counter") {
		t.Errorf("locked counter should not be racy; pairs: %d", len(r.Pairs))
	}
}

func TestPartiallyLockedRaces(t *testing.T) {
	// One thread locks, the other does not: still a race.
	r := analyze(t, `
int m;
int g;
void locked(int n) { lock(&m); g = n; unlock(&m); }
void unlocked(int n) { g = n + 1; }
int main(void) {
    int t1 = spawn(locked, 1);
    int t2 = spawn(unlocked, 2);
    join(t1); join(t2);
    return g;
}
`)
	if !racyVar(t, r, "g") {
		t.Errorf("g should be racy (one side unlocked)")
	}
}

func TestDifferentLocksRace(t *testing.T) {
	r := analyze(t, `
int m1;
int m2;
int g;
void w1(int n) { lock(&m1); g = n; unlock(&m1); }
void w2(int n) { lock(&m2); g = n; unlock(&m2); }
int main(void) {
    int t1 = spawn(w1, 1);
    int t2 = spawn(w2, 2);
    join(t1); join(t2);
    return g;
}
`)
	if !racyVar(t, r, "g") {
		t.Errorf("g guarded by different locks should be racy")
	}
}

func TestLockWrapperComposition(t *testing.T) {
	// Locks acquired in a wrapper function still guard the caller's
	// accesses (summary net-lock effect).
	r := analyze(t, `
int m;
int g;
void my_lock(void) { lock(&m); }
void my_unlock(void) { unlock(&m); }
void worker(int n) {
    my_lock();
    g = n;
    my_unlock();
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if racyVar(t, r, "g") {
		t.Errorf("g guarded via wrapper should not be racy")
	}
}

func TestCalleeAccessInheritsCallerLock(t *testing.T) {
	r := analyze(t, `
int m;
int g;
void bump(int n) { g = g + n; }
void worker(int n) {
    lock(&m);
    bump(n);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if racyVar(t, r, "g") {
		t.Errorf("callee access under caller's lock should not be racy")
	}
}

func TestParameterLockSubstitution(t *testing.T) {
	// The lock is passed by pointer; substitution must resolve it to the
	// same global mutex in both threads.
	r := analyze(t, `
int m;
int g;
void locked_store(int *mu, int v) {
    lock(mu);
    g = v;
    unlock(mu);
}
void worker(int n) { locked_store(&m, n); }
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if racyVar(t, r, "g") {
		t.Errorf("parameter-substituted lock should protect g")
	}
}

func TestBarrierFalsePositive(t *testing.T) {
	// The paper's water example (Fig. 2): two phases separated by a
	// barrier never run concurrently, but RELAY ignores barriers and
	// reports the race. This false positive is required behavior.
	r := analyze(t, `
int bar;
int data;
void phase_a(int id) { data = id; }
void phase_b(int id) { data = data + id; }
void worker(int id) {
    phase_a(id);
    barrier_wait(&bar);
    phase_b(id);
}
int main(void) {
    barrier_init(&bar, 2);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return data;
}
`)
	if !racyVar(t, r, "data") {
		t.Errorf("RELAY must report the barrier-separated access as racy (false positive by design)")
	}
	// Both functions should appear in some racy function pair.
	if !r.RacyFuncs[r.Info.Funcs["phase_a"]] || !r.RacyFuncs[r.Info.Funcs["phase_b"]] {
		t.Errorf("phase_a/phase_b should be racy functions")
	}
}

func TestInitThenSpawnFalsePositive(t *testing.T) {
	// Initialization code runs before any thread exists; RELAY ignores
	// fork-join order and still flags it (paper §4.1).
	r := analyze(t, `
int table[64];
void worker(int id) { table[id] = table[id] + 1; }
int main(void) {
    for (int i = 0; i < 64; i++) { table[i] = i; }
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return table[0];
}
`)
	if !racyVar(t, r, "table") {
		t.Errorf("init-vs-worker accesses should be flagged (fork/join ignored)")
	}
}

func TestDisjointIndicesFalsePositive(t *testing.T) {
	// The radix pattern (paper Fig. 4): threads touch disjoint array
	// slices, but index-insensitive points-to collapses the array.
	r := analyze(t, `
int rank[64];
void worker(int base) {
    for (int i = 0; i < 32; i++) { rank[base + i] = i; }
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 32);
    join(t1); join(t2);
    return rank[0];
}
`)
	if !racyVar(t, r, "rank") {
		t.Errorf("disjoint-slice array accesses should be flagged (index-insensitive)")
	}
}

func TestNonEscapingLocalFiltered(t *testing.T) {
	r := analyze(t, `
void worker(int n) {
    int local[16];
    int *p = &local[0];
    for (int i = 0; i < 16; i++) { p[i] = i * n; }
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if len(r.Pairs) != 0 {
		t.Errorf("non-escaping local buffer should be filtered, got %d pairs", len(r.Pairs))
	}
}

func TestEscapingLocalReported(t *testing.T) {
	r := analyze(t, `
int *shared;
void publisher(int n) {
    int leaked;
    shared = &leaked;
    leaked = n;
}
void reader(int n) {
    if (shared != 0) {
        int v = *shared;
        v = v + n;
    }
}
int main(void) {
    int t1 = spawn(publisher, 1);
    int t2 = spawn(reader, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if len(r.Pairs) == 0 {
		t.Errorf("escaping local should be reported")
	}
}

func TestReadOnlySharingClean(t *testing.T) {
	r := analyze(t, `
int table[8];
int sum;
int m;
void worker(int id) {
    int s = 0;
    for (int i = 0; i < 8; i++) { s += table[i]; }
    lock(&m);
    sum += s;
    unlock(&m);
}
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return sum;
}
`)
	// main writes table? No — table is never written, so no write anywhere
	// except sum (locked). There must be no race on table.
	if racyVar(t, r, "table") {
		t.Errorf("read-only table should not race")
	}
}

func TestMainVsMainNotRacy(t *testing.T) {
	r := analyze(t, `
int g;
int main(void) {
    g = 1;
    g = g + 1;
    return g;
}
`)
	if len(r.Pairs) != 0 {
		t.Errorf("single-threaded program reported %d races", len(r.Pairs))
	}
}

func TestSpawnInLoopSelfRace(t *testing.T) {
	r := analyze(t, `
int g;
void worker(int n) { g = n; }
int main(void) {
    int tids[4];
    for (int i = 0; i < 4; i++) { tids[i] = spawn(worker, i); }
    for (int i = 0; i < 4; i++) { join(tids[i]); }
    return g;
}
`)
	if !racyVar(t, r, "g") {
		t.Errorf("worker spawned in a loop should race with itself")
	}
}

func TestStructFieldRaces(t *testing.T) {
	r := analyze(t, `
struct stats { int hits; int misses; };
struct stats gs;
void w1(int n) { gs.hits = gs.hits + n; }
void w2(int n) { gs.misses = gs.misses + n; }
int main(void) {
    int t1 = spawn(w1, 1);
    int t2 = spawn(w1, 2);
    int t3 = spawn(w2, 3);
    join(t1); join(t2); join(t3);
    return gs.hits;
}
`)
	// hits races with hits (two w1 instances); hits should NOT race with
	// misses (distinct fields).
	hitsRacesMisses := false
	for _, p := range r.Pairs {
		na := ""
		nb := ""
		if len(p.A.Objs) > 0 {
			na = r.PTA.Obj(p.A.Objs[0]).Name
		}
		if len(p.B.Objs) > 0 {
			nb = r.PTA.Obj(p.B.Objs[0]).Name
		}
		if (na == "stats.hits" && nb == "stats.misses") || (na == "stats.misses" && nb == "stats.hits") {
			hitsRacesMisses = true
		}
	}
	if hitsRacesMisses {
		t.Errorf("distinct fields should not race with each other")
	}
	if len(r.Pairs) == 0 {
		t.Errorf("expected races on gs.hits between w1 instances")
	}
}

func TestCondWaitKeepsLockset(t *testing.T) {
	r := analyze(t, `
int m;
int cv;
int ready;
void waiter(int n) {
    lock(&m);
    while (ready == 0) { cond_wait(&cv, &m); }
    ready = ready + n;
    unlock(&m);
}
void setter(int n) {
    lock(&m);
    ready = n;
    cond_signal(&cv);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(waiter, 1);
    int t2 = spawn(setter, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if racyVar(t, r, "ready") {
		t.Errorf("ready is always accessed under m; should not race")
	}
}

func TestSummariesExist(t *testing.T) {
	r := analyze(t, `
int g;
void leaf(int n) { g = n; }
void worker(int n) { leaf(n); }
int main(void) {
    int t = spawn(worker, 1);
    join(t);
    g = 2;
    return g;
}
`)
	ws := r.Summaries[r.Info.Funcs["worker"]]
	if ws == nil || ws.AccessCount() == 0 {
		t.Fatalf("worker summary missing or empty")
	}
	// worker's summary includes leaf's access to g.
	found := false
	for _, a := range ws.Accesses {
		if a.fn.Name == "leaf" && a.write {
			found = true
		}
	}
	if !found {
		t.Errorf("worker summary should include leaf's write to g")
	}
}

func TestUnresolvableUnlockClearsLockset(t *testing.T) {
	// unlock through an unanalyzable lvalue must conservatively drop all
	// held locks (a must-hold analysis may not overclaim).
	r := analyze(t, `
int m;
int locks[4];
int g;
void worker(int i) {
    lock(&m);
    unlock(&locks[i]);
    g = i;
    lock(&locks[i]);
    unlock(&m);
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 1);
    join(t1); join(t2);
    return 0;
}
`)
	if !racyVar(t, r, "g") {
		t.Errorf("g must be racy: the unresolvable unlock may have released m")
	}
}

func TestStructFieldLockGuards(t *testing.T) {
	// A lock reached through a pointer parameter guards accesses through
	// the same parameter path (must-alias via substitution).
	r := analyze(t, `
struct obj { int lockword; int value; };
struct obj g;
void bump(struct obj *o, int n) {
    lock(&o->lockword);
    o->value = o->value + n;
    unlock(&o->lockword);
}
void worker(int n) { bump(&g, n); }
int main(void) {
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return 0;
}
`)
	for _, p := range r.Pairs {
		na, nb := "", ""
		if len(p.A.Objs) > 0 {
			na = r.PTA.Obj(p.A.Objs[0]).Name
		}
		if len(p.B.Objs) > 0 {
			nb = r.PTA.Obj(p.B.Objs[0]).Name
		}
		if na == "obj.value" || nb == "obj.value" {
			t.Errorf("o->value is guarded by o->lockword; pair %s <-> %s", na, nb)
		}
	}
}

func TestRecursionSummaryConverges(t *testing.T) {
	r := analyze(t, `
int g;
int m;
void walk(int depth) {
    if (depth <= 0) { return; }
    lock(&m);
    g = g + depth;
    unlock(&m);
    walk(depth - 1);
}
int main(void) {
    int t1 = spawn(walk, 5);
    int t2 = spawn(walk, 5);
    join(t1); join(t2);
    return 0;
}
`)
	if racyVar(t, r, "g") {
		t.Errorf("recursive locked access should not be racy")
	}
}

func TestRacyPartnersQuery(t *testing.T) {
	r := analyze(t, `
int g;
void w1(int n) { g = n; }
void w2(int n) { g = n + 1; }
int main(void) {
    int t1 = spawn(w1, 1);
    int t2 = spawn(w2, 2);
    join(t1); join(t2);
    return 0;
}
`)
	if len(r.Pairs) == 0 {
		t.Fatal("no pairs")
	}
	p := r.Pairs[0]
	partners := r.RacyPartners(p.A.Node)
	found := false
	for _, n := range partners {
		if n == p.B.Node {
			found = true
		}
	}
	if !found {
		t.Errorf("RacyPartners(%d) = %v missing %d", p.A.Node, partners, p.B.Node)
	}
	if len(r.RacyPartners(-99)) != 0 {
		t.Errorf("unknown node should have no partners")
	}
}

func TestConditionalLockMeet(t *testing.T) {
	// A lock held on only one branch is not held after the join.
	r := analyze(t, `
int m;
int g;
void worker(int c) {
    if (c) {
        lock(&m);
    }
    g = c;
    if (c) {
        unlock(&m);
    }
}
int main(void) {
    int t1 = spawn(worker, 0);
    int t2 = spawn(worker, 1);
    join(t1); join(t2);
    return 0;
}
`)
	if !racyVar(t, r, "g") {
		t.Errorf("g after a conditional lock must be racy (must-hold meet)")
	}
}
