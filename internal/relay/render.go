package relay

import (
	"fmt"
	"strings"
)

// Render serializes the report deterministically: race pairs in canonical
// (sorted) order with roots and locksets, pruned pairs with provenance,
// and per-function summary volumes in bottom-up callgraph order. Two
// reports over the same program render byte-identically iff the analysis
// results agree, which is what the determinism-under-parallelism tests
// diff between sequential and parallel runs.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pairs: %d\n", len(r.Pairs))
	for _, p := range r.Pairs {
		fmt.Fprintf(&sb, "  %s\n", renderPair(p))
	}
	fmt.Fprintf(&sb, "pruned: %d\n", len(r.Pruned))
	for _, pp := range r.Pruned {
		fmt.Fprintf(&sb, "  %-13s %s\n", pp.Reason, renderPair(pp.Pair))
	}
	fmt.Fprintf(&sb, "summaries:\n")
	for _, fn := range r.CG.BottomUp() {
		sum := r.Summaries[fn]
		if sum == nil {
			continue
		}
		fmt.Fprintf(&sb, "  %s: %d accesses net+%v net-%v\n",
			fn.Name, len(sum.Accesses), sum.NetPlus, sum.NetMinus)
	}
	return sb.String()
}

func renderPair(p *RacePair) string {
	return fmt.Sprintf("%s@%s:%s n%d [w=%v ls=%v] <-> %s@%s:%s n%d [w=%v ls=%v]",
		p.RootA.Name, p.A.Fn.Name, p.A.Pos, p.A.Node, p.A.Write, p.A.Lockset,
		p.RootB.Name, p.B.Fn.Name, p.B.Pos, p.B.Node, p.B.Write, p.B.Lockset)
}
