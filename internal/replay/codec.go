package replay

// Log persistence: the serialized forms produced by InputBytes/OrderBytes
// decode back into a Log, so recordings are real artifacts — written by
// one process (or machine) and replayed by another, as the paper's
// debugging and fault-tolerance use cases require (§1).

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/minic/types"
	"repro/internal/vm"
)

type wordReader struct {
	r   *bytes.Reader
	err error
}

func (wr *wordReader) next() int64 {
	if wr.err != nil {
		return 0
	}
	var v int64
	if err := binary.Read(wr.r, binary.LittleEndian, &v); err != nil {
		wr.err = err
	}
	return v
}

// DecodeInput parses the InputBytes serialization.
func DecodeInput(data []byte) (map[int][]InputRec, error) {
	wr := &wordReader{r: bytes.NewReader(data)}
	out := make(map[int][]InputRec)
	nTids := wr.next()
	for i := int64(0); i < nTids && wr.err == nil; i++ {
		tid := int(wr.next())
		n := wr.next()
		recs := make([]InputRec, 0, n)
		for j := int64(0); j < n && wr.err == nil; j++ {
			rec := InputRec{Op: types.BuiltinOp(wr.next()), Val: wr.next()}
			dn := wr.next()
			if dn < 0 || dn > int64(len(data)) {
				return nil, fmt.Errorf("replay: corrupt input log (data length %d)", dn)
			}
			if dn > 0 {
				rec.Data = make([]int64, dn)
				for k := int64(0); k < dn; k++ {
					rec.Data[k] = wr.next()
				}
			}
			recs = append(recs, rec)
		}
		out[tid] = recs
	}
	if wr.err != nil {
		return nil, fmt.Errorf("replay: corrupt input log: %w", wr.err)
	}
	return out, nil
}

// DecodeOrder parses the OrderBytes serialization.
func DecodeOrder(data []byte) (map[vm.SyncKey][]OrderRec, error) {
	wr := &wordReader{r: bytes.NewReader(data)}
	out := make(map[vm.SyncKey][]OrderRec)
	nKeys := wr.next()
	for i := int64(0); i < nKeys && wr.err == nil; i++ {
		key := vm.SyncKey{Class: vm.SyncClass(wr.next()), ID: wr.next()}
		n := wr.next()
		if n < 0 || n > int64(len(data)) {
			return nil, fmt.Errorf("replay: corrupt order log (record count %d)", n)
		}
		recs := make([]OrderRec, 0, n)
		for j := int64(0); j < n && wr.err == nil; j++ {
			packed := wr.next()
			rec := OrderRec{
				Tid:  int32(packed >> 8),
				Kind: vm.SyncEventKind(packed & 0xff),
			}
			if rec.Kind == vm.EvWLForcedRelease {
				rec.Anchor.Instr = wr.next()
				s := wr.next()
				rec.Anchor.Sync = s >> 1
				rec.Anchor.Blocked = s&1 == 1
			}
			recs = append(recs, rec)
		}
		out[key] = recs
	}
	if wr.err != nil {
		return nil, fmt.Errorf("replay: corrupt order log: %w", wr.err)
	}
	return out, nil
}

// logMagic identifies the combined on-disk format.
var logMagic = []byte("CHIMLOG1")

// WriteTo writes the whole log (gzip-compressed) to w.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(logMagic)
	in := l.InputBytes()
	ord := l.OrderBytes()
	binary.Write(&buf, binary.LittleEndian, int64(len(in)))
	buf.Write(in)
	binary.Write(&buf, binary.LittleEndian, int64(len(ord)))
	buf.Write(ord)

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	n, err := w.Write(zbuf.Bytes())
	return int64(n), err
}

// ReadLog parses a log written by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("replay: bad log stream: %w", err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("replay: bad log stream: %w", err)
	}
	if len(raw) < len(logMagic)+16 || !bytes.Equal(raw[:len(logMagic)], logMagic) {
		return nil, fmt.Errorf("replay: not a chimera log")
	}
	rest := raw[len(logMagic):]
	inLen := int64(binary.LittleEndian.Uint64(rest[:8]))
	rest = rest[8:]
	if inLen < 0 || inLen > int64(len(rest)) {
		return nil, fmt.Errorf("replay: corrupt log header")
	}
	inputs, err := DecodeInput(rest[:inLen])
	if err != nil {
		return nil, err
	}
	rest = rest[inLen:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("replay: truncated log")
	}
	ordLen := int64(binary.LittleEndian.Uint64(rest[:8]))
	rest = rest[8:]
	if ordLen < 0 || ordLen > int64(len(rest)) {
		return nil, fmt.Errorf("replay: corrupt log header")
	}
	orders, err := DecodeOrder(rest[:ordLen])
	if err != nil {
		return nil, err
	}
	return &Log{Inputs: inputs, Orders: orders}, nil
}
