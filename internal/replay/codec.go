package replay

// Log persistence: recordings are real artifacts — written by one process
// (or machine) and replayed by another, as the paper's debugging and
// fault-tolerance use cases require (§1).
//
// On-disk format (version 2, magic "CHIMLOG2"): a stream of
// length-prefixed, individually gzip-compressed, CRC-checked chunks.
//
//	magic   8 bytes "CHIMLOG2"
//	chunk*  kind byte (1 = input records, 2 = order records)
//	        u32 ulen  uncompressed payload length (bytes, multiple of 8)
//	        u32 clen  compressed payload length
//	        u32 crc   CRC-32 (IEEE) of the compressed payload
//	        clen bytes of gzip-compressed payload
//	end     kind byte 0xFF + three zero u32s; nothing may follow
//
// A chunk payload is a sequence of self-delimiting little-endian int64
// records (a record never spans chunks):
//
//	input record: tid, op, val, dataLen, dataLen words
//	order record: class, id, tid<<8|kind, then for forced weak-lock
//	              preemptions the anchor: instr, sync<<1|blocked
//
// Because every record carries its own tid/key, the writer can stream
// records in commit order as they happen (LogWriter) and the reader can
// decode incrementally (LogCursor) — neither side ever materializes the
// whole log, and each chunk's integrity is checked before any of its
// records are trusted. Chunks are homogeneous by kind, so compressed
// bytes are attributable to the input vs order stream (the harness's
// record_log_bytes / order_log_bytes metrics).

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/minic/types"
	"repro/internal/vm"
)

type wordReader struct {
	r   *bytes.Reader
	err error
}

func (wr *wordReader) next() int64 {
	if wr.err != nil {
		return 0
	}
	var v int64
	if err := binary.Read(wr.r, binary.LittleEndian, &v); err != nil {
		wr.err = err
	}
	return v
}

// remaining returns how many whole words are left to read.
func (wr *wordReader) remaining() int64 { return int64(wr.r.Len() / 8) }

// DecodeInput parses the InputBytes serialization.
func DecodeInput(data []byte) (map[int][]InputRec, error) {
	wr := &wordReader{r: bytes.NewReader(data)}
	out := make(map[int][]InputRec)
	nTids := wr.next()
	// Every thread group needs at least two words (tid + count).
	if nTids < 0 || nTids > wr.remaining()/2 {
		return nil, fmt.Errorf("replay: corrupt input log (thread count %d)", nTids)
	}
	for i := int64(0); i < nTids && wr.err == nil; i++ {
		tid := int(wr.next())
		n := wr.next()
		// Every record needs at least three words (op + val + dataLen).
		if n < 0 || n > wr.remaining()/3 {
			return nil, fmt.Errorf("replay: corrupt input log (record count %d)", n)
		}
		recs := make([]InputRec, 0, n)
		for j := int64(0); j < n && wr.err == nil; j++ {
			rec := InputRec{Op: types.BuiltinOp(wr.next()), Val: wr.next()}
			dn := wr.next()
			// Validate against the words actually left, not the total
			// buffer size: a length can be well under len(data) yet still
			// overrun the reader (and over-allocate) from here.
			if dn < 0 || dn > wr.remaining() {
				return nil, fmt.Errorf("replay: corrupt input log (data length %d, %d words remain)", dn, wr.remaining())
			}
			if dn > 0 {
				rec.Data = make([]int64, dn)
				for k := int64(0); k < dn; k++ {
					rec.Data[k] = wr.next()
				}
			}
			recs = append(recs, rec)
		}
		out[tid] = recs
	}
	if wr.err != nil {
		return nil, fmt.Errorf("replay: corrupt input log: %w", wr.err)
	}
	if wr.r.Len() != 0 {
		return nil, fmt.Errorf("replay: corrupt input log (%d trailing bytes)", wr.r.Len())
	}
	return out, nil
}

// DecodeOrder parses the OrderBytes serialization.
func DecodeOrder(data []byte) (map[vm.SyncKey][]OrderRec, error) {
	wr := &wordReader{r: bytes.NewReader(data)}
	out := make(map[vm.SyncKey][]OrderRec)
	nKeys := wr.next()
	// Every key group needs at least three words (class + id + count).
	if nKeys < 0 || nKeys > wr.remaining()/3 {
		return nil, fmt.Errorf("replay: corrupt order log (key count %d)", nKeys)
	}
	for i := int64(0); i < nKeys && wr.err == nil; i++ {
		key, err := decodeSyncKey(wr)
		if err != nil {
			return nil, err
		}
		n := wr.next()
		if n < 0 || n > wr.remaining() {
			return nil, fmt.Errorf("replay: corrupt order log (record count %d, %d words remain)", n, wr.remaining())
		}
		recs := make([]OrderRec, 0, n)
		for j := int64(0); j < n && wr.err == nil; j++ {
			rec, err := decodeOrderRec(wr)
			if err != nil {
				return nil, err
			}
			recs = append(recs, rec)
		}
		out[key] = recs
	}
	if wr.err != nil {
		return nil, fmt.Errorf("replay: corrupt order log: %w", wr.err)
	}
	if wr.r.Len() != 0 {
		return nil, fmt.Errorf("replay: corrupt order log (%d trailing bytes)", wr.r.Len())
	}
	return out, nil
}

func decodeSyncKey(wr *wordReader) (vm.SyncKey, error) {
	class := wr.next()
	if class < 0 || class > int64(vm.SyncSpawn) {
		return vm.SyncKey{}, fmt.Errorf("replay: corrupt order log (sync class %d)", class)
	}
	return vm.SyncKey{Class: vm.SyncClass(class), ID: wr.next()}, nil
}

func decodeOrderRec(wr *wordReader) (OrderRec, error) {
	packed := wr.next()
	kind := packed & 0xff
	// Only the logged kinds may appear; EvBarrierRelease and above are
	// hook-only events that a well-formed log never contains.
	if kind > int64(vm.EvWLForcedRelease) {
		return OrderRec{}, fmt.Errorf("replay: corrupt order log (event kind %d)", kind)
	}
	// The tid must survive the int32 narrowing unchanged; found by fuzzing:
	// an oversized tid silently truncated (possibly to a negative value)
	// instead of failing.
	tid := packed >> 8
	if tid < 0 || tid > math.MaxInt32 {
		return OrderRec{}, fmt.Errorf("replay: corrupt order log (tid %d out of range)", tid)
	}
	rec := OrderRec{Tid: int32(tid), Kind: vm.SyncEventKind(kind)}
	if rec.Kind == vm.EvWLForcedRelease {
		rec.Anchor.Instr = wr.next()
		s := wr.next()
		rec.Anchor.Sync = s >> 1
		rec.Anchor.Blocked = s&1 == 1
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// Chunked stream writer

// logMagic identifies the combined on-disk format.
var logMagic = []byte("CHIMLOG2")

// Chunk kinds.
const (
	chunkInput byte = 1
	chunkOrder byte = 2
	chunkEnd   byte = 0xFF
)

// chunkTarget is the uncompressed payload size at which a pending chunk is
// flushed. Small enough that a crash loses little, large enough that gzip
// has context to work with: each chunk restarts the deflate window, so a
// 64 KiB payload lets the second half compress against a full 32 KiB of
// history instead of a cold dictionary. Readers accept any chunk size up
// to maxChunkLen, so this is a writer-side tuning knob, not a format
// parameter.
const chunkTarget = 64 << 10

// maxChunkLen bounds the lengths a reader will believe, so a corrupt
// header cannot demand an absurd allocation before the CRC is checked.
const maxChunkLen = 64 << 20

// LogWriter streams a recording to w in the chunked format as records
// arrive, without building the whole Log in memory first. Records of each
// stream accumulate in a pending buffer that is compressed and flushed as
// one chunk when it reaches chunkTarget (and finally on Close). Attach one
// to a Recorder to capture a run's log on the fly.
type LogWriter struct {
	w       io.Writer
	inBuf   bytes.Buffer // pending uncompressed input records
	ordBuf  bytes.Buffer // pending uncompressed order records
	zbuf    bytes.Buffer
	zw      *gzip.Writer
	inBytes int64 // compressed bytes written for input chunks (incl. headers)
	orBytes int64
	stats   StreamStats
	started bool
	closed  bool
	err     error
}

// StreamStats summarizes what a LogWriter emitted, per stream: record and
// chunk counts, raw (uncompressed) payload bytes, and compressed wire
// bytes including each chunk's 13-byte header. The wire byte fields equal
// InputBytesWritten/OrderBytesWritten; the whole stream adds the 8-byte
// magic and the 13-byte end marker on top.
type StreamStats struct {
	InputRecords  int64
	OrderRecords  int64
	InputChunks   int64
	OrderChunks   int64
	InputRawBytes int64
	OrderRawBytes int64
	InputBytes    int64
	OrderBytes    int64
}

// NewLogWriter returns a streaming writer over w.
func NewLogWriter(w io.Writer) *LogWriter {
	lw := &LogWriter{w: w}
	// Level 2, not BestSpeed: order records are fixed-width words with
	// heavy cross-record redundancy, and the slightly deeper match
	// search pays for itself several times over in wire bytes at nearly
	// BestSpeed cost. Compression runs only on chunk flushes, off the
	// record hot path.
	lw.zw, _ = gzip.NewWriterLevel(&lw.zbuf, 2)
	return lw
}

// Input appends one input record for tid.
func (lw *LogWriter) Input(tid int, rec InputRec) {
	if lw.err != nil || lw.closed {
		return
	}
	lw.stats.InputRecords++
	putWord(&lw.inBuf, int64(tid))
	putWord(&lw.inBuf, int64(rec.Op))
	putWord(&lw.inBuf, rec.Val)
	putWord(&lw.inBuf, int64(len(rec.Data)))
	for _, d := range rec.Data {
		putWord(&lw.inBuf, d)
	}
	if lw.inBuf.Len() >= chunkTarget {
		lw.flush(chunkInput)
	}
}

// Order appends one order record for key.
func (lw *LogWriter) Order(key vm.SyncKey, rec OrderRec) {
	if lw.err != nil || lw.closed {
		return
	}
	lw.stats.OrderRecords++
	putWord(&lw.ordBuf, int64(key.Class))
	putWord(&lw.ordBuf, key.ID)
	putWord(&lw.ordBuf, int64(rec.Tid)<<8|int64(rec.Kind))
	if rec.Kind == vm.EvWLForcedRelease {
		putWord(&lw.ordBuf, rec.Anchor.Instr)
		s := rec.Anchor.Sync << 1
		if rec.Anchor.Blocked {
			s |= 1
		}
		putWord(&lw.ordBuf, s)
	}
	if lw.ordBuf.Len() >= chunkTarget {
		lw.flush(chunkOrder)
	}
}

// Close flushes pending chunks and writes the end marker. The writer is
// unusable afterwards.
func (lw *LogWriter) Close() error {
	if lw.closed {
		return lw.err
	}
	lw.start()
	lw.flush(chunkInput)
	lw.flush(chunkOrder)
	if lw.err == nil {
		var hdr [13]byte
		hdr[0] = chunkEnd
		if _, err := lw.w.Write(hdr[:]); err != nil {
			lw.err = err
		}
	}
	lw.closed = true
	return lw.err
}

// InputBytesWritten returns the compressed bytes (payload + chunk headers)
// written so far for the input stream.
func (lw *LogWriter) InputBytesWritten() int64 { return lw.inBytes }

// OrderBytesWritten returns the compressed bytes written so far for the
// order stream.
func (lw *LogWriter) OrderBytesWritten() int64 { return lw.orBytes }

// Stats returns the per-stream accounting of what was written so far
// (complete only after Close, which flushes the pending chunks).
func (lw *LogWriter) Stats() StreamStats { return lw.stats }

// Err returns the first write error, if any.
func (lw *LogWriter) Err() error { return lw.err }

func (lw *LogWriter) start() {
	if lw.started || lw.err != nil {
		return
	}
	lw.started = true
	if _, err := lw.w.Write(logMagic); err != nil {
		lw.err = err
	}
}

// flush compresses and emits the pending buffer of the given kind, if any.
func (lw *LogWriter) flush(kind byte) {
	buf := &lw.inBuf
	if kind == chunkOrder {
		buf = &lw.ordBuf
	}
	if lw.err != nil || buf.Len() == 0 {
		return
	}
	lw.start()
	lw.zbuf.Reset()
	lw.zw.Reset(&lw.zbuf)
	if _, err := lw.zw.Write(buf.Bytes()); err != nil {
		lw.err = err
		return
	}
	if err := lw.zw.Close(); err != nil {
		lw.err = err
		return
	}
	var hdr [13]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(buf.Len()))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(lw.zbuf.Len()))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(lw.zbuf.Bytes()))
	n1, err := lw.w.Write(hdr[:])
	if err != nil {
		lw.err = err
		return
	}
	n2, err := lw.w.Write(lw.zbuf.Bytes())
	if err != nil {
		lw.err = err
		return
	}
	if kind == chunkInput {
		lw.inBytes += int64(n1 + n2)
		lw.stats.InputChunks++
		lw.stats.InputRawBytes += int64(buf.Len())
		lw.stats.InputBytes = lw.inBytes
	} else {
		lw.orBytes += int64(n1 + n2)
		lw.stats.OrderChunks++
		lw.stats.OrderRawBytes += int64(buf.Len())
		lw.stats.OrderBytes = lw.orBytes
	}
	buf.Reset()
}

func putWord(buf *bytes.Buffer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}

// ---------------------------------------------------------------------------
// Chunked stream reader

// StreamRecord is one decoded record from a log stream: either an input
// record for a thread or an order record for a sync key.
type StreamRecord struct {
	IsInput bool
	Tid     int      // input records: the thread
	Input   InputRec // input records: the payload
	Key     vm.SyncKey
	Order   OrderRec
}

// LogCursor incrementally decodes a chunked log from r: one chunk is
// buffered (and CRC-verified) at a time, and Next yields records until the
// end marker. It is the io.Reader replay cursor underneath ReadLog and
// StreamReplayer.
type LogCursor struct {
	r       io.Reader
	started bool
	done    bool
	err     error
	kind    byte
	words   *wordReader // current chunk payload
}

// NewLogCursor returns a cursor over a stream written by LogWriter (or
// Log.WriteTo).
func NewLogCursor(r io.Reader) *LogCursor {
	return &LogCursor{r: r}
}

// Next returns the next record, or io.EOF after the end marker. Any other
// error means the stream is corrupt; the cursor is then stuck on that
// error.
func (c *LogCursor) Next() (StreamRecord, error) {
	for {
		if c.err != nil {
			return StreamRecord{}, c.err
		}
		if c.words != nil && c.words.r.Len() > 0 {
			return c.decodeRecord()
		}
		if err := c.nextChunk(); err != nil {
			c.err = err
			return StreamRecord{}, err
		}
	}
}

func (c *LogCursor) fail(format string, args ...any) (StreamRecord, error) {
	c.err = fmt.Errorf("replay: "+format, args...)
	return StreamRecord{}, c.err
}

func (c *LogCursor) decodeRecord() (StreamRecord, error) {
	wr := c.words
	switch c.kind {
	case chunkInput:
		rec := StreamRecord{IsInput: true, Tid: int(wr.next())}
		rec.Input.Op = types.BuiltinOp(wr.next())
		rec.Input.Val = wr.next()
		dn := wr.next()
		if wr.err != nil {
			return c.fail("truncated input record")
		}
		if dn < 0 || dn > wr.remaining() {
			return c.fail("corrupt input record (data length %d, %d words remain)", dn, wr.remaining())
		}
		if dn > 0 {
			rec.Input.Data = make([]int64, dn)
			for k := int64(0); k < dn; k++ {
				rec.Input.Data[k] = wr.next()
			}
		}
		return rec, nil
	case chunkOrder:
		key, err := decodeSyncKey(wr)
		if err != nil {
			c.err = err
			return StreamRecord{}, err
		}
		orec, err := decodeOrderRec(wr)
		if err != nil {
			c.err = err
			return StreamRecord{}, err
		}
		if wr.err != nil {
			return c.fail("truncated order record")
		}
		return StreamRecord{Key: key, Order: orec}, nil
	}
	return c.fail("internal: bad chunk kind %d", c.kind)
}

// nextChunk reads, verifies, and decompresses the next chunk into c.words.
// At the end marker it checks nothing follows and returns io.EOF.
func (c *LogCursor) nextChunk() error {
	if c.done {
		return io.EOF
	}
	if !c.started {
		magic := make([]byte, len(logMagic))
		if _, err := io.ReadFull(c.r, magic); err != nil || !bytes.Equal(magic, logMagic) {
			return fmt.Errorf("replay: not a chimera log")
		}
		c.started = true
	}
	var hdr [13]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return fmt.Errorf("replay: truncated log (chunk header): %w", err)
	}
	kind := hdr[0]
	ulen := binary.LittleEndian.Uint32(hdr[1:5])
	clen := binary.LittleEndian.Uint32(hdr[5:9])
	crc := binary.LittleEndian.Uint32(hdr[9:13])
	if kind == chunkEnd {
		if ulen != 0 || clen != 0 || crc != 0 {
			return fmt.Errorf("replay: corrupt end marker")
		}
		var b [1]byte
		if n, _ := c.r.Read(b[:]); n != 0 {
			return fmt.Errorf("replay: trailing garbage after log end")
		}
		c.done = true
		return io.EOF
	}
	if kind != chunkInput && kind != chunkOrder {
		return fmt.Errorf("replay: unknown chunk kind %d", kind)
	}
	if ulen == 0 || ulen > maxChunkLen || ulen%8 != 0 || clen == 0 || clen > maxChunkLen {
		return fmt.Errorf("replay: corrupt chunk header (ulen=%d clen=%d)", ulen, clen)
	}
	comp := make([]byte, clen)
	if _, err := io.ReadFull(c.r, comp); err != nil {
		return fmt.Errorf("replay: truncated chunk: %w", err)
	}
	if got := crc32.ChecksumIEEE(comp); got != crc {
		return fmt.Errorf("replay: chunk CRC mismatch (got %08x, want %08x)", got, crc)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return fmt.Errorf("replay: bad chunk stream: %w", err)
	}
	raw := make([]byte, 0, ulen)
	rbuf := bytes.NewBuffer(raw)
	if _, err := io.Copy(rbuf, io.LimitReader(zr, int64(ulen)+1)); err != nil {
		return fmt.Errorf("replay: bad chunk stream: %w", err)
	}
	if err := zr.Close(); err != nil {
		return fmt.Errorf("replay: bad chunk stream: %w", err)
	}
	if rbuf.Len() != int(ulen) {
		return fmt.Errorf("replay: chunk length mismatch (got %d, want %d)", rbuf.Len(), ulen)
	}
	c.kind = kind
	c.words = &wordReader{r: bytes.NewReader(rbuf.Bytes())}
	return nil
}

// ---------------------------------------------------------------------------
// Whole-log convenience paths

// WriteTo writes the whole log to w in the chunked format.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	lw := NewLogWriter(cw)
	for _, tid := range l.sortedInputTids() {
		for _, rec := range l.Inputs[tid] {
			lw.Input(tid, rec)
		}
	}
	for _, key := range l.sortedOrderKeys() {
		for _, rec := range l.Orders[key] {
			lw.Order(key, rec)
		}
	}
	if err := lw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ReadLog parses a log written by WriteTo (or streamed by LogWriter).
func ReadLog(r io.Reader) (*Log, error) {
	l := NewLog()
	cur := NewLogCursor(r)
	for {
		rec, err := cur.Next()
		if err == io.EOF {
			return l, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.IsInput {
			l.Inputs[rec.Tid] = append(l.Inputs[rec.Tid], rec.Input)
		} else {
			l.Orders[rec.Key] = append(l.Orders[rec.Key], rec.Order)
		}
	}
}
