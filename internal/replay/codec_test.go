package replay

import (
	"bytes"
	"testing"

	"repro/internal/minic/types"
	"repro/internal/vm"
)

func sampleLog() *Log {
	l := NewLog()
	l.Inputs[0] = []InputRec{
		{Op: types.BOpen, Val: 3},
		{Op: types.BRead, Val: 4, Data: []int64{9, 8, 7, 6}},
	}
	l.Inputs[2] = []InputRec{{Op: types.BRnd, Val: 42}}
	k1 := vm.SyncKey{Class: vm.SyncMutex, ID: 100}
	k2 := vm.SyncKey{Class: vm.SyncWeakLock, ID: 5}
	l.Orders[k1] = []OrderRec{
		{Tid: 1, Kind: vm.EvAcquire},
		{Tid: 2, Kind: vm.EvAcquire},
	}
	l.Orders[k2] = []OrderRec{
		{Tid: 1, Kind: vm.EvWLAcquire},
		{Tid: 1, Kind: vm.EvWLForcedRelease,
			Anchor: vm.ForcedAnchor{Instr: 12345, Sync: 7, Blocked: true}},
		{Tid: 2, Kind: vm.EvWLAcquire},
	}
	return l
}

func logsEqual(a, b *Log) bool {
	if len(a.Inputs) != len(b.Inputs) || len(a.Orders) != len(b.Orders) {
		return false
	}
	for tid, recs := range a.Inputs {
		other := b.Inputs[tid]
		if len(recs) != len(other) {
			return false
		}
		for i := range recs {
			if recs[i].Op != other[i].Op || recs[i].Val != other[i].Val ||
				len(recs[i].Data) != len(other[i].Data) {
				return false
			}
			for j := range recs[i].Data {
				if recs[i].Data[j] != other[i].Data[j] {
					return false
				}
			}
		}
	}
	for k, recs := range a.Orders {
		other := b.Orders[k]
		if len(recs) != len(other) {
			return false
		}
		for i := range recs {
			if recs[i] != other[i] {
				return false
			}
		}
	}
	return true
}

func TestLogRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !logsEqual(l, got) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", l, got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("not a log"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeInput([]byte{1, 2, 3}); err == nil {
		t.Error("truncated input log accepted")
	}
	if _, err := DecodeOrder([]byte{1}); err == nil {
		t.Error("truncated order log accepted")
	}
}

func TestEmptyLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLog().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.InputCount() != 0 || got.OrderCount() != 0 {
		t.Fatalf("empty log round trip: %+v", got)
	}
}
