package replay_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/replay"
	"repro/internal/vm"
	"repro/internal/weaklock"
)

// forcedSrc blocks on a condition variable while holding a weak-lock, so a
// recording with a short timeout contains forced preemptions (paper §2.3).
const forcedSrc = `
int m;
int cv;
int flag;
int g;
int trace[16];
int tpos;

void holder(int n) {
    wl_acquire(3, 0, -4611686018427387904, 4611686018427387904);
    g = 1;
    trace[tpos] = 100;
    tpos = tpos + 1;
    lock(&m);
    while (flag == 0) {
        cond_wait(&cv, &m);
    }
    unlock(&m);
    trace[tpos] = 101;
    tpos = tpos + 1;
    g = 2;
    wl_release(3, 0);
}

void waiter(int n) {
    wl_acquire(3, 0, -4611686018427387904, 4611686018427387904);
    g = g + 10;
    trace[tpos] = 200;
    tpos = tpos + 1;
    wl_release(3, 0);
    lock(&m);
    flag = 1;
    cond_signal(&cv);
    unlock(&m);
}

int main(void) {
    int t1 = spawn(holder, 0);
    for (int i = 0; i < 3000; i++) { }
    int t2 = spawn(waiter, 0);
    join(t1);
    join(t2);
    print(g);
    for (int i = 0; i < tpos; i++) { print(trace[i]); }
    return 0;
}
`

func forcedSetup(t *testing.T) (*vm.Program, *weaklock.Table) {
	t.Helper()
	f := parser.MustParse("forced.mc", forcedSrc)
	info := types.MustCheck(f)
	p, err := vm.Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindInstr, "t", false)
	return p, tbl
}

// TestForcedPreemptionRecordAndReplay records an execution that contains a
// forced weak-lock preemption and replays it bit-identically under a
// different schedule seed — the mechanism the paper described but did not
// port (§2.3).
func TestForcedPreemptionRecordAndReplay(t *testing.T) {
	p, tbl := forcedSetup(t)

	rec := replay.NewRecorder(oskit.NewWorld(1), vm.DefaultCost())
	recRes := vm.Run(p, vm.Config{
		Inputs: rec, Monitor: rec, WL: tbl,
		Seed: 3, WLTimeout: 50_000,
	})
	if recRes.Err != nil {
		t.Fatalf("record: %v", recRes.Err)
	}
	if recRes.WLStats.Timeouts == 0 {
		t.Fatalf("scenario should force a preemption during recording")
	}
	log := rec.Log()

	// The log carries the anchored forced record.
	foundForced := false
	for _, recs := range log.Orders {
		for _, r := range recs {
			if r.Kind == vm.EvWLForcedRelease {
				foundForced = true
				if !r.Anchor.Blocked {
					t.Errorf("holder was parked in cond_wait; anchor should be Blocked")
				}
			}
		}
	}
	if !foundForced {
		t.Fatalf("no forced record in the log")
	}

	for _, repSeed := range []uint64{999, 123456, 7} {
		rep := replay.NewReplayer(log, vm.DefaultCost())
		repRes := vm.Run(p, vm.Config{
			Inputs: rep, Monitor: rep, WL: tbl,
			Seed: repSeed, DisableTimeouts: true,
		})
		if repRes.Err != nil {
			t.Fatalf("replay seed %d: %v", repSeed, repRes.Err)
		}
		if rep.Err() != nil {
			t.Fatalf("replay seed %d divergence: %v", repSeed, rep.Err())
		}
		if !rep.Drained() {
			t.Fatalf("replay seed %d: order log not drained", repSeed)
		}
		if repRes.Hash64() != recRes.Hash64() {
			t.Fatalf("replay seed %d diverged:\nrecorded %q\nreplayed %q",
				repSeed, recRes.Output, repRes.Output)
		}
		if repRes.WLStats.Timeouts != recRes.WLStats.Timeouts {
			t.Errorf("replay injected %d preemptions, recorded %d",
				repRes.WLStats.Timeouts, recRes.WLStats.Timeouts)
		}
	}
}

// TestForcedPreemptionViaCore exercises the same path through the public
// pipeline entry points.
func TestForcedPreemptionViaCore(t *testing.T) {
	prog, err := core.Load("forced.mc", forcedSrc)
	if err != nil {
		t.Fatal(err)
	}
	tbl := weaklock.NewTable()
	tbl.Add(weaklock.KindInstr, "t", false)

	world := oskit.NewWorld(1)
	recRes, log := core.RecordProgram(prog, tbl, core.RunConfig{
		World: world, Seed: 3, Table: tbl, MaxSteps: 50_000_000,
	})
	// Shorten the timeout via a direct record when the default did not
	// trigger one.
	if recRes.Err != nil {
		t.Fatalf("record: %v", recRes.Err)
	}
	repRes, err := core.ReplayProgram(prog, tbl, log, core.RunConfig{
		World: oskit.NewWorld(1), Seed: 31337, Table: tbl,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if repRes.Hash64() != recRes.Hash64() {
		t.Fatalf("replay diverged")
	}
}
