package replay

import (
	"bytes"
	"testing"

	"repro/internal/minic/parser"
	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/vm"
)

// realLog records an actual concurrent run with input operations, so the
// fuzz corpora are seeded with genuinely-shaped logs rather than only
// hand-built ones.
func realLog(f *testing.F) *Log {
	f.Helper()
	src := `
int m;
int g;
void worker(int n) {
    for (int i = 0; i < 5; i++) {
        lock(&m);
        g = g + rnd(10);
        unlock(&m);
    }
}
int main(void) {
    int fd = open(5);
    int buf[4];
    read(fd, buf, 4);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    print(g + buf[0]);
    return 0;
}
`
	file := parser.MustParse("fuzzseed.mc", src)
	info := types.MustCheck(file)
	p, err := vm.Compile(info)
	if err != nil {
		f.Fatal(err)
	}
	w := oskit.NewWorld(1)
	w.AddFile(5, []int64{10, 20, 30, 40})
	rec := NewRecorder(w, vm.DefaultCost())
	r := vm.Run(p, vm.Config{Inputs: rec, Monitor: rec, Seed: 9})
	if r.Err != nil {
		f.Fatal(r.Err)
	}
	return rec.Log()
}

// seedVariants adds data plus truncated and bit-flipped mutants of it.
func seedVariants(f *testing.F, data []byte) {
	f.Helper()
	f.Add(data)
	if len(data) > 1 {
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)-1])
		for _, pos := range []int{0, len(data) / 3, len(data) - 1} {
			mut := append([]byte{}, data...)
			mut[pos] ^= 0x20
			f.Add(mut)
		}
	}
}

// FuzzDecodeInput checks the input-log decoder never panics and never
// accepts bytes it cannot canonically round-trip.
func FuzzDecodeInput(f *testing.F) {
	seedVariants(f, realLog(f).InputBytes())
	seedVariants(f, sampleLog().InputBytes())
	f.Add(words(0))
	f.Add(words(1, 0, 1, 1, 2, 20)) // the dn-bounds regression shape
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeInput(data)
		if err != nil {
			return
		}
		a := &Log{Inputs: m, Orders: map[vm.SyncKey][]OrderRec{}}
		m2, err := DecodeInput(a.InputBytes())
		if err != nil {
			t.Fatalf("accepted input log failed to round-trip: %v", err)
		}
		b := &Log{Inputs: m2, Orders: map[vm.SyncKey][]OrderRec{}}
		if !logsEqual(a, b) {
			t.Fatalf("input log round-trip mismatch")
		}
	})
}

// FuzzDecodeOrder is the order-log counterpart of FuzzDecodeInput.
func FuzzDecodeOrder(f *testing.F) {
	seedVariants(f, realLog(f).OrderBytes())
	seedVariants(f, sampleLog().OrderBytes())
	f.Add(words(0))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeOrder(data)
		if err != nil {
			return
		}
		a := &Log{Inputs: map[int][]InputRec{}, Orders: m}
		m2, err := DecodeOrder(a.OrderBytes())
		if err != nil {
			t.Fatalf("accepted order log failed to round-trip: %v", err)
		}
		b := &Log{Inputs: map[int][]InputRec{}, Orders: m2}
		if !logsEqual(a, b) {
			t.Fatalf("order log round-trip mismatch")
		}
	})
}

// FuzzReadLog drives the chunked container format: corrupt streams must
// error (CRC, lengths, framing), and accepted streams must round-trip.
func FuzzReadLog(f *testing.F) {
	var real bytes.Buffer
	if _, err := realLog(f).WriteTo(&real); err != nil {
		f.Fatal(err)
	}
	seedVariants(f, real.Bytes())
	var sample bytes.Buffer
	if _, err := sampleLog().WriteTo(&sample); err != nil {
		f.Fatal(err)
	}
	seedVariants(f, sample.Bytes())
	var empty bytes.Buffer
	if _, err := NewLog().WriteTo(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("CHIMLOG2"))
	f.Add([]byte("CHIMLOG1junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			t.Fatalf("accepted log failed to re-encode: %v", err)
		}
		l2, err := ReadLog(&buf)
		if err != nil {
			t.Fatalf("re-encoded log failed to decode: %v", err)
		}
		if !logsEqual(l, l2) {
			t.Fatalf("chunked log round-trip mismatch")
		}
	})
}
