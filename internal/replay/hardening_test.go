package replay

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/vm"
)

func words(vs ...int64) []byte {
	var buf bytes.Buffer
	for _, v := range vs {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	return buf.Bytes()
}

// TestDecodeInputBoundsRegression pins the fix for the dn bounds check:
// a data length can be well under len(data) *bytes* yet exceed the words
// actually remaining, which previously passed validation and failed only
// after over-allocating. All such inputs must now fail cleanly up front.
func TestDecodeInputBoundsRegression(t *testing.T) {
	// 1 tid group, tid 0, 1 record: op=1 val=2 dn=20 — but zero words
	// remain. 20 < len(data)=48 passed the old check.
	bad := words(1, 0, 1, 1, 2, 20)
	if _, err := DecodeInput(bad); err == nil {
		t.Fatalf("dn beyond remaining words must be rejected")
	}

	// Boundary: dn exactly equal to the remaining words is valid.
	good := words(1, 0, 1, 1, 2, 2, 11, 22)
	m, err := DecodeInput(good)
	if err != nil {
		t.Fatalf("dn == remaining words must decode: %v", err)
	}
	if got := m[0][0].Data; len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Fatalf("boundary decode wrong: %v", got)
	}

	// Negative and absurd counts at every level fail rather than allocate.
	for _, data := range [][]byte{
		words(-1),
		words(1, 0, -5),
		words(1 << 40),
		words(1, 0, 1, 1, 2, -3),
	} {
		if _, err := DecodeInput(data); err == nil {
			t.Fatalf("corrupt count must be rejected: %v", data)
		}
	}

	// Trailing garbage after a well-formed log is corruption, not padding.
	if _, err := DecodeInput(append(words(0), 0xde)); err == nil {
		t.Fatalf("trailing bytes must be rejected")
	}
}

// TestDecodeOrderValidation checks record-level validation of the order
// stream: unknown sync classes and hook-only event kinds never decode.
func TestDecodeOrderValidation(t *testing.T) {
	for _, data := range [][]byte{
		words(1, 99, 0, 0), // bad class
		words(1, int64(vm.SyncMutex), 7, 1, int64(vm.EvJoin)), // hook-only kind
		words(1, int64(vm.SyncMutex), 7, 3, 0, 0),             // count > remaining
		words(1, int64(vm.SyncMutex), 7, -1),                  // negative count
		append(words(1, int64(vm.SyncMutex), 7, 1, 0), 1, 2),  // trailing bytes
	} {
		if _, err := DecodeOrder(data); err == nil {
			t.Fatalf("corrupt order log must be rejected: %v", data)
		}
	}
}

// TestLogWriterCounters checks the per-stream compressed byte attribution:
// both counters populate when both streams carry records, and together
// they account for every byte except the magic and end marker.
func TestLogWriterCounters(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	lw.Input(0, InputRec{Op: 1, Val: 2, Data: []int64{3, 4}})
	lw.Order(vm.SyncKey{Class: vm.SyncMutex, ID: 9}, OrderRec{Tid: 1, Kind: vm.EvAcquire})
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if lw.InputBytesWritten() <= 0 || lw.OrderBytesWritten() <= 0 {
		t.Fatalf("counters not populated: in=%d ord=%d",
			lw.InputBytesWritten(), lw.OrderBytesWritten())
	}
	if want := int64(buf.Len()) - 8 - 13; lw.InputBytesWritten()+lw.OrderBytesWritten() != want {
		t.Fatalf("counter sum %d != stream minus framing %d",
			lw.InputBytesWritten()+lw.OrderBytesWritten(), want)
	}
}

// TestChunkCorruptionDetected flips single bytes across an encoded log and
// requires every corruption either to be detected or to decode to the
// identical log (a flip inside gzip padding can be inert) — never a
// silently different log, never a panic.
func TestChunkCorruptionDetected(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := append([]byte{}, orig...)
		mut[i] ^= 0x40
		got, err := ReadLog(bytes.NewReader(mut))
		if err == nil && !logsEqual(l, got) {
			t.Fatalf("byte %d flip silently accepted as a different log", i)
		}
	}

	// Truncations at every length must error.
	for n := 0; n < len(orig); n++ {
		if _, err := ReadLog(bytes.NewReader(orig[:n])); err == nil {
			t.Fatalf("truncation to %d bytes must be rejected", n)
		}
	}

	// Trailing garbage after the end marker must error.
	if _, err := ReadLog(bytes.NewReader(append(append([]byte{}, orig...), 0))); err == nil {
		t.Fatalf("trailing garbage after end marker must be rejected")
	}
}
