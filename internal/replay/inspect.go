package replay

// Log inspection: Stat walks a CHIMLOG2 stream chunk by chunk — verifying
// every header, CRC and payload exactly like the replay cursor would —
// and reports the per-stream breakdown (chunks, records, raw vs
// compressed bytes) without materializing the log. It is the engine
// behind cmd/logstat.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// ChunkInfo describes one chunk of a log stream.
type ChunkInfo struct {
	Kind            string // "input" or "order"
	Records         int64
	RawBytes        int64 // uncompressed payload length (ulen)
	CompressedBytes int64 // compressed payload length (clen), excluding the 13-byte header
	CRC             uint32
}

// StreamInfo aggregates one stream's chunks.
type StreamInfo struct {
	Chunks          int64
	Records         int64
	RawBytes        int64
	CompressedBytes int64 // payload bytes only
	WireBytes       int64 // payload + 13-byte chunk headers (matches LogWriter's byte counters)
}

// LogInfo is the full breakdown of one CHIMLOG2 stream.
type LogInfo struct {
	// TotalBytes is the whole stream: magic, chunks with headers, and the
	// end marker.
	TotalBytes int64

	Input StreamInfo
	Order StreamInfo

	// OrderByClass counts order records per sync class name
	// ("mutex", "barrier", "cond", "weaklock", "spawn").
	OrderByClass map[string]int64

	// OrderByKind counts order records per event kind name
	// ("acq", "wlacq", "wlforce", ...).
	OrderByKind map[string]int64

	// Chunks lists every chunk in stream order.
	Chunks []ChunkInfo
}

// Ratio returns the stream's compression ratio (raw over wire bytes), or
// zero for an empty stream.
func (s StreamInfo) Ratio() float64 {
	if s.WireBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// Stat reads a chunked log from r and returns its breakdown. Every chunk
// is CRC-verified and decompressed, and every record decoded, so a nil
// error also certifies the stream is well-formed end to end.
func Stat(r io.Reader) (*LogInfo, error) {
	cr := &countingReader{r: r}
	info := &LogInfo{
		OrderByClass: make(map[string]int64),
		OrderByKind:  make(map[string]int64),
	}
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(cr, magic); err != nil || !bytes.Equal(magic, logMagic) {
		return nil, fmt.Errorf("replay: not a chimera log")
	}
	for {
		var hdr [13]byte
		if _, err := io.ReadFull(cr, hdr[:]); err != nil {
			return nil, fmt.Errorf("replay: truncated log (chunk header): %w", err)
		}
		kind := hdr[0]
		ulen := binary.LittleEndian.Uint32(hdr[1:5])
		clen := binary.LittleEndian.Uint32(hdr[5:9])
		crc := binary.LittleEndian.Uint32(hdr[9:13])
		if kind == chunkEnd {
			if ulen != 0 || clen != 0 || crc != 0 {
				return nil, fmt.Errorf("replay: corrupt end marker")
			}
			var b [1]byte
			if n, _ := cr.Read(b[:]); n != 0 {
				return nil, fmt.Errorf("replay: trailing garbage after log end")
			}
			info.TotalBytes = cr.n
			return info, nil
		}
		if kind != chunkInput && kind != chunkOrder {
			return nil, fmt.Errorf("replay: unknown chunk kind %d", kind)
		}
		if ulen == 0 || ulen > maxChunkLen || ulen%8 != 0 || clen == 0 || clen > maxChunkLen {
			return nil, fmt.Errorf("replay: corrupt chunk header (ulen=%d clen=%d)", ulen, clen)
		}
		comp := make([]byte, clen)
		if _, err := io.ReadFull(cr, comp); err != nil {
			return nil, fmt.Errorf("replay: truncated chunk: %w", err)
		}
		if got := crc32.ChecksumIEEE(comp); got != crc {
			return nil, fmt.Errorf("replay: chunk CRC mismatch (got %08x, want %08x)", got, crc)
		}
		raw, err := gunzipChunk(comp, ulen)
		if err != nil {
			return nil, err
		}
		ci := ChunkInfo{RawBytes: int64(ulen), CompressedBytes: int64(clen), CRC: crc}
		wr := &wordReader{r: bytes.NewReader(raw)}
		switch kind {
		case chunkInput:
			ci.Kind = "input"
			for wr.r.Len() > 0 {
				wr.next() // tid
				wr.next() // op
				wr.next() // val
				dn := wr.next()
				if wr.err != nil {
					return nil, fmt.Errorf("replay: truncated input record")
				}
				if dn < 0 || dn > wr.remaining() {
					return nil, fmt.Errorf("replay: corrupt input record (data length %d, %d words remain)", dn, wr.remaining())
				}
				for k := int64(0); k < dn; k++ {
					wr.next()
				}
				ci.Records++
			}
			info.Input.Chunks++
			info.Input.Records += ci.Records
			info.Input.RawBytes += ci.RawBytes
			info.Input.CompressedBytes += ci.CompressedBytes
			info.Input.WireBytes += ci.CompressedBytes + int64(len(hdr))
		case chunkOrder:
			ci.Kind = "order"
			for wr.r.Len() > 0 {
				key, err := decodeSyncKey(wr)
				if err != nil {
					return nil, err
				}
				rec, err := decodeOrderRec(wr)
				if err != nil {
					return nil, err
				}
				if wr.err != nil {
					return nil, fmt.Errorf("replay: truncated order record")
				}
				info.OrderByClass[key.Class.String()]++
				info.OrderByKind[rec.Kind.String()]++
				ci.Records++
			}
			info.Order.Chunks++
			info.Order.Records += ci.Records
			info.Order.RawBytes += ci.RawBytes
			info.Order.CompressedBytes += ci.CompressedBytes
			info.Order.WireBytes += ci.CompressedBytes + int64(len(hdr))
		}
		info.Chunks = append(info.Chunks, ci)
	}
}

// gunzipChunk decompresses one verified chunk payload, enforcing the
// declared uncompressed length.
func gunzipChunk(comp []byte, ulen uint32) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, fmt.Errorf("replay: bad chunk stream: %w", err)
	}
	rbuf := bytes.NewBuffer(make([]byte, 0, ulen))
	if _, err := io.Copy(rbuf, io.LimitReader(zr, int64(ulen)+1)); err != nil {
		return nil, fmt.Errorf("replay: bad chunk stream: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("replay: bad chunk stream: %w", err)
	}
	if rbuf.Len() != int(ulen) {
		return nil, fmt.Errorf("replay: chunk length mismatch (got %d, want %d)", rbuf.Len(), ulen)
	}
	return rbuf.Bytes(), nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
