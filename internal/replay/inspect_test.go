package replay

import (
	"bytes"
	"testing"

	"repro/internal/vm"
)

// buildStatLog writes a small but representative log: input records with
// and without data payloads, order records across several sync classes,
// and a forced-preemption record (the wide, anchor-carrying encoding).
func buildStatLog(t *testing.T) ([]byte, StreamStats) {
	t.Helper()
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	lw.Input(0, InputRec{Op: 3, Val: 42})
	lw.Input(1, InputRec{Op: 5, Val: 7, Data: []int64{1, 2, 3}})
	lw.Input(0, InputRec{Op: 3, Val: 43})
	mu := vm.SyncKey{Class: vm.SyncMutex, ID: 16}
	wl := vm.SyncKey{Class: vm.SyncWeakLock, ID: 2}
	lw.Order(mu, OrderRec{Tid: 0, Kind: vm.EvAcquire})
	lw.Order(mu, OrderRec{Tid: 0, Kind: vm.EvRelease})
	lw.Order(wl, OrderRec{Tid: 1, Kind: vm.EvWLAcquire})
	lw.Order(wl, OrderRec{
		Tid: 0, Kind: vm.EvWLForcedRelease,
		Anchor: vm.ForcedAnchor{Instr: 99, Sync: 4, Blocked: true},
	})
	lw.Order(wl, OrderRec{Tid: 1, Kind: vm.EvWLRelease})
	if err := lw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), lw.Stats()
}

func TestStatMatchesWriter(t *testing.T) {
	data, ws := buildStatLog(t)
	info, err := Stat(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.TotalBytes != int64(len(data)) {
		t.Errorf("TotalBytes = %d, want %d", info.TotalBytes, len(data))
	}
	if info.Input.Records != ws.InputRecords || info.Order.Records != ws.OrderRecords {
		t.Errorf("records = (%d,%d), writer saw (%d,%d)",
			info.Input.Records, info.Order.Records, ws.InputRecords, ws.OrderRecords)
	}
	if info.Input.Chunks != ws.InputChunks || info.Order.Chunks != ws.OrderChunks {
		t.Errorf("chunks = (%d,%d), writer saw (%d,%d)",
			info.Input.Chunks, info.Order.Chunks, ws.InputChunks, ws.OrderChunks)
	}
	if info.Input.RawBytes != ws.InputRawBytes || info.Order.RawBytes != ws.OrderRawBytes {
		t.Errorf("raw bytes = (%d,%d), writer saw (%d,%d)",
			info.Input.RawBytes, info.Order.RawBytes, ws.InputRawBytes, ws.OrderRawBytes)
	}
	if info.Input.WireBytes != ws.InputBytes || info.Order.WireBytes != ws.OrderBytes {
		t.Errorf("wire bytes = (%d,%d), writer saw (%d,%d)",
			info.Input.WireBytes, info.Order.WireBytes, ws.InputBytes, ws.OrderBytes)
	}
	// Whole stream = both streams' wire bytes + magic + end marker.
	if want := info.Input.WireBytes + info.Order.WireBytes + int64(len(logMagic)) + 13; info.TotalBytes != want {
		t.Errorf("TotalBytes = %d, want magic+streams+end = %d", info.TotalBytes, want)
	}
	if got := info.OrderByClass["weaklock"]; got != 3 {
		t.Errorf("OrderByClass[weaklock] = %d, want 3", got)
	}
	if got := info.OrderByClass["mutex"]; got != 2 {
		t.Errorf("OrderByClass[mutex] = %d, want 2", got)
	}
	if got := info.OrderByKind["wlforce"]; got != 1 {
		t.Errorf("OrderByKind[wlforce] = %d, want 1", got)
	}
	if info.Input.Ratio() <= 0 || info.Order.Ratio() <= 0 {
		t.Errorf("ratios should be positive, got %v / %v", info.Input.Ratio(), info.Order.Ratio())
	}
}

func TestStatRejectsCorruption(t *testing.T) {
	data, _ := buildStatLog(t)
	if _, err := Stat(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Error("truncated log: want error")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := Stat(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic: want error")
	}
	// Flip a payload byte: the CRC must catch it.
	bad = append([]byte(nil), data...)
	bad[len(logMagic)+13+4] ^= 0xFF
	if _, err := Stat(bytes.NewReader(bad)); err == nil {
		t.Error("flipped payload byte: want error")
	}
	if _, err := Stat(bytes.NewReader(append(append([]byte(nil), data...), 0))); err == nil {
		t.Error("trailing garbage: want error")
	}
}
