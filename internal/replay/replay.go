// Package replay implements Chimera's record and replay runtime
// (paper §2.2, §6.1): the recorder logs all nondeterministic input (system
// call results) and the happens-before order of synchronization operations
// — the original program's sync plus the weak-locks the instrumenter added;
// the replayer feeds inputs back from the log and gates every sync
// operation so it occurs in its recorded order.
//
// For a program whose races are all guarded by weak-locks, this
// reproduces the recorded execution exactly: output, final memory and exit
// code bit-match. For a racy program recorded *without* weak-locks (the
// "DRF-only" baseline), replay under a different schedule seed can diverge
// — which is precisely the failure mode Chimera exists to close.
package replay

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/minic/types"
	"repro/internal/vm"
)

// Interface conformance: recorder and replayer both drive preemptions.
var (
	_ vm.SyncMonitor       = (*Recorder)(nil)
	_ vm.PreemptionMonitor = (*Recorder)(nil)
	_ vm.SyncMonitor       = (*Replayer)(nil)
	_ vm.PreemptionMonitor = (*Replayer)(nil)
	_ vm.InputProvider     = (*Recorder)(nil)
	_ vm.InputProvider     = (*Replayer)(nil)
)

// InputRec is one logged input operation result.
type InputRec struct {
	Op   types.BuiltinOp
	Val  int64
	Data []int64 // words deposited into the user buffer (read/recv)
}

// OrderRec is one logged synchronization event. Forced weak-lock
// preemptions (Kind == EvWLForcedRelease) additionally carry the anchor
// that lets replay inject the preemption at exactly the recorded point in
// the owner's execution.
type OrderRec struct {
	Tid    int32
	Kind   vm.SyncEventKind
	Anchor vm.ForcedAnchor
}

// Log is a complete recording.
type Log struct {
	// Inputs holds each thread's input-operation results in program
	// order (a thread's input sequence is deterministic given the sync
	// order, so per-thread FIFOs suffice).
	Inputs map[int][]InputRec

	// Orders holds the committed operation order per sync object.
	Orders map[vm.SyncKey][]OrderRec
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{
		Inputs: make(map[int][]InputRec),
		Orders: make(map[vm.SyncKey][]OrderRec),
	}
}

// InputCount returns the total number of logged input records.
func (l *Log) InputCount() int {
	n := 0
	for _, recs := range l.Inputs {
		n += len(recs)
	}
	return n
}

// OrderCount returns the total number of order records, optionally
// filtered by sync class.
func (l *Log) OrderCount(classes ...vm.SyncClass) int {
	n := 0
	for k, recs := range l.Orders {
		if len(classes) == 0 {
			n += len(recs)
			continue
		}
		for _, c := range classes {
			if k.Class == c {
				n += len(recs)
			}
		}
	}
	return n
}

// sortedInputTids returns thread ids with input records, ascending.
func (l *Log) sortedInputTids() []int {
	var tids []int
	for tid := range l.Inputs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	return tids
}

// sortedOrderKeys returns the sync keys, deterministically ordered.
func (l *Log) sortedOrderKeys() []vm.SyncKey {
	keys := make([]vm.SyncKey, 0, len(l.Orders))
	for k := range l.Orders {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Class != keys[j].Class {
			return keys[i].Class < keys[j].Class
		}
		return keys[i].ID < keys[j].ID
	})
	return keys
}

// ---------------------------------------------------------------------------
// Serialization (Table 2 reports gzip-compressed log sizes)

// InputBytes serializes the input log.
func (l *Log) InputBytes() []byte {
	var buf bytes.Buffer
	w := func(v int64) { binary.Write(&buf, binary.LittleEndian, v) }
	tids := l.sortedInputTids()
	w(int64(len(tids)))
	for _, tid := range tids {
		recs := l.Inputs[tid]
		w(int64(tid))
		w(int64(len(recs)))
		for _, r := range recs {
			w(int64(r.Op))
			w(r.Val)
			w(int64(len(r.Data)))
			for _, d := range r.Data {
				w(d)
			}
		}
	}
	return buf.Bytes()
}

// OrderBytes serializes the sync-order log.
func (l *Log) OrderBytes() []byte {
	var buf bytes.Buffer
	w := func(v int64) { binary.Write(&buf, binary.LittleEndian, v) }
	keys := l.sortedOrderKeys()
	w(int64(len(keys)))
	for _, k := range keys {
		recs := l.Orders[k]
		w(int64(k.Class))
		w(k.ID)
		w(int64(len(recs)))
		for _, r := range recs {
			// Pack tid and kind into one word, as a real log would; forced
			// preemptions carry their anchor in two extra words.
			w(int64(r.Tid)<<8 | int64(r.Kind))
			if r.Kind == vm.EvWLForcedRelease {
				w(r.Anchor.Instr)
				s := r.Anchor.Sync << 1
				if r.Anchor.Blocked {
					s |= 1
				}
				w(s)
			}
		}
	}
	return buf.Bytes()
}

// GzipSize returns len(gzip(data)), the metric Table 2 reports.
func GzipSize(data []byte) int {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	zw.Write(data)
	zw.Close()
	return buf.Len()
}

// InputLogKB and OrderLogKB return the compressed sizes in KB.
func (l *Log) InputLogKB() float64 { return float64(GzipSize(l.InputBytes())) / 1024 }

// OrderLogKB returns the compressed order-log size in KB.
func (l *Log) OrderLogKB() float64 { return float64(GzipSize(l.OrderBytes())) / 1024 }

// ---------------------------------------------------------------------------
// Recorder

// Recorder implements vm.InputProvider and vm.SyncMonitor for a recording
// run: inputs come from the live simulated OS and are logged; sync commits
// are appended to the order log. Costs model the logging overhead.
type Recorder struct {
	log  *Log
	live vm.LiveInputs
	cost vm.CostModel
	lw   *LogWriter // optional streaming tee (AttachWriter)
}

// AttachWriter tees every logged record into lw as it is committed, so a
// recording streams to disk while the run is still executing. The caller
// owns lw and must Close it after the run. Attaching adds no simulated
// cost — the CostModel already charges for logging.
func (r *Recorder) AttachWriter(lw *LogWriter) { r.lw = lw }

// NewRecorder returns a recorder over the given OS.
func NewRecorder(os vm.OS, cost vm.CostModel) *Recorder {
	if cost == (vm.CostModel{}) {
		cost = vm.DefaultCost()
	}
	return &Recorder{log: NewLog(), live: vm.LiveInputs{OS: os}, cost: cost}
}

// Log returns the recording.
func (r *Recorder) Log() *Log { return r.log }

// Input implements vm.InputProvider.
func (r *Recorder) Input(tid int, op types.BuiltinOp, args []int64, sendData []int64, now int64) (int64, []int64, int64, int64, error) {
	val, data, ready, _, err := r.live.Input(tid, op, args, sendData, now)
	if err != nil {
		return 0, nil, now, 0, err
	}
	rec := InputRec{Op: op, Val: val}
	if len(data) > 0 {
		rec.Data = append([]int64{}, data...)
	}
	r.log.Inputs[tid] = append(r.log.Inputs[tid], rec)
	if r.lw != nil {
		r.lw.Input(tid, rec)
	}
	cost := r.cost.LogEvent + r.cost.LogWord*int64(len(data))
	return val, data, ready, cost, nil
}

// TryProceed implements vm.SyncMonitor: recording never blocks.
func (r *Recorder) TryProceed(key vm.SyncKey, kind vm.SyncEventKind, tid int) bool { return true }

// Commit implements vm.SyncMonitor: append to the order log.
func (r *Recorder) Commit(key vm.SyncKey, kind vm.SyncEventKind, tid int, now int64) int64 {
	rec := OrderRec{Tid: int32(tid), Kind: kind}
	r.log.Orders[key] = append(r.log.Orders[key], rec)
	if r.lw != nil {
		r.lw.Order(key, rec)
	}
	return r.cost.LogEvent
}

// CommitForced implements vm.PreemptionMonitor: log the forced release
// together with its deterministic anchor (paper §2.3's planned DoublePlay
// mechanism, here fully implemented).
func (r *Recorder) CommitForced(key vm.SyncKey, tid int, anchor vm.ForcedAnchor, now int64) int64 {
	rec := OrderRec{Tid: int32(tid), Kind: vm.EvWLForcedRelease, Anchor: anchor}
	r.log.Orders[key] = append(r.log.Orders[key], rec)
	if r.lw != nil {
		r.lw.Order(key, rec)
	}
	return r.cost.LogEvent
}

// NextForced implements vm.PreemptionMonitor: recorders schedule nothing.
func (r *Recorder) NextForced(tid int) (vm.SyncKey, vm.ForcedAnchor, bool) {
	return vm.SyncKey{}, vm.ForcedAnchor{}, false
}

// ---------------------------------------------------------------------------
// Replayer

// Replayer implements vm.InputProvider and vm.SyncMonitor for a replay run:
// inputs are fed from the log with no device wait (paper §7.2: network
// applications "replay much faster as we feed the recorded input directly"),
// and sync operations are gated to their recorded order.
type Replayer struct {
	log      *Log
	cost     vm.CostModel
	inputPos map[int]int
	orderPos map[vm.SyncKey]int

	// forced holds each thread's scheduled preemptions in order.
	forced map[int][]forcedRec
	err    error
}

type forcedRec struct {
	key    vm.SyncKey
	anchor vm.ForcedAnchor
}

// NewReplayer returns a replayer over a recording.
func NewReplayer(log *Log, cost vm.CostModel) *Replayer {
	if cost == (vm.CostModel{}) {
		cost = vm.DefaultCost()
	}
	r := &Replayer{
		log:      log,
		cost:     cost,
		inputPos: make(map[int]int),
		orderPos: make(map[vm.SyncKey]int),
		forced:   make(map[int][]forcedRec),
	}
	// Index the forced preemptions per thread, in key-scan order; within a
	// thread the anchors give the true order, and a thread executes them
	// one at a time, so sort by anchor.
	for _, key := range log.sortedOrderKeys() {
		for _, rec := range log.Orders[key] {
			if rec.Kind == vm.EvWLForcedRelease {
				r.forced[int(rec.Tid)] = append(r.forced[int(rec.Tid)],
					forcedRec{key: key, anchor: rec.Anchor})
			}
		}
	}
	for tid := range r.forced {
		recs := r.forced[tid]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].anchor.Instr != recs[j].anchor.Instr {
				return recs[i].anchor.Instr < recs[j].anchor.Instr
			}
			return recs[i].anchor.Sync < recs[j].anchor.Sync
		})
		r.forced[tid] = recs
	}
	return r
}

// CommitForced implements vm.PreemptionMonitor: consume the head forced
// record on the key and the thread's schedule.
func (r *Replayer) CommitForced(key vm.SyncKey, tid int, anchor vm.ForcedAnchor, now int64) int64 {
	pos := r.orderPos[key]
	recs := r.log.Orders[key]
	if pos >= len(recs) || recs[pos].Kind != vm.EvWLForcedRelease || recs[pos].Tid != int32(tid) {
		r.diverge("forced preemption on %s by thread %d not next in the log", key, tid)
		return r.cost.ReplayGate
	}
	r.orderPos[key] = pos + 1
	if q := r.forced[tid]; len(q) > 0 {
		r.forced[tid] = q[1:]
	}
	return r.cost.ReplayGate
}

// NextForced implements vm.PreemptionMonitor.
func (r *Replayer) NextForced(tid int) (vm.SyncKey, vm.ForcedAnchor, bool) {
	q := r.forced[tid]
	if len(q) == 0 {
		return vm.SyncKey{}, vm.ForcedAnchor{}, false
	}
	return q[0].key, q[0].anchor, true
}

// Err returns the first divergence detected, if any.
func (r *Replayer) Err() error { return r.err }

// diverge records a divergence; the VM surfaces it as a run error.
func (r *Replayer) diverge(format string, args ...any) error {
	if r.err == nil {
		r.err = fmt.Errorf("replay divergence: "+format, args...)
	}
	return r.err
}

// Input implements vm.InputProvider.
func (r *Replayer) Input(tid int, op types.BuiltinOp, args []int64, sendData []int64, now int64) (int64, []int64, int64, int64, error) {
	pos := r.inputPos[tid]
	recs := r.log.Inputs[tid]
	if pos >= len(recs) {
		return 0, nil, now, 0, r.diverge("thread %d performed more input ops than recorded (%s)", tid, types.BuiltinName(op))
	}
	rec := recs[pos]
	if rec.Op != op {
		return 0, nil, now, 0, r.diverge("thread %d input op mismatch: got %s, recorded %s",
			tid, types.BuiltinName(op), types.BuiltinName(rec.Op))
	}
	r.inputPos[tid] = pos + 1
	// No device wait: results come straight from the log.
	return rec.Val, rec.Data, now, r.cost.ReplayGate, nil
}

// TryProceed implements vm.SyncMonitor: a thread may proceed only when it
// is the next recorded actor on the object.
func (r *Replayer) TryProceed(key vm.SyncKey, kind vm.SyncEventKind, tid int) bool {
	pos := r.orderPos[key]
	recs := r.log.Orders[key]
	if pos >= len(recs) {
		// More sync ops than recorded: divergence. Refusing forever would
		// surface as a deadlock; record the real cause.
		r.diverge("extra %s op on %s by thread %d", kind, key, tid)
		return false
	}
	return recs[pos].Tid == int32(tid)
}

// Commit implements vm.SyncMonitor: consume the head record.
func (r *Replayer) Commit(key vm.SyncKey, kind vm.SyncEventKind, tid int, now int64) int64 {
	pos := r.orderPos[key]
	recs := r.log.Orders[key]
	if pos >= len(recs) || recs[pos].Tid != int32(tid) {
		r.diverge("commit out of order on %s by thread %d", key, tid)
		return r.cost.ReplayGate
	}
	if recs[pos].Kind != kind {
		r.diverge("op kind mismatch on %s: got %s, recorded %s", key, kind, recs[pos].Kind)
	}
	r.orderPos[key] = pos + 1
	return r.cost.ReplayGate
}

// Drained reports whether the entire order log was consumed (a fully
// faithful replay consumes everything).
func (r *Replayer) Drained() bool {
	for k, recs := range r.log.Orders {
		if r.orderPos[k] != len(recs) {
			return false
		}
	}
	return true
}
