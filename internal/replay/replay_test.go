package replay

import (
	"testing"

	"repro/internal/minic/types"
	"repro/internal/oskit"
	"repro/internal/vm"
)

func TestRecorderLogsInputs(t *testing.T) {
	w := oskit.NewWorld(1)
	w.AddFile(5, []int64{10, 20, 30})
	rec := NewRecorder(w, vm.DefaultCost())

	fd, _, _, cost, err := rec.Input(0, types.BOpen, []int64{5}, nil, 0)
	if err != nil || fd < 0 {
		t.Fatalf("open: %v fd=%d", err, fd)
	}
	if cost <= 0 {
		t.Errorf("logging should cost cycles")
	}
	n, data, _, _, err := rec.Input(0, types.BRead, []int64{fd, 0, 3}, nil, 100)
	if err != nil || n != 3 || len(data) != 3 {
		t.Fatalf("read: %v n=%d data=%v", err, n, data)
	}
	log := rec.Log()
	if log.InputCount() != 2 {
		t.Errorf("input count = %d, want 2", log.InputCount())
	}
	if got := log.Inputs[0][1]; got.Op != types.BRead || got.Val != 3 || got.Data[2] != 30 {
		t.Errorf("read record wrong: %+v", got)
	}
}

func TestRecorderLogsOrder(t *testing.T) {
	rec := NewRecorder(oskit.NewWorld(1), vm.DefaultCost())
	key := vm.SyncKey{Class: vm.SyncMutex, ID: 42}
	if !rec.TryProceed(key, vm.EvAcquire, 1) {
		t.Fatal("recording must never gate")
	}
	rec.Commit(key, vm.EvAcquire, 1, 10)
	rec.Commit(key, vm.EvAcquire, 2, 20)
	log := rec.Log()
	if log.OrderCount() != 2 {
		t.Fatalf("order count = %d", log.OrderCount())
	}
	if log.Orders[key][0].Tid != 1 || log.Orders[key][1].Tid != 2 {
		t.Errorf("order wrong: %+v", log.Orders[key])
	}
}

func TestReplayerEnforcesOrder(t *testing.T) {
	log := NewLog()
	key := vm.SyncKey{Class: vm.SyncMutex, ID: 7}
	log.Orders[key] = []OrderRec{{Tid: 2, Kind: vm.EvAcquire}, {Tid: 1, Kind: vm.EvAcquire}}
	rep := NewReplayer(log, vm.DefaultCost())

	if rep.TryProceed(key, vm.EvAcquire, 1) {
		t.Errorf("thread 1 must wait (thread 2 recorded first)")
	}
	if !rep.TryProceed(key, vm.EvAcquire, 2) {
		t.Errorf("thread 2 should proceed")
	}
	rep.Commit(key, vm.EvAcquire, 2, 0)
	if !rep.TryProceed(key, vm.EvAcquire, 1) {
		t.Errorf("thread 1 should proceed after thread 2 committed")
	}
	rep.Commit(key, vm.EvAcquire, 1, 0)
	if !rep.Drained() {
		t.Errorf("log should be drained")
	}
	if rep.Err() != nil {
		t.Errorf("unexpected divergence: %v", rep.Err())
	}
}

func TestReplayerDetectsInputDivergence(t *testing.T) {
	log := NewLog()
	log.Inputs[0] = []InputRec{{Op: types.BRead, Val: 4}}
	rep := NewReplayer(log, vm.DefaultCost())
	_, _, _, _, err := rep.Input(0, types.BRecv, []int64{1, 2, 3}, nil, 0)
	if err == nil {
		t.Fatalf("op mismatch must diverge")
	}
	rep2 := NewReplayer(NewLog(), vm.DefaultCost())
	_, _, _, _, err = rep2.Input(0, types.BRead, []int64{1, 2, 3}, nil, 0)
	if err == nil {
		t.Fatalf("extra input must diverge")
	}
}

func TestReplayerDetectsExtraSyncOps(t *testing.T) {
	rep := NewReplayer(NewLog(), vm.DefaultCost())
	key := vm.SyncKey{Class: vm.SyncMutex, ID: 9}
	if rep.TryProceed(key, vm.EvAcquire, 0) {
		t.Errorf("extra op must not proceed")
	}
	if rep.Err() == nil {
		t.Errorf("divergence should be recorded")
	}
}

func TestSerializationRoundNumbers(t *testing.T) {
	log := NewLog()
	log.Inputs[0] = []InputRec{{Op: types.BRead, Val: 3, Data: []int64{1, 2, 3}}}
	log.Inputs[2] = []InputRec{{Op: types.BNow, Val: 99}}
	key := vm.SyncKey{Class: vm.SyncWeakLock, ID: 5}
	for i := 0; i < 100; i++ {
		log.Orders[key] = append(log.Orders[key], OrderRec{Tid: int32(i % 3), Kind: vm.EvWLAcquire})
	}
	ib := log.InputBytes()
	ob := log.OrderBytes()
	if len(ib) == 0 || len(ob) == 0 {
		t.Fatalf("empty serialization")
	}
	if GzipSize(ob) >= len(ob)+20 {
		t.Errorf("gzip should not grow a repetitive log much: %d vs %d", GzipSize(ob), len(ob))
	}
	if log.InputLogKB() <= 0 || log.OrderLogKB() <= 0 {
		t.Errorf("sizes should be positive")
	}
}

func TestOrderCountByClass(t *testing.T) {
	log := NewLog()
	log.Orders[vm.SyncKey{Class: vm.SyncMutex, ID: 1}] = []OrderRec{{}, {}}
	log.Orders[vm.SyncKey{Class: vm.SyncWeakLock, ID: 2}] = []OrderRec{{}}
	if log.OrderCount(vm.SyncMutex) != 2 {
		t.Errorf("mutex count wrong")
	}
	if log.OrderCount(vm.SyncWeakLock) != 1 {
		t.Errorf("weaklock count wrong")
	}
	if log.OrderCount() != 3 {
		t.Errorf("total count wrong")
	}
}
