package replay

// StreamReplayer: replay straight from a chunked log stream without
// materializing the whole Log. Chunks are pulled (and CRC-verified) lazily
// as the per-thread input queues and per-key order queues drain, so memory
// is bounded by how far the replayed schedule runs ahead of the stream
// order, not by the recording's length.

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/minic/types"
	"repro/internal/vm"
)

// Interface conformance: a StreamReplayer drives a replay run exactly like
// the in-memory Replayer.
var (
	_ vm.SyncMonitor       = (*StreamReplayer)(nil)
	_ vm.PreemptionMonitor = (*StreamReplayer)(nil)
	_ vm.InputProvider     = (*StreamReplayer)(nil)
)

// StreamReplayer replays a recording from an io.ReadSeeker holding the
// chunked log format. Construction prescans the stream once for forced
// weak-lock preemptions — the VM needs each thread's next preemption
// anchor up front (NextForced), which no finite lookahead bounds — then
// seeks back and decodes incrementally.
type StreamReplayer struct {
	cur    *LogCursor
	cost   vm.CostModel
	inputQ map[int][]InputRec
	orderQ map[vm.SyncKey][]OrderRec
	forced map[int][]forcedRec
	eof    bool
	err    error
}

// NewStreamReplayer returns a replayer over a chunked log stream.
func NewStreamReplayer(r io.ReadSeeker, cost vm.CostModel) (*StreamReplayer, error) {
	if cost == (vm.CostModel{}) {
		cost = vm.DefaultCost()
	}
	forced := make(map[int][]forcedRec)
	pre := NewLogCursor(r)
	for {
		rec, err := pre.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if !rec.IsInput && rec.Order.Kind == vm.EvWLForcedRelease {
			tid := int(rec.Order.Tid)
			forced[tid] = append(forced[tid], forcedRec{key: rec.Key, anchor: rec.Order.Anchor})
		}
	}
	// Within a thread the anchors give the true order (a thread executes
	// its preemptions one at a time), same as the in-memory Replayer.
	for tid := range forced {
		recs := forced[tid]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].anchor.Instr != recs[j].anchor.Instr {
				return recs[i].anchor.Instr < recs[j].anchor.Instr
			}
			return recs[i].anchor.Sync < recs[j].anchor.Sync
		})
		forced[tid] = recs
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("replay: rewind after forced-preemption prescan: %w", err)
	}
	return &StreamReplayer{
		cur:    NewLogCursor(r),
		cost:   cost,
		inputQ: make(map[int][]InputRec),
		orderQ: make(map[vm.SyncKey][]OrderRec),
		forced: forced,
	}, nil
}

// pull decodes one more record into the queues; false at end of stream or
// on a corrupt stream (recorded in err).
func (s *StreamReplayer) pull() bool {
	if s.eof || s.err != nil {
		return false
	}
	rec, err := s.cur.Next()
	if err == io.EOF {
		s.eof = true
		return false
	}
	if err != nil {
		s.err = err
		return false
	}
	if rec.IsInput {
		s.inputQ[rec.Tid] = append(s.inputQ[rec.Tid], rec.Input)
	} else {
		s.orderQ[rec.Key] = append(s.orderQ[rec.Key], rec.Order)
	}
	return true
}

// pullOrder ensures at least one pending order record on key.
func (s *StreamReplayer) pullOrder(key vm.SyncKey) bool {
	for len(s.orderQ[key]) == 0 {
		if !s.pull() {
			return false
		}
	}
	return true
}

// pullInput ensures at least one pending input record for tid.
func (s *StreamReplayer) pullInput(tid int) bool {
	for len(s.inputQ[tid]) == 0 {
		if !s.pull() {
			return false
		}
	}
	return true
}

// diverge records a divergence; the VM surfaces it as a run error.
func (s *StreamReplayer) diverge(format string, args ...any) error {
	if s.err == nil {
		s.err = fmt.Errorf("replay divergence: "+format, args...)
	}
	return s.err
}

// Err returns the first divergence or stream error detected, if any.
func (s *StreamReplayer) Err() error { return s.err }

// Input implements vm.InputProvider.
func (s *StreamReplayer) Input(tid int, op types.BuiltinOp, args []int64, sendData []int64, now int64) (int64, []int64, int64, int64, error) {
	if !s.pullInput(tid) {
		return 0, nil, now, 0, s.diverge("thread %d performed more input ops than recorded (%s)", tid, types.BuiltinName(op))
	}
	rec := s.inputQ[tid][0]
	if rec.Op != op {
		return 0, nil, now, 0, s.diverge("thread %d input op mismatch: got %s, recorded %s",
			tid, types.BuiltinName(op), types.BuiltinName(rec.Op))
	}
	s.inputQ[tid] = s.inputQ[tid][1:]
	return rec.Val, rec.Data, now, s.cost.ReplayGate, nil
}

// TryProceed implements vm.SyncMonitor: a thread may proceed only when it
// is the next recorded actor on the object.
func (s *StreamReplayer) TryProceed(key vm.SyncKey, kind vm.SyncEventKind, tid int) bool {
	if !s.pullOrder(key) {
		s.diverge("extra %s op on %s by thread %d", kind, key, tid)
		return false
	}
	return s.orderQ[key][0].Tid == int32(tid)
}

// Commit implements vm.SyncMonitor: consume the head record on the key.
func (s *StreamReplayer) Commit(key vm.SyncKey, kind vm.SyncEventKind, tid int, now int64) int64 {
	if !s.pullOrder(key) || s.orderQ[key][0].Tid != int32(tid) {
		s.diverge("commit out of order on %s by thread %d", key, tid)
		return s.cost.ReplayGate
	}
	if got := s.orderQ[key][0].Kind; got != kind {
		s.diverge("op kind mismatch on %s: got %s, recorded %s", key, kind, got)
	}
	s.orderQ[key] = s.orderQ[key][1:]
	return s.cost.ReplayGate
}

// CommitForced implements vm.PreemptionMonitor.
func (s *StreamReplayer) CommitForced(key vm.SyncKey, tid int, anchor vm.ForcedAnchor, now int64) int64 {
	if !s.pullOrder(key) ||
		s.orderQ[key][0].Kind != vm.EvWLForcedRelease ||
		s.orderQ[key][0].Tid != int32(tid) {
		s.diverge("forced preemption on %s by thread %d not next in the log", key, tid)
		return s.cost.ReplayGate
	}
	s.orderQ[key] = s.orderQ[key][1:]
	if q := s.forced[tid]; len(q) > 0 {
		s.forced[tid] = q[1:]
	}
	return s.cost.ReplayGate
}

// NextForced implements vm.PreemptionMonitor.
func (s *StreamReplayer) NextForced(tid int) (vm.SyncKey, vm.ForcedAnchor, bool) {
	q := s.forced[tid]
	if len(q) == 0 {
		return vm.SyncKey{}, vm.ForcedAnchor{}, false
	}
	return q[0].key, q[0].anchor, true
}

// Drained reports whether the entire stream was consumed (a fully faithful
// replay consumes everything).
func (s *StreamReplayer) Drained() bool {
	for s.pull() {
	}
	if !s.eof {
		return false
	}
	for _, q := range s.inputQ {
		if len(q) != 0 {
			return false
		}
	}
	for _, q := range s.orderQ {
		if len(q) != 0 {
			return false
		}
	}
	return true
}
