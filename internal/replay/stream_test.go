package replay_test

import (
	"bytes"
	"testing"

	"repro/internal/oskit"
	"repro/internal/replay"
	"repro/internal/vm"
)

// TestStreamRecordAndReplay runs the forced-preemption scenario with a
// LogWriter attached to the recorder, then replays bit-identically straight
// from the byte stream with a StreamReplayer — the full streaming path,
// including the forced-preemption prescan.
func TestStreamRecordAndReplay(t *testing.T) {
	p, tbl := forcedSetup(t)

	var stream bytes.Buffer
	rec := replay.NewRecorder(oskit.NewWorld(1), vm.DefaultCost())
	lw := replay.NewLogWriter(&stream)
	rec.AttachWriter(lw)
	recRes := vm.Run(p, vm.Config{
		Inputs: rec, Monitor: rec, WL: tbl,
		Seed: 3, WLTimeout: 50_000,
	})
	if recRes.Err != nil {
		t.Fatalf("record: %v", recRes.Err)
	}
	if recRes.WLStats.Timeouts == 0 {
		t.Fatalf("scenario should force a preemption during recording")
	}
	if err := lw.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}

	// Compressed byte attribution: the order stream carried records (this
	// scenario performs no input ops), and all stream bytes are
	// magic + chunks + end marker.
	if lw.OrderBytesWritten() <= 0 {
		t.Fatalf("order byte counter not populated: ord=%d", lw.OrderBytesWritten())
	}
	if want := int64(stream.Len()) - 8 - 13; lw.InputBytesWritten()+lw.OrderBytesWritten() != want {
		t.Errorf("counter sum %d != stream minus framing %d",
			lw.InputBytesWritten()+lw.OrderBytesWritten(), want)
	}

	// The streamed bytes decode to the recorder's in-memory log.
	decoded, err := replay.ReadLog(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatalf("decode streamed log: %v", err)
	}
	if decoded.InputCount() != rec.Log().InputCount() ||
		decoded.OrderCount() != rec.Log().OrderCount() {
		t.Fatalf("streamed log mismatch: inputs %d/%d orders %d/%d",
			decoded.InputCount(), rec.Log().InputCount(),
			decoded.OrderCount(), rec.Log().OrderCount())
	}

	for _, repSeed := range []uint64{999, 7} {
		sr, err := replay.NewStreamReplayer(bytes.NewReader(stream.Bytes()), vm.DefaultCost())
		if err != nil {
			t.Fatalf("open stream replayer: %v", err)
		}
		repRes := vm.Run(p, vm.Config{
			Inputs: sr, Monitor: sr, WL: tbl,
			Seed: repSeed, DisableTimeouts: true,
		})
		if repRes.Err != nil {
			t.Fatalf("stream replay seed %d: %v", repSeed, repRes.Err)
		}
		if sr.Err() != nil {
			t.Fatalf("stream replay seed %d divergence: %v", repSeed, sr.Err())
		}
		if !sr.Drained() {
			t.Fatalf("stream replay seed %d: stream not drained", repSeed)
		}
		if repRes.Hash64() != recRes.Hash64() {
			t.Fatalf("stream replay seed %d diverged:\nrecorded %q\nreplayed %q",
				repSeed, recRes.Output, repRes.Output)
		}
		if repRes.WLStats.Timeouts != recRes.WLStats.Timeouts {
			t.Errorf("stream replay injected %d preemptions, recorded %d",
				repRes.WLStats.Timeouts, recRes.WLStats.Timeouts)
		}
	}
}

// TestStreamReplayerDetectsDivergence feeds a stream recorded from one
// run to a program expecting different input and checks the divergence is
// reported, not silently absorbed.
func TestStreamReplayerDetectsDivergence(t *testing.T) {
	l := replay.NewLog()
	key := vm.SyncKey{Class: vm.SyncMutex, ID: 7}
	l.Orders[key] = []replay.OrderRec{{Tid: 2, Kind: vm.EvAcquire}}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := replay.NewStreamReplayer(bytes.NewReader(buf.Bytes()), vm.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if sr.TryProceed(key, vm.EvAcquire, 1) {
		t.Errorf("thread 1 must wait (thread 2 recorded first)")
	}
	if !sr.TryProceed(key, vm.EvAcquire, 2) {
		t.Errorf("thread 2 should proceed")
	}
	sr.Commit(key, vm.EvAcquire, 2, 0)
	// Log exhausted: another op on the key is a divergence.
	if sr.TryProceed(key, vm.EvAcquire, 2) {
		t.Errorf("extra op must not proceed")
	}
	if sr.Err() == nil {
		t.Fatalf("extra op must be reported as divergence")
	}
}
