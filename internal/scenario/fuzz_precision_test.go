package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/relay"
	"repro/internal/trace"
)

// FuzzPrecisionSoundness differentially fuzzes the static precision
// layer over the scenario corpus: every generated program is instrumented
// twice — from the MHP-refined report and from the precision-refined one
// — and both variants must record and replay bit-identically under
// different schedule seeds, and both must be race-free under the epoch
// and full-vector checkers with identical verdict sets. A pair the
// precision layer wrongly discharged gets no weak lock, which is exactly
// what these obligations detect: the replay diverges or the checkers see
// the unprotected race.
func FuzzPrecisionSoundness(f *testing.F) {
	f.Add("prodcons:1:small")
	f.Add("workpool:7:t3,s4,o16,l35")
	f.Add("pipeline:3:t2,s2,o8,l100")
	f.Add("cache:11:t2,s8,o24,l0")
	f.Add("counters:5:t4,s6,o12,l60")
	f.Add("cache:7:t2,s12,o40,l65")
	f.Add("counters:2:t3,s3,o20,l0")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := Parse(text)
		if err != nil {
			return // spec-grammar fail-closed behavior is FuzzScenarioSoundness's job
		}
		if spec.Ops > 64 || spec.Threads > 4 || spec.Shared > 16 {
			t.Skip("clamped: size beyond fuzz budget")
		}
		src, err := Generate(spec)
		if err != nil {
			t.Fatalf("generate %q: %v", spec, err)
		}
		prog, err := core.Load(spec.Name(), src)
		if err != nil {
			t.Fatalf("load %q: %v", spec, err)
		}

		variants := []struct {
			name string
			rep  *relay.Report
		}{
			{"mhp", prog.RefinedRaces()},
			{"precision", prog.PrecisionRaces()},
		}
		verdicts := make([][]trace.Race, len(variants))
		for i, v := range variants {
			ip, err := prog.InstrumentWith(v.rep, nil, instrument.AllOptions())
			if err != nil {
				t.Fatalf("%s: instrument: %v", v.name, err)
			}
			recRes, log := ip.Record(core.RunConfig{World: spec.world(), Seed: spec.recSeed(), Table: ip.Table})
			if recRes.Err != nil {
				t.Fatalf("%s: record: %v (repro: racecheck -gen '%s')", v.name, recRes.Err, spec)
			}
			repRes, err := ip.Replay(log, core.RunConfig{World: spec.world(), Seed: spec.repSeed(), Table: ip.Table})
			if err != nil {
				t.Fatalf("%s: replay: %v (repro: racecheck -gen '%s')", v.name, err, spec)
			}
			if repRes.Hash64() != recRes.Hash64() {
				t.Fatalf("%s: replay diverged: recorded %x, replayed %x (repro: racecheck -gen '%s')",
					v.name, recRes.Hash64(), repRes.Hash64(), spec)
			}
			ep, vc := trace.NewChecker(0), trace.NewVectorChecker(0)
			r := core.CheckDynamicRacesWith(ip.Prog, ip.Table, core.RunConfig{World: spec.world(), Seed: spec.recSeed()}, ep, vc)
			if r.Err != nil {
				t.Fatalf("%s: checker run: %v", v.name, r.Err)
			}
			if !trace.SameVerdicts(ep.Races(), vc.Races()) {
				t.Fatalf("%s: epoch and vector verdicts diverged: %v vs %v (repro: racecheck -gen '%s')",
					v.name, ep.Races(), vc.Races(), spec)
			}
			if n := len(ep.Races()); n != 0 {
				t.Fatalf("%s: instrumented program raced %d time(s) under the extended sync set: %v (repro: racecheck -gen '%s')",
					v.name, n, ep.Races(), spec)
			}
			verdicts[i] = ep.Races()
		}
		if !trace.SameVerdicts(verdicts[0], verdicts[1]) {
			t.Fatalf("checker verdicts differ between mhp and precision variants: %v vs %v (repro: racecheck -gen '%s')",
				verdicts[0], verdicts[1], spec)
		}
	})
}
