package scenario

import "testing"

// FuzzScenarioSoundness fuzzes the spec encoding end to end: any text
// the parser accepts must generate a program that survives the complete
// soundness pipeline — analyze (fresh==incremental), instrument,
// certify clean, replay bit-identically, identical epoch-vs-vector
// verdicts. Invalid text must fail closed with a deterministic
// diagnostic. Sizes are clamped so the fuzzer explores spec space, not
// VM run time.
func FuzzScenarioSoundness(f *testing.F) {
	f.Add("prodcons:1:small")
	f.Add("workpool:7:t3,s4,o16,l35")
	f.Add("pipeline:3:t2,s2,o8,l100")
	f.Add("cache:11:t2,s8,o24,l0")
	f.Add("counters:5:t4,s6,o12,l60")
	f.Add("bogus:1:small")
	f.Add("cache:1:t0,s4,o16,l60")
	f.Add("cache:1:o9999999")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := Parse(text)
		if err != nil {
			// Fail-closed path: the diagnostic itself must be
			// deterministic.
			_, err2 := Parse(text)
			if err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("nondeterministic parse failure for %q: %q vs %q", text, err, err2)
			}
			return
		}
		if got, err := Parse(spec.String()); err != nil || got != spec {
			t.Fatalf("canonical form %q of %q does not round-trip: %v", spec.String(), text, err)
		}
		// Keep the pipeline cost bounded; large programs are the seed
		// matrix's job, spec-space exploration is the fuzzer's.
		if spec.Ops > 64 || spec.Threads > 4 || spec.Shared > 16 {
			t.Skip("clamped: size beyond fuzz budget")
		}
		if r := RunPipeline(spec); !r.OK() {
			min := Minimize(spec)
			t.Fatalf("stage %s: %v\nminimized repro: racecheck -gen '%s'", r.FailStage, r.Err, min)
		}
	})
}
