package scenario

import "testing"

// matrixVariants are the five size/shape points each (family, seed)
// cell is generated at. 5 families × 8 seeds × 5 variants = 200 specs.
// The variants deliberately hit both lock-density rails (an all-guarded
// and an all-racy program) plus three mixed points, and keep sizes
// small enough that the full matrix runs in one `go test` invocation.
var matrixVariants = []struct {
	threads, shared, ops, density int
}{
	{2, 2, 8, 100},
	{2, 4, 12, 0},
	{3, 4, 16, 60},
	{4, 8, 24, 35},
	{4, 3, 10, 80},
}

// TestSeedMatrix pushes 200 generated specs through the complete
// soundness pipeline: analyze fresh==incremental, instrument, certify
// clean, record, replay bit-identical, epoch==vector verdicts on both
// the original and instrumented programs. This is the acceptance gate
// of ISSUE 7; any failure prints a racecheck -gen repro.
func TestSeedMatrix(t *testing.T) {
	n := 0
	for _, fam := range Families {
		for seed := uint64(1); seed <= 8; seed++ {
			for _, v := range matrixVariants {
				spec := Spec{
					Family:      fam,
					Seed:        seed,
					Threads:     v.threads,
					Shared:      v.shared,
					Ops:         v.ops,
					LockDensity: v.density,
				}
				if err := spec.Validate(); err != nil {
					t.Fatalf("matrix produced invalid spec %s: %v", spec, err)
				}
				n++
				t.Run(spec.Name(), func(t *testing.T) {
					t.Parallel()
					r := RunPipeline(spec)
					if !r.OK() {
						min := Minimize(spec)
						t.Fatalf("stage %s: %v\nminimized repro: racecheck -gen '%s'", r.FailStage, r.Err, min)
					}
				})
			}
		}
	}
	if n != 200 {
		t.Fatalf("matrix has %d specs, want 200", n)
	}
}

// TestMatrixShape documents the count arithmetic so a future edit to
// the variant table cannot silently shrink the acceptance matrix.
func TestMatrixShape(t *testing.T) {
	if got := len(Families) * 8 * len(matrixVariants); got != 200 {
		t.Fatalf("families(%d) × seeds(8) × variants(%d) = %d, want 200",
			len(Families), len(matrixVariants), got)
	}
}
