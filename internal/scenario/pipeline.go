package scenario

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/oskit"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Config is the instrumentation configuration the soundness pipeline
// certifies: the full optimization set over the MHP-refined report —
// the flagship "all+mhp" cell of the benchmark harness.
const Config = "all+mhp"

// Result is the outcome of pushing one generated program through the
// full soundness pipeline. On failure, FailStage names the first stage
// that diverged and Err carries the detail; Spec (possibly minimized by
// the caller) is the complete repro.
type Result struct {
	Spec   Spec
	Source string

	// Stages lists the pipeline stages that passed, in order.
	Stages []string

	// Static-analysis volume of the generated program.
	StaticPairs int // RELAY race pairs before refinement
	KeptPairs   int // pairs surviving the MHP refinement
	WeakLocks   int // weak-lock table entries after instrumentation

	// Precision-layer volume (stage 10).
	PrecisionKept   int // pairs surviving MHP + the precision layer
	PrecisionPruned int // pairs the precision layer discharged beyond MHP

	// OriginalRaces is the agreed epoch∧vector dynamic race count on the
	// original (uninstrumented) program's differential run.
	OriginalRaces int

	FailStage string
	Err       error
}

// OK reports whether every stage passed.
func (r *Result) OK() bool { return r.Err == nil }

// StagePassed reports whether the named pipeline stage completed. The
// service layer maps stages to its verdict fields (certify → certified,
// replay → replay_matches, differential+clean → checkers_agree).
func (r *Result) StagePassed(name string) bool {
	for _, s := range r.Stages {
		if s == name {
			return true
		}
	}
	return false
}

func (r *Result) fail(stage string, err error) *Result {
	r.FailStage = stage
	r.Err = fmt.Errorf("scenario: %s: stage %s: %w (repro: racecheck -gen '%s')", r.Spec.Name(), stage, err, r.Spec)
	return r
}

func (r *Result) pass(stage string) { r.Stages = append(r.Stages, stage) }

// recSeed/repSeed derive the record and replay schedule seeds from the
// spec seed. They must differ: replay determinism has to come from the
// log, not from a shared seed.
func (s Spec) recSeed() uint64 { return s.Seed*2654435761 + 1 }
func (s Spec) repSeed() uint64 { return s.Seed*0x9e3779b97f4a7c15 + 99991 }

// world builds the input world a generated program runs against. The
// world is a pure function of the spec, so every pipeline stage sees
// the same nondeterminism source.
func (s Spec) world() *oskit.World { return oskit.NewWorld(s.Seed ^ 0x5eed5eed5eed5eed) }

// RunPipeline pushes one generated program through every soundness
// obligation the system ships:
//
//  1. generate     spec → source (validated, deterministic)
//  2. analyze      lex/parse/typecheck/points-to/callgraph/RELAY
//  3. incremental  summary-store analysis, byte-identical to fresh,
//     full reuse on a store primed with the same program
//  4. instrument   weak-lock transformation over the MHP-refined report
//  5. certify      static DRF + deadlock-freedom certificate must be clean
//  6. record       instrumented run under the record seed
//  7. replay       under a different seed; result must bit-match
//  8. differential epoch vs full-vector verdicts on the original
//     program's event stream must be identical
//  9. clean        both checkers on the instrumented stream must agree
//     on zero races under the extended sync set
//  10. precision   the precision-refined report (internal/escape over
//     MHP) partitions the pair set, certifies clean including the
//     discharge check, records, replays bit-identically under a
//     different seed, shows zero agreed checker races, and replays
//     byte-identically from stored facts on a warm reload
//
// Any divergence fails with the stage name and a reproducible spec.
func RunPipeline(spec Spec) *Result {
	res := &Result{Spec: spec}

	src, err := Generate(spec)
	if err != nil {
		return res.fail("generate", err)
	}
	res.Source = src
	res.pass("generate")

	name := spec.Name()
	fresh, err := core.Load(name, src)
	if err != nil {
		return res.fail("analyze", err)
	}
	res.StaticPairs = len(fresh.Races.Pairs)
	res.pass("analyze")

	// Incremental equivalence: a cold store (every function recomputed
	// through the summary codec) and a primed store (every function
	// reused) must both render byte-identically to the fresh analysis.
	store := summary.NewStore()
	cold, err := core.LoadIncremental(name, src, 1, store)
	if err != nil {
		return res.fail("incremental", err)
	}
	warm, err := core.LoadIncremental(name, src, 1, store)
	if err != nil {
		return res.fail("incremental", err)
	}
	if got, want := cold.Races.Render(), fresh.Races.Render(); got != want {
		return res.fail("incremental", fmt.Errorf("cold incremental report diverged from fresh\n--- incremental ---\n%s--- fresh ---\n%s", got, want))
	}
	if got, want := warm.Races.Render(), fresh.Races.Render(); got != want {
		return res.fail("incremental", fmt.Errorf("warm incremental report diverged from fresh\n--- incremental ---\n%s--- fresh ---\n%s", got, want))
	}
	if st := warm.Incremental; st == nil || st.ReusedFuncs != st.TotalFuncs {
		return res.fail("incremental", fmt.Errorf("warm reload of an identical program reused %v of %v summaries", statField(warm, true), statField(warm, false)))
	}
	if got, want := warm.RefinedRaces().Render(), fresh.RefinedRaces().Render(); got != want {
		return res.fail("incremental", fmt.Errorf("warm refined report diverged from fresh\n--- incremental ---\n%s--- fresh ---\n%s", got, want))
	}
	res.pass("incremental")

	refined := fresh.RefinedRaces()
	res.KeptPairs = len(refined.Pairs)
	ip, err := fresh.InstrumentWith(refined, nil, instrument.AllOptions())
	if err != nil {
		return res.fail("instrument", err)
	}
	res.WeakLocks = ip.Table.Len()
	res.pass("instrument")

	cert, _, err := ip.Certify(Config)
	if err != nil {
		return res.fail("certify", err)
	}
	if !cert.OK {
		return res.fail("certify", fmt.Errorf("certificate not clean: %s", cert.Summary()))
	}
	res.pass("certify")

	recRes, log := ip.Record(core.RunConfig{World: spec.world(), Seed: spec.recSeed(), Table: ip.Table})
	if recRes.Err != nil {
		return res.fail("record", recRes.Err)
	}
	res.pass("record")

	repRes, err := ip.Replay(log, core.RunConfig{World: spec.world(), Seed: spec.repSeed(), Table: ip.Table})
	if err != nil {
		return res.fail("replay", err)
	}
	if repRes.Hash64() != recRes.Hash64() {
		return res.fail("replay", fmt.Errorf("replay diverged: recorded %x, replayed %x\nrecorded output: %q\nreplayed output: %q",
			recRes.Hash64(), repRes.Hash64(), recRes.Output, repRes.Output))
	}
	res.pass("replay")

	// Differential dynamic check on the original program: both checkers
	// observe one event stream of a single execution and must agree.
	ep, vc := trace.NewChecker(0), trace.NewVectorChecker(0)
	r := core.CheckDynamicRacesWith(fresh, nil, core.RunConfig{World: spec.world(), Seed: spec.recSeed()}, ep, vc)
	if r.Err != nil {
		return res.fail("differential", r.Err)
	}
	if !trace.SameVerdicts(ep.Races(), vc.Races()) {
		return res.fail("differential", fmt.Errorf("epoch and vector verdicts diverged on the original program\nepoch:  %v\nvector: %v", ep.Races(), vc.Races()))
	}
	res.OriginalRaces = len(trace.VerdictSet(ep.Races()))
	res.pass("differential")

	// The instrumented program must be race-free under the extended
	// synchronization set — by both checkers, in agreement.
	ep2, vc2 := trace.NewChecker(0), trace.NewVectorChecker(0)
	r2 := core.CheckDynamicRacesWith(ip.Prog, ip.Table, core.RunConfig{World: spec.world(), Seed: spec.recSeed()}, ep2, vc2)
	if r2.Err != nil {
		return res.fail("clean", r2.Err)
	}
	if !trace.SameVerdicts(ep2.Races(), vc2.Races()) {
		return res.fail("clean", fmt.Errorf("epoch and vector verdicts diverged on the instrumented program\nepoch:  %v\nvector: %v", ep2.Races(), vc2.Races()))
	}
	if n := len(ep2.Races()); n != 0 {
		return res.fail("clean", fmt.Errorf("instrumented program raced %d time(s) under the extended sync set: %v", n, ep2.Races()))
	}
	res.pass("clean")

	// Precision: the precision-refined program re-runs the gauntlet. The
	// refined report must partition the original pair set, earn a clean
	// certificate including the discharge check, record and replay
	// bit-identically, stay race-free under both checkers, and reproduce
	// byte-identically from facts memoized in the summary store.
	prec := fresh.PrecisionRaces()
	if len(prec.Pairs)+len(prec.Pruned) != res.StaticPairs {
		return res.fail("precision", fmt.Errorf("refined report does not partition the pair set: %d kept + %d pruned != %d static",
			len(prec.Pairs), len(prec.Pruned), res.StaticPairs))
	}
	res.PrecisionKept = len(prec.Pairs)
	res.PrecisionPruned = len(prec.Pruned) - len(refined.Pruned)
	ipp, err := fresh.InstrumentWith(prec, nil, instrument.AllOptions())
	if err != nil {
		return res.fail("precision", err)
	}
	pcert, _, err := ipp.Certify(Config + "+precision")
	if err != nil {
		return res.fail("precision", err)
	}
	if !pcert.OK {
		return res.fail("precision", fmt.Errorf("certificate not clean: %s", pcert.Summary()))
	}
	precRec, precLog := ipp.Record(core.RunConfig{World: spec.world(), Seed: spec.recSeed(), Table: ipp.Table})
	if precRec.Err != nil {
		return res.fail("precision", precRec.Err)
	}
	precRep, err := ipp.Replay(precLog, core.RunConfig{World: spec.world(), Seed: spec.repSeed(), Table: ipp.Table})
	if err != nil {
		return res.fail("precision", err)
	}
	if precRep.Hash64() != precRec.Hash64() {
		return res.fail("precision", fmt.Errorf("replay diverged: recorded %x, replayed %x\nrecorded output: %q\nreplayed output: %q",
			precRec.Hash64(), precRep.Hash64(), precRec.Output, precRep.Output))
	}
	ep3, vc3 := trace.NewChecker(0), trace.NewVectorChecker(0)
	r3 := core.CheckDynamicRacesWith(ipp.Prog, ipp.Table, core.RunConfig{World: spec.world(), Seed: spec.recSeed()}, ep3, vc3)
	if r3.Err != nil {
		return res.fail("precision", r3.Err)
	}
	if !trace.SameVerdicts(ep3.Races(), vc3.Races()) {
		return res.fail("precision", fmt.Errorf("epoch and vector verdicts diverged on the precision-instrumented program\nepoch:  %v\nvector: %v", ep3.Races(), vc3.Races()))
	}
	if n := len(ep3.Races()); n != 0 {
		return res.fail("precision", fmt.Errorf("precision-instrumented program raced %d time(s) under the extended sync set: %v", n, ep3.Races()))
	}
	// Store-fact replay: computing precision on the cold load memoizes the
	// verdicts; the warm load must replay them to a byte-identical report.
	if got, want := cold.PrecisionRaces().Render(), prec.Render(); got != want {
		return res.fail("precision", fmt.Errorf("cold precision report diverged from fresh\n--- incremental ---\n%s--- fresh ---\n%s", got, want))
	}
	if got, want := warm.PrecisionRaces().Render(), prec.Render(); got != want {
		return res.fail("precision", fmt.Errorf("warm precision report diverged from fresh\n--- incremental ---\n%s--- fresh ---\n%s", got, want))
	}
	if warm.Incremental == nil || !warm.Incremental.PrecisionFactsReused {
		return res.fail("precision", fmt.Errorf("warm reload did not replay precision facts from the store"))
	}
	res.pass("precision")
	return res
}

func statField(p *core.Program, reused bool) interface{} {
	if p.Incremental == nil {
		return "?"
	}
	if reused {
		return p.Incremental.ReusedFuncs
	}
	return p.Incremental.TotalFuncs
}

// Minimize shrinks a failing spec while RunPipeline keeps failing on the
// same stage: it greedily halves Ops, Shared and Threads toward their
// family minimums and snaps LockDensity to the nearer rail. The result
// is the smallest spec the greedy walk reaches — a cheap repro to hand
// a human, not a guaranteed global minimum.
func Minimize(spec Spec) Spec {
	failStage := func(s Spec) string {
		r := RunPipeline(s)
		if r.Err == nil {
			return ""
		}
		return r.FailStage
	}
	stage := failStage(spec)
	if stage == "" {
		return spec
	}
	minThreads := 1
	if spec.Family == "prodcons" || spec.Family == "pipeline" {
		minThreads = 2
	}
	improved := true
	for improved {
		improved = false
		for _, cand := range []Spec{
			{spec.Family, spec.Seed, spec.Threads, spec.Shared, spec.Ops / 2, spec.LockDensity},
			{spec.Family, spec.Seed, spec.Threads, spec.Shared / 2, spec.Ops, spec.LockDensity},
			{spec.Family, spec.Seed, spec.Threads / 2, spec.Shared, spec.Ops, spec.LockDensity},
			{spec.Family, spec.Seed, spec.Threads, spec.Shared, spec.Ops, railward(spec.LockDensity)},
		} {
			if cand == spec || cand.Threads < minThreads || cand.Validate() != nil {
				continue
			}
			if failStage(cand) == stage {
				spec = cand
				improved = true
				break
			}
		}
	}
	return spec
}

// railward moves a density halfway toward its nearer rail (0 or 100).
func railward(d int) int {
	if d >= 50 {
		return d + (100-d+1)/2
	}
	return d / 2
}

// ToBenchmark adapts a spec to the benchmark harness: the generated
// program plus profile and evaluation worlds derived from the seed. The
// adapter is what lets chimera-bench measure generated workloads with
// the exact Table-2/Figure-5 machinery (and the PR5 metrics block) the
// nine embedded benchmarks use.
func ToBenchmark(spec Spec) (*bench.Benchmark, error) {
	src, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	return &bench.Benchmark{
		Name:   spec.Name(),
		Class:  "scenario",
		Source: src,
		ProfileWorld: func(run int) *oskit.World {
			return oskit.NewWorld(spec.Seed + uint64(run)*1000003 + 7)
		},
		EvalWorld: func(workers int) *oskit.World {
			// Thread structure is baked into the generated source; the
			// harness worker knob does not apply.
			return spec.world()
		},
		ProfileRuns: 4,
		ProfileEnv:  fmt.Sprintf("%d seeded profile worlds", 4),
		EvalEnv:     spec.String(),
	}, nil
}
